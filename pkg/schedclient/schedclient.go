// Package schedclient is the typed Go client for the schedd service's
// versioned /v1 HTTP API. It speaks the same wire types the service
// defines (internal/schedd), so the client and server can never drift:
// a response-shape change is a compile error here, not a runtime
// surprise in an operator tool.
//
// The client targets the /v1 routes exclusively. One-shot calls
// (Submit, Stats, SLO, ...) are plain request/response; the two
// streaming surfaces get dedicated handles: Watch returns a WatchStream
// over the SSE lifecycle feed, and StreamJobs returns a pipelined
// JobStream over the POST /v1/jobs:stream bulk-ingest firehose.
//
// JobStream is pipelined by design: Send writes an NDJSON line into the
// request body (the HTTP transport may buffer a few KB before it hits
// the wire) while a background goroutine consumes acks as the service
// emits them. Close flushes, waits for every ack, and returns the
// summary. This is the only sound shape over net/http — the client
// transport does not flush small request-body writes mid-stream, so a
// synchronous send-line-then-read-ack loop would deadlock; bulk pumping
// neither needs nor wants per-line round trips.
package schedclient

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/schedd"
)

// Client talks to one schedd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for the daemon at addr. A bare host:port gets an
// http:// scheme; a trailing slash is stripped, so path concatenation
// is uniform. The zero http.Client (no timeout) backs it — streaming
// calls hold connections open indefinitely by design.
func New(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

// Addr returns the normalized base URL the client targets.
func (c *Client) Addr() string { return c.base }

// errorBody decodes the service's {"error": msg} body into a Go error;
// when the body is not that shape, the raw status line stands in.
func errorBody(resp *http.Response, what string) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s: %s", what, resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", what, resp.Status)
}

// getJSON fetches base+path and decodes the body into out. With
// okDrained, a 503 body is decoded too — a draining daemon still serves
// valid stats and SLO reports, and operator tools want them.
func (c *Client) getJSON(path string, out any, okDrained bool) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && !(okDrained && resp.StatusCode == http.StatusServiceUnavailable) {
		return errorBody(resp, "GET "+path)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts one submission request (POST /v1/jobs) and returns the
// assigned cluster-global job IDs.
func (c *Client) Submit(req schedd.SubmitRequest) (schedd.SubmitResponse, error) {
	var out schedd.SubmitResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	resp, err := c.hc.Post(c.base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return out, errorBody(resp, "POST /v1/jobs")
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// SubmitBatch submits count nominal jobs in one request and returns
// their IDs.
func (c *Client) SubmitBatch(count int) ([]int, error) {
	resp, err := c.Submit(schedd.SubmitRequest{Count: count})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// Stats fetches GET /v1/stats. A draining daemon's stats still decode.
func (c *Client) Stats() (schedd.StatsResponse, error) {
	var out schedd.StatsResponse
	err := c.getJSON("/v1/stats", &out, true)
	return out, err
}

// Job fetches GET /v1/jobs/{id}.
func (c *Client) Job(id int) (schedd.JobResponse, error) {
	var out schedd.JobResponse
	err := c.getJSON("/v1/jobs/"+strconv.Itoa(id), &out, false)
	return out, err
}

// Trace fetches GET /v1/jobs/{id}/trace.
func (c *Client) Trace(id int) (schedd.TraceResponse, error) {
	var out schedd.TraceResponse
	err := c.getJSON("/v1/jobs/"+strconv.Itoa(id)+"/trace", &out, false)
	return out, err
}

// Decisions fetches GET /v1/decisions; limit <= 0 takes the service
// default.
func (c *Client) Decisions(limit int) (schedd.DecisionsResponse, error) {
	path := "/v1/decisions"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out schedd.DecisionsResponse
	err := c.getJSON(path, &out, false)
	return out, err
}

// SLO fetches the burn-rate report from GET /v1/slo. A draining
// daemon's report still decodes.
func (c *Client) SLO() (schedd.SLOResponse, error) {
	var out schedd.SLOResponse
	err := c.getJSON("/v1/slo", &out, true)
	return out, err
}

// Health fetches GET /healthz (the probes are unversioned by design).
func (c *Client) Health() (schedd.HealthResponse, error) {
	var out schedd.HealthResponse
	err := c.getJSON("/healthz", &out, true)
	return out, err
}

// Flight fetches the flight recorder's retained recording (GET
// /v1/flight) as raw wire-format bytes, ready for flight.Parse.
func (c *Client) Flight() ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/v1/flight")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/flight: %s (is the daemon running with the recorder on?)", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// WatchStream is an open GET /v1/watch SSE subscription. Next returns
// one event payload at a time; Close tears the subscription down.
type WatchStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
}

// Watch subscribes to the lifecycle event stream. limit > 0 bounds the
// subscription to that many events (the stream then ends with io.EOF);
// 0 follows until Close or ctx cancellation.
func (c *Client) Watch(ctx context.Context, limit int) (*WatchStream, error) {
	path := "/v1/watch"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, errorBody(resp, "GET "+path)
	}
	return &WatchStream{body: resp.Body, sc: bufio.NewScanner(resp.Body)}, nil
}

// Next blocks for the next event and returns its raw JSON payload (one
// schedd.WatchEvent). io.EOF means the stream ended (the ?limit= bound
// was reached or the daemon went away). Keepalive comments are skipped.
func (w *WatchStream) Next() ([]byte, error) {
	for w.sc.Scan() {
		if line, ok := strings.CutPrefix(w.sc.Text(), "data: "); ok {
			return []byte(line), nil
		}
	}
	if err := w.sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.EOF
}

// NextEvent decodes the next event.
func (w *WatchStream) NextEvent() (schedd.WatchEvent, error) {
	var ev schedd.WatchEvent
	raw, err := w.Next()
	if err != nil {
		return ev, err
	}
	return ev, json.Unmarshal(raw, &ev)
}

// Close ends the subscription.
func (w *WatchStream) Close() error { return w.body.Close() }

// StreamSummary is what a completed JobStream accepted: Lines acked
// NDJSON lines carrying Jobs jobs in total. On a partial-accept error
// it counts exactly the lines the service acked before aborting.
type StreamSummary struct {
	Lines int
	Jobs  int
}

// JobStream is an open POST /v1/jobs:stream bulk-ingest session. Send
// queues submission lines (single goroutine only); a background reader
// tallies the service's acks; Close finishes the stream and returns the
// summary. The first error — a terminal ack from the service, a
// transport failure, a non-200 status — sticks and surfaces from Send
// and Close.
type JobStream struct {
	pw   *io.PipeWriter
	pr   *io.PipeReader
	enc  *json.Encoder
	done chan struct{}

	mu  sync.Mutex
	sum StreamSummary
	err error
}

// StreamJobs opens a bulk-ingest stream. The request runs until Close
// (or ctx cancellation); backpressure from the service's bounded intake
// propagates as blocking Send calls.
func (c *Client) StreamJobs(ctx context.Context) (*JobStream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs:stream", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	st := &JobStream{pw: pw, pr: pr, enc: json.NewEncoder(pw), done: make(chan struct{})}
	go st.readAcks(c.hc, req)
	return st, nil
}

// readAcks drives the request and consumes the ack stream. The
// transport reads the request body (our pipe) concurrently with the
// response, which is what makes the pipelined shape work.
func (s *JobStream) readAcks(hc *http.Client, req *http.Request) {
	defer close(s.done)
	resp, err := hc.Do(req)
	if err != nil {
		s.fail(err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.fail(errorBody(resp, "POST /v1/jobs:stream"))
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		var ack schedd.StreamAck
		if err := json.Unmarshal(sc.Bytes(), &ack); err != nil {
			s.fail(fmt.Errorf("bad ack line: %w", err))
			return
		}
		if ack.Error != "" {
			s.fail(fmt.Errorf("line %d: %s", ack.Line, ack.Error))
			return
		}
		s.mu.Lock()
		s.sum.Lines++
		s.sum.Jobs += ack.Count
		s.mu.Unlock()
	}
	if err := sc.Err(); err != nil {
		s.fail(err)
	}
}

// fail records the stream's first error and unblocks any Send stuck
// writing into the pipe (the write returns the same error).
func (s *JobStream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.pr.CloseWithError(err)
}

// Send queues one submission line. It may block — that is the intake
// backpressure reaching the producer. After a terminal error it returns
// that error instead.
func (s *JobStream) Send(req schedd.SubmitRequest) error {
	select {
	case <-s.done:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.err != nil {
			return s.err
		}
		return fmt.Errorf("schedclient: stream closed")
	default:
	}
	if err := s.enc.Encode(req); err != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.err != nil {
			return s.err
		}
		return err
	}
	return nil
}

// Close finishes the request body, waits for every outstanding ack, and
// returns the summary. The summary is valid even on error: it counts
// the lines the service acked before the stream broke (partial-accept).
func (s *JobStream) Close() (StreamSummary, error) {
	s.pw.Close()
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sum, s.err
}
