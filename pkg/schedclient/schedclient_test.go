package schedclient

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/schedd"
)

// startServer stands a schedd instance up on a loopback listener and
// returns a client for it plus the in-process server for draining.
func startServer(t *testing.T, cfg schedd.Config) (*Client, *schedd.Server) {
	t.Helper()
	if cfg.Platform.M() == 0 {
		cfg.Platform = core.NewPlatform([]float64{0.1, 0.2, 0.3}, []float64{0.5, 1, 2})
	}
	if cfg.Policy == "" {
		cfg.Policy = "LS"
	}
	srv, err := schedd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return New(ts.URL), srv
}

func TestNewNormalizesAddr(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:8080":          "http://127.0.0.1:8080",
		"http://example.com/":     "http://example.com",
		"https://example.com:99/": "https://example.com:99",
	} {
		if got := New(in).Addr(); got != want {
			t.Errorf("New(%q).Addr() = %q, want %q", in, got, want)
		}
	}
}

func TestSubmitStatsJobTrace(t *testing.T) {
	cli, srv := startServer(t, schedd.Config{ClockScale: 4000})
	ids, err := cli.SubmitBatch(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 {
		t.Fatalf("SubmitBatch(5) returned %d ids", len(ids))
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	stats, err := cli.Stats() // drained daemon: Stats must tolerate the state
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Completed != 5 {
		t.Fatalf("completed %d of 5", stats.Jobs.Completed)
	}
	job, err := cli.Job(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if job.State != "done" {
		t.Fatalf("job %d state %q after drain", ids[0], job.State)
	}
	tr, err := cli.Trace(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Span.Stages) != 4 {
		t.Fatalf("completed trace has %d stages, want 4", len(tr.Span.Stages))
	}
	if _, err := cli.Job(999999); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("Job(unknown) error = %v, want unknown-job message", err)
	}
}

func TestHealthSLODecisions(t *testing.T) {
	cli, srv := startServer(t, schedd.Config{ClockScale: 4000})
	defer srv.Drain()
	h, err := cli.Health()
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Shards != 1 {
		t.Fatalf("health = %+v", h)
	}
	slo, err := cli.SLO()
	if err != nil {
		t.Fatal(err)
	}
	if slo.Enabled {
		t.Fatal("SLO enabled with no objectives configured")
	}
	if _, err := cli.SubmitBatch(3); err != nil {
		t.Fatal(err)
	}
	ds, err := cli.Decisions(2)
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Enabled || len(ds.Decisions) != 2 {
		t.Fatalf("decisions = enabled %v, %d entries; want enabled, 2", ds.Enabled, len(ds.Decisions))
	}
}

func TestFlightRoundTrips(t *testing.T) {
	cli, srv := startServer(t, schedd.Config{ClockScale: 4000})
	if _, err := cli.SubmitBatch(2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	raw, err := cli.Flight()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty recording after served jobs")
	}
}

func TestFlightDisabled(t *testing.T) {
	cli, srv := startServer(t, schedd.Config{ClockScale: 4000, DisableRecorder: true})
	defer srv.Drain()
	if _, err := cli.Flight(); err == nil || !strings.Contains(err.Error(), "recorder") {
		t.Fatalf("Flight() with recorder off = %v, want recorder hint", err)
	}
}

func TestWatchBoundedSubscription(t *testing.T) {
	cli, srv := startServer(t, schedd.Config{ClockScale: 4000})
	defer srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ws, err := cli.Watch(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	if _, err := cli.SubmitBatch(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ev, err := ws.NextEvent()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Kind == "" {
			t.Fatalf("event %d has no kind", i)
		}
	}
	if _, err := ws.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after ?limit=3 events, Next = %v, want io.EOF", err)
	}
}

func TestStreamJobsPipelined(t *testing.T) {
	cli, srv := startServer(t, schedd.Config{
		Platform: core.NewPlatform(
			[]float64{0.1, 0.1, 0.2, 0.2, 0.3, 0.3, 0.1, 0.2},
			[]float64{0.4, 0.8, 0.4, 0.8, 0.4, 0.8, 0.4, 0.8}),
		Shards:       4,
		Placement:    "least-loaded",
		VirtualClock: true,
	})
	st, err := cli.StreamJobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const lines, perLine = 200, 25
	for i := 0; i < lines; i++ {
		if err := st.Send(schedd.SubmitRequest{Count: perLine}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Lines != lines || sum.Jobs != lines*perLine {
		t.Fatalf("summary = %+v, want %d lines / %d jobs", sum, lines, lines*perLine)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if c := srv.Counts(); c.Completed != lines*perLine {
		t.Fatalf("completed %d of %d", c.Completed, lines*perLine)
	}
}

func TestStreamJobsPartialAccept(t *testing.T) {
	cli, srv := startServer(t, schedd.Config{ClockScale: 4000, MaxBatch: 10})
	st, err := cli.StreamJobs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Send(schedd.SubmitRequest{Count: 2}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Over MaxBatch: the service aborts the stream with a terminal ack.
	// Keep sending until the error propagates back through the pipe.
	if err := st.Send(schedd.SubmitRequest{Count: 11}); err == nil {
		deadline := time.Now().Add(10 * time.Second)
		for st.Send(schedd.SubmitRequest{Count: 1}) == nil {
			if time.Now().After(deadline) {
				t.Fatal("terminal ack never surfaced")
			}
			time.Sleep(time.Millisecond)
		}
	}
	sum, err := st.Close()
	if err == nil || !strings.Contains(err.Error(), "outside [1, 10]") {
		t.Fatalf("Close error = %v, want count-bounds message", err)
	}
	if sum.Lines != 3 || sum.Jobs != 6 {
		t.Fatalf("summary = %+v, want the 3 acked lines / 6 jobs", sum)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if c := srv.Counts(); c.Completed != 6 {
		t.Fatalf("completed %d, want exactly the acked 6 (partial accept)", c.Completed)
	}
}
