// Command adversary plays the paper's Section-3 lower-bound games: a
// theorem's adversary observes the scheduling algorithm's decisions and
// reacts with the worst possible continuation; the resulting competitive
// ratio must not beat the theorem's bound.
//
// Usage:
//
//	adversary -theorem 1 -algo LS       # one game, with the instance trace
//	adversary -all                      # the full 9 × registry matrix
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/adversary"
	"repro/internal/sched"
	"repro/internal/textplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("adversary: ")

	theorem := flag.Int("theorem", 1, "theorem number 1..9")
	algo := flag.String("algo", "LS", "algorithm: "+strings.Join(sched.Names(), ", "))
	all := flag.Bool("all", false, "play every theorem against the whole scheduler registry")
	flag.Parse()

	if *all {
		matrix()
		return
	}
	if *theorem < 1 || *theorem > 9 {
		log.Fatalf("theorem %d out of range 1..9", *theorem)
	}
	adv := adversary.All()[*theorem-1]
	out, err := adversary.Play(adv, sched.New(*algo))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", adv.Name())
	fmt.Printf("platform: %v\n\n", adv.Platform())
	fmt.Printf("the adversary released %d task(s); the game transcript:\n", out.Tasks)
	for _, r := range out.Schedule.Records {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println()
	fmt.Print(textplot.Gantt(out.Schedule, 90))
	fmt.Println()
	fmt.Printf("algorithm %-9v = %.4f\n", out.Objective, out.Value)
	fmt.Printf("offline optimum    = %.4f\n", out.Optimal)
	fmt.Printf("competitive ratio  = %.4f\n", out.Ratio)
	fmt.Printf("theorem bound      = %s ≈ %.4f (parameter slack %.4f)\n",
		out.BoundExpr, out.Bound, out.Slack)
	if out.Beaten() {
		fmt.Println("!!! BOUND BEATEN — this would falsify the theorem; please file a bug")
	} else {
		fmt.Println("bound confirmed: the algorithm could not beat the adversary")
	}
}

func matrix() {
	headers := []string{"theorem", "bound", "scheduler", "ratio", "tasks", "ok"}
	var rows [][]string
	for _, adv := range adversary.All() {
		for _, s := range sched.Adversarial(adv.Platform().M()) {
			out, err := adversary.Play(adv, s)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d (%v)", adv.Theorem(), adv.Objective()),
				adv.BoundExpr(),
				s.Name(),
				fmt.Sprintf("%.4f", out.Ratio),
				fmt.Sprintf("%d", out.Tasks),
				fmt.Sprintf("%v", !out.Beaten()),
			})
		}
	}
	fmt.Print(textplot.Table(headers, rows))
}
