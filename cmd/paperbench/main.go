// Command paperbench regenerates the paper's evaluation artifacts at full
// scale: Table 1 (exact bounds, adversary confirmation, exact proof
// verification), the four panels of Figure 1, the Figure 2 robustness
// study, and the ablation studies from DESIGN.md.
//
// Usage:
//
//	paperbench                      # everything at paper scale
//	paperbench -experiment fig1b    # one artifact
//	paperbench -platforms 4 -tasks 200   # reduced scale
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	which := flag.String("experiment", "all",
		"artifact: table1, fig1a, fig1b, fig1c, fig1d, fig2, ablation-rr, ablation-horizon, ablation-arrivals, ablation-model, randomized, all")
	platforms := flag.Int("platforms", 10, "random platforms per figure (paper: 10)")
	tasks := flag.Int("tasks", 1000, "tasks per run (paper: 1000)")
	m := flag.Int("m", 5, "slaves per platform (paper: 5)")
	seed := flag.Int64("seed", 2006, "random seed")
	flag.Parse()

	cfg := experiment.Config{Platforms: *platforms, Tasks: *tasks, M: *m, Seed: *seed}

	artifacts := map[string]func(){
		"table1": func() {
			fmt.Println(experiment.RenderTable1(experiment.Table1()))
		},
		"fig1a": func() { fmt.Println(experiment.Figure1(core.Homogeneous, cfg).Render()) },
		"fig1b": func() { fmt.Println(experiment.Figure1(core.CommHomogeneous, cfg).Render()) },
		"fig1c": func() { fmt.Println(experiment.Figure1(core.CompHomogeneous, cfg).Render()) },
		"fig1d": func() { fmt.Println(experiment.Figure1(core.Heterogeneous, cfg).Render()) },
		"fig2":  func() { fmt.Println(experiment.Figure2(cfg).Render()) },
		"ablation-rr": func() {
			fmt.Println(experiment.AblationRRCap(core.Homogeneous, cfg).Render())
			fmt.Println(experiment.AblationRRCap(core.CommHomogeneous, cfg).Render())
		},
		"ablation-horizon": func() {
			fmt.Println(experiment.AblationPlanHorizon(cfg).Render())
		},
		"ablation-arrivals": func() {
			for _, load := range []float64{0.5, 0.8, 0.95} {
				fmt.Println(experiment.AblationArrivals(load, cfg).Render())
			}
		},
		"randomized": func() {
			fmt.Println(experiment.RandomizedStudy(1000, 0.3).Render())
		},
		"ablation-model": func() {
			fmt.Println(experiment.AblationModel(core.CompHomogeneous, cfg).Render())
			fmt.Println(experiment.AblationModel(core.Heterogeneous, cfg).Render())
		},
	}
	order := []string{"table1", "fig1a", "fig1b", "fig1c", "fig1d", "fig2",
		"ablation-rr", "ablation-horizon", "ablation-arrivals", "ablation-model", "randomized"}

	if *which == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			artifacts[name]()
		}
		return
	}
	run, ok := artifacts[*which]
	if !ok {
		log.Fatalf("unknown experiment %q; choose one of %s or all",
			*which, strings.Join(order, ", "))
	}
	run()
}
