// Command paperbench regenerates the paper's evaluation artifacts at full
// scale: Table 1 (exact bounds, adversary confirmation, exact proof
// verification), the four panels of Figure 1, the Figure 2 robustness
// study, the dynamic-platform scenario study, and the ablation studies
// from DESIGN.md.
//
// Sweeps run on the deterministic worker pool in internal/runner: results
// are bit-identical for every -parallel value (only the "meta" stanza of
// the JSON report — workers and wall time — records how the run executed).
//
// Usage:
//
//	paperbench                          # everything at paper scale
//	paperbench -experiment fig1b        # one artifact
//	paperbench -experiment scenario     # the dynamic-platform study
//	paperbench -platforms 4 -tasks 200  # reduced scale
//	paperbench -parallel 8 -json out.json
//	paperbench -classes heterogeneous,comp-homogeneous -schedulers LS,SLJFWC
//
// With -bench-json the command instead times the repository's headline
// sweeps (the Figure-1 serial and parallel benchmarks and the scenario
// study) via testing.Benchmark, then load-tests the schedd streaming
// service (a real HTTP daemon over the live runtime, one run per serving
// policy, measuring sustained jobs/sec and p50/p95/p99 wall latency),
// and writes the machine-readable perf artifact, so CI can track the
// performance trajectory across PRs:
//
//	paperbench -bench-json BENCH_PR3.json -platforms 4 -tasks 300
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/schedd"
	"repro/internal/sim"
	"repro/pkg/schedclient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	which := flag.String("experiment", "all",
		"artifact: table1, fig1a, fig1b, fig1c, fig1d, fig2, scenario, sharding, steal, ablation-rr, ablation-horizon, ablation-arrivals, ablation-model, randomized, all")
	platforms := flag.Int("platforms", 10, "random platforms per figure (paper: 10)")
	tasks := flag.Int("tasks", 1000, "tasks per run (paper: 1000)")
	m := flag.Int("m", 5, "slaves per platform (paper: 5)")
	seed := flag.Int64("seed", 2006, "random seed")
	parallel := flag.Int("parallel", 0, "worker-pool size; 0 = GOMAXPROCS (results are identical for every value)")
	jsonOut := flag.String("json", "", "write a machine-readable report of every artifact to this file")
	classesFlag := flag.String("classes", "", "comma-separated platform-class filter for the class-parameterized artifacts (default: all four)")
	schedulersFlag := flag.String("schedulers", "", "comma-separated scheduler filter for the figure sweeps (default: the full registry)")
	benchJSON := flag.String("bench-json", "", "time the headline sweeps instead and write the ns/op perf artifact to this file")
	streamWorkers := flag.Int("stream-workers", 0,
		"parallel NDJSON decode workers for the firehose bench's concurrent legs (0: service default — GOMAXPROCS capped at 8)")
	producersFlag := flag.String("producers", "1,2,4",
		"comma-separated producer counts for the firehose bench's concurrent-ingest sweep")
	flag.Parse()

	classes, err := parseClasses(*classesFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := validateSchedulers(splitList(*schedulersFlag)); err != nil {
		log.Fatal(err)
	}
	cfg := experiment.Config{
		Platforms:  *platforms,
		Tasks:      *tasks,
		M:          *m,
		Seed:       *seed,
		Workers:    *parallel,
		Schedulers: splitList(*schedulersFlag),
	}

	if *benchJSON != "" {
		producerCounts, err := parseProducers(*producersFlag)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeBenchArtifact(*benchJSON, cfg, firehoseOpts{
			StreamWorkers: *streamWorkers,
			Producers:     producerCounts,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	type artifact struct {
		name string
		// class gates class-parameterized artifacts on the -classes filter;
		// nil means the artifact always runs.
		class *core.Class
		run   func() []runner.Result
	}
	fig1 := func(class core.Class) func() []runner.Result {
		return func() []runner.Result {
			r := experiment.Figure1(class, cfg)
			fmt.Println(r.Render())
			return []runner.Result{r.Raw}
		}
	}
	classPtr := func(c core.Class) *core.Class { return &c }
	artifacts := []artifact{
		{"table1", nil, func() []runner.Result {
			rows := experiment.Table1Parallel(*parallel)
			fmt.Println(experiment.RenderTable1(rows))
			return []runner.Result{experiment.Table1Result(rows)}
		}},
		{"fig1a", classPtr(core.Homogeneous), fig1(core.Homogeneous)},
		{"fig1b", classPtr(core.CommHomogeneous), fig1(core.CommHomogeneous)},
		{"fig1c", classPtr(core.CompHomogeneous), fig1(core.CompHomogeneous)},
		{"fig1d", classPtr(core.Heterogeneous), fig1(core.Heterogeneous)},
		{"fig2", nil, func() []runner.Result {
			r := experiment.Figure2(cfg)
			fmt.Println(r.Render())
			return []runner.Result{r.Raw}
		}},
		{"scenario", nil, func() []runner.Result {
			var selected []core.Class
			for _, class := range experiment.ScenarioClasses {
				if classes[class] {
					selected = append(selected, class)
				}
			}
			if len(selected) == 0 {
				fmt.Println("(skipped: every platform class of this artifact is excluded by -classes)")
				return nil
			}
			r := experiment.ScenarioStudyOver(selected, cfg)
			fmt.Println(r.Render())
			return []runner.Result{r.Raw}
		}},
		{"sharding", nil, func() []runner.Result {
			var selected []core.Class
			for _, class := range core.Classes {
				if classes[class] {
					selected = append(selected, class)
				}
			}
			if len(selected) == 0 {
				fmt.Println("(skipped: every platform class of this artifact is excluded by -classes)")
				return nil
			}
			r := experiment.ShardingStudyOver(selected, cfg)
			fmt.Println(r.Render())
			return []runner.Result{r.Raw}
		}},
		{"steal", nil, func() []runner.Result {
			var selected []core.Class
			for _, class := range core.Classes {
				if classes[class] {
					selected = append(selected, class)
				}
			}
			if len(selected) == 0 {
				fmt.Println("(skipped: every platform class of this artifact is excluded by -classes)")
				return nil
			}
			r := experiment.StealStudyOver(selected, cfg)
			fmt.Println(r.Render())
			return []runner.Result{r.Raw}
		}},
		{"ablation-rr", nil, func() []runner.Result {
			var out []runner.Result
			for _, class := range []core.Class{core.Homogeneous, core.CommHomogeneous} {
				if !classes[class] {
					continue
				}
				r := experiment.AblationRRCap(class, cfg)
				fmt.Println(r.Render())
				out = append(out, r.Raw)
			}
			if len(out) == 0 {
				fmt.Println("(skipped: every platform class of this artifact is excluded by -classes)")
			}
			return out
		}},
		{"ablation-horizon", nil, func() []runner.Result {
			r := experiment.AblationPlanHorizon(cfg)
			fmt.Println(r.Render())
			return []runner.Result{r.Raw}
		}},
		{"ablation-arrivals", nil, func() []runner.Result {
			var out []runner.Result
			for _, load := range []float64{0.5, 0.8, 0.95} {
				r := experiment.AblationArrivals(load, cfg)
				fmt.Println(r.Render())
				out = append(out, r.Raw)
			}
			return out
		}},
		{"ablation-model", nil, func() []runner.Result {
			var out []runner.Result
			for _, class := range []core.Class{core.CompHomogeneous, core.Heterogeneous} {
				if !classes[class] {
					continue
				}
				r := experiment.AblationModel(class, cfg)
				fmt.Println(r.Render())
				out = append(out, r.Raw)
			}
			if len(out) == 0 {
				fmt.Println("(skipped: every platform class of this artifact is excluded by -classes)")
			}
			return out
		}},
		{"randomized", nil, func() []runner.Result {
			r := experiment.RandomizedStudyParallel(1000, 0.3, *parallel)
			fmt.Println(r.Render())
			return []runner.Result{r.Raw}
		}},
	}

	var names []string
	byName := map[string]artifact{}
	for _, a := range artifacts {
		names = append(names, a.name)
		byName[a.name] = a
	}

	var selected []artifact
	if *which == "all" {
		for _, a := range artifacts {
			if a.class != nil && !classes[*a.class] {
				continue
			}
			selected = append(selected, a)
		}
	} else {
		a, ok := byName[*which]
		if !ok {
			log.Fatalf("unknown experiment %q; choose one of %s or all",
				*which, strings.Join(names, ", "))
		}
		if a.class != nil && !classes[*a.class] {
			log.Fatalf("-experiment %s is the %v panel, which -classes excludes", *which, *a.class)
		}
		selected = append(selected, a)
	}

	report := runner.Report{RootSeed: *seed}
	start := time.Now()
	for _, a := range selected {
		if *which == "all" {
			fmt.Printf("==== %s ====\n", a.name)
		}
		t0 := time.Now()
		results := a.run()
		wall := time.Since(t0).Seconds()
		for i := range results {
			results[i].Meta = &runner.Meta{Workers: runner.Workers(*parallel), WallSeconds: wall / float64(len(results))}
		}
		report.Results = append(report.Results, results...)
	}
	report.Meta = &runner.Meta{Workers: runner.Workers(*parallel), WallSeconds: time.Since(start).Seconds()}

	if *jsonOut != "" {
		if err := runner.WriteJSON(*jsonOut, report); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d result(s) to %s (workers=%d, wall=%.2fs; everything outside \"meta\" is worker-count independent)",
			len(report.Results), *jsonOut, report.Meta.Workers, report.Meta.WallSeconds)
	}
}

// BenchEntry is one timed sweep in the perf artifact. Since PR 4 the
// allocation columns are recorded too: the committed BENCH_PR4.json is
// the first point of the perf trajectory, and the hot-path overhaul's
// headline is as much allocs/op as ns/op.
type BenchEntry struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// LiveEntry is one schedd load-generation run in the perf artifact: a
// real HTTP daemon (internal/schedd over the goroutine runtime) under a
// concurrent submission burst, reporting sustained completion throughput
// and wall-clock latency percentiles.
type LiveEntry struct {
	Policy       string  `json:"policy"`
	Jobs         int     `json:"jobs"`
	Producers    int     `json:"producers"`
	ClockScale   float64 `json:"clock_scale"`
	WallSeconds  float64 `json:"wall_seconds"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	P50LatencyMs float64 `json:"p50_latency_ms"`
	P95LatencyMs float64 `json:"p95_latency_ms"`
	P99LatencyMs float64 `json:"p99_latency_ms"`
}

// ClusterEntry is one sharded-schedd load-generation run: the same HTTP
// load generator against a k-shard cluster on one fixed port-bound
// platform, sweeping shard count × placement. The single master's
// outbound port is the structural bottleneck, so jobs/sec should scale
// near-linearly in shards — the shards=4 : shards=1 ratio is the
// headline CI gates on (≥ 2×).
type ClusterEntry struct {
	Shards       int     `json:"shards"`
	Placement    string  `json:"placement"`
	Partition    string  `json:"partition"`
	Jobs         int     `json:"jobs"`
	Producers    int     `json:"producers"`
	ClockScale   float64 `json:"clock_scale"`
	WallSeconds  float64 `json:"wall_seconds"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	P50LatencyMs float64 `json:"p50_latency_ms"`
	P95LatencyMs float64 `json:"p95_latency_ms"`
	P99LatencyMs float64 `json:"p99_latency_ms"`
}

// StealEntry is one work-stealing load-generation run: the HTTP load
// generator against a 4-shard cluster whose placement is pinned — every
// job lands on shard 0, the adversarial worst case for sharding — swept
// over the steal policies. With "none" the cluster collapses to one
// master's port; an active rebalancer migrates the backlog to the idle
// shards, and the jobs/sec ratio against the none baseline is the
// headline CI gates on (≥ 1.5×).
type StealEntry struct {
	Shards          int     `json:"shards"`
	Placement       string  `json:"placement"`
	Steal           string  `json:"steal"`
	IntervalSeconds float64 `json:"interval_seconds"`
	Jobs            int     `json:"jobs"`
	JobsMoved       int64   `json:"jobs_moved"`
	Producers       int     `json:"producers"`
	ClockScale      float64 `json:"clock_scale"`
	WallSeconds     float64 `json:"wall_seconds"`
	JobsPerSec      float64 `json:"jobs_per_sec"`
	P50LatencyMs    float64 `json:"p50_latency_ms"`
	P95LatencyMs    float64 `json:"p95_latency_ms"`
	P99LatencyMs    float64 `json:"p99_latency_ms"`
}

// ObsEntry is the PR-7 instrumentation-overhead stanza: the metrics
// kernel's record-path costs (which must stay allocation-free) and the
// bare-vs-instrumented cost of the full schedd admission lifecycle.
// The committed artifact pins the observability contract: recording a
// metric is atomics only (0 allocs/op), and turning the whole
// observability layer on (metrics registry + latency histograms +
// decision audit) costs the ingest path less than 5% ns/op.
type ObsEntry struct {
	// Record-path ns/op of the metrics kernel primitives.
	CounterNsPerOp   float64 `json:"counter_ns_per_op"`
	HistogramNsPerOp float64 `json:"histogram_ns_per_op"`
	AuditNsPerOp     float64 `json:"audit_ns_per_op"`
	// RecordAllocsPerOp is the MAXIMUM allocs/op over the three record
	// paths; the zero-allocation contract requires it to be exactly 0.
	RecordAllocsPerOp int64 `json:"record_allocs_per_op"`
	// Ingest lifecycle (200 jobs through POST /jobs plus a full drain),
	// bare (metrics and audit off) vs instrumented (service defaults:
	// metrics on, audit ring 256). Minimum ns/op over repeated runs, so
	// the ratio compares best-case to best-case.
	BareIngestNsPerOp         float64 `json:"bare_ingest_ns_per_op"`
	InstrumentedIngestNsPerOp float64 `json:"instrumented_ingest_ns_per_op"`
	// IngestOverheadRatio = instrumented / bare; the CI gate holds it
	// under 1.05.
	IngestOverheadRatio float64 `json:"ingest_overhead_ratio"`
}

// FirehoseLeg is one side of the PR-9 throughput comparison: jobs
// driven through the 4-shard virtual-clock cluster and the wall window
// from first submission through a full drain.
type FirehoseLeg struct {
	Jobs        int     `json:"jobs"`
	WallSeconds float64 `json:"wall_seconds"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
}

// FirehoseProducerLeg is one point of the PR-10 concurrent-ingest
// sweep: Producers concurrent stream connections (each its own NDJSON
// session) into a service decoding with StreamWorkers parse workers per
// connection, driving Jobs jobs end to end (submission through drain).
type FirehoseProducerLeg struct {
	Producers     int     `json:"producers"`
	StreamWorkers int     `json:"stream_workers"`
	Jobs          int     `json:"jobs"`
	WallSeconds   float64 `json:"wall_seconds"`
	JobsPerSec    float64 `json:"jobs_per_sec"`
}

// FirehoseEntry is the firehose stanza: the streaming bulk-ingest
// endpoint (POST /v1/jobs:stream over the virtual-clock firehose
// cluster) against the per-job POST /v1/jobs baseline at equal shard
// count, plus the admission path's steady-state allocation cost and the
// PR-10 concurrency trajectory (serial single-producer decode vs a
// producer sweep over the lock-free router). The committed artifact
// pins the headlines: the stream drives ≥1M jobs and beats per-job POST
// by ≥5× (CI gates ≥3×) at ≤1 alloc per admitted job, and on a
// multi-core runner the concurrent path beats the serial PR-9 path by
// ≥1.5× (CI-gated via ConcurrentSpeedupX at GOMAXPROCS ≥ 4).
type FirehoseEntry struct {
	Shards int `json:"shards"`
	// Stream is the NDJSON bulk-ingest leg (1M+ jobs, one producer,
	// service-default decode workers).
	Stream FirehoseLeg `json:"stream"`
	// PerJob is the baseline: one POST /v1/jobs per job on the identical
	// cluster (a smaller population — per-request HTTP overhead makes 1M
	// individual POSTs pointless to wait out; jobs/sec is the comparison).
	PerJob FirehoseLeg `json:"per_job"`
	// SpeedupX = Stream.JobsPerSec / PerJob.JobsPerSec.
	SpeedupX float64 `json:"speedup_x"`
	// IngestAllocsPerJob is the admission path's steady-state heap cost
	// (placement + global-ID bookkeeping + intake enqueue), measured on an
	// unstarted firehose cluster so nothing but admission runs.
	IngestAllocsPerJob float64 `json:"ingest_allocs_per_job"`
	// Serial is the PR-9 reference leg: one producer through the serial
	// single-goroutine decoder (StreamWorkers < 0) — the path the
	// concurrent spine is measured against, on this same machine. Unlike
	// Stream/PerJob, Serial and ProducerSweep time ADMISSION only (first
	// line sent through last ack received, with the intake bound lifted
	// above the leg's population so execution never throttles ingest):
	// the full lifecycle is dominated by the virtual-clock kernel
	// executing the jobs, identical in every leg, which would bury the
	// ingest-path comparison these legs exist to make.
	Serial FirehoseLeg `json:"serial"`
	// ProducerSweep records admission jobs/s vs producer count with the
	// parallel decoder on (the -producers × -stream-workers sweep).
	ProducerSweep []FirehoseProducerLeg `json:"producer_sweep"`
	// ConcurrentSpeedupX is the best ProducerSweep leg's jobs/s over
	// Serial's. GOMAXPROCS (recorded at the artifact's top level) gives
	// the honest context: on a single-core host the ratio hovers near 1
	// by construction; the CI gate runs on a ≥4-vCPU runner.
	ConcurrentSpeedupX float64 `json:"concurrent_speedup_x"`
}

// firehoseOpts carries the -stream-workers and -producers flags into
// the firehose bench.
type firehoseOpts struct {
	StreamWorkers int
	Producers     []int
}

// parseProducers parses the -producers flag: a comma-separated list of
// positive producer counts.
func parseProducers(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-producers entry %q: want a positive integer", tok)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-producers %q names no producer counts", s)
	}
	return out, nil
}

// BenchArtifact is the machine-readable perf record CI uploads
// (BENCH_PR2.json): wall-clock costs of the headline sweeps at the
// configured scale, plus enough environment to compare runs honestly.
// Unlike the result reports, ns/op is inherently machine-dependent — the
// artifact tracks the trajectory, it is not part of the determinism
// contract.
type BenchArtifact struct {
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Platforms  int          `json:"platforms"`
	Tasks      int          `json:"tasks"`
	M          int          `json:"m"`
	Benchmarks []BenchEntry `json:"benchmarks"`
	// Live holds the schedd service load benchmarks (jobs/sec and latency
	// percentiles per serving policy).
	Live []LiveEntry `json:"live"`
	// Cluster holds the sharded-serving ingest sweep (jobs/sec per shard
	// count × placement on one fixed port-bound platform).
	Cluster []ClusterEntry `json:"cluster"`
	// Steal holds the work-stealing sweep (jobs/sec per steal policy
	// under adversarially pinned placement).
	Steal []StealEntry `json:"steal"`
	// Obs holds the instrumentation-overhead measurements (PR 7).
	Obs *ObsEntry `json:"obs"`
	// Firehose holds the PR-9 bulk-ingest throughput comparison.
	Firehose *FirehoseEntry `json:"firehose"`
}

// writeBenchArtifact times the Figure-1 sweep on a one-worker pool and a
// GOMAXPROCS-wide pool (the serial/parallel scaling headline) and the
// scenario study, via testing.Benchmark, and writes the artifact.
func writeBenchArtifact(path string, cfg experiment.Config, fh firehoseOpts) error {
	serial := cfg
	serial.Workers = 1
	wide := cfg
	wide.Workers = 0
	benches := []struct {
		name string
		fn   func()
	}{
		{"Figure1Serial", func() { experiment.Figure1(core.Heterogeneous, serial) }},
		{"Figure1Parallel", func() { experiment.Figure1(core.Heterogeneous, wide) }},
		{"ScenarioStudy", func() { experiment.ScenarioStudy(wide) }},
	}
	art := BenchArtifact{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Platforms:  cfg.Platforms,
		Tasks:      cfg.Tasks,
		M:          cfg.M,
	}
	for _, bench := range benches {
		fn := bench.fn
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		art.Benchmarks = append(art.Benchmarks, BenchEntry{
			Name:        bench.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		log.Printf("bench %s: %d iterations, %.0f ns/op, %d allocs/op",
			bench.name, res.N, float64(res.NsPerOp()), res.AllocsPerOp())
	}
	for _, policy := range []string{"LS", "SRPT", "SO-LS"} {
		entry, err := liveLoadBench(policy)
		if err != nil {
			return fmt.Errorf("live load bench %s: %w", policy, err)
		}
		art.Live = append(art.Live, entry)
		log.Printf("live %s: %d jobs in %.2fs wall → %.0f jobs/s, p95 %.2f ms, p99 %.2f ms",
			entry.Policy, entry.Jobs, entry.WallSeconds, entry.JobsPerSec, entry.P95LatencyMs, entry.P99LatencyMs)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, placement := range []string{cluster.PlacementRoundRobin, cluster.PlacementLeastLoaded} {
			entry, err := clusterLoadBench(shards, placement)
			if err != nil {
				return fmt.Errorf("cluster load bench shards=%d %s: %w", shards, placement, err)
			}
			art.Cluster = append(art.Cluster, entry)
			log.Printf("cluster shards=%d %s: %d jobs in %.2fs wall → %.0f jobs/s, p95 %.2f ms",
				entry.Shards, entry.Placement, entry.Jobs, entry.WallSeconds, entry.JobsPerSec, entry.P95LatencyMs)
		}
	}
	for _, steal := range cluster.StealPolicyNames() {
		entry, err := stealLoadBench(steal)
		if err != nil {
			return fmt.Errorf("steal load bench %s: %w", steal, err)
		}
		art.Steal = append(art.Steal, entry)
		log.Printf("steal %s (pinned, %d shards): %d jobs (%d moved) in %.2fs wall → %.0f jobs/s",
			entry.Steal, entry.Shards, entry.Jobs, entry.JobsMoved, entry.WallSeconds, entry.JobsPerSec)
	}
	obsEntry, err := obsBench()
	if err != nil {
		return fmt.Errorf("obs bench: %w", err)
	}
	art.Obs = &obsEntry
	log.Printf("obs: record counter %.1f ns, histogram %.1f ns, audit %.1f ns (%d allocs); ingest overhead ×%.3f",
		obsEntry.CounterNsPerOp, obsEntry.HistogramNsPerOp, obsEntry.AuditNsPerOp,
		obsEntry.RecordAllocsPerOp, obsEntry.IngestOverheadRatio)
	fhEntry, err := firehoseBench(fh)
	if err != nil {
		return fmt.Errorf("firehose bench: %w", err)
	}
	art.Firehose = &fhEntry
	log.Printf("firehose (%d shards): stream %d jobs in %.2fs → %.0f jobs/s; per-job %d jobs → %.0f jobs/s; speedup ×%.1f, %.3f allocs/job",
		fhEntry.Shards, fhEntry.Stream.Jobs, fhEntry.Stream.WallSeconds, fhEntry.Stream.JobsPerSec,
		fhEntry.PerJob.Jobs, fhEntry.PerJob.JobsPerSec, fhEntry.SpeedupX, fhEntry.IngestAllocsPerJob)
	log.Printf("firehose concurrency: serial %.0f jobs/s, best sweep %.0f jobs/s → ×%.2f at GOMAXPROCS=%d",
		fhEntry.Serial.JobsPerSec, fhEntry.Serial.JobsPerSec*fhEntry.ConcurrentSpeedupX,
		fhEntry.ConcurrentSpeedupX, art.GOMAXPROCS)
	if err := runner.WriteJSON(path, art); err != nil {
		return err
	}
	log.Printf("wrote perf artifact to %s", path)
	return nil
}

// obsBench measures the observability layer's costs: the metrics
// kernel's record primitives in isolation (the zero-allocation
// contract), and the full admission lifecycle with the layer off vs on
// (the <5% ingest-overhead contract).
func obsBench() (ObsEntry, error) {
	reg := obs.NewRegistry()
	counter := reg.Counter("paperbench_events_total", "bench counter", "")
	hist := reg.Histogram("paperbench_latency_seconds", "bench histogram", "", obs.LatencyBuckets())
	ring := obs.NewAuditRing(256, 4)
	scores := []float64{1, 2, 3, 4}
	record := func(fn func(i int)) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn(i)
			}
		})
	}
	counterRes := record(func(int) { counter.Inc() })
	histRes := record(func(i int) { hist.Observe(float64(i%1000) * 0.001) })
	auditRes := record(func(i int) {
		ring.Record(obs.Decision{Kind: obs.DecisionPlace, Job: i, To: i & 3, Scores: scores})
	})
	allocs := counterRes.AllocsPerOp()
	for _, r := range []testing.BenchmarkResult{histRes, auditRes} {
		if r.AllocsPerOp() > allocs {
			allocs = r.AllocsPerOp()
		}
	}

	// Ingest lifecycle: the BenchmarkScheddIngest workload (4 batched
	// POST /jobs requests, 200 jobs, full drain) against the paper's
	// five-slave heterogeneous testbed on a compressed clock. Minimum
	// ns/op over repeated benchmark runs, per variant.
	ingest := func(instrumented bool) (float64, error) {
		cfg := schedd.Config{
			Platform:   core.NewPlatform([]float64{0.1, 0.25, 0.5, 0.75, 1}, []float64{0.5, 2, 4, 6, 8}),
			Policy:     "LS",
			ClockScale: 50000,
		}
		if !instrumented {
			cfg.DisableMetrics = true
			cfg.AuditDepth = -1
		}
		var benchErr error
		best := 0.0
		for run := 0; run < 3; run++ {
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					srv, err := schedd.New(cfg)
					if err != nil {
						benchErr = err
						b.FailNow()
					}
					for batch := 0; batch < 4; batch++ {
						req := httptest.NewRequest("POST", "/jobs", strings.NewReader(`{"count":50}`))
						rec := httptest.NewRecorder()
						srv.Handler().ServeHTTP(rec, req)
						if rec.Code != 202 {
							benchErr = fmt.Errorf("POST /jobs: %d %s", rec.Code, rec.Body.String())
							b.FailNow()
						}
					}
					if err := srv.Drain(); err != nil {
						benchErr = err
						b.FailNow()
					}
				}
			})
			if benchErr != nil {
				return 0, benchErr
			}
			if ns := float64(res.NsPerOp()); run == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}
	bare, err := ingest(false)
	if err != nil {
		return ObsEntry{}, fmt.Errorf("bare ingest: %w", err)
	}
	instrumented, err := ingest(true)
	if err != nil {
		return ObsEntry{}, fmt.Errorf("instrumented ingest: %w", err)
	}
	return ObsEntry{
		CounterNsPerOp:            float64(counterRes.NsPerOp()),
		HistogramNsPerOp:          float64(histRes.NsPerOp()),
		AuditNsPerOp:              float64(auditRes.NsPerOp()),
		RecordAllocsPerOp:         allocs,
		BareIngestNsPerOp:         bare,
		InstrumentedIngestNsPerOp: instrumented,
		IngestOverheadRatio:       instrumented / bare,
	}, nil
}

// firehoseBench runs the streamed-ingest throughput comparisons. Every
// leg uses the identical service configuration — a 4-shard
// virtual-clock cluster over the eight-slave heterogeneous platform,
// least-loaded placement, service-default observability. The Stream and
// PerJob legs time the full lifecycle (first submission through drain)
// and differ only in how jobs arrive: one NDJSON stream of batched
// lines versus one HTTP round trip per job (the PR-9 comparison). The
// Serial and ProducerSweep legs time admission only — the wall window
// closes at the last ack, the intake bound is lifted above the leg's
// population, and the lines are small — because the lifecycle is
// dominated by the virtual kernel executing the jobs, identical in
// every leg, and the serial-versus-concurrent comparison is about the
// decode → placement → intake path the PR-10 spine parallelised.
func firehoseBench(opts firehoseOpts) (FirehoseEntry, error) {
	const (
		shards     = 4
		streamJobs = 1_000_000
		sweepJobs  = 1_000_000
		perLine    = 1000
		sweepLine  = 50
		perJobJobs = 20_000
	)
	platform := core.NewPlatform(
		[]float64{0.1, 0.1, 0.2, 0.2, 0.3, 0.3, 0.1, 0.2},
		[]float64{0.4, 0.8, 0.4, 0.8, 0.4, 0.8, 0.4, 0.8})
	newService := func(streamWorkers, queueDepth int) (*schedd.Server, *httptest.Server, *schedclient.Client, error) {
		srv, err := schedd.New(schedd.Config{
			Platform:         platform,
			Policy:           "LS",
			Shards:           shards,
			Placement:        cluster.PlacementLeastLoaded,
			Partition:        core.PartitionBalanced,
			VirtualClock:     true,
			StreamWorkers:    streamWorkers,
			IngestQueueDepth: queueDepth,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		return srv, ts, schedclient.New(ts.URL), nil
	}
	run := func(jobs, streamWorkers int, pump func(*schedclient.Client) error) (FirehoseLeg, error) {
		srv, ts, cli, err := newService(streamWorkers, 0)
		if err != nil {
			return FirehoseLeg{}, err
		}
		defer ts.Close()
		start := time.Now()
		if err := pump(cli); err != nil {
			return FirehoseLeg{}, err
		}
		if err := srv.Drain(); err != nil {
			return FirehoseLeg{}, err
		}
		wall := time.Since(start).Seconds()
		if c := srv.Counts(); c.Completed != jobs || c.Submitted != jobs {
			return FirehoseLeg{}, fmt.Errorf("completed %d / submitted %d of %d jobs", c.Completed, c.Submitted, jobs)
		}
		return FirehoseLeg{Jobs: jobs, WallSeconds: wall, JobsPerSec: float64(jobs) / wall}, nil
	}
	// streamPump drives one bulk-ingest session with total jobs split
	// across producers concurrent connections, perLineN jobs per NDJSON
	// line.
	streamPump := func(total, producers, perLineN int) func(*schedclient.Client) error {
		return func(cli *schedclient.Client) error {
			per := total / producers
			var wg sync.WaitGroup
			errs := make(chan error, producers)
			for p := 0; p < producers; p++ {
				share := per
				if p == producers-1 {
					share = total - per*(producers-1)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					st, err := cli.StreamJobs(context.Background())
					if err != nil {
						errs <- err
						return
					}
					for sent := 0; sent < share; sent += perLineN {
						n := min(perLineN, share-sent)
						if err := st.Send(schedd.SubmitRequest{Count: n}); err != nil {
							errs <- err
							return
						}
					}
					sum, err := st.Close()
					if err != nil {
						errs <- err
						return
					}
					if sum.Jobs != share {
						errs <- fmt.Errorf("stream acked %d of %d jobs", sum.Jobs, share)
					}
				}()
			}
			wg.Wait()
			close(errs)
			return <-errs
		}
	}

	// runIngest times admission only: the wall window closes when the
	// last ack arrives, before the drain. The intake bound is lifted
	// above the leg's population so the kernel's execution rate never
	// throttles the producers, and the sweepLine-sized lines keep the
	// per-line decode/ack work non-trivial. The drain still runs and the
	// counts are still verified — they are just outside the window.
	runIngest := func(jobs, streamWorkers, producers int) (FirehoseLeg, error) {
		srv, ts, cli, err := newService(streamWorkers, jobs)
		if err != nil {
			return FirehoseLeg{}, err
		}
		defer ts.Close()
		start := time.Now()
		if err := streamPump(jobs, producers, sweepLine)(cli); err != nil {
			return FirehoseLeg{}, err
		}
		wall := time.Since(start).Seconds()
		if err := srv.Drain(); err != nil {
			return FirehoseLeg{}, err
		}
		if c := srv.Counts(); c.Completed != jobs || c.Submitted != jobs {
			return FirehoseLeg{}, fmt.Errorf("completed %d / submitted %d of %d jobs", c.Completed, c.Submitted, jobs)
		}
		return FirehoseLeg{Jobs: jobs, WallSeconds: wall, JobsPerSec: float64(jobs) / wall}, nil
	}

	stream, err := run(streamJobs, opts.StreamWorkers, streamPump(streamJobs, 1, perLine))
	if err != nil {
		return FirehoseEntry{}, fmt.Errorf("stream leg: %w", err)
	}

	// The PR-9 reference: the same single-producer stream through the
	// serial decoder (StreamWorkers < 0) — what admission looked like
	// before the concurrent spine, measured on this machine.
	serial, err := runIngest(sweepJobs, -1, 1)
	if err != nil {
		return FirehoseEntry{}, fmt.Errorf("serial leg: %w", err)
	}

	var sweep []FirehoseProducerLeg
	best := 0.0
	for _, producers := range opts.Producers {
		leg, err := runIngest(sweepJobs, opts.StreamWorkers, producers)
		if err != nil {
			return FirehoseEntry{}, fmt.Errorf("sweep leg (%d producers): %w", producers, err)
		}
		sweep = append(sweep, FirehoseProducerLeg{
			Producers:     producers,
			StreamWorkers: opts.StreamWorkers,
			Jobs:          leg.Jobs,
			WallSeconds:   leg.WallSeconds,
			JobsPerSec:    leg.JobsPerSec,
		})
		best = math.Max(best, leg.JobsPerSec)
		log.Printf("firehose sweep: %d producers → %.0f jobs/s", producers, leg.JobsPerSec)
	}

	// The baseline keeps the same modest client concurrency the other
	// load benches use; each of the 4 producers runs a serial
	// one-job-per-POST loop.
	perJob, err := run(perJobJobs, opts.StreamWorkers, func(cli *schedclient.Client) error {
		const producers = 4
		var wg sync.WaitGroup
		errs := make(chan error, producers)
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perJobJobs/producers; i++ {
					if _, err := cli.SubmitBatch(1); err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		return <-errs
	})
	if err != nil {
		return FirehoseEntry{}, fmt.Errorf("per-job leg: %w", err)
	}

	return FirehoseEntry{
		Shards:             shards,
		Stream:             stream,
		PerJob:             perJob,
		SpeedupX:           stream.JobsPerSec / perJob.JobsPerSec,
		IngestAllocsPerJob: firehoseAllocsPerJob(),
		Serial:             serial,
		ProducerSweep:      sweep,
		ConcurrentSpeedupX: best / serial.JobsPerSec,
	}, nil
}

// firehoseAllocsPerJob measures the admission path's steady-state heap
// cost: SubmitRange batches into an unstarted firehose cluster (the
// intake holds everything, nothing drains), allocs/op divided by the
// jobs routed per op. Construction happens outside the timer, so the
// number is the marginal cost per admitted job — the ≤1 contract CI
// gates.
func firehoseAllocsPerJob() float64 {
	const (
		batches  = 10
		perBatch = 1000
	)
	pl := core.NewPlatform(
		[]float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1},
		[]float64{0.5, 1, 1.5, 2, 0.5, 1, 1.5, 2})
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			r, err := cluster.New(cluster.Config{
				Platform:     pl,
				NewScheduler: func() sim.Scheduler { return sched.New("LS") },
				Shards:       4,
				Placement:    cluster.PlacementLeastLoaded,
				Partition:    core.PartitionBalanced,
				World:        func(int) live.World { return live.NewRealTime(50000) },
				Firehose:     &cluster.FirehoseConfig{QueueDepth: 2 * batches * perBatch},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for batch := 0; batch < batches; batch++ {
				if _, err := r.SubmitRange(live.JobSpec{}, perBatch); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	return float64(res.AllocsPerOp()) / (batches * perBatch)
}

// loadBench is the shared HTTP load generator: it stands up the real
// service on a loopback listener, slams it with concurrent batched
// submissions, drains, and reports the wall window plus the service's
// own stats (the GET /stats data, the single source of latency numbers).
//
// With settle, the generator polls the service until every job has
// completed BEFORE initiating the drain, so the wall window measures
// serving, not shutdown. The distinction matters only when the two
// differ: Drain stops the rebalancer before the shards, so a
// drain-as-completion-barrier window would never let stealing touch a
// burst that arrives faster than one rebalancer tick — exactly the
// adversarial load the steal benchmark creates. The non-steal entries
// keep the drain barrier for comparability with the PR-5 artifact.
func loadBench(cfg schedd.Config, producers, batches, perBatch int, settle bool) (wall float64, svc schedd.StatsResponse, err error) {
	jobs := producers * batches * perBatch
	srv, err := schedd.New(cfg)
	if err != nil {
		return 0, svc, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cli := schedclient.New(ts.URL)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if _, err := cli.SubmitBatch(perBatch); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return 0, svc, err
		}
	}
	if settle {
		deadline := time.Now().Add(30 * time.Second)
		for srv.Counts().Completed < jobs {
			if time.Now().After(deadline) {
				return 0, svc, fmt.Errorf("timed out settling %d jobs (completed %d)", jobs, srv.Counts().Completed)
			}
			time.Sleep(2 * time.Millisecond)
		}
		wall = time.Since(start).Seconds()
	}
	if err := srv.Drain(); err != nil {
		return 0, svc, err
	}
	if !settle {
		wall = time.Since(start).Seconds()
	}

	svc = srv.Stats()
	if svc.Jobs.Completed != jobs {
		return wall, svc, fmt.Errorf("completed %d of %d jobs", svc.Jobs.Completed, jobs)
	}
	if svc.LatencySeconds == nil {
		return wall, svc, fmt.Errorf("no latency stats after %d jobs", jobs)
	}
	return wall, svc, nil
}

// liveLoadBench is the single-runtime (per-policy) load benchmark.
func liveLoadBench(policy string) (LiveEntry, error) {
	const (
		producers  = 4
		batches    = 5
		perBatch   = 25
		clockScale = 2000
	)
	wall, svc, err := loadBench(schedd.Config{
		// The paper's five-slave heterogeneous testbed shape, in paper
		// seconds; the scaled clock compresses it to milliseconds.
		Platform:   core.NewPlatform([]float64{0.1, 0.25, 0.5, 0.75, 1}, []float64{0.5, 2, 4, 6, 8}),
		Policy:     policy,
		ClockScale: clockScale,
	}, producers, batches, perBatch, false)
	if err != nil {
		return LiveEntry{}, err
	}
	jobs := producers * batches * perBatch
	return LiveEntry{
		Policy:       policy,
		Jobs:         jobs,
		Producers:    producers,
		ClockScale:   clockScale,
		WallSeconds:  wall,
		JobsPerSec:   float64(jobs) / wall,
		P50LatencyMs: svc.LatencySeconds.P50 * 1000,
		P95LatencyMs: svc.LatencySeconds.P95 * 1000,
		P99LatencyMs: svc.LatencySeconds.P99 * 1000,
	}, nil
}

// clusterLoadBench is the sharded-serving ingest benchmark: a fixed
// eight-slave comm-heavy platform (identical 1 s links, so the single
// master's port caps it at ~1 job per model second no matter the
// compute) partitioned across k masters. Every extra shard brings its
// own port, so completion throughput — hence sustained jobs/sec through
// the drain — scales near-linearly in k.
func clusterLoadBench(shards int, placement string) (ClusterEntry, error) {
	const (
		producers  = 4
		batches    = 4
		perBatch   = 25
		clockScale = 2000
	)
	wall, svc, err := loadBench(schedd.Config{
		Platform: core.NewPlatform(
			[]float64{1, 1, 1, 1, 1, 1, 1, 1},
			[]float64{1, 2, 3, 4, 1, 2, 3, 4}),
		Policy:     "LS",
		Shards:     shards,
		Placement:  placement,
		Partition:  core.PartitionBalanced,
		ClockScale: clockScale,
	}, producers, batches, perBatch, false)
	if err != nil {
		return ClusterEntry{}, err
	}
	jobs := producers * batches * perBatch
	return ClusterEntry{
		Shards:       shards,
		Placement:    placement,
		Partition:    string(core.PartitionBalanced),
		Jobs:         jobs,
		Producers:    producers,
		ClockScale:   clockScale,
		WallSeconds:  wall,
		JobsPerSec:   float64(jobs) / wall,
		P50LatencyMs: svc.LatencySeconds.P50 * 1000,
		P95LatencyMs: svc.LatencySeconds.P95 * 1000,
		P99LatencyMs: svc.LatencySeconds.P99 * 1000,
	}, nil
}

// stealLoadBench is the work-stealing benchmark: the clusterLoadBench
// platform partitioned across 4 masters, but with pinned placement —
// every submission lands on shard 0 — so with stealing off the cluster
// degenerates to one port and with it on, the rebalancer must migrate
// roughly three quarters of the backlog outward to recover the
// multi-port throughput.
func stealLoadBench(steal string) (StealEntry, error) {
	const (
		shards     = 4
		producers  = 4
		batches    = 4
		perBatch   = 25
		clockScale = 2000
		interval   = 2 * time.Millisecond
	)
	wall, svc, err := loadBench(schedd.Config{
		Platform: core.NewPlatform(
			[]float64{1, 1, 1, 1, 1, 1, 1, 1},
			[]float64{1, 2, 3, 4, 1, 2, 3, 4}),
		Policy:        "LS",
		Shards:        shards,
		Placement:     cluster.PlacementPinned,
		Partition:     core.PartitionBalanced,
		ClockScale:    clockScale,
		Steal:         steal,
		StealInterval: interval,
	}, producers, batches, perBatch, true)
	if err != nil {
		return StealEntry{}, err
	}
	jobs := producers * batches * perBatch
	entry := StealEntry{
		Shards:          shards,
		Placement:       cluster.PlacementPinned,
		Steal:           steal,
		IntervalSeconds: interval.Seconds(),
		Jobs:            jobs,
		Producers:       producers,
		ClockScale:      clockScale,
		WallSeconds:     wall,
		JobsPerSec:      float64(jobs) / wall,
		P50LatencyMs:    svc.LatencySeconds.P50 * 1000,
		P95LatencyMs:    svc.LatencySeconds.P95 * 1000,
		P99LatencyMs:    svc.LatencySeconds.P99 * 1000,
	}
	if svc.Steal != nil {
		entry.JobsMoved = svc.Steal.JobsMoved
	}
	return entry, nil
}

// validateSchedulers rejects unknown names up front, so a typo yields a
// CLI error instead of a panic out of the experiment harness.
func validateSchedulers(names []string) error {
	for _, n := range names {
		if err := sched.Validate(n); err != nil {
			return err
		}
	}
	return nil
}

// parseClasses turns "heterogeneous,comp-homogeneous" into a member set;
// empty input selects all four classes.
func parseClasses(s string) (map[core.Class]bool, error) {
	set := map[core.Class]bool{}
	if strings.TrimSpace(s) == "" {
		for _, c := range core.Classes {
			set[c] = true
		}
		return set, nil
	}
	for _, name := range splitList(s) {
		found := false
		for _, c := range core.Classes {
			if c.String() == name {
				set[c] = true
				found = true
			}
		}
		if !found {
			valid := make([]string, len(core.Classes))
			for i, c := range core.Classes {
				valid[i] = c.String()
			}
			return nil, fmt.Errorf("unknown class %q; valid: %s", name, strings.Join(valid, ", "))
		}
	}
	return set, nil
}

func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
