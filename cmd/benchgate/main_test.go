package main

import (
	"bufio"
	"regexp"
	"strings"
	"testing"
)

const oldOut = `
goos: linux
BenchmarkDispatch-4   	       5	    453377 ns/op	  279784 B/op	     112 allocs/op
BenchmarkDispatch-4   	       5	    470000 ns/op	  279784 B/op	     112 allocs/op
BenchmarkFigure1Serial 	       5	  28581919 ns/op	         0.8408 SLJFWC-makespan	27999377 B/op	  187327 allocs/op
BenchmarkGone-4       	       5	      1000 ns/op
PASS
`

const newOut = `
BenchmarkDispatch-8   	       5	    600000 ns/op	  279784 B/op	     112 allocs/op
BenchmarkFigure1Serial 	       5	  11600000 ns/op	         0.8408 SLJFWC-makespan	 7676825 B/op	    3988 allocs/op
BenchmarkFresh-8      	       5	      2000 ns/op
BenchmarkNoisy-8      	       5	      9999 ns/op
`

func parseStr(t *testing.T, s string) map[string]Sample {
	t.Helper()
	out, err := Parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParseMinAcrossCounts(t *testing.T) {
	got := parseStr(t, oldOut)
	d, ok := got["BenchmarkDispatch"]
	if !ok {
		t.Fatalf("BenchmarkDispatch not parsed (GOMAXPROCS suffix not stripped?): %v", got)
	}
	if d["ns/op"] != 453377 {
		t.Fatalf("min ns/op = %v, want 453377", d["ns/op"])
	}
	if d["allocs/op"] != 112 {
		t.Fatalf("allocs/op = %v, want 112", d["allocs/op"])
	}
	// Custom metrics ride along without confusing the pair parser.
	if got["BenchmarkFigure1Serial"]["SLJFWC-makespan"] != 0.8408 {
		t.Fatalf("custom metric lost: %v", got["BenchmarkFigure1Serial"])
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	regressions, notes := Gate(parseStr(t, oldOut), parseStr(t, newOut),
		[]string{"ns/op", "allocs/op"}, 15, nil)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "BenchmarkDispatch ns/op") {
		t.Fatalf("regressions = %v, want exactly the Dispatch ns/op one", regressions)
	}
	// The 2.4× Figure1Serial improvement and the membership changes are
	// notes, not failures.
	var sawImprove, sawNew, sawMissing bool
	for _, n := range notes {
		sawImprove = sawImprove || strings.Contains(n, "improvement BenchmarkFigure1Serial")
		sawNew = sawNew || strings.Contains(n, "NEW BenchmarkFresh")
		sawMissing = sawMissing || strings.Contains(n, "MISSING BenchmarkGone")
	}
	if !sawImprove || !sawNew || !sawMissing {
		t.Fatalf("notes missing expected entries: %v", notes)
	}
}

func TestGateSkip(t *testing.T) {
	regressions, _ := Gate(parseStr(t, oldOut), parseStr(t, newOut),
		[]string{"ns/op"}, 15, regexp.MustCompile(`Dispatch`))
	if len(regressions) != 0 {
		t.Fatalf("skip pattern did not exempt Dispatch: %v", regressions)
	}
}

func TestGateZeroBaseline(t *testing.T) {
	old := parseStr(t, "BenchmarkQueue 1 100 ns/op 0 allocs/op\n")
	bad := parseStr(t, "BenchmarkQueue 1 100 ns/op 256 allocs/op\n")
	regressions, _ := Gate(old, bad, []string{"ns/op", "allocs/op"}, 15, nil)
	if len(regressions) != 1 || !strings.Contains(regressions[0], "zero baseline") {
		t.Fatalf("0 → 256 allocs/op not flagged: %v", regressions)
	}
	same := parseStr(t, "BenchmarkQueue 1 100 ns/op 0 allocs/op\n")
	if regressions, _ := Gate(old, same, []string{"ns/op", "allocs/op"}, 15, nil); len(regressions) != 0 {
		t.Fatalf("0 → 0 flagged: %v", regressions)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	old := parseStr(t, "BenchmarkX 1 100 ns/op 10 allocs/op\n")
	new := parseStr(t, "BenchmarkX 1 110 ns/op 10 allocs/op\n")
	if regressions, _ := Gate(old, new, []string{"ns/op", "allocs/op"}, 15, nil); len(regressions) != 0 {
		t.Fatalf("+10%% flagged at 15%% threshold: %v", regressions)
	}
	if regressions, _ := Gate(old, new, []string{"ns/op"}, 5, nil); len(regressions) != 1 {
		t.Fatal("+10% not flagged at 5% threshold")
	}
}
