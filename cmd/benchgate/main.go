// Command benchgate is the CI benchmark-regression gate: it parses two
// `go test -bench` output files (the baseline from main and the
// candidate from the PR head), pairs benchmarks by name, and fails —
// exit status 1 — if any gated metric regressed beyond the threshold.
//
// Robustness against machine noise comes from -count: run each side
// with `go test -bench ... -count=N` and benchgate compares the per-
// benchmark MINIMUM of each metric, which for ns/op is the standard
// low-noise estimator (the fastest observed run had the least
// interference; allocs/op is deterministic and the min is just the
// value). benchstat remains the human-readable report alongside — this
// tool only encodes the pass/fail policy, with no dependencies.
//
// Usage:
//
//	benchgate -old main.txt -new pr.txt -threshold 15
//	benchgate -old main.txt -new pr.txt -threshold 15 -metrics ns/op,allocs/op -skip ScheddIngest
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Sample holds the per-metric minima observed for one benchmark.
type Sample map[string]float64

// benchLine matches one benchmark result line:
//
//	BenchmarkDispatch-4   3   453377 ns/op   0.84 custom-metric   279784 B/op   112 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// Parse reads `go test -bench` output, returning each benchmark's
// per-metric minima across repeated -count runs. Lines that are not
// benchmark results (headers, PASS, custom prints) are ignored.
func Parse(r *bufio.Scanner) (map[string]Sample, error) {
	out := map[string]Sample{}
	for r.Scan() {
		m := benchLine.FindStringSubmatch(r.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], m[2]
		s := out[name]
		if s == nil {
			s = Sample{}
			out[name] = s
		}
		fields := strings.Fields(rest)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q: %v", name, fields[i], err)
			}
			unit := fields[i+1]
			if prev, ok := s[unit]; !ok || v < prev {
				s[unit] = v
			}
		}
	}
	return out, r.Err()
}

func parseFile(path string) (map[string]Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	return Parse(sc)
}

// Gate compares new against old for the gated metrics and returns one
// line per regression beyond thresholdPct. Benchmarks present on only
// one side are reported as informational (a renamed benchmark must
// update the gate deliberately, not silently drop out).
func Gate(old, new map[string]Sample, metrics []string, thresholdPct float64, skip *regexp.Regexp) (regressions, notes []string) {
	for name, n := range new {
		if skip != nil && skip.MatchString(name) {
			continue
		}
		o, ok := old[name]
		if !ok {
			notes = append(notes, fmt.Sprintf("NEW %s (no baseline on main; not gated)", name))
			continue
		}
		for _, metric := range metrics {
			nv, nok := n[metric]
			ov, ook := o[metric]
			if !nok || !ook {
				continue
			}
			if ov == 0 {
				// A zero baseline is the allocation-free steady state this
				// gate exists to protect: any growth from it is an infinite
				// relative regression, so gate on absolute change.
				if nv > 0 {
					regressions = append(regressions, fmt.Sprintf(
						"REGRESSION %s %s: 0 → %.6g (zero baseline: any growth fails)",
						name, metric, nv))
				}
				continue
			}
			changePct := (nv/ov - 1) * 100
			if changePct > thresholdPct {
				regressions = append(regressions, fmt.Sprintf(
					"REGRESSION %s %s: %.6g → %.6g (%+.1f%%, threshold +%.0f%%)",
					name, metric, ov, nv, changePct, thresholdPct))
			} else if changePct < -thresholdPct {
				notes = append(notes, fmt.Sprintf("improvement %s %s: %.6g → %.6g (%+.1f%%)",
					name, metric, ov, nv, changePct))
			}
		}
	}
	for name := range old {
		if _, ok := new[name]; !ok && (skip == nil || !skip.MatchString(name)) {
			notes = append(notes, fmt.Sprintf("MISSING %s (present on main, absent on head)", name))
		}
	}
	return regressions, notes
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	oldPath := flag.String("old", "", "baseline `go test -bench` output (main)")
	newPath := flag.String("new", "", "candidate `go test -bench` output (PR head)")
	threshold := flag.Float64("threshold", 15, "max allowed regression, percent")
	metricsFlag := flag.String("metrics", "ns/op,allocs/op", "comma-separated gated metrics")
	skipFlag := flag.String("skip", "", "regexp of benchmark names exempt from the gate")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("both -old and -new are required")
	}
	oldS, err := parseFile(*oldPath)
	if err != nil {
		log.Fatalf("parse %s: %v", *oldPath, err)
	}
	newS, err := parseFile(*newPath)
	if err != nil {
		log.Fatalf("parse %s: %v", *newPath, err)
	}
	if len(oldS) == 0 || len(newS) == 0 {
		log.Fatalf("no benchmark lines parsed (old: %d, new: %d)", len(oldS), len(newS))
	}
	var skip *regexp.Regexp
	if *skipFlag != "" {
		skip, err = regexp.Compile(*skipFlag)
		if err != nil {
			log.Fatalf("bad -skip: %v", err)
		}
	}
	metrics := strings.Split(*metricsFlag, ",")
	regressions, notes := Gate(oldS, newS, metrics, *threshold, skip)
	for _, n := range notes {
		fmt.Println(n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Println(r)
		}
		os.Exit(1)
	}
	fmt.Printf("ok: %d benchmarks within +%.0f%% on %s\n", len(newS), *threshold, *metricsFlag)
}
