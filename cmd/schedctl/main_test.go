package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/schedd"
	"repro/pkg/schedclient"
)

// liveDaemon starts an in-process schedd with the recorder persisting
// to dir, runs jobs through it, drains, and returns the test server's
// URL (still serving its read-only surface) and the recording dir.
func liveDaemon(t *testing.T, drain bool) (string, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := schedd.New(schedd.Config{
		Platform:   core.NewPlatform([]float64{0.5, 1, 2}, []float64{2, 4, 5}),
		Policy:     "LS",
		ClockScale: 4000,
		RecordDir:  dir,
		SLOs: []obs.Objective{
			{Name: "p99", Kind: obs.ObjectiveLatency, ThresholdSeconds: 30, Target: 0.99},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	cli := schedclient.New(ts.URL)
	if _, err := cli.SubmitBatch(6); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := cli.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Jobs.Completed == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if drain {
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
	} else {
		t.Cleanup(func() { _ = s.Drain() })
	}
	return ts.URL, dir
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if code := run([]string{"bogus"}, &out, &errb); code != 1 {
		t.Fatalf("unknown subcommand: exit %d", code)
	}
	if !strings.Contains(errb.String(), "unknown subcommand") {
		t.Fatalf("stderr %q", errb.String())
	}
	if code := run([]string{"export", "-format", "nope", "-dir", t.TempDir()}, &out, &errb); code != 1 {
		t.Fatalf("bad format: exit %d", code)
	}
}

func TestTopAgainstLiveDaemon(t *testing.T) {
	url, _ := liveDaemon(t, false)
	var out, errb bytes.Buffer
	if code := run([]string{"top", "-addr", url}, &out, &errb); code != 0 {
		t.Fatalf("top: exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"policy LS", "completed 6", "shard", "flight:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("top output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestExportFromLiveAndDir(t *testing.T) {
	url, dir := liveDaemon(t, true)

	// Perfetto from the live daemon's GET /flight.
	var live bytes.Buffer
	if code := run([]string{"export", "-addr", url, "-format", "perfetto"}, &live, &live); code != 0 {
		t.Fatalf("export live: exit %d: %s", code, live.String())
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Pid  int            `json:"pid"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(live.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output not JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete++
			if ev.Dur < 0 || ev.Name == "" {
				t.Fatalf("bad trace event %+v", ev)
			}
		}
	}
	// 6 completed jobs × 4 lifecycle stages.
	if complete != 24 {
		t.Fatalf("%d complete events, want 24", complete)
	}

	// The same export from the on-disk recording is byte-identical.
	outFile := t.TempDir() + "/trace.json"
	var errb bytes.Buffer
	if code := run([]string{"export", "-dir", dir, "-format", "perfetto", "-o", outFile}, &errb, &errb); code != 0 {
		t.Fatalf("export dir: exit %d: %s", code, errb.String())
	}
	onDisk, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), onDisk) {
		t.Fatal("live and on-disk exports differ")
	}

	// Gantt and JSONL formats render from the same recording.
	var gantt bytes.Buffer
	if code := run([]string{"export", "-dir", dir, "-format", "gantt", "-width", "60"}, &gantt, &gantt); code != 0 {
		t.Fatalf("export gantt: exit %d: %s", code, gantt.String())
	}
	if !strings.Contains(gantt.String(), "shard 0 (6 jobs)") || !strings.Contains(gantt.String(), "port") {
		t.Fatalf("gantt output:\n%s", gantt.String())
	}
	var jsonl bytes.Buffer
	if code := run([]string{"export", "-dir", dir, "-format", "jsonl"}, &jsonl, &jsonl); code != 0 {
		t.Fatalf("export jsonl: exit %d: %s", code, jsonl.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(jsonl.String()), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("jsonl line not JSON: %q", line)
		}
	}
}

func TestTailFromDir(t *testing.T) {
	_, dir := liveDaemon(t, true)
	var out, errb bytes.Buffer
	if code := run([]string{"tail", "-dir", dir, "-n", "3"}, &out, &errb); code != 0 {
		t.Fatalf("tail: exit %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		var ev schedd.WatchEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("tail line %q: %v", line, err)
		}
		if ev.Kind == "" {
			t.Fatalf("tail event %+v", ev)
		}
	}
}

func TestSLOSubcommand(t *testing.T) {
	url, _ := liveDaemon(t, false)
	var out, errb bytes.Buffer
	if code := run([]string{"slo", "-addr", url}, &out, &errb); code != 0 {
		t.Fatalf("slo: exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"p99", "latency", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("slo output lacks %q:\n%s", want, out.String())
		}
	}
	// A burning objective flips the exit code — the burn-rate gate.
	breached := renderSLO(&out, schedd.SLOResponse{
		Enabled: true,
		Objectives: []schedd.SLOStatus{{
			Objective: obs.Objective{Name: "x", Kind: obs.ObjectiveAvailability, Target: 0.99},
			OK:        false,
			Windows:   []obs.BurnWindow{{WindowSeconds: 300, Good: 1, Total: 2, ErrorRate: 0.5, BurnRate: 50, OK: false}},
		}},
	})
	if !breached {
		t.Fatal("burning objective not reported as breached")
	}
	if !strings.Contains(out.String(), "BURNING") {
		t.Fatalf("burning row missing:\n%s", out.String())
	}
}

// TestTailLiveStream follows the live /v1/watch stream through the
// client with a bounded -n, so the subcommand exits on its own.
func TestTailLiveStream(t *testing.T) {
	url, _ := liveDaemon(t, false)
	var out, errb bytes.Buffer
	// Events already flowed (liveDaemon waits for 6 completions), but the
	// SSE hub only delivers new ones — submit more after subscribing.
	done := make(chan int, 1)
	go func() { done <- run([]string{"tail", "-addr", url, "-n", "2"}, &out, &errb) }()
	cli := schedclient.New(url)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cli.SubmitBatch(1); err != nil {
			t.Error(err)
			break
		}
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("tail: exit %d: %s", code, errb.String())
			}
			lines := strings.Split(strings.TrimSpace(out.String()), "\n")
			if len(lines) != 2 {
				t.Fatalf("%d lines, want 2:\n%s", len(lines), out.String())
			}
			var ev schedd.WatchEvent
			if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil || ev.Kind == "" {
				t.Fatalf("tail line %q: %v", lines[0], err)
			}
			return
		case <-time.After(20 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("tail never delivered 2 events")
		}
	}
}
