// Command schedctl is the operator's CLI for the scheduling daemon: it
// inspects a live schedd over HTTP or a flight recording on disk, and
// exports recordings to analysis formats. All HTTP goes through the
// typed client (pkg/schedclient), which targets the versioned /v1 API.
//
// Subcommands:
//
//	schedctl top    [-addr URL]                 one-shot cluster overview from GET /v1/stats
//	schedctl tail   [-addr URL | -dir DIR] [-n N]
//	                                            follow the live /v1/watch event stream, or
//	                                            print a recording's events
//	schedctl export [-addr URL | -dir DIR] -format perfetto|gantt|jsonl [-o FILE] [-width N]
//	                                            convert a recording (live GET /v1/flight or
//	                                            on-disk segments) to Chrome trace-event
//	                                            JSON (load in Perfetto / chrome://tracing),
//	                                            per-shard Gantt timelines, or JSON lines
//	schedctl slo    [-addr URL]                 burn-rate report from GET /v1/slo; exits 1
//	                                            when any objective is burning (the CI gate)
//
// -dir reads seg-*.flight segments written by schedd -record-dir and
// needs no running daemon; -addr (default http://127.0.0.1:8080) talks
// to a live one.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs/flight"
	"repro/internal/schedd"
	"repro/internal/textplot"
	"repro/pkg/schedclient"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "schedctl: want a subcommand: top, tail, export, slo")
		return 2
	}
	var err error
	switch args[0] {
	case "top":
		err = cmdTop(args[1:], stdout)
	case "tail":
		err = cmdTail(args[1:], stdout)
	case "export":
		err = cmdExport(args[1:], stdout)
	case "slo":
		var breached bool
		breached, err = cmdSLO(args[1:], stdout)
		if err == nil && breached {
			return 1
		}
	default:
		err = fmt.Errorf("unknown subcommand %q: want top, tail, export or slo", args[0])
	}
	if err != nil {
		fmt.Fprintln(stderr, "schedctl:", err)
		return 1
	}
	return 0
}

// loadRecording reads a flight recording from -dir (on-disk segments)
// or, when dir is empty, from the live daemon's GET /v1/flight.
func loadRecording(dir, addr string) (*flight.Recording, error) {
	if dir != "" {
		return flight.ReadDir(dir)
	}
	raw, err := schedclient.New(addr).Flight()
	if err != nil {
		return nil, err
	}
	return flight.Parse(raw)
}

func cmdTop(args []string, stdout io.Writer) error {
	fs := newFlagSet("top")
	addr := fs.String("addr", "http://127.0.0.1:8080", "schedd address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stats, err := schedclient.New(*addr).Stats()
	if err != nil {
		return err
	}
	renderTop(stdout, stats)
	return nil
}

// renderTop prints the one-shot cluster overview: a summary header and
// one table row per shard.
func renderTop(w io.Writer, stats schedd.StatsResponse) {
	fmt.Fprintf(w, "policy %s  shards %d  slaves %d  placement %s  clock x%g  uptime %.1fs",
		stats.Policy, stats.Shards, stats.Slaves, stats.Placement, stats.ClockScale, stats.UptimeSeconds)
	if stats.Draining {
		fmt.Fprint(w, "  DRAINING")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "jobs: submitted %d  completed %d  stolen %d  throughput %.2f/s\n",
		stats.Jobs.Submitted, stats.Jobs.Completed, stats.Jobs.Stolen, stats.ThroughputJobsPerSec)
	if l := stats.LatencySeconds; l != nil {
		fmt.Fprintf(w, "latency: mean %.4fs  p50 %.4fs  p95 %.4fs  p99 %.4fs\n", l.Mean, l.P50, l.P95, l.P99)
	}
	if r := stats.Recorder; r != nil {
		fmt.Fprintf(w, "flight: %d frames  %d segments (%d dropped)\n", r.Frames, r.Segments, r.SegmentsDropped)
	}
	rows := make([][]string, 0, len(stats.PerShard))
	for _, sec := range stats.PerShard {
		p50 := "-"
		if sec.LatencySeconds != nil {
			p50 = fmt.Sprintf("%.4f", sec.LatencySeconds.P50)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", sec.Shard),
			fmt.Sprintf("%d", len(sec.Slaves)),
			fmt.Sprintf("%d", sec.Jobs.Submitted),
			fmt.Sprintf("%d", sec.Jobs.Completed),
			fmt.Sprintf("%d", sec.QueueDepth),
			fmt.Sprintf("%d", sec.EventsDropped),
			p50,
		})
	}
	fmt.Fprint(w, textplot.Table(
		[]string{"shard", "slaves", "submitted", "completed", "queue", "ev-drop", "p50s"}, rows))
}

func cmdTail(args []string, stdout io.Writer) error {
	fs := newFlagSet("tail")
	addr := fs.String("addr", "http://127.0.0.1:8080", "schedd address")
	dir := fs.String("dir", "", "read a recording directory instead of the live stream")
	n := fs.Int("n", 0, "newest n events with -dir, or stop after n live events (0: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir != "" {
		rec, err := flight.ReadDir(*dir)
		if err != nil {
			return err
		}
		return tailRecording(stdout, rec, *n)
	}
	ws, err := schedclient.New(*addr).Watch(context.Background(), *n)
	if err != nil {
		return err
	}
	defer ws.Close()
	for {
		line, err := ws.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s\n", line)
	}
}

// tailRecording prints a recording's events as JSON lines, newest last.
func tailRecording(w io.Writer, rec *flight.Recording, n int) error {
	events := rec.Events()
	if n > 0 && len(events) > n {
		events = events[len(events)-n:]
	}
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(schedd.WatchEvent{
			T:     ev.Event.T,
			Shard: ev.Shard,
			Kind:  ev.Event.Kind.String(),
			Task:  ev.Event.Task,
			Slave: ev.Event.Slave,
		}); err != nil {
			return err
		}
	}
	return nil
}

func cmdExport(args []string, stdout io.Writer) error {
	fs := newFlagSet("export")
	addr := fs.String("addr", "http://127.0.0.1:8080", "schedd address")
	dir := fs.String("dir", "", "read a recording directory instead of the live daemon")
	format := fs.String("format", "perfetto", "output format: perfetto, gantt, jsonl")
	out := fs.String("o", "", "output file (default stdout)")
	width := fs.Int("width", 100, "gantt width in characters")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rec, err := loadRecording(*dir, *addr)
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return exportRecording(w, rec, *format, *width)
}

// exportRecording writes rec in the named format.
func exportRecording(w io.Writer, rec *flight.Recording, format string, width int) error {
	switch format {
	case "perfetto":
		return flight.WritePerfetto(w, rec)
	case "gantt":
		return flight.WriteGantt(w, rec, width)
	case "jsonl":
		return flight.WriteJSONL(w, rec)
	}
	return fmt.Errorf("unknown format %q: want perfetto, gantt or jsonl", format)
}

func cmdSLO(args []string, stdout io.Writer) (breached bool, err error) {
	fs := newFlagSet("slo")
	addr := fs.String("addr", "http://127.0.0.1:8080", "schedd address")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	resp, err := schedclient.New(*addr).SLO()
	if err != nil {
		return false, err
	}
	return renderSLO(stdout, resp), nil
}

// renderSLO prints the burn-rate report and reports whether any
// objective is burning (burn rate above 1 on any window).
func renderSLO(w io.Writer, resp schedd.SLOResponse) (breached bool) {
	if !resp.Enabled {
		fmt.Fprintln(w, "no SLO objectives configured (start schedd with -slo)")
		return false
	}
	var rows [][]string
	for _, st := range resp.Objectives {
		if !st.OK {
			breached = true
		}
		for _, b := range st.Windows {
			status := "ok"
			if !b.OK {
				status = "BURNING"
			}
			rows = append(rows, []string{
				st.Objective.Name,
				st.Objective.Kind,
				fmt.Sprintf("%.4f", st.Objective.Target),
				fmt.Sprintf("%.0fs", b.WindowSeconds),
				fmt.Sprintf("%d/%d", b.Good, b.Total),
				fmt.Sprintf("%.3f", b.BurnRate),
				status,
			})
		}
	}
	fmt.Fprint(w, textplot.Table(
		[]string{"objective", "kind", "target", "window", "good/total", "burn", "status"}, rows))
	return breached
}

// newFlagSet builds a subcommand flag set that returns parse errors
// instead of exiting, so run() owns the process exit code.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("schedctl "+name, flag.ContinueOnError)
}
