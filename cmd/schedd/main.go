// Command schedd is the streaming scheduling daemon: it serves a
// master–slave platform over HTTP/JSON with any registered scheduling
// policy (the paper's seven heuristics or the speed-oblivious SO-LS) as
// the serving discipline. The platform can be partitioned across a
// fleet of masters (-shards): each shard owns a slice of the slaves
// behind its own one-port master, and incoming jobs are routed to a
// shard by the -placement policy, multiplying the paper's structural
// one-port bottleneck by the shard count.
//
// Endpoints:
//
//	POST /jobs        {"count":8,"comm_scale":1,"comp_scale":1} → {"ids":[...]}
//	GET  /jobs/{id}   one job's lifecycle, owning shard and latency
//	GET  /stats       merged cluster view + one section per shard
//	GET  /healthz     liveness + cluster and per-shard queue depths
//
// The platform comes from -slaves "c:p,c:p,..." (explicit per-slave
// costs) or from -class/-m/-seed (a random platform drawn exactly like
// the experiment harness does). -shards partitions it (-partition
// striped|balanced); -placement picks round-robin, least-loaded,
// het-aware or pinned routing. -steal turns on the cross-shard
// rebalancer (threshold or het-aware; every -steal-interval it migrates
// pending jobs from overloaded shards to underloaded ones).
// -clock-scale compresses model time: at 1000, a platform calibrated in
// paper seconds serves jobs a thousand times faster than nominal.
//
// On SIGINT/SIGTERM the daemon drains gracefully: new submissions get
// 503, every accepted job on every shard completes, the slaves shut
// down, and only then does the process exit.
//
// Usage:
//
//	schedd -addr :8080 -policy LS -slaves 0.5:2,1:4,2:5 -clock-scale 100
//	schedd -policy SO-LS -class heterogeneous -m 8 -seed 7 \
//	       -shards 4 -placement het-aware -partition balanced
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/schedd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("schedd: ")

	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	policy := flag.String("policy", "LS", "serving policy: "+strings.Join(sched.ExtendedNames(), ", "))
	slaves := flag.String("slaves", "", "explicit platform as comma-separated c:p pairs, e.g. 0.5:2,1:4,2:5 (overrides -class)")
	class := flag.String("class", "heterogeneous", "random platform class: homogeneous, comm-homogeneous, comp-homogeneous, heterogeneous")
	m := flag.Int("m", 5, "number of slaves for random platforms")
	seed := flag.Int64("seed", 1, "random seed for -class platforms")
	shards := flag.Int("shards", 1, "number of master shards the platform is partitioned across")
	placement := flag.String("placement", cluster.PlacementRoundRobin,
		"shard placement policy: "+strings.Join(cluster.PlacementNames(), ", "))
	partition := flag.String("partition", string(core.PartitionStriped),
		"partition strategy: striped, balanced")
	clockScale := flag.Float64("clock-scale", 1, "model seconds per wall second (speedup of the serving clock)")
	maxBatch := flag.Int("max-batch", 10000, "largest count accepted by one POST /jobs")
	steal := flag.String("steal", cluster.StealNone,
		"cross-shard work-stealing policy: "+strings.Join(cluster.StealPolicyNames(), ", "))
	stealInterval := flag.Duration("steal-interval", 50*time.Millisecond,
		"rebalancer pass interval (with -steal threshold|het-aware)")
	flag.Parse()

	if err := sched.Validate(*policy); err != nil {
		log.Fatal(err)
	}
	if *clockScale <= 0 {
		log.Fatalf("-clock-scale %v must be positive", *clockScale)
	}
	pl, err := buildPlatform(*slaves, *class, *m, *seed)
	if err != nil {
		log.Fatal(err)
	}

	srv, err := schedd.New(schedd.Config{
		Platform:      pl,
		Policy:        *policy,
		Shards:        *shards,
		Placement:     *placement,
		Partition:     core.PartitionStrategy(*partition),
		ClockScale:    *clockScale,
		MaxBatch:      *maxBatch,
		Steal:         *steal,
		StealInterval: *stealInterval,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	log.Printf("serving %s on http://%s (platform %v, %d shard(s), placement %s, partition %s, steal %s, clock-scale %g)",
		*policy, ln.Addr(), pl, *shards, *placement, *partition, *steal, *clockScale)

	done := make(chan error, 1)
	go func() { done <- httpServer.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v: draining", s)
	case err := <-done:
		log.Fatalf("http server: %v", err)
	}

	// Graceful drain: finish every accepted job on every shard, then stop
	// the listener.
	if err := srv.Drain(); err != nil {
		log.Fatalf("drain: %v", err)
	}
	counts := srv.Counts()
	log.Printf("drained: %d jobs submitted, %d completed", counts.Submitted, counts.Completed)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("bye")
}

// parseSlaves parses the -slaves flag: comma-separated c:p pairs, one
// per slave. Errors name the offending token and its zero-based index so
// a typo in a long fleet description is findable at a glance.
func parseSlaves(s string) (core.Platform, error) {
	var c, p []float64
	for i, pair := range strings.Split(s, ",") {
		token := strings.TrimSpace(pair)
		parts := strings.SplitN(token, ":", 2)
		if len(parts) != 2 {
			return core.Platform{}, fmt.Errorf("-slaves entry %d (%q) is not of the form c:p", i, token)
		}
		cv, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return core.Platform{}, fmt.Errorf("-slaves entry %d (%q): bad communication time %q: %w", i, token, parts[0], err)
		}
		pv, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return core.Platform{}, fmt.Errorf("-slaves entry %d (%q): bad computation time %q: %w", i, token, parts[1], err)
		}
		if cv <= 0 || pv <= 0 {
			return core.Platform{}, fmt.Errorf("-slaves entry %d (%q): costs must be positive", i, token)
		}
		c = append(c, cv)
		p = append(p, pv)
	}
	return core.NewPlatform(c, p), nil
}

// buildPlatform parses -slaves "c:p,c:p,..." or draws a random platform
// of the requested class, seeded like the experiment harness.
func buildPlatform(slaves, class string, m int, seed int64) (core.Platform, error) {
	if slaves != "" {
		return parseSlaves(slaves)
	}
	for _, cl := range core.Classes {
		if cl.String() == class {
			return core.Random(rand.New(rand.NewSource(seed)), cl, core.GenConfig{M: m}), nil
		}
	}
	return core.Platform{}, fmt.Errorf("unknown class %q", class)
}
