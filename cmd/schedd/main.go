// Command schedd is the streaming scheduling daemon: it serves a
// master–slave platform over HTTP/JSON with any registered scheduling
// policy (the paper's seven heuristics or the speed-oblivious SO-LS) as
// the serving discipline. The platform can be partitioned across a
// fleet of masters (-shards): each shard owns a slice of the slaves
// behind its own one-port master, and incoming jobs are routed to a
// shard by the -placement policy, multiplying the paper's structural
// one-port bottleneck by the shard count.
//
// Endpoints (versioned under /v1; the unversioned legacy paths still
// answer identically but carry a Deprecation header):
//
//	POST /v1/jobs             {"count":8,"comm_scale":1,"comp_scale":1} → {"ids":[...]}
//	POST /v1/jobs:stream      NDJSON bulk ingest: one SubmitRequest per line,
//	                          one ack per line back ({"line":N,"base":B,"count":C})
//	GET  /v1/jobs/{id}        one job's lifecycle, owning shard and latency
//	GET  /v1/jobs/{id}/trace  the job's span tree (queue/transfer/slave-wait/service)
//	GET  /v1/stats            merged cluster view + one section per shard
//	GET  /v1/decisions        recent placement/steal/migration audit entries
//	GET  /v1/slo              SLO burn-rate report (configure with -slo)
//	GET  /v1/watch            Server-Sent Events stream of lifecycle events
//	GET  /v1/flight           the flight recorder's raw recording (schedctl export)
//	GET  /metrics             Prometheus text exposition (disable with -metrics=false)
//	GET  /debug/vars          the same registry as flat JSON
//	GET  /healthz             liveness + cluster and per-shard queue depths
//	GET  /readyz              readiness: 503 while draining; shard drain state
//	GET  /debug/pprof/        Go profiling surface (opt-in via -pprof)
//
// The platform comes from -slaves "c:p,c:p,..." (explicit per-slave
// costs) or from -class/-m/-seed (a random platform drawn exactly like
// the experiment harness does). -shards partitions it (-partition
// striped|balanced); -placement picks round-robin, least-loaded,
// het-aware or pinned routing. -steal turns on the cross-shard
// rebalancer (threshold or het-aware; every -steal-interval it migrates
// pending jobs from overloaded shards to underloaded ones).
// -clock-scale compresses model time: at 1000, a platform calibrated in
// paper seconds serves jobs a thousand times faster than nominal.
// -virtual goes further: every shard runs on a deterministic virtual
// clock behind the cluster's firehose intake (pure-throughput mode —
// ingest is bounded by placement and admission cost alone), with
// -ingest-queue bounding the enqueued-but-unadmitted backlog and
// -stream-workers sizing the per-connection parallel NDJSON decode
// stage (negative selects the serial decoder).
//
// Observability: -metrics (default true) serves the Prometheus text
// exposition and /debug/vars; -audit-depth sizes the decision-audit
// ring (0 disables); -record (default true) runs the flight recorder
// (-record-dir persists segments, -record-segment-bytes and
// -record-segments bound the ring, -snapshot-interval paces journaled
// metric snapshots); -slo configures burn-rate objectives (e.g.
// -slo p99=latency:0.5:0.99,avail=availability:0.999); -pprof opts into
// the Go profiling surface, and -mutexprofile N additionally samples
// lock contention into /debug/pprof/{mutex,block} — the knob that makes
// the router's lock-free read path verifiable against a live daemon;
// -log-level/-log-format configure structured logging (steal plans are
// logged at debug).
//
// On SIGINT/SIGTERM the daemon drains gracefully: new submissions get
// 503, every accepted job on every shard completes, the slaves shut
// down, and only then does the process exit.
//
// Usage:
//
//	schedd -addr :8080 -policy LS -slaves 0.5:2,1:4,2:5 -clock-scale 100
//	schedd -policy SO-LS -class heterogeneous -m 8 -seed 7 \
//	       -shards 4 -placement het-aware -partition balanced
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/schedd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	policy := flag.String("policy", "LS", "serving policy: "+strings.Join(sched.ExtendedNames(), ", "))
	slaves := flag.String("slaves", "", "explicit platform as comma-separated c:p pairs, e.g. 0.5:2,1:4,2:5 (overrides -class)")
	class := flag.String("class", "heterogeneous", "random platform class: homogeneous, comm-homogeneous, comp-homogeneous, heterogeneous")
	m := flag.Int("m", 5, "number of slaves for random platforms")
	seed := flag.Int64("seed", 1, "random seed for -class platforms")
	shards := flag.Int("shards", 1, "number of master shards the platform is partitioned across")
	placement := flag.String("placement", cluster.PlacementRoundRobin,
		"shard placement policy: "+strings.Join(cluster.PlacementNames(), ", "))
	partition := flag.String("partition", string(core.PartitionStriped),
		"partition strategy: striped, balanced")
	clockScale := flag.Float64("clock-scale", 1, "model seconds per wall second (speedup of the serving clock)")
	virtual := flag.Bool("virtual", false,
		"pure-throughput mode: deterministic virtual clocks behind the firehose intake (forces -clock-scale 1, incompatible with -steal)")
	ingestQueue := flag.Int("ingest-queue", 0,
		"bound on the enqueued-but-unadmitted job backlog behind POST /v1/jobs:stream (0: 65536)")
	streamWorkers := flag.Int("stream-workers", 0,
		"parallel NDJSON decode workers per jobs:stream connection (0: GOMAXPROCS capped at 8; negative: serial decoder)")
	maxBatch := flag.Int("max-batch", 10000, "largest count accepted by one POST /v1/jobs and by one jobs:stream line")
	steal := flag.String("steal", cluster.StealNone,
		"cross-shard work-stealing policy: "+strings.Join(cluster.StealPolicyNames(), ", "))
	stealInterval := flag.Duration("steal-interval", 50*time.Millisecond,
		"rebalancer pass interval (with -steal threshold|het-aware)")
	metrics := flag.Bool("metrics", true, "serve GET /metrics (Prometheus text) and GET /debug/vars")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in)")
	mutexProfile := flag.Int("mutexprofile", 0,
		"mutex/block profile sampling rate for /debug/pprof/{mutex,block} (0 off; requires -pprof; 1 samples every contention event)")
	auditDepth := flag.Int("audit-depth", 256,
		"decision-audit ring depth behind GET /decisions (0 disables auditing)")
	record := flag.Bool("record", true, "run the flight recorder (GET /flight; export with schedctl)")
	recordDir := flag.String("record-dir", "", "persist flight segments to this directory (empty: memory-only)")
	recordSegBytes := flag.Int("record-segment-bytes", 0, "flight segment size in bytes (0: 1 MiB)")
	recordSegments := flag.Int("record-segments", 0, "flight segments retained (0: 8)")
	snapshotInterval := flag.Duration("snapshot-interval", 5*time.Second,
		"cadence of metric snapshots journaled into the flight recording")
	sloFlag := flag.String("slo", "",
		"comma-separated SLO objectives, each latency:<threshold-seconds>:<target> or availability:<target>, optionally name=spec (e.g. p99=latency:0.5:0.99,avail=availability:0.999)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text, json")
	flag.Parse()

	logger, err := buildLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if err := sched.Validate(*policy); err != nil {
		fatal("invalid policy", "err", err)
	}
	if *clockScale <= 0 {
		fatal("-clock-scale must be positive", "clock_scale", *clockScale)
	}
	pl, err := buildPlatform(*slaves, *class, *m, *seed)
	if err != nil {
		fatal("invalid platform", "err", err)
	}

	slos, err := parseSLOs(*sloFlag)
	if err != nil {
		fatal("invalid -slo", "err", err)
	}

	// Mutex/block profiling rides behind the -pprof gate: the samples are
	// only reachable through /debug/pprof/, so a rate without the surface
	// is a misconfiguration, not a silent no-op.
	if *mutexProfile < 0 {
		fatal("-mutexprofile must be non-negative", "mutexprofile", *mutexProfile)
	}
	if *mutexProfile > 0 {
		if !*pprofFlag {
			fatal("-mutexprofile requires -pprof (the samples are served under /debug/pprof/)")
		}
		runtime.SetMutexProfileFraction(*mutexProfile)
		runtime.SetBlockProfileRate(*mutexProfile)
	}

	// The flag semantics invert into the config's zero-value defaults:
	// -metrics=false disables, -audit-depth 0 disables (config -1).
	cfgAudit := *auditDepth
	if cfgAudit == 0 {
		cfgAudit = -1
	}
	srv, err := schedd.New(schedd.Config{
		Platform:           pl,
		Policy:             *policy,
		Shards:             *shards,
		Placement:          *placement,
		Partition:          core.PartitionStrategy(*partition),
		ClockScale:         *clockScale,
		MaxBatch:           *maxBatch,
		VirtualClock:       *virtual,
		IngestQueueDepth:   *ingestQueue,
		StreamWorkers:      *streamWorkers,
		Steal:              *steal,
		StealInterval:      *stealInterval,
		DisableMetrics:     !*metrics,
		Pprof:              *pprofFlag,
		AuditDepth:         cfgAudit,
		DisableRecorder:    !*record,
		RecordDir:          *recordDir,
		RecordSegmentBytes: *recordSegBytes,
		RecordMaxSegments:  *recordSegments,
		SnapshotInterval:   *snapshotInterval,
		SLOs:               slos,
		Logger:             logger,
	})
	if err != nil {
		fatal("startup failed", "err", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen failed", "addr", *addr, "err", err)
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	logger.Info("serving",
		"policy", *policy,
		"addr", fmt.Sprintf("http://%s", ln.Addr()),
		"platform", fmt.Sprint(pl),
		"shards", *shards,
		"placement", *placement,
		"partition", *partition,
		"steal", *steal,
		"clock_scale", *clockScale,
		"virtual", *virtual,
		"metrics", *metrics,
		"pprof", *pprofFlag,
		"audit_depth", *auditDepth,
		"record", *record,
		"record_dir", *recordDir,
		"slos", len(slos))

	done := make(chan error, 1)
	go func() { done <- httpServer.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
	case err := <-done:
		fatal("http server failed", "err", err)
	}

	// Graceful drain: finish every accepted job on every shard, then stop
	// the listener.
	if err := srv.Drain(); err != nil {
		fatal("drain failed", "err", err)
	}
	counts := srv.Counts()
	logger.Info("drained", "submitted", counts.Submitted, "completed", counts.Completed)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("shutdown failed", "err", err)
	}
	logger.Info("bye")
}

// buildLogger assembles the process logger from the -log-level and
// -log-format flags. Testable: errors name the offending flag value.
func buildLogger(w *os.File, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("-log-format %q: want text or json", format)
}

// parseSLOs parses the -slo flag: comma-separated objectives, each
// "latency:<threshold-seconds>:<target>" or "availability:<target>",
// optionally prefixed "name=" (the default name is the kind, suffixed
// with the entry index past the first so unnamed objectives stay
// unique). Testable: errors name the offending entry.
func parseSLOs(s string) ([]obs.Objective, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []obs.Objective
	for i, entry := range strings.Split(s, ",") {
		token := strings.TrimSpace(entry)
		name := ""
		if eq := strings.Index(token, "="); eq >= 0 {
			name = strings.TrimSpace(token[:eq])
			token = strings.TrimSpace(token[eq+1:])
		}
		parts := strings.Split(token, ":")
		o := obs.Objective{Name: name, Kind: parts[0]}
		switch {
		case o.Kind == obs.ObjectiveLatency && len(parts) == 3:
			thr, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("-slo entry %d (%q): bad threshold %q: %w", i, entry, parts[1], err)
			}
			tgt, err := strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("-slo entry %d (%q): bad target %q: %w", i, entry, parts[2], err)
			}
			o.ThresholdSeconds, o.Target = thr, tgt
		case o.Kind == obs.ObjectiveAvailability && len(parts) == 2:
			tgt, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("-slo entry %d (%q): bad target %q: %w", i, entry, parts[1], err)
			}
			o.Target = tgt
		default:
			return nil, fmt.Errorf("-slo entry %d (%q): want latency:<threshold>:<target> or availability:<target>", i, entry)
		}
		if o.Name == "" {
			o.Name = o.Kind
			if i > 0 {
				o.Name = fmt.Sprintf("%s-%d", o.Kind, i)
			}
		}
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("-slo entry %d (%q): %w", i, entry, err)
		}
		out = append(out, o)
	}
	return out, nil
}

// parseSlaves parses the -slaves flag: comma-separated c:p pairs, one
// per slave. Errors name the offending token and its zero-based index so
// a typo in a long fleet description is findable at a glance.
func parseSlaves(s string) (core.Platform, error) {
	var c, p []float64
	for i, pair := range strings.Split(s, ",") {
		token := strings.TrimSpace(pair)
		parts := strings.SplitN(token, ":", 2)
		if len(parts) != 2 {
			return core.Platform{}, fmt.Errorf("-slaves entry %d (%q) is not of the form c:p", i, token)
		}
		cv, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return core.Platform{}, fmt.Errorf("-slaves entry %d (%q): bad communication time %q: %w", i, token, parts[0], err)
		}
		pv, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return core.Platform{}, fmt.Errorf("-slaves entry %d (%q): bad computation time %q: %w", i, token, parts[1], err)
		}
		if cv <= 0 || pv <= 0 {
			return core.Platform{}, fmt.Errorf("-slaves entry %d (%q): costs must be positive", i, token)
		}
		c = append(c, cv)
		p = append(p, pv)
	}
	return core.NewPlatform(c, p), nil
}

// buildPlatform parses -slaves "c:p,c:p,..." or draws a random platform
// of the requested class, seeded like the experiment harness.
func buildPlatform(slaves, class string, m int, seed int64) (core.Platform, error) {
	if slaves != "" {
		return parseSlaves(slaves)
	}
	for _, cl := range core.Classes {
		if cl.String() == class {
			return core.Random(rand.New(rand.NewSource(seed)), cl, core.GenConfig{M: m}), nil
		}
	}
	return core.Platform{}, fmt.Errorf("unknown class %q", class)
}
