package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestParseSLOs(t *testing.T) {
	// Empty means no objectives, not an error.
	if slos, err := parseSLOs("  "); err != nil || slos != nil {
		t.Fatalf("empty -slo: %v %v", slos, err)
	}
	slos, err := parseSLOs("p99=latency:0.5:0.99, availability:0.999")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 {
		t.Fatalf("parsed %d objectives", len(slos))
	}
	if slos[0].Name != "p99" || slos[0].Kind != obs.ObjectiveLatency ||
		slos[0].ThresholdSeconds != 0.5 || slos[0].Target != 0.99 {
		t.Fatalf("latency objective %+v", slos[0])
	}
	// Unnamed objectives default to kind (index-suffixed past the first).
	if slos[1].Name != "availability-1" || slos[1].Kind != obs.ObjectiveAvailability || slos[1].Target != 0.999 {
		t.Fatalf("availability objective %+v", slos[1])
	}
	for _, bad := range []string{
		"latency:0.5",             // missing target
		"availability:0.5:0.9",    // extra field
		"latency:zap:0.9",         // bad threshold
		"availability:high",       // bad target
		"throughput:0.9",          // unknown kind
		"availability:1.5",        // target outside (0,1)
		"p=latency:-1:0.9",        // non-positive threshold
		"latency:0.5:0.99,,x:0.9", // empty entry then junk
	} {
		if _, err := parseSLOs(bad); err == nil {
			t.Fatalf("-slo %q accepted", bad)
		}
	}
	// Errors name the entry.
	if _, err := parseSLOs("ok=availability:0.9,bad=latency:0.5"); err == nil || !strings.Contains(err.Error(), "entry 1") {
		t.Fatalf("error does not name the entry: %v", err)
	}
}

func TestParseSlaves(t *testing.T) {
	pl, err := parseSlaves("0.5:2, 1:4 ,2:5")
	if err != nil {
		t.Fatal(err)
	}
	if pl.M() != 3 || pl.C[0] != 0.5 || pl.P[1] != 4 || pl.C[2] != 2 || pl.P[2] != 5 {
		t.Fatalf("parsed %v", pl)
	}
}

func TestParseSlavesErrorsNameTokenAndIndex(t *testing.T) {
	cases := []struct {
		in   string
		want []string // substrings the error must contain
	}{
		{"0.5:2,13,2:5", []string{"entry 1", `"13"`, "c:p"}},
		{"0.5:2,x:4", []string{"entry 1", `"x:4"`, "communication"}},
		{"0.5:2,1:zap", []string{"entry 1", `"1:zap"`, "computation"}},
		{"1:1,-2:3", []string{"entry 1", `"-2:3"`, "positive"}},
		{"1:1,2:0", []string{"entry 1", `"2:0"`, "positive"}},
		{"", []string{"entry 0", "c:p"}},
		{"1:2,", []string{"entry 1", "c:p"}},
	}
	for _, tc := range cases {
		_, err := parseSlaves(tc.in)
		if err == nil {
			t.Fatalf("parseSlaves(%q) accepted", tc.in)
		}
		for _, want := range tc.want {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("parseSlaves(%q) error %q lacks %q", tc.in, err, want)
			}
		}
	}
}

func TestBuildLogger(t *testing.T) {
	for _, level := range []string{"debug", "info", "warn", "error"} {
		for _, format := range []string{"text", "json"} {
			if _, err := buildLogger(os.Stderr, level, format); err != nil {
				t.Fatalf("buildLogger(%q, %q): %v", level, format, err)
			}
		}
	}
	// Errors name the offending flag and value.
	if _, err := buildLogger(os.Stderr, "loud", "text"); err == nil ||
		!strings.Contains(err.Error(), "-log-level") || !strings.Contains(err.Error(), `"loud"`) {
		t.Fatalf("bad level error = %v", err)
	}
	if _, err := buildLogger(os.Stderr, "info", "xml"); err == nil ||
		!strings.Contains(err.Error(), "-log-format") || !strings.Contains(err.Error(), `"xml"`) {
		t.Fatalf("bad format error = %v", err)
	}
}

func TestBuildPlatform(t *testing.T) {
	// Explicit -slaves overrides -class.
	pl, err := buildPlatform("1:2,3:4", "homogeneous", 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pl.M() != 2 {
		t.Fatalf("explicit platform %v", pl)
	}
	// Random platforms honor class and m, and are seed-deterministic.
	a, err := buildPlatform("", "comp-homogeneous", 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildPlatform("", "comp-homogeneous", 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != 4 || a.String() != b.String() {
		t.Fatalf("random platform not deterministic: %v vs %v", a, b)
	}
	if _, err := buildPlatform("", "hyper-homogeneous", 4, 7); err == nil {
		t.Fatal("unknown class accepted")
	}
}
