// Command msched runs one scheduling scenario on the one-port
// master-slave simulator and prints its metrics, optionally with an ASCII
// Gantt chart and the exact offline optimum.
//
// Usage examples:
//
//	msched -algo LS -class heterogeneous -m 5 -n 100 -seed 7 -gantt
//	msched -algo SLJF -c 1,1 -p 3,7 -releases 0,1,2 -opt
//	msched -algo RRC -class comp-homogeneous -n 500 -arrival poisson -rate 2
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/optimal"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msched: ")

	algo := flag.String("algo", "LS", "algorithm: "+strings.Join(sched.Names(), ", "))
	class := flag.String("class", "heterogeneous", "random platform class: homogeneous, comm-homogeneous, comp-homogeneous, heterogeneous")
	m := flag.Int("m", 5, "number of slaves for random platforms")
	seed := flag.Int64("seed", 1, "random seed")
	n := flag.Int("n", 20, "number of tasks")
	cFlag := flag.String("c", "", "explicit communication times, e.g. 1,1 (overrides -class)")
	pFlag := flag.String("p", "", "explicit computation times, e.g. 3,7")
	releases := flag.String("releases", "", "explicit release times, e.g. 0,1,2 (overrides -n/-arrival)")
	arrival := flag.String("arrival", "bag", "arrival pattern: bag, poisson, uniform, bursty, periodic")
	rate := flag.Float64("rate", 1, "arrival rate for poisson/periodic")
	perturb := flag.Float64("perturb", 0, "matrix-size perturbation fraction (Figure 2 style)")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart")
	stat := flag.Bool("stats", false, "print utilization and queueing analysis")
	opt := flag.Bool("opt", false, "also compute the exact offline optimum (small instances only)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	pl, err := buildPlatform(*cFlag, *pFlag, *class, *m, rng)
	if err != nil {
		log.Fatal(err)
	}
	tasks, err := buildTasks(*releases, *n, *arrival, *rate, *perturb, rng)
	if err != nil {
		log.Fatal(err)
	}

	scheduler := sched.New(*algo)
	s, err := sim.Simulate(pl, scheduler, tasks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("platform: %v (%v)\n", pl, pl.Classify())
	fmt.Printf("workload: %d tasks, %s arrivals\n", len(tasks), *arrival)
	fmt.Printf("algorithm: %s\n\n", scheduler.Name())
	fmt.Printf("makespan: %.4f\n", s.Makespan())
	fmt.Printf("max-flow: %.4f\n", s.MaxFlow())
	fmt.Printf("sum-flow: %.4f\n", s.SumFlow())

	if *opt {
		inst := core.NewInstance(pl, tasks)
		fmt.Println()
		for _, obj := range core.Objectives {
			res := optimal.Solve(inst, obj)
			fmt.Printf("offline optimal %-8v: %.4f (ratio %.4f)\n",
				obj, res.Value, obj.Value(s)/res.Value)
		}
	}
	if *stat {
		fmt.Println()
		fmt.Print(trace.Analyze(s).Render())
	}
	if *gantt {
		fmt.Println()
		fmt.Print(textplot.Gantt(s, 100))
	}
}

func buildPlatform(cFlag, pFlag, class string, m int, rng *rand.Rand) (core.Platform, error) {
	if (cFlag == "") != (pFlag == "") {
		return core.Platform{}, fmt.Errorf("-c and -p must be given together")
	}
	if cFlag != "" {
		c, err := parseFloats(cFlag)
		if err != nil {
			return core.Platform{}, fmt.Errorf("-c: %w", err)
		}
		p, err := parseFloats(pFlag)
		if err != nil {
			return core.Platform{}, fmt.Errorf("-p: %w", err)
		}
		if len(c) != len(p) {
			return core.Platform{}, fmt.Errorf("-c has %d entries, -p has %d", len(c), len(p))
		}
		return core.NewPlatform(c, p), nil
	}
	for _, cl := range core.Classes {
		if cl.String() == class {
			return core.Random(rng, cl, core.GenConfig{M: m}), nil
		}
	}
	return core.Platform{}, fmt.Errorf("unknown class %q", class)
}

func buildTasks(releases string, n int, arrival string, rate, perturb float64, rng *rand.Rand) ([]core.Task, error) {
	if releases != "" {
		times, err := parseFloats(releases)
		if err != nil {
			return nil, fmt.Errorf("-releases: %w", err)
		}
		return core.ReleasesAt(times...), nil
	}
	patterns := map[string]workload.Pattern{
		"bag":      workload.BagAtZero,
		"poisson":  workload.Poisson,
		"uniform":  workload.UniformSpread,
		"bursty":   workload.Bursty,
		"periodic": workload.Periodic,
	}
	pattern, ok := patterns[arrival]
	if !ok {
		return nil, fmt.Errorf("unknown arrival pattern %q", arrival)
	}
	return workload.Generate(rng, workload.Config{
		N: n, Pattern: pattern, Rate: rate, Perturb: perturb,
	}), nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
