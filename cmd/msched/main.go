// Command msched runs one scheduling scenario on the one-port
// master-slave simulator and prints its metrics, optionally with an ASCII
// Gantt chart and the exact offline optimum.
//
// With -repeat R it becomes a replicate sweep on the deterministic runner:
// R independently seeded replicates of the scenario run across -parallel
// workers (replicate r redraws the platform and workload from
// hash(seed, "msched/replicate=r"); results are identical for every
// worker count) and the per-replicate metrics are summarized, optionally
// as machine-readable JSON via -json.
//
// Usage examples:
//
//	msched -algo LS -class heterogeneous -m 5 -n 100 -seed 7 -gantt
//	msched -algo SLJF -c 1,1 -p 3,7 -releases 0,1,2 -opt
//	msched -algo RRC -class comp-homogeneous -n 500 -arrival poisson -rate 2
//	msched -algo LS -class heterogeneous -n 200 -repeat 64 -parallel 8 -json out.json
//
// With -scenario the platform becomes dynamic: a generated event timeline
// (slave failures, speed drift, or a flash crowd — seeded like everything
// else) runs against the fail-safe-wrapped algorithm, destroyed work is
// re-dispatched, and the metrics are failure-time objectives:
//
//	msched -algo LS -class heterogeneous -n 200 -scenario failures -intensity 1.5
//	msched -algo SRPT -class comp-homogeneous -n 200 -scenario drift -repeat 32 -json out.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/optimal"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/textplot"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("msched: ")

	algo := flag.String("algo", "LS", "algorithm: "+strings.Join(sched.ExtendedNames(), ", "))
	class := flag.String("class", "heterogeneous", "random platform class: homogeneous, comm-homogeneous, comp-homogeneous, heterogeneous")
	m := flag.Int("m", 5, "number of slaves for random platforms")
	seed := flag.Int64("seed", 1, "random seed")
	n := flag.Int("n", 20, "number of tasks")
	cFlag := flag.String("c", "", "explicit communication times, e.g. 1,1 (overrides -class)")
	pFlag := flag.String("p", "", "explicit computation times, e.g. 3,7")
	releases := flag.String("releases", "", "explicit release times, e.g. 0,1,2 (overrides -n/-arrival)")
	arrival := flag.String("arrival", "bag", "arrival pattern: bag, poisson, uniform, bursty, periodic")
	rate := flag.Float64("rate", 1, "arrival rate for poisson/periodic")
	perturb := flag.Float64("perturb", 0, "matrix-size perturbation fraction (Figure 2 style)")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart")
	stat := flag.Bool("stats", false, "print utilization and queueing analysis")
	opt := flag.Bool("opt", false, "also compute the exact offline optimum (small instances only)")
	repeat := flag.Int("repeat", 1, "number of independently seeded replicates (>1 switches to the sweep mode)")
	parallel := flag.Int("parallel", 0, "worker-pool size for -repeat; 0 = GOMAXPROCS (results are identical for every value)")
	jsonOut := flag.String("json", "", "write the machine-readable record (single run: trace report; -repeat: replicate sweep) to this file")
	scenarioKind := flag.String("scenario", "", "dynamic-platform scenario: "+strings.Join(experiment.ScenarioKinds, ", ")+" (empty = static platform)")
	intensity := flag.Float64("intensity", 1, "scenario event density (1 ≈ one failure per slave / ±40% drift / platform-sized crowd)")
	flag.Parse()

	if err := sched.Validate(*algo); err != nil {
		log.Fatal(err)
	}
	if err := validateScenarioKind(*scenarioKind); err != nil {
		log.Fatal(err)
	}
	if *scenarioKind != "" {
		if *gantt || *stat || *opt {
			log.Fatal("-gantt, -stats and -opt describe a static run; drop them or drop -scenario")
		}
		if *intensity <= 0 {
			log.Fatalf("-intensity %v must be positive", *intensity)
		}
		if *releases == "" && *n <= 0 {
			log.Fatal("-scenario needs a non-empty workload")
		}
		if *jsonOut != "" && *repeat <= 1 {
			log.Fatal("-json for scenarios is the replicate record; add -repeat")
		}
	}
	if *repeat > 1 {
		if *gantt || *stat || *opt {
			log.Fatal("-gantt, -stats and -opt describe a single run; drop them or drop -repeat")
		}
		if err := runReplicates(*repeat, *parallel, *jsonOut, *algo, *cFlag, *pFlag, *class,
			*m, *seed, *releases, *n, *arrival, *rate, *perturb, *scenarioKind, *intensity); err != nil {
			log.Fatal(err)
		}
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	pl, err := experiment.BuildPlatform(*cFlag, *pFlag, *class, *m, rng)
	if err != nil {
		log.Fatal(err)
	}
	tasks, err := experiment.BuildTasks(*releases, *n, *arrival, *rate, *perturb, rng)
	if err != nil {
		log.Fatal(err)
	}

	if *scenarioKind != "" {
		if err := runScenario(*scenarioKind, *intensity, *algo, *seed, *arrival, pl, tasks); err != nil {
			log.Fatal(err)
		}
		return
	}

	scheduler := sched.New(*algo)
	s, err := sim.Simulate(pl, scheduler, tasks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("platform: %v (%v)\n", pl, pl.Classify())
	fmt.Printf("workload: %d tasks, %s arrivals\n", len(tasks), *arrival)
	fmt.Printf("algorithm: %s\n\n", scheduler.Name())
	fmt.Printf("makespan: %.4f\n", s.Makespan())
	fmt.Printf("max-flow: %.4f\n", s.MaxFlow())
	fmt.Printf("sum-flow: %.4f\n", s.SumFlow())

	if *opt {
		inst := core.NewInstance(pl, tasks)
		fmt.Println()
		for _, obj := range core.Objectives {
			res := optimal.Solve(inst, obj)
			fmt.Printf("offline optimal %-8v: %.4f (ratio %.4f)\n",
				obj, res.Value, obj.Value(s)/res.Value)
		}
	}
	if *stat {
		fmt.Println()
		fmt.Print(trace.Analyze(s).Render())
	}
	if *gantt {
		fmt.Println()
		fmt.Print(textplot.Gantt(s, 100))
	}
	if *jsonOut != "" {
		// The single-run record embeds the trace.Report wire encoding —
		// the same one schedd's GET /stats serves.
		report := trace.Analyze(s)
		rec := singleRunRecord{
			Algorithm: scheduler.Name(),
			Platform:  map[string]any{"c": pl.C, "p": pl.P, "class": pl.Classify().String()},
			Tasks:     len(tasks),
			Arrival:   *arrival,
			Seed:      *seed,
			Trace:     &report,
		}
		if err := runner.WriteJSON(*jsonOut, rec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote the run record to %s\n", *jsonOut)
	}
}

// singleRunRecord is the machine-readable single-run output of msched:
// instance parameters plus the shared trace.Report encoding.
type singleRunRecord struct {
	Algorithm string         `json:"algorithm"`
	Platform  map[string]any `json:"platform"`
	Tasks     int            `json:"tasks"`
	Arrival   string         `json:"arrival"`
	Seed      int64          `json:"seed"`
	Trace     *trace.Report  `json:"trace"`
}

// validateScenarioKind rejects unknown -scenario values up front.
func validateScenarioKind(kind string) error {
	if kind == "" {
		return nil
	}
	for _, k := range experiment.ScenarioKinds {
		if k == kind {
			return nil
		}
	}
	return fmt.Errorf("unknown scenario %q; valid: %s", kind, strings.Join(experiment.ScenarioKinds, ", "))
}

// runScenario is the single-run -scenario path: one generated timeline,
// the fail-safe-wrapped algorithm, failure-time metrics and the
// degradation against the static baseline.
func runScenario(kind string, intensity float64, algo string, seed int64, arrival string,
	pl core.Platform, tasks []core.Task) error {
	sc, static, err := experiment.GenerateScenario(kind, intensity, algo, runner.RNG(seed, "msched/scenario"), pl, tasks)
	if err != nil {
		return err
	}
	out, err := scenario.Run(pl, sched.FailSafe(sched.New(algo)), tasks, sc)
	if err != nil {
		return err
	}
	kinds := make([]string, 0, 4)
	for _, k := range sc.Kinds() {
		kinds = append(kinds, k.String())
	}
	fmt.Printf("platform: %v (%v)\n", pl, pl.Classify())
	fmt.Printf("workload: %d tasks, %s arrivals\n", len(tasks), arrival)
	fmt.Printf("scenario: %s — %d events (%s), final m=%d\n",
		sc.Name, out.EventsApplied, strings.Join(kinds, ", "), out.FinalM)
	fmt.Printf("algorithm: %s (fail-safe wrapped)\n\n", algo)
	fmt.Printf("makespan: %.4f (static %.4f, degradation %.3f)\n",
		out.Schedule.Makespan(), static.Makespan(), out.Schedule.Makespan()/static.Makespan())
	fmt.Printf("max-flow: %.4f (static %.4f)\n", out.Schedule.MaxFlow(), static.MaxFlow())
	fmt.Printf("sum-flow: %.4f (static %.4f)\n", out.Schedule.SumFlow(), static.SumFlow())
	fmt.Printf("re-dispatch: %d attempts lost to failures, %d re-released\n", out.Lost, out.Redispatched)
	return nil
}

// runReplicates is the -repeat path: a thin shell over
// experiment.Replicates (the sweep itself lives in the library so the
// differential engine suite can reproduce this command's JSON record
// byte for byte).
func runReplicates(repeat, parallel int, jsonOut, algo, cFlag, pFlag, class string,
	m int, seed int64, releases string, n int, arrival string, rate, perturb float64,
	scenarioKind string, intensity float64) error {
	res, err := experiment.Replicates(repeat, parallel, experiment.ReplicateOptions{
		Algo: algo, CFlag: cFlag, PFlag: pFlag, Class: class, M: m, Seed: seed,
		ReleasesFlag: releases, N: n, Arrival: arrival, Rate: rate, Perturb: perturb,
		Scenario: scenarioKind, Intensity: intensity,
	})
	if err != nil {
		return err
	}

	platformDesc := class + " platforms"
	if cFlag != "" {
		platformDesc = "fixed platform c=[" + cFlag + "] p=[" + pFlag + "]"
	}
	fmt.Printf("algorithm: %s\n", algo)
	fmt.Printf("replicates: %d (%s, %s arrivals)\n", repeat, platformDesc, arrival)
	if scenarioKind != "" {
		fmt.Printf("scenario: %s at intensity %g (fail-safe wrapped)\n", scenarioKind, intensity)
	}
	fmt.Println()
	metrics := []string{"makespan", "max-flow", "sum-flow"}
	if scenarioKind != "" {
		metrics = append(metrics, "makespan-degradation", "lost")
	}
	for _, metric := range metrics {
		printSummary(metric, res.Summaries[metric])
	}
	if jsonOut != "" {
		if err := runner.WriteJSON(jsonOut, res); err != nil {
			return err
		}
		fmt.Printf("\nwrote %d replicate cells to %s\n", repeat, jsonOut)
	}
	return nil
}

func printSummary(name string, s stats.Summary) {
	fmt.Printf("%-9s %s (median %.4f)\n", name+":", s, s.Median)
}
