package lowerbound

import (
	"math"
	"testing"

	"repro/internal/adversary"
	"repro/internal/numeric"
)

// TestAllProofsVerifyExactly is the headline check: every displayed
// quantity in the nine proofs holds as an exact identity or inequality in
// Q[√d].
func TestAllProofsVerifyExactly(t *testing.T) {
	for _, v := range All() {
		if err := v.Verify(); err != nil {
			t.Errorf("%v", err)
		}
		if len(v.Checks) < 7 {
			t.Errorf("theorem %d: only %d checks", v.Theorem, len(v.Checks))
		}
		if v.Statement == "" || v.BoundExpr == "" {
			t.Errorf("theorem %d: missing statement or bound expression", v.Theorem)
		}
	}
}

func TestTheoremNumbersSequential(t *testing.T) {
	for i, v := range All() {
		if v.Theorem != i+1 {
			t.Errorf("verification %d reports theorem %d", i, v.Theorem)
		}
	}
}

func TestTheorem4LargeApproachesBound(t *testing.T) {
	v := Theorem4Large()
	if err := v.Verify(); err != nil {
		t.Fatal(err)
	}
	// With p = 1000, the main ratio 6p/(5p+2) is within 1/2000 of 6/5.
	ratio := 6.0 * 1000 / (5*1000 + 2)
	if 1.2-ratio > 1.0/2000 {
		t.Fatalf("p=1000 ratio %v too far from 6/5", ratio)
	}
}

func TestEpsilonFamiliesVerify(t *testing.T) {
	// The ε-parameterized proofs must verify for a range of ε.
	for _, den := range []int64{10, 100, 1000, 1_000_000} {
		if err := theorem5For(den).Verify(); err != nil {
			t.Errorf("theorem 5 with ε=1/%d: %v", den, err)
		}
		if err := theorem7For(den).Verify(); err != nil {
			t.Errorf("theorem 7 with ε=1/%d: %v", den, err)
		}
		if err := theorem9For(den).Verify(); err != nil {
			t.Errorf("theorem 9 with ε=1/%d: %v", den, err)
		}
	}
}

func TestTable1MatchesPaperDecimals(t *testing.T) {
	entries := Table1()
	if len(entries) != 9 {
		t.Fatalf("%d entries", len(entries))
	}
	for _, e := range entries {
		got := e.Bound.Float64()
		// The paper truncates to three decimals.
		if math.Abs(got-e.Decimal) > 1.5e-3 {
			t.Errorf("%s / %s: bound %v, paper prints %v", e.PlatformType, e.Objective, got, e.Decimal)
		}
	}
}

// TestBoundsAgreeWithAdversaries cross-checks the exact Table-1 constants
// against the float bounds the adversary package plays to.
func TestBoundsAgreeWithAdversaries(t *testing.T) {
	byExpr := map[string]float64{}
	for _, adv := range adversary.All() {
		byExpr[adv.BoundExpr()] = adv.Bound()
	}
	for _, v := range All() {
		advBound, ok := byExpr[v.BoundExpr]
		if !ok {
			t.Errorf("theorem %d: no adversary with bound %q", v.Theorem, v.BoundExpr)
			continue
		}
		if math.Abs(v.Bound.Float64()-advBound) > 1e-12 {
			t.Errorf("theorem %d: exact bound %v vs adversary bound %v", v.Theorem, v.Bound.Float64(), advBound)
		}
	}
	for _, e := range Table1() {
		if _, ok := byExpr[e.BoundExpr]; !ok {
			t.Errorf("table entry %s/%s: no adversary with bound %q", e.PlatformType, e.Objective, e.BoundExpr)
		}
	}
}

func TestVerifyReportsFailures(t *testing.T) {
	bad := Verification{
		Theorem: 99,
		Checks: []Check{
			eq("deliberately wrong", qi(1), qi(2)),
		},
	}
	if err := bad.Verify(); err == nil {
		t.Fatal("failing check not reported")
	}
	bad.Checks = []Check{geq("wrong order", qi(1), qi(2))}
	if err := bad.Verify(); err == nil {
		t.Fatal("failing inequality not reported")
	}
	good := Verification{Checks: []Check{geq("ok", qi(2), qi(2))}}
	if err := good.Verify(); err != nil {
		t.Fatalf("boundary inequality rejected: %v", err)
	}
}

func TestScheduleQAgainstHandComputation(t *testing.T) {
	// Theorem 1's three-task optimal schedule: i on P2, j and k on P1 —
	// sends [0,1][1,2][2,3], computes [1,8][2,5][5,8]: makespan 8,
	// max-flow 8, sum-flow 8+4+6 = 18.
	pl := platformQ{
		c: []numeric.Quad{qi(1), qi(1)},
		p: []numeric.Quad{qi(3), qi(7)},
	}
	rel := []numeric.Quad{qi(0), qi(1), qi(2)}
	mk, mf, sf := scheduleQ(pl, rel, nil, []int{1, 0, 0})
	if !mk.Equal(qi(8)) || !mf.Equal(qi(8)) || !sf.Equal(qi(18)) {
		t.Fatalf("mk=%v mf=%v sf=%v", mk, mf, sf)
	}
}

func TestScheduleQFloorDelaysSend(t *testing.T) {
	pl := platformQ{c: []numeric.Quad{qi(1)}, p: []numeric.Quad{qi(3)}}
	rel := []numeric.Quad{qi(0)}
	mk, _, _ := scheduleQ(pl, rel, []numeric.Quad{qi(5)}, []int{0})
	if !mk.Equal(qi(9)) {
		t.Fatalf("floored makespan %v, want 9", mk)
	}
}

func TestPaperSlipsAreConfined(t *testing.T) {
	// The two documented transcription slips must not affect any binding
	// quantity: Theorem 2's j-unsent branch and Theorem 5's
	// three-on-one-processor floor are both dominated.
	v2 := Theorem2()
	if err := v2.Verify(); err != nil {
		t.Fatal(err)
	}
	v5 := Theorem5()
	if err := v5.Verify(); err != nil {
		t.Fatal(err)
	}
}
