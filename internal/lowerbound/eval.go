// Package lowerbound re-derives, in exact arithmetic, every numeric step
// of the paper's nine lower-bound proofs (Section 3) and the resulting
// Table 1. Each TheoremN function returns a Verification whose checks
// pin the paper's displayed quantities — branch schedule values, optimal
// schedule values, and the final competitive-ratio bounds — as exact
// identities or inequalities in Q[√d]. Two transcription slips in the
// paper are documented where they occur (Theorem 2's third branch and
// Theorem 4's closing algebra); in both cases the corrected value is
// verified and the theorem's conclusion is unaffected.
package lowerbound

import (
	"fmt"

	"repro/internal/numeric"
)

// platformQ is an exact master-slave platform.
type platformQ struct {
	c []numeric.Quad
	p []numeric.Quad
}

// scheduleQ evaluates the FIFO as-soon-as-possible schedule for an
// assignment sequence, exactly. rel[i] is task i's release time; floor[i]
// (optional) is the earliest time its send may start — the proofs'
// "algorithm has not sent j by t₂" branches delay a task beyond its
// release. It returns the exact makespan, max-flow and sum-flow.
func scheduleQ(pl platformQ, rel, floor []numeric.Quad, assign []int) (mk, mf, sf numeric.Quad) {
	zero := numeric.FromInt(0)
	ready := make([]numeric.Quad, len(pl.c))
	for j := range ready {
		ready[j] = zero
	}
	port := zero
	mk, mf, sf = zero, zero, zero
	for i, j := range assign {
		start := numeric.Max(port, rel[i])
		if floor != nil {
			start = numeric.Max(start, floor[i])
		}
		arrive := start.Add(pl.c[j])
		compStart := numeric.Max(arrive, ready[j])
		complete := compStart.Add(pl.p[j])
		port = arrive
		ready[j] = complete
		flow := complete.Sub(rel[i])
		mk = numeric.Max(mk, complete)
		mf = numeric.Max(mf, flow)
		sf = sf.Add(flow)
	}
	return mk, mf, sf
}

// CheckKind discriminates exact assertions.
type CheckKind int

const (
	// Equal asserts Got == Want exactly.
	Equal CheckKind = iota
	// GEq asserts Got ≥ Want exactly.
	GEq
)

// Check is one exact assertion extracted from a proof.
type Check struct {
	Name string
	Kind CheckKind
	Got  numeric.Quad
	Want numeric.Quad
}

// Verification is a proof's worth of exact assertions plus its bound.
type Verification struct {
	Theorem   int
	Statement string
	Bound     numeric.Quad
	BoundExpr string
	Checks    []Check
}

// Verify returns nil if every check holds exactly.
func (v Verification) Verify() error {
	for _, ch := range v.Checks {
		switch ch.Kind {
		case Equal:
			if !ch.Got.Equal(ch.Want) {
				return fmt.Errorf("theorem %d, %s: got %v, want %v (Δ float %.6g)",
					v.Theorem, ch.Name, ch.Got, ch.Want, ch.Got.Sub(ch.Want).Float64())
			}
		case GEq:
			if ch.Got.Cmp(ch.Want) < 0 {
				return fmt.Errorf("theorem %d, %s: got %v < %v",
					v.Theorem, ch.Name, ch.Got, ch.Want)
			}
		default:
			return fmt.Errorf("theorem %d, %s: unknown check kind %d", v.Theorem, ch.Name, ch.Kind)
		}
	}
	return nil
}

// eq and geq are check constructors.
func eq(name string, got, want numeric.Quad) Check {
	return Check{Name: name, Kind: Equal, Got: got, Want: want}
}
func geq(name string, got, want numeric.Quad) Check {
	return Check{Name: name, Kind: GEq, Got: got, Want: want}
}

// All returns the nine verifications in theorem order.
func All() []Verification {
	return []Verification{
		Theorem1(), Theorem2(), Theorem3(),
		Theorem4(), Theorem5(), Theorem6(),
		Theorem7(), Theorem8(), Theorem9(),
	}
}

// Table1Entry is one cell of the paper's Table 1.
type Table1Entry struct {
	PlatformType string
	Objective    string
	Bound        numeric.Quad
	BoundExpr    string
	Decimal      float64 // the decimal printed in the paper
}

// Table1 returns the paper's Table 1 in row-major order
// (communication-homogeneous, computation-homogeneous, heterogeneous) ×
// (makespan, max-flow, sum-flow).
func Table1() []Table1Entry {
	i := numeric.FromInt
	f := numeric.Frac
	return []Table1Entry{
		{"communication-homogeneous", "makespan", f(5, 4), "5/4", 1.250},
		{"communication-homogeneous", "max-flow", i(5).Sub(numeric.Sqrt(7)).Div(i(2)), "(5-√7)/2", 1.177},
		{"communication-homogeneous", "sum-flow", i(2).Add(numeric.SqrtScaled(4, 1, 2)).Div(i(7)), "(2+4√2)/7", 1.093},
		{"computation-homogeneous", "makespan", f(6, 5), "6/5", 1.200},
		{"computation-homogeneous", "max-flow", f(5, 4), "5/4", 1.250},
		{"computation-homogeneous", "sum-flow", f(23, 22), "23/22", 1.045},
		{"heterogeneous", "makespan", i(1).Add(numeric.Sqrt(3)).Div(i(2)), "(1+√3)/2", 1.366},
		{"heterogeneous", "max-flow", numeric.Sqrt(2), "√2", 1.414},
		{"heterogeneous", "sum-flow", numeric.Sqrt(13).Sub(i(1)).Div(i(2)), "(√13-1)/2", 1.302},
	}
}
