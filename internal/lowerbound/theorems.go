package lowerbound

import (
	"math/big"

	"repro/internal/numeric"
)

// Shorthands for exact constants.
func qi(n int64) numeric.Quad    { return numeric.FromInt(n) }
func qf(p, q int64) numeric.Quad { return numeric.Frac(p, q) }
func qq(a, b, q, d int64) numeric.Quad { // (a + b√d)/q
	return numeric.New(big.NewRat(a, q), big.NewRat(b, q), d)
}

// Theorem1 verifies the proof of Q,MS | online, r_i, p_j, c_j=c | max C_i
// ≥ 5/4: platform c = 1, p = (3, 7).
func Theorem1() Verification {
	pl := platformQ{
		c: []numeric.Quad{qi(1), qi(1)},
		p: []numeric.Quad{qi(3), qi(7)},
	}
	bound := qf(5, 4)
	rel1 := []numeric.Quad{qi(0)}
	rel2 := []numeric.Quad{qi(0), qi(1)}
	rel3 := []numeric.Quad{qi(0), qi(1), qi(2)}

	// Stage 1: single task, checkpoint t₁ = c.
	idleMk, _, _ := scheduleQ(pl, rel1, []numeric.Quad{qi(1)}, []int{0})
	optMk, _, _ := scheduleQ(pl, rel1, nil, []int{0})
	p2Mk, _, _ := scheduleQ(pl, rel1, nil, []int{1})

	// Stage 2: task j at t₁; branch j → P2 ends the instance.
	jP2Mk, _, _ := scheduleQ(pl, rel2, nil, []int{0, 1})
	opt2Mk, _, _ := scheduleQ(pl, rel2, nil, []int{0, 0})

	// Stage 3: task k at t₂ = 2c after j → P1.
	kP1Mk, _, _ := scheduleQ(pl, rel3, nil, []int{0, 0, 0})
	kP2Mk, _, _ := scheduleQ(pl, rel3, nil, []int{0, 0, 1})
	best3 := numeric.Min(kP1Mk, kP2Mk)
	better3, _, _ := scheduleQ(pl, rel3, nil, []int{1, 0, 0})

	// Branch: j unsent by t₂ (send floor t₂ on j and k).
	floor3 := []numeric.Quad{qi(0), qi(2), qi(2)}
	unsentKP2, _, _ := scheduleQ(pl, rel3, floor3, []int{0, 1, 1})
	unsentKP1, _, _ := scheduleQ(pl, rel3, floor3, []int{0, 1, 0})

	return Verification{
		Theorem:   1,
		Statement: "Q,MS | online, r_i, p_j, c_j=c | max C_i has no ratio below 5/4",
		Bound:     bound,
		BoundExpr: "5/4",
		Checks: []Check{
			eq("idle-branch best makespan t₁+c+p₁", idleMk, qi(5)),
			eq("single-task optimum c+p₁", optMk, qi(4)),
			eq("idle-branch ratio", idleMk.Div(optMk), bound),
			eq("i→P2 best makespan c+p₂", p2Mk, qi(8)),
			geq("i→P2 ratio ≥ 5/4", p2Mk.Div(optMk), bound),
			eq("j→P2 best makespan", jP2Mk, qi(9)),
			eq("two-task optimum", opt2Mk, qi(7)),
			geq("j→P2 ratio 9/7 ≥ 5/4", jP2Mk.Div(opt2Mk), bound),
			eq("k→P1 makespan", kP1Mk, qi(10)),
			eq("k→P2 makespan", kP2Mk, qi(10)),
			eq("three-task best", best3, qi(10)),
			eq("three-task better schedule (P2,P1,P1)", better3, qi(8)),
			eq("main-branch ratio 10/8 = 5/4", best3.Div(better3), bound),
			eq("j-unsent, k→P2 makespan", unsentKP2, qi(17)),
			eq("j-unsent, k→P1 makespan", unsentKP1, qi(10)),
			geq("j-unsent ratio ≥ 5/4", numeric.Min(unsentKP1, unsentKP2).Div(better3), bound),
		},
	}
}

// Theorem2 verifies the proof of Q,MS | online, r_i, p_j, c_j=c |
// Σ(C_i−r_i) ≥ (2+4√2)/7: platform c = 1, p = (2, 4√2−2).
func Theorem2() Verification {
	p2 := qq(-2, 4, 1, 2) // 4√2 − 2
	pl := platformQ{
		c: []numeric.Quad{qi(1), qi(1)},
		p: []numeric.Quad{qi(2), p2},
	}
	bound := qq(2, 4, 7, 2) // (2+4√2)/7
	rel1 := []numeric.Quad{qi(0)}
	rel2 := []numeric.Quad{qi(0), qi(1)}
	rel3 := []numeric.Quad{qi(0), qi(1), qi(2)}

	_, _, idleSf := scheduleQ(pl, rel1, []numeric.Quad{qi(1)}, []int{0})
	_, _, optSf := scheduleQ(pl, rel1, nil, []int{0})
	_, _, p2Sf := scheduleQ(pl, rel1, nil, []int{1})

	_, _, jP2Sf := scheduleQ(pl, rel2, nil, []int{0, 1})
	_, _, opt2Sf := scheduleQ(pl, rel2, nil, []int{0, 0})

	_, _, kP1Sf := scheduleQ(pl, rel3, nil, []int{0, 0, 0})
	_, _, kP2Sf := scheduleQ(pl, rel3, nil, []int{0, 0, 1})
	best3 := numeric.Min(kP1Sf, kP2Sf)
	_, _, better3 := scheduleQ(pl, rel3, nil, []int{0, 1, 0})

	floor3 := []numeric.Quad{qi(0), qi(2), qi(2)}
	_, _, unsentBothP2 := scheduleQ(pl, rel3, floor3, []int{0, 1, 1})
	_, _, unsentKP1 := scheduleQ(pl, rel3, floor3, []int{0, 1, 0})

	return Verification{
		Theorem:   2,
		Statement: "Q,MS | online, r_i, p_j, c_j=c | Σ(C_i−r_i) has no ratio below (2+4√2)/7",
		Bound:     bound,
		BoundExpr: "(2+4√2)/7",
		Checks: []Check{
			eq("idle-branch best sum-flow t₁+c+p₁", idleSf, qi(4)),
			eq("single-task optimum c+p₁", optSf, qi(3)),
			geq("idle ratio 4/3 ≥ bound", idleSf.Div(optSf), bound),
			eq("i→P2 best sum-flow c+p₂", p2Sf, qq(-1, 4, 1, 2)), // 4√2 − 1
			geq("i→P2 ratio ≥ bound", p2Sf.Div(optSf), bound),
			eq("j→P2 best sum-flow", jP2Sf, qq(2, 4, 1, 2)), // 2+4√2
			eq("two-task optimum", opt2Sf, qi(7)),
			eq("j→P2 ratio equals the bound", jP2Sf.Div(opt2Sf), bound),
			eq("k→P1 sum-flow", kP1Sf, qi(12)),
			eq("k→P2 sum-flow", kP2Sf, qq(6, 4, 1, 2)), // 6+4√2
			eq("three-task best is 6+4√2", best3, qq(6, 4, 1, 2)),
			eq("three-task better (second task on P2)", better3, qq(5, 4, 1, 2)), // 5+4√2
			eq("main ratio (6+4√2)/(5+4√2) = (2+4√2)/7", best3.Div(better3), bound),
			// The paper prints 12√2+2 for the j-unsent both-on-P2 schedule;
			// the schedule itself evaluates to 12√2 (transcription slip).
			// Either value exceeds the binding branch, so nothing changes.
			eq("j-unsent, k→P2 sum-flow (paper prints 12√2+2)", unsentBothP2, qq(0, 12, 1, 2)),
			// The paper's displayed formula for k→P1 omits one port delay
			// (t₂+c+p₁ should be t₂+2c+p₁) but its stated value 7+4√2 is
			// what the schedule evaluates to.
			eq("j-unsent, k→P1 sum-flow", unsentKP1, qq(7, 4, 1, 2)),
			geq("j-unsent branch dominated", numeric.Min(unsentBothP2, unsentKP1), best3),
		},
	}
}

// Theorem3 verifies the proof of Q,MS | online, r_i, p_j, c_j=c |
// max(C_i−r_i) ≥ (5−√7)/2: platform c = 1, p₁ = (2+√7)/3,
// p₂ = (1+2√7)/3, checkpoint τ = (4−√7)/3.
func Theorem3() Verification {
	p1 := qq(2, 1, 3, 7)
	p2 := qq(1, 2, 3, 7)
	tau := qq(4, -1, 3, 7)
	pl := platformQ{
		c: []numeric.Quad{qi(1), qi(1)},
		p: []numeric.Quad{p1, p2},
	}
	bound := qq(5, -1, 2, 7) // (5−√7)/2
	rel1 := []numeric.Quad{qi(0)}
	rel2 := []numeric.Quad{qi(0), tau}

	_, idleMf, _ := scheduleQ(pl, rel1, []numeric.Quad{tau}, []int{0})
	_, optMf, _ := scheduleQ(pl, rel1, nil, []int{0})
	_, p2Mf, _ := scheduleQ(pl, rel1, nil, []int{1})

	_, opt2Mf, _ := scheduleQ(pl, rel2, nil, []int{1, 0}) // i on P2, j on P1
	_, jP2Mf, _ := scheduleQ(pl, rel2, nil, []int{0, 1})
	_, jP1Mf, _ := scheduleQ(pl, rel2, nil, []int{0, 0})

	onePlusS7 := qq(1, 1, 1, 7)

	return Verification{
		Theorem:   3,
		Statement: "Q,MS | online, r_i, p_j, c_j=c | max(C_i−r_i) has no ratio below (5−√7)/2",
		Bound:     bound,
		BoundExpr: "(5-√7)/2",
		Checks: []Check{
			geq("P1 is the fast slave (p₁ < p₂)", p2.Sub(p1), qi(0)),
			eq("idle-branch best max-flow τ+c+p₁ = 3", idleMf, qi(3)),
			eq("single-task optimum c+p₁", optMf, qq(5, 1, 3, 7)),
			eq("idle ratio 9/(5+√7) equals the bound", idleMf.Div(optMf), bound),
			eq("i→P2 max-flow c+p₂", p2Mf, qq(4, 2, 3, 7)),
			geq("i→P2 ratio ≥ bound", p2Mf.Div(optMf), bound),
			eq("two-task optimum (i on P2, j on P1)", opt2Mf, qq(4, 2, 3, 7)),
			eq("j→P2 best max-flow = 1+√7", jP2Mf, onePlusS7),
			eq("j→P1 best max-flow = 1+√7", jP1Mf, onePlusS7),
			eq("main ratio equals the bound", jP2Mf.Div(opt2Mf), bound),
		},
	}
}

// theorem4For builds the Theorem 4 verification for a concrete rational
// computation time p (the proof sends p → ∞ to reach 6/5).
func theorem4For(pNum, pDen int64) Verification {
	p := qf(pNum, pDen)
	half := p.Div(qi(2))
	pl := platformQ{
		c: []numeric.Quad{qi(1), half},
		p: []numeric.Quad{p, p},
	}
	bound := qf(6, 5)
	rel1 := []numeric.Quad{qi(0)}
	rel4 := []numeric.Quad{qi(0), half, half, half}

	p2Mk, _, _ := scheduleQ(pl, rel1, nil, []int{1})
	optMk, _, _ := scheduleQ(pl, rel1, nil, []int{0})
	idleMk, _, _ := scheduleQ(pl, rel1, []numeric.Quad{half}, []int{0})

	jP1, _, _ := scheduleQ(pl, rel4, nil, []int{0, 0, 1, 1})
	kP1, _, _ := scheduleQ(pl, rel4, nil, []int{0, 1, 0, 1})
	lP1, _, _ := scheduleQ(pl, rel4, nil, []int{0, 1, 1, 0})
	threeP1, _, _ := scheduleQ(pl, rel4, nil, []int{0, 0, 0, 1})
	best := numeric.Min(jP1, kP1, lP1)
	better, _, _ := scheduleQ(pl, rel4, nil, []int{1, 0, 1, 0})

	one := qi(1)
	threeP := p.Mul(qi(3))
	// 6p/(5p+2) = 6/5 − 12/(5(5p+2)). (The paper prints 6/(5(5p+2)); the
	// corrected constant is verified here. The limit — bound 6/5 — and the
	// contradiction are unaffected.)
	ratio := best.Div(better)
	fivePplus2 := p.Mul(qi(5)).Add(qi(2))
	correction := qi(12).Div(fivePplus2.Mul(qi(5)))

	return Verification{
		Theorem:   4,
		Statement: "P,MS | online, r_i, p_j=p, c_j | max C_i has no ratio below 6/5",
		Bound:     bound,
		BoundExpr: "6/5",
		Checks: []Check{
			eq("i→P2 best makespan 3p/2", p2Mk, p.Mul(qf(3, 2))),
			eq("single-task optimum 1+p", optMk, one.Add(p)),
			geq("i→P2 ratio ≥ 6/5 (needs p ≥ 4)", p2Mk.Div(optMk), bound),
			eq("idle-branch best 1+3p/2", idleMk, one.Add(p.Mul(qf(3, 2)))),
			geq("idle ratio ≥ 6/5", idleMk.Div(optMk), bound),
			eq("case j on P1: makespan 1+3p", jP1, one.Add(threeP)),
			eq("case k on P1: makespan 3p", kP1, threeP),
			eq("case l on P1: makespan 3p", lP1, threeP),
			geq("three on one processor ≥ 1+3p", threeP1, one.Add(threeP)),
			eq("best achievable 3p", best, threeP),
			eq("better schedule (P2,P1,P2,P1) = 1+5p/2", better, one.Add(p.Mul(qf(5, 2)))),
			eq("main ratio = 6/5 − 12/(5(5p+2))", ratio, bound.Sub(correction)),
		},
	}
}

// Theorem4 verifies the proof with p = 5, the smallest value the proof's
// case analysis admits.
func Theorem4() Verification { return theorem4For(5, 1) }

// Theorem4Large re-runs the verification with p = 1000, confirming the
// ratio approaches 6/5 from below.
func Theorem4Large() Verification { return theorem4For(1000, 1) }

// theorem5For builds the Theorem 5 verification for a concrete rational
// ε = 1/den (the proof sends ε → 0 to reach 5/4).
func theorem5For(den int64) Verification {
	eps := qf(1, den)
	one := qi(1)
	c2 := one
	p := qi(2).Sub(eps)
	tau := one.Sub(eps)
	pl := platformQ{
		c: []numeric.Quad{eps, c2},
		p: []numeric.Quad{p, p},
	}
	bound := qf(5, 4)
	rel1 := []numeric.Quad{qi(0)}
	rel4 := []numeric.Quad{qi(0), tau, tau, tau}

	_, p2Mf, _ := scheduleQ(pl, rel1, nil, []int{1})
	_, optMf, _ := scheduleQ(pl, rel1, nil, []int{0})
	_, idleMf, _ := scheduleQ(pl, rel1, []numeric.Quad{tau}, []int{0})

	_, jP1, _ := scheduleQ(pl, rel4, nil, []int{0, 0, 1, 1})
	_, kP1, _ := scheduleQ(pl, rel4, nil, []int{0, 1, 0, 1})
	_, lP1, _ := scheduleQ(pl, rel4, nil, []int{0, 1, 1, 0})
	_, threeP1, _ := scheduleQ(pl, rel4, nil, []int{0, 0, 0, 1})
	_, threeP2, _ := scheduleQ(pl, rel4, nil, []int{0, 1, 1, 1})
	best := numeric.Min(jP1, kP1, lP1)
	_, better, _ := scheduleQ(pl, rel4, nil, []int{1, 0, 1, 0})

	return Verification{
		Theorem:   5,
		Statement: "P,MS | online, r_i, p_j=p, c_j | max(C_i−r_i) has no ratio below 5/4",
		Bound:     bound,
		BoundExpr: "5/4",
		Checks: []Check{
			eq("i→P2 best max-flow c₂+p = 3−ε", p2Mf, qi(3).Sub(eps)),
			eq("single-task optimum c₁+p = 2", optMf, qi(2)),
			geq("i→P2 ratio (3−ε)/2 ≥ 5/4", p2Mf.Div(optMf), bound),
			eq("idle-branch best 3−ε", idleMf, qi(3).Sub(eps)),
			eq("case j on P1: max-flow 5−ε", jP1, qi(5).Sub(eps)),
			eq("case k on P1: max-flow 5−2ε", kP1, qi(5).Sub(eps.Mul(qi(2)))),
			eq("case l on P1: max-flow 5−2ε", lP1, qi(5).Sub(eps.Mul(qi(2)))),
			// The paper prints 6−2ε as the three-on-one-processor floor;
			// the three-on-P1 schedule actually evaluates to 5−ε (still
			// above the binding 5−2ε) and three-on-P2 to 7−3ε.
			eq("three on P1 evaluates to 5−ε", threeP1, qi(5).Sub(eps)),
			eq("three on P2 evaluates to 7−3ε", threeP2, qi(7).Sub(eps.Mul(qi(3)))),
			geq("three-on-one ≥ best two-per-processor", numeric.Min(threeP1, threeP2), best),
			eq("best achievable 5−2ε", best, qi(5).Sub(eps.Mul(qi(2)))),
			eq("better schedule (P2,P1,P2,P1) = 4", better, qi(4)),
			eq("main ratio = 5/4 − ε/2", best.Div(better), bound.Sub(eps.Div(qi(2)))),
		},
	}
}

// Theorem5 verifies the proof with ε = 1/100.
func Theorem5() Verification { return theorem5For(100) }

// Theorem6 verifies the proof of P,MS | online, r_i, p_j=p, c_j |
// Σ(C_i−r_i) ≥ 23/22: platform c = (1, 2), p = 3, checkpoint τ = c₂ = 2.
func Theorem6() Verification {
	pl := platformQ{
		c: []numeric.Quad{qi(1), qi(2)},
		p: []numeric.Quad{qi(3), qi(3)},
	}
	bound := qf(23, 22)
	rel1 := []numeric.Quad{qi(0)}
	rel4 := []numeric.Quad{qi(0), qi(2), qi(2), qi(2)}

	_, _, p2Sf := scheduleQ(pl, rel1, nil, []int{1})
	_, _, optSf := scheduleQ(pl, rel1, nil, []int{0})
	_, _, idleSf := scheduleQ(pl, rel1, []numeric.Quad{qi(2)}, []int{0})

	sf := func(assign ...int) numeric.Quad {
		_, _, s := scheduleQ(pl, rel4, nil, assign)
		return s
	}
	allP1 := sf(0, 0, 0, 0)
	onlyJ := sf(0, 1, 0, 0)
	onlyK := sf(0, 0, 1, 0)
	onlyL := sf(0, 0, 0, 1)
	jklP2 := sf(0, 1, 1, 1)
	twoJ := sf(0, 0, 1, 1)
	twoK := sf(0, 1, 0, 1)
	twoL := sf(0, 1, 1, 0)
	best := numeric.Min(allP1, onlyJ, onlyK, onlyL, jklP2, twoJ, twoK, twoL)
	better := sf(1, 0, 1, 0)

	return Verification{
		Theorem:   6,
		Statement: "P,MS | online, r_i, p_j=p, c_j | Σ(C_i−r_i) has no ratio below 23/22",
		Bound:     bound,
		BoundExpr: "23/22",
		Checks: []Check{
			eq("i→P2 best sum-flow c₂+p = 5", p2Sf, qi(5)),
			eq("single-task optimum c₁+p = 4", optSf, qi(4)),
			geq("i→P2 ratio 5/4 ≥ 23/22", p2Sf.Div(optSf), bound),
			eq("idle-branch best 6", idleSf, qi(6)),
			geq("idle ratio 6/4 ≥ 23/22", idleSf.Div(optSf), bound),
			eq("all four on P1", allP1, qi(28)),
			eq("only j on P2", onlyJ, qi(24)),
			eq("only k on P2", onlyK, qi(23)),
			eq("only l on P2", onlyL, qi(24)),
			eq("j,k,l on P2", jklP2, qi(28)),
			eq("two each, j on P1", twoJ, qi(24)),
			eq("two each, k on P1", twoK, qi(23)),
			eq("two each, l on P1", twoL, qi(25)),
			eq("best achievable 23", best, qi(23)),
			eq("better schedule (P2,P1,P2,P1) = 22", better, qi(22)),
			eq("main ratio 23/22", best.Div(better), bound),
		},
	}
}

// theorem7For builds the Theorem 7 verification for a concrete rational
// ε = 1/den (the proof sends ε → 0 to reach (1+√3)/2).
func theorem7For(den int64) Verification {
	eps := qf(1, den)
	s3 := numeric.Sqrt(3)
	onePlusS3 := qi(1).Add(s3)
	pl := platformQ{
		c: []numeric.Quad{onePlusS3, qi(1), qi(1)},
		p: []numeric.Quad{eps, onePlusS3, onePlusS3},
	}
	bound := onePlusS3.Div(qi(2))
	boundEps := bound.Sub(eps)
	rel1 := []numeric.Quad{qi(0)}
	rel3 := []numeric.Quad{qi(0), qi(1), qi(1)}

	p2Mk, _, _ := scheduleQ(pl, rel1, nil, []int{1})
	optMk, _, _ := scheduleQ(pl, rel1, nil, []int{0})
	idleMk, _, _ := scheduleQ(pl, rel1, []numeric.Quad{qi(1)}, []int{0})

	mk := func(assign ...int) numeric.Quad {
		m, _, _ := scheduleQ(pl, rel3, nil, assign)
		return m
	}
	bothP1 := mk(0, 0, 0)
	p2ThenP1 := mk(0, 1, 0)
	p1ThenP2 := mk(0, 0, 1)
	p2AndP3 := mk(0, 1, 2)
	bothP2 := mk(0, 1, 1)
	best := numeric.Min(bothP1, p2ThenP1, p1ThenP2, p2AndP3)
	better := mk(1, 2, 0)

	return Verification{
		Theorem:   7,
		Statement: "Q,MS | online, r_i, p_j, c_j | max C_i has no ratio below (1+√3)/2",
		Bound:     bound,
		BoundExpr: "(1+√3)/2",
		Checks: []Check{
			eq("i→P2 best makespan c₂+p₂ = 2+√3", p2Mk, qi(2).Add(s3)),
			eq("single-task optimum c₁+p₁ = 1+√3+ε", optMk, onePlusS3.Add(eps)),
			geq("i→P2 ratio ≥ bound−ε", p2Mk.Div(optMk), boundEps),
			eq("idle-branch best 2+√3+ε", idleMk, qi(2).Add(s3).Add(eps)),
			geq("idle ratio ≥ bound−ε", idleMk.Div(optMk), boundEps),
			eq("both j,k on P1: 3(1+√3)+ε", bothP1, qi(3).Add(s3.Mul(qi(3))).Add(eps)),
			eq("first on P2, other on P1: 3+2√3+ε", p2ThenP1, qi(3).Add(s3.Mul(qi(2))).Add(eps)),
			eq("first on P1, other on P2: 4+3√3", p1ThenP2, qi(4).Add(s3.Mul(qi(3)))),
			eq("one on P2, one on P3: 4+2√3", p2AndP3, qi(4).Add(s3.Mul(qi(2)))),
			geq("both on P2 dominated", bothP2, p2AndP3),
			eq("best achievable 3+2√3+ε", best, qi(3).Add(s3.Mul(qi(2))).Add(eps)),
			eq("better schedule (P2,P3,P1) = 3+√3+ε", better, qi(3).Add(s3).Add(eps)),
			geq("main ratio ≥ bound−ε", best.Div(better), boundEps),
			// At ε = 0 the main ratio is exactly the bound.
			eq("limit identity (3+2√3)/(3+√3) = (1+√3)/2",
				qi(3).Add(s3.Mul(qi(2))).Div(qi(3).Add(s3)), bound),
		},
	}
}

// Theorem7 verifies the proof with ε = 1/100.
func Theorem7() Verification { return theorem7For(100) }

// Theorem8 verifies the limit identities behind Q,MS | online, r_i, p_j,
// c_j | Σ(C_i−r_i) ≥ (√13−1)/2. The finite construction involves
// √(52c₁²+12c₁+1), which lies outside Q[√13]; the proof only needs the
// c₁ → ∞ limits, which are exact in Q[√13] with x = lim τ/c₁ = (√13−3)/2.
// The finite-parameter behaviour is exercised numerically by the
// adversary package.
func Theorem8() Verification {
	s13 := numeric.Sqrt(13)
	x := s13.Sub(qi(3)).Div(qi(2)) // lim τ/c₁
	bound := s13.Sub(qi(1)).Div(qi(2))

	// Per-c₁ limits of the proof's branch sum-flows.
	bothP1 := qi(6).Sub(x.Mul(qi(2))) // (6c₁ − 2τ + 3ε)/c₁ → 6 − 2x
	p2ThenP1 := qi(5).Sub(x)          // (5c₁ − τ + 1 + 2ε)/c₁ → 5 − x
	p1ThenP2 := qi(6).Sub(x)          // (6c₁ − τ + 2ε)/c₁ → 6 − x
	p2AndP3 := qi(5)                  // (5c₁ + 1 + ε)/c₁ → 5
	best := numeric.Min(bothP1, p2ThenP1, p1ThenP2, p2AndP3)
	alt := qi(3).Add(x.Mul(qi(2))) // (3c₁ + 2τ + 1 + ε)/c₁ → 3 + 2x

	return Verification{
		Theorem:   8,
		Statement: "Q,MS | online, r_i, p_j, c_j | Σ(C_i−r_i) has no ratio below (√13−1)/2",
		Bound:     bound,
		BoundExpr: "(√13-1)/2",
		Checks: []Check{
			// τ's definition satisfies 2τ² + 6τc₁ + τ = 2c₁², whose scaled
			// limit is x² + 3x = 1.
			eq("x = (√13−3)/2 solves x²+3x = 1", x.Mul(x).Add(x.Mul(qi(3))), qi(1)),
			eq("branch limit: i→P2 ratio (τ+c₁)/c₁ → 1+x = bound", qi(1).Add(x), bound),
			eq("best branch limit is 5−x", best, p2ThenP1),
			geq("both-on-P1 dominated in the limit", bothP1, p2ThenP1),
			geq("P1-then-P2 dominated in the limit", p1ThenP2, p2ThenP1),
			geq("P2-and-P3 dominated in the limit", p2AndP3, p2ThenP1),
			eq("main ratio limit (5−x)/(3+2x) = bound", p2ThenP1.Div(alt), bound),
		},
	}
}

// theorem9For builds the Theorem 9 verification for a concrete rational
// ε = 1/den (the proof needs ε < 1; the bound √2 is approached as ε → 0).
func theorem9For(den int64) Verification {
	eps := qf(1, den)
	s2 := numeric.Sqrt(2)
	c1 := qi(2).Add(s2.Mul(qi(2))) // 2(1+√2)
	p23 := s2.Mul(c1).Sub(qi(1))   // √2c₁ − 1 = 3+2√2
	tau := s2.Sub(qi(1)).Mul(c1)
	pl := platformQ{
		c: []numeric.Quad{c1, qi(1), qi(1)},
		p: []numeric.Quad{eps, p23, p23},
	}
	bound := s2
	boundEps := bound.Sub(eps)
	rel1 := []numeric.Quad{qi(0)}
	rel3 := []numeric.Quad{qi(0), tau, tau}

	_, p2Mf, _ := scheduleQ(pl, rel1, nil, []int{1})
	_, optMf, _ := scheduleQ(pl, rel1, nil, []int{0})
	_, idleMf, _ := scheduleQ(pl, rel1, []numeric.Quad{tau}, []int{0})

	mf := func(assign ...int) numeric.Quad {
		_, m, _ := scheduleQ(pl, rel3, nil, assign)
		return m
	}
	bothP1 := mf(0, 0, 0)
	p2ThenP1 := mf(0, 1, 0)
	p1ThenP2 := mf(0, 0, 1)
	p2AndP3 := mf(0, 1, 2)
	bothP2 := mf(0, 1, 1)
	best := numeric.Min(bothP1, p2ThenP1, p1ThenP2, p2AndP3)
	better := mf(1, 2, 0)

	return Verification{
		Theorem:   9,
		Statement: "Q,MS | online, r_i, p_j, c_j | max(C_i−r_i) has no ratio below √2",
		Bound:     bound,
		BoundExpr: "√2",
		Checks: []Check{
			eq("τ = (√2−1)c₁ equals 2 exactly", tau, qi(2)),
			geq("c₁+p₁ < p₂ (requires ε < 1)", p23.Sub(c1.Add(eps)), qi(0)),
			eq("i→P2 best max-flow c₂+p₂ = √2c₁", p2Mf, s2.Mul(c1)),
			eq("single-task optimum c₁+ε", optMf, c1.Add(eps)),
			geq("i→P2 ratio ≥ √2−ε", p2Mf.Div(optMf), boundEps),
			eq("idle-branch best √2c₁+ε", idleMf, s2.Mul(c1).Add(eps)),
			geq("idle ratio ≥ √2−ε", idleMf.Div(optMf), boundEps),
			eq("both j,k on P1: (4−√2)c₁+ε", bothP1, qi(4).Sub(s2).Mul(c1).Add(eps)),
			eq("first on P2, other on P1: 2c₁", p2ThenP1, c1.Mul(qi(2))),
			eq("first on P1, other on P2: 3c₁", p1ThenP2, c1.Mul(qi(3))),
			eq("one on P2, one on P3: 2c₁+1", p2AndP3, c1.Mul(qi(2)).Add(qi(1))),
			geq("both on P2 dominated", bothP2, p2AndP3),
			eq("best achievable 2c₁", best, c1.Mul(qi(2))),
			eq("better schedule (P2,P3,P1) = √2c₁", better, s2.Mul(c1)),
			eq("main ratio 2c₁/(√2c₁) = √2 exactly", best.Div(better), bound),
		},
	}
}

// Theorem9 verifies the proof with ε = 1/100.
func Theorem9() Verification { return theorem9For(100) }
