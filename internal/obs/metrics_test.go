package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	var fg FloatGauge
	fg.Set(2.5)
	if fg.Value() != 2.5 {
		t.Fatalf("float gauge = %v, want 2.5", fg.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	bounds, cum, total := h.Snapshot()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// le=1 catches 0.5 and 1 (le is inclusive); le=10 adds 5; le=100
	// adds 50; +Inf adds 500.
	want := []uint64{2, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (cum=%v)", i, cum[i], w, cum)
		}
	}
	if total != 5 || h.Count() != 5 {
		t.Fatalf("total = %d, count = %d, want 5", total, h.Count())
	}
	if got := h.Sum(); got != 556.5 {
		t.Fatalf("sum = %v, want 556.5", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics table-driven: a
// value exactly equal to an upper bound lands in THAT bound's bucket
// (Prometheus le is inclusive — Observe uses the first bound >= v), so
// SLO-style queries over bucket edges never off-by-one.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.5, 1, 2.5}
	cases := []struct {
		name   string
		value  float64
		bucket int // index into counts; len(bounds) is +Inf
	}{
		{"below first bound", 0.1, 0},
		{"exactly first bound", 0.5, 0},
		{"just above first bound", math.Nextafter(0.5, 1), 1},
		{"between bounds", 0.75, 1},
		{"exactly middle bound", 1, 1},
		{"exactly last bound", 2.5, 2},
		{"just above last bound", math.Nextafter(2.5, 3), 3},
		{"far above last bound", 100, 3},
		{"zero", 0, 0},
		{"negative", -1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHistogram(bounds)
			h.Observe(c.value)
			_, cum, total := h.Snapshot()
			if total != 1 {
				t.Fatalf("total = %d", total)
			}
			// The cumulative counts step from 0 to 1 exactly at the target
			// bucket.
			for i, got := range cum {
				want := uint64(0)
				if i >= c.bucket {
					want = 1
				}
				if got != want {
					t.Fatalf("value %v: cumulative[%d] = %d, want %d (cum=%v)", c.value, i, got, want, cum)
				}
			}
		})
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{
		{1, 1},
		{2, 1},
		{math.Inf(1)},
		{math.NaN()},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v: no panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

// TestRecordPathAllocationFree pins the tentpole contract: recording on
// every metric type allocates nothing. The CI benchgate enforces the
// same property continuously via BenchmarkObsRecord.
func TestRecordPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs", Labels("shard", "0"))
	g := r.Gauge("depth", "queue depth", "")
	fg := r.FloatGauge("rate", "rate", "")
	h := r.Histogram("lat", "latency", "", LatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		fg.Set(1.5)
		h.Observe(0.042)
	}); n != 0 {
		t.Fatalf("record path allocates %v/op, want 0", n)
	}
}

func TestAuditRecordAllocationFree(t *testing.T) {
	a := NewAuditRing(64, 4)
	scores := []float64{1, 2, 3, 4}
	if n := testing.AllocsPerRun(1000, func() {
		a.Record(Decision{Kind: DecisionPlace, Job: 1, From: -1, To: 2, Scores: scores})
	}); n != 0 {
		t.Fatalf("audit record allocates %v/op, want 0", n)
	}
}

func TestLabels(t *testing.T) {
	if got := Labels(); got != "" {
		t.Fatalf("Labels() = %q", got)
	}
	if got := Labels("shard", "0"); got != `{shard="0"}` {
		t.Fatalf("Labels = %q", got)
	}
	// Sorted by key, values escaped.
	if got := Labels("b", `x"y`, "a", "z"); got != `{a="z",b="x\"y"}` {
		t.Fatalf("Labels = %q", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("schedd_jobs_submitted_total", "Jobs accepted.", Labels("shard", "0"))
	c.Add(12)
	r.GaugeFunc("schedd_queue_depth", "Backlog.", "", func() float64 { return 3 })
	h := r.Histogram("schedd_job_latency_seconds", "Latency.", "", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP schedd_jobs_submitted_total Jobs accepted.",
		"# TYPE schedd_jobs_submitted_total counter",
		`schedd_jobs_submitted_total{shard="0"} 12`,
		"# TYPE schedd_queue_depth gauge",
		"schedd_queue_depth 3",
		"# TYPE schedd_job_latency_seconds histogram",
		`schedd_job_latency_seconds_bucket{le="0.1"} 1`,
		`schedd_job_latency_seconds_bucket{le="1"} 1`,
		`schedd_job_latency_seconds_bucket{le="+Inf"} 2`,
		"schedd_job_latency_seconds_sum 5.05",
		"schedd_job_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusHistogramLabels pins the le splice into an
// existing label set.
func TestWritePrometheusHistogramLabels(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "l", Labels("shard", "1"), []float64{1})
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_bucket{shard="1",le="1"} 1`,
		`lat_bucket{shard="1",le="+Inf"} 1`,
		`lat_sum{shard="1"} 0.5`,
		`lat_count{shard="1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "a", Labels("shard", "0"))
	c.Add(2)
	h := r.Histogram("lat", "l", "", []float64{1})
	h.Observe(0.5)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"a_total{shard=\"0\"}": 2`,
		`"lat": {"buckets": {"1": 1, "+Inf": 1}, "sum": 0.5, "count": 1}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "2x", "a-b", "a b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q: no panic", name)
				}
			}()
			r.Counter(name, "", "")
		}()
	}
}

func TestRegistryRejectsKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge name collision")
		}
	}()
	r.Gauge("x", "", "")
}
