package obs

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

func rec(task, slave int, release, send, arrive, start, complete float64) core.Record {
	return core.Record{
		Task: core.TaskID(task), Slave: slave,
		Release: release, SendStart: send, Arrive: arrive,
		Start: start, Complete: complete,
	}
}

func TestFromRecord(t *testing.T) {
	sp := FromRecord(rec(3, 1, 0, 2, 5, 6, 10))
	if sp.Job != 3 || sp.Slave != 1 || sp.Start != 0 || sp.End != 10 {
		t.Fatalf("span = %+v", sp)
	}
	want := []Stage{
		{StageQueue, 0, 2},
		{StageTransfer, 2, 5},
		{StageSlaveWait, 5, 6},
		{StageService, 6, 10},
	}
	if !reflect.DeepEqual(sp.Stages, want) {
		t.Fatalf("stages = %+v, want %+v", sp.Stages, want)
	}
	// Stages tile the span exactly: contiguous, in order.
	for i, st := range sp.Stages {
		if st.Name != StageNames()[i] {
			t.Fatalf("stage %d named %q", i, st.Name)
		}
		if i > 0 && st.Start != sp.Stages[i-1].End {
			t.Fatalf("stage %d not contiguous: %+v", i, sp.Stages)
		}
	}
	if sp.Stages[0].Start != sp.Start || sp.Stages[3].End != sp.End {
		t.Fatalf("stages do not tile the span: %+v", sp)
	}
}

// TestFromRecordsDeterministic pins that the span stream is a pure
// function of the records: two derivations are deeply equal.
func TestFromRecordsDeterministic(t *testing.T) {
	recs := []core.Record{
		rec(0, 0, 0, 0, 1, 1, 4),
		rec(1, 2, 0, 1, 3, 3, 9),
		rec(2, 1, 2, 3, 5, 7, 8),
	}
	a, b := FromRecords(recs), FromRecords(recs)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("span derivation is not deterministic")
	}
	if len(a) != 3 || a[2].Job != 2 {
		t.Fatalf("spans = %+v", a)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown(nil)
	if b.Jobs != 0 || b.Queue.Mean != 0 {
		t.Fatalf("empty breakdown = %+v", b)
	}
	b = Breakdown([]core.Record{
		rec(0, 0, 0, 2, 3, 3, 7), // queue 2, transfer 1, wait 0, service 4
		rec(1, 1, 0, 4, 6, 7, 9), // queue 4, transfer 2, wait 1, service 2
	})
	if b.Jobs != 2 {
		t.Fatalf("jobs = %d", b.Jobs)
	}
	checks := []struct {
		name      string
		got       StageSummary
		mean, max float64
	}{
		{"queue", b.Queue, 3, 4},
		{"transfer", b.Transfer, 1.5, 2},
		{"slave-wait", b.SlaveWait, 0.5, 1},
		{"service", b.Service, 3, 4},
	}
	for _, c := range checks {
		if c.got.Mean != c.mean || c.got.Max != c.max {
			t.Fatalf("%s = %+v, want mean %v max %v", c.name, c.got, c.mean, c.max)
		}
	}
	scaled := b.Scale(2)
	if scaled.Queue.Mean != 1.5 || scaled.Service.Max != 2 || scaled.Jobs != 2 {
		t.Fatalf("scaled = %+v", scaled)
	}
}
