package obs

import "repro/internal/core"

// Span decomposition of a job's lifecycle. The one-port model gives the
// lifecycle a fixed shape — a job is released, waits for the master's
// port, occupies it for the transfer, sits at the slave until the
// computation starts, computes, completes — so a completed schedule
// record decomposes exactly into four contiguous stages:
//
//	queue:      Release   → SendStart  (waiting for the one port)
//	transfer:   SendStart → Arrive     (occupying the port)
//	slave-wait: Arrive    → Start      (at the slave, not yet computing)
//	service:    Start     → Complete   (computing)
//
// Nothing here reads a clock: a span is a pure function of the record's
// timestamps, which themselves come from the runtime's pluggable clock.
// That is the whole determinism argument — under the virtual clock the
// records are bit-identical to the discrete-event engine's (the PR-3
// conformance contract), so the spans derived from them are too, and
// the conformance suite extends to traces with no new mechanism.

// Stage names, in lifecycle order.
const (
	StageQueue     = "queue"
	StageTransfer  = "transfer"
	StageSlaveWait = "slave-wait"
	StageService   = "service"
)

// StageNames lists the stages in lifecycle order.
func StageNames() []string {
	return []string{StageQueue, StageTransfer, StageSlaveWait, StageService}
}

// Stage is one contiguous interval of a job's lifecycle. Times are in
// the clock domain of the record the span was derived from (model
// seconds for runtime records).
type Stage struct {
	Name  string  `json:"name"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Duration returns the stage length.
func (s Stage) Duration() float64 { return s.End - s.Start }

// Span is one job's complete lifecycle: the root interval plus its
// child stages, in order — a depth-one span tree, which is all the
// one-port lifecycle needs.
type Span struct {
	Job    int     `json:"job"`
	Slave  int     `json:"slave"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Stages []Stage `json:"stages"`
}

// FromRecord decomposes one completed schedule record into its span.
func FromRecord(rec core.Record) Span {
	return Span{
		Job:   int(rec.Task),
		Slave: rec.Slave,
		Start: rec.Release,
		End:   rec.Complete,
		Stages: []Stage{
			{Name: StageQueue, Start: rec.Release, End: rec.SendStart},
			{Name: StageTransfer, Start: rec.SendStart, End: rec.Arrive},
			{Name: StageSlaveWait, Start: rec.Arrive, End: rec.Start},
			{Name: StageService, Start: rec.Start, End: rec.Complete},
		},
	}
}

// FromRecords decomposes a completed schedule into its span stream, in
// record order. The output is deterministic: same records, same bytes.
func FromRecords(recs []core.Record) []Span {
	out := make([]Span, len(recs))
	for i, rec := range recs {
		out[i] = FromRecord(rec)
	}
	return out
}

// StageBreakdown is the per-stage latency decomposition over a set of
// completed jobs: for each lifecycle stage, the mean and maximum
// duration, in the records' clock domain. This is what GET /stats
// surfaces (rescaled to wall seconds): it answers "is latency queueing,
// the port, or service?" — the decomposition the one-port model makes
// meaningful.
type StageBreakdown struct {
	Jobs  int          `json:"jobs"`
	Queue StageSummary `json:"queue"`
	// Transfer is port occupancy: the master can ship nothing else
	// while a job is in this stage.
	Transfer  StageSummary `json:"transfer"`
	SlaveWait StageSummary `json:"slave_wait"`
	Service   StageSummary `json:"service"`
}

// StageSummary aggregates one stage across jobs.
type StageSummary struct {
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// Breakdown computes the per-stage decomposition of completed records.
// Zero records yield the zero breakdown.
func Breakdown(recs []core.Record) StageBreakdown {
	b := StageBreakdown{Jobs: len(recs)}
	if len(recs) == 0 {
		return b
	}
	acc := func(s *StageSummary, d float64) {
		s.Mean += d
		if d > s.Max {
			s.Max = d
		}
	}
	for _, rec := range recs {
		acc(&b.Queue, rec.SendStart-rec.Release)
		acc(&b.Transfer, rec.Arrive-rec.SendStart)
		acc(&b.SlaveWait, rec.Start-rec.Arrive)
		acc(&b.Service, rec.Complete-rec.Start)
	}
	n := float64(len(recs))
	b.Queue.Mean /= n
	b.Transfer.Mean /= n
	b.SlaveWait.Mean /= n
	b.Service.Mean /= n
	return b
}

// MergeBreakdowns combines per-shard breakdowns into the cluster view:
// means weight by job count (exact), maxima take the max.
func MergeBreakdowns(parts ...StageBreakdown) StageBreakdown {
	var out StageBreakdown
	for _, p := range parts {
		out.Jobs += p.Jobs
	}
	if out.Jobs == 0 {
		return out
	}
	merge := func(get func(*StageBreakdown) *StageSummary) {
		dst := get(&out)
		for i := range parts {
			p := get(&parts[i])
			dst.Mean += p.Mean * float64(parts[i].Jobs) / float64(out.Jobs)
			if p.Max > dst.Max {
				dst.Max = p.Max
			}
		}
	}
	merge(func(b *StageBreakdown) *StageSummary { return &b.Queue })
	merge(func(b *StageBreakdown) *StageSummary { return &b.Transfer })
	merge(func(b *StageBreakdown) *StageSummary { return &b.SlaveWait })
	merge(func(b *StageBreakdown) *StageSummary { return &b.Service })
	return out
}

// Scale returns the breakdown with every duration divided by scale —
// how schedd converts model seconds to wall seconds (scale =
// ClockScale).
func (b StageBreakdown) Scale(scale float64) StageBreakdown {
	if scale == 1 || scale == 0 {
		return b
	}
	div := func(s StageSummary) StageSummary {
		return StageSummary{Mean: s.Mean / scale, Max: s.Max / scale}
	}
	b.Queue = div(b.Queue)
	b.Transfer = div(b.Transfer)
	b.SlaveWait = div(b.SlaveWait)
	b.Service = div(b.Service)
	return b
}
