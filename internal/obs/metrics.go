// Package obs is the zero-dependency observability kernel: atomic
// counters, gauges and fixed-bucket histograms with a hand-rolled
// Prometheus text exposition, a deterministic span decomposition of job
// lifecycles, and a bounded decision-audit ring. It exists so the
// serving stack (internal/live, internal/cluster, internal/schedd) can
// expose real-time telemetry without violating the PR-4 hot-path
// discipline:
//
//   - The record path allocates nothing. Counters and gauges are single
//     atomic words; a histogram's buckets are preallocated at
//     construction and Observe touches only atomics. The CI benchmark
//     gate pins this (BenchmarkObsRecord in internal/perf).
//   - Recording never takes a lock shared with exposition. Scrapes
//     (WritePrometheus, WriteJSON) read the same atomics; the registry
//     mutex only guards the metric table, which is written at setup
//     time.
//   - Nothing in this package reads a clock or randomness. Timestamps
//     come from the caller — the runtime's pluggable clock — which is
//     what keeps virtual-clock span streams bit-identical (DESIGN.md
//     §13).
//
// The exposition format is the Prometheus text format, hand-rolled: the
// repository takes no dependencies, and the subset needed — counter,
// gauge, histogram with cumulative le buckets — is a page of code.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer level (queue depth, live slaves).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an instantaneous float level, stored as IEEE-754 bits in
// one atomic word.
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are upper bucket
// edges in increasing order; an implicit +Inf bucket catches the rest.
// Everything is preallocated at construction: Observe performs one
// binary search over the bounds, two atomic adds and one atomic
// float-add (CAS loop on the sum) — no allocation, no lock.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram with the given upper bounds, which
// must be finite and strictly increasing.
func NewHistogram(bounds []float64) *Histogram {
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic(fmt.Sprintf("obs: histogram bound %d is %v", i, b))
		}
		if i > 0 && b <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v after %v", i, b, bounds[i-1]))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// LatencyBuckets is the default bucket layout for wall-clock latencies
// in seconds: 1ms to 60s, roughly logarithmic.
func LatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns the bucket upper bounds and the CUMULATIVE counts at
// each bound (Prometheus le semantics), plus the +Inf total.
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64, total uint64) {
	bounds = h.bounds
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cumulative[i] = acc
	}
	return bounds, cumulative, acc
}

// metricKind discriminates exposition types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance of a metric family. Exactly one of the
// value sources is set; fn-backed series are sampled at scrape time.
type series struct {
	labels  string // pre-rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	fgauge  *FloatGauge
	hist    *Histogram
	fn      func() float64
}

// family is one named metric with help text, a type, and its series in
// registration order.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []series
}

// Registry is an ordered collection of metric families. Registration
// happens at setup time (allocations are fine there); the record path
// never touches the registry. Scrapes walk the table under the mutex,
// reading each series' atomics.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*family{}}
}

// validName enforces the Prometheus metric-name charset.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup finds or creates the family, panicking on a name reused with a
// different type — a setup-time programmer error.
func (r *Registry) lookup(name, help string, kind metricKind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.index[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %v and %v", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	r.families = append(r.families, f)
	r.index[name] = f
	return f
}

// Labels renders a label set deterministically (sorted by key) into the
// pre-baked exposition form, e.g. Labels("shard", "0") → `{shard="0"}`.
// Call it at registration time; the result is stored, so the record
// path never formats anything.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: Labels needs key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := "{"
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += p.k + `="` + escapeLabel(p.v) + `"`
	}
	return out + "}"
}

func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// Counter registers (or extends) a counter family and returns the
// instance for the given pre-rendered label set (see Labels).
func (r *Registry) Counter(name, help, labels string) *Counter {
	f := r.lookup(name, help, kindCounter)
	c := &Counter{}
	r.mu.Lock()
	f.series = append(f.series, series{labels: labels, counter: c})
	r.mu.Unlock()
	return c
}

// Gauge registers a gauge instance.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	f := r.lookup(name, help, kindGauge)
	g := &Gauge{}
	r.mu.Lock()
	f.series = append(f.series, series{labels: labels, gauge: g})
	r.mu.Unlock()
	return g
}

// FloatGauge registers a float gauge instance.
func (r *Registry) FloatGauge(name, help, labels string) *FloatGauge {
	f := r.lookup(name, help, kindGauge)
	g := &FloatGauge{}
	r.mu.Lock()
	f.series = append(f.series, series{labels: labels, fgauge: g})
	r.mu.Unlock()
	return g
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — for quantities another subsystem already counts
// atomically (tracker counts, steal totals), so the hot path is not
// instrumented twice.
func (r *Registry) CounterFunc(name, help, labels string, fn func() float64) {
	f := r.lookup(name, help, kindCounter)
	r.mu.Lock()
	f.series = append(f.series, series{labels: labels, fn: fn})
	r.mu.Unlock()
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	f := r.lookup(name, help, kindGauge)
	r.mu.Lock()
	f.series = append(f.series, series{labels: labels, fn: fn})
	r.mu.Unlock()
}

// Histogram registers a histogram instance with the given bucket upper
// bounds.
func (r *Registry) Histogram(name, help, labels string, bounds []float64) *Histogram {
	f := r.lookup(name, help, kindHistogram)
	h := NewHistogram(bounds)
	r.mu.Lock()
	f.series = append(f.series, series{labels: labels, hist: h})
	r.mu.Unlock()
	return h
}

// value samples a scalar series.
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	case s.fgauge != nil:
		return s.fgauge.Value()
	case s.fn != nil:
		return s.fn()
	}
	return math.NaN()
}

// formatValue renders a sample the way Prometheus expects: integers
// without exponents, floats via strconv's shortest round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE per family, then
// one line per series; histograms expand to cumulative _bucket lines
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for i := range f.series {
			s := &f.series[i]
			if f.kind == kindHistogram {
				if err := writePromHistogram(w, f.name, s); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.value())); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram renders one histogram series. The le label is
// spliced into the series' pre-rendered label set.
func writePromHistogram(w io.Writer, name string, s *series) error {
	bounds, cum, total := s.hist.Snapshot()
	for i, b := range bounds {
		if err := writeBucket(w, name, s.labels, formatValue(b), cum[i]); err != nil {
			return err
		}
	}
	if err := writeBucket(w, name, s.labels, "+Inf", total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
		name, s.labels, formatValue(s.hist.Sum()), name, s.labels, total); err != nil {
		return err
	}
	return nil
}

func writeBucket(w io.Writer, name, labels, le string, n uint64) error {
	sep := "{"
	if labels != "" {
		sep = labels[:len(labels)-1] + ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, sep, le, n)
	return err
}

// WriteJSON renders the registry as one flat JSON object in the
// /debug/vars idiom: "name{labels}" → value for scalars, histograms as
// {"buckets": {le: cumulative}, "sum": s, "count": n}. Keys appear in
// registration order; the object is rendered by hand to keep it so.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	first := true
	for _, f := range fams {
		for i := range f.series {
			s := &f.series[i]
			if !first {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			first = false
			if _, err := fmt.Fprintf(w, "\n  %q: ", f.name+s.labels); err != nil {
				return err
			}
			if f.kind == kindHistogram {
				if err := writeJSONHistogram(w, s.hist); err != nil {
					return err
				}
				continue
			}
			if _, err := io.WriteString(w, jsonNumber(s.value())); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

func writeJSONHistogram(w io.Writer, h *Histogram) error {
	bounds, cum, total := h.Snapshot()
	if _, err := io.WriteString(w, `{"buckets": {`); err != nil {
		return err
	}
	for i, b := range bounds {
		if i > 0 {
			if _, err := io.WriteString(w, ", "); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%q: %d", formatValue(b), cum[i]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, `, "+Inf": %d}, "sum": %s, "count": %d}`, total, jsonNumber(h.Sum()), total)
	return err
}

// jsonNumber renders a float as a JSON number (NaN and ±Inf are not
// representable; they become 0, which can only arise from a broken
// func metric).
func jsonNumber(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return formatValue(v)
}
