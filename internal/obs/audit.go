package obs

import "sync"

// Decision audit: a bounded, preallocated ring of the router's recent
// placement, steal and migration decisions, answering "why did job J
// land on shard 2?" without logging on the hot path. Record copies the
// entry into a preallocated slot under a short mutex — no allocation,
// no I/O — and the per-entry score vectors live in one backing array
// sized at construction, so steady-state recording never touches the
// allocator. Readers (GET /decisions) copy the newest entries out.

// Decision kinds.
const (
	// DecisionPlace is one job routed to a shard at submission.
	DecisionPlace = "place"
	// DecisionSteal is one rebalancer plan entry (From → To, N jobs).
	DecisionSteal = "steal"
	// DecisionMigrate is one executed migration with its realized size
	// and latency.
	DecisionMigrate = "migrate"
)

// Decision is one audit entry. Which fields are meaningful depends on
// Kind: a place has Job, To and Scores (the policy's per-shard scores —
// chosen and rejected alike — NaN where a shard was not scored); a
// steal has From, To and Planned; a migrate has From, To, Planned, the
// realized N and its wall latency.
type Decision struct {
	// Seq is the entry's global sequence number, monotonically
	// increasing from 1; gaps in a reader's view mean the ring wrapped.
	Seq uint64 `json:"seq"`
	// Wall is the decision's wall-clock time in Unix nanoseconds,
	// supplied by the caller (the audit never reads a clock itself).
	Wall int64 `json:"wall_unix_nano"`
	// Kind is one of the Decision* constants.
	Kind string `json:"kind"`
	// Policy names the policy that made the decision.
	Policy string `json:"policy"`
	// Job is the global job ID for placements, -1 otherwise.
	Job int `json:"job,omitempty"`
	// From and To are shard indices; From is -1 for placements.
	From int `json:"from"`
	To   int `json:"to"`
	// Planned and N are the intended and realized move sizes for
	// steals/migrations (a migration may move less than planned).
	Planned int `json:"planned,omitempty"`
	N       int `json:"n,omitempty"`
	// LatencySeconds is the migration's execution latency.
	LatencySeconds float64 `json:"latency_seconds,omitempty"`
	// Scores are the placement policy's per-shard scores at decision
	// time (lower is better for the scoring policies); empty when the
	// policy exposes none. The slice aliases the ring's backing array —
	// valid only in entries returned by Recent, which copies.
	Scores []float64 `json:"scores,omitempty"`
}

// AuditRing is the bounded decision store. All storage is allocated at
// construction: cap Decision slots plus one cap×shards float backing
// array the per-entry score slices are carved from.
type AuditRing struct {
	mu      sync.Mutex
	entries []Decision
	backing []float64 // scores storage: entries[i] uses [i*stride, (i+1)*stride)
	stride  int
	next    uint64 // total recorded; entries[(next-1) % cap] is newest
	dropped uint64
	sink    func(Decision)
}

// NewAuditRing builds a ring holding the most recent capacity
// decisions, each able to carry up to shards scores. capacity <= 0
// returns nil — a nil *AuditRing is a valid, always-off audit (Record
// is a no-op, Recent returns nothing), so callers need no branching.
func NewAuditRing(capacity, shards int) *AuditRing {
	if capacity <= 0 {
		return nil
	}
	if shards < 0 {
		shards = 0
	}
	return &AuditRing{
		entries: make([]Decision, capacity),
		backing: make([]float64, capacity*shards),
		stride:  shards,
	}
}

// Record stores one decision. d.Scores (if any) is copied into the
// ring's backing array, truncated to the per-entry stride; d.Seq is
// assigned by the ring. Safe for concurrent use; allocation-free.
func (a *AuditRing) Record(d Decision) {
	if a == nil {
		return
	}
	a.mu.Lock()
	i := int(a.next % uint64(len(a.entries)))
	if a.next >= uint64(len(a.entries)) {
		a.dropped++
	}
	a.next++
	d.Seq = a.next
	if n := len(d.Scores); n > 0 && a.stride > 0 {
		if n > a.stride {
			n = a.stride
		}
		dst := a.backing[i*a.stride : i*a.stride+n]
		copy(dst, d.Scores[:n])
		d.Scores = dst
	} else {
		d.Scores = nil
	}
	a.entries[i] = d
	if a.sink != nil {
		a.sink(d)
	}
	a.mu.Unlock()
}

// SetSink registers a hook invoked with every recorded decision (Seq
// assigned), under the ring's mutex — the flight recorder's journaling
// tap. The hook must be fast, must not call back into the ring, and
// must copy d.Scores if it retains them (they alias the ring's backing
// array). Set it before decisions flow; nil removes the sink.
func (a *AuditRing) SetSink(fn func(Decision)) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.sink = fn
	a.mu.Unlock()
}

// Len returns how many entries the ring currently holds.
func (a *AuditRing) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.next < uint64(len(a.entries)) {
		return int(a.next)
	}
	return len(a.entries)
}

// Dropped returns how many decisions the ring has overwritten — the
// audit's loss counter, exposed as a metric so a scraper knows when its
// polling cadence is too slow for the decision rate.
func (a *AuditRing) Dropped() uint64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// Recent returns up to n of the newest decisions, newest first, as
// copies (scores included) safe to hold after the ring wraps. n <= 0
// means all held entries.
func (a *AuditRing) Recent(n int) []Decision {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	held := len(a.entries)
	if a.next < uint64(held) {
		held = int(a.next)
	}
	if n <= 0 || n > held {
		n = held
	}
	out := make([]Decision, n)
	for k := 0; k < n; k++ {
		i := int((a.next - 1 - uint64(k)) % uint64(len(a.entries)))
		d := a.entries[i]
		if len(d.Scores) > 0 {
			d.Scores = append([]float64(nil), d.Scores...)
		}
		out[k] = d
	}
	return out
}
