package obs_test

import (
	"testing"

	"repro/internal/obs"
)

func mustSLO(t *testing.T, obj obs.Objective, windows ...float64) *obs.SLO {
	t.Helper()
	s, err := obs.NewSLO(obj, windows...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestObjectiveValidate(t *testing.T) {
	cases := []struct {
		name string
		obj  obs.Objective
		ok   bool
	}{
		{"latency ok", obs.Objective{Name: "p99", Kind: obs.ObjectiveLatency, ThresholdSeconds: 0.5, Target: 0.99}, true},
		{"availability ok", obs.Objective{Name: "avail", Kind: obs.ObjectiveAvailability, Target: 0.999}, true},
		{"no name", obs.Objective{Kind: obs.ObjectiveAvailability, Target: 0.9}, false},
		{"bad kind", obs.Objective{Name: "x", Kind: "throughput", Target: 0.9}, false},
		{"latency no threshold", obs.Objective{Name: "x", Kind: obs.ObjectiveLatency, Target: 0.9}, false},
		{"target 0", obs.Objective{Name: "x", Kind: obs.ObjectiveAvailability, Target: 0}, false},
		{"target 1", obs.Objective{Name: "x", Kind: obs.ObjectiveAvailability, Target: 1}, false},
	}
	for _, c := range cases {
		if err := c.obj.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSLOBurnRates(t *testing.T) {
	s := mustSLO(t, obs.Objective{Name: "avail", Kind: obs.ObjectiveAvailability, Target: 0.9}, 10, 100)
	// 100 events in the first 10 seconds: 80 good, 20 bad — error rate
	// 0.2, budget 0.1, burn 2.0 over both windows.
	for i := 0; i < 100; i++ {
		s.Record(float64(i)/10, i%5 != 0)
	}
	burns := s.Burn(9)
	if len(burns) != 2 || burns[0].WindowSeconds != 10 || burns[1].WindowSeconds != 100 {
		t.Fatalf("burns = %+v", burns)
	}
	for _, b := range burns {
		if b.Total != 100 || b.Good != 80 {
			t.Fatalf("window %v counts = %d/%d, want 80/100", b.WindowSeconds, b.Good, b.Total)
		}
		if b.BurnRate < 1.99 || b.BurnRate > 2.01 || b.OK {
			t.Fatalf("window %v burn = %+v, want ~2.0 not OK", b.WindowSeconds, b)
		}
	}
	if s.Healthy(9) {
		t.Fatal("burning at 2x should not be healthy")
	}
	if good, total := s.Totals(); good != 80 || total != 100 {
		t.Fatalf("totals = %d/%d", good, total)
	}

	// 20 seconds later the short window has decayed to empty (OK again);
	// the long window still sees the errors.
	burns = s.Burn(30)
	if burns[0].Total != 0 || !burns[0].OK || burns[0].BurnRate != 0 {
		t.Fatalf("short window after decay = %+v", burns[0])
	}
	if burns[1].Total != 100 || burns[1].OK {
		t.Fatalf("long window after decay = %+v", burns[1])
	}
}

func TestSLOLatencyKind(t *testing.T) {
	s := mustSLO(t, obs.Objective{Name: "p95", Kind: obs.ObjectiveLatency, ThresholdSeconds: 0.5, Target: 0.95}, 60)
	for i := 0; i < 100; i++ {
		lat := 0.1
		if i%10 == 0 {
			lat = 2.0 // 10% over threshold
		}
		s.RecordLatency(float64(i)/10, lat)
	}
	b := s.Burn(9)[0]
	if b.Good != 90 || b.Total != 100 {
		t.Fatalf("latency counts = %d/%d", b.Good, b.Total)
	}
	// Error rate 0.1 against a 0.05 budget: burn 2.
	if b.BurnRate < 1.99 || b.BurnRate > 2.01 {
		t.Fatalf("latency burn = %v", b.BurnRate)
	}
	// A sample exactly at the threshold is good.
	s2 := mustSLO(t, obs.Objective{Name: "p95", Kind: obs.ObjectiveLatency, ThresholdSeconds: 0.5, Target: 0.95}, 60)
	s2.RecordLatency(0, 0.5)
	if b := s2.Burn(0)[0]; b.Good != 1 {
		t.Fatalf("threshold-equal sample = %+v, want good", b)
	}
}

func TestSLOIdleDecayAndLateSamples(t *testing.T) {
	s := mustSLO(t, obs.Objective{Name: "a", Kind: obs.ObjectiveAvailability, Target: 0.5}, 5)
	s.Record(0, false)
	// A jump far past the ring zeroes everything.
	s.Record(1000, true)
	b := s.Burn(1000)[0]
	if b.Total != 1 || b.Good != 1 || !b.OK {
		t.Fatalf("after idle jump = %+v", b)
	}
	// A sample older than the ring is dropped, not misfiled.
	s.Record(100, false)
	if b := s.Burn(1000)[0]; b.Total != 1 {
		t.Fatalf("stale sample counted: %+v", b)
	}
	// All-time totals still count everything that was accepted.
	if good, total := s.Totals(); good != 1 || total != 2 {
		t.Fatalf("totals = %d/%d", good, total)
	}
}

func TestSLORecordAllocationFree(t *testing.T) {
	s := mustSLO(t, obs.Objective{Name: "a", Kind: obs.ObjectiveAvailability, Target: 0.99}, 300, 3600)
	tm := 0.0
	if n := testing.AllocsPerRun(500, func() {
		tm += 0.25
		s.Record(tm, true)
	}); n != 0 {
		t.Fatalf("Record allocates %v times per op, want 0", n)
	}
}
