package obs_test

// Span-stream conformance: the PR-3 contract says virtual-clock live
// runs reproduce the discrete-event engine's schedule bit for bit.
// Spans are pure functions of those records, so the contract must
// extend to traces with no new mechanism — for every scheduler in the
// registry and every platform class, the serialized span stream of a
// live run equals the engine's byte for byte, and re-running the live
// runtime replays the identical stream.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// runVirtual executes tasks on the live runtime under the virtual
// clock, submitted at their exact release times.
func runVirtual(t *testing.T, pl core.Platform, s sim.Scheduler, tasks []core.Task) core.Schedule {
	t.Helper()
	res, err := live.Run(live.Config{
		Platform:  pl,
		Scheduler: s,
		World:     live.NewVirtual(),
		Sources: []func(*live.Source){func(src *live.Source) {
			for _, task := range tasks {
				if task.Release > src.Now() {
					src.SleepUntil(task.Release)
				}
				src.Submit(live.JobSpec{CommScale: task.CommScale, CompScale: task.CompScale})
			}
			src.Drain()
		}},
	})
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	return res.Schedule
}

// spanBytes serializes a span stream: the byte-identity witness.
func spanBytes(t *testing.T, recs []core.Record) []byte {
	t.Helper()
	b, err := json.Marshal(obs.FromRecords(recs))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSpanStreamConformance(t *testing.T) {
	platforms := map[string]core.Platform{
		"uniform":      core.NewPlatform([]float64{1, 1, 1}, []float64{3, 3, 3}),
		"comm-hetero":  core.NewPlatform([]float64{1, 2, 4}, []float64{3, 3, 3}),
		"comp-hetero":  core.NewPlatform([]float64{1, 1, 1}, []float64{2, 3, 6}),
		"fully-hetero": core.NewPlatform([]float64{1, 2, 3}, []float64{2, 4, 5}),
	}
	tasks := core.ReleasesAt(0, 0, 1, 1, 2, 3, 3, 5, 8, 8, 13, 13)
	for plName, pl := range platforms {
		for _, name := range sched.ExtendedNames() {
			label := fmt.Sprintf("%s/%s", plName, name)
			des, err := sim.Simulate(pl, sched.New(name), tasks)
			if err != nil {
				t.Fatalf("%s engine: %v", label, err)
			}
			want := spanBytes(t, des.Records)
			got := spanBytes(t, runVirtual(t, pl, sched.New(name), tasks).Records)
			if !bytes.Equal(want, got) {
				t.Fatalf("%s: live span stream differs from engine:\n engine %s\n live   %s",
					label, want, got)
			}
			// Replay determinism: a second live run yields the same bytes.
			if again := spanBytes(t, runVirtual(t, pl, sched.New(name), tasks).Records); !bytes.Equal(want, again) {
				t.Fatalf("%s: live span stream not reproducible", label)
			}
		}
	}
}

// TestSpanStagesTileLifecycle pins the structural invariant the
// breakdown relies on: stages are contiguous, non-negative, and tile
// [Start, End] exactly for every job of a real schedule.
func TestSpanStagesTileLifecycle(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 2, 3}, []float64{2, 4, 5})
	des, err := sim.Simulate(pl, sched.New("SO-LS"), core.Bag(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range obs.FromRecords(des.Records) {
		if len(sp.Stages) != 4 {
			t.Fatalf("job %d has %d stages", sp.Job, len(sp.Stages))
		}
		if sp.Stages[0].Start != sp.Start || sp.Stages[3].End != sp.End {
			t.Fatalf("job %d stages do not span the root interval: %+v", sp.Job, sp)
		}
		for i, st := range sp.Stages {
			if st.Duration() < 0 {
				t.Fatalf("job %d stage %s negative: %+v", sp.Job, st.Name, st)
			}
			if i > 0 && sp.Stages[i-1].End != st.Start {
				t.Fatalf("job %d stages not contiguous at %s", sp.Job, st.Name)
			}
		}
	}
}
