package obs

import (
	"math"
	"testing"
)

func TestAuditRingNilIsOff(t *testing.T) {
	var a *AuditRing
	a.Record(Decision{Kind: DecisionPlace})
	if a.Len() != 0 || a.Dropped() != 0 || a.Recent(0) != nil {
		t.Fatal("nil ring must be inert")
	}
	if NewAuditRing(0, 4) != nil {
		t.Fatal("capacity 0 must build a nil (off) ring")
	}
}

func TestAuditRingRecordRecent(t *testing.T) {
	a := NewAuditRing(4, 2)
	for i := 0; i < 3; i++ {
		a.Record(Decision{Kind: DecisionPlace, Job: i, From: -1, To: i % 2, Scores: []float64{float64(i), 9}})
	}
	if a.Len() != 3 || a.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", a.Len(), a.Dropped())
	}
	got := a.Recent(0)
	if len(got) != 3 {
		t.Fatalf("recent = %d entries", len(got))
	}
	// Newest first, sequence numbers assigned 1..3.
	if got[0].Job != 2 || got[0].Seq != 3 || got[2].Job != 0 || got[2].Seq != 1 {
		t.Fatalf("order wrong: %+v", got)
	}
	if got[0].Scores[0] != 2 || got[0].Scores[1] != 9 {
		t.Fatalf("scores = %v", got[0].Scores)
	}
}

func TestAuditRingWrapAndDrop(t *testing.T) {
	a := NewAuditRing(3, 1)
	for i := 0; i < 10; i++ {
		a.Record(Decision{Kind: DecisionSteal, From: i, To: 0, Planned: 1})
	}
	if a.Len() != 3 {
		t.Fatalf("len = %d, want 3", a.Len())
	}
	if a.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", a.Dropped())
	}
	got := a.Recent(2)
	if len(got) != 2 || got[0].From != 9 || got[1].From != 8 {
		t.Fatalf("recent = %+v", got)
	}
	if got[0].Seq != 10 {
		t.Fatalf("seq = %d, want 10", got[0].Seq)
	}
}

// TestAuditRingRecentCopies pins that returned entries survive the ring
// wrapping over their slots.
func TestAuditRingRecentCopies(t *testing.T) {
	a := NewAuditRing(2, 1)
	a.Record(Decision{Kind: DecisionPlace, Job: 1, Scores: []float64{1}})
	got := a.Recent(1)
	for i := 0; i < 4; i++ {
		a.Record(Decision{Kind: DecisionPlace, Job: 100 + i, Scores: []float64{99}})
	}
	if got[0].Job != 1 || got[0].Scores[0] != 1 {
		t.Fatalf("snapshot mutated by later records: %+v", got[0])
	}
}

func TestAuditRingScoreTruncation(t *testing.T) {
	a := NewAuditRing(2, 2)
	a.Record(Decision{Kind: DecisionPlace, Scores: []float64{1, 2, 3, 4}})
	got := a.Recent(1)
	if len(got[0].Scores) != 2 || got[0].Scores[0] != 1 || got[0].Scores[1] != 2 {
		t.Fatalf("scores = %v, want truncated to stride", got[0].Scores)
	}
	// Zero-stride ring drops scores entirely.
	b := NewAuditRing(2, 0)
	b.Record(Decision{Kind: DecisionPlace, Scores: []float64{math.Pi}})
	if got := b.Recent(1); got[0].Scores != nil {
		t.Fatalf("zero-stride ring kept scores: %v", got[0].Scores)
	}
}
