package obs

import (
	"fmt"
	"sync"
)

// SLO engine: configurable latency/availability objectives with
// multi-window burn-rate computation, the Google-SRE-style alerting
// arithmetic. A burn rate is how fast the error budget is being spent:
// with target T, the budget is 1−T, and burn = errorRate / (1−T) — 1.0
// means the budget is being consumed exactly at the rate that exhausts
// it over the window; above 1 the objective is being missed. Computing
// the same rate over several windows (a short one for fast detection, a
// long one to ride out blips) is what makes burn-rate alerts both fast
// and low-noise.
//
// Like everything in this package, the engine reads no clock: every
// Record and Burn call carries its own time (seconds in any monotone
// domain — schedd passes wall seconds since start). Recording is
// allocation-free: samples land in a preallocated ring of one-second
// buckets sized to the longest window.

// Objective kinds.
const (
	// ObjectiveLatency counts a served job good when its latency is at
	// most ThresholdSeconds.
	ObjectiveLatency = "latency"
	// ObjectiveAvailability counts a request good when it did not fail
	// (schedd: HTTP status < 500).
	ObjectiveAvailability = "availability"
)

// Objective is one service-level objective: a good-event criterion plus
// the target fraction of events that must be good.
type Objective struct {
	// Name labels the objective on /metrics and /slo; required, unique
	// per server.
	Name string `json:"name"`
	// Kind is ObjectiveLatency or ObjectiveAvailability.
	Kind string `json:"kind"`
	// ThresholdSeconds is the latency cutoff for ObjectiveLatency
	// (ignored for availability objectives).
	ThresholdSeconds float64 `json:"threshold_seconds,omitempty"`
	// Target is the objective's good fraction, strictly between 0 and 1
	// (e.g. 0.99 = "99% of jobs complete within the threshold").
	Target float64 `json:"target"`
}

// Validate checks the objective's shape.
func (o Objective) Validate() error {
	if o.Name == "" {
		return fmt.Errorf("obs: objective needs a name")
	}
	switch o.Kind {
	case ObjectiveLatency:
		if o.ThresholdSeconds <= 0 {
			return fmt.Errorf("obs: latency objective %q needs a positive threshold", o.Name)
		}
	case ObjectiveAvailability:
	default:
		return fmt.Errorf("obs: objective %q has unknown kind %q", o.Name, o.Kind)
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("obs: objective %q target %v outside (0, 1)", o.Name, o.Target)
	}
	return nil
}

// BurnWindow is one window's burn-rate report.
type BurnWindow struct {
	WindowSeconds float64 `json:"window_seconds"`
	Good          uint64  `json:"good"`
	Total         uint64  `json:"total"`
	// ErrorRate is 1 − good/total (0 with no events).
	ErrorRate float64 `json:"error_rate"`
	// BurnRate is ErrorRate / (1 − Target): 1.0 spends the error budget
	// exactly over the window, above 1 the objective is being missed.
	BurnRate float64 `json:"burn_rate"`
	// OK is BurnRate ≤ 1.
	OK bool `json:"ok"`
}

// SLO tracks one objective over a ring of one-second buckets.
type SLO struct {
	obj     Objective
	windows []float64 // ascending, seconds

	mu    sync.Mutex
	good  []uint64 // per-second buckets, len = max window
	bad   []uint64
	head  int64 // current second (floor of the latest time seen); -1 before any
	tgood uint64
	tbad  uint64
}

// NewSLO builds a monitor for the objective over the given windows
// (seconds; defaults to 300 and 3600 — 5 minutes and 1 hour). Windows
// must be positive; they are sorted ascending and the bucket ring is
// sized to the longest.
func NewSLO(obj Objective, windows ...float64) (*SLO, error) {
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	if len(windows) == 0 {
		windows = []float64{300, 3600}
	}
	ws := append([]float64(nil), windows...)
	for i, w := range ws {
		if w <= 0 {
			return nil, fmt.Errorf("obs: objective %q window %d is %v, want positive", obj.Name, i, w)
		}
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] < ws[i-1] {
			ws[i-1], ws[i] = ws[i], ws[i-1]
		}
	}
	size := int(ws[len(ws)-1])
	if size < 1 {
		size = 1
	}
	return &SLO{
		obj:     obj,
		windows: ws,
		good:    make([]uint64, size),
		bad:     make([]uint64, size),
		head:    -1,
	}, nil
}

// Objective returns the monitored objective.
func (s *SLO) Objective() Objective { return s.obj }

// Windows returns the configured windows in seconds, ascending. The
// slice is shared; treat it as read-only.
func (s *SLO) Windows() []float64 { return s.windows }

// Record counts one event at time t (seconds, caller's monotone
// domain). Allocation-free. Events timestamped before the retained ring
// are dropped; events within it land in their own second's bucket.
func (s *SLO) Record(t float64, good bool) {
	sec := int64(t)
	s.mu.Lock()
	s.advance(sec)
	if sec <= s.head-int64(len(s.good)) {
		s.mu.Unlock()
		return // older than the ring retains
	}
	i := ((sec % int64(len(s.good))) + int64(len(s.good))) % int64(len(s.good))
	if good {
		s.good[i]++
		s.tgood++
	} else {
		s.bad[i]++
		s.tbad++
	}
	s.mu.Unlock()
}

// RecordLatency records one latency sample against a latency objective:
// good iff the sample is within the threshold.
func (s *SLO) RecordLatency(t, latencySeconds float64) {
	s.Record(t, latencySeconds <= s.obj.ThresholdSeconds)
}

// advance moves the ring head to sec, zeroing buckets that fall out of
// every window. Caller holds s.mu.
func (s *SLO) advance(sec int64) {
	if s.head < 0 {
		s.head = sec
		return
	}
	if sec <= s.head {
		return
	}
	n := int64(len(s.good))
	if sec-s.head >= n {
		for i := range s.good {
			s.good[i], s.bad[i] = 0, 0
		}
		s.head = sec
		return
	}
	for s.head < sec {
		s.head++
		i := ((s.head % n) + n) % n
		s.good[i], s.bad[i] = 0, 0
	}
}

// Burn reports every window's burn rate as of time t.
func (s *SLO) Burn(t float64) []BurnWindow {
	out := make([]BurnWindow, len(s.windows))
	s.mu.Lock()
	s.advance(int64(t))
	for i, w := range s.windows {
		out[i] = s.burnLocked(w)
	}
	s.mu.Unlock()
	return out
}

// BurnRate returns one window's burn rate as of time t — the /metrics
// gauge sampler.
func (s *SLO) BurnRate(t, window float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advance(int64(t))
	return s.burnLocked(window).BurnRate
}

// Healthy reports whether every window's burn rate is ≤ 1 as of t.
func (s *SLO) Healthy(t float64) bool {
	for _, b := range s.Burn(t) {
		if !b.OK {
			return false
		}
	}
	return true
}

// Totals returns the all-time good and total event counts.
func (s *SLO) Totals() (good, total uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tgood, s.tgood + s.tbad
}

// burnLocked sums the newest min(window, ring) buckets. Caller holds
// s.mu with the ring advanced to the query time.
func (s *SLO) burnLocked(window float64) BurnWindow {
	bw := BurnWindow{WindowSeconds: window, OK: true}
	n := int64(len(s.good))
	span := int64(window)
	if span > n {
		span = n
	}
	if span < 1 {
		span = 1
	}
	if s.head >= 0 {
		for k := int64(0); k < span; k++ {
			i := (((s.head - k) % n) + n) % n
			bw.Good += s.good[i]
			bw.Total += s.good[i] + s.bad[i]
		}
	}
	if bw.Total > 0 {
		bw.ErrorRate = 1 - float64(bw.Good)/float64(bw.Total)
		bw.BurnRate = bw.ErrorRate / (1 - s.obj.Target)
		bw.OK = bw.BurnRate <= 1
	}
	return bw
}
