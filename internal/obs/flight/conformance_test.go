package flight_test

// Flight-recorder conformance: under the virtual clock a live run is
// bit-identical to the discrete-event engine (the PR-3 contract), and
// the recorder reads no clock of its own, so the recording a virtual
// run journals must be byte-identical across repeated runs — and across
// GOMAXPROCS settings, since the virtual substrate is cooperative.
// That makes the raw recording bytes a differential-testing surface
// for every scheduler × platform class, which this suite pins. The
// journaled span frames are additionally cross-checked against the
// engine's schedule records, closing the loop between the binary
// journal and the simulation ground truth.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs/flight"
	"repro/internal/sched"
	"repro/internal/sim"
)

// recordVirtual runs tasks on the virtual-clock live runtime with a
// recorder journaling every event and completed span, and returns the
// recording snapshot plus the run's schedule.
func recordVirtual(t *testing.T, cfg flight.Config, pl core.Platform, name string, tasks []core.Task) ([]byte, core.Schedule) {
	t.Helper()
	rec, err := flight.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracker := live.NewTracker()
	spanObs := rec.SpanObserver(0, tracker)
	res, err := live.Run(live.Config{
		Platform:  pl,
		Scheduler: sched.New(name),
		World:     live.NewVirtual(),
		Observer: func(ev live.Event) {
			tracker.Observe(ev)
			spanObs(ev)
		},
		Sources: []func(*live.Source){func(src *live.Source) {
			for _, task := range tasks {
				if task.Release > src.Now() {
					src.SleepUntil(task.Release)
				}
				src.Submit(live.JobSpec{CommScale: task.CommScale, CompScale: task.CompScale})
			}
			src.Drain()
		}},
	})
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	return rec.Snapshot(), res.Schedule
}

func TestRecordingConformance(t *testing.T) {
	platforms := map[string]core.Platform{
		"uniform":      core.NewPlatform([]float64{1, 1, 1}, []float64{3, 3, 3}),
		"comm-hetero":  core.NewPlatform([]float64{1, 2, 4}, []float64{3, 3, 3}),
		"comp-hetero":  core.NewPlatform([]float64{1, 1, 1}, []float64{2, 3, 6}),
		"fully-hetero": core.NewPlatform([]float64{1, 2, 3}, []float64{2, 4, 5}),
	}
	tasks := core.ReleasesAt(0, 0, 1, 1, 2, 3, 3, 5, 8, 8, 13, 13)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for plName, pl := range platforms {
		for _, name := range sched.ExtendedNames() {
			label := fmt.Sprintf("%s/%s", plName, name)

			snap, schedule := recordVirtual(t, flight.Config{}, pl, name, tasks)

			// Byte-identity across repeated runs.
			again, _ := recordVirtual(t, flight.Config{}, pl, name, tasks)
			if !bytes.Equal(snap, again) {
				t.Fatalf("%s: recording not reproducible across runs", label)
			}

			// Byte-identity across GOMAXPROCS: the cooperative virtual
			// substrate must journal the same bytes single-threaded.
			runtime.GOMAXPROCS(1)
			serial, _ := recordVirtual(t, flight.Config{}, pl, name, tasks)
			runtime.GOMAXPROCS(prev)
			if !bytes.Equal(snap, serial) {
				t.Fatalf("%s: recording differs under GOMAXPROCS=1", label)
			}

			// The journaled span frames equal the engine's schedule records.
			des, err := sim.Simulate(pl, sched.New(name), tasks)
			if err != nil {
				t.Fatalf("%s engine: %v", label, err)
			}
			parsed, err := flight.Parse(snap)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			spans := parsed.Spans()
			if len(spans) != len(des.Records) {
				t.Fatalf("%s: %d span frames, engine has %d records", label, len(spans), len(des.Records))
			}
			byTask := map[core.TaskID]core.Record{}
			for _, r := range des.Records {
				byTask[r.Task] = r
			}
			for _, sp := range spans {
				want, ok := byTask[sp.Record.Task]
				if !ok {
					t.Fatalf("%s: span frame for unknown task %d", label, sp.Record.Task)
				}
				if sp.Record != want {
					t.Fatalf("%s: span frame %+v differs from engine record %+v", label, sp.Record, want)
				}
			}
			// And the live schedule itself matches the engine (the PR-3
			// contract this suite builds on).
			if len(schedule.Records) != len(des.Records) {
				t.Fatalf("%s: live schedule has %d records, engine %d", label, len(schedule.Records), len(des.Records))
			}
		}
	}
}

// TestRecordingConformanceUnderRotation re-pins byte-identity with
// segments small enough that the run rotates and drops history: the
// ring's rotation and drop decisions are pure functions of the byte
// stream, so the retained suffix must also be identical across runs.
func TestRecordingConformanceUnderRotation(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 2, 3}, []float64{2, 4, 5})
	tasks := core.ReleasesAt(0, 0, 1, 1, 2, 3, 3, 5, 8, 8, 13, 13)
	cfg := flight.Config{SegmentBytes: 1024, MaxSegments: 2}
	for _, name := range sched.ExtendedNames() {
		snap, _ := recordVirtual(t, cfg, pl, name, tasks)
		again, _ := recordVirtual(t, cfg, pl, name, tasks)
		if !bytes.Equal(snap, again) {
			t.Fatalf("%s: rotated recording not reproducible", name)
		}
		parsed, err := flight.Parse(snap)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(parsed.Frames) == 0 {
			t.Fatalf("%s: empty rotated recording", name)
		}
	}
}
