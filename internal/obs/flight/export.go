package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/textplot"
)

// Exporters render a parsed recording into human- and tool-facing
// forms. All three are deterministic: same recording, same bytes —
// they sort only by values already in the frames and never read a
// clock, so the virtual-clock byte-identity contract extends through
// export.

// traceEvent is one Chrome trace-event object. The subset used here —
// ph "X" complete events with microsecond timestamps plus ph "M"
// process/thread name metadata — loads in Perfetto and chrome://tracing.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WritePerfetto renders the recording's span frames as Chrome
// trace-event JSON: one process per shard, whose thread 0 is the
// master's port (queue and transfer stages — port occupancy is the
// paper's structural bottleneck, so it gets its own track) and whose
// thread j+1 is slave j (slave-wait and service stages). Model seconds
// map to trace microseconds.
func WritePerfetto(w io.Writer, rec *Recording) error {
	spans := rec.Spans()
	// Track metadata first, shards then slaves in ascending order, so
	// the track layout is stable however the spans interleave.
	shardSlaves := map[int]int{} // shard → max slave index seen
	for _, sp := range spans {
		if cur, ok := shardSlaves[sp.Shard]; !ok || sp.Record.Slave > cur {
			shardSlaves[sp.Shard] = sp.Record.Slave
		}
	}
	shards := make([]int, 0, len(shardSlaves))
	for s := range shardSlaves {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	var events []traceEvent
	for _, s := range shards {
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: s,
			Args: map[string]any{"name": fmt.Sprintf("shard %d", s)},
		})
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: s, Tid: 0,
			Args: map[string]any{"name": "port"},
		})
		for j := 0; j <= shardSlaves[s]; j++ {
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: s, Tid: j + 1,
				Args: map[string]any{"name": fmt.Sprintf("slave %d", j)},
			})
		}
	}
	for _, sp := range spans {
		span := obs.FromRecord(sp.Record)
		for _, st := range span.Stages {
			tid := 0
			if st.Name == obs.StageSlaveWait || st.Name == obs.StageService {
				tid = sp.Record.Slave + 1
			}
			dur := (st.End - st.Start) * 1e6
			events = append(events, traceEvent{
				Name: st.Name, Cat: "lifecycle", Ph: "X",
				Ts: st.Start * 1e6, Dur: &dur,
				Pid: sp.Shard, Tid: tid,
				Args: map[string]any{"job": span.Job},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteGantt renders one textplot.Gantt timeline per shard from the
// recording's span frames, shards in ascending order. Each shard's
// records are rebased to its earliest release so a daemon's idle time
// before the first job does not dominate the plot.
func WriteGantt(w io.Writer, rec *Recording, width int) error {
	byShard := map[int][]core.Record{}
	for _, sp := range rec.Spans() {
		byShard[sp.Shard] = append(byShard[sp.Shard], sp.Record)
	}
	if len(byShard) == 0 {
		_, err := io.WriteString(w, "(no completed jobs in recording)\n")
		return err
	}
	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for i, s := range shards {
		recs := byShard[s]
		m := 0
		base := recs[0].Release
		for _, r := range recs {
			if r.Slave+1 > m {
				m = r.Slave + 1
			}
			if r.Release < base {
				base = r.Release
			}
		}
		if base != 0 {
			for j := range recs {
				recs[j].Release -= base
				recs[j].SendStart -= base
				recs[j].Arrive -= base
				recs[j].Start -= base
				recs[j].Complete -= base
			}
		}
		ones := make([]float64, m)
		for j := range ones {
			ones[j] = 1
		}
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "shard %d (%d jobs)\n", s, len(recs)); err != nil {
			return err
		}
		g := textplot.Gantt(core.Schedule{
			Instance: core.Instance{Platform: core.NewPlatform(ones, ones)},
			Records:  recs,
		}, width)
		if _, err := io.WriteString(w, g); err != nil {
			return err
		}
	}
	return nil
}

// jsonlFrame is the JSONL exporter's per-frame shape: exactly one of
// the typed fields is set, matching the frame type.
type jsonlFrame struct {
	Type     string          `json:"type"`
	Segment  *uint64         `json:"segment,omitempty"`
	Event    *Event          `json:"event,omitempty"`
	Span     *Span           `json:"span,omitempty"`
	Decision *obs.Decision   `json:"decision,omitempty"`
	Blob     json.RawMessage `json:"blob,omitempty"`
}

// WriteJSONL renders every frame as one JSON object per line, in
// journal order — the grep-friendly export.
func WriteJSONL(w io.Writer, rec *Recording) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	segs, events, spans, decisions := 0, 0, 0, 0
	allSegs := rec.Segments()
	allEvents := rec.Events()
	allSpans := rec.Spans()
	allDecisions := rec.Decisions()
	for _, f := range rec.Frames {
		var line jsonlFrame
		switch f.Type {
		case FrameSegment:
			if segs >= len(allSegs) {
				continue
			}
			line = jsonlFrame{Type: "segment", Segment: &allSegs[segs]}
			segs++
		case FrameEvent:
			if events >= len(allEvents) {
				continue
			}
			line = jsonlFrame{Type: "event", Event: &allEvents[events]}
			events++
		case FrameSpan:
			if spans >= len(allSpans) {
				continue
			}
			line = jsonlFrame{Type: "span", Span: &allSpans[spans]}
			spans++
		case FrameDecision:
			if decisions >= len(allDecisions) {
				continue
			}
			line = jsonlFrame{Type: "decision", Decision: &allDecisions[decisions]}
			decisions++
		case FrameMeta:
			line = jsonlFrame{Type: "meta", Blob: blobJSON(f.Payload)}
		case FrameMetrics:
			line = jsonlFrame{Type: "metrics", Blob: blobJSON(f.Payload)}
		default:
			continue
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// blobJSON passes a blob through as raw JSON when it is valid JSON, and
// quotes it as a JSON string otherwise.
func blobJSON(b []byte) json.RawMessage {
	if json.Valid(b) {
		return json.RawMessage(b)
	}
	q, _ := json.Marshal(string(b))
	return q
}
