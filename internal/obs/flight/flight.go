// Package flight is the always-on, bounded flight recorder: it journals
// the serving stack's existing telemetry streams — runtime lifecycle
// events, completed-job span records, decision-audit entries and
// periodic metric snapshots — as length-prefixed binary frames in
// fixed-size segments, so "what happened in the 30 seconds before the
// backlog spiked?" has an answer after the fact, not just at scrape
// time.
//
// The design inherits the repository's two standing disciplines:
//
//   - Zero allocations on the hot append path. Every segment buffer is
//     preallocated; an append encodes its frame directly into the active
//     buffer under a short mutex. Sealing a full segment recycles the
//     oldest retained buffer instead of allocating a new one, so even
//     rotation is allocation-free at steady state (BenchmarkFlightAppend
//     pins this at 0 allocs/op). Only optional disk persistence and
//     oversized blob frames touch the allocator.
//
//   - No clock, no randomness. The recorder never reads time: every
//     timestamp in a frame comes from the caller (the runtime's
//     pluggable clock, the audit's caller-supplied wall time). Under the
//     virtual clock a live run therefore journals a byte-identical
//     recording on every execution — the conformance suite extends the
//     PR-3/PR-7 bit-for-bit contract to flight-recorder output.
//
// Wire format (all integers little-endian):
//
//	frame    := type:u8 len:u32 payload[len]
//	segment  := segmentFrame frame*          (each segment starts with its header frame)
//	recording:= segment*                     (ascending segment sequence numbers)
//
// A recording is self-delimiting: Parse walks frames from any segment
// boundary, so a snapshot whose oldest segments were dropped (the ring
// is bounded) is still readable — the FrameSegment sequence numbers make
// the truncation visible.
package flight

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
)

// Frame types.
const (
	// FrameSegment opens every segment: payload is the segment's u64
	// sequence number (0-based, monotonically increasing per recorder).
	FrameSegment byte = 0x01
	// FrameMeta is a caller-supplied blob (conventionally JSON describing
	// the recording: policy, platform, clock scale). The recorder never
	// generates meta content itself, which is what keeps recorder-emitted
	// bytes deterministic.
	FrameMeta byte = 0x02
	// FrameEvent is one runtime lifecycle event on one shard.
	FrameEvent byte = 0x03
	// FrameSpan is one completed job's schedule record on one shard — the
	// four lifecycle stages in timestamp form.
	FrameSpan byte = 0x04
	// FrameDecision is one decision-audit entry (placement, steal plan or
	// executed migration).
	FrameDecision byte = 0x05
	// FrameMetrics is a periodic metrics snapshot blob (the registry's
	// /debug/vars JSON).
	FrameMetrics byte = 0x06
)

// Fixed payload sizes.
const (
	frameHeaderLen    = 5  // type:u8 len:u32
	segmentPayloadLen = 8  // seq:u64
	eventPayloadLen   = 21 // shard:u32 kind:u8 task:i32 slave:i32 t:f64
	spanPayloadLen    = 52 // shard:u32 job:i32 slave:i32 release,sendstart,arrive,start,complete:f64
)

// Decision kind wire codes (obs.Decision.Kind strings).
const (
	kindCodeOther   byte = 0
	kindCodePlace   byte = 1
	kindCodeSteal   byte = 2
	kindCodeMigrate byte = 3
)

// Config describes one recorder.
type Config struct {
	// Dir, when non-empty, persists sealed segments as seg-NNNNNNNN.flight
	// files (pre-existing segment files are removed at construction — a
	// recording directory holds exactly one run). Empty keeps the
	// recording in memory only; Snapshot still serves it.
	Dir string
	// SegmentBytes is the rotation threshold: a frame that would push the
	// active segment past this many bytes seals it first. 0 means 1 MiB;
	// the minimum is 1024.
	SegmentBytes int
	// MaxSegments bounds how many sealed segments are retained (in memory
	// and, with Dir set, on disk); the oldest is dropped — and counted in
	// Stats.SegmentsDropped — when a new seal exceeds the bound. 0 means
	// 8; the minimum is 1.
	MaxSegments int
}

// sealedSeg is one full, immutable segment retained in the ring.
type sealedSeg struct {
	seq uint64
	buf []byte
}

// Recorder is the journaling engine. All methods are safe for
// concurrent use; the append methods are allocation-free (the CI
// benchmark gate pins this).
type Recorder struct {
	mu       sync.Mutex
	dir      string
	segBytes int
	maxSegs  int

	active []byte      // current segment, starts with its FrameSegment header
	seq    uint64      // active segment's sequence number
	ring   []sealedSeg // retained sealed segments, oldest first
	free   [][]byte    // recycled segment buffers (len 0, cap segBytes)

	frames      uint64
	bytes       uint64
	segsDropped uint64
	closed      bool
	diskErr     error
}

// New builds a recorder (creating Config.Dir if needed) and opens its
// first segment.
func New(cfg Config) (*Recorder, error) {
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 1 << 20
	}
	if cfg.SegmentBytes < 1024 {
		cfg.SegmentBytes = 1024
	}
	if cfg.MaxSegments == 0 {
		cfg.MaxSegments = 8
	}
	if cfg.MaxSegments < 1 {
		cfg.MaxSegments = 1
	}
	r := &Recorder{
		dir:      cfg.Dir,
		segBytes: cfg.SegmentBytes,
		maxSegs:  cfg.MaxSegments,
		ring:     make([]sealedSeg, 0, cfg.MaxSegments),
		free:     make([][]byte, 0, 1),
	}
	if r.dir != "" {
		if err := os.MkdirAll(r.dir, 0o755); err != nil {
			return nil, fmt.Errorf("flight: %w", err)
		}
		old, err := filepath.Glob(filepath.Join(r.dir, "seg-*.flight"))
		if err != nil {
			return nil, fmt.Errorf("flight: %w", err)
		}
		for _, f := range old {
			if err := os.Remove(f); err != nil {
				return nil, fmt.Errorf("flight: %w", err)
			}
		}
	}
	r.startSegment()
	return r, nil
}

// startSegment opens the active segment for r.seq, reusing a recycled
// buffer when one is available. Caller holds r.mu (or is New).
func (r *Recorder) startSegment() {
	var buf []byte
	if n := len(r.free); n > 0 {
		buf = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		buf = make([]byte, 0, r.segBytes)
	}
	buf = append(buf, FrameSegment)
	buf = putU32(buf, segmentPayloadLen)
	buf = putU64(buf, r.seq)
	r.active = buf
}

// seal closes the active segment into the ring (and onto disk, when
// persisting), dropping — and recycling — the oldest retained segment
// past MaxSegments. Caller holds r.mu.
func (r *Recorder) seal() {
	sealed := sealedSeg{seq: r.seq, buf: r.active}
	if r.dir != "" {
		if err := os.WriteFile(r.segPath(sealed.seq), sealed.buf, 0o644); err != nil {
			r.diskErr = err
		}
	}
	r.ring = append(r.ring, sealed)
	if len(r.ring) > r.maxSegs {
		old := r.ring[0]
		copy(r.ring, r.ring[1:])
		r.ring = r.ring[:len(r.ring)-1]
		r.segsDropped++
		if r.dir != "" {
			if err := os.Remove(r.segPath(old.seq)); err != nil {
				r.diskErr = err
			}
		}
		r.free = append(r.free, old.buf[:0])
	}
	r.seq++
	r.startSegment()
}

func (r *Recorder) segPath(seq uint64) string {
	return filepath.Join(r.dir, fmt.Sprintf("seg-%08d.flight", seq))
}

// begin reserves one frame of payload size n: it seals the active
// segment when the frame would not fit, writes the frame header, and
// returns the buffer to append the payload to. finish must follow.
// Caller holds r.mu.
func (r *Recorder) begin(typ byte, n int) []byte {
	need := frameHeaderLen + n
	if len(r.active)+need > r.segBytes && len(r.active) > frameHeaderLen+segmentPayloadLen {
		r.seal()
	}
	if len(r.active)+need > cap(r.active) {
		// A single frame larger than a whole segment (an oversized blob):
		// grow the active buffer. Cold path; the fixed-size frames the hot
		// path appends always fit a fresh segment.
		grown := make([]byte, len(r.active), len(r.active)+need)
		copy(grown, r.active)
		r.active = grown
	}
	b := append(r.active, typ)
	return putU32(b, uint32(n))
}

// finish commits the frame begun by begin. Caller holds r.mu.
func (r *Recorder) finish(b []byte) {
	r.bytes += uint64(len(b) - len(r.active))
	r.active = b
	r.frames++
}

// AppendEvent journals one runtime lifecycle event. Allocation-free.
func (r *Recorder) AppendEvent(shard int, ev live.Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	b := r.begin(FrameEvent, eventPayloadLen)
	b = putU32(b, uint32(int32(shard)))
	b = append(b, byte(ev.Kind))
	b = putU32(b, uint32(int32(ev.Task)))
	b = putU32(b, uint32(int32(ev.Slave)))
	b = putU64(b, math.Float64bits(ev.T))
	r.finish(b)
}

// AppendSpan journals one completed job's schedule record (its span in
// timestamp form). Allocation-free.
func (r *Recorder) AppendSpan(shard int, rec core.Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	b := r.begin(FrameSpan, spanPayloadLen)
	b = putU32(b, uint32(int32(shard)))
	b = putU32(b, uint32(int32(rec.Task)))
	b = putU32(b, uint32(int32(rec.Slave)))
	b = putU64(b, math.Float64bits(rec.Release))
	b = putU64(b, math.Float64bits(rec.SendStart))
	b = putU64(b, math.Float64bits(rec.Arrive))
	b = putU64(b, math.Float64bits(rec.Start))
	b = putU64(b, math.Float64bits(rec.Complete))
	r.finish(b)
}

// AppendDecision journals one decision-audit entry. The policy name is
// truncated to 255 bytes; scores are journaled in full. Allocation-free
// (the scores are copied byte-wise into the segment, never boxed).
func (r *Recorder) AppendDecision(d obs.Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	policy := d.Policy
	if len(policy) > 255 {
		policy = policy[:255]
	}
	n := 2 + len(policy) + 8 + 8 + 5*4 + 8 + 2 + 8*len(d.Scores)
	b := r.begin(FrameDecision, n)
	b = append(b, kindCode(d.Kind), byte(len(policy)))
	b = append(b, policy...)
	b = putU64(b, d.Seq)
	b = putU64(b, uint64(d.Wall))
	b = putU32(b, uint32(int32(d.Job)))
	b = putU32(b, uint32(int32(d.From)))
	b = putU32(b, uint32(int32(d.To)))
	b = putU32(b, uint32(int32(d.Planned)))
	b = putU32(b, uint32(int32(d.N)))
	b = putU64(b, math.Float64bits(d.LatencySeconds))
	b = putU16(b, uint16(len(d.Scores)))
	for _, s := range d.Scores {
		b = putU64(b, math.Float64bits(s))
	}
	r.finish(b)
}

// AppendMeta journals a caller-supplied description blob (conventionally
// JSON). Blob appends may allocate when the blob exceeds a segment.
func (r *Recorder) AppendMeta(blob []byte) { r.appendBlob(FrameMeta, blob) }

// AppendMetrics journals one metrics snapshot blob (the registry's JSON
// exposition). Called off the hot path, on the snapshot ticker.
func (r *Recorder) AppendMetrics(blob []byte) { r.appendBlob(FrameMetrics, blob) }

func (r *Recorder) appendBlob(typ byte, blob []byte) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	b := r.begin(typ, len(blob))
	b = append(b, blob...)
	r.finish(b)
}

// SpanObserver returns a live Observer hook that journals every event
// and, at each completion, the completed job's span record looked up in
// tr. It must run AFTER the tracker has applied the event (chain it
// behind tr.Observe, as cluster.Config.Observer does), or the
// completion's record will not be visible yet.
func (r *Recorder) SpanObserver(shard int, tr *live.Tracker) func(live.Event) {
	return func(ev live.Event) {
		r.AppendEvent(shard, ev)
		if ev.Kind != live.EvCompleted {
			return
		}
		if info, ok := tr.Job(ev.Task); ok && info.State == live.StateDone {
			r.AppendSpan(shard, core.Record{
				Task:      core.TaskID(info.ID),
				Slave:     info.Slave,
				Release:   info.Submitted,
				SendStart: info.SendStart,
				Arrive:    info.Arrive,
				Start:     info.Start,
				Complete:  info.Complete,
			})
		}
	}
}

// Snapshot returns the full retained recording — sealed segments oldest
// first, then the active segment — as one parseable byte stream. This is
// what GET /flight serves and what the conformance suite compares.
func (r *Recorder) Snapshot() []byte {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.active)
	for _, s := range r.ring {
		n += len(s.buf)
	}
	out := make([]byte, 0, n)
	for _, s := range r.ring {
		out = append(out, s.buf...)
	}
	return append(out, r.active...)
}

// Stats is the recorder's own accounting, surfaced in GET /stats so
// segment drops (silent truncation of history) are visible.
type Stats struct {
	// Frames and Bytes count everything appended since construction,
	// including frames whose segments have since been dropped.
	Frames uint64 `json:"frames"`
	Bytes  uint64 `json:"bytes"`
	// Segments is the number of retained segments, the active one
	// included; SegmentsDropped counts sealed segments the bounded ring
	// has discarded.
	Segments        int    `json:"segments"`
	SegmentsDropped uint64 `json:"segments_dropped"`
	// DiskError is the most recent persistence failure ("" when none):
	// the recorder keeps journaling in memory through disk errors.
	DiskError string `json:"disk_error,omitempty"`
}

// Stats returns the current accounting.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Frames:          r.frames,
		Bytes:           r.bytes,
		Segments:        len(r.ring) + 1,
		SegmentsDropped: r.segsDropped,
	}
	if r.diskErr != nil {
		st.DiskError = r.diskErr.Error()
	}
	return st
}

// Close flushes the active segment (to disk when persisting) and stops
// accepting appends. Snapshot remains valid. Returns the last disk
// error, if any.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return r.diskErr
	}
	r.closed = true
	if r.dir != "" {
		if err := os.WriteFile(r.segPath(r.seq), r.active, 0o644); err != nil {
			r.diskErr = err
		}
	}
	return r.diskErr
}

func kindCode(kind string) byte {
	switch kind {
	case obs.DecisionPlace:
		return kindCodePlace
	case obs.DecisionSteal:
		return kindCodeSteal
	case obs.DecisionMigrate:
		return kindCodeMigrate
	}
	return kindCodeOther
}

func kindName(code byte) string {
	switch code {
	case kindCodePlace:
		return obs.DecisionPlace
	case kindCodeSteal:
		return obs.DecisionSteal
	case kindCodeMigrate:
		return obs.DecisionMigrate
	}
	return "other"
}

// Little-endian append helpers: appends within the preallocated segment
// capacity, so the hot path never reslices through the allocator.

func putU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func putU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
