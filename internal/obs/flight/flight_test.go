package flight

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
)

func mustNew(t *testing.T, cfg Config) *Recorder {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	r := mustNew(t, Config{})
	ev := live.Event{T: 1.5, Kind: live.EvSent, Task: 7, Slave: 2}
	rec := core.Record{Task: 7, Slave: 2, Release: 0.5, SendStart: 1.5, Arrive: 2, Start: 2, Complete: 5.25}
	d := obs.Decision{
		Seq: 3, Wall: 1234567890, Kind: obs.DecisionPlace, Policy: "least-loaded",
		Job: 7, From: -1, To: 1, Scores: []float64{2, 1, -1},
	}
	r.AppendMeta([]byte(`{"policy":"LS"}`))
	r.AppendEvent(1, ev)
	r.AppendSpan(1, rec)
	r.AppendDecision(d)
	r.AppendMetrics([]byte(`{"up":1}`))

	parsed, err := Parse(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.Segments(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("segments = %v, want [0]", got)
	}
	events := parsed.Events()
	if len(events) != 1 || events[0].Shard != 1 || events[0].Event != ev {
		t.Fatalf("events = %+v", events)
	}
	spans := parsed.Spans()
	if len(spans) != 1 || spans[0].Shard != 1 || spans[0].Record != rec {
		t.Fatalf("spans = %+v", spans)
	}
	ds := parsed.Decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %+v", ds)
	}
	got := ds[0]
	if got.Kind != d.Kind || got.Policy != d.Policy || got.Seq != d.Seq ||
		got.Wall != d.Wall || got.Job != d.Job || got.From != d.From || got.To != d.To {
		t.Fatalf("decision = %+v, want %+v", got, d)
	}
	if len(got.Scores) != 3 || got.Scores[0] != 2 || got.Scores[2] != -1 {
		t.Fatalf("scores = %v", got.Scores)
	}
	if m := parsed.Meta(); len(m) != 1 || string(m[0]) != `{"policy":"LS"}` {
		t.Fatalf("meta = %q", m)
	}
	if m := parsed.MetricsSnapshots(); len(m) != 1 || string(m[0]) != `{"up":1}` {
		t.Fatalf("metrics = %q", m)
	}
	st := r.Stats()
	if st.Frames != 5 || st.Segments != 1 || st.SegmentsDropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRotationAndDrops(t *testing.T) {
	r := mustNew(t, Config{SegmentBytes: 1024, MaxSegments: 2})
	// Each event frame is frameHeaderLen+eventPayloadLen = 26 bytes; a
	// 1024-byte segment holds ~38 after its header. Append enough to
	// rotate several times.
	for i := 0; i < 500; i++ {
		r.AppendEvent(0, live.Event{T: float64(i), Kind: live.EvSubmitted, Task: i, Slave: -1})
	}
	st := r.Stats()
	if st.SegmentsDropped == 0 {
		t.Fatalf("expected segment drops, stats = %+v", st)
	}
	if st.Segments != 3 { // 2 sealed + active
		t.Fatalf("segments = %d, want 3", st.Segments)
	}
	parsed, err := Parse(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	segs := parsed.Segments()
	if len(segs) != 3 {
		t.Fatalf("parsed segments = %v", segs)
	}
	// Retained segments are contiguous and end at the active one.
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			t.Fatalf("segment seqs not contiguous: %v", segs)
		}
	}
	if segs[0] == 0 {
		t.Fatalf("oldest segments should have been dropped: %v", segs)
	}
	// The retained events are a suffix of the appended stream.
	events := parsed.Events()
	if len(events) == 0 {
		t.Fatal("no events retained")
	}
	last := events[len(events)-1]
	if last.Event.Task != 499 {
		t.Fatalf("newest retained event = %+v", last)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Event.Task != events[i-1].Event.Task+1 {
			t.Fatalf("retained events not contiguous at %d: %+v", i, events[i])
		}
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	// Leftover files from a previous run are cleared at construction.
	stale := filepath.Join(dir, "seg-99999999.flight")
	if err := os.WriteFile(stale, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustNew(t, Config{Dir: dir, SegmentBytes: 1024, MaxSegments: 2})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale segment not removed: %v", err)
	}
	for i := 0; i < 200; i++ {
		r.AppendEvent(0, live.Event{T: float64(i), Kind: live.EvSubmitted, Task: i, Slave: -1})
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Appends after Close are dropped, not corrupted.
	r.AppendEvent(0, live.Event{Task: 999})

	files, _ := filepath.Glob(filepath.Join(dir, "seg-*.flight"))
	// MaxSegments sealed files at most, plus the Close-flushed active one.
	if len(files) < 2 || len(files) > 3 {
		t.Fatalf("segment files = %v", files)
	}
	parsed, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	events := parsed.Events()
	if len(events) == 0 || events[len(events)-1].Event.Task != 199 {
		t.Fatalf("disk recording ends at %+v", events[len(events)-1])
	}
	// The on-disk recording equals the in-memory snapshot frame for frame.
	mem, err := Parse(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Frames) != len(parsed.Frames) {
		t.Fatalf("disk frames %d != memory frames %d", len(parsed.Frames), len(mem.Frames))
	}
}

func TestOversizedBlob(t *testing.T) {
	r := mustNew(t, Config{SegmentBytes: 1024, MaxSegments: 2})
	blob := []byte(strings.Repeat("x", 5000))
	r.AppendMeta(blob)
	r.AppendEvent(0, live.Event{T: 1, Kind: live.EvSubmitted, Task: 0, Slave: -1})
	parsed, err := Parse(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m := parsed.Meta(); len(m) != 1 || !bytes.Equal(m[0], blob) {
		t.Fatalf("oversized blob not journaled intact (%d blobs)", len(m))
	}
	if ev := parsed.Events(); len(ev) != 1 {
		t.Fatalf("event after oversized blob lost: %+v", ev)
	}
}

func TestParseRejectsTruncation(t *testing.T) {
	r := mustNew(t, Config{})
	r.AppendEvent(0, live.Event{T: 1, Kind: live.EvSent, Task: 1, Slave: 0})
	snap := r.Snapshot()
	if _, err := Parse(snap[:len(snap)-3]); err == nil {
		t.Fatal("truncated recording parsed without error")
	}
	if _, err := Parse(snap[:len(snap)-eventPayloadLen-2]); err == nil {
		t.Fatal("truncated header parsed without error")
	}
}

// TestAppendAllocationFree pins the hot-path discipline at the unit
// level; BenchmarkFlightAppend in internal/perf gates it in CI.
func TestAppendAllocationFree(t *testing.T) {
	r := mustNew(t, Config{SegmentBytes: 4096, MaxSegments: 2})
	// Warm the buffer pool: after MaxSegments+1 segments exist, sealing
	// recycles rather than allocates.
	for i := 0; i < 2000; i++ {
		r.AppendEvent(0, live.Event{T: float64(i), Kind: live.EvSubmitted, Task: i, Slave: -1})
	}
	d := obs.Decision{Kind: obs.DecisionPlace, Policy: "least-loaded", Job: 1, From: -1, To: 0, Scores: []float64{1, 2}}
	rec := core.Record{Task: 1, Slave: 0, Release: 1, SendStart: 2, Arrive: 3, Start: 3, Complete: 4}
	if n := testing.AllocsPerRun(200, func() {
		r.AppendEvent(0, live.Event{T: 1, Kind: live.EvSent, Task: 1, Slave: 0})
		r.AppendSpan(0, rec)
		r.AppendDecision(d)
	}); n != 0 {
		t.Fatalf("append path allocates %v times per op, want 0", n)
	}
}

func TestSpanObserver(t *testing.T) {
	r := mustNew(t, Config{})
	tr := live.NewTracker()
	observer := func(ev live.Event) {
		tr.Observe(ev)
		r.SpanObserver(2, tr)(ev)
	}
	events := []live.Event{
		{T: 0, Kind: live.EvSubmitted, Task: 0, Slave: -1},
		{T: 0, Kind: live.EvSent, Task: 0, Slave: 1},
		{T: 1, Kind: live.EvArrived, Task: 0, Slave: 1},
		{T: 1, Kind: live.EvStarted, Task: 0, Slave: 1},
		{T: 4, Kind: live.EvCompleted, Task: 0, Slave: 1},
	}
	for _, ev := range events {
		observer(ev)
	}
	parsed, err := Parse(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got := parsed.Events(); len(got) != len(events) {
		t.Fatalf("journaled %d events, want %d", len(got), len(events))
	}
	spans := parsed.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %+v", spans)
	}
	want := core.Record{Task: 0, Slave: 1, Release: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 4}
	if spans[0].Shard != 2 || spans[0].Record != want {
		t.Fatalf("span = %+v, want shard 2 record %+v", spans[0], want)
	}
}

func TestExporters(t *testing.T) {
	r := mustNew(t, Config{})
	r.AppendMeta([]byte(`{"policy":"LS"}`))
	recs := []core.Record{
		{Task: 0, Slave: 0, Release: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 3},
		{Task: 1, Slave: 1, Release: 0, SendStart: 1, Arrive: 3, Start: 3, Complete: 6},
	}
	for _, rec := range recs {
		r.AppendSpan(0, rec)
		r.AppendSpan(1, rec) // same shape on a second shard
	}
	r.AppendDecision(obs.Decision{Kind: obs.DecisionMigrate, From: 0, To: 1, Planned: 2, N: 1})
	parsed, err := Parse(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	var perfetto bytes.Buffer
	if err := WritePerfetto(&perfetto, parsed); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(perfetto.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur == nil || *ev.Dur < 0 || math.IsNaN(ev.Ts) {
				t.Fatalf("malformed complete event %+v", ev)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// 4 spans × 4 stages, plus per-shard process/port/slave names.
	if complete != 16 {
		t.Fatalf("complete events = %d, want 16", complete)
	}
	if meta == 0 {
		t.Fatal("no track metadata emitted")
	}
	// Deterministic: exporting the same recording twice yields the same
	// bytes.
	var again bytes.Buffer
	if err := WritePerfetto(&again, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(perfetto.Bytes(), again.Bytes()) {
		t.Fatal("perfetto export not deterministic")
	}

	var gantt bytes.Buffer
	if err := WriteGantt(&gantt, parsed, 60); err != nil {
		t.Fatal(err)
	}
	out := gantt.String()
	if !strings.Contains(out, "shard 0 (2 jobs)") || !strings.Contains(out, "shard 1 (2 jobs)") {
		t.Fatalf("gantt output missing shard sections:\n%s", out)
	}
	if !strings.Contains(out, "port") || !strings.Contains(out, "P2") {
		t.Fatalf("gantt output missing rows:\n%s", out)
	}

	var jsonl bytes.Buffer
	if err := WriteJSONL(&jsonl, parsed); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	// 1 segment + 1 meta + 4 spans + 1 decision.
	if len(lines) != 7 {
		t.Fatalf("jsonl lines = %d:\n%s", len(lines), jsonl.String())
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("jsonl line %d invalid: %s", i, line)
		}
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.AppendEvent(0, live.Event{})
	r.AppendSpan(0, core.Record{})
	r.AppendDecision(obs.Decision{})
	r.AppendMeta(nil)
	r.AppendMetrics(nil)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
