package flight

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
)

// Frame is one decoded frame: its type byte and raw payload.
type Frame struct {
	Type    byte
	Payload []byte
}

// Event is one journaled runtime event with the shard it occurred on.
type Event struct {
	Shard int        `json:"shard"`
	Event live.Event `json:"event"`
}

// Span is one journaled completed-job record with its shard. The record
// decomposes into the four lifecycle stages via obs.FromRecord.
type Span struct {
	Shard  int         `json:"shard"`
	Record core.Record `json:"record"`
}

// Recording is a parsed flight recording: the raw frame sequence plus
// typed accessors. Frames appear in journal order; a recording whose
// oldest segments were dropped starts at a later segment boundary.
type Recording struct {
	Frames []Frame
}

// Parse decodes one recording byte stream (a Recorder.Snapshot, a GET
// /flight body, or concatenated segment files). It fails on a frame that
// runs past the end of the data — recordings are written frame-atomically,
// so truncation means a corrupted or incomplete copy.
func Parse(data []byte) (*Recording, error) {
	rec := &Recording{}
	for off := 0; off < len(data); {
		if len(data)-off < frameHeaderLen {
			return nil, fmt.Errorf("flight: truncated frame header at offset %d", off)
		}
		typ := data[off]
		n := int(binary.LittleEndian.Uint32(data[off+1 : off+5]))
		off += frameHeaderLen
		if n < 0 || n > len(data)-off {
			return nil, fmt.Errorf("flight: frame at offset %d claims %d payload bytes, %d remain", off-frameHeaderLen, n, len(data)-off)
		}
		rec.Frames = append(rec.Frames, Frame{Type: typ, Payload: data[off : off+n]})
		off += n
	}
	return rec, nil
}

// ReadDir parses a recording directory: every seg-*.flight file, in
// ascending segment order.
func ReadDir(dir string) (*Recording, error) {
	files, err := filepath.Glob(filepath.Join(dir, "seg-*.flight"))
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("flight: no seg-*.flight files in %s", dir)
	}
	sort.Strings(files)
	var data []byte
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("flight: %w", err)
		}
		data = append(data, b...)
	}
	return Parse(data)
}

// Segments returns the recording's segment sequence numbers, in order. A
// gap at the front relative to 0 means the bounded ring dropped history.
func (r *Recording) Segments() []uint64 {
	var out []uint64
	for _, f := range r.Frames {
		if f.Type == FrameSegment && len(f.Payload) == segmentPayloadLen {
			out = append(out, binary.LittleEndian.Uint64(f.Payload))
		}
	}
	return out
}

// Events decodes every event frame, in journal order.
func (r *Recording) Events() []Event {
	var out []Event
	for _, f := range r.Frames {
		if f.Type != FrameEvent || len(f.Payload) != eventPayloadLen {
			continue
		}
		p := f.Payload
		out = append(out, Event{
			Shard: int(int32(binary.LittleEndian.Uint32(p[0:4]))),
			Event: live.Event{
				Kind:  live.EventKind(p[4]),
				Task:  int(int32(binary.LittleEndian.Uint32(p[5:9]))),
				Slave: int(int32(binary.LittleEndian.Uint32(p[9:13]))),
				T:     math.Float64frombits(binary.LittleEndian.Uint64(p[13:21])),
			},
		})
	}
	return out
}

// Spans decodes every span frame, in journal order (completion order
// within a shard).
func (r *Recording) Spans() []Span {
	var out []Span
	for _, f := range r.Frames {
		if f.Type != FrameSpan || len(f.Payload) != spanPayloadLen {
			continue
		}
		p := f.Payload
		out = append(out, Span{
			Shard: int(int32(binary.LittleEndian.Uint32(p[0:4]))),
			Record: core.Record{
				Task:      core.TaskID(int32(binary.LittleEndian.Uint32(p[4:8]))),
				Slave:     int(int32(binary.LittleEndian.Uint32(p[8:12]))),
				Release:   math.Float64frombits(binary.LittleEndian.Uint64(p[12:20])),
				SendStart: math.Float64frombits(binary.LittleEndian.Uint64(p[20:28])),
				Arrive:    math.Float64frombits(binary.LittleEndian.Uint64(p[28:36])),
				Start:     math.Float64frombits(binary.LittleEndian.Uint64(p[36:44])),
				Complete:  math.Float64frombits(binary.LittleEndian.Uint64(p[44:52])),
			},
		})
	}
	return out
}

// Decisions decodes every decision frame, in journal order.
func (r *Recording) Decisions() []obs.Decision {
	var out []obs.Decision
	for _, f := range r.Frames {
		if f.Type != FrameDecision {
			continue
		}
		d, ok := decodeDecision(f.Payload)
		if !ok {
			continue
		}
		out = append(out, d)
	}
	return out
}

func decodeDecision(p []byte) (obs.Decision, bool) {
	if len(p) < 2 {
		return obs.Decision{}, false
	}
	code, plen := p[0], int(p[1])
	rest := p[2:]
	if len(rest) < plen+8+8+5*4+8+2 {
		return obs.Decision{}, false
	}
	d := obs.Decision{Kind: kindName(code), Policy: string(rest[:plen])}
	rest = rest[plen:]
	d.Seq = binary.LittleEndian.Uint64(rest[0:8])
	d.Wall = int64(binary.LittleEndian.Uint64(rest[8:16]))
	d.Job = int(int32(binary.LittleEndian.Uint32(rest[16:20])))
	d.From = int(int32(binary.LittleEndian.Uint32(rest[20:24])))
	d.To = int(int32(binary.LittleEndian.Uint32(rest[24:28])))
	d.Planned = int(int32(binary.LittleEndian.Uint32(rest[28:32])))
	d.N = int(int32(binary.LittleEndian.Uint32(rest[32:36])))
	d.LatencySeconds = math.Float64frombits(binary.LittleEndian.Uint64(rest[36:44]))
	ns := int(binary.LittleEndian.Uint16(rest[44:46]))
	rest = rest[46:]
	if len(rest) < 8*ns {
		return obs.Decision{}, false
	}
	if ns > 0 {
		d.Scores = make([]float64, ns)
		for i := range d.Scores {
			d.Scores[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i : 8*i+8]))
		}
	}
	return d, true
}

// Meta returns every caller-supplied meta blob, in journal order.
func (r *Recording) Meta() [][]byte {
	return r.blobs(FrameMeta)
}

// MetricsSnapshots returns every periodic metrics blob, in journal order.
func (r *Recording) MetricsSnapshots() [][]byte {
	return r.blobs(FrameMetrics)
}

func (r *Recording) blobs(typ byte) [][]byte {
	var out [][]byte
	for _, f := range r.Frames {
		if f.Type == typ {
			out = append(out, f.Payload)
		}
	}
	return out
}
