// Package stats provides the small set of descriptive statistics the
// experiment harness aggregates over repeated random platforms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	GeometricMean  float64
	geometricValid bool
}

// Summarize computes a Summary. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	logSum := 0.0
	s.geometricValid = true
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x > 0 {
			logSum += math.Log(x)
		} else {
			s.geometricValid = false
		}
	}
	s.Mean = sum / float64(len(xs))
	if s.geometricValid {
		s.GeometricMean = math.Exp(logSum / float64(len(xs)))
	}
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders "mean ± std [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f [%.4f, %.4f]", s.Mean, s.Std, s.Min, s.Max)
}

// Mean is a convenience for the common single-statistic case.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }
