// Package stats provides the small set of descriptive statistics the
// experiment harness aggregates over repeated random platforms and the
// live service reports over observed latencies.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	GeometricMean  float64
	P50, P95, P99  float64
	geometricValid bool
}

// Summarize computes a Summary. It panics on an empty sample. The input
// is not modified; callers that own their sample and can tolerate it
// being reordered should use SummarizeInPlace, which skips the copy the
// percentile computation otherwise needs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	sorted := append([]float64(nil), xs...)
	return SummarizeInPlace(sorted)
}

// SummarizeInPlace is Summarize for a caller-owned sample: the slice is
// sorted in place instead of copied. Reporting surfaces that already
// hold a private snapshot of their sample (schedd's /stats path) use it
// to avoid one full copy per request.
func SummarizeInPlace(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	logSum := 0.0
	s.geometricValid = true
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x > 0 {
			logSum += math.Log(x)
		} else {
			s.geometricValid = false
		}
	}
	s.Mean = sum / float64(len(xs))
	if s.geometricValid {
		s.GeometricMean = math.Exp(logSum / float64(len(xs)))
	}
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sort.Float64s(xs)
	sorted := xs
	// The interpolated 0.5-quantile is exactly the classic odd/even
	// median, so Median and P50 share one definition.
	s.Median = percentileSorted(sorted, 0.50)
	s.P50 = s.Median
	s.P95 = percentileSorted(sorted, 0.95)
	s.P99 = percentileSorted(sorted, 0.99)
	return s
}

// Percentile returns the p-th quantile of the sample, p in [0, 1], with
// linear interpolation between order statistics (the common "linear"
// definition: rank p·(n−1) into the sorted sample). It panics on an
// empty sample or a p outside [0, 1]. Percentile(xs, 0.5) equals the
// interpolated median; p 0 and 1 are the minimum and maximum.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v outside [0, 1]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile on an already-sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders "mean ± std [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f [%.4f, %.4f]", s.Mean, s.Std, s.Min, s.Max)
}

// Mean is a convenience for the common single-statistic case.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }
