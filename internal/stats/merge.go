package stats

import "math"

// Merge combines Summaries of disjoint sub-samples into the Summary of
// their union without access to the underlying samples — what a sharded
// service needs to present one cluster view over per-shard statistics.
//
// Exact fields (up to floating-point rounding): N, Mean, Min, Max, Std
// (via pooled sums of squares) and GeometricMean (via N-weighted log
// means; the result is geometric-invalid, i.e. reported as 0, when any
// part was).
//
// Approximate fields: Median and the percentiles P50/P95/P99 cannot be
// recovered from part summaries alone. Merge uses the N-weighted mean of
// the parts' percentiles, clamped into [merged Min, merged Max]. The
// approximation is exact when the parts are identically distributed —
// the homogeneous-shard case — and degrades gracefully with skew: the
// merged p-quantile always lies between the parts' smallest and largest
// p-quantiles, but it is NOT the p-quantile of the concatenation in
// general. Consumers that need exact cluster percentiles must merge raw
// samples instead (the tracker keeps them).
//
// Zero-value (N == 0) parts are skipped; merging no non-empty parts
// panics, mirroring Summarize on an empty sample.
func Merge(parts ...Summary) Summary {
	merged := Summary{Min: math.Inf(1), Max: math.Inf(-1), geometricValid: true}
	sum := 0.0    // Σ n_i·mean_i
	ss := 0.0     // Σ over parts of that part's raw sum of squares
	logSum := 0.0 // Σ n_i·ln(geomean_i)
	wP50, wP95, wP99, wMed := 0.0, 0.0, 0.0, 0.0
	for _, p := range parts {
		if p.N == 0 {
			continue
		}
		n := float64(p.N)
		merged.N += p.N
		sum += n * p.Mean
		// Recover the part's Σx² from (n, mean, std): std² = (Σx² − n·mean²)/(n−1).
		ss += p.Std*p.Std*(n-1) + n*p.Mean*p.Mean
		if p.Min < merged.Min {
			merged.Min = p.Min
		}
		if p.Max > merged.Max {
			merged.Max = p.Max
		}
		if p.geometricValid && p.GeometricMean > 0 {
			logSum += n * math.Log(p.GeometricMean)
		} else {
			merged.geometricValid = false
		}
		wP50 += n * p.P50
		wP95 += n * p.P95
		wP99 += n * p.P99
		wMed += n * p.Median
	}
	if merged.N == 0 {
		panic("stats: merge of empty summaries")
	}
	n := float64(merged.N)
	merged.Mean = sum / n
	if merged.N > 1 {
		v := (ss - n*merged.Mean*merged.Mean) / (n - 1)
		if v > 0 { // guard fp cancellation on near-constant samples
			merged.Std = math.Sqrt(v)
		}
	}
	if merged.geometricValid {
		merged.GeometricMean = math.Exp(logSum / n)
	}
	clamp := func(x float64) float64 {
		return math.Min(math.Max(x, merged.Min), merged.Max)
	}
	merged.P50 = clamp(wP50 / n)
	merged.P95 = clamp(wP95 / n)
	merged.P99 = clamp(wP99 / n)
	merged.Median = clamp(wMed / n)
	return merged
}
