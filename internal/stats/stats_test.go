package stats

import (
	"math"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N=%d mean=%v", s.N, s.Mean)
	}
	// Sample std of this classic dataset is ~2.138.
	if math.Abs(s.Std-2.1380899) > 1e-6 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min=%v max=%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.Median != 3 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("%+v", s)
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Summarize([]float64{9, 1, 5}).Median; got != 5 {
		t.Fatalf("median = %v", got)
	}
}

func TestGeometricMean(t *testing.T) {
	s := Summarize([]float64{1, 4, 16})
	if math.Abs(s.GeometricMean-4) > 1e-12 {
		t.Fatalf("geomean = %v", s.GeometricMean)
	}
	// Non-positive values disable the geometric mean.
	if got := Summarize([]float64{1, 0, 4}).GeometricMean; got != 0 {
		t.Fatalf("geomean with zero = %v", got)
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	Summarize(nil)
}

func TestMeanAndString(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if s := Summarize([]float64{1, 2}).String(); s == "" {
		t.Fatal("empty String")
	}
}
