package stats

import (
	"math"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("N=%d mean=%v", s.N, s.Mean)
	}
	// Sample std of this classic dataset is ~2.138.
	if math.Abs(s.Std-2.1380899) > 1e-6 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min=%v max=%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.Median != 3 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("%+v", s)
	}
}

func TestMedianOdd(t *testing.T) {
	if got := Summarize([]float64{9, 1, 5}).Median; got != 5 {
		t.Fatalf("median = %v", got)
	}
}

func TestGeometricMean(t *testing.T) {
	s := Summarize([]float64{1, 4, 16})
	if math.Abs(s.GeometricMean-4) > 1e-12 {
		t.Fatalf("geomean = %v", s.GeometricMean)
	}
	// Non-positive values disable the geometric mean.
	if got := Summarize([]float64{1, 0, 4}).GeometricMean; got != 0 {
		t.Fatalf("geomean with zero = %v", got)
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	Summarize(nil)
}

func TestMeanAndString(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if s := Summarize([]float64{1, 2}).String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40} // ranks 0,1,2,3
	cases := []struct{ p, want float64 }{
		{0, 10},
		{1, 40},
		{0.5, 25},     // rank 1.5 → halfway between 20 and 30
		{0.25, 17.5},  // rank 0.75
		{0.95, 38.5},  // rank 2.85
		{1.0 / 3, 20}, // rank exactly 1
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input order must not matter, and the input must not be mutated.
	shuffled := []float64{40, 10, 30, 20}
	if got := Percentile(shuffled, 0.5); got != 25 {
		t.Fatalf("Percentile on shuffled input = %v", got)
	}
	if shuffled[0] != 40 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileSingleElement(t *testing.T) {
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("Percentile(single, %v) = %v", p, got)
		}
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sample accepted")
		}
	}()
	Percentile(nil, 0.5)
}

func TestPercentileRangePanics(t *testing.T) {
	for _, p := range []float64{-0.01, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("p=%v accepted", p)
				}
			}()
			Percentile([]float64{1, 2}, p)
		}()
	}
}

func TestSummaryPercentileFields(t *testing.T) {
	xs := make([]float64, 100) // 1..100
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.P50 != s.Median {
		t.Fatalf("P50 %v != median %v", s.P50, s.Median)
	}
	if math.Abs(s.P95-95.05) > 1e-12 || math.Abs(s.P99-99.01) > 1e-9 {
		t.Fatalf("P95=%v P99=%v", s.P95, s.P99)
	}
	single := Summarize([]float64{3})
	if single.P50 != 3 || single.P95 != 3 || single.P99 != 3 {
		t.Fatalf("single-element percentiles %+v", single)
	}
}
