package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestMergeEqualsSummarizeOfConcat is the property the sharded stats
// path rides on: for any split of a sample into parts, Merge of the part
// summaries equals Summarize of the concatenation exactly for N, Min and
// Max, and up to floating-point rounding for Mean, Std and GeometricMean.
func TestMergeEqualsSummarizeOfConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	approxEq := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64()) // positive, skewed
		}
		// Random split into 1..6 contiguous parts (some possibly empty).
		k := 1 + rng.Intn(6)
		cuts := make([]int, 0, k+1)
		cuts = append(cuts, 0)
		for i := 1; i < k; i++ {
			cuts = append(cuts, rng.Intn(n+1))
		}
		cuts = append(cuts, n)
		for i := 1; i < len(cuts); i++ {
			if cuts[i] < cuts[i-1] {
				cuts[i] = cuts[i-1]
			}
		}
		parts := make([]Summary, 0, k)
		for i := 1; i < len(cuts); i++ {
			seg := xs[cuts[i-1]:cuts[i]]
			if len(seg) == 0 {
				parts = append(parts, Summary{}) // zero-value part must be skipped
				continue
			}
			parts = append(parts, Summarize(seg))
		}
		got := Merge(parts...)
		want := Summarize(xs)
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("trial %d: exact fields differ: got N=%d Min=%v Max=%v want N=%d Min=%v Max=%v",
				trial, got.N, got.Min, got.Max, want.N, want.Min, want.Max)
		}
		if !approxEq(got.Mean, want.Mean) {
			t.Fatalf("trial %d: mean %v != %v", trial, got.Mean, want.Mean)
		}
		if !approxEq(got.Std, want.Std) {
			t.Fatalf("trial %d: std %v != %v", trial, got.Std, want.Std)
		}
		if !approxEq(got.GeometricMean, want.GeometricMean) {
			t.Fatalf("trial %d: geomean %v != %v", trial, got.GeometricMean, want.GeometricMean)
		}
		// The percentile approximation must stay inside the sample range
		// and between the parts' extreme quantiles.
		for _, p := range []float64{got.P50, got.P95, got.P99, got.Median} {
			if p < want.Min-1e-12 || p > want.Max+1e-12 {
				t.Fatalf("trial %d: merged percentile %v outside [%v, %v]", trial, p, want.Min, want.Max)
			}
		}
	}
}

func TestMergeSinglePartIsIdentity(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	s := Summarize(xs)
	m := Merge(s)
	if m.N != s.N || m.Mean != s.Mean || m.Min != s.Min || m.Max != s.Max || m.Std != s.Std {
		t.Fatalf("merge of one part drifted: %+v vs %+v", m, s)
	}
	// Percentiles of a single part are within range, hence un-clamped and
	// exactly the part's own.
	if m.P50 != s.P50 || m.P95 != s.P95 || m.P99 != s.P99 || m.Median != s.Median {
		t.Fatalf("single-part percentiles drifted: %+v vs %+v", m, s)
	}
}

// TestMergeOneSided pins the empty-shard cases the sharded /stats path
// hits in practice: a cluster where only one shard has completed work
// (pinned placement before any steal) must report that shard's summary
// unchanged, however the empty parts are interleaved.
func TestMergeOneSided(t *testing.T) {
	s := Summarize([]float64{2, 7, 1, 8, 2, 8})
	approxEq := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)+math.Abs(b))
	}
	for _, parts := range [][]Summary{
		{s, {}},
		{{}, s},
		{{}, s, {}, {}},
	} {
		m := Merge(parts...)
		if m.N != s.N || m.Min != s.Min || m.Max != s.Max {
			t.Fatalf("one-sided merge drifted on exact fields: %+v vs %+v", m, s)
		}
		// Mean/Std/GeometricMean round-trip through the pooled sums, so
		// allow floating-point rounding; percentiles likewise.
		for _, pair := range [][2]float64{
			{m.Mean, s.Mean}, {m.Std, s.Std}, {m.GeometricMean, s.GeometricMean},
			{m.P50, s.P50}, {m.P95, s.P95}, {m.P99, s.P99}, {m.Median, s.Median},
		} {
			if !approxEq(pair[0], pair[1]) {
				t.Fatalf("one-sided merge drifted: got %v want %v (%+v vs %+v)",
					pair[0], pair[1], m, s)
			}
		}
	}
}

func TestMergeNoPartsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero-part merge")
		}
	}()
	Merge()
}

func TestMergeGeometricInvalidPropagates(t *testing.T) {
	good := Summarize([]float64{1, 2, 3})
	bad := Summarize([]float64{0, 1}) // zero kills the geometric mean
	if got := Merge(good, bad); got.GeometricMean != 0 {
		t.Fatalf("geometric mean %v, want 0 for invalid merge", got.GeometricMean)
	}
}

func TestMergeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty merge")
		}
	}()
	Merge(Summary{}, Summary{})
}
