package workload

// Edge cases of the Bursty and Periodic arrival patterns, and the empty
// workload, pinned so pattern refactors can't bend the corner behavior.

import (
	"math/rand"
	"testing"
)

func TestGenerateZeroTasksIsEmpty(t *testing.T) {
	for _, p := range []Pattern{BagAtZero, Poisson, UniformSpread, Bursty, Periodic} {
		if got := Generate(rand.New(rand.NewSource(1)), Config{N: 0, Pattern: p}); len(got) != 0 {
			t.Fatalf("%v: N=0 produced %d tasks", p, len(got))
		}
	}
}

func TestBurstySingleBurst(t *testing.T) {
	// BurstSize ≥ N: every release lands in the first burst, at time 0 —
	// no gap is ever drawn.
	tasks := Generate(rand.New(rand.NewSource(3)), Config{N: 7, Pattern: Bursty, BurstSize: 10, GapMean: 5})
	for _, task := range tasks {
		if task.Release != 0 {
			t.Fatalf("single-burst workload released task at %v, want 0", task.Release)
		}
	}
}

func TestBurstySingleTask(t *testing.T) {
	tasks := Generate(rand.New(rand.NewSource(4)), Config{N: 1, Pattern: Bursty, BurstSize: 1})
	if len(tasks) != 1 || tasks[0].Release != 0 {
		t.Fatalf("N=1 bursty workload: %+v", tasks)
	}
}

func TestBurstyGapsOnlyBetweenBursts(t *testing.T) {
	tasks := Generate(rand.New(rand.NewSource(5)), Config{N: 9, Pattern: Bursty, BurstSize: 3, GapMean: 2})
	for i := 1; i < len(tasks); i++ {
		same := i%3 != 0
		if same && tasks[i].Release != tasks[i-1].Release {
			t.Fatalf("tasks %d and %d in one burst released at %v vs %v",
				i-1, i, tasks[i-1].Release, tasks[i].Release)
		}
		if !same && tasks[i].Release < tasks[i-1].Release {
			t.Fatalf("burst boundary went backwards: %v then %v", tasks[i-1].Release, tasks[i].Release)
		}
	}
}

func TestPeriodicPeriodLongerThanWorkload(t *testing.T) {
	// A tiny rate makes the period (100s) dwarf any plausible horizon;
	// the stream must still be exactly i/rate, never truncated.
	tasks := Generate(rand.New(rand.NewSource(6)), Config{N: 3, Pattern: Periodic, Rate: 0.01})
	for i, task := range tasks {
		if want := float64(i) / 0.01; task.Release != want {
			t.Fatalf("task %d released at %v, want %v", i, task.Release, want)
		}
	}
}

func TestPeriodicSingleTaskAndDefaultRate(t *testing.T) {
	tasks := Generate(rand.New(rand.NewSource(7)), Config{N: 1, Pattern: Periodic, Rate: -1})
	if len(tasks) != 1 || tasks[0].Release != 0 {
		t.Fatalf("N=1 periodic workload: %+v", tasks)
	}
}
