// Package workload generates the task streams driving every experiment:
// the paper's bag-of-tasks workload, trickle arrival patterns used in the
// ablation studies, and the matrix-size perturbation of the Figure-2
// robustness experiment.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
)

// Pattern names an arrival process.
type Pattern int

const (
	// BagAtZero releases every task at time 0 — the paper's main workload
	// ("we send one thousand tasks on it").
	BagAtZero Pattern = iota
	// Poisson releases tasks with exponential inter-arrival times.
	Poisson
	// UniformSpread spaces releases uniformly at random over a horizon.
	UniformSpread
	// Bursty releases tasks in bursts separated by quiet gaps.
	Bursty
	// Periodic releases one task every fixed interval.
	Periodic
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case BagAtZero:
		return "bag-at-zero"
	case Poisson:
		return "poisson"
	case UniformSpread:
		return "uniform"
	case Bursty:
		return "bursty"
	case Periodic:
		return "periodic"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Config parameterizes a generated workload.
type Config struct {
	N       int     // number of tasks
	Pattern Pattern // arrival process
	// Rate is the mean arrival rate (tasks per second) for Poisson and
	// Periodic, and the within-burst rate for Bursty. Ignored by BagAtZero.
	Rate float64
	// Horizon is the release window length for UniformSpread.
	Horizon float64
	// BurstSize and GapMean shape the Bursty pattern: bursts of BurstSize
	// back-to-back releases separated by exponential gaps of mean GapMean.
	BurstSize int
	GapMean   float64
	// Perturb enables the Figure-2 matrix-size perturbation: each task's
	// side length is scaled by a factor drawn uniformly from
	// [1−Perturb, 1+Perturb] (the paper perturbs "by a factor of up to
	// 10%", i.e. Perturb = 0.1). Communication cost scales with the square
	// of the factor (matrix volume), computation with the cube (LU flops),
	// unless LinearPerturb is set.
	Perturb float64
	// LinearPerturb applies the size factor directly to both costs
	// (exponents 1,1) instead of the matrix model (2,3).
	LinearPerturb bool
}

// Generate draws a workload. All randomness comes from rng, so a seed
// fully determines the stream. N = 0 yields the empty workload (a sweep
// cell with nothing to release is legitimate); a negative N panics.
func Generate(rng *rand.Rand, cfg Config) []core.Task {
	if cfg.N < 0 {
		panic(fmt.Sprintf("workload: negative task count %d", cfg.N))
	}
	if cfg.N == 0 {
		return nil
	}
	releases := make([]float64, cfg.N)
	switch cfg.Pattern {
	case BagAtZero:
		// all zeros
	case Poisson:
		rate := cfg.Rate
		if rate <= 0 {
			rate = 1
		}
		t := 0.0
		for i := range releases {
			t += rng.ExpFloat64() / rate
			releases[i] = t
		}
	case UniformSpread:
		h := cfg.Horizon
		if h <= 0 {
			h = float64(cfg.N)
		}
		for i := range releases {
			releases[i] = rng.Float64() * h
		}
	case Bursty:
		size := cfg.BurstSize
		if size <= 0 {
			size = 10
		}
		gap := cfg.GapMean
		if gap <= 0 {
			gap = 5
		}
		t := 0.0
		for i := range releases {
			if i > 0 && i%size == 0 {
				t += rng.ExpFloat64() * gap
			}
			releases[i] = t
		}
	case Periodic:
		rate := cfg.Rate
		if rate <= 0 {
			rate = 1
		}
		for i := range releases {
			releases[i] = float64(i) / rate
		}
	default:
		panic(fmt.Sprintf("workload: unknown pattern %v", cfg.Pattern))
	}

	tasks := make([]core.Task, cfg.N)
	for i := range tasks {
		tasks[i] = core.Task{ID: core.TaskID(i), Release: releases[i], CommScale: 1, CompScale: 1}
		if cfg.Perturb > 0 {
			s := 1 + (rng.Float64()*2-1)*cfg.Perturb
			if cfg.LinearPerturb {
				tasks[i].CommScale, tasks[i].CompScale = s, s
			} else {
				tasks[i].CommScale = s * s
				tasks[i].CompScale = s * s * s
			}
		}
	}
	return tasks
}

// Strip returns a copy of the tasks with all size perturbation removed
// (CommScale = CompScale = 1). Figure 2 compares a perturbed run against
// the identical-size run on the same platform; Strip produces the latter.
func Strip(tasks []core.Task) []core.Task {
	out := append([]core.Task(nil), tasks...)
	for i := range out {
		out[i].CommScale, out[i].CompScale = 1, 1
	}
	return out
}

// MeanLoad estimates the offered load of a task stream on a platform: the
// arrival rate divided by the platform's aggregate service rate (an upper
// bound on sustainable throughput given the one-port constraint).
func MeanLoad(tasks []core.Task, pl core.Platform) float64 {
	if len(tasks) < 2 {
		return math.Inf(1)
	}
	span := tasks[len(tasks)-1].Release - tasks[0].Release
	if span <= 0 {
		return math.Inf(1)
	}
	arrivalRate := float64(len(tasks)-1) / span
	// Service capacity: slaves in parallel, capped by the master's port.
	compRate := 0.0
	minC := math.Inf(1)
	for j := 0; j < pl.M(); j++ {
		compRate += 1 / pl.P[j]
		if pl.C[j] < minC {
			minC = pl.C[j]
		}
	}
	portRate := 1 / minC
	cap := math.Min(compRate, portRate)
	return arrivalRate / cap
}
