package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// regen draws the same generator twice from the same runner-derived
// stream and requires identical timelines: the determinism contract the
// sweep engine (DESIGN.md §5) relies on.
func regen(t *testing.T, name string, gen func(rng *rand.Rand) scenario.Scenario) scenario.Scenario {
	t.Helper()
	a := gen(runner.RNG(42, "scenario-test/"+name))
	b := gen(runner.RNG(42, "scenario-test/"+name))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: same (seed, key) produced different scenarios", name)
	}
	c := gen(runner.RNG(43, "scenario-test/"+name))
	if reflect.DeepEqual(a.Events, c.Events) && len(a.Events) > 0 {
		t.Fatalf("%s: different root seeds produced the identical timeline", name)
	}
	return a
}

func TestFailureScenarioDeterministicAndValid(t *testing.T) {
	sc := regen(t, "failures", func(rng *rand.Rand) scenario.Scenario {
		return FailureScenario(rng, 5, 50, 2, 3)
	})
	if err := sc.Validate(5); err != nil {
		t.Fatal(err)
	}
	fails, recovers := 0, 0
	for _, e := range sc.Events {
		switch e.Kind {
		case scenario.SlaveFail:
			fails++
			if e.Time >= 50 {
				t.Fatalf("failure at %v outside the horizon", e.Time)
			}
		case scenario.SlaveRecover:
			recovers++
		default:
			t.Fatalf("unexpected %v event in a failure scenario", e.Kind)
		}
	}
	if fails == 0 || fails != recovers {
		t.Fatalf("%d failures, %d recoveries: every failure must pair with a recovery", fails, recovers)
	}
}

func TestDriftScenarioDeterministicAndBounded(t *testing.T) {
	pl := core.NewPlatform([]float64{0.2, 0.8}, []float64{2, 6})
	sc := regen(t, "drift", func(rng *rand.Rand) scenario.Scenario {
		return DriftScenario(rng, pl, 40, 4, 0.25)
	})
	if err := sc.Validate(pl.M()); err != nil {
		t.Fatal(err)
	}
	if len(sc.Events) != 4*pl.M() {
		t.Fatalf("%d events, want steps × m = %d", len(sc.Events), 4*pl.M())
	}
	maxFactor := 1.25 * 1.25
	for _, e := range sc.Events {
		if e.Kind != scenario.SpeedDrift {
			t.Fatalf("unexpected %v event in a drift scenario", e.Kind)
		}
		if e.C < pl.C[e.Slave]/maxFactor-1e-12 || e.C > pl.C[e.Slave]*maxFactor+1e-12 {
			t.Fatalf("slave %d comm drifted to %v, outside ±%.2fx of %v", e.Slave, e.C, maxFactor, pl.C[e.Slave])
		}
		if e.P < pl.P[e.Slave]/maxFactor-1e-12 || e.P > pl.P[e.Slave]*maxFactor+1e-12 {
			t.Fatalf("slave %d comp drifted to %v, outside ±%.2fx of %v", e.Slave, e.P, maxFactor, pl.P[e.Slave])
		}
	}
}

func TestFlashCrowdScenarioShape(t *testing.T) {
	sc := regen(t, "flash-crowd", func(rng *rand.Rand) scenario.Scenario {
		return FlashCrowdScenario(rng, 3, 4, 10, 30, core.GenConfig{})
	})
	if err := sc.Validate(3); err != nil {
		t.Fatal(err)
	}
	joins, leaves := 0, 0
	for _, e := range sc.Events {
		switch e.Kind {
		case scenario.SlaveJoin:
			joins++
			if e.Time != 10 {
				t.Fatalf("join at %v, want 10", e.Time)
			}
		case scenario.SlaveLeave:
			leaves++
			if e.Time != 30 || e.Slave < 3 || e.Slave >= 7 {
				t.Fatalf("leave %+v must target a joined slave at t=30", e)
			}
		default:
			t.Fatalf("unexpected %v event in a flash crowd", e.Kind)
		}
	}
	if joins != 4 || leaves != 4 {
		t.Fatalf("%d joins, %d leaves, want 4 each", joins, leaves)
	}
}
