package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestBagAtZero(t *testing.T) {
	tasks := Generate(rand.New(rand.NewSource(1)), Config{N: 50, Pattern: BagAtZero})
	if len(tasks) != 50 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	for _, task := range tasks {
		if task.Release != 0 {
			t.Fatalf("bag task released at %v", task.Release)
		}
		if task.EffComm() != 1 || task.EffComp() != 1 {
			t.Fatal("unperturbed task has non-unit scale")
		}
	}
}

func TestPoissonMonotoneAndRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tasks := Generate(rng, Config{N: 5000, Pattern: Poisson, Rate: 4})
	last := 0.0
	for _, task := range tasks {
		if task.Release < last {
			t.Fatal("Poisson releases not monotone")
		}
		last = task.Release
	}
	// Mean inter-arrival should approximate 1/4 s.
	mean := last / float64(len(tasks))
	if math.Abs(mean-0.25) > 0.02 {
		t.Fatalf("mean inter-arrival %v, want ≈0.25", mean)
	}
}

func TestPeriodic(t *testing.T) {
	tasks := Generate(rand.New(rand.NewSource(3)), Config{N: 5, Pattern: Periodic, Rate: 2})
	want := []float64{0, 0.5, 1, 1.5, 2}
	for i, task := range tasks {
		if math.Abs(task.Release-want[i]) > 1e-12 {
			t.Fatalf("periodic release %d = %v, want %v", i, task.Release, want[i])
		}
	}
}

func TestUniformSpreadWithinHorizon(t *testing.T) {
	tasks := Generate(rand.New(rand.NewSource(4)), Config{N: 200, Pattern: UniformSpread, Horizon: 10})
	for _, task := range tasks {
		if task.Release < 0 || task.Release > 10 {
			t.Fatalf("release %v outside horizon", task.Release)
		}
	}
}

func TestBurstyStructure(t *testing.T) {
	tasks := Generate(rand.New(rand.NewSource(5)), Config{N: 40, Pattern: Bursty, BurstSize: 10, GapMean: 100})
	// Within a burst, releases are identical; between bursts there are gaps.
	releases := make([]float64, len(tasks))
	for i, task := range tasks {
		releases[i] = task.Release
	}
	if !sort.Float64sAreSorted(releases) {
		t.Fatal("bursty releases not monotone")
	}
	distinct := map[float64]int{}
	for _, r := range releases {
		distinct[r]++
	}
	if len(distinct) != 4 {
		t.Fatalf("expected 4 bursts, got %d distinct release times", len(distinct))
	}
	for r, n := range distinct {
		if n != 10 {
			t.Fatalf("burst at %v has %d tasks, want 10", r, n)
		}
	}
}

func TestPerturbationMatrixModel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tasks := Generate(rng, Config{N: 2000, Pattern: BagAtZero, Perturb: 0.1})
	for _, task := range tasks {
		s := math.Cbrt(task.EffComp())
		if s < 0.9-1e-9 || s > 1.1+1e-9 {
			t.Fatalf("size factor %v outside [0.9, 1.1]", s)
		}
		if math.Abs(task.EffComm()-s*s) > 1e-9 {
			t.Fatalf("comm scale %v is not square of size factor %v", task.EffComm(), s)
		}
	}
}

func TestPerturbationLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tasks := Generate(rng, Config{N: 500, Pattern: BagAtZero, Perturb: 0.1, LinearPerturb: true})
	for _, task := range tasks {
		if math.Abs(task.EffComm()-task.EffComp()) > 1e-12 {
			t.Fatal("linear perturbation must scale both costs identically")
		}
		if task.EffComm() < 0.9-1e-9 || task.EffComm() > 1.1+1e-9 {
			t.Fatalf("linear factor %v outside range", task.EffComm())
		}
	}
}

func TestStrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tasks := Generate(rng, Config{N: 20, Pattern: Poisson, Rate: 1, Perturb: 0.1})
	clean := Strip(tasks)
	for i := range clean {
		if clean[i].EffComm() != 1 || clean[i].EffComp() != 1 {
			t.Fatal("Strip left perturbation behind")
		}
		if clean[i].Release != tasks[i].Release {
			t.Fatal("Strip changed release times")
		}
	}
	// Original untouched.
	anyScaled := false
	for _, task := range tasks {
		if task.EffComm() != 1 {
			anyScaled = true
		}
	}
	if !anyScaled {
		t.Fatal("test needs at least one perturbed task")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(9)), Config{N: 100, Pattern: Poisson, Rate: 2, Perturb: 0.1})
	b := Generate(rand.New(rand.NewSource(9)), Config{N: 100, Pattern: Poisson, Rate: 2, Perturb: 0.1})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
}

func TestGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative N accepted")
		}
	}()
	Generate(rand.New(rand.NewSource(1)), Config{N: -1})
}

func TestMeanLoad(t *testing.T) {
	pl := core.NewPlatform([]float64{0.5, 0.5}, []float64{1, 1})
	// 2 tasks/s offered; capacity = min(2 tasks/s compute, 2 tasks/s port) = 2.
	tasks := Generate(rand.New(rand.NewSource(10)), Config{N: 1000, Pattern: Periodic, Rate: 2})
	load := MeanLoad(tasks, pl)
	if math.Abs(load-1.0) > 0.01 {
		t.Fatalf("load = %v, want ≈1", load)
	}
	// Bag at zero is infinite instantaneous load.
	if !math.IsInf(MeanLoad(core.Bag(5), pl), 1) {
		t.Fatal("bag-at-zero load should be +Inf")
	}
}

// Property: any generated workload is valid input for core.NewInstance —
// sorted releases in the instance, dense IDs, positive scales.
func TestGeneratedWorkloadsFormValidInstances(t *testing.T) {
	f := func(seed int64, nRaw uint8, patRaw uint8, perturbRaw uint8) bool {
		n := int(nRaw%64) + 1
		pattern := Pattern(patRaw % 5)
		perturb := float64(perturbRaw%11) / 100
		rng := rand.New(rand.NewSource(seed))
		tasks := Generate(rng, Config{N: n, Pattern: pattern, Rate: 2, Perturb: perturb})
		pl := core.NewPlatform([]float64{1, 2}, []float64{3, 4})
		inst := core.NewInstance(pl, tasks)
		if len(inst.Tasks) != n {
			return false
		}
		for i, task := range inst.Tasks {
			if task.ID != core.TaskID(i) {
				return false
			}
			if i > 0 && task.Release < inst.Tasks[i-1].Release {
				return false
			}
			if task.EffComm() <= 0 || task.EffComp() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// Rate ≤ 0 falls back to 1 task/s for Poisson and Periodic.
	per := Generate(rng, Config{N: 3, Pattern: Periodic})
	if per[1].Release != 1 || per[2].Release != 2 {
		t.Fatalf("periodic default rate: %+v", per)
	}
	poi := Generate(rng, Config{N: 100, Pattern: Poisson})
	if poi[99].Release <= 0 {
		t.Fatal("poisson default rate produced non-positive horizon")
	}
	// UniformSpread defaults its horizon to N seconds.
	uni := Generate(rng, Config{N: 50, Pattern: UniformSpread})
	for _, task := range uni {
		if task.Release < 0 || task.Release > 50 {
			t.Fatalf("uniform default horizon: release %v", task.Release)
		}
	}
	// Bursty defaults: bursts of 10 with mean gap 5.
	bur := Generate(rng, Config{N: 25, Pattern: Bursty})
	if bur[0].Release != bur[9].Release {
		t.Fatal("bursty default burst size not 10")
	}
}

func TestUnknownPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown pattern accepted")
		}
	}()
	Generate(rand.New(rand.NewSource(1)), Config{N: 1, Pattern: Pattern(99)})
}

func TestPatternString(t *testing.T) {
	names := map[Pattern]string{
		BagAtZero:     "bag-at-zero",
		Poisson:       "poisson",
		UniformSpread: "uniform",
		Bursty:        "bursty",
		Periodic:      "periodic",
	}
	for p, want := range names {
		if p.String() != want {
			t.Fatalf("%v", p)
		}
	}
	if Pattern(42).String() == "" {
		t.Fatal("unknown pattern String empty")
	}
}
