package workload

// Random scenario generators: the dynamic-platform counterpart of the
// arrival patterns in workload.go. Each generator draws a deterministic
// event timeline for internal/scenario from a caller-provided rng — under
// the runner's hash(rootSeed, shardKey) seeding the same (seed, key)
// always yields the identical scenario, whatever the worker count.
//
// Generators produce standalone scenarios: the slave indices they emit
// assume no other source of joins, so compose timelines only by
// generating them from one call.

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/scenario"
)

// FailureScenario draws Poisson slave churn: while up, each of the m
// slaves fails with exponential inter-failure times calibrated so it
// fails failsPerSlave times in expectation over the horizon; each failure
// is followed by an exponential downtime of mean meanDowntime. Failures
// are only generated inside the horizon, and every failure's recovery is
// always emitted (possibly past the horizon), so a scenario never
// strands a slave forever.
func FailureScenario(rng *rand.Rand, m int, horizon, failsPerSlave, meanDowntime float64) scenario.Scenario {
	if m <= 0 || horizon <= 0 || failsPerSlave <= 0 {
		panic(fmt.Sprintf("workload: failure scenario needs positive m=%d, horizon=%v, failsPerSlave=%v",
			m, horizon, failsPerSlave))
	}
	if meanDowntime <= 0 {
		meanDowntime = 0.1 * horizon
	}
	meanUp := horizon / failsPerSlave
	var evs []scenario.Event
	for j := 0; j < m; j++ {
		t := rng.ExpFloat64() * meanUp
		for t < horizon {
			down := rng.ExpFloat64() * meanDowntime
			evs = append(evs, scenario.FailAt(t, j), scenario.RecoverAt(t+down, j))
			t += down + rng.ExpFloat64()*meanUp
		}
	}
	return scenario.Scenario{
		Name:   fmt.Sprintf("failures(per-slave=%.2g,downtime=%.2g)", failsPerSlave, meanDowntime),
		Events: evs,
	}
}

// DriftScenario draws a bounded multiplicative random walk on every
// slave's ACTUAL costs: at each of steps evenly spaced times inside the
// horizon, each cost is multiplied by a factor uniform in
// [1/(1+spread), 1+spread] and clamped to within maxFactor of its
// original value, so actual speeds wander but never run away. The
// nominal costs schedulers plan with are untouched (see
// sim.Engine.DriftCosts).
func DriftScenario(rng *rand.Rand, pl core.Platform, horizon float64, steps int, spread float64) scenario.Scenario {
	if horizon <= 0 || steps <= 0 || spread <= 0 {
		panic(fmt.Sprintf("workload: drift scenario needs positive horizon=%v, steps=%d, spread=%v",
			horizon, steps, spread))
	}
	maxFactor := (1 + spread) * (1 + spread)
	cur := pl.Clone()
	var evs []scenario.Event
	for k := 1; k <= steps; k++ {
		t := horizon * float64(k) / float64(steps+1)
		for j := 0; j < pl.M(); j++ {
			c := clamp(cur.C[j]*driftFactor(rng, spread), pl.C[j]/maxFactor, pl.C[j]*maxFactor)
			p := clamp(cur.P[j]*driftFactor(rng, spread), pl.P[j]/maxFactor, pl.P[j]*maxFactor)
			cur.C[j], cur.P[j] = c, p
			evs = append(evs, scenario.DriftAt(t, j, c, p))
		}
	}
	return scenario.Scenario{
		Name:   fmt.Sprintf("drift(steps=%d,spread=%.2g)", steps, spread),
		Events: evs,
	}
}

// driftFactor draws a multiplicative step: up to (1+spread) in either
// direction, symmetric in log space so walks don't trend.
func driftFactor(rng *rand.Rand, spread float64) float64 {
	limit := math.Log1p(spread)
	return math.Exp((rng.Float64()*2 - 1) * limit)
}

func clamp(x, lo, hi float64) float64 {
	return math.Min(math.Max(x, lo), hi)
}

// FlashCrowdScenario draws a flash crowd: joins new slaves, with costs
// from the generation ranges (zero-valued gen fields select the paper's
// defaults), all appearing at joinAt and departing — queues destroyed and
// re-dispatched — at leaveAt. m0 is the initial platform size, which
// fixes the joined slaves' indices.
func FlashCrowdScenario(rng *rand.Rand, m0, joins int, joinAt, leaveAt float64, gen core.GenConfig) scenario.Scenario {
	if m0 <= 0 || joins <= 0 || joinAt < 0 || leaveAt <= joinAt {
		panic(fmt.Sprintf("workload: flash crowd needs m0=%d, joins=%d > 0 and 0 ≤ joinAt=%v < leaveAt=%v",
			m0, joins, joinAt, leaveAt))
	}
	def := core.DefaultGenConfig()
	if gen.CMax <= gen.CMin {
		gen.CMin, gen.CMax = def.CMin, def.CMax
	}
	if gen.PMax <= gen.PMin {
		gen.PMin, gen.PMax = def.PMin, def.PMax
	}
	var evs []scenario.Event
	for i := 0; i < joins; i++ {
		c := gen.CMin + rng.Float64()*(gen.CMax-gen.CMin)
		p := gen.PMin + rng.Float64()*(gen.PMax-gen.PMin)
		evs = append(evs, scenario.JoinAt(joinAt, c, p))
	}
	for i := 0; i < joins; i++ {
		evs = append(evs, scenario.LeaveAt(leaveAt, m0+i))
	}
	return scenario.Scenario{
		Name:   fmt.Sprintf("flash-crowd(joins=%d)", joins),
		Events: evs,
	}
}
