package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/stats"
)

// Cell is the machine-readable record of one shard: its key, the seed the
// runner derived for it, scalar measurements keyed by "coordinate/metric"
// strings (e.g. "LS/makespan"), and optional string-valued labels (e.g.
// Table 1's worst scheduler).
type Cell struct {
	Key    string             `json:"key"`
	Seed   int64              `json:"seed"`
	Values map[string]float64 `json:"values"`
	Labels map[string]string  `json:"labels,omitempty"`
}

// NewCell builds a Cell for a shard key under the given root seed, with
// the seed filled in by the canonical derivation.
func NewCell(root int64, key string) Cell {
	return Cell{Key: key, Seed: Seed(root, key), Values: map[string]float64{}}
}

// NewCellSized is NewCell with a capacity hint for the Values map. Sweep
// cells know their metric count up front (schedulers × objectives), so
// sizing the map once avoids the incremental rehash-and-regrow every
// cell of a large sweep otherwise pays.
func NewCellSized(root int64, key string, values int) Cell {
	return Cell{Key: key, Seed: Seed(root, key), Values: make(map[string]float64, values)}
}

// Meta records execution facts that are deliberately OUTSIDE the
// determinism contract: how many workers ran and how long the wall clock
// took. Everything in a Result except Meta is bit-identical across worker
// counts; comparisons must go through Canonical.
type Meta struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Result is the machine-readable outcome of one experiment sweep: the
// experiment's name, its parameters, the root seed, every cell, and
// summary statistics aggregated over cells per value key.
type Result struct {
	Experiment string                   `json:"experiment"`
	Params     map[string]any           `json:"params,omitempty"`
	RootSeed   int64                    `json:"root_seed"`
	Cells      []Cell                   `json:"cells"`
	Summaries  map[string]stats.Summary `json:"summaries,omitempty"`
	Meta       *Meta                    `json:"meta,omitempty"`
}

// Canonical returns a copy with Meta stripped: the part of the Result
// that is guaranteed identical for every worker count. Determinism tests
// and cross-run comparisons operate on Canonical results.
func (r Result) Canonical() Result {
	r.Meta = nil
	return r
}

// Summarize fills Summaries with a stats.Summary per value key, over all
// cells carrying that key. It returns the receiver for chaining.
func (r *Result) Summarize() *Result {
	var acc map[string][]float64
	if len(r.Cells) > 0 {
		// Homogeneous sweeps carry the same keys in every cell: size the
		// accumulator off the first cell and give each key's sample slice
		// its full capacity up front.
		acc = make(map[string][]float64, len(r.Cells[0].Values))
		for k := range r.Cells[0].Values {
			acc[k] = make([]float64, 0, len(r.Cells))
		}
	} else {
		acc = map[string][]float64{}
	}
	for _, c := range r.Cells {
		for k, v := range c.Values {
			acc[k] = append(acc[k], v)
		}
	}
	r.Summaries = make(map[string]stats.Summary, len(acc))
	for k, xs := range acc {
		// The sample slices are owned by this function, so the in-place
		// variant avoids one copy per key.
		r.Summaries[k] = stats.SummarizeInPlace(xs)
	}
	return r
}

// ValueKeys returns the sorted union of value keys across cells.
func (r Result) ValueKeys() []string {
	set := map[string]bool{}
	for _, c := range r.Cells {
		for k := range c.Values {
			set[k] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Report is the envelope cmd/paperbench writes with -json: every artifact
// the run produced, in run order.
type Report struct {
	RootSeed int64    `json:"root_seed"`
	Results  []Result `json:"results"`
	Meta     *Meta    `json:"meta,omitempty"`
}

// Canonical strips Meta at every level, leaving only worker-count-
// independent content.
func (rep Report) Canonical() Report {
	rep.Meta = nil
	out := make([]Result, len(rep.Results))
	for i, r := range rep.Results {
		out[i] = r.Canonical()
	}
	rep.Results = out
	return rep
}

// EncodeJSON renders v as indented JSON with a trailing newline. Map keys
// are emitted sorted (encoding/json's contract), so canonical content
// marshals to identical bytes across runs and worker counts.
func EncodeJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runner: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteJSON writes v as indented JSON to path.
func WriteJSON(path string, v any) error {
	b, err := EncodeJSON(v)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
