package runner

import "testing"

// TestSeedGolden pins the seed derivation to recorded constants. These
// values are embedded in every JSON artifact this repository has ever
// written (each cell records its derived seed), so any change to Seed —
// byte order, hash variant, key framing — must fail here loudly rather
// than silently invalidating recorded results. If you change the
// derivation deliberately, bump these constants and call the change out
// as breaking in CHANGES.md.
func TestSeedGolden(t *testing.T) {
	golden := []struct {
		root int64
		key  string
		want int64
	}{
		{2006, "fig1/heterogeneous/platform=000", -4261875309688946958},
		{2006, "fig2/platform=009", -4374989750899345826},
		{0, "", -6284781860667377211},
		{-1, "msched/replicate=0001", -7076024478334618563},
		{11, "ablation/RR-cap/platform=004/workload", -7059355115454739115},
	}
	for _, g := range golden {
		if got := Seed(g.root, g.key); got != g.want {
			t.Errorf("Seed(%d, %q) = %d, want %d — the derivation drifted; this breaks every recorded artifact",
				g.root, g.key, got, g.want)
		}
	}
}
