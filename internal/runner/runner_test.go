package runner

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestSeedStability pins the seed derivation. These constants are part of
// the reproducibility contract: recorded JSON artifacts embed per-cell
// seeds, so the derivation must never drift silently.
func TestSeedStability(t *testing.T) {
	got := Seed(2006, "fig1/heterogeneous/platform=000")
	if got2 := Seed(2006, "fig1/heterogeneous/platform=000"); got != got2 {
		t.Fatalf("Seed not deterministic: %d vs %d", got, got2)
	}
	// Distinct keys and distinct roots must decorrelate.
	seen := map[int64]string{}
	for root := int64(0); root < 4; root++ {
		for i := 0; i < 64; i++ {
			key := fmt.Sprintf("exp/cell=%03d", i)
			s := Seed(root, key)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: root=%d %s vs %s", root, key, prev)
			}
			seen[s] = fmt.Sprintf("root=%d %s", root, key)
		}
	}
}

// TestRNGIndependence verifies that two cells' generators produce streams
// independent of evaluation order — the property the whole parallel
// determinism story rests on.
func TestRNGIndependence(t *testing.T) {
	draw := func(key string) []float64 {
		rng := RNG(7, key)
		out := make([]float64, 5)
		for i := range out {
			out[i] = rng.Float64()
		}
		return out
	}
	a1 := draw("cell/a")
	_ = draw("cell/b") // interleave another cell
	a2 := draw("cell/a")
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("cell/a stream changed after drawing cell/b: %v vs %v", a1, a2)
	}
}

// TestMapDeterminism runs the same seeded workload with 1, 4 and
// GOMAXPROCS workers and requires bit-identical outputs.
func TestMapDeterminism(t *testing.T) {
	const n = 64
	work := func(i int) ([]float64, error) {
		rng := RNG(42, fmt.Sprintf("det/cell=%03d", i))
		out := make([]float64, 32)
		for k := range out {
			out[k] = rng.NormFloat64()
		}
		return out, nil
	}
	ref, err := Map(1, n, work)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := Map(workers, n, work)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d diverged from serial", workers)
		}
	}
}

// TestMapOrderAndCoverage checks each index runs exactly once and results
// land at their own index.
func TestMapOrderAndCoverage(t *testing.T) {
	const n = 100
	var calls atomic.Int64
	got, err := Map(8, n, func(i int) (int, error) {
		calls.Add(1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("fn called %d times, want %d", calls.Load(), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d got %d", i, v)
		}
	}
}

// TestMapErrorsAndPanics: errors are joined and panics are converted into
// errors naming the failing cell instead of killing the process.
func TestMapErrorsAndPanics(t *testing.T) {
	_, err := Map(4, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, fmt.Errorf("cell three failed")
		case 7:
			panic("cell seven exploded")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{"cell three failed", "cell 7 panicked", "cell seven exploded"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q:\n%v", want, err)
		}
	}
}

// TestMapEmptyAndOversized covers the edges: zero cells and more workers
// than cells.
func TestMapEmptyAndOversized(t *testing.T) {
	if got, err := Map(4, 0, func(int) (int, error) { return 1, nil }); err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v %v", got, err)
	}
	got, err := Map(64, 3, func(i int) (int, error) { return i, nil })
	if err != nil || !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("oversized pool: %v %v", got, err)
	}
}

// TestResultCanonicalJSON: two results that differ only in Meta encode to
// identical canonical JSON.
func TestResultCanonicalJSON(t *testing.T) {
	build := func(workers int, wall float64) Result {
		r := Result{
			Experiment: "unit",
			Params:     map[string]any{"tasks": 10},
			RootSeed:   5,
			Meta:       &Meta{Workers: workers, WallSeconds: wall},
		}
		for i := 0; i < 3; i++ {
			c := NewCell(5, fmt.Sprintf("unit/cell=%d", i))
			c.Values["LS/makespan"] = float64(i) + 0.5
			r.Cells = append(r.Cells, c)
		}
		r.Summarize()
		return r
	}
	a, err := EncodeJSON(build(1, 0.9).Canonical())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeJSON(build(16, 0.1).Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("canonical JSON differs:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(string(a), `"LS/makespan"`) {
		t.Errorf("JSON missing value key:\n%s", a)
	}
	full, err := EncodeJSON(build(16, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(full), `"workers": 16`) {
		t.Errorf("full JSON missing meta:\n%s", full)
	}
}

// TestSummarize aggregates per-key across cells.
func TestSummarize(t *testing.T) {
	r := Result{RootSeed: 1}
	for i, v := range []float64{1, 2, 3} {
		c := NewCell(1, fmt.Sprintf("s/cell=%d", i))
		c.Values["x"] = v
		r.Cells = append(r.Cells, c)
	}
	r.Summarize()
	if s := r.Summaries["x"]; s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary %+v", s)
	}
	if keys := r.ValueKeys(); !reflect.DeepEqual(keys, []string{"x"}) {
		t.Fatalf("keys %v", keys)
	}
}

// BenchmarkMapOverhead measures the pool's fixed cost per cell against
// trivially small work units.
func BenchmarkMapOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Map(0, 256, func(i int) (float64, error) {
			rng := rand.New(rand.NewSource(int64(i)))
			return rng.Float64(), nil
		})
	}
}
