// Package runner is the deterministic parallel experiment engine behind
// internal/experiment and the CLIs. It solves the one problem every sweep
// in this repository shares: fanning (class × scheduler × platform-
// replicate) cells out over a worker pool without the worker count or the
// goroutine schedule ever changing a result.
//
// The contract (DESIGN.md §5) has two halves:
//
//   - Seeding. No cell ever reads from a shared random stream. Each cell
//     derives its own rand.Source from Seed(rootSeed, shardKey), where the
//     shard key is a stable string such as "fig1/heterogeneous/platform=003".
//     Two consequences: cells are order-independent (a cell's draws do not
//     depend on which cells ran before it), and sweeps are filter-stable
//     (running a subset of schedulers or classes reproduces exactly the
//     cells the full sweep would have produced for those coordinates).
//
//   - Execution. Map runs one function per index over a bounded pool and
//     writes results into a slice by index. Workers only race on the
//     work-queue counter; outputs land in distinct elements, so the result
//     is a pure function of (rootSeed, cell definitions) and bit-identical
//     for 1, 4, or GOMAXPROCS workers.
package runner

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Seed derives a cell seed from the experiment's root seed and the cell's
// shard key, via FNV-1a over the root's little-endian bytes followed by
// the key bytes. The derivation is part of the repository's reproducibility
// contract: changing it invalidates every recorded JSON artifact, so it is
// pinned by golden constants in seed_test.go (TestSeedGolden).
func Seed(root int64, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(root))
	h.Write(b[:])
	h.Write([]byte(key))
	return int64(h.Sum64())
}

// RNG returns a fresh generator seeded with Seed(root, key). Every cell
// (and every independent concern inside a cell — platform draw, workload
// draw) gets its own RNG under its own sub-key, never a shared stream.
func RNG(root int64, key string) *rand.Rand {
	return rand.New(rand.NewSource(Seed(root, key)))
}

// Workers normalizes a worker-count knob: values ≤ 0 select
// runtime.GOMAXPROCS(0), anything else is used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map evaluates fn(0..n-1) over a pool of workers and returns the results
// in index order. The output is identical for every worker count: each
// index writes only its own slot, and fn is expected to derive any
// randomness from Seed/RNG rather than shared state.
//
// A panic inside fn is recovered and reported as that index's error, so a
// failing cell in a 10 000-cell sweep surfaces as a diagnosable error
// instead of killing the process from a worker goroutine. All errors are
// joined; results at error indices are zero values.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = protect(fn, i)
		}
		return out, errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = protect(fn, i)
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

func protect[T any](fn func(int) (T, error), i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: cell %d panicked: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(i)
}
