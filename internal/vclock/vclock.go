// Package vclock is a deterministic virtual-time kernel for goroutine
// logical processes. Processes run one at a time under a cooperative
// scheduler: when the running process blocks (Sleep, Recv) control
// returns to the kernel, which resumes the next runnable process, and —
// when none is runnable — advances the virtual clock to the next timer or
// message delivery. Runs are bit-for-bit reproducible: no wall-clock time
// or goroutine scheduling nondeterminism can leak into results.
//
// The kernel provides timed message delivery (Post) and a per-process
// mailbox with deadline-bounded receive, which is exactly what the
// message-passing emulation in internal/mpi needs.
package vclock

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// procState enumerates the lifecycle of a logical process.
type procState int

const (
	ready procState = iota
	running
	sleeping  // wake at wakeAt
	receiving // waiting for mail, optionally with deadline wakeAt
	done
)

// Message is one mailbox entry.
type Message struct {
	From    int
	Tag     int
	Size    float64
	Payload any

	deliverAt float64
	seq       int
}

// Proc is the handle a logical process uses to interact with virtual
// time. It is only valid inside the function passed to Spawn.
type Proc struct {
	c    *Cluster
	id   int
	name string

	state   procState
	wakeAt  float64
	mailbox []Message
	resume  chan struct{}
	err     error
}

// ID returns the process identifier (its spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the process's label.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.c.now }

// Sleep blocks the process for d units of virtual time. Negative
// durations panic; zero yields without advancing time.
func (p *Proc) Sleep(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative sleep %v", d))
	}
	p.state = sleeping
	p.wakeAt = p.c.now + d
	p.yield()
}

// Post schedules a message for delivery into the process dst's mailbox
// after delay units of virtual time. It never blocks the caller.
//
// A message due at the current instant (delay 0) is delivered
// synchronously: by the time any process runs at time t, the kernel has
// already flushed every heap message with deliverAt <= t, so appending
// directly preserves the (deliverAt, seq) delivery order while making the
// message visible to same-instant polls. The live runtime's master
// (internal/live) depends on this to drain every completion posted at the
// current instant before consulting its scheduler, matching the
// discrete-event engine's drain-then-consult event ordering.
func (p *Proc) Post(dst int, msg Message, delay float64) {
	if delay < 0 {
		panic(fmt.Sprintf("vclock: negative delivery delay %v", delay))
	}
	msg.From = p.id
	msg.deliverAt = p.c.now + delay
	msg.seq = p.c.seq
	p.c.seq++
	if msg.deliverAt <= p.c.now {
		d := p.c.procs[dst]
		d.mailbox = append(d.mailbox, msg)
		if d.state == receiving {
			d.state = ready
		}
		return
	}
	heap.Push(&p.c.mail, msg2dst{msg: msg, dst: dst})
}

// Recv blocks until a message is available and returns the oldest one
// (by delivery time, then posting order).
func (p *Proc) Recv() Message {
	msg, ok := p.RecvDeadline(math.Inf(1))
	if !ok {
		panic("vclock: Recv returned without a message") // unreachable
	}
	return msg
}

// RecvDeadline blocks until a message is available or the virtual clock
// reaches the deadline, whichever comes first. It reports whether a
// message was received. A deadline at or before now polls the mailbox.
func (p *Proc) RecvDeadline(deadline float64) (Message, bool) {
	for {
		if len(p.mailbox) > 0 {
			msg := p.mailbox[0]
			p.mailbox = p.mailbox[1:]
			return msg, true
		}
		if deadline <= p.c.now {
			return Message{}, false
		}
		p.state = receiving
		p.wakeAt = deadline
		p.yield()
		if len(p.mailbox) == 0 && p.c.now >= deadline {
			return Message{}, false
		}
	}
}

// yield hands control back to the kernel until the process is resumed.
func (p *Proc) yield() {
	p.c.yielded <- p
	<-p.resume
}

// msg2dst pairs a message with its destination for the delivery heap.
type msg2dst struct {
	msg Message
	dst int
}

type mailHeap []msg2dst

func (h mailHeap) Len() int { return len(h) }
func (h mailHeap) Less(i, j int) bool {
	if h[i].msg.deliverAt != h[j].msg.deliverAt {
		return h[i].msg.deliverAt < h[j].msg.deliverAt
	}
	return h[i].msg.seq < h[j].msg.seq
}
func (h mailHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *mailHeap) Push(x any)   { *h = append(*h, x.(msg2dst)) }
func (h *mailHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Cluster is a set of logical processes sharing one virtual clock.
type Cluster struct {
	now     float64
	procs   []*Proc
	mail    mailHeap
	seq     int
	yielded chan *Proc
	started bool
}

// New creates an empty cluster at time 0.
func New() *Cluster {
	return &Cluster{yielded: make(chan *Proc)}
}

// Now returns the current virtual time.
func (c *Cluster) Now() float64 { return c.now }

// Spawn registers a logical process. All processes must be spawned before
// Run is called. The returned id addresses the process in Post.
func (c *Cluster) Spawn(name string, fn func(p *Proc)) int {
	if c.started {
		panic("vclock: Spawn after Run")
	}
	p := &Proc{
		c:      c,
		id:     len(c.procs),
		name:   name,
		state:  ready,
		resume: make(chan struct{}),
	}
	c.procs = append(c.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				p.err = fmt.Errorf("vclock: process %q panicked: %v", p.name, r)
			}
			p.state = done
			c.yielded <- p
		}()
		fn(p)
	}()
	return p.id
}

// Run drives the cluster until every process finishes. It returns an
// error if a process panicked or if the system deadlocks (processes
// blocked forever with no pending timers or messages).
func (c *Cluster) Run() error {
	c.started = true
	for {
		// Resume every ready process, one at a time, in id order.
		progress := true
		for progress {
			progress = false
			for _, p := range c.procs {
				if p.state != ready {
					continue
				}
				p.state = running
				p.resume <- struct{}{}
				<-c.yielded
				if p.err != nil {
					return p.err
				}
				progress = true
			}
		}

		// Nothing runnable: advance the clock to the next timer or
		// delivery.
		next := math.Inf(1)
		for _, p := range c.procs {
			if p.state == sleeping || p.state == receiving {
				if p.wakeAt < next {
					next = p.wakeAt
				}
			}
		}
		if len(c.mail) > 0 && c.mail[0].msg.deliverAt < next {
			next = c.mail[0].msg.deliverAt
		}
		if math.IsInf(next, 1) {
			remaining := c.blockedNames()
			if len(remaining) == 0 {
				return nil // all done
			}
			return fmt.Errorf("vclock: deadlock at t=%v, blocked: %v", c.now, remaining)
		}
		if next < c.now {
			next = c.now
		}
		c.now = next

		// Deliver all mail due now; wake receivers.
		for len(c.mail) > 0 && c.mail[0].msg.deliverAt <= c.now {
			d := heap.Pop(&c.mail).(msg2dst)
			dst := c.procs[d.dst]
			dst.mailbox = append(dst.mailbox, d.msg)
			if dst.state == receiving {
				dst.state = ready
			}
		}
		// Wake expired sleepers and receive deadlines.
		for _, p := range c.procs {
			if (p.state == sleeping || p.state == receiving) && p.wakeAt <= c.now {
				p.state = ready
			}
		}
	}
}

func (c *Cluster) blockedNames() []string {
	var names []string
	for _, p := range c.procs {
		if p.state != done {
			names = append(names, fmt.Sprintf("%s(%d) state=%d wakeAt=%v mailbox=%d",
				p.name, p.id, p.state, p.wakeAt, len(p.mailbox)))
		}
	}
	sort.Strings(names)
	return names
}
