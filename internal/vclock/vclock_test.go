package vclock

import (
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSleepAdvancesClock(t *testing.T) {
	c := New()
	var woke float64
	c.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3.5)
		woke = p.Now()
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 3.5 {
		t.Fatalf("woke at %v", woke)
	}
	if c.Now() != 3.5 {
		t.Fatalf("cluster clock %v", c.Now())
	}
}

func TestInterleavedSleepers(t *testing.T) {
	c := New()
	var order []string
	log := func(s string) { order = append(order, s) }
	c.Spawn("a", func(p *Proc) {
		p.Sleep(1)
		log("a@1")
		p.Sleep(2)
		log("a@3")
	})
	c.Spawn("b", func(p *Proc) {
		p.Sleep(2)
		log("b@2")
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a@1,b@2,a@3"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
}

func TestSimultaneousWakesOrderedByID(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.Spawn("p", func(p *Proc) {
			p.Sleep(1)
			order = append(order, i)
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order %v", order)
		}
	}
}

func TestPostAndRecv(t *testing.T) {
	c := New()
	var got Message
	var at float64
	receiver := c.Spawn("rx", func(p *Proc) {
		got = p.Recv()
		at = p.Now()
	})
	c.Spawn("tx", func(p *Proc) {
		p.Sleep(1)
		p.Post(receiver, Message{Tag: 7, Size: 64, Payload: "hi"}, 2.5)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 3.5 {
		t.Fatalf("received at %v, want 3.5", at)
	}
	if got.Tag != 7 || got.Size != 64 || got.Payload != "hi" || got.From != 1 {
		t.Fatalf("message %+v", got)
	}
}

func TestRecvDeadlineExpires(t *testing.T) {
	c := New()
	var ok bool
	var at float64
	c.Spawn("rx", func(p *Proc) {
		_, ok = p.RecvDeadline(4)
		at = p.Now()
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("received a message from nowhere")
	}
	if at != 4 {
		t.Fatalf("deadline returned at %v", at)
	}
}

func TestRecvDeadlinePolls(t *testing.T) {
	c := New()
	rx := c.Spawn("rx", func(p *Proc) {
		// Poll: deadline == now, empty mailbox.
		if _, ok := p.RecvDeadline(p.Now()); ok {
			t.Error("poll on empty mailbox succeeded")
		}
		p.Sleep(2)
		// Message was delivered at t=1 while sleeping; poll must see it.
		if _, ok := p.RecvDeadline(p.Now()); !ok {
			t.Error("poll missed a delivered message")
		}
	})
	c.Spawn("tx", func(p *Proc) {
		p.Post(rx, Message{Tag: 1}, 1)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMessagesDeliveredInOrder(t *testing.T) {
	c := New()
	var tags []int
	rx := c.Spawn("rx", func(p *Proc) {
		for i := 0; i < 3; i++ {
			tags = append(tags, p.Recv().Tag)
		}
	})
	c.Spawn("tx", func(p *Proc) {
		p.Post(rx, Message{Tag: 3}, 3)
		p.Post(rx, Message{Tag: 1}, 1)
		p.Post(rx, Message{Tag: 2}, 2)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if tags[0] != 1 || tags[1] != 2 || tags[2] != 3 {
		t.Fatalf("delivery order %v", tags)
	}
}

func TestSimultaneousDeliveriesKeepPostOrder(t *testing.T) {
	c := New()
	var tags []int
	rx := c.Spawn("rx", func(p *Proc) {
		for i := 0; i < 3; i++ {
			tags = append(tags, p.Recv().Tag)
		}
	})
	c.Spawn("tx", func(p *Proc) {
		p.Post(rx, Message{Tag: 10}, 1)
		p.Post(rx, Message{Tag: 11}, 1)
		p.Post(rx, Message{Tag: 12}, 1)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if tags[0] != 10 || tags[1] != 11 || tags[2] != 12 {
		t.Fatalf("tie order %v", tags)
	}
}

func TestDeadlockDetected(t *testing.T) {
	c := New()
	c.Spawn("stuck", func(p *Proc) {
		p.Recv() // nobody will ever send
	})
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("deadlock not reported: %v", err)
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("blocked process not named: %v", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	c := New()
	c.Spawn("boom", func(p *Proc) {
		panic("kaboom")
	})
	err := c.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not propagated: %v", err)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	c := New()
	c.Spawn("bad", func(p *Proc) {
		p.Sleep(-1)
	})
	if err := c.Run(); err == nil {
		t.Fatal("negative sleep accepted")
	}
}

func TestZeroSleepYields(t *testing.T) {
	c := New()
	steps := 0
	c.Spawn("z", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(0)
			steps++
		}
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 10 || c.Now() != 0 {
		t.Fatalf("steps=%d now=%v", steps, c.Now())
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	c := New()
	c.Spawn("a", func(p *Proc) {})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn after Run accepted")
		}
	}()
	c.Spawn("late", func(p *Proc) {})
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		c := New()
		var trace []float64
		rx := c.Spawn("rx", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Recv()
				trace = append(trace, p.Now())
			}
		})
		for w := 0; w < 4; w++ {
			w := w
			c.Spawn("tx", func(p *Proc) {
				for i := 0; i < 5; i++ {
					p.Sleep(float64(w+1) * 0.7)
					p.Post(rx, Message{Tag: w}, 0.3)
				}
			})
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestManyProcessesProgress(t *testing.T) {
	c := New()
	var total atomic.Int64
	for i := 0; i < 100; i++ {
		c.Spawn("w", func(p *Proc) {
			for k := 0; k < 50; k++ {
				p.Sleep(0.1)
			}
			total.Add(1)
		})
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 100 {
		t.Fatalf("%d processes finished", total.Load())
	}
	if math.Abs(c.Now()-5) > 1e-9 {
		t.Fatalf("clock %v, want 5", c.Now())
	}
}

func TestImmediateDeliveryVisibleToSameInstantPoll(t *testing.T) {
	c := New()
	var sawAt float64 = -1
	rx := c.Spawn("rx", func(p *Proc) {
		// Wake at t=2 alongside tx, then yield once so tx (higher id,
		// resumed later in the sweep) posts its delay-0 message; the poll
		// at the same instant must see it.
		p.Sleep(2)
		p.Sleep(0)
		if _, ok := p.RecvDeadline(p.Now()); ok {
			sawAt = p.Now()
		}
	})
	c.Spawn("tx", func(p *Proc) {
		p.Sleep(2)
		p.Post(rx, Message{Tag: 7}, 0)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if sawAt != 2 {
		t.Fatalf("same-instant poll saw the message at %v, want 2", sawAt)
	}
}

func TestImmediateDeliveryWakesReceiver(t *testing.T) {
	c := New()
	var gotTag int
	var gotAt float64
	rx := c.Spawn("rx", func(p *Proc) {
		m := p.Recv()
		gotTag, gotAt = m.Tag, p.Now()
	})
	c.Spawn("tx", func(p *Proc) {
		p.Sleep(1.5)
		p.Post(rx, Message{Tag: 9}, 0)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if gotTag != 9 || gotAt != 1.5 {
		t.Fatalf("got tag %d at %v, want 9 at 1.5", gotTag, gotAt)
	}
}

func TestImmediateDeliveryKeepsHeapOrder(t *testing.T) {
	// A message posted earlier with a positive delay and one posted at its
	// delivery instant with delay 0 must be received in (deliverAt, seq)
	// order: the heap message was flushed when the clock reached t, before
	// any process ran, so the delay-0 append lands after it.
	c := New()
	var tags []int
	rx := c.Spawn("rx", func(p *Proc) {
		for i := 0; i < 2; i++ {
			m := p.Recv()
			tags = append(tags, m.Tag)
		}
	})
	c.Spawn("early", func(p *Proc) {
		p.Post(rx, Message{Tag: 1}, 3) // posted at t=0, due t=3: seq 0
	})
	c.Spawn("late", func(p *Proc) {
		p.Sleep(3)
		p.Post(rx, Message{Tag: 2}, 0) // posted at t=3: seq 1
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tags) != 2 || tags[0] != 1 || tags[1] != 2 {
		t.Fatalf("delivery order %v, want [1 2]", tags)
	}
}
