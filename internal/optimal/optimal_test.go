package optimal

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func inst(c, p []float64, releases ...float64) core.Instance {
	return core.NewInstance(core.NewPlatform(c, p), core.ReleasesAt(releases...))
}

func TestTheorem1Optima(t *testing.T) {
	// Platform of Theorem 1: c = 1, p1 = 3, p2 = 7. The proof quotes the
	// optimal makespans 4 (one task), 7 (tasks at 0 and c) and 8 (tasks at
	// 0, c, 2c).
	c, p := []float64{1, 1}, []float64{3, 7}
	cases := []struct {
		releases []float64
		want     float64
	}{
		{[]float64{0}, 4},
		{[]float64{0, 1}, 7},
		{[]float64{0, 1, 2}, 8},
	}
	for _, tc := range cases {
		got := Solve(inst(c, p, tc.releases...), core.Makespan)
		if math.Abs(got.Value-tc.want) > 1e-9 {
			t.Errorf("releases %v: optimal makespan %v, want %v (assignment %v)",
				tc.releases, got.Value, tc.want, got.Assignment)
		}
	}
}

func TestTheorem2Optima(t *testing.T) {
	// Platform of Theorem 2: p1 = 2, p2 = 4√2−2, c = 1. The proof quotes
	// optimal sum-flows 3, 7 and 5+4√2.
	p2 := 4*math.Sqrt2 - 2
	c, p := []float64{1, 1}, []float64{2, p2}
	cases := []struct {
		releases []float64
		want     float64
	}{
		{[]float64{0}, 3},
		{[]float64{0, 1}, 7},
		{[]float64{0, 1, 2}, 5 + 4*math.Sqrt2},
	}
	for _, tc := range cases {
		got := Solve(inst(c, p, tc.releases...), core.SumFlow)
		if math.Abs(got.Value-tc.want) > 1e-9 {
			t.Errorf("releases %v: optimal sum-flow %v, want %v", tc.releases, got.Value, tc.want)
		}
	}
}

func TestTheorem6Optimum(t *testing.T) {
	// Theorem 6: c = (1, 2), p = 3; tasks at 0, 2, 2, 2. The proof derives
	// an optimal sum-flow of 22 (schedule P2, P1, P2, P1).
	got := Solve(inst([]float64{1, 2}, []float64{3, 3}, 0, 2, 2, 2), core.SumFlow)
	if math.Abs(got.Value-22) > 1e-9 {
		t.Fatalf("optimal sum-flow %v, want 22 (assignment %v)", got.Value, got.Assignment)
	}
}

func TestTheorem4Optimum(t *testing.T) {
	// Theorem 4 with p = 5: c = (1, p/2); tasks at 0, p/2, p/2, p/2.
	// The proof's reference schedule (P2, P1, P2, P1) reaches 1 + 5p/2.
	p := 5.0
	got := Solve(inst([]float64{1, p / 2}, []float64{p, p}, 0, p/2, p/2, p/2), core.Makespan)
	if got.Value > 1+5*p/2+1e-9 {
		t.Fatalf("optimal makespan %v, want ≤ %v", got.Value, 1+5*p/2)
	}
}

func TestTheorem5MaxFlowOptimum(t *testing.T) {
	// Theorem 5 with ε = 0.01: c1 = ε, c2 = 1, p = 2 − ε; tasks at 0 and
	// three at τ = 1 − ε. The proof's reference schedule achieves max-flow 4.
	eps := 0.01
	c1, c2 := eps, 1.0
	p := 2*c2 - c1
	tau := c2 - c1
	got := Solve(inst([]float64{c1, c2}, []float64{p, p}, 0, tau, tau, tau), core.MaxFlow)
	if got.Value > 4+1e-9 {
		t.Fatalf("optimal max-flow %v, want ≤ 4", got.Value)
	}
}

func TestEvaluateProducesValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		pl := core.Random(rng, core.Classes[rng.Intn(4)], core.GenConfig{M: 1 + rng.Intn(3)})
		n := 1 + rng.Intn(6)
		releases := make([]float64, n)
		for i := range releases {
			releases[i] = rng.Float64() * 5
		}
		in := core.NewInstance(pl, core.ReleasesAt(releases...))
		assignment := make([]int, n)
		for i := range assignment {
			assignment[i] = rng.Intn(pl.M())
		}
		s := Evaluate(in, assignment)
		if err := core.ValidateSchedule(s); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveBeatsOrMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		pl := core.Random(rng, core.Heterogeneous, core.GenConfig{M: 2 + rng.Intn(2)})
		n := 2 + rng.Intn(5)
		releases := make([]float64, n)
		for i := range releases {
			releases[i] = rng.Float64() * 3
		}
		in := core.NewInstance(pl, core.ReleasesAt(releases...))
		for _, obj := range core.Objectives {
			res := Solve(in, obj)
			greedy := obj.Value(Evaluate(in, greedyAssignment(in)))
			if res.Value > greedy+1e-9 {
				t.Fatalf("trial %d %v: optimum %v worse than greedy %v", trial, obj, res.Value, greedy)
			}
			if err := core.ValidateSchedule(res.Schedule); err != nil {
				t.Fatalf("trial %d: optimal schedule invalid: %v", trial, err)
			}
			if math.Abs(obj.Value(res.Schedule)-res.Value) > 1e-9 {
				t.Fatalf("trial %d: reported value %v but schedule evaluates to %v",
					trial, res.Value, obj.Value(res.Schedule))
			}
		}
	}
}

// solveExhaustiveWithPermutations enumerates task-to-position mappings as
// well as machine assignments, dropping the FIFO-is-lossless assumption.
// Solve relies on that exchange argument; this reference implementation
// verifies it on small instances.
func solveExhaustiveWithPermutations(in core.Instance, obj core.Objective) float64 {
	n := len(in.Tasks)
	m := in.Platform.M()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	assign := make([]int, n)
	var tryAssign func(k int)
	evalPerm := func() {
		port := 0.0
		ready := make([]float64, m)
		val := 0.0
		for k := 0; k < n; k++ {
			task := in.Tasks[perm[k]]
			j := assign[k]
			sendStart := math.Max(port, task.Release)
			arrive := sendStart + in.Platform.C[j]
			complete := math.Max(arrive, ready[j]) + in.Platform.P[j]
			port = arrive
			ready[j] = complete
			switch obj {
			case core.Makespan:
				val = math.Max(val, complete)
			case core.MaxFlow:
				val = math.Max(val, complete-task.Release)
			case core.SumFlow:
				val += complete - task.Release
			}
		}
		if val < best {
			best = val
		}
	}
	tryAssign = func(k int) {
		if k == n {
			evalPerm()
			return
		}
		for j := 0; j < m; j++ {
			assign[k] = j
			tryAssign(k + 1)
		}
	}
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			tryAssign(0)
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(0)
	return best
}

func TestFIFOOrderIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		pl := core.Random(rng, core.Classes[rng.Intn(4)], core.GenConfig{M: 2})
		n := 2 + rng.Intn(3) // up to 4 tasks: 4! × 2^4 mappings
		releases := make([]float64, n)
		for i := range releases {
			releases[i] = rng.Float64() * 4
		}
		in := core.NewInstance(pl, core.ReleasesAt(releases...))
		for _, obj := range core.Objectives {
			fifo := Solve(in, obj).Value
			exhaustive := solveExhaustiveWithPermutations(in, obj)
			if fifo > exhaustive+1e-9 {
				t.Fatalf("trial %d %v: FIFO optimum %v beaten by permuted %v on %v releases %v",
					trial, obj, fifo, exhaustive, pl, releases)
			}
		}
	}
}

func TestSolveAllConsistent(t *testing.T) {
	in := inst([]float64{1, 1}, []float64{3, 7}, 0, 1, 2)
	all := SolveAll(in)
	if len(all) != 3 {
		t.Fatalf("%d objectives solved", len(all))
	}
	for obj, res := range all {
		direct := Solve(in, obj)
		if math.Abs(direct.Value-res.Value) > 1e-12 {
			t.Errorf("%v: SolveAll %v != Solve %v", obj, res.Value, direct.Value)
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	in := core.Instance{Platform: core.NewPlatform([]float64{1}, []float64{1})}
	res := Solve(in, core.Makespan)
	if res.Value != 0 || len(res.Assignment) != 0 {
		t.Fatalf("empty instance result: %+v", res)
	}
}

func TestPerturbedRejected(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{1})
	in := core.NewInstance(pl, []core.Task{{Release: 0, CommScale: 1.1, CompScale: 1}})
	defer func() {
		if recover() == nil {
			t.Fatal("perturbed instance accepted")
		}
	}()
	Solve(in, core.Makespan)
}

func TestTooLargeRejected(t *testing.T) {
	pl := core.NewPlatform(make5(1), make5(1))
	in := core.NewInstance(pl, core.Bag(20))
	defer func() {
		if recover() == nil {
			t.Fatal("oversized instance accepted")
		}
	}()
	Solve(in, core.Makespan)
}

func make5(v float64) []float64 { return []float64{v, v, v, v, v} }

func BenchmarkSolveMakespan8Tasks(b *testing.B) {
	in := inst([]float64{1, 1, 1}, []float64{2, 3, 5}, 0, 0, 0, 0, 1, 1, 2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Solve(in, core.Makespan)
	}
}
