// Package optimal computes exact offline optima for the paper's
// scheduling problems. It is the denominator of every competitive ratio:
// the adversary framework divides an algorithm's on-line objective value
// by the optimum computed here with full knowledge of the instance.
//
// For identical tasks under the one-port model, an exchange argument
// reduces offline optimization to choosing an assignment sequence: tasks
// are interchangeable, so sending them in release (FIFO) order is lossless,
// and for a fixed assignment sequence the as-soon-as-possible schedule
// minimizes every completion time simultaneously, hence every regular
// objective. The solver therefore enumerates the m^n assignment sequences
// with branch-and-bound pruning.
package optimal

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// MaxStates caps the enumeration size (m^n) accepted by Solve; beyond it
// the exact solver would be impractically slow and callers should use a
// heuristic bound instead.
const MaxStates = 50_000_000

// Result is an exact optimum: the objective value, one optimal assignment
// sequence (slave of the k-th send in FIFO order), and its full schedule.
type Result struct {
	Value      float64
	Assignment []int
	Schedule   core.Schedule
}

// Solve returns the exact offline optimum of the objective on the
// instance. It panics if the instance carries perturbed task sizes (the
// identical-task exchange argument would not apply) or if m^n exceeds
// MaxStates.
func Solve(inst core.Instance, obj core.Objective) Result {
	checkInstance(inst)
	n := len(inst.Tasks)
	m := inst.Platform.M()
	if math.Pow(float64(m), float64(n)) > MaxStates {
		panic(fmt.Sprintf("optimal: %d^%d assignment sequences exceed MaxStates", m, n))
	}
	if n == 0 {
		return Result{Schedule: core.Schedule{Instance: inst}}
	}

	// Seed the bound with a forward greedy (earliest finish) assignment.
	greedy := greedyAssignment(inst)
	best := Result{
		Value:      obj.Value(Evaluate(inst, greedy)),
		Assignment: greedy,
	}

	assign := make([]int, n)
	ready := make([]float64, m)
	var dfs func(i int, port, partial float64)
	dfs = func(i int, port, partial float64) {
		if partial >= best.Value-1e-12 {
			return // cannot strictly improve
		}
		if i == n {
			best.Value = partial
			best.Assignment = append(best.Assignment[:0], assign...)
			return
		}
		task := inst.Tasks[i]
		sendStart := math.Max(port, task.Release)
		for j := 0; j < m; j++ {
			arrive := sendStart + inst.Platform.C[j]
			start := math.Max(arrive, ready[j])
			complete := start + inst.Platform.P[j]
			next := partial
			switch obj {
			case core.Makespan:
				next = math.Max(partial, complete)
			case core.MaxFlow:
				next = math.Max(partial, complete-task.Release)
			case core.SumFlow:
				next = partial + (complete - task.Release)
			default:
				panic(fmt.Sprintf("optimal: unknown objective %v", obj))
			}
			saved := ready[j]
			ready[j] = complete
			assign[i] = j
			dfs(i+1, arrive, next)
			ready[j] = saved
		}
	}
	dfs(0, 0, 0)
	best.Schedule = Evaluate(inst, best.Assignment)
	return best
}

// SolveAll computes the optimum for each of the three objectives. Each
// objective generally requires a different schedule, so three independent
// searches run.
func SolveAll(inst core.Instance) map[core.Objective]Result {
	out := make(map[core.Objective]Result, len(core.Objectives))
	for _, obj := range core.Objectives {
		out[obj] = Solve(inst, obj)
	}
	return out
}

// Evaluate builds the as-soon-as-possible FIFO schedule for a fixed
// assignment sequence: the k-th released task is shipped to assignment[k]
// as soon as both the port is free and the task is released.
func Evaluate(inst core.Instance, assignment []int) core.Schedule {
	checkInstance(inst)
	if len(assignment) != len(inst.Tasks) {
		panic(fmt.Sprintf("optimal: %d assignments for %d tasks", len(assignment), len(inst.Tasks)))
	}
	m := inst.Platform.M()
	ready := make([]float64, m)
	port := 0.0
	records := make([]core.Record, len(inst.Tasks))
	for i, task := range inst.Tasks {
		j := assignment[i]
		if j < 0 || j >= m {
			panic(fmt.Sprintf("optimal: assignment %d out of range", j))
		}
		sendStart := math.Max(port, task.Release)
		arrive := sendStart + inst.Platform.C[j]
		start := math.Max(arrive, ready[j])
		complete := start + inst.Platform.P[j]
		port = arrive
		ready[j] = complete
		records[i] = core.Record{
			Task:      task.ID,
			Slave:     j,
			Release:   task.Release,
			SendStart: sendStart,
			Arrive:    arrive,
			Start:     start,
			Complete:  complete,
		}
	}
	return core.Schedule{Instance: inst, Records: records}
}

// greedyAssignment is the earliest-predicted-finish forward heuristic used
// to seed branch-and-bound.
func greedyAssignment(inst core.Instance) []int {
	m := inst.Platform.M()
	ready := make([]float64, m)
	port := 0.0
	out := make([]int, len(inst.Tasks))
	for i, task := range inst.Tasks {
		sendStart := math.Max(port, task.Release)
		best, bestFinish := 0, math.Inf(1)
		for j := 0; j < m; j++ {
			arrive := sendStart + inst.Platform.C[j]
			finish := math.Max(arrive, ready[j]) + inst.Platform.P[j]
			if finish < bestFinish {
				best, bestFinish = j, finish
			}
		}
		out[i] = best
		port = sendStart + inst.Platform.C[best]
		ready[best] = bestFinish
	}
	return out
}

func checkInstance(inst core.Instance) {
	for _, task := range inst.Tasks {
		if task.EffComm() != 1 || task.EffComp() != 1 {
			panic("optimal: exact solver requires identical (unperturbed) tasks")
		}
	}
}
