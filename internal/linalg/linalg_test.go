package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityDet(t *testing.T) {
	for _, n := range []int{1, 2, 5, 20} {
		if got := Identity(n).Det(); math.Abs(got-1) > 1e-12 {
			t.Errorf("det(I_%d) = %v", n, got)
		}
	}
}

func TestKnown2x2(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 8)
	m.Set(1, 0, 4)
	m.Set(1, 1, 6)
	if got := m.Det(); math.Abs(got-(-14)) > 1e-12 {
		t.Fatalf("det = %v, want -14", got)
	}
}

func TestKnown3x3(t *testing.T) {
	// det = 6·(-2−0) − 1·(8−0) + 1·(8−... use a fixed example: rows
	// (6,1,1),(4,-2,5),(2,8,7): det = -306.
	m := NewMatrix(3)
	vals := []float64{6, 1, 1, 4, -2, 5, 2, 8, 7}
	copy(m.Data, vals)
	if got := m.Det(); math.Abs(got-(-306)) > 1e-9 {
		t.Fatalf("det = %v, want -306", got)
	}
}

func TestSingular(t *testing.T) {
	m := NewMatrix(3)
	for j := 0; j < 3; j++ {
		m.Set(0, j, float64(j+1))
		m.Set(1, j, 2*float64(j+1)) // row 1 = 2 × row 0
		m.Set(2, j, float64(j*j))
	}
	if got := m.Det(); got != 0 {
		t.Fatalf("singular det = %v", got)
	}
}

func TestPivotingHandlesZeroLeading(t *testing.T) {
	// Leading zero forces a row swap; det of [[0,1],[1,0]] = -1.
	m := NewMatrix(2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	if got := m.Det(); math.Abs(got-(-1)) > 1e-12 {
		t.Fatalf("det = %v, want -1", got)
	}
}

func TestTriangularDetIsDiagonalProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 6
	m := NewMatrix(n)
	want := 1.0
	for i := 0; i < n; i++ {
		d := rng.Float64()*4 - 2
		if math.Abs(d) < 0.1 {
			d = 0.5
		}
		m.Set(i, i, d)
		want *= d
		for j := i + 1; j < n; j++ {
			m.Set(i, j, rng.Float64())
		}
	}
	if got := m.Det(); math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("det = %v, want %v", got, want)
	}
}

// Property: det(A·B) = det(A)·det(B).
func TestDetMultiplicativeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 2
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		a := RandomMatrix(r, n)
		b := RandomMatrix(r, n)
		lhs := a.Mul(b).Det()
		rhs := a.Det() * b.Det()
		scale := math.Max(1, math.Max(math.Abs(lhs), math.Abs(rhs)))
		return math.Abs(lhs-rhs) < 1e-8*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDetTransposeInvariantViaPermutation(t *testing.T) {
	// Swapping two rows negates the determinant.
	rng := rand.New(rand.NewSource(7))
	m := RandomMatrix(rng, 5)
	d := m.Det()
	swapped := m.Clone()
	for j := 0; j < 5; j++ {
		swapped.Data[0*5+j], swapped.Data[3*5+j] = swapped.Data[3*5+j], swapped.Data[0*5+j]
	}
	if got := swapped.Det(); math.Abs(got+d) > 1e-9*math.Max(1, math.Abs(d)) {
		t.Fatalf("row swap: det %v, want %v", got, -d)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Identity(3)
	cp := m.Clone()
	cp.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases memory")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := RandomMatrix(rng, 4)
	prod := a.Mul(Identity(4))
	for i := range a.Data {
		if math.Abs(prod.Data[i]-a.Data[i]) > 1e-12 {
			t.Fatal("A·I ≠ A")
		}
	}
}

func TestCostModels(t *testing.T) {
	if got := DetFlops(30); math.Abs(got-2*27000/3.0) > 1e-9 {
		t.Fatalf("DetFlops(30) = %v", got)
	}
	if got := Bytes(10); got != 800 {
		t.Fatalf("Bytes(10) = %v", got)
	}
}

func TestSizeGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size matrix accepted")
		}
	}()
	NewMatrix(0)
}

func TestMulSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch accepted")
		}
	}()
	Identity(2).Mul(Identity(3))
}

func BenchmarkDet30(b *testing.B) {
	m := RandomMatrix(rand.New(rand.NewSource(1)), 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Det()
	}
}
