// Package linalg provides the dense linear algebra used as the task
// payload of the paper's experiments: each task ships a matrix to a slave
// which computes its determinant. Determinants are computed by LU
// factorization with partial pivoting.
package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense square row-major matrix.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix allocates an N×N zero matrix.
func NewMatrix(n int) Matrix {
	if n <= 0 {
		panic(fmt.Sprintf("linalg: size %d", n))
	}
	return Matrix{N: n, Data: make([]float64, n*n)}
}

// Identity returns the N×N identity.
func Identity(n int) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// RandomMatrix draws entries uniformly from [-1, 1).
func RandomMatrix(rng *rand.Rand, n int) Matrix {
	m := NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// At returns element (i, j).
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone deep-copies the matrix.
func (m Matrix) Clone() Matrix {
	return Matrix{N: m.N, Data: append([]float64(nil), m.Data...)}
}

// Mul returns the matrix product m·other.
func (m Matrix) Mul(other Matrix) Matrix {
	if m.N != other.N {
		panic(fmt.Sprintf("linalg: size mismatch %d vs %d", m.N, other.N))
	}
	out := NewMatrix(m.N)
	for i := 0; i < m.N; i++ {
		for k := 0; k < m.N; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < m.N; j++ {
				out.Data[i*m.N+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// Det computes the determinant by in-place LU factorization with partial
// pivoting on a copy of the matrix. Singular matrices return 0.
func (m Matrix) Det() float64 {
	n := m.N
	a := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		// Partial pivot: the largest magnitude in this column.
		pivot := col
		best := math.Abs(a.At(col, col))
		for row := col + 1; row < n; row++ {
			if v := math.Abs(a.At(row, col)); v > best {
				pivot, best = row, v
			}
		}
		if best == 0 {
			return 0
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.Data[col*n+j], a.Data[pivot*n+j] = a.Data[pivot*n+j], a.Data[col*n+j]
			}
			det = -det
		}
		det *= a.At(col, col)
		inv := 1 / a.At(col, col)
		for row := col + 1; row < n; row++ {
			f := a.At(row, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Data[row*n+j] -= f * a.Data[col*n+j]
			}
		}
	}
	return det
}

// DetFlops estimates the floating-point work of Det for an n×n matrix:
// the 2n³/3 leading term of LU factorization. The emulation charges this
// against a slave's speed to derive virtual computation time.
func DetFlops(n int) float64 {
	nf := float64(n)
	return 2 * nf * nf * nf / 3
}

// Bytes returns the wire size of an n×n float64 matrix, used by the
// emulation to derive virtual communication time.
func Bytes(n int) float64 {
	return 8 * float64(n) * float64(n)
}
