// Package live is the concurrent master–slave runtime: it executes the
// unmodified sim.Scheduler implementations against goroutine-backed
// slaves instead of the discrete-event simulator. The master is a single
// actor that serializes all scheduling state (the paper's one-port
// communication model falls out of the master blocking for each
// transfer); slaves are workers that "execute" a task by sleeping its
// communication-plus-computation cost on a pluggable clock; jobs stream
// in at any moment from concurrent producers.
//
// Two substrates implement the same World contract:
//
//   - NewRealTime(speedup) runs on the wall clock (optionally scaled), with
//     one goroutine per actor. This is what the schedd daemon serves from.
//   - NewVirtual() runs on the deterministic virtual-time kernel of
//     internal/vclock. Under it, a live run reproduces the discrete-event
//     engine's dispatch decisions and schedule bit for bit — the
//     conformance suite in this package pins that property for every
//     paper heuristic and platform class, so the simulator and the
//     runtime can never drift apart.
//
// The master keeps its scheduler-facing bookkeeping in a sim.Driver, the
// same exported master-side surface the message-passing emulation uses,
// and produces an event log plus a core.Schedule, so trace.Analyze, the
// validity checks and the paper's objectives all apply to live runs.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
)

// JobSpec describes one submitted job. The zero value is a nominal task
// (scales of 1, matching core.Task semantics).
type JobSpec struct {
	// ID is assigned by the runtime at submission; caller-set values are
	// ignored.
	ID int
	// CommScale and CompScale perturb the job's actual costs (Figure-2
	// style); zero means 1.
	CommScale float64
	CompScale float64
}

// Config describes one live runtime.
type Config struct {
	// Platform gives the per-task costs of each slave. Required.
	Platform core.Platform
	// Scheduler is the serving policy — any sim.Scheduler. Required.
	Scheduler sim.Scheduler
	// World selects the substrate; nil means real time at speedup 1.
	World World
	// Sources are in-world job producers, spawned after the slaves and
	// before the master. A virtual world can only receive jobs from
	// Sources (external Submit would be nondeterministic); a real world
	// may freely mix Sources and Runtime.Submit.
	Sources []func(src *Source)
	// Observer, if set, receives every runtime event from inside the
	// master actor, in order. It must be fast and must not call back into
	// the Runtime.
	Observer func(Event)
	// EventLogCap bounds the retained event log: 0 (the default) keeps
	// every event — what Result, the conformance suites and the analysis
	// surfaces require — while a positive cap keeps only the newest
	// EventLogCap events in a preallocated ring, overwriting the oldest
	// and counting the overwritten in EventsDropped. Long-running serving
	// deployments (schedd) set a cap so the log stops growing with
	// uptime; the Observer still sees every event regardless.
	EventLogCap int
}

// Result is the outcome of a completed (drained) run.
type Result struct {
	// Schedule is the executed schedule: one record per admitted job, on
	// the instance the run actually served. Under the virtual clock it is
	// bit-identical to the engine's; under a wall clock the recorded
	// times are measurements.
	Schedule core.Schedule
	// Events is the full event log in master order.
	Events []Event
}

// Runtime is a running live master–slave system.
type Runtime struct {
	cfg   Config
	world World
	prog  *program

	mu sync.Mutex
	// nextID is the submission-order ID allocator. It only advances under
	// mu (submitters must not interleave IDs mid-batch), but it is an
	// atomic so Load can read it without the lock — the one field that
	// used to force the progress snapshot through the runtime mutex.
	nextID   atomic.Int64
	draining bool
	started  bool
	waited   bool
	waitErr  error
}

// New assembles a runtime: m slave actors (node IDs 0..m-1), then the
// configured sources, then the master (spawned last so that, under the
// virtual clock, every same-instant completion and submission is
// delivered before the master decides — the engine's drain-then-consult
// ordering).
func New(cfg Config) (*Runtime, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("live: config needs a scheduler")
	}
	if cfg.World == nil {
		cfg.World = NewRealTime(1)
	}
	rt := &Runtime{cfg: cfg, world: cfg.World}
	m := cfg.Platform.M()
	prog := newProgram(cfg)
	rt.prog = prog
	for j := 0; j < m; j++ {
		j := j
		prog.slaveID[j] = rt.world.Spawn(fmt.Sprintf("slave-%d", j), func(n Node) {
			prog.runSlave(j, n)
		})
	}
	for i, src := range cfg.Sources {
		src := src
		rt.world.Spawn(fmt.Sprintf("source-%d", i), func(n Node) {
			src(&Source{rt: rt, n: n})
		})
	}
	prog.masterID = rt.world.Spawn("master", prog.runMaster)
	return rt, nil
}

// Start launches the actors. On a virtual world execution is cooperative
// and actually happens inside Wait.
func (rt *Runtime) Start() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.started {
		return
	}
	rt.started = true
	rt.world.Start()
}

// Submit injects one job from outside the world and returns its ID. Jobs
// are admitted in submission order. Only real worlds accept external
// submissions; virtual worlds panic (use a Source).
func (rt *Runtime) Submit(spec JobSpec) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		panic("live: Submit after Drain")
	}
	spec.ID = int(rt.nextID.Add(1)) - 1
	rt.world.Post(rt.prog.masterID, Msg{Kind: msgSubmit, Task: spec.ID, Job: spec})
	return spec.ID
}

// SubmitBatch injects count identical jobs under one lock acquisition
// and returns their consecutive IDs in submission order. A service
// ingesting batched submissions (schedd's POST /jobs) previously took
// the runtime lock once per job, serializing concurrent producers on
// count lock round-trips per request; the batch path makes one batch
// one critical section while keeping the same per-job admission order.
func (rt *Runtime) SubmitBatch(spec JobSpec, count int) []int {
	if count <= 0 {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		panic("live: Submit after Drain")
	}
	ids := make([]int, count)
	for i := range ids {
		spec.ID = int(rt.nextID.Add(1)) - 1
		rt.world.Post(rt.prog.masterID, Msg{Kind: msgSubmit, Task: spec.ID, Job: spec})
		ids[i] = spec.ID
	}
	return ids
}

// SubmitSpecs injects a batch of heterogeneous jobs under one lock
// acquisition and returns the first assigned ID; the batch occupies the
// consecutive range [base, base+len(specs)) in submission order. This is
// the firehose admission path: a drained intake slab becomes exactly one
// runtime critical section, and returning only the range base keeps the
// call allocation-free regardless of batch size. The caller keeps
// ownership of specs; per-spec IDs are stamped on posted copies only.
// Only real worlds accept external submissions; virtual worlds panic
// (use Source.SubmitSpecs).
func (rt *Runtime) SubmitSpecs(specs []JobSpec) int {
	return rt.submitSpecs(rt.world.Post, specs)
}

// submitSpecs is the shared batched-admission core: one lock held across
// every post so concurrent submitters cannot interleave IDs mid-batch.
func (rt *Runtime) submitSpecs(post func(dst int, m Msg), specs []JobSpec) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		panic("live: Submit after Drain")
	}
	base := int(rt.nextID.Load())
	for i := range specs {
		sp := specs[i]
		sp.ID = int(rt.nextID.Add(1)) - 1
		post(rt.prog.masterID, Msg{Kind: msgSubmit, Task: sp.ID, Job: sp})
	}
	return base
}

// Load is a point-in-time progress snapshot of a runtime, cheap enough
// to poll per placement decision: Submitted counts jobs accepted by
// Submit/SubmitBatch/sources, Admitted those the master has enqueued
// (it may trail Submitted by in-flight mail), Dispatched those sent to
// a slave, Completed those finished.
type Load struct {
	Submitted  int `json:"submitted"`
	Admitted   int `json:"admitted"`
	Dispatched int `json:"dispatched"`
	Completed  int `json:"completed"`
	// Retracted counts jobs extracted by StealPending: accepted here,
	// migrated to (and eventually completed by) another runtime. They no
	// longer belong to this runtime's backlog or population.
	Retracted int `json:"retracted,omitempty"`
}

// QueueDepth is the number of accepted jobs not yet dispatched — the
// master-side backlog (including submissions still in the mailbox).
func (l Load) QueueDepth() int { return l.Submitted - l.Retracted - l.Dispatched }

// Outstanding is the number of accepted jobs not yet completed — the
// shard's total in-system population, the least-loaded placement signal.
func (l Load) Outstanding() int { return l.Submitted - l.Retracted - l.Completed }

// Load returns the current progress snapshot. Every counter is an
// atomic, so Load takes no lock at all and is safe to call from any
// goroutine at any moment — including per placement decision on a hot
// ingest path. Reading them in reverse causal order — completed,
// dispatched, admitted, submitted — makes every snapshot internally
// monotone (Completed ≤ Dispatched ≤ Admitted ≤ Submitted): each
// counter only grows, and a job reaches a later stage only after the
// earlier ones, so a stage read later can never be smaller than one
// read earlier.
func (rt *Runtime) Load() Load {
	// Retracted is read first: it only grows, and a stale (smaller) value
	// overstates QueueDepth/Outstanding — placement and steal policies
	// then err toward seeing more backlog here, never less.
	retracted := int(rt.prog.retracted.Load())
	completed := int(rt.prog.completed.Load())
	dispatched := int(rt.prog.dispatched.Load())
	admitted := int(rt.prog.admitted.Load())
	submitted := int(rt.nextID.Load())
	return Load{
		Submitted:  submitted,
		Admitted:   admitted,
		Dispatched: dispatched,
		Completed:  completed,
		Retracted:  retracted,
	}
}

// Pending returns the current queue depth (accepted, undispatched jobs)
// — what GET /healthz depth reporting and least-loaded placement read.
func (rt *Runtime) Pending() int { return rt.Load().QueueDepth() }

// EventsDropped returns how many events the bounded event log has
// overwritten (always 0 with EventLogCap 0). Exposed as a gauge by the
// serving layer so operators can see when the retained log no longer
// covers the full history.
func (rt *Runtime) EventsDropped() int64 { return rt.prog.eventsDropped() }

// StolenJob is one pending job extracted from a runtime by StealPending:
// the runtime-local ID it was admitted under (now permanently retracted
// there) plus the spec to re-admit it elsewhere.
type StolenJob struct {
	Local int
	Spec  JobSpec
}

// StealPending extracts up to n accepted-but-undispatched jobs from the
// BACK of the master's pending queue — the youngest backlog, the classic
// work-stealing-deque discipline (the owner dispatches the FIFO front,
// the thief takes the tail). It blocks for the master's reply: when it
// returns, the jobs are out of this runtime for good (the master
// retracted them inside its own actor before replying), so re-admitting
// them on another runtime can never double-dispatch.
//
// Returns nil when n <= 0, the runtime is draining or not yet started,
// or the world is virtual: deterministic worlds never steal — an
// external message would perturb the cooperative schedule, and the
// virtual substrate refuses outside posts. This is the structural half
// of the steal-rate-0 conformance contract: a virtual-clock run is
// bit-identical to the engine no matter what a rebalancer asks for.
func (rt *Runtime) StealPending(n int) []StolenJob {
	if n <= 0 {
		return nil
	}
	if _, virtual := rt.world.(*VirtualWorld); virtual {
		return nil
	}
	reply := make(chan []StolenJob, 1)
	rt.mu.Lock()
	if rt.draining || !rt.started {
		rt.mu.Unlock()
		return nil
	}
	// Posted under the runtime lock, like Submit: Drain also takes this
	// lock before posting msgDrain, so a steal that passed the draining
	// check is in the master's mailbox ahead of any drain message and is
	// always answered before the master exits.
	rt.world.Post(rt.prog.masterID, Msg{Kind: msgSteal, Count: n, StealReply: reply})
	rt.mu.Unlock()
	return <-reply
}

// Drain tells the master no more jobs are coming: it finishes everything
// outstanding, shuts the slaves down and exits. External counterpart of
// Source.Drain.
func (rt *Runtime) Drain() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		return
	}
	rt.draining = true
	rt.world.Post(rt.prog.masterID, Msg{Kind: msgDrain})
}

// submitFrom is the Source-side submission path: the ID counter is
// shared with external Submit, the message is posted by the source actor
// itself (never blocking, delivered at the current instant). The lock is
// held across the post — exactly like Submit — so concurrent submitters
// cannot deliver jobs to the master out of ID order. Submitting after
// any source or external caller has drained panics (surfaced as the
// world error): the master may already have exited, and a silently
// dropped job would corrupt the run's accounting.
func (rt *Runtime) submitFrom(n Node, spec JobSpec) int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.draining {
		panic("live: Submit after Drain")
	}
	spec.ID = int(rt.nextID.Add(1)) - 1
	n.Post(rt.prog.masterID, Msg{Kind: msgSubmit, Task: spec.ID, Job: spec})
	return spec.ID
}

// Wait blocks until the run completes (drained, or failed). It returns
// the substrate error, if any.
func (rt *Runtime) Wait() error {
	rt.Start()
	rt.mu.Lock()
	if rt.waited {
		defer rt.mu.Unlock()
		return rt.waitErr
	}
	rt.mu.Unlock()
	err := rt.world.Wait()
	rt.mu.Lock()
	rt.waited = true
	rt.waitErr = err
	rt.mu.Unlock()
	return err
}

// Result assembles the schedule and event log. Call it only after Wait
// has returned: the master actor owns this state while running.
func (rt *Runtime) Result() Result {
	if rt.prog.drv == nil {
		return Result{Events: rt.prog.events()}
	}
	return Result{Schedule: rt.prog.drv.Schedule(), Events: rt.prog.events()}
}

// Run is the one-call convenience wrapper: build, start, wait, collect.
// The workload must come from cfg.Sources.
func Run(cfg Config) (Result, error) {
	rt, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	rt.Start()
	if err := rt.Wait(); err != nil {
		return Result{}, err
	}
	if rt.prog.drv == nil || rt.prog.drv.Done()+rt.prog.drv.Retracted() != rt.prog.drv.Admitted() {
		return Result{}, fmt.Errorf("live: run ended before every admitted job completed")
	}
	return rt.Result(), nil
}

// Source is an in-world job producer's handle: a clock plus the
// submission surface. Sources run as actors between the slaves and the
// master, so their submissions are deterministic under the virtual clock.
type Source struct {
	rt *Runtime
	n  Node
}

// Now returns the current time.
func (s *Source) Now() float64 { return s.n.Now() }

// Sleep blocks the source for d time units.
func (s *Source) Sleep(d float64) { s.n.Sleep(d) }

// SleepUntil blocks the source until the clock reaches t exactly (no
// accumulation error: the deadline is absolute). Times at or before now
// return immediately.
func (s *Source) SleepUntil(t float64) {
	// Sources receive no mail except a real-world abort, so a
	// deadline-bounded receive is an absolute-deadline sleep.
	for {
		m, ok := s.n.RecvDeadline(t)
		if !ok {
			return
		}
		if m.Kind == msgAbort {
			return
		}
	}
}

// Submit submits one job at the current instant and returns its ID.
func (s *Source) Submit(spec JobSpec) int { return s.rt.submitFrom(s.n, spec) }

// SubmitSpecs submits a batch of heterogeneous jobs at the current
// instant under one runtime lock acquisition and returns the first
// assigned ID (the batch is [base, base+len(specs))). On a virtual
// world each post is a synchronous mailbox append — the whole batch is
// admitted without yielding, which is what makes the firehose drain
// cheap: one kernel wake absorbs an arbitrarily large slab.
func (s *Source) SubmitSpecs(specs []JobSpec) int {
	return s.rt.submitSpecs(s.n.Post, specs)
}

// Drain tells the master no more jobs are coming (from any source or
// external submitter).
func (s *Source) Drain() {
	s.rt.mu.Lock()
	s.rt.draining = true
	s.rt.mu.Unlock()
	s.n.Post(s.rt.prog.masterID, Msg{Kind: msgDrain})
}
