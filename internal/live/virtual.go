package live

import (
	"repro/internal/vclock"
)

// VirtualWorld runs live actors on the deterministic virtual-time kernel
// of internal/vclock: actors execute cooperatively, one at a time, and
// the clock jumps to the next timer or delivery when everyone blocks.
// Runs are bit-for-bit reproducible, which is what the sim-vs-live
// conformance suite pins against the discrete-event engine.
//
// Determinism hinges on two ordering properties:
//
//   - the kernel resumes same-instant wakers in spawn order, and the
//     runtime spawns the master last, so every slave completion and
//     source submission due at an instant is posted (and, via the
//     kernel's synchronous delay-0 delivery, delivered) before the
//     master drains its mailbox and consults the scheduler — exactly the
//     engine's drain-all-events-then-consult rule;
//   - message delivery is ordered by (delivery time, posting order), so
//     admissions keep submission order.
type VirtualWorld struct {
	cluster *vclock.Cluster
	started bool
}

// NewVirtual creates an empty virtual world at time 0.
func NewVirtual() *VirtualWorld {
	return &VirtualWorld{cluster: vclock.New()}
}

// Spawn implements World.
func (w *VirtualWorld) Spawn(name string, fn func(n Node)) int {
	return w.cluster.Spawn(name, func(p *vclock.Proc) {
		fn(&virtualNode{p: p})
	})
}

// Start implements World. Cooperative execution happens inside Wait.
func (w *VirtualWorld) Start() {}

// Wait implements World: it runs the cluster to completion.
func (w *VirtualWorld) Wait() error {
	if w.started {
		return nil
	}
	w.started = true
	return w.cluster.Run()
}

// Post implements World. External injection would race the cooperative
// schedule, so a virtual world only accepts messages from its own actors.
func (w *VirtualWorld) Post(int, Msg) {
	panic("live: a virtual world only accepts messages from its own actors; submit jobs from a Source")
}

// virtualNode adapts a vclock process to the Node contract.
type virtualNode struct {
	p *vclock.Proc
}

// Now implements Clock.
func (n *virtualNode) Now() float64 { return n.p.Now() }

// Sleep implements Clock.
func (n *virtualNode) Sleep(d float64) { n.p.Sleep(d) }

// Send implements Node: post the delivery for the end of the transfer,
// then hold the caller (the sending port) for its duration.
func (n *virtualNode) Send(dst int, m Msg, transfer float64) {
	m.At = n.p.Now() + transfer
	n.p.Post(dst, vclock.Message{Payload: m}, transfer)
	if transfer > 0 {
		n.p.Sleep(transfer)
	}
}

// Post implements Node: synchronous same-instant delivery, no yield.
func (n *virtualNode) Post(dst int, m Msg) {
	m.At = n.p.Now()
	n.p.Post(dst, vclock.Message{Payload: m}, 0)
}

// Recv implements Node.
func (n *virtualNode) Recv() (Msg, bool) {
	return n.p.Recv().Payload.(Msg), true
}

// RecvDeadline implements Node.
func (n *virtualNode) RecvDeadline(deadline float64) (Msg, bool) {
	m, ok := n.p.RecvDeadline(deadline)
	if !ok {
		return Msg{}, false
	}
	return m.Payload.(Msg), true
}
