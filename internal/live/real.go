package live

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// RealWorld runs live actors as goroutines on the wall clock, optionally
// scaled: at speedup k, one model second takes 1/k wall seconds, so a
// platform calibrated in paper seconds can be served (or load-tested)
// thousands of times faster than nominal while preserving every relative
// duration. Speedup 1 is real time.
type RealWorld struct {
	clock *wallClock
	nodes []*realNode
	wg    sync.WaitGroup

	mu      sync.Mutex
	started bool
	err     error
	failed  bool
}

// NewRealTime creates a wall-clock world with the given speedup (model
// seconds per wall second). Non-positive speedups mean 1.
func NewRealTime(speedup float64) *RealWorld {
	return NewRealTimeFrom(speedup, time.Now())
}

// NewRealTimeFrom is NewRealTime with an explicit model-time epoch
// (model second 0). A fleet of runtimes serving one cluster must share
// an epoch, or their model timestamps are mutually offset by the
// construction spread times the speedup and cross-shard windows (first
// submission to last completion) come out skewed.
func NewRealTimeFrom(speedup float64, start time.Time) *RealWorld {
	if speedup <= 0 {
		speedup = 1
	}
	return &RealWorld{clock: &wallClock{start: start, speedup: speedup}}
}

// Speedup returns the clock scale (model seconds per wall second).
func (w *RealWorld) Speedup() float64 { return w.clock.speedup }

// Spawn implements World.
func (w *RealWorld) Spawn(name string, fn func(n Node)) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		panic("live: Spawn after Start")
	}
	n := &realNode{w: w, name: name, fn: fn, notify: make(chan struct{}, 1)}
	w.nodes = append(w.nodes, n)
	return len(w.nodes) - 1
}

// Start implements World: every actor gets a goroutine. An actor panic
// is captured as the world error and aborts the remaining actors.
func (w *RealWorld) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.started {
		return
	}
	w.started = true
	for _, n := range w.nodes {
		n := n
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					w.fail(fmt.Errorf("live: actor %q panicked: %v", n.name, r))
				}
			}()
			n.fn(n)
		}()
	}
}

// Wait implements World.
func (w *RealWorld) Wait() error {
	w.wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Post implements World: external injection, delivered at the current
// instant.
func (w *RealWorld) Post(dst int, m Msg) {
	m.At = w.clock.Now()
	w.nodes[dst].deliver(m)
}

// fail records the first actor failure and aborts every node so blocked
// actors unwind instead of hanging Wait forever.
func (w *RealWorld) fail(err error) {
	w.mu.Lock()
	if w.failed {
		w.mu.Unlock()
		return
	}
	w.failed = true
	w.err = err
	nodes := w.nodes
	now := w.clock.Now()
	w.mu.Unlock()
	for _, n := range nodes {
		n.deliver(Msg{Kind: msgAbort, At: now})
	}
}

// wallClock converts between wall time and model seconds.
type wallClock struct {
	start   time.Time
	speedup float64
}

// Now returns model seconds since the world was created.
func (c *wallClock) Now() float64 {
	return time.Since(c.start).Seconds() * c.speedup
}

// Sleep blocks for d model seconds of wall time.
func (c *wallClock) Sleep(d float64) {
	if d <= 0 {
		return
	}
	time.Sleep(time.Duration(d / c.speedup * float64(time.Second)))
}

// realNode is one goroutine actor's mailbox and clock handle.
type realNode struct {
	w    *RealWorld
	name string
	fn   func(n Node)

	mu     sync.Mutex
	queue  []Msg
	notify chan struct{} // capacity 1: wake signal for the owning actor
}

// deliver appends a message and wakes the owner if it is blocked.
func (n *realNode) deliver(m Msg) {
	n.mu.Lock()
	n.queue = append(n.queue, m)
	n.mu.Unlock()
	select {
	case n.notify <- struct{}{}:
	default:
	}
}

// Now implements Clock.
func (n *realNode) Now() float64 { return n.w.clock.Now() }

// Sleep implements Clock.
func (n *realNode) Sleep(d float64) { n.w.clock.Sleep(d) }

// Send implements Node: occupy the caller for the transfer, then deliver.
func (n *realNode) Send(dst int, m Msg, transfer float64) {
	n.w.clock.Sleep(transfer)
	m.At = n.w.clock.Now()
	n.w.nodes[dst].deliver(m)
}

// Post implements Node: free control message, delivered immediately.
func (n *realNode) Post(dst int, m Msg) {
	m.At = n.w.clock.Now()
	n.w.nodes[dst].deliver(m)
}

// Recv implements Node.
func (n *realNode) Recv() (Msg, bool) {
	return n.RecvDeadline(math.Inf(1))
}

// RecvDeadline implements Node.
func (n *realNode) RecvDeadline(deadline float64) (Msg, bool) {
	for {
		n.mu.Lock()
		if len(n.queue) > 0 {
			m := n.queue[0]
			n.queue = n.queue[1:]
			n.mu.Unlock()
			return m, true
		}
		n.mu.Unlock()

		if math.IsInf(deadline, 1) {
			<-n.notify
			continue
		}
		remaining := deadline - n.w.clock.Now()
		if remaining <= 0 {
			return Msg{}, false
		}
		timer := time.NewTimer(time.Duration(remaining / n.w.clock.speedup * float64(time.Second)))
		select {
		case <-n.notify:
			timer.Stop()
		case <-timer.C:
		}
	}
}
