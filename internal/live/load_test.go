package live

// Race-instrumented coverage of Runtime.Load()/Pending(): concurrent
// producers and concurrent load readers against a serving runtime. The
// suite runs under -race in CI, so any unsynchronized counter access
// fails loudly here.

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

func TestLoadSnapshotUnderConcurrency(t *testing.T) {
	rt, err := New(Config{
		Platform:  core.NewPlatform([]float64{0.1, 0.2}, []float64{0.4, 0.8}),
		Scheduler: sched.New("LS"),
		World:     NewRealTime(10000),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	const producers, perProducer = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: every snapshot must be internally monotone
	// (completed ≤ dispatched ≤ admitted ≤ submitted) even mid-run.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l := rt.Load()
				if l.Completed > l.Dispatched || l.Dispatched > l.Admitted || l.Admitted > l.Submitted {
					t.Errorf("inconsistent load %+v", l)
					return
				}
				if l.QueueDepth() < 0 || l.Outstanding() < 0 {
					t.Errorf("negative backlog in %+v", l)
					return
				}
				if p := rt.Pending(); p < 0 {
					t.Errorf("negative pending %d", p)
					return
				}
			}
		}()
	}
	var prod sync.WaitGroup
	for p := 0; p < producers; p++ {
		prod.Add(1)
		go func() {
			defer prod.Done()
			for i := 0; i < perProducer; i++ {
				rt.Submit(JobSpec{})
			}
		}()
	}
	prod.Wait()
	rt.Drain()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	want := producers * perProducer
	l := rt.Load()
	if l.Submitted != want || l.Admitted != want || l.Dispatched != want || l.Completed != want {
		t.Fatalf("after drain: %+v, want all %d", l, want)
	}
	if l.QueueDepth() != 0 || l.Outstanding() != 0 {
		t.Fatalf("drained runtime has backlog: %+v", l)
	}
}

func TestLoadBatchSubmissionCountsImmediately(t *testing.T) {
	rt, err := New(Config{
		Platform:  core.NewPlatform([]float64{1}, []float64{1}),
		Scheduler: sched.New("LS"),
		World:     NewRealTime(5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := rt.SubmitBatch(JobSpec{}, 7)
	if len(ids) != 7 {
		t.Fatalf("batch ids %v", ids)
	}
	// Submitted reflects acceptance synchronously, before the master has
	// necessarily seen the mail — that is the placement-facing contract.
	if l := rt.Load(); l.Submitted != 7 {
		t.Fatalf("submitted %d after batch of 7", l.Submitted)
	}
	rt.Start()
	rt.Drain()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if l := rt.Load(); l.Completed != 7 || l.QueueDepth() != 0 {
		t.Fatalf("after drain: %+v", l)
	}
}
