package live

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// runCapped executes a 12-task bag under the virtual clock with the
// given event-log cap and returns the result plus the runtime.
func runCapped(t *testing.T, cap int) (Result, *Runtime) {
	t.Helper()
	rt, err := New(Config{
		Platform:    core.NewPlatform([]float64{1, 1}, []float64{2, 2}),
		Scheduler:   sched.New("LS"),
		World:       NewVirtual(),
		EventLogCap: cap,
		Sources: []func(*Source){func(src *Source) {
			for i := 0; i < 12; i++ {
				src.Submit(JobSpec{})
			}
			src.Drain()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	return rt.Result(), rt
}

// TestEventLogUnboundedByDefault pins the zero-value behavior every
// conformance suite depends on: no cap, no drops, full history.
func TestEventLogUnboundedByDefault(t *testing.T) {
	res, rt := runCapped(t, 0)
	// 12 jobs × 5 lifecycle events each.
	if len(res.Events) != 60 {
		t.Fatalf("events = %d, want 60", len(res.Events))
	}
	if rt.EventsDropped() != 0 {
		t.Fatalf("dropped = %d, want 0", rt.EventsDropped())
	}
}

// TestEventLogBoundedRing pins the satellite fix: a capped log retains
// exactly the newest cap events, in order, and counts the overwritten.
func TestEventLogBoundedRing(t *testing.T) {
	full, _ := runCapped(t, 0)
	res, rt := runCapped(t, 16)
	if len(res.Events) != 16 {
		t.Fatalf("events = %d, want 16", len(res.Events))
	}
	if got, want := rt.EventsDropped(), int64(60-16); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
	// The retained suffix is the tail of the full deterministic stream.
	tail := full.Events[len(full.Events)-16:]
	for i := range tail {
		if res.Events[i] != tail[i] {
			t.Fatalf("ring event %d = %+v, want %+v", i, res.Events[i], tail[i])
		}
	}
	// The ring does not disturb the schedule or counters.
	if len(res.Schedule.Records) != 12 {
		t.Fatalf("records = %d, want 12", len(res.Schedule.Records))
	}
}

// TestEventLogCapLargerThanStream: a cap the run never fills behaves
// exactly like the unbounded log.
func TestEventLogCapLargerThanStream(t *testing.T) {
	res, rt := runCapped(t, 1000)
	if len(res.Events) != 60 || rt.EventsDropped() != 0 {
		t.Fatalf("events = %d dropped = %d, want 60/0", len(res.Events), rt.EventsDropped())
	}
}

// TestTrackerOnComplete pins the completion hook: called once per
// completed job with its model-time latency, matching the tracker's own
// latency log.
func TestTrackerOnComplete(t *testing.T) {
	tr := NewTracker()
	var got []float64
	tr.OnComplete(func(l float64) { got = append(got, l) })
	tr.Observe(Event{T: 1, Kind: EvSubmitted, Task: 0, Slave: -1})
	tr.Observe(Event{T: 2, Kind: EvSent, Task: 0, Slave: 0})
	tr.Observe(Event{T: 3, Kind: EvArrived, Task: 0, Slave: 0})
	tr.Observe(Event{T: 3, Kind: EvStarted, Task: 0, Slave: 0})
	tr.Observe(Event{T: 7, Kind: EvCompleted, Task: 0, Slave: 0})
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("hook saw %v, want [6]", got)
	}
	if lats := tr.Latencies(); len(lats) != 1 || lats[0] != 6 {
		t.Fatalf("latencies = %v", lats)
	}
}

// TestTrackerStolenAt pins the retraction timestamp on the source-side
// lifecycle.
func TestTrackerStolenAt(t *testing.T) {
	tr := NewTracker()
	tr.Observe(Event{T: 1, Kind: EvSubmitted, Task: 0, Slave: -1})
	tr.Observe(Event{T: 5, Kind: EvRetracted, Task: 0, Slave: -1})
	j, ok := tr.Job(0)
	if !ok || j.State != StateStolen || j.StolenAt != 5 {
		t.Fatalf("job = %+v", j)
	}
}
