package live

// Real-substrate tests: goroutine slaves on the scaled wall clock, with
// concurrent external producers. Wall-clock runs cannot be validated
// against exact nominal costs (sleep overshoot is real), so these tests
// assert the structural invariants instead: every job completes, record
// times are monotone, the one-port constraint holds (the master
// serializes transfers), and per-slave execution is FIFO.

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// benchSpeedup compresses model seconds so a test platform with ~1s
// costs runs in milliseconds of wall time.
const testSpeedup = 4000

func testPlatform() core.Platform {
	return core.NewPlatform([]float64{0.5, 1, 2}, []float64{2, 4, 5})
}

func checkStructure(t *testing.T, s core.Schedule) {
	t.Helper()
	if err := s.Instance.Platform.Validate(); err != nil {
		t.Fatalf("platform: %v", err)
	}
	// Monotone per-task lifecycle.
	for _, r := range s.Records {
		if r.SendStart < r.Release || r.Arrive < r.SendStart || r.Start < r.Arrive || r.Complete < r.Start {
			t.Fatalf("task %d: non-monotone record %+v", r.Task, r)
		}
	}
	// One-port: transfers never overlap.
	recs := append([]core.Record(nil), s.Records...)
	for i := range recs {
		for k := range recs {
			if i == k {
				continue
			}
			a, b := recs[i], recs[k]
			if a.SendStart < b.Arrive && b.SendStart < a.Arrive {
				t.Fatalf("transfers overlap: task %d [%v,%v] and task %d [%v,%v]",
					a.Task, a.SendStart, a.Arrive, b.Task, b.SendStart, b.Arrive)
			}
		}
	}
	// Per-slave FIFO, no overlapping computations.
	bySlave := map[int][]core.Record{}
	for _, r := range recs {
		bySlave[r.Slave] = append(bySlave[r.Slave], r)
	}
	for j, rs := range bySlave {
		for i := range rs {
			for k := range rs {
				if i == k {
					continue
				}
				if rs[i].Start < rs[k].Complete && rs[k].Start < rs[i].Complete {
					t.Fatalf("slave %d computes tasks %d and %d simultaneously", j, rs[i].Task, rs[k].Task)
				}
			}
		}
	}
}

func TestRealRuntimeConcurrentProducers(t *testing.T) {
	tracker := NewTracker()
	rt, err := New(Config{
		Platform:  testPlatform(),
		Scheduler: sched.New("LS"),
		World:     NewRealTime(testSpeedup),
		Observer:  tracker.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	const producers, perProducer = 4, 10
	var wg sync.WaitGroup
	ids := make(chan int, producers*perProducer)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				ids <- rt.Submit(JobSpec{})
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[int]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job id %d", id)
		}
		seen[id] = true
	}
	rt.Drain()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	res := rt.Result()
	if got, want := len(res.Schedule.Records), producers*perProducer; got != want {
		t.Fatalf("%d records, want %d", got, want)
	}
	checkStructure(t, res.Schedule)

	counts := tracker.CountsSnapshot()
	if counts.Submitted != producers*perProducer || counts.Completed != producers*perProducer {
		t.Fatalf("tracker counts %+v", counts)
	}
	if lat := tracker.Latencies(); len(lat) != producers*perProducer {
		t.Fatalf("%d latencies", len(lat))
	} else {
		for _, l := range lat {
			if l <= 0 {
				t.Fatalf("non-positive latency %v", l)
			}
		}
	}
	for id := range seen {
		j, ok := tracker.Job(id)
		if !ok || j.State != StateDone {
			t.Fatalf("job %d not done: %+v (ok=%v)", id, j, ok)
		}
	}
}

func TestRealRuntimeSourceActor(t *testing.T) {
	// A Source works on the real substrate too: in-world load generation.
	res, err := Run(Config{
		Platform:  testPlatform(),
		Scheduler: sched.New("SO-LS"),
		World:     NewRealTime(testSpeedup),
		Sources: []func(*Source){func(src *Source) {
			for i := 0; i < 15; i++ {
				src.Submit(JobSpec{})
				src.Sleep(0.2)
			}
			src.Drain()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Records) != 15 {
		t.Fatalf("%d records, want 15", len(res.Schedule.Records))
	}
	checkStructure(t, res.Schedule)
}

func TestRealRuntimeDrainWithoutJobs(t *testing.T) {
	rt, err := New(Config{
		Platform:  testPlatform(),
		Scheduler: sched.New("SRPT"),
		World:     NewRealTime(testSpeedup),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	rt.Drain()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if n := len(rt.Result().Schedule.Records); n != 0 {
		t.Fatalf("%d records on an empty run", n)
	}
}

func TestRealWorldActorPanicSurfacesAsError(t *testing.T) {
	w := NewRealTime(testSpeedup)
	rt, err := New(Config{
		Platform:  testPlatform(),
		Scheduler: sched.New("LS"),
		World:     w,
		Sources: []func(*Source){func(src *Source) {
			src.Submit(JobSpec{})
			panic("source exploded")
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err == nil {
		t.Fatal("actor panic did not surface from Wait")
	}
}

func TestVirtualWorldRejectsExternalSubmit(t *testing.T) {
	rt, err := New(Config{
		Platform:  testPlatform(),
		Scheduler: sched.New("LS"),
		World:     NewVirtual(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("external Submit into a virtual world did not panic")
		}
	}()
	rt.Submit(JobSpec{})
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Scheduler: sched.New("LS")}); err == nil {
		t.Fatal("empty platform accepted")
	}
	if _, err := New(Config{Platform: testPlatform()}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
}

func TestSourceSubmitAfterDrainSurfacesAsError(t *testing.T) {
	// A source submitting after another source drained must fail loudly
	// (world error), never silently drop the job: the master may already
	// have exited.
	rt, err := New(Config{
		Platform:  testPlatform(),
		Scheduler: sched.New("LS"),
		World:     NewRealTime(testSpeedup),
		Sources: []func(*Source){
			func(src *Source) {
				src.Submit(JobSpec{})
				src.Drain()
			},
			func(src *Source) {
				src.Sleep(2) // well after the first source drained
				src.Submit(JobSpec{})
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err == nil {
		t.Fatal("post-drain Submit did not surface as a world error")
	}
}
