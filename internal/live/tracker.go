package live

import (
	"sync"

	"repro/internal/core"
)

// Job states as reported by the Tracker.
const (
	StateQueued  = "queued"  // admitted, waiting for the port
	StateSent    = "sent"    // transmitting or queued/computing at the slave
	StateDone    = "done"    // completed
	StateStolen  = "stolen"  // retracted by a steal; re-admitted on another runtime
	StateUnknown = "unknown" // never seen
)

// JobInfo is one job's lifecycle as observed so far. Times are in model
// seconds; Slave is -1 until dispatch.
type JobInfo struct {
	ID        int     `json:"id"`
	State     string  `json:"state"`
	Slave     int     `json:"slave"`
	Submitted float64 `json:"submitted"`
	SendStart float64 `json:"send_start,omitempty"`
	Arrive    float64 `json:"arrive,omitempty"`
	Start     float64 `json:"start,omitempty"`
	Complete  float64 `json:"complete,omitempty"`
	// StolenAt is the model time the job was retracted for migration
	// (meaningful only in the source shard's tracker while State is
	// stolen; the destination tracker restarts the lifecycle).
	StolenAt float64 `json:"stolen_at,omitempty"`
}

// Latency returns the job's response time (submit → complete) in model
// seconds, or 0 if it has not completed.
func (j JobInfo) Latency() float64 {
	if j.State != StateDone {
		return 0
	}
	return j.Complete - j.Submitted
}

// Counts summarizes the tracked population. Stolen jobs remain inside
// Submitted (they were accepted here), so a runtime's net population is
// Submitted - Stolen; cluster-level merges subtract Stolen to count each
// migrated job exactly once, on the shard that ultimately serves it.
type Counts struct {
	Submitted  int `json:"submitted"`
	Dispatched int `json:"dispatched"`
	Completed  int `json:"completed"`
	Stolen     int `json:"stolen,omitempty"`
}

// Tracker is a thread-safe job-state store fed by the runtime's event
// stream: wire its Observe method as Config.Observer and query it from
// any goroutine while the runtime serves. This is what schedd's
// GET /jobs/{id} and GET /stats read from.
//
// Retention is unbounded by design: one JobInfo and one latency sample
// per submitted job are kept for the life of the tracker (as is the
// master's own per-task bookkeeping), because the analysis surfaces —
// per-job lookup, full-population percentiles, the trace report —
// are defined over the whole history. That bounds a single runtime's
// service life by memory (~100 bytes/job: a million jobs ≈ 100 MB);
// an indefinitely running deployment should drain and restart its
// runtime at epoch boundaries. See DESIGN.md §9.
type Tracker struct {
	mu           sync.RWMutex
	jobs         []JobInfo
	counts       Counts
	latencies    []float64
	firstSubmit  float64
	lastComplete float64
	onComplete   func(latency float64)
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// OnComplete registers a hook called with each completed job's response
// time (model seconds), from inside Observe — the serving layer feeds
// its latency histogram this way instead of re-walking the job table.
// Set it before events flow; the hook must be fast and must not call
// back into the tracker.
func (tr *Tracker) OnComplete(fn func(latency float64)) {
	tr.mu.Lock()
	tr.onComplete = fn
	tr.mu.Unlock()
}

// Observe applies one runtime event. It is the Config.Observer hook.
func (tr *Tracker) Observe(ev Event) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for len(tr.jobs) <= ev.Task {
		tr.jobs = append(tr.jobs, JobInfo{ID: len(tr.jobs), State: StateUnknown, Slave: -1})
	}
	j := &tr.jobs[ev.Task]
	switch ev.Kind {
	case EvSubmitted:
		j.State = StateQueued
		j.Submitted = ev.T
		if tr.counts.Submitted == 0 || ev.T < tr.firstSubmit {
			tr.firstSubmit = ev.T
		}
		tr.counts.Submitted++
	case EvSent:
		j.State = StateSent
		j.Slave = ev.Slave
		j.SendStart = ev.T
		tr.counts.Dispatched++
	case EvArrived:
		j.Arrive = ev.T
	case EvStarted:
		j.Start = ev.T
	case EvCompleted:
		j.State = StateDone
		j.Complete = ev.T
		tr.counts.Completed++
		tr.latencies = append(tr.latencies, j.Complete-j.Submitted)
		if ev.T > tr.lastComplete {
			tr.lastComplete = ev.T
		}
		if tr.onComplete != nil {
			tr.onComplete(j.Complete - j.Submitted)
		}
	case EvRetracted:
		j.State = StateStolen
		j.StolenAt = ev.T
		tr.counts.Stolen++
	}
}

// Snapshot is one internally consistent view of the tracked population:
// counts, latencies, the completion window and the completed records all
// describe the same instant.
type Snapshot struct {
	Counts    Counts
	Latencies []float64 // completed-job response times, completion order
	// First and Last bound the model-time window from first submission to
	// last completion; meaningful when Counts.Completed > 0.
	First, Last float64
	// Records are the completed jobs' schedule records in job-ID order.
	Records []core.Record
}

// Stats takes one consistent snapshot under a single lock acquisition —
// what reporting surfaces (schedd's GET /stats) should use, so counts,
// throughput windows and trace records never disagree mid-run.
func (tr *Tracker) Stats() Snapshot {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return Snapshot{
		Counts:    tr.counts,
		Latencies: append([]float64(nil), tr.latencies...),
		First:     tr.firstSubmit,
		Last:      tr.lastComplete,
		Records:   tr.completedRecordsLocked(),
	}
}

// Job returns one job's info.
func (tr *Tracker) Job(id int) (JobInfo, bool) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	if id < 0 || id >= len(tr.jobs) || tr.jobs[id].State == StateUnknown {
		return JobInfo{}, false
	}
	return tr.jobs[id], true
}

// CountsSnapshot returns the current population counters.
func (tr *Tracker) CountsSnapshot() Counts {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return tr.counts
}

// Latencies returns a copy of all completed-job response times (model
// seconds), in completion order.
func (tr *Tracker) Latencies() []float64 {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return append([]float64(nil), tr.latencies...)
}

// Span returns the model-time window [first submission, last completion]
// observed so far, and whether any job completed.
func (tr *Tracker) Span() (first, last float64, ok bool) {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return tr.firstSubmit, tr.lastComplete, tr.counts.Completed > 0
}

// CompletedRecords assembles core.Records for every completed job, in
// job-ID order — the partial-schedule input trace.Analyze and the
// objectives accept mid-run.
func (tr *Tracker) CompletedRecords() []core.Record {
	tr.mu.RLock()
	defer tr.mu.RUnlock()
	return tr.completedRecordsLocked()
}

func (tr *Tracker) completedRecordsLocked() []core.Record {
	out := make([]core.Record, 0, tr.counts.Completed)
	for _, j := range tr.jobs {
		if j.State != StateDone {
			continue
		}
		out = append(out, core.Record{
			Task:      core.TaskID(j.ID),
			Slave:     j.Slave,
			Release:   j.Submitted,
			SendStart: j.SendStart,
			Arrive:    j.Arrive,
			Start:     j.Start,
			Complete:  j.Complete,
		})
	}
	return out
}
