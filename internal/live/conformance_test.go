package live

// The keystone correctness artifact of the live runtime: under the
// deterministic virtual clock, a live run must reproduce the
// discrete-event engine's dispatch decisions and schedule BIT FOR BIT —
// every record field, for every paper heuristic plus SO-LS, across all
// four platform classes, including platforms with exact timing ties
// (integer costs) where any divergence in event ordering would surface.
// This is what guarantees the simulator and the serving runtime can
// never drift apart.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runVirtual executes tasks on the live runtime under the virtual clock,
// submitted by an in-world source at their exact release times.
func runVirtual(t *testing.T, pl core.Platform, s sim.Scheduler, tasks []core.Task) Result {
	t.Helper()
	inst := core.NewInstance(pl, tasks)
	res, err := Run(Config{
		Platform:  pl,
		Scheduler: s,
		World:     NewVirtual(),
		Sources: []func(*Source){func(src *Source) {
			for _, task := range inst.Tasks {
				if task.Release > src.Now() {
					src.SleepUntil(task.Release)
				}
				src.Submit(JobSpec{CommScale: task.CommScale, CompScale: task.CompScale})
			}
			src.Drain()
		}},
	})
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	return res
}

// schedulerNames returns the full registry (the seven paper heuristics
// plus every extension), so a scheduler added to the registry is
// automatically under conformance. Schedulers are stateful, so each run
// constructs its own instance.
func schedulerNames() []string {
	return sched.ExtendedNames()
}

// conformancePlatforms are fixed platforms of all four classes with
// integer (tie-heavy) costs, exercising simultaneous completions,
// arrivals and releases.
func conformancePlatforms() map[string]core.Platform {
	return map[string]core.Platform{
		"uniform":      core.NewPlatform([]float64{1, 1, 1}, []float64{3, 3, 3}),
		"comm-hetero":  core.NewPlatform([]float64{1, 2, 4}, []float64{3, 3, 3}),
		"comp-hetero":  core.NewPlatform([]float64{1, 1, 1}, []float64{2, 3, 6}),
		"fully-hetero": core.NewPlatform([]float64{1, 2, 3}, []float64{2, 4, 5}),
	}
}

// requireIdentical asserts bit-for-bit equality of two schedules.
func requireIdentical(t *testing.T, label string, des, lv core.Schedule) {
	t.Helper()
	if len(des.Records) != len(lv.Records) {
		t.Fatalf("%s: engine has %d records, live %d", label, len(des.Records), len(lv.Records))
	}
	for i := range des.Records {
		a, b := des.Records[i], lv.Records[i]
		if a != b {
			t.Fatalf("%s task %d:\n  engine %+v\n  live   %+v", label, i, a, b)
		}
	}
	for _, obj := range core.Objectives {
		if va, vb := obj.Value(des), obj.Value(lv); va != vb {
			t.Fatalf("%s: %v differs: engine %v, live %v", label, obj, va, vb)
		}
	}
}

// TestConformanceTieHeavyPlatforms is the exhaustive sweep over the
// tie-heavy fixed platforms: every scheduler, every class, bag and
// staggered (tie-including) releases.
func TestConformanceTieHeavyPlatforms(t *testing.T) {
	workloads := map[string][]core.Task{
		"bag":       core.Bag(24),
		"staggered": core.ReleasesAt(0, 0, 1, 1, 1, 2, 3, 3, 5, 5, 8, 8, 8, 13, 21, 21),
	}
	for plName, pl := range conformancePlatforms() {
		for wlName, tasks := range workloads {
			for _, name := range schedulerNames() {
				label := fmt.Sprintf("%s/%s/%s", plName, wlName, name)
				des, err := sim.Simulate(pl, sched.New(name), tasks)
				if err != nil {
					t.Fatalf("%s engine: %v", label, err)
				}
				lv := runVirtual(t, pl, sched.New(name), tasks)
				requireIdentical(t, label, des, lv.Schedule)
				if err := core.ValidateSchedule(lv.Schedule); err != nil {
					t.Fatalf("%s: live schedule invalid: %v", label, err)
				}
			}
		}
	}
}

// TestConformanceRandomPlatforms sweeps random platforms of every class
// with Poisson arrivals and perturbed task sizes — the paper's
// experimental regime.
func TestConformanceRandomPlatforms(t *testing.T) {
	rng := rand.New(rand.NewSource(2006))
	for trial := 0; trial < 8; trial++ {
		class := core.Classes[trial%len(core.Classes)]
		pl := core.Random(rng, class, core.GenConfig{M: 2 + rng.Intn(4)})
		cfg := workload.Config{N: 40, Pattern: workload.Poisson, Rate: 2}
		if trial%2 == 1 {
			cfg.Perturb = 0.1
		}
		tasks := workload.Generate(rng, cfg)
		for _, name := range schedulerNames() {
			label := fmt.Sprintf("trial%d/%v/%s", trial, class, name)
			des, err := sim.Simulate(pl, sched.New(name), tasks)
			if err != nil {
				t.Fatalf("%s engine: %v", label, err)
			}
			lv := runVirtual(t, pl, sched.New(name), tasks)
			requireIdentical(t, label, des, lv.Schedule)
		}
	}
}

// TestConformanceTraceAnalysis pins that the downstream analysis stack
// sees identical numbers: trace.Analyze over the live schedule equals
// trace.Analyze over the engine schedule.
func TestConformanceTraceAnalysis(t *testing.T) {
	pl := conformancePlatforms()["fully-hetero"]
	tasks := core.ReleasesAt(0, 0, 0, 1, 2, 4, 4, 7, 9, 9)
	for _, name := range schedulerNames() {
		des, err := sim.Simulate(pl, sched.New(name), tasks)
		if err != nil {
			t.Fatalf("%s engine: %v", name, err)
		}
		lv := runVirtual(t, pl, sched.New(name), tasks)
		ra, rb := trace.Analyze(des), trace.Analyze(lv.Schedule)
		if ra.Makespan != rb.Makespan || ra.PortBusy != rb.PortBusy ||
			ra.MeanCommWait != rb.MeanCommWait || ra.MeanQueueWait != rb.MeanQueueWait ||
			ra.MeanService != rb.MeanService || ra.PortIdleWithPending != rb.PortIdleWithPending {
			t.Fatalf("%s: trace reports differ:\n engine %+v\n live   %+v", name, ra, rb)
		}
	}
}

// TestConformanceEventLog checks the event log agrees with the schedule
// it converts to: every record field appears as an event at the same
// instant.
func TestConformanceEventLog(t *testing.T) {
	pl := conformancePlatforms()["comp-hetero"]
	lv := runVirtual(t, pl, sched.New("LS"), core.Bag(12))
	type key struct {
		kind EventKind
		task int
	}
	at := map[key]float64{}
	for _, ev := range lv.Events {
		at[key{ev.Kind, ev.Task}] = ev.T
	}
	for i, r := range lv.Schedule.Records {
		checks := []struct {
			kind EventKind
			want float64
		}{
			{EvSubmitted, r.Release},
			{EvSent, r.SendStart},
			{EvArrived, r.Arrive},
			{EvStarted, r.Start},
			{EvCompleted, r.Complete},
		}
		for _, c := range checks {
			got, ok := at[key{c.kind, i}]
			if !ok {
				t.Fatalf("task %d: no %v event", i, c.kind)
			}
			if got != c.want {
				t.Fatalf("task %d: %v event at %v, record says %v", i, c.kind, got, c.want)
			}
		}
	}
}
