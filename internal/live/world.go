package live

// The substrate contract: a World is a set of actors sharing a clock and
// priced point-to-point message delivery. Everything the master, slaves
// and sources do — sleeping, transmitting, notifying, submitting — goes
// through this interface, which is what lets the same actor programs run
// on wall-clock goroutines and on the deterministic virtual-time kernel.

// MsgKind discriminates runtime messages.
type MsgKind int

const (
	// msgSubmit is client → master: one job enters the system.
	msgSubmit MsgKind = iota
	// msgDrain is client → master: no more jobs; finish and shut down.
	msgDrain
	// msgTask is master → slave: one task, shipped over the one-port link.
	msgTask
	// msgAck is slave → master: a task's computation window.
	msgAck
	// msgQuit is master → slave: the run is over.
	msgQuit
	// msgAbort is substrate → everyone (real worlds only): another actor
	// failed; unwind.
	msgAbort
	// msgSteal is rebalancer → master (real worlds only): extract up to
	// Count pending jobs from the back of the queue and reply on
	// StealReply.
	msgSteal
)

// Msg is one runtime message. Fields are a union over kinds; At is the
// model-time delivery stamp every substrate fills in.
type Msg struct {
	Kind MsgKind
	// At is the time the message was delivered (for msgSubmit, the job's
	// release time).
	At float64
	// Task is the task index (msgSubmit, msgTask, msgAck).
	Task int
	// Slave is the executing slave (msgTask, msgAck).
	Slave int
	// Dur is the actual computation duration the slave must charge
	// (msgTask).
	Dur float64
	// Start and Complete bound the computation (msgAck).
	Start    float64
	Complete float64
	// Job is the submission payload (msgSubmit).
	Job JobSpec
	// Count is the maximum number of jobs to extract (msgSteal).
	Count int
	// StealReply carries the extracted jobs back to the thief (msgSteal).
	// The requester supplies a buffered channel so the master's reply
	// never blocks the serving loop.
	StealReply chan []StolenJob
}

// Clock is how live actors experience time: a monotonically advancing
// model-seconds counter plus a blocking sleep. Implementations are the
// (optionally scaled) wall clock and the deterministic virtual clock.
type Clock interface {
	// Now returns the current time in model seconds since the world
	// started.
	Now() float64
	// Sleep blocks the calling actor for d model seconds.
	Sleep(d float64)
}

// Node is one actor's handle on its world: a clock and a mailbox.
type Node interface {
	Clock
	// Send transmits m to dst, blocking the caller for the whole transfer
	// (the paper's eager one-port send: the master experiences its own
	// port). The message is delivered when the transfer completes.
	Send(dst int, m Msg, transfer float64)
	// Post delivers a free control message (completion notifications, job
	// submissions, shutdown) to dst at the current instant, without
	// blocking or yielding.
	Post(dst int, m Msg)
	// Recv blocks until a message arrives. ok is false when the world is
	// shutting down without one.
	Recv() (Msg, bool)
	// RecvDeadline blocks until a message arrives or the clock reaches
	// the deadline; a deadline at or before Now polls the mailbox.
	RecvDeadline(deadline float64) (Msg, bool)
}

// World is an execution substrate. Actors are spawned before Start;
// node IDs are dense in spawn order.
type World interface {
	// Spawn registers an actor program and returns its node ID.
	Spawn(name string, fn func(n Node)) int
	// Start launches the actors. Virtual worlds defer execution to Wait.
	Start()
	// Wait blocks until every actor has returned and reports the first
	// actor failure, if any.
	Wait() error
	// Post injects a message from outside the world. Real worlds deliver
	// it at the current instant; virtual worlds panic — determinism
	// requires every event to originate from an actor.
	Post(dst int, m Msg)
}
