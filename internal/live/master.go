package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
)

// EventKind labels runtime events.
type EventKind int

const (
	// EvSubmitted marks a job entering the master's pending queue.
	EvSubmitted EventKind = iota
	// EvSent marks the master acquiring the port for a dispatch.
	EvSent
	// EvArrived marks a transfer completing (the task is at the slave).
	EvArrived
	// EvStarted marks the slave beginning the computation (reported
	// retroactively with the completion notification, like a real
	// master learns it).
	EvStarted
	// EvCompleted marks the computation finishing.
	EvCompleted
	// EvRetracted marks a pending job leaving this master's queue via a
	// steal (it will be re-admitted on another runtime; see
	// Runtime.StealPending).
	EvRetracted
)

// String returns the event kind's wire name.
func (k EventKind) String() string {
	switch k {
	case EvSubmitted:
		return "submitted"
	case EvSent:
		return "sent"
	case EvArrived:
		return "arrived"
	case EvStarted:
		return "started"
	case EvCompleted:
		return "completed"
	case EvRetracted:
		return "retracted"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the runtime's event log, emitted by the master in
// the order it learned things. The log is convertible to a core.Schedule
// (each task's events fill its record); Observer callbacks receive the
// same stream live.
type Event struct {
	T     float64   `json:"t"`
	Kind  EventKind `json:"kind"`
	Task  int       `json:"task"`
	Slave int       `json:"slave"` // -1 while unassigned
}

// program is the actor code shared by both substrates: one master, m
// slaves. All scheduling state lives in the master actor; the mutex only
// guards the event log, which outside observers may snapshot mid-run.
type program struct {
	cfg      Config
	pl       core.Platform
	drv      *sim.Driver
	slaveID  []int
	masterID int
	draining bool

	// Lock-free progress counters behind Runtime.Load(): placement
	// policies poll them per job, so they must not contend with the
	// master actor or the event-log mutex.
	admitted   atomic.Int64
	dispatched atomic.Int64
	completed  atomic.Int64
	retracted  atomic.Int64

	// Event log: unbounded append with EventLogCap 0, else a
	// preallocated ring of the newest logCap events. logTotal counts
	// every recorded event; with a ring, logTotal − len(log) events have
	// been overwritten (the drop counter the serving layer exposes).
	logMu    sync.Mutex
	log      []Event
	logCap   int
	logTotal uint64
}

func newProgram(cfg Config) *program {
	p := &program{
		cfg:     cfg,
		pl:      cfg.Platform.Clone(),
		slaveID: make([]int, cfg.Platform.M()),
		logCap:  cfg.EventLogCap,
	}
	if p.logCap > 0 {
		p.log = make([]Event, 0, p.logCap)
	}
	return p
}

// record appends to the event log (overwriting the oldest entry once a
// bounded log is full) and feeds the observer, which always sees the
// full stream.
func (p *program) record(ev Event) {
	switch ev.Kind {
	case EvSubmitted:
		p.admitted.Add(1)
	case EvSent:
		p.dispatched.Add(1)
	case EvCompleted:
		p.completed.Add(1)
	case EvRetracted:
		p.retracted.Add(1)
	}
	p.logMu.Lock()
	if p.logCap > 0 && len(p.log) == p.logCap {
		p.log[p.logTotal%uint64(p.logCap)] = ev
	} else {
		p.log = append(p.log, ev)
	}
	p.logTotal++
	p.logMu.Unlock()
	if p.cfg.Observer != nil {
		p.cfg.Observer(ev)
	}
}

// events snapshots the retained log, oldest first.
func (p *program) events() []Event {
	p.logMu.Lock()
	defer p.logMu.Unlock()
	if p.logCap == 0 || len(p.log) < p.logCap {
		return append([]Event(nil), p.log...)
	}
	// Full ring: the oldest retained event sits where the next write
	// would land.
	out := make([]Event, 0, len(p.log))
	head := int(p.logTotal % uint64(p.logCap))
	out = append(out, p.log[head:]...)
	return append(out, p.log[:head]...)
}

// eventsDropped reports how many events the bounded log overwrote.
func (p *program) eventsDropped() int64 {
	p.logMu.Lock()
	defer p.logMu.Unlock()
	return int64(p.logTotal) - int64(len(p.log))
}

// runMaster is the master actor: the scheduling policy's event loop.
// Structure mirrors the discrete-event engine's step(): drain everything
// deliverable at the current instant, then — if the port is free and work
// is pending — consult the scheduler exactly once, then block until the
// next event. The port is "busy" exactly while this actor sleeps inside
// Send, which is the one-port model.
func (p *program) runMaster(n Node) {
	p.drv = p.drvInit(n)
	p.cfg.Scheduler.Reset(p.pl.Clone())
	view := p.drv.View()
	for {
		now := n.Now()
		if !p.drainMail(n, now) {
			return
		}
		if p.draining && p.drv.PendingCount() == 0 && p.drv.Done()+p.drv.Retracted() == p.drv.Admitted() {
			for _, id := range p.slaveID {
				n.Post(id, Msg{Kind: msgQuit})
			}
			return
		}
		if p.drv.PendingCount() == 0 {
			m, ok := n.Recv()
			if !ok || !p.handle(m) {
				return
			}
			continue
		}
		act := p.cfg.Scheduler.Decide(view)
		switch act.Kind {
		case sim.ActSend:
			p.dispatch(n, act.Task, act.Slave)
		case sim.ActWait:
			if act.Until <= now {
				panic(fmt.Sprintf("live: scheduler %s waits until %v which is not after now %v",
					p.cfg.Scheduler.Name(), act.Until, now))
			}
			if m, ok := n.RecvDeadline(act.Until); ok && !p.handle(m) {
				return
			}
		case sim.ActIdle:
			m, ok := n.Recv()
			if !ok || !p.handle(m) {
				return
			}
		default:
			panic(fmt.Sprintf("live: unknown action kind %d", act.Kind))
		}
	}
}

// drvInit builds the Driver against the running node's clock. It must
// happen inside the master actor: Runtime.New runs before the substrate
// has a clock reference for virtual worlds.
func (p *program) drvInit(n Node) *sim.Driver {
	if p.drv == nil {
		p.drv = sim.NewDriver(p.pl, n.Now)
	}
	return p.drv
}

// drainMail processes every message already deliverable at now. It
// reports false when the master must unwind (abort).
func (p *program) drainMail(n Node, now float64) bool {
	for {
		m, ok := n.RecvDeadline(now)
		if !ok {
			return true
		}
		if !p.handle(m) {
			return false
		}
	}
}

// handle applies one message to the master state. It reports false when
// the master must unwind (abort).
func (p *program) handle(m Msg) bool {
	switch m.Kind {
	case msgSubmit:
		id := p.drv.Admit(core.Task{
			Release:   m.At,
			CommScale: m.Job.CommScale,
			CompScale: m.Job.CompScale,
		})
		if int(id) != m.Job.ID {
			panic(fmt.Sprintf("live: job submitted as %d admitted as %d (submission order violated)", m.Job.ID, id))
		}
		p.record(Event{T: m.At, Kind: EvSubmitted, Task: int(id), Slave: -1})
	case msgAck:
		p.drv.MarkCompleted(core.TaskID(m.Task), m.Slave, m.Start, m.Complete)
		p.record(Event{T: m.Start, Kind: EvStarted, Task: m.Task, Slave: m.Slave})
		p.record(Event{T: m.Complete, Kind: EvCompleted, Task: m.Task, Slave: m.Slave})
	case msgSteal:
		// Retract up to Count pending jobs for migration. The reply is
		// sent from inside the master actor, so by the time the thief
		// holds the jobs they are out of this master's pending queue and
		// can never be dispatched here — no double-dispatch window.
		tasks := p.drv.RetractNewest(m.Count)
		jobs := make([]StolenJob, len(tasks))
		for i, t := range tasks {
			jobs[i] = StolenJob{
				Local: int(t.ID),
				Spec:  JobSpec{CommScale: t.CommScale, CompScale: t.CompScale},
			}
			p.record(Event{T: m.At, Kind: EvRetracted, Task: int(t.ID), Slave: -1})
		}
		m.StealReply <- jobs
	case msgDrain:
		p.draining = true
	case msgAbort:
		return false
	default:
		panic(fmt.Sprintf("live: master received unexpected message kind %d", m.Kind))
	}
	return true
}

// dispatch ships one pending task: the Send blocks this actor for the
// actual transfer duration (port occupancy), after which the master has
// observed its own send complete.
func (p *program) dispatch(n Node, task core.TaskID, j int) {
	p.drv.MarkSent(p.cfg.Scheduler.Name(), task, j)
	t := p.drv.Task(task)
	now := n.Now()
	p.record(Event{T: now, Kind: EvSent, Task: int(task), Slave: j})
	n.Send(p.slaveID[j], Msg{
		Kind:  msgTask,
		Task:  int(task),
		Slave: j,
		Dur:   p.pl.P[j] * t.EffComp(),
	}, p.pl.C[j]*t.EffComm())
	arrive := n.Now()
	p.drv.MarkArrived(task, j, arrive)
	p.record(Event{T: arrive, Kind: EvArrived, Task: int(task), Slave: j})
}

// runSlave is the worker actor for slave j: receive a task, charge its
// computation by sleeping on the clock, notify the master.
func (p *program) runSlave(j int, n Node) {
	for {
		m, ok := n.Recv()
		if !ok {
			return
		}
		switch m.Kind {
		case msgQuit, msgAbort:
			return
		case msgTask:
			start := n.Now()
			n.Sleep(m.Dur)
			n.Post(p.masterID, Msg{
				Kind:     msgAck,
				Task:     m.Task,
				Slave:    j,
				Start:    start,
				Complete: n.Now(),
			})
		default:
			panic(fmt.Sprintf("live: slave %d received unexpected message kind %d", j, m.Kind))
		}
	}
}
