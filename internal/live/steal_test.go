package live

// StealPending tests: the runtime-level half of cross-shard work
// stealing. The cluster layer owns migration atomicity; what must hold
// HERE is the retraction contract — stolen jobs come off the back of
// the pending queue inside the master actor, the accounting identity
// becomes Done + Retracted == Admitted, and the virtual substrate
// refuses to steal at all (determinism: vclock runs admit no external
// events, which is what makes steal-rate-0 conformance structural).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// stealTestRuntime builds a started real-time runtime whose per-task
// costs map to ~5ms of wall time: long enough that a backlog submitted
// just before a steal is still mostly pending when the steal lands (the
// one-port master is a few milliseconds into its first transfer), short
// enough that the leftover queue drains in tens of milliseconds.
func stealTestRuntime(t *testing.T, tracker *Tracker) *Runtime {
	t.Helper()
	cfg := Config{
		Platform:  core.NewPlatform([]float64{5, 5}, []float64{5, 5}),
		Scheduler: sched.New("LS"),
		World:     NewRealTime(1000),
	}
	if tracker != nil {
		cfg.Observer = tracker.Observe
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	return rt
}

func TestStealPendingTakesNewestFirst(t *testing.T) {
	tracker := NewTracker()
	rt := stealTestRuntime(t, tracker)
	const jobs = 10
	ids := rt.SubmitBatch(JobSpec{CommScale: 2, CompScale: 3}, jobs)
	if len(ids) != jobs {
		t.Fatalf("submitted %d of %d", len(ids), jobs)
	}

	stolen := rt.StealPending(3)
	if len(stolen) != 3 {
		t.Fatalf("stole %d jobs, want 3", len(stolen))
	}
	// Newest first: the highest local IDs, in descending order, and never
	// job 0 (the master grabs the port for the oldest pending task).
	for i, j := range stolen {
		if j.Local == 0 {
			t.Fatalf("stole job 0, which the master should be dispatching")
		}
		if i > 0 && j.Local >= stolen[i-1].Local {
			t.Fatalf("steal order not newest-first: %v then %v", stolen[i-1].Local, j.Local)
		}
		if j.Spec.CommScale != 2 || j.Spec.CompScale != 3 {
			t.Fatalf("stolen job %d lost its spec: %+v", j.Local, j.Spec)
		}
	}

	load := rt.Load()
	if load.Retracted != 3 {
		t.Fatalf("load reports %d retracted, want 3", load.Retracted)
	}
	if got, want := load.QueueDepth(), jobs-3-load.Dispatched; got != want {
		t.Fatalf("queue depth %d, want %d", got, want)
	}
	if c := tracker.CountsSnapshot(); c.Stolen != 3 {
		t.Fatalf("tracker counts %+v, want 3 stolen", c)
	}
	for _, j := range stolen {
		info, ok := tracker.Job(j.Local)
		if !ok || info.State != StateStolen {
			t.Fatalf("stolen job %d tracked as %q", j.Local, info.State)
		}
	}
}

func TestStealPendingOverAskDrainsQueueAndRunCompletes(t *testing.T) {
	rt := stealTestRuntime(t, nil)
	rt.SubmitBatch(JobSpec{}, 5)
	// Ask for far more than is pending: the steal empties the queue (minus
	// whatever the master already claimed for the port) without blocking.
	stolen := rt.StealPending(100)
	if len(stolen) == 0 || len(stolen) > 5 {
		t.Fatalf("stole %d jobs", len(stolen))
	}
	// The run must still drain cleanly: the completion condition is
	// Done + Retracted == Admitted, not Done == Admitted.
	rt.Drain()
	if err := rt.Wait(); err != nil {
		t.Fatalf("drain after steal: %v", err)
	}
	load := rt.Load()
	if load.Completed+load.Retracted != load.Submitted {
		t.Fatalf("accounting identity broken after drain: %+v", load)
	}
}

func TestStealPendingRefusals(t *testing.T) {
	// n <= 0 is a no-op.
	rt := stealTestRuntime(t, nil)
	if got := rt.StealPending(0); got != nil {
		t.Fatalf("StealPending(0) = %v, want nil", got)
	}
	if got := rt.StealPending(-1); got != nil {
		t.Fatalf("StealPending(-1) = %v, want nil", got)
	}
	// Draining runtimes refuse: a steal racing the drain must not strand
	// jobs outside both masters.
	rt.SubmitBatch(JobSpec{}, 3)
	rt.Drain()
	if got := rt.StealPending(1); got != nil {
		t.Fatalf("StealPending during drain = %v, want nil", got)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	// Not-started runtimes refuse (no master actor is serving yet).
	idle, err := New(Config{
		Platform:  core.NewPlatform([]float64{1}, []float64{1}),
		Scheduler: sched.New("LS"),
		World:     NewRealTime(1000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := idle.StealPending(1); got != nil {
		t.Fatalf("StealPending before Start = %v, want nil", got)
	}
}

func TestStealPendingVirtualWorldIsStructurallyImpossible(t *testing.T) {
	// Virtual worlds admit no external events — Post panics — so
	// StealPending must decline without touching the world. This is what
	// makes the steal-rate-0 conformance contract structural rather than
	// behavioral: under vclock there is no code path that can steal.
	rt, err := New(Config{
		Platform:  core.NewPlatform([]float64{1, 1}, []float64{2, 2}),
		Scheduler: sched.New("LS"),
		World:     NewVirtual(),
		Sources: []func(*Source){func(src *Source) {
			for i := 0; i < 4; i++ {
				src.Submit(JobSpec{})
			}
			src.Drain()
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if got := rt.StealPending(2); got != nil {
		t.Fatalf("StealPending on virtual world = %v, want nil", got)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if load := rt.Load(); load.Retracted != 0 || load.Completed != 4 {
		t.Fatalf("virtual run perturbed by steal attempt: %+v", load)
	}
}
