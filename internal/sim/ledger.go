package sim

// Ledger is the bookkeeping a real master can maintain about its slaves:
// it records its own dispatch decisions, the actual send durations (the
// master experiences its own port), and completion notifications, and
// estimates slave readiness using nominal computation times for
// everything still outstanding. Both the discrete-event engine and the
// message-passing emulation (internal/mpiexp) keep their scheduler-facing
// state in a Ledger, which is what makes the two substrates agree
// decision-for-decision.
type Ledger struct {
	units    [][]ledgerUnit // per slave, in dispatch order
	lastSync []float64      // latest time the slave was known idle
}

// ledgerUnit is one outstanding task: the arrival time is actual once the
// send completed, predicted before that.
type ledgerUnit struct {
	task    int
	arrival float64
}

// NewLedger creates bookkeeping for m slaves.
func NewLedger(m int) *Ledger {
	return &Ledger{units: make([][]ledgerUnit, m), lastSync: make([]float64, m)}
}

// Assign records that a task's send to slave j has started, with the
// nominal-cost arrival prediction.
func (l *Ledger) Assign(j, task int, predictedArrival float64) {
	l.units[j] = append(l.units[j], ledgerUnit{task: task, arrival: predictedArrival})
}

// Arrived corrects the task's arrival to the observed send completion.
func (l *Ledger) Arrived(j, task int, actual float64) {
	for i := range l.units[j] {
		if l.units[j][i].task == task {
			l.units[j][i].arrival = actual
			return
		}
	}
}

// Completed removes the task from slave j's backlog after a completion
// notification at the given time.
func (l *Ledger) Completed(j, task int, at float64) {
	units := l.units[j]
	for i := range units {
		if units[i].task == task {
			l.units[j] = append(units[:i], units[i+1:]...)
			break
		}
	}
	if at > l.lastSync[j] {
		l.lastSync[j] = at
	}
}

// Fail clears slave j's backlog after a failure notification at the given
// time: every outstanding unit is gone with the slave.
func (l *Ledger) Fail(j int, at float64) {
	l.units[j] = nil
	if at > l.lastSync[j] {
		l.lastSync[j] = at
	}
}

// Sync records that slave j was known idle at the given time (e.g. it
// just recovered with an empty queue).
func (l *Ledger) Sync(j int, at float64) {
	if at > l.lastSync[j] {
		l.lastSync[j] = at
	}
}

// AddSlave extends the bookkeeping for a slave joining at the given time.
func (l *Ledger) AddSlave(at float64) {
	l.units = append(l.units, nil)
	l.lastSync = append(l.lastSync, at)
}

// Outstanding returns the number of assigned, unfinished tasks on slave j.
func (l *Ledger) Outstanding(j int) int { return len(l.units[j]) }

// Ready estimates when slave j drains its backlog, charging nominalComp
// per outstanding task.
func (l *Ledger) Ready(j int, nominalComp float64) float64 {
	t := l.lastSync[j]
	for _, u := range l.units[j] {
		if u.arrival > t {
			t = u.arrival
		}
		t += nominalComp
	}
	return t
}
