package sim

// Ledger is the bookkeeping a real master can maintain about its slaves:
// it records its own dispatch decisions, the actual send durations (the
// master experiences its own port), and completion notifications, and
// estimates slave readiness using nominal computation times for
// everything still outstanding. Both the discrete-event engine and the
// message-passing emulation (internal/mpiexp) keep their scheduler-facing
// state in a Ledger, which is what makes the two substrates agree
// decision-for-decision.
//
// Ready used to re-fold the whole outstanding backlog on every call;
// list schedulers call it for every slave on every decision, which made
// dispatch O(m·backlog). The estimate is now memoized per slave and
// invalidated only by the mutations that can change it, so between state
// changes every Ready call is O(1) and a decision touches only the
// backlogs that actually moved. The memo stores the value the fold
// would produce — recomputation runs the identical float operations —
// so cached and uncached runs are bit-identical by construction (pinned
// by the differential suite).
type Ledger struct {
	units    [][]ledgerUnit // per slave, in dispatch order
	lastSync []float64      // latest time the slave was known idle
	ready    []float64      // memoized Ready value per slave
	readyFor []float64      // the nominalComp each memo was computed with
	fresh    []bool         // memo validity
}

// ledgerUnit is one outstanding task: the arrival time is actual once the
// send completed, predicted before that.
type ledgerUnit struct {
	task    int
	arrival float64
}

// NewLedger creates bookkeeping for m slaves.
func NewLedger(m int) *Ledger {
	return &Ledger{
		units:    make([][]ledgerUnit, m),
		lastSync: make([]float64, m),
		ready:    make([]float64, m),
		readyFor: make([]float64, m),
		fresh:    make([]bool, m),
	}
}

// Assign records that a task's send to slave j has started, with the
// nominal-cost arrival prediction.
func (l *Ledger) Assign(j, task int, predictedArrival float64) {
	l.units[j] = append(l.units[j], ledgerUnit{task: task, arrival: predictedArrival})
	l.fresh[j] = false
}

// Arrived corrects the task's arrival to the observed send completion.
// The scan runs backwards: units are stored in dispatch order and the
// one-port master has at most one send in flight, so the arriving task
// is the most recently assigned unit — the backward scan finds it in one
// step (and stays correct, just longer, under the unbounded-port model).
func (l *Ledger) Arrived(j, task int, actual float64) {
	units := l.units[j]
	for i := len(units) - 1; i >= 0; i-- {
		if units[i].task == task {
			units[i].arrival = actual
			l.fresh[j] = false
			return
		}
	}
}

// Completed removes the task from slave j's backlog after a completion
// notification at the given time.
func (l *Ledger) Completed(j, task int, at float64) {
	units := l.units[j]
	for i := range units {
		if units[i].task == task {
			l.units[j] = append(units[:i], units[i+1:]...)
			break
		}
	}
	if at > l.lastSync[j] {
		l.lastSync[j] = at
	}
	l.fresh[j] = false
}

// Fail clears slave j's backlog after a failure notification at the given
// time: every outstanding unit is gone with the slave.
func (l *Ledger) Fail(j int, at float64) {
	l.units[j] = l.units[j][:0]
	if at > l.lastSync[j] {
		l.lastSync[j] = at
	}
	l.fresh[j] = false
}

// Sync records that slave j was known idle at the given time (e.g. it
// just recovered with an empty queue).
func (l *Ledger) Sync(j int, at float64) {
	if at > l.lastSync[j] {
		l.lastSync[j] = at
		l.fresh[j] = false
	}
}

// AddSlave extends the bookkeeping for a slave joining at the given time.
func (l *Ledger) AddSlave(at float64) {
	l.units = append(l.units, nil)
	l.lastSync = append(l.lastSync, at)
	l.ready = append(l.ready, 0)
	l.readyFor = append(l.readyFor, 0)
	l.fresh = append(l.fresh, false)
}

// Outstanding returns the number of assigned, unfinished tasks on slave j.
func (l *Ledger) Outstanding(j int) int { return len(l.units[j]) }

// Ready estimates when slave j drains its backlog, charging nominalComp
// per outstanding task. The estimate is served from the memo when no
// mutation has touched the slave since it was computed (with the same
// nominalComp); otherwise the fold below recomputes it.
func (l *Ledger) Ready(j int, nominalComp float64) float64 {
	if l.fresh[j] && l.readyFor[j] == nominalComp {
		return l.ready[j]
	}
	t := l.lastSync[j]
	for _, u := range l.units[j] {
		if u.arrival > t {
			t = u.arrival
		}
		t += nominalComp
	}
	l.ready[j] = t
	l.readyFor[j] = nominalComp
	l.fresh[j] = true
	return t
}
