package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

// fifoTo always ships the oldest pending task to a fixed slave.
type fifoTo struct{ slave int }

func (f *fifoTo) Name() string        { return "fifo-fixed" }
func (f *fifoTo) Reset(core.Platform) {}
func (f *fifoTo) Decide(v View) Action {
	task, ok := v.FirstPending()
	if !ok {
		return Idle()
	}
	return Send(task, f.slave)
}

// greedyFinish ships the oldest pending task to the slave with the
// earliest predicted finish (a minimal list scheduler for engine tests).
type greedyFinish struct{}

func (greedyFinish) Name() string        { return "greedy-finish" }
func (greedyFinish) Reset(core.Platform) {}
func (greedyFinish) Decide(v View) Action {
	task, ok := v.FirstPending()
	if !ok {
		return Idle()
	}
	best, bestFinish := 0, math.Inf(1)
	for j := 0; j < v.M(); j++ {
		if f := v.PredictFinish(j); f < bestFinish {
			best, bestFinish = j, f
		}
	}
	return Send(task, best)
}

// waiter idles until a fixed time, then behaves like fifoTo.
type waiter struct {
	until float64
	inner fifoTo
}

func (w *waiter) Name() string        { return "waiter" }
func (w *waiter) Reset(core.Platform) {}
func (w *waiter) Decide(v View) Action {
	if v.Now() < w.until {
		return Wait(w.until)
	}
	return w.inner.Decide(v)
}

// sleeper never sends anything.
type sleeper struct{}

func (sleeper) Name() string        { return "sleeper" }
func (sleeper) Reset(core.Platform) {}
func (sleeper) Decide(View) Action  { return Idle() }

func theorem1Platform() core.Platform {
	return core.NewPlatform([]float64{1, 1}, []float64{3, 7})
}

func TestSingleTaskTimings(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{3})
	s, err := Simulate(pl, &fifoTo{0}, core.ReleasesAt(0))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Records[0]
	if r.SendStart != 0 || r.Arrive != 1 || r.Start != 1 || r.Complete != 4 {
		t.Fatalf("record = %+v", r)
	}
	if s.Makespan() != 4 {
		t.Fatalf("makespan = %v", s.Makespan())
	}
}

func TestPortSerialization(t *testing.T) {
	// Two tasks at t=0 to different-speed slaves; port must serialize.
	pl := theorem1Platform()
	s, err := Simulate(pl, greedyFinish{}, core.ReleasesAt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Greedy: task 0 → P1 (finish 4). Task 1: P1 predicts max(2,4)+3=7,
	// P2 predicts 2+7=9 → P1. Send starts at 1 (port).
	r0, r1 := s.Records[0], s.Records[1]
	if r0.Slave != 0 || r1.Slave != 0 {
		t.Fatalf("assignment = %d, %d", r0.Slave, r1.Slave)
	}
	if r1.SendStart != 1 {
		t.Fatalf("second send started at %v, want 1 (one-port)", r1.SendStart)
	}
	if r1.Start != 4 || r1.Complete != 7 {
		t.Fatalf("task 1 ran [%v,%v], want [4,7]", r1.Start, r1.Complete)
	}
}

func TestSlaveFIFOQueueing(t *testing.T) {
	// Three tasks forced to one slave: queue drains in arrival order.
	pl := core.NewPlatform([]float64{1, 1}, []float64{3, 7})
	s, err := Simulate(pl, &fifoTo{0}, core.ReleasesAt(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	wantStart := []float64{1, 4, 7}
	for i, r := range s.Records {
		if r.Start != wantStart[i] {
			t.Fatalf("task %d started at %v, want %v", i, r.Start, wantStart[i])
		}
	}
	if s.SumFlow() != 4+7+10 {
		t.Fatalf("sum-flow = %v", s.SumFlow())
	}
}

func TestReleaseRespected(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{1})
	s, err := Simulate(pl, &fifoTo{0}, core.ReleasesAt(5))
	if err != nil {
		t.Fatal(err)
	}
	if s.Records[0].SendStart != 5 {
		t.Fatalf("send started at %v, want 5", s.Records[0].SendStart)
	}
}

func TestWaitAction(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{1})
	s, err := Simulate(pl, &waiter{until: 3}, core.ReleasesAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if s.Records[0].SendStart != 3 {
		t.Fatalf("send started at %v, want 3", s.Records[0].SendStart)
	}
	if core.WorkConserving(s) {
		t.Fatal("deliberate idling not detected")
	}
}

func TestIdleDeadlockReported(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{1})
	_, err := New(pl, sleeper{}, core.ReleasesAt(0)).Run()
	if err == nil || !strings.Contains(err.Error(), "completed 0 of 1") {
		t.Fatalf("deadlock not reported: %v", err)
	}
}

func TestPerturbedDurations(t *testing.T) {
	pl := core.NewPlatform([]float64{2}, []float64{4})
	tasks := []core.Task{{Release: 0, CommScale: 1.5, CompScale: 0.5}}
	s, err := Simulate(pl, &fifoTo{0}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Records[0]
	if r.Arrive != 3 { // 2 * 1.5
		t.Fatalf("arrive = %v, want 3", r.Arrive)
	}
	if r.Complete != 5 { // 3 + 4*0.5
		t.Fatalf("complete = %v, want 5", r.Complete)
	}
}

func TestPredictionUsesNominalCosts(t *testing.T) {
	// A perturbed in-flight task must not leak its actual size into the
	// master's prediction until the send completes.
	pl := core.NewPlatform([]float64{1}, []float64{3})
	tasks := []core.Task{{Release: 0, CommScale: 2, CompScale: 1}}
	e := New(pl, &fifoTo{0}, tasks)
	e.AdvanceTo(0.5) // send started at 0, actual arrival at 2, nominal 1
	if got := e.view.ReadyEstimate(0); got != 1+3 {
		t.Fatalf("mid-flight estimate = %v, want 4 (nominal)", got)
	}
	e.AdvanceTo(2.5) // send completed at 2: bookkeeping corrected
	if got := e.view.ReadyEstimate(0); got != 2+3 {
		t.Fatalf("post-arrival estimate = %v, want 5 (actual arrival)", got)
	}
}

func TestAdvanceToAndStarted(t *testing.T) {
	pl := theorem1Platform()
	e := New(pl, greedyFinish{}, core.ReleasesAt(0))
	if _, _, ok := e.Started(0); ok {
		t.Fatal("send reported before simulation started")
	}
	e.AdvanceTo(0.5)
	slave, at, ok := e.Started(0)
	if !ok || slave != 0 || at != 0 {
		t.Fatalf("Started = (%d, %v, %v)", slave, at, ok)
	}
	if e.Completed(0) {
		t.Fatal("task complete too early")
	}
	e.AdvanceTo(4)
	if !e.Completed(0) {
		t.Fatal("task not complete at t=4")
	}
}

func TestInjectTask(t *testing.T) {
	pl := theorem1Platform()
	e := New(pl, greedyFinish{}, core.ReleasesAt(0))
	e.AdvanceTo(1)
	id := e.InjectTask(core.Task{Release: 1})
	if id != 1 {
		t.Fatalf("injected id = %d", id)
	}
	s, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSchedule(s); err != nil {
		t.Fatal(err)
	}
	if len(s.Records) != 2 {
		t.Fatalf("%d records", len(s.Records))
	}
	// Greedy: task 1 at time 1 → P1 predicts max(2,4)+3 = 7; P2 predicts
	// 2+7 = 9 → P1, completing at 7.
	if s.Records[1].Slave != 0 || s.Records[1].Complete != 7 {
		t.Fatalf("injected task record = %+v", s.Records[1])
	}
}

func TestInjectPastPanics(t *testing.T) {
	pl := theorem1Platform()
	e := New(pl, greedyFinish{}, core.ReleasesAt(0))
	e.AdvanceTo(2)
	defer func() {
		if recover() == nil {
			t.Fatal("past injection accepted")
		}
	}()
	e.InjectTask(core.Task{Release: 1})
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	e := New(theorem1Platform(), greedyFinish{}, core.ReleasesAt(0))
	e.AdvanceTo(2)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards advance accepted")
		}
	}()
	e.AdvanceTo(1)
}

// badSender exercises engine guards.
type badSender struct{ act Action }

func (b *badSender) Name() string        { return "bad" }
func (b *badSender) Reset(core.Platform) {}
func (b *badSender) Decide(View) Action  { return b.act }

func TestEngineGuards(t *testing.T) {
	cases := []struct {
		name string
		act  Action
	}{
		{"unknown task", Send(99, 0)},
		{"unknown slave", Send(0, 9)},
		{"wait in past", Wait(0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("engine accepted invalid action")
				}
			}()
			e := New(theorem1Platform(), &badSender{tc.act}, core.ReleasesAt(0))
			_, _ = e.Run()
		})
	}
}

func TestResendPanics(t *testing.T) {
	// A scheduler that names an already-sent task: engine must reject.
	pl := core.NewPlatform([]float64{1}, []float64{10})
	bad := &badSender{Send(0, 0)}
	e := New(pl, bad, core.ReleasesAt(0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("re-send accepted")
		}
	}()
	_, _ = e.Run()
}

func TestTheorem1OptimalScenario(t *testing.T) {
	// The proof of Theorem 1 case 2 states: first task on P2, two more on
	// P1 gives makespan max{c+p2, 2c+2p1, 3c+p1} = 8. Reconstruct it.
	pl := theorem1Platform()
	seq := &scripted{moves: []Action{Send(0, 1), Send(1, 0), Send(2, 0)}}
	s, err := Simulate(pl, seq, core.ReleasesAt(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); got != 8 {
		t.Fatalf("makespan = %v, want 8 (paper's Theorem 1, case 2)", got)
	}
}

// scripted plays a fixed sequence of sends, one per pending consult.
type scripted struct {
	moves []Action
	next  int
}

func (s *scripted) Name() string        { return "scripted" }
func (s *scripted) Reset(core.Platform) { s.next = 0 }
func (s *scripted) Decide(v View) Action {
	if s.next >= len(s.moves) {
		return Idle()
	}
	act := s.moves[s.next]
	if _, ok := v.FirstPending(); !ok {
		return Idle()
	}
	// Only play the move once its task is actually pending.
	found := false
	for i := 0; i < v.PendingCount(); i++ {
		if v.PendingAt(i) == act.Task {
			found = true
			break
		}
	}
	if !found {
		return Idle()
	}
	s.next++
	return act
}

func TestViewAccessors(t *testing.T) {
	pl := theorem1Platform()
	e := New(pl, sleeper{}, core.ReleasesAt(0, 0, 5))
	e.AdvanceTo(1)
	v := &e.view
	if v.M() != 2 || v.Comm(1) != 1 || v.Comp(1) != 7 {
		t.Fatal("platform accessors wrong")
	}
	if v.PendingCount() != 2 {
		t.Fatalf("pending = %d, want 2", v.PendingCount())
	}
	if v.PendingAt(1) != 1 {
		t.Fatalf("PendingAt(1) = %d", v.PendingAt(1))
	}
	if v.Release(2) != 5 {
		t.Fatalf("Release(2) = %v", v.Release(2))
	}
	if v.ReleasedCount() != 2 || v.CompletedCount() != 0 {
		t.Fatal("counters wrong")
	}
	if v.Outstanding(0) != 0 {
		t.Fatal("no task assigned yet")
	}
}

func TestDeterministicReplay(t *testing.T) {
	pl := core.Random(rand.New(rand.NewSource(11)), core.Heterogeneous, core.GenConfig{})
	tasks := core.Bag(50)
	a, err := Simulate(pl, greedyFinish{}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(pl, greedyFinish{}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatal("same scenario produced different schedules")
		}
	}
}

func TestRandomScenariosValid(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		class := core.Classes[rng.Intn(len(core.Classes))]
		pl := core.Random(rng, class, core.GenConfig{M: 1 + rng.Intn(5)})
		n := 1 + rng.Intn(60)
		tasks := make([]core.Task, n)
		for i := range tasks {
			tasks[i] = core.Task{Release: rng.Float64() * 20, CommScale: 1, CompScale: 1}
		}
		s, err := Simulate(pl, greedyFinish{}, tasks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !core.WorkConserving(s) {
			t.Fatalf("trial %d: greedy scheduler idled", trial)
		}
	}
}

func BenchmarkEngine1000Tasks(b *testing.B) {
	pl := core.Random(rand.New(rand.NewSource(1)), core.Heterogeneous, core.GenConfig{})
	tasks := core.Bag(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(pl, greedyFinish{}, tasks); err != nil {
			b.Fatal(err)
		}
	}
}
