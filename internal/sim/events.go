package sim

import "repro/internal/sim/equeue"

// event is the engine's scheduled-event record; the queue itself lives
// in internal/sim/equeue (an array-indexed binary heap with no
// per-operation allocations — see that package's doc comment). Kinds
// order simultaneous events deterministically: all releases at a time t
// are drained before completions at t, completions before send
// arrivals, and insertion order (the heap's Seq stamp) breaks the rest.
type event = equeue.Event

const (
	evRelease int32 = iota
	evComputeComplete
	evSendComplete
	evWake
)

// eventHeap aliases the shared queue so the engine reads naturally.
type eventHeap = equeue.Heap
