package sim

import "container/heap"

// eventKind orders simultaneous events deterministically.
type eventKind int

const (
	evRelease eventKind = iota
	evComputeComplete
	evSendComplete
	evWake
)

type event struct {
	time float64
	kind eventKind
	seq  int // insertion order, final tie-break
	task int // task index for release/send/compute events
	dest int // slave index for send/compute events
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (h *eventHeap) push(e event) { heap.Push(h, e) }

func (h *eventHeap) pop() event { return heap.Pop(h).(event) }

// reinit restores the heap invariant after in-place filtering (used when
// a slave failure cancels its scheduled events).
func (h *eventHeap) reinit() { heap.Init(h) }

func (h eventHeap) peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}
