package sim

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
)

// aliveGreedy is greedyFinish restricted to live slaves; it idles when
// every slave is down (the minimal failure-aware scheduler).
type aliveGreedy struct{}

func (aliveGreedy) Name() string        { return "alive-greedy" }
func (aliveGreedy) Reset(core.Platform) {}
func (aliveGreedy) Decide(v View) Action {
	task, ok := v.FirstPending()
	if !ok {
		return Idle()
	}
	best, bestFinish := -1, math.Inf(1)
	for j := 0; j < v.M(); j++ {
		if !IsAlive(v, j) {
			continue
		}
		if f := v.PredictFinish(j); f < bestFinish {
			best, bestFinish = j, f
		}
	}
	if best < 0 {
		return Idle()
	}
	return Send(task, best)
}

func TestFailSlaveDestroysOutstandingWork(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 1}, []float64{5, 5})
	e := New(pl, &fifoTo{slave: 0}, core.Bag(3))
	e.AdvanceTo(4) // all three sent to slave 0: one computing, two queued
	lost := e.FailSlave(0)
	if len(lost) != 3 {
		t.Fatalf("lost %v, want all three tasks", lost)
	}
	if e.SlaveAlive(0) {
		t.Fatal("slave 0 still alive after FailSlave")
	}
	s, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if !s.Records[id].Lost {
			t.Fatalf("record %d not marked Lost: %+v", id, s.Records[id])
		}
		if s.Records[id].Complete != 0 {
			t.Fatalf("lost record %d has completion %v", id, s.Records[id].Complete)
		}
	}
}

func TestFailSlaveAbortsInFlightSendAndFreesPort(t *testing.T) {
	pl := core.NewPlatform([]float64{4, 1}, []float64{1, 1})
	f := &fifoTo{slave: 0}
	e := New(pl, f, core.Bag(2))
	e.AdvanceTo(1) // task 0 in flight to slave 0 until t=4
	lost := e.FailSlave(0)
	if len(lost) != 1 || lost[0] != 0 {
		t.Fatalf("lost %v, want the in-flight task 0", lost)
	}
	f.slave = 1
	e.Kick() // port must be free NOW, not at t=4
	s, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Records[1].SendStart; got != 1 {
		t.Fatalf("task 1 sent at %v, want 1 (port freed by the failure)", got)
	}
}

func TestDeadSlaveDispatchReturnsTypedError(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 1}, []float64{3, 3})
	e := New(pl, &fifoTo{slave: 0}, core.Bag(2))
	e.FailSlave(0)
	_, err := e.Run()
	var dead *DeadSlaveError
	if !errors.As(err, &dead) {
		t.Fatalf("Run error %v, want a *DeadSlaveError", err)
	}
	if dead.Slave != 0 || dead.Scheduler != "fifo-fixed" || dead.Departed {
		t.Fatalf("error fields %+v", dead)
	}
	if e.Err() == nil {
		t.Fatal("Err() not set after halt")
	}
}

func TestDepartedSlaveErrorAndNoRecovery(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 1}, []float64{3, 3})
	e := New(pl, &fifoTo{slave: 0}, core.Bag(1))
	e.LeaveSlave(0)
	defer func() {
		if recover() == nil {
			t.Fatal("RecoverSlave on a departed slave did not panic")
		}
	}()
	e.RecoverSlave(0)
}

func TestRecoverSlaveResumesService(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{1})
	e := New(pl, aliveGreedy{}, core.Bag(2))
	e.AdvanceTo(0.5) // task 0 in flight
	lost := e.FailSlave(0)
	if len(lost) != 1 {
		t.Fatalf("lost %v", lost)
	}
	// Re-release the destroyed attempt, scenario-style.
	clone := e.InjectTask(core.Task{Release: e.Now(), CommScale: 1, CompScale: 1})
	e.AdvanceTo(3) // the scheduler idles: everything is down
	if e.Completed(1) || e.Completed(clone) {
		t.Fatal("work completed while the only slave was down")
	}
	e.RecoverSlave(0)
	e.Kick()
	s, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Records[1].SendStart; got != 3 {
		t.Fatalf("task 1 sent at %v, want 3 (right at recovery)", got)
	}
	if got := s.Makespan(); got != 6 {
		t.Fatalf("makespan %v, want 6 (two tasks serialized after recovery)", got)
	}
}

func TestAddSlaveVisibleToScheduler(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{10})
	e := New(pl, aliveGreedy{}, core.Bag(2))
	e.AdvanceTo(0.5) // task 0 headed to the only slave
	j := e.AddSlave(1, 2)
	if j != 1 || e.Platform().M() != 2 {
		t.Fatalf("AddSlave index %d, m %d", j, e.Platform().M())
	}
	s, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Records[1].Slave; got != 1 {
		t.Fatalf("task 1 ran on slave %d, want the joined slave 1", got)
	}
}

func TestDriftChangesActualNotNominal(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{10})
	e := New(pl, aliveGreedy{}, core.Bag(1))
	e.DriftCosts(0, 1, 2) // actually 5× faster than advertised
	s, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); got != 3 {
		t.Fatalf("makespan %v, want 3 (1 comm + 2 actual comp)", got)
	}
	if got := e.view.Comp(0); got != 10 {
		t.Fatalf("nominal comp %v changed by drift, want 10", got)
	}
	// The observation feed reports the actual durations.
	if obs, ok := e.view.ObservedComp(0); !ok || obs != 2 {
		t.Fatalf("observed comp %v/%v, want 2", obs, ok)
	}
	if obs, ok := e.view.ObservedComm(0); !ok || obs != 1 {
		t.Fatalf("observed comm %v/%v, want 1", obs, ok)
	}
}

func TestStaticViewHelpersDegrade(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 1}, []float64{3, 3})
	e := New(pl, &fifoTo{slave: 0}, core.Bag(1))
	if !IsAlive(&e.view, 1) {
		t.Fatal("fresh slave not alive")
	}
	if _, ok := ObservedComm(&e.view, 0); ok {
		t.Fatal("observation before any send completed")
	}
}
