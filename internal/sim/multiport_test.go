package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestMultiportSendsOverlap(t *testing.T) {
	// Two slaves, two tasks: under macro-dataflow both sends start at 0.
	pl := core.NewPlatform([]float64{1, 1}, []float64{3, 7})
	s, err := SimulateMultiport(pl, greedyFinish{}, core.ReleasesAt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// greedyFinish: task 0 → P1 (finish 4); task 1 re-evaluated at t=0 with
	// port free: P1 predicts max(1, 4)+3 = 7; P2 predicts 1+7 = 8 → P1.
	// Both sends start at 0 (the one-port serialization is gone); P1's
	// FIFO queue still serializes computation.
	if s.Records[0].SendStart != 0 || s.Records[1].SendStart != 0 {
		t.Fatalf("sends at %v and %v, want both at 0",
			s.Records[0].SendStart, s.Records[1].SendStart)
	}
	if err := core.ValidateSchedule(s); err == nil {
		t.Fatal("overlapping sends must fail the one-port validator")
	}
	if err := core.ValidateMultiport(s); err != nil {
		t.Fatalf("multiport validator rejected the schedule: %v", err)
	}
}

func TestMultiportNeverSlower(t *testing.T) {
	// Removing the port constraint can only help a greedy scheduler.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 15; trial++ {
		pl := core.Random(rng, core.Classes[trial%4], core.GenConfig{M: 2 + rng.Intn(3)})
		tasks := core.Bag(20 + rng.Intn(30))
		one, err := Simulate(pl, greedyFinish{}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := SimulateMultiport(pl, greedyFinish{}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		if multi.Makespan() > one.Makespan()+1e-9 {
			t.Fatalf("trial %d: multiport %v slower than one-port %v",
				trial, multi.Makespan(), one.Makespan())
		}
	}
}

func TestMultiportPortBound(t *testing.T) {
	// A port-bound scenario: many tasks through one expensive shared link
	// versus free parallel links. One-port makespan ≈ n·c; multiport ≈ c+p.
	pl := core.NewPlatform([]float64{1, 1, 1, 1}, []float64{0.5, 0.5, 0.5, 0.5})
	tasks := core.Bag(8)
	one, err := Simulate(pl, greedyFinish{}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := SimulateMultiport(pl, greedyFinish{}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if one.Makespan() < 8*1 {
		t.Fatalf("one-port makespan %v below the port bound 8", one.Makespan())
	}
	// Multiport: 8 tasks over 4 slaves, 2 each, pipelined: 1 + 2×0.5 = 2.
	if math.Abs(multi.Makespan()-2) > 1e-9 {
		t.Fatalf("multiport makespan %v, want 2", multi.Makespan())
	}
}
