package sim

// Differential tests for the allocation-free hot path: each refactored
// structure is pinned against a straightforward reference
// implementation of its pre-refactor behavior. The engine-level
// counterpart lives in internal/experiment (golden replicate JSON
// recorded by the pre-refactor binary) and internal/live (the
// sim-vs-live conformance suite).

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// refReady is the pre-refactor Ready: a full fold over the backlog on
// every call, no memo.
func refReady(lastSync float64, units []ledgerUnit, nominalComp float64) float64 {
	t := lastSync
	for _, u := range units {
		if u.arrival > t {
			t = u.arrival
		}
		t += nominalComp
	}
	return t
}

// TestLedgerReadyDifferential drives a random mutation stream through
// the memoized Ledger and checks every Ready answer — interleaved with
// the mutations, hitting both memo and recompute paths — against the
// reference fold, bit for bit.
func TestLedgerReadyDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		const m = 4
		l := NewLedger(m)
		comp := []float64{1.5, 2.25, 0.75, 3}
		now := 0.0
		nextTask := 0
		inFlight := make([][]int, m) // assigned tasks per slave, dispatch order
		for op := 0; op < 400; op++ {
			j := rng.Intn(m)
			now += rng.Float64()
			switch k := rng.Intn(10); {
			case k < 4: // assign
				l.Assign(j, nextTask, now+rng.Float64())
				inFlight[j] = append(inFlight[j], nextTask)
				nextTask++
			case k < 6 && len(inFlight[j]) > 0: // arrival corrects the newest unit
				task := inFlight[j][len(inFlight[j])-1]
				l.Arrived(j, task, now)
			case k < 8 && len(inFlight[j]) > 0: // completion removes the oldest
				task := inFlight[j][0]
				inFlight[j] = inFlight[j][1:]
				l.Completed(j, task, now)
			case k < 9: // sync
				l.Sync(j, now)
			default: // fail clears the backlog
				l.Fail(j, now)
				inFlight[j] = inFlight[j][:0]
			}
			// Query a random subset of slaves — repeated queries between
			// mutations exercise the memo path.
			for q := 0; q < 1+rng.Intn(3); q++ {
				qj := rng.Intn(m)
				got := l.Ready(qj, comp[qj])
				want := refReady(l.lastSync[qj], l.units[qj], comp[qj])
				if got != want {
					t.Fatalf("trial %d op %d: Ready(%d) = %v, reference fold = %v", trial, op, qj, got, want)
				}
				if again := l.Ready(qj, comp[qj]); again != got {
					t.Fatalf("trial %d op %d: memoized Ready(%d) = %v after %v", trial, op, qj, again, got)
				}
			}
		}
	}
}

// TestTaskFIFODifferential pins the head-indexed queue against a plain
// slice driven by the pre-refactor splice operations.
func TestTaskFIFODifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		var q taskFIFO
		var ref []int
		next := 0
		for op := 0; op < 500; op++ {
			switch k := rng.Intn(4); {
			case k == 0 || len(ref) == 0: // push
				q.Push(next)
				ref = append(ref, next)
				next++
			case k == 1: // pop front
				got := q.PopFront()
				want := ref[0]
				ref = ref[1:]
				if got != want {
					t.Fatalf("trial %d op %d: PopFront = %d, want %d", trial, op, got, want)
				}
			default: // remove at random position (the mid-queue dispatch path)
				i := rng.Intn(len(ref))
				if got := q.IndexOf(ref[i]); got != i {
					t.Fatalf("trial %d op %d: IndexOf(%d) = %d, want %d", trial, op, ref[i], got, i)
				}
				q.RemoveAt(i)
				ref = append(ref[:i], ref[i+1:]...)
			}
			if q.Len() != len(ref) {
				t.Fatalf("trial %d op %d: Len = %d, want %d", trial, op, q.Len(), len(ref))
			}
			for i, want := range ref {
				if got := q.At(i); got != want {
					t.Fatalf("trial %d op %d: At(%d) = %d, want %d", trial, op, i, got, want)
				}
			}
		}
	}
}

// TestEngineSteadyStateAllocs pins the tentpole claim at the engine
// level: after construction, driving a bag workload to completion
// allocates only the per-run bookkeeping (snapshot assembly is not
// measured here), not per-event garbage.
func TestEngineSteadyStateAllocs(t *testing.T) {
	pl := theorem1Platform()
	run := func(n int) float64 {
		tasks := core.Bag(n)
		return testing.AllocsPerRun(20, func() {
			e := New(pl, greedyFinish{}, tasks)
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Construction allocates a bounded number of slices (engine fields,
	// ledger, clones, the snapshot), so the per-run count is a constant;
	// what must NOT happen is allocation growing with the task count.
	// Before the refactor every event boxed through container/heap, so
	// doubling the workload added hundreds of allocations.
	small, large := run(60), run(240)
	if grown := large - small; grown > 10 {
		t.Fatalf("engine allocations grew by %.0f when the workload grew 60→240 tasks (want ~0: per-event allocation regression; base %.0f)",
			grown, small)
	}
}
