// Package equeue is the discrete-event simulator's event queue: an
// array-indexed binary min-heap over concrete Event values with
// hand-rolled sift-up/sift-down, so pushes and pops never box events
// into interfaces the way container/heap does. On the engine's hot path
// every simulated task costs a handful of queue operations; with
// container/heap each of those allocated (Push boxes its argument, Pop
// returns a freshly heap-allocated any), which made the queue the
// dominant allocation site of the whole repository. This implementation
// allocates only when the backing array grows, and Grow lets callers
// preallocate for a known event volume so steady state allocates
// nothing at all.
//
// Ordering is total and deterministic: events compare by (Time, Kind,
// Seq), where Seq is a unique insertion stamp the heap assigns on Push.
// A total order makes the pop sequence independent of the heap's
// internal array layout, which is what lets the engine guarantee
// bit-identical replays (and lets the differential suite pin this heap
// against a container/heap reference).
package equeue

// Event is one scheduled simulation event. Time is the primary key;
// Kind breaks ties between simultaneous events of different types
// (lower kinds first, matching the engine's release-before-completion
// drain order); Seq — assigned by the heap — breaks the remaining ties
// by insertion order. Task and Dest are payload, not ordering keys.
type Event struct {
	Time float64
	Seq  int64
	Kind int32
	Task int32
	Dest int32
}

// before is the total event order: (Time, Kind, Seq) lexicographically.
func (e Event) before(o Event) bool {
	if e.Time != o.Time {
		return e.Time < o.Time
	}
	if e.Kind != o.Kind {
		return e.Kind < o.Kind
	}
	return e.Seq < o.Seq
}

// Heap is the event queue. The zero value is ready to use; Grow
// preallocates. Heap is not safe for concurrent use — the engine is
// single-threaded by design.
type Heap struct {
	items []Event
	seq   int64
}

// Len returns the number of queued events.
func (h *Heap) Len() int { return len(h.items) }

// Grow ensures capacity for at least n queued events without further
// allocation.
func (h *Heap) Grow(n int) {
	if cap(h.items)-len(h.items) >= n {
		return
	}
	items := make([]Event, len(h.items), len(h.items)+n)
	copy(items, h.items)
	h.items = items
}

// Push queues an event, stamping it with the next insertion sequence
// number (the final ordering tie-break).
func (h *Heap) Push(ev Event) {
	ev.Seq = h.seq
	h.seq++
	h.items = append(h.items, ev)
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum event. It panics on an empty heap
// (an engine bug, not a runtime condition: callers peek first).
func (h *Heap) Pop() Event {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = Event{}
	h.items = h.items[:n]
	if n > 1 {
		h.down(0)
	}
	return top
}

// Peek returns the minimum event without removing it.
func (h *Heap) Peek() (Event, bool) {
	if len(h.items) == 0 {
		return Event{}, false
	}
	return h.items[0], true
}

// Filter removes every event for which keep returns false and restores
// the heap invariant. Seq stamps are preserved, so the relative order of
// surviving ties is unchanged. Used when a slave failure cancels its
// scheduled events.
func (h *Heap) Filter(keep func(Event) bool) {
	kept := h.items[:0]
	for _, ev := range h.items {
		if keep(ev) {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(h.items); i++ {
		h.items[i] = Event{}
	}
	h.items = kept
	// Heapify bottom-up: O(n), same invariant container/heap.Init restores.
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// up sifts the element at index i toward the root.
func (h *Heap) up(i int) {
	items := h.items
	ev := items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !ev.before(items[parent]) {
			break
		}
		items[i] = items[parent]
		i = parent
	}
	items[i] = ev
}

// down sifts the element at index i toward the leaves.
func (h *Heap) down(i int) {
	items := h.items
	n := len(items)
	ev := items[i]
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && items[right].before(items[left]) {
			least = right
		}
		if !items[least].before(ev) {
			break
		}
		items[i] = items[least]
		i = least
	}
	items[i] = ev
}
