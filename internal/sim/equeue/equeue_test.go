package equeue

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the pre-refactor reference: the same (Time, Kind, Seq)
// ordering driven through container/heap, exactly as the engine's event
// queue was implemented before the allocation-free rewrite. The
// differential tests pin the optimized heap's pop sequence to it.
type refHeap []Event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	if h[i].Kind != h[j].Kind {
		return h[i].Kind < h[j].Kind
	}
	return h[i].Seq < h[j].Seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(Event)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TestDifferentialVsContainerHeap drives random interleaved push/pop
// streams through the optimized heap and the container/heap reference
// and requires identical pop sequences — including heavy timestamp and
// kind ties, which is where an ordering bug would hide.
func TestDifferentialVsContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var h Heap
		var ref refHeap
		seq := int64(0)
		ops := 500 + rng.Intn(500)
		for op := 0; op < ops; op++ {
			if h.Len() == 0 || rng.Float64() < 0.6 {
				ev := Event{
					// Few distinct times and kinds: ties everywhere.
					Time: float64(rng.Intn(8)),
					Kind: int32(rng.Intn(4)),
					Task: int32(rng.Intn(1000)),
					Dest: int32(rng.Intn(8)),
				}
				h.Push(ev)
				withSeq := ev
				withSeq.Seq = seq
				seq++
				heap.Push(&ref, withSeq)
			} else {
				got := h.Pop()
				want := heap.Pop(&ref).(Event)
				if got != want {
					t.Fatalf("trial %d op %d: pop mismatch: got %+v want %+v", trial, op, got, want)
				}
			}
		}
		for h.Len() > 0 {
			got := h.Pop()
			want := heap.Pop(&ref).(Event)
			if got != want {
				t.Fatalf("trial %d drain: pop mismatch: got %+v want %+v", trial, got, want)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference has %d leftover events", trial, ref.Len())
		}
	}
}

// TestFilterMatchesReference mirrors the engine's failure-time event
// cancellation: filter a predicate out of both heaps mid-stream, then
// require the drains to still agree (Filter must preserve Seq stamps
// and restore the invariant).
func TestFilterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		var h Heap
		var ref refHeap
		for i := 0; i < 300; i++ {
			ev := Event{Time: float64(rng.Intn(10)), Kind: int32(rng.Intn(4)), Dest: int32(rng.Intn(5))}
			h.Push(ev)
			withSeq := ev
			withSeq.Seq = int64(i)
			heap.Push(&ref, withSeq)
		}
		dead := int32(rng.Intn(5))
		keep := func(ev Event) bool { return ev.Dest != dead || ev.Kind == 0 }
		h.Filter(keep)
		kept := ref[:0]
		for _, ev := range ref {
			if keep(ev) {
				kept = append(kept, ev)
			}
		}
		ref = kept
		heap.Init(&ref)
		for h.Len() > 0 {
			got := h.Pop()
			want := heap.Pop(&ref).(Event)
			if got != want {
				t.Fatalf("trial %d: post-filter pop mismatch: got %+v want %+v", trial, got, want)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference has %d leftover events", trial, ref.Len())
		}
	}
}

// TestGrowPreallocates pins the zero-allocation steady state: after
// Grow, a push/pop workload within capacity must not allocate.
func TestGrowPreallocates(t *testing.T) {
	var h Heap
	h.Grow(128)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			h.Push(Event{Time: float64(i % 13), Kind: int32(i % 4)})
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	var h Heap
	h.Grow(1024)
	rng := rand.New(rand.NewSource(1))
	times := make([]float64, 1024)
	for i := range times {
		times[i] = rng.Float64() * 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 256; j++ {
			h.Push(Event{Time: times[j&1023], Kind: int32(j & 3)})
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
