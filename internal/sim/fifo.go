package sim

// taskFIFO is a head-indexed FIFO of task indices. The engine's pending
// queue and the per-slave arrival queues previously re-sliced a plain
// []int on every dequeue, which turned each dispatch into an O(queue)
// memmove (and, for the slave queues, let append reallocate behind the
// advancing slice header). Here PopFront is O(1): the head index moves
// forward and the backing array is recycled whenever the queue drains,
// so a run's queue traffic settles into zero allocations after warm-up.
//
// Removal order is part of the determinism contract: RemoveAt preserves
// the relative order of the survivors exactly as the old slice-splice
// did, so scheduler-visible FIFO positions are bit-identical.
type taskFIFO struct {
	buf  []int
	head int
}

// grow preallocates capacity for n queued values.
func (q *taskFIFO) grow(n int) {
	if cap(q.buf)-len(q.buf) >= n {
		return
	}
	buf := make([]int, len(q.buf), len(q.buf)+n)
	copy(buf, q.buf)
	q.buf = buf
}

// Len returns the number of queued values.
func (q *taskFIFO) Len() int { return len(q.buf) - q.head }

// At returns the i-th queued value in FIFO order.
func (q *taskFIFO) At(i int) int { return q.buf[q.head+i] }

// Front returns the oldest value without removing it.
func (q *taskFIFO) Front() (int, bool) {
	if q.head == len(q.buf) {
		return 0, false
	}
	return q.buf[q.head], true
}

// Push appends a value.
func (q *taskFIFO) Push(v int) { q.buf = append(q.buf, v) }

// PopFront removes and returns the oldest value. It panics on an empty
// queue (a programming error in the engine, not a runtime condition).
func (q *taskFIFO) PopFront() int {
	v := q.buf[q.head]
	q.head++
	q.recycle()
	return v
}

// RemoveAt removes the i-th queued value, preserving the order of the
// rest. The front removal (the overwhelmingly common case: schedulers
// dispatch FirstPending) is O(1); mid-queue removal shifts the shorter
// side.
func (q *taskFIFO) RemoveAt(i int) {
	if i == 0 {
		q.head++
		q.recycle()
		return
	}
	pos := q.head + i
	if i < q.Len()-i {
		// Shift the (shorter) front segment right and advance the head.
		copy(q.buf[q.head+1:pos+1], q.buf[q.head:pos])
		q.head++
	} else {
		q.buf = append(q.buf[:pos], q.buf[pos+1:]...)
	}
	q.recycle()
}

// IndexOf returns the FIFO position of v, or -1.
func (q *taskFIFO) IndexOf(v int) int {
	for i := q.head; i < len(q.buf); i++ {
		if q.buf[i] == v {
			return i - q.head
		}
	}
	return -1
}

// Reset empties the queue, keeping the backing array.
func (q *taskFIFO) Reset() {
	q.buf = q.buf[:0]
	q.head = 0
}

// recycle rewinds the backing array once the queue drains, so the next
// Push reuses the space instead of growing the slice forever.
func (q *taskFIFO) recycle() {
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
}
