package sim

// Driver is the master-side half of the one-port model, factored out of
// the discrete-event engine so that every concrete master — the
// message-passing emulation in internal/mpiexp and the concurrent live
// runtime in internal/live — drives a Scheduler through identical
// bookkeeping: the admitted task list, the pending (released, unsent)
// queue, the dispatch Ledger, per-task schedule records, and the
// observation feed of actual send/computation durations.
//
// The Driver implements exactly the state a real master can know. It is
// told about admissions, dispatch decisions, arrivals and completions by
// the substrate that owns ground truth (virtual-time kernel, goroutine
// workers, or a physical cluster) and exposes the scheduler-visible
// projection of that state as a DynamicView, so the same unmodified
// Scheduler implementations run on every substrate and — on deterministic
// substrates — reproduce the engine's decisions bit for bit.

import (
	"fmt"

	"repro/internal/core"
)

// Driver is master-side bookkeeping for one run. It is not safe for
// concurrent use: all mutation must come from the single master loop.
type Driver struct {
	pl      core.Platform
	now     func() float64
	tasks   []core.Task
	records []core.Record
	pending taskFIFO // released, unsent task indices, FIFO
	sent    []bool
	done    []bool
	ledger  *Ledger
	obsComm []ewma
	obsComp []ewma

	completed int
	retracted int
	view      driverView
}

// NewDriver creates bookkeeping for a master serving the given platform.
// The now function supplies the substrate's current time; the View and
// validation messages use it.
func NewDriver(pl core.Platform, now func() float64) *Driver {
	m := pl.M()
	d := &Driver{
		pl:      pl.Clone(),
		now:     now,
		ledger:  NewLedger(m),
		obsComm: make([]ewma, m),
		obsComp: make([]ewma, m),
	}
	d.view.d = d
	return d
}

// Admit registers a task the master just learned about and appends it to
// the pending queue. Task IDs are assigned densely in admission order
// (the Release field is kept as given: for streaming masters it is the
// moment the submission arrived). The assigned ID is returned.
func (d *Driver) Admit(task core.Task) core.TaskID {
	idx := len(d.tasks)
	task.ID = core.TaskID(idx)
	d.tasks = append(d.tasks, task)
	d.records = append(d.records, core.Record{Task: task.ID, Slave: -1, Release: task.Release})
	d.sent = append(d.sent, false)
	d.done = append(d.done, false)
	d.pending.Push(idx)
	return task.ID
}

// MarkSent validates and records a dispatch decision made at the current
// time: the task leaves the pending queue, its send start is stamped, and
// the ledger predicts its arrival with the nominal link cost. Like the
// engine, scheduler protocol violations (unknown task, unknown slave,
// re-send, unreleased task) are programming errors and panic.
func (d *Driver) MarkSent(scheduler string, task core.TaskID, j int) {
	idx := int(task)
	if idx < 0 || idx >= len(d.tasks) {
		panic(fmt.Sprintf("sim: scheduler %s sent unknown task %d", scheduler, task))
	}
	if j < 0 || j >= d.pl.M() {
		panic(fmt.Sprintf("sim: scheduler %s used unknown slave %d", scheduler, j))
	}
	if d.sent[idx] {
		panic(fmt.Sprintf("sim: scheduler %s re-sent task %d", scheduler, task))
	}
	pos := d.pending.IndexOf(idx)
	if pos < 0 {
		panic(fmt.Sprintf("sim: scheduler %s sent unreleased task %d at %v", scheduler, task, d.now()))
	}
	d.pending.RemoveAt(pos)
	d.sent[idx] = true
	now := d.now()
	d.records[idx].Slave = j
	d.records[idx].SendStart = now
	d.ledger.Assign(j, idx, now+d.pl.C[j])
}

// MarkArrived records the observed send completion: the master
// experiences its own port, so the actual transfer duration feeds the
// observation stream and corrects the ledger's arrival prediction.
func (d *Driver) MarkArrived(task core.TaskID, j int, at float64) {
	idx := int(task)
	d.records[idx].Arrive = at
	d.obsComm[j].observe(at - d.records[idx].SendStart)
	d.ledger.Arrived(j, idx, at)
}

// MarkCompleted records a completion notification carrying the slave's
// reported computation window. The actual computation duration feeds the
// observation stream, mirroring the engine's evComputeComplete handling.
func (d *Driver) MarkCompleted(task core.TaskID, j int, start, complete float64) {
	idx := int(task)
	d.records[idx].Start = start
	d.records[idx].Complete = complete
	d.done[idx] = true
	d.completed++
	d.obsComp[j].observe(complete - start)
	d.ledger.Completed(j, idx, complete)
}

// RetractNewest removes up to n tasks from the BACK of the pending queue
// and returns them in retraction order (newest first). Retraction is the
// master-side half of cross-shard work stealing: the thief takes the
// youngest backlog — the work-stealing-deque discipline — so the jobs
// the owner is about to dispatch (the FIFO front) keep their position
// and the migrated jobs are the ones that would have waited longest.
// A retracted task stays admitted (IDs remain dense) but is permanently
// out of the pending queue: it can never be sent here, its record keeps
// zero dispatch fields, and Done+Retracted==Admitted is the completion
// condition for masters that allow stealing.
func (d *Driver) RetractNewest(n int) []core.Task {
	if n > d.pending.Len() {
		n = d.pending.Len()
	}
	if n <= 0 {
		return nil
	}
	out := make([]core.Task, 0, n)
	for i := 0; i < n; i++ {
		last := d.pending.Len() - 1
		idx := d.pending.At(last)
		d.pending.RemoveAt(last)
		d.retracted++
		out = append(out, d.tasks[idx])
	}
	return out
}

// Admitted returns the number of tasks admitted so far.
func (d *Driver) Admitted() int { return len(d.tasks) }

// Retracted returns the number of tasks retracted by RetractNewest.
func (d *Driver) Retracted() int { return d.retracted }

// Done returns the number of completed tasks.
func (d *Driver) Done() int { return d.completed }

// PendingCount returns the number of released, unsent tasks.
func (d *Driver) PendingCount() int { return d.pending.Len() }

// Task returns an admitted task by ID.
func (d *Driver) Task(id core.TaskID) core.Task { return d.tasks[id] }

// Platform returns the nominal platform the master believes in.
func (d *Driver) Platform() core.Platform { return d.pl }

// View returns the scheduler-visible projection of the master's state.
// It implements DynamicView: on a static platform every slave is alive,
// and the observation feed carries the actual durations the master
// measured, exactly as the engine's view does.
func (d *Driver) View() View { return &d.view }

// Schedule assembles the schedule recorded so far. On a completed run it
// is a full, validatable core.Schedule; mid-run, records of unfinished
// tasks have zero fields (like Engine.Snapshot).
func (d *Driver) Schedule() core.Schedule {
	inst := core.Instance{Platform: d.pl.Clone(), Tasks: append([]core.Task(nil), d.tasks...)}
	return core.Schedule{Instance: inst, Records: append([]core.Record(nil), d.records...)}
}

// driverView is the Driver-backed DynamicView. Its float expressions
// mirror engineView operation for operation: bit-identical inputs must
// yield bit-identical scheduler decisions.
type driverView struct {
	d *Driver
}

// Now returns the current time.
func (v *driverView) Now() float64 { return v.d.now() }

// M returns the number of slaves.
func (v *driverView) M() int { return v.d.pl.M() }

// Comm returns the nominal communication time c_j.
func (v *driverView) Comm(j int) float64 { return v.d.pl.C[j] }

// Comp returns the nominal computation time p_j.
func (v *driverView) Comp(j int) float64 { return v.d.pl.P[j] }

// PendingCount returns the number of released, unsent tasks.
func (v *driverView) PendingCount() int { return v.d.pending.Len() }

// PendingAt returns the i-th pending task in release (FIFO) order.
func (v *driverView) PendingAt(i int) core.TaskID { return core.TaskID(v.d.pending.At(i)) }

// FirstPending returns the oldest pending task.
func (v *driverView) FirstPending() (core.TaskID, bool) {
	t, ok := v.d.pending.Front()
	return core.TaskID(t), ok
}

// Release returns the release time of a task.
func (v *driverView) Release(task core.TaskID) float64 { return v.d.tasks[task].Release }

// Outstanding returns the number of tasks assigned to slave j and not yet
// completed (in flight, queued, or computing).
func (v *driverView) Outstanding(j int) int { return v.d.ledger.Outstanding(j) }

// ReadyEstimate returns the master's nominal-cost estimate of when slave
// j will drain its outstanding backlog.
func (v *driverView) ReadyEstimate(j int) float64 { return v.d.ledger.Ready(j, v.d.pl.P[j]) }

// PredictFinish estimates the completion time of a task sent to slave j
// right now, under nominal costs. The float expression mirrors
// engineView.PredictFinish operation for operation (bit-identical
// inputs must yield bit-identical decisions).
func (v *driverView) PredictFinish(j int) float64 {
	start := v.d.now() + v.d.pl.C[j]
	if ready := v.ReadyEstimate(j); ready > start {
		start = ready
	}
	return start + v.d.pl.P[j]
}

// ReleasedCount returns how many tasks have been released so far: a
// master admits a task the moment it is released (or submitted), so this
// is the admission count.
func (v *driverView) ReleasedCount() int { return len(v.d.tasks) }

// CompletedCount returns how many tasks have finished.
func (v *driverView) CompletedCount() int { return v.d.completed }

// Alive implements DynamicView: Driver-backed masters run static
// platforms, where every slave accepts sends.
func (v *driverView) Alive(int) bool { return true }

// ObservedComm implements DynamicView.
func (v *driverView) ObservedComm(j int) (float64, bool) {
	o := v.d.obsComm[j]
	return o.mean, o.seen
}

// ObservedComp implements DynamicView.
func (v *driverView) ObservedComp(j int) (float64, bool) {
	o := v.d.obsComp[j]
	return o.mean, o.seen
}
