package sim

// Direct unit coverage for the exported master-side Driver; the heavier
// contracts (decision-for-decision agreement with the engine) are pinned
// by the mpiexp cross-validation and the live conformance suite.

import (
	"testing"

	"repro/internal/core"
)

func driverAt(now *float64) *Driver {
	return NewDriver(core.NewPlatform([]float64{1, 2}, []float64{3, 5}), func() float64 { return *now })
}

func TestDriverLifecycle(t *testing.T) {
	now := 0.0
	d := driverAt(&now)
	if d.Admitted() != 0 || d.PendingCount() != 0 || d.Done() != 0 {
		t.Fatal("fresh driver not empty")
	}
	id := d.Admit(core.Task{Release: 0})
	if id != 0 || d.Admitted() != 1 || d.PendingCount() != 1 {
		t.Fatalf("admit: id=%d admitted=%d pending=%d", id, d.Admitted(), d.PendingCount())
	}
	v := d.View()
	if got, ok := v.FirstPending(); !ok || got != 0 {
		t.Fatalf("FirstPending %v %v", got, ok)
	}
	if v.ReleasedCount() != 1 || v.Outstanding(0) != 0 {
		t.Fatal("view counts wrong")
	}
	// Dispatch at t=0: ledger predicts arrival with the nominal cost.
	d.MarkSent("test", 0, 0)
	if d.PendingCount() != 0 || v.Outstanding(0) != 1 {
		t.Fatal("dispatch bookkeeping wrong")
	}
	if got := v.ReadyEstimate(0); got != 4 { // predicted arrive 1 + p 3
		t.Fatalf("ReadyEstimate %v", got)
	}
	// Actual arrival later than predicted: the observation feed and the
	// ledger both switch to the measurement.
	now = 1.5
	d.MarkArrived(0, 0, 1.5)
	if obs, ok := v.(DynamicView).ObservedComm(0); !ok || obs != 1.5 {
		t.Fatalf("ObservedComm %v %v", obs, ok)
	}
	if got := v.ReadyEstimate(0); got != 4.5 {
		t.Fatalf("ReadyEstimate after arrival %v", got)
	}
	now = 5.0
	d.MarkCompleted(0, 0, 1.5, 5.0)
	if d.Done() != 1 || v.Outstanding(0) != 0 || v.CompletedCount() != 1 {
		t.Fatal("completion bookkeeping wrong")
	}
	if obs, ok := v.(DynamicView).ObservedComp(0); !ok || obs != 3.5 {
		t.Fatalf("ObservedComp %v %v", obs, ok)
	}
	s := d.Schedule()
	if len(s.Records) != 1 {
		t.Fatalf("%d records", len(s.Records))
	}
	want := core.Record{Task: 0, Slave: 0, Release: 0, SendStart: 0, Arrive: 1.5, Start: 1.5, Complete: 5}
	if s.Records[0] != want {
		t.Fatalf("record %+v, want %+v", s.Records[0], want)
	}
	if err := core.ValidateSchedule(core.Schedule{
		Instance: core.Instance{Platform: core.NewPlatform([]float64{1.5}, []float64{3.5}), Tasks: s.Instance.Tasks},
		Records:  s.Records,
	}); err != nil {
		t.Fatalf("records do not validate against their measured costs: %v", err)
	}
}

func TestDriverAlive(t *testing.T) {
	now := 0.0
	d := driverAt(&now)
	dv := d.View().(DynamicView)
	for j := 0; j < 2; j++ {
		if !dv.Alive(j) {
			t.Fatalf("slave %d dead on a static platform", j)
		}
	}
}

func TestDriverRetractNewest(t *testing.T) {
	now := 0.0
	d := driverAt(&now)
	for i := 0; i < 5; i++ {
		d.Admit(core.Task{ID: core.TaskID(i), Release: 0})
	}

	got := d.RetractNewest(2)
	if len(got) != 2 || got[0].ID != 4 || got[1].ID != 3 {
		t.Fatalf("RetractNewest(2) = %+v, want tasks 4 then 3", got)
	}
	if d.Retracted() != 2 || d.PendingCount() != 3 || d.Admitted() != 5 {
		t.Fatalf("counts after retract: retracted=%d pending=%d admitted=%d",
			d.Retracted(), d.PendingCount(), d.Admitted())
	}
	// The FIFO front is untouched: the oldest task still dispatches first.
	if id, ok := d.View().FirstPending(); !ok || id != 0 {
		t.Fatalf("FirstPending after retract = %v %v, want 0", id, ok)
	}

	// Over-ask empties the queue without inventing tasks.
	rest := d.RetractNewest(10)
	if len(rest) != 3 || rest[0].ID != 2 || rest[2].ID != 0 {
		t.Fatalf("over-ask returned %+v, want tasks 2,1,0", rest)
	}
	if d.Retracted() != 5 || d.PendingCount() != 0 {
		t.Fatalf("counts after over-ask: retracted=%d pending=%d", d.Retracted(), d.PendingCount())
	}

	// Empty queue and non-positive asks are nil no-ops.
	if d.RetractNewest(1) != nil || d.RetractNewest(0) != nil || d.RetractNewest(-3) != nil {
		t.Fatal("retraction from an empty queue (or n<=0) must return nil")
	}
	if d.Retracted() != 5 {
		t.Fatalf("no-op retractions changed the count to %d", d.Retracted())
	}
}

func TestDriverProtocolViolationsPanic(t *testing.T) {
	cases := []struct {
		name string
		run  func(d *Driver)
	}{
		{"unknown task", func(d *Driver) { d.MarkSent("t", 9, 0) }},
		{"unknown slave", func(d *Driver) { d.Admit(core.Task{}); d.MarkSent("t", 0, 7) }},
		{"re-send", func(d *Driver) { d.Admit(core.Task{}); d.MarkSent("t", 0, 0); d.MarkSent("t", 0, 0) }},
	}
	for _, c := range cases {
		func() {
			now := 0.0
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", c.name)
				}
			}()
			c.run(driverAt(&now))
		}()
	}
}
