package sim

// Interleaving coverage for the incremental-execution surface the
// adversaries and the streaming facades rely on: InjectTask at the
// current instant, between consults, and after the last event must
// preserve event ordering and produce deterministic, valid schedules
// identical to an equivalent up-front run.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// lsLike is a minimal earliest-finish scheduler, local to the test so the
// package does not import internal/sched (which depends on sim).
type lsLike struct{}

func (lsLike) Name() string        { return "test-ls" }
func (lsLike) Reset(core.Platform) {}
func (s lsLike) Decide(v View) Action {
	task, ok := v.FirstPending()
	if !ok {
		return Idle()
	}
	best := 0
	for j := 1; j < v.M(); j++ {
		if v.PredictFinish(j) < v.PredictFinish(best) {
			best = j
		}
	}
	return Send(task, best)
}

func testInjectPlatform() core.Platform {
	return core.NewPlatform([]float64{1, 1}, []float64{2, 5})
}

// runUpfront simulates the same releases given at construction time.
func runUpfront(t *testing.T, releases []float64) core.Schedule {
	t.Helper()
	s, err := Simulate(testInjectPlatform(), lsLike{}, core.ReleasesAt(releases...))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestInjectAtCurrentInstant injects a task released exactly at the
// engine's current time and checks the run matches the up-front one.
func TestInjectAtCurrentInstant(t *testing.T) {
	e := New(testInjectPlatform(), lsLike{}, core.ReleasesAt(0, 1))
	e.AdvanceTo(1) // clock is now exactly 1
	if got := e.Now(); got != 1 {
		t.Fatalf("now = %v", got)
	}
	id := e.InjectTask(core.Task{Release: 1})
	if id != 2 {
		t.Fatalf("injected task got ID %d", id)
	}
	s, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSchedule(s); err != nil {
		t.Fatal(err)
	}
	want := runUpfront(t, []float64{0, 1, 1})
	for i := range want.Records {
		if s.Records[i] != want.Records[i] {
			t.Fatalf("task %d: incremental %+v, up-front %+v", i, s.Records[i], want.Records[i])
		}
	}
}

// TestInjectBetweenConsults advances into the middle of the run (between
// scheduler consults), injects, and compares against the up-front run.
func TestInjectBetweenConsults(t *testing.T) {
	e := New(testInjectPlatform(), lsLike{}, core.ReleasesAt(0, 0, 0))
	e.AdvanceTo(2.5) // mid-run: first sends done, computations in flight
	id := e.InjectTask(core.Task{Release: 4})
	if id != 3 {
		t.Fatalf("injected task got ID %d", id)
	}
	s, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSchedule(s); err != nil {
		t.Fatal(err)
	}
	want := runUpfront(t, []float64{0, 0, 0, 4})
	for i := range want.Records {
		if s.Records[i] != want.Records[i] {
			t.Fatalf("task %d: incremental %+v, up-front %+v", i, s.Records[i], want.Records[i])
		}
	}
}

// TestInjectAfterLastEvent drains the whole instance, then injects more
// work: the engine must pick it up and the combined schedule must match
// an up-front run with the same releases.
func TestInjectAfterLastEvent(t *testing.T) {
	e := New(testInjectPlatform(), lsLike{}, core.ReleasesAt(0))
	e.AdvanceTo(100) // far past the last event; the instance is fully done
	if e.Completed(0) != true {
		t.Fatal("first task should have completed")
	}
	id := e.InjectTask(core.Task{Release: 100})
	if id != 1 {
		t.Fatalf("injected task got ID %d", id)
	}
	s, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSchedule(s); err != nil {
		t.Fatal(err)
	}
	want := runUpfront(t, []float64{0, 100})
	for i := range want.Records {
		if s.Records[i] != want.Records[i] {
			t.Fatalf("task %d: incremental %+v, up-front %+v", i, s.Records[i], want.Records[i])
		}
	}
}

// TestInjectBeforeNowPanics pins the guard: releases must not precede
// the clock.
func TestInjectBeforeNowPanics(t *testing.T) {
	e := New(testInjectPlatform(), lsLike{}, core.ReleasesAt(0))
	e.AdvanceTo(3)
	defer func() {
		if recover() == nil {
			t.Fatal("past-release injection accepted")
		}
	}()
	e.InjectTask(core.Task{Release: 2})
}

// TestAdvanceToBackwardsPanics pins the other guard.
func TestAdvanceToBackwardsPanics(t *testing.T) {
	e := New(testInjectPlatform(), lsLike{}, core.ReleasesAt(0))
	e.AdvanceTo(2)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards advance accepted")
		}
	}()
	e.AdvanceTo(1)
}

// TestInterleavedAdvanceDeterminism drives the same randomized
// release/injection script twice with different AdvanceTo step sizes:
// the final schedules must be identical — incremental execution is pure
// bookkeeping, never a semantic knob.
func TestInterleavedAdvanceDeterminism(t *testing.T) {
	// The releases are fixed up front; only the AdvanceTo step size (the
	// injection interleaving) varies between the two runs.
	rng := rand.New(rand.NewSource(7))
	releases := make([]float64, 12)
	at := 0.5
	for i := range releases {
		releases[i] = at
		at += rng.Float64() * 2
	}
	script := func(step float64) core.Schedule {
		e := New(testInjectPlatform(), lsLike{}, core.ReleasesAt(0, 0))
		next := 0
		for next < len(releases) {
			// Inject everything due before the clock could pass it, then
			// advance one step.
			for next < len(releases) && releases[next] <= e.Now()+step {
				e.InjectTask(core.Task{Release: releases[next]})
				next++
			}
			e.AdvanceTo(e.Now() + step)
		}
		s, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := script(0.25), script(1.75)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("task %d: step 0.25 %+v, step 1.75 %+v", i, a.Records[i], b.Records[i])
		}
	}
	if err := core.ValidateSchedule(a); err != nil {
		t.Fatal(err)
	}
}
