// Package sim implements a deterministic discrete-event simulator of the
// paper's one-port master-slave machine. A Scheduler is consulted whenever
// the master's outgoing port is free and work is pending; the engine
// enforces the one-port constraint, per-slave FIFO execution, release
// dates, and per-task size perturbation, and produces a complete
// core.Schedule trace.
//
// The engine supports incremental execution (AdvanceTo) and dynamic task
// injection, which is what the Section-3 adversaries need to observe an
// algorithm's decisions before choosing the rest of the instance.
package sim

import (
	"fmt"

	"repro/internal/core"
)

// ActionKind discriminates scheduler decisions.
type ActionKind int

const (
	// ActSend starts shipping a pending task to a slave immediately.
	ActSend ActionKind = iota
	// ActWait asks to be consulted again at a given time (or earlier if
	// anything happens).
	ActWait
	// ActIdle asks to be consulted again at the next state change.
	ActIdle
)

// Action is a scheduler decision.
type Action struct {
	Kind  ActionKind
	Task  core.TaskID
	Slave int
	Until float64
}

// Send builds a dispatch action.
func Send(task core.TaskID, slave int) Action {
	return Action{Kind: ActSend, Task: task, Slave: slave}
}

// Wait builds a wake-me-at action.
func Wait(until float64) Action { return Action{Kind: ActWait, Until: until} }

// Idle builds a consult-me-on-next-event action.
func Idle() Action { return Action{Kind: ActIdle} }

// Scheduler is an on-line scheduling algorithm. Decide is called whenever
// the port is free and at least one released task is unsent; the scheduler
// never sees future releases or actual (perturbed) task sizes.
type Scheduler interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Reset prepares internal state for a fresh run on the platform.
	Reset(pl core.Platform)
	// Decide picks the next action given the observable state.
	Decide(v View) Action
}

// View is the scheduler-visible projection of the execution state: static
// platform costs, the master's own bookkeeping, and pending tasks — never
// future releases or actual perturbed sizes. The discrete-event engine
// provides one implementation; the message-passing emulation in
// internal/mpiexp provides another, so the same Scheduler values drive
// both substrates.
type View interface {
	// Now returns the current time.
	Now() float64
	// M returns the number of slaves.
	M() int
	// Comm returns the nominal communication time c_j.
	Comm(j int) float64
	// Comp returns the nominal computation time p_j.
	Comp(j int) float64
	// PendingCount returns the number of released, unsent tasks.
	PendingCount() int
	// PendingAt returns the i-th pending task in release (FIFO) order.
	PendingAt(i int) core.TaskID
	// FirstPending returns the oldest pending task.
	FirstPending() (core.TaskID, bool)
	// Release returns the release time of a task.
	Release(task core.TaskID) float64
	// Outstanding returns the number of tasks assigned to slave j and not
	// yet completed (in flight, queued, or computing).
	Outstanding(j int) int
	// ReadyEstimate returns the master's nominal-cost estimate of when
	// slave j will drain its outstanding backlog.
	ReadyEstimate(j int) float64
	// PredictFinish estimates the completion time of a task sent to slave
	// j right now, under nominal costs.
	PredictFinish(j int) float64
	// ReleasedCount returns how many tasks have been released so far.
	ReleasedCount() int
	// CompletedCount returns how many tasks have finished.
	CompletedCount() int
}

// slaveState is the ground-truth state of one slave.
type slaveState struct {
	queue     taskFIFO // arrived tasks waiting, FIFO (task indices)
	computing int      // task index, or -1
	busyUntil float64
}

// Option configures an Engine.
type Option func(*Engine)

// WithUnboundedPort switches the engine to the macro-dataflow model the
// paper's Section 5 contrasts with: the master may transmit to any number
// of slaves simultaneously, so sends never contend for the port. Used by
// the model ablation to show that the one-port constraint is what makes
// link heterogeneity matter; schedules produced under this option violate
// the one-port validator by design (use core.ValidateMultiport).
func WithUnboundedPort() Option {
	return func(e *Engine) { e.unboundedPort = true }
}

// Engine simulates one scheduler on one platform. The platform may change
// mid-run through the dynamics hooks in dynamics.go (slave failures,
// recoveries, joins, departures and speed drift); a static run never
// touches them and behaves exactly as before.
type Engine struct {
	pl     core.Platform // nominal costs: what the master (and View) believes
	actual core.Platform // ground-truth costs: what sends and computations take
	sched  Scheduler

	unboundedPort bool

	now    float64
	events eventHeap
	// The initial workload's release "events" are never queued: tasks are
	// sorted by release date, so nextRelease streams them from the task
	// list directly and the heap holds only in-flight events (a handful:
	// per-slave completions, one send, wakes). That keeps every heap
	// operation near-constant depth instead of O(log n-tasks). Injected
	// tasks (the adversaries' path) still queue real release events; the
	// merge in peekNext keeps the combined order identical to a heap
	// holding everything.
	nextRelease int
	initial     int // tasks[0:initial] are the sorted initial workload
	tasks       []core.Task
	records     []core.Record
	sent        []bool
	done        []bool
	pending     taskFIFO // released, unsent task indices, FIFO
	released    int      // tasks whose release event has been processed
	portFree    float64
	slaves      []slaveState
	model       *Ledger

	// Dynamic-platform state (dynamics.go). halt is the typed error that
	// stops the simulation when the scheduler targets a dead slave.
	alive     []bool
	departed  []bool
	lost      []bool // per task: true once a failure destroyed the attempt
	lostCount int
	obsComm   []ewma // observed send durations per slave
	obsComp   []ewma // observed computation durations per slave
	halt      error

	completed int
	view      engineView
}

// New builds an engine for the given platform, scheduler and initial task
// set. Tasks are normalized (sorted by release, densely renumbered) before
// the run; more tasks may be injected later via InjectTask.
func New(pl core.Platform, sched Scheduler, tasks []core.Task, opts ...Option) *Engine {
	inst := core.NewInstance(pl, tasks)
	m := inst.Platform.M()
	n := len(inst.Tasks)
	e := &Engine{
		pl:       inst.Platform.Clone(),
		actual:   inst.Platform.Clone(),
		sched:    sched,
		slaves:   make([]slaveState, m),
		model:    NewLedger(m),
		alive:    make([]bool, m),
		departed: make([]bool, m),
		obsComm:  make([]ewma, m),
		obsComp:  make([]ewma, m),
		// Every per-task slice is sized for the initial workload up front;
		// a run without injection or churn never grows them again.
		tasks:   make([]core.Task, 0, n),
		records: make([]core.Record, 0, n),
		sent:    make([]bool, 0, n),
		done:    make([]bool, 0, n),
		lost:    make([]bool, 0, n),
	}
	e.pending.grow(n)
	// Beyond the streamed initial releases, a task queues at most two
	// coexisting events (send completion, compute completion).
	e.events.Grow(2*m + 8)
	for _, opt := range opts {
		opt(e)
	}
	for j := range e.slaves {
		e.slaves[j].computing = -1
		e.alive[j] = true
	}
	sched.Reset(e.pl.Clone())
	// The initial workload is sorted by release (NewInstance normalizes),
	// so it is streamed by nextRelease rather than queued as heap events.
	for _, task := range inst.Tasks {
		e.addTask(task)
	}
	e.initial = len(e.tasks)
	e.view = engineView{e: e}
	return e
}

func (e *Engine) addTask(task core.Task) int {
	idx := len(e.tasks)
	task.ID = core.TaskID(idx)
	e.tasks = append(e.tasks, task)
	e.records = append(e.records, core.Record{Task: task.ID, Slave: -1, Release: task.Release})
	e.sent = append(e.sent, false)
	e.done = append(e.done, false)
	e.lost = append(e.lost, false)
	return idx
}

// InjectTask adds a task mid-run. Its release time must not precede the
// current simulation time. The assigned TaskID is returned.
func (e *Engine) InjectTask(task core.Task) core.TaskID {
	if task.Release < e.now {
		panic(fmt.Sprintf("sim: injecting task released at %v before now %v", task.Release, e.now))
	}
	idx := e.addTask(task)
	// Injected tasks release through the heap; ties with streamed initial
	// releases resolve in favor of the stream (see peekNext), matching
	// the old all-in-heap insertion order.
	e.events.Push(event{Time: task.Release, Kind: evRelease, Task: int32(idx)})
	return core.TaskID(idx)
}

// peekNext returns the next event in the merged order of the queued
// events and the streamed initial releases. A streamed release wins
// every tie against a queued event at the same time: releases carry the
// lowest kind, and within evRelease any queued (injected) release was
// created after every initial task, so the old all-in-heap order had it
// later too.
func (e *Engine) peekNext() (event, bool) {
	top, ok := e.events.Peek()
	if e.nextRelease < e.initial {
		rel := e.tasks[e.nextRelease].Release
		if !ok || rel <= top.Time {
			return event{Time: rel, Kind: evRelease, Task: int32(e.nextRelease)}, true
		}
	}
	return top, ok
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Platform returns the platform under simulation.
func (e *Engine) Platform() core.Platform { return e.pl }

// TaskCount returns the number of tasks known so far.
func (e *Engine) TaskCount() int { return len(e.tasks) }

// Started reports whether the algorithm has begun sending the task, and
// if so to which slave and when. This is the observation primitive used by
// the Section-3 adversaries ("we check whether A made a decision
// concerning the scheduling of i, and which one").
func (e *Engine) Started(task core.TaskID) (slave int, at float64, ok bool) {
	if int(task) >= len(e.records) || !e.sent[task] {
		return 0, 0, false
	}
	r := e.records[task]
	return r.Slave, r.SendStart, true
}

// Completed reports whether the task has finished computing.
func (e *Engine) Completed(task core.TaskID) bool {
	return int(task) < len(e.done) && e.done[task]
}

// processEvent applies one event to the ground-truth state.
func (e *Engine) processEvent(ev event) {
	e.now = ev.Time
	task := int(ev.Task)
	switch ev.Kind {
	case evRelease:
		e.pending.Push(task)
		e.released++
	case evSendComplete:
		j := int(ev.Dest)
		e.records[task].Arrive = e.now
		e.obsComm[j].observe(e.now - e.records[task].SendStart)
		e.model.Arrived(j, task, e.now)
		s := &e.slaves[j]
		if s.computing < 0 {
			e.startCompute(j, task)
		} else {
			s.queue.Push(task)
		}
	case evComputeComplete:
		j := int(ev.Dest)
		s := &e.slaves[j]
		if s.computing != task {
			panic(fmt.Sprintf("sim: slave %d completed task %d while computing %d", j, task, s.computing))
		}
		e.records[task].Complete = e.now
		e.done[task] = true
		e.completed++
		e.obsComp[j].observe(e.now - e.records[task].Start)
		e.model.Completed(j, task, e.now)
		s.computing = -1
		if s.queue.Len() > 0 {
			e.startCompute(j, s.queue.PopFront())
		}
	case evWake:
		// No state change; merely triggers a consult.
	}
}

func (e *Engine) startCompute(j, task int) {
	s := &e.slaves[j]
	dur := e.actual.P[j] * e.tasks[task].EffComp()
	s.computing = task
	s.busyUntil = e.now + dur
	e.records[task].Start = e.now
	e.events.Push(event{Time: s.busyUntil, Kind: evComputeComplete, Task: int32(task), Dest: int32(j)})
}

// consult gives the scheduler a chance to act. Called only when the port
// is free. Returns after the scheduler sends (port busy again), waits,
// idles, or commits a halting violation (dead-slave dispatch).
func (e *Engine) consult() {
	for e.halt == nil && e.portFree <= e.now && e.pending.Len() > 0 {
		act := e.sched.Decide(&e.view)
		switch act.Kind {
		case ActSend:
			e.startSend(act.Task, act.Slave)
			if e.halt != nil {
				return
			}
			if e.unboundedPort {
				continue // the port never blocks: keep consulting
			}
			return // port is busy now
		case ActWait:
			if act.Until <= e.now {
				panic(fmt.Sprintf("sim: scheduler %s waits until %v which is not after now %v",
					e.sched.Name(), act.Until, e.now))
			}
			e.events.Push(event{Time: act.Until, Kind: evWake})
			return
		case ActIdle:
			return
		default:
			panic(fmt.Sprintf("sim: unknown action kind %d", act.Kind))
		}
	}
}

func (e *Engine) startSend(task core.TaskID, j int) {
	idx := int(task)
	if idx < 0 || idx >= len(e.tasks) {
		panic(fmt.Sprintf("sim: scheduler %s sent unknown task %d", e.sched.Name(), task))
	}
	if j < 0 || j >= e.pl.M() {
		panic(fmt.Sprintf("sim: scheduler %s used unknown slave %d", e.sched.Name(), j))
	}
	if e.sent[idx] {
		panic(fmt.Sprintf("sim: scheduler %s re-sent task %d", e.sched.Name(), task))
	}
	pos := e.pending.IndexOf(idx)
	if pos < 0 {
		panic(fmt.Sprintf("sim: scheduler %s sent unreleased task %d at %v", e.sched.Name(), task, e.now))
	}
	if !e.alive[j] {
		// A dead or departed target is an observable runtime condition, not
		// a programming error: surface it as a typed validation error and
		// halt the simulation instead of panicking or silently dropping.
		e.halt = &DeadSlaveError{Scheduler: e.sched.Name(), Task: task, Slave: j, Time: e.now, Departed: e.departed[j]}
		return
	}
	e.pending.RemoveAt(pos)
	e.sent[idx] = true
	dur := e.actual.C[j] * e.tasks[idx].EffComm()
	e.records[idx].Slave = j
	e.records[idx].SendStart = e.now
	arrive := e.now + dur
	if !e.unboundedPort {
		e.portFree = arrive
	}
	// The master predicts arrival with the nominal link cost; the actual
	// arrival (evSendComplete) corrects the bookkeeping.
	e.model.Assign(j, idx, e.now+e.pl.C[j])
	e.events.Push(event{Time: arrive, Kind: evSendComplete, Task: int32(idx), Dest: int32(j)})
}

// step drains every event at the next event time, then consults the
// scheduler. It reports whether an event was processed.
func (e *Engine) step() bool {
	if e.halt != nil {
		return false
	}
	top, hasTop := e.events.Peek()
	var t float64
	switch {
	case e.nextRelease < e.initial:
		t = e.tasks[e.nextRelease].Release
		if hasTop && top.Time < t {
			t = top.Time
		}
	case hasTop:
		t = top.Time
	default:
		return false
	}
	// Streamed initial releases at t precede every queued event at t
	// (evRelease is the lowest kind and initial tasks predate all queued
	// events of that kind), so the whole batch drains first, inline.
	for e.nextRelease < e.initial && e.tasks[e.nextRelease].Release == t {
		e.now = t
		e.pending.Push(e.nextRelease)
		e.released++
		e.nextRelease++
	}
	for hasTop && top.Time == t {
		e.processEvent(e.events.Pop())
		top, hasTop = e.events.Peek()
	}
	e.consult()
	return true
}

// AdvanceTo processes all events up to and including time t and then sets
// the clock to t. The scheduler is consulted as usual along the way.
func (e *Engine) AdvanceTo(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: cannot advance backwards from %v to %v", e.now, t))
	}
	for e.halt == nil {
		ev, ok := e.peekNext()
		if !ok || ev.Time > t {
			break
		}
		e.step()
	}
	e.now = t
}

// Run drives the simulation to completion and returns the full schedule.
// It fails if the scheduler permanently idles while work is pending, or
// with the typed DeadSlaveError if it dispatched to a dead slave. Tasks
// destroyed by slave failures (dynamics.go) are exempt from the
// completion requirement — their re-released clones are not.
func (e *Engine) Run() (core.Schedule, error) {
	for e.step() {
	}
	if e.halt != nil {
		return core.Schedule{}, e.halt
	}
	if e.completed != len(e.tasks)-e.lostCount {
		return core.Schedule{}, fmt.Errorf("sim: scheduler %s completed %d of %d tasks (idle deadlock at t=%v with %d pending)",
			e.sched.Name(), e.completed, len(e.tasks)-e.lostCount, e.now, e.pending.Len())
	}
	return e.Snapshot(), nil
}

// Snapshot assembles the schedule from the records produced so far. It is
// primarily useful after Run; during a run, records of unfinished tasks
// have zero fields.
func (e *Engine) Snapshot() core.Schedule {
	inst := core.Instance{Platform: e.pl.Clone(), Tasks: append([]core.Task(nil), e.tasks...)}
	return core.Schedule{Instance: inst, Records: append([]core.Record(nil), e.records...)}
}

// Simulate is the one-call convenience wrapper: build, run, validate.
func Simulate(pl core.Platform, sched Scheduler, tasks []core.Task) (core.Schedule, error) {
	s, err := New(pl, sched, tasks).Run()
	if err != nil {
		return core.Schedule{}, err
	}
	if err := core.ValidateSchedule(s); err != nil {
		return core.Schedule{}, fmt.Errorf("sim: %s produced an infeasible schedule: %w", sched.Name(), err)
	}
	return s, nil
}

// SimulateMultiport runs the scheduler under the macro-dataflow model
// (unbounded master ports) and validates everything except the one-port
// constraint.
func SimulateMultiport(pl core.Platform, sched Scheduler, tasks []core.Task) (core.Schedule, error) {
	s, err := New(pl, sched, tasks, WithUnboundedPort()).Run()
	if err != nil {
		return core.Schedule{}, err
	}
	if err := core.ValidateMultiport(s); err != nil {
		return core.Schedule{}, fmt.Errorf("sim: %s produced an infeasible multiport schedule: %w", sched.Name(), err)
	}
	return s, nil
}

// engineView is the Engine-backed View implementation.
type engineView struct {
	e *Engine
}

// Now returns the current time.
func (v *engineView) Now() float64 { return v.e.now }

// M returns the number of slaves.
func (v *engineView) M() int { return v.e.pl.M() }

// Comm returns the nominal communication time c_j.
func (v *engineView) Comm(j int) float64 { return v.e.pl.C[j] }

// Comp returns the nominal computation time p_j.
func (v *engineView) Comp(j int) float64 { return v.e.pl.P[j] }

// PendingCount returns the number of released, unsent tasks.
func (v *engineView) PendingCount() int { return v.e.pending.Len() }

// PendingAt returns the i-th pending task in release (FIFO) order.
func (v *engineView) PendingAt(i int) core.TaskID { return core.TaskID(v.e.pending.At(i)) }

// FirstPending returns the oldest pending task.
func (v *engineView) FirstPending() (core.TaskID, bool) {
	t, ok := v.e.pending.Front()
	return core.TaskID(t), ok
}

// Release returns the release time of a task.
func (v *engineView) Release(task core.TaskID) float64 { return v.e.tasks[task].Release }

// Outstanding returns the number of tasks assigned to slave j and not yet
// completed (in flight, queued, or computing).
func (v *engineView) Outstanding(j int) int { return v.e.model.Outstanding(j) }

// ReadyEstimate returns the master's nominal-cost estimate of when slave j
// will drain its outstanding backlog.
func (v *engineView) ReadyEstimate(j int) float64 { return v.e.model.Ready(j, v.e.pl.P[j]) }

// PredictFinish estimates the completion time of a task sent to slave j
// right now, under nominal costs: the send occupies [now, now+c_j], the
// computation starts when both the task has arrived and the slave is
// free. The max is spelled out (finite operands) — this runs once per
// slave per list-scheduler decision.
func (v *engineView) PredictFinish(j int) float64 {
	start := v.e.now + v.e.pl.C[j]
	if ready := v.ReadyEstimate(j); ready > start {
		start = ready
	}
	return start + v.e.pl.P[j]
}

// ReleasedCount returns how many tasks have been released so far: the
// count of processed release events. The engine drains every event at a
// timestamp before consulting the scheduler, so by the time any View
// method runs, each task with Release ≤ now has been counted — the
// incremental counter replaces what used to be an O(n) scan per call.
func (v *engineView) ReleasedCount() int { return v.e.released }

// CompletedCount returns how many tasks have finished.
func (v *engineView) CompletedCount() int { return v.e.completed }
