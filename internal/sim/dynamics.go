package sim

// Dynamic-platform support: the hooks internal/scenario uses to script
// slave failures, recoveries, joins, departures and speed drift on top of
// the one-port engine. A static simulation never calls anything in this
// file and is bit-for-bit unaffected by it.
//
// Semantics, in one place:
//
//   - FailSlave(j) destroys everything slave j holds — the in-flight send
//     to it (the port is released immediately; the master notices the dead
//     link), its queued tasks and the task it is computing. The destroyed
//     attempts are marked Lost in their records and returned so the caller
//     can re-release clones to the master (the scenario engine's
//     re-dispatch policy). A dead slave accepts no sends: a scheduler that
//     targets one halts the run with a typed DeadSlaveError.
//   - RecoverSlave(j) brings a failed slave back, empty-queued.
//   - LeaveSlave(j) is FailSlave plus permanence: a departed slave can
//     never recover.
//   - AddSlave(c, p) appends a new slave, visible to the scheduler through
//     View.M() from the next decision on.
//   - DriftCosts(j, c, p) changes the slave's ACTUAL costs only: the
//     nominal costs the View advertises stay at their advertised values,
//     which is exactly the information asymmetry the speed-oblivious
//     scheduling literature studies. Schedulers can learn the truth from
//     the observation feed (ObservedComm/ObservedComp).

import (
	"fmt"

	"repro/internal/core"
)

// DeadSlaveError reports a scheduler decision that dispatched a task to a
// slave that had failed (or departed) before the send started. It is a
// validation error, not a panic: under dynamic platforms a scheduler that
// ignores failure notifications can reach this state without a bug in the
// engine, and sweeps need to surface which scheduler did so at what time.
type DeadSlaveError struct {
	Scheduler string
	Task      core.TaskID
	Slave     int
	Time      float64
	Departed  bool // true if the slave left for good rather than failed
}

// Error implements error.
func (e *DeadSlaveError) Error() string {
	state := "failed"
	if e.Departed {
		state = "departed"
	}
	return fmt.Sprintf("sim: scheduler %s sent task %d to %s slave %d at t=%v",
		e.Scheduler, e.Task, state, e.Slave, e.Time)
}

// DynamicView is the optional extension of View that engines with
// liveness or an observation feed provide: slave liveness plus the actual
// durations of completed sends and computations, smoothed. The engine and
// every Driver-backed master (internal/mpiexp, internal/live) implement
// it; use the IsAlive/ObservedComm/ObservedComp helpers to degrade
// gracefully on views that do not.
type DynamicView interface {
	View
	// Alive reports whether slave j currently accepts sends.
	Alive(j int) bool
	// ObservedComm returns a recency-weighted average of the actual send
	// durations to slave j, and whether any send has completed yet.
	ObservedComm(j int) (float64, bool)
	// ObservedComp returns a recency-weighted average of the actual
	// computation durations on slave j, and whether any task has finished.
	ObservedComp(j int) (float64, bool)
}

// IsAlive reports slave liveness through any View: views without dynamics
// have no failures, so every slave is alive.
func IsAlive(v View, j int) bool {
	if dv, ok := v.(DynamicView); ok {
		return dv.Alive(j)
	}
	return true
}

// ObservedComm reads the observation feed through any View; views without
// dynamics report no observations.
func ObservedComm(v View, j int) (float64, bool) {
	if dv, ok := v.(DynamicView); ok {
		return dv.ObservedComm(j)
	}
	return 0, false
}

// ObservedComp is ObservedComm for computation durations.
func ObservedComp(v View, j int) (float64, bool) {
	if dv, ok := v.(DynamicView); ok {
		return dv.ObservedComp(j)
	}
	return 0, false
}

// ewma is a recency-weighted duration average. Smoothing at 1/2 tracks
// speed drift within a couple of completions while damping the per-task
// size perturbation.
type ewma struct {
	mean float64
	seen bool
}

func (o *ewma) observe(x float64) {
	if !o.seen {
		o.mean, o.seen = x, true
		return
	}
	o.mean = (o.mean + x) / 2
}

// checkSlave panics on out-of-range slave indices: dynamics callers are
// trusted scenario code, so a bad index is a programming error.
func (e *Engine) checkSlave(j int) {
	if j < 0 || j >= e.pl.M() {
		panic(fmt.Sprintf("sim: dynamics on unknown slave %d (m=%d)", j, e.pl.M()))
	}
}

// SlaveAlive reports whether slave j currently accepts sends.
func (e *Engine) SlaveAlive(j int) bool {
	e.checkSlave(j)
	return e.alive[j]
}

// Err returns the halting validation error, if the scheduler committed
// one (currently: dispatching to a dead slave). Once set, the engine
// processes no further events; Run returns it.
func (e *Engine) Err() error { return e.halt }

// Task returns the task with the given ID (including injected ones).
func (e *Engine) Task(id core.TaskID) core.Task { return e.tasks[id] }

// Record returns the execution record of the task so far.
func (e *Engine) Record(id core.TaskID) core.Record { return e.records[id] }

// Lost reports whether a slave failure destroyed the task's attempt.
func (e *Engine) Lost(id core.TaskID) bool { return e.lost[id] }

// FailSlave kills slave j at the current time. Its in-flight send is
// aborted (freeing the master's port immediately), its queue and the task
// it is computing are destroyed, and the master's bookkeeping for it is
// cleared. The destroyed attempts are marked Lost and returned in task-ID
// order; re-releasing them (or not) is the caller's policy.
func (e *Engine) FailSlave(j int) []core.TaskID {
	e.checkSlave(j)
	if !e.alive[j] {
		panic(fmt.Sprintf("sim: failing slave %d which is already down", j))
	}
	e.alive[j] = false

	// Cancel the slave's scheduled events: the in-flight send (at most one
	// under the one-port model) and the completion of the task it computes.
	canceledSend := false
	e.events.Filter(func(ev event) bool {
		if (ev.Kind == evSendComplete || ev.Kind == evComputeComplete) && int(ev.Dest) == j {
			if ev.Kind == evSendComplete {
				canceledSend = true
			}
			return false
		}
		return true
	})
	if canceledSend && !e.unboundedPort {
		e.portFree = e.now // the master stops transmitting into a dead link
	}

	var lost []core.TaskID
	for idx := range e.tasks {
		if e.sent[idx] && !e.done[idx] && !e.lost[idx] && e.records[idx].Slave == j {
			e.lost[idx] = true
			e.lostCount++
			e.records[idx].Lost = true
			lost = append(lost, core.TaskID(idx))
		}
	}

	s := &e.slaves[j]
	s.queue.Reset()
	s.computing = -1
	s.busyUntil = e.now
	e.model.Fail(j, e.now)
	return lost
}

// LeaveSlave is a permanent departure: FailSlave plus the guarantee that
// the slave never recovers (RecoverSlave panics on it).
func (e *Engine) LeaveSlave(j int) []core.TaskID {
	lost := e.FailSlave(j)
	e.departed[j] = true
	return lost
}

// RecoverSlave brings a failed slave back at the current time, with an
// empty queue. Call Kick afterwards to give the scheduler an immediate
// decision opportunity.
func (e *Engine) RecoverSlave(j int) {
	e.checkSlave(j)
	if e.departed[j] {
		panic(fmt.Sprintf("sim: recovering slave %d which departed for good", j))
	}
	if e.alive[j] {
		panic(fmt.Sprintf("sim: recovering slave %d which is alive", j))
	}
	e.alive[j] = true
	e.model.Sync(j, e.now)
}

// AddSlave appends a new slave with the given nominal (= initial actual)
// costs and returns its index. The scheduler sees the platform grow
// through View.M() on its next decision.
func (e *Engine) AddSlave(c, p float64) int {
	if c <= 0 || p <= 0 {
		panic(fmt.Sprintf("sim: joining slave has non-positive costs c=%v p=%v", c, p))
	}
	e.pl.C = append(e.pl.C, c)
	e.pl.P = append(e.pl.P, p)
	e.actual.C = append(e.actual.C, c)
	e.actual.P = append(e.actual.P, p)
	e.slaves = append(e.slaves, slaveState{computing: -1, busyUntil: e.now})
	e.alive = append(e.alive, true)
	e.departed = append(e.departed, false)
	e.obsComm = append(e.obsComm, ewma{})
	e.obsComp = append(e.obsComp, ewma{})
	e.model.AddSlave(e.now)
	return e.pl.M() - 1
}

// DriftCosts changes slave j's actual per-task costs from now on. The
// nominal costs the View advertises are untouched: the master keeps
// planning with stale values unless the scheduler learns from the
// observation feed. Tasks already in flight or computing keep the
// durations they started with.
func (e *Engine) DriftCosts(j int, c, p float64) {
	e.checkSlave(j)
	if c <= 0 || p <= 0 {
		panic(fmt.Sprintf("sim: drifting slave %d to non-positive costs c=%v p=%v", j, c, p))
	}
	e.actual.C[j] = c
	e.actual.P[j] = p
}

// Kick gives the scheduler an immediate decision opportunity at the
// current time (if the port is free and work is pending). Dynamics events
// such as a recovery change the world without queueing a simulation
// event, so callers use Kick to wake the scheduler afterwards.
func (e *Engine) Kick() {
	if e.halt == nil {
		e.consult()
	}
}

// Alive implements DynamicView.
func (v *engineView) Alive(j int) bool { return v.e.alive[j] }

// ObservedComm implements DynamicView.
func (v *engineView) ObservedComm(j int) (float64, bool) {
	o := v.e.obsComm[j]
	return o.mean, o.seen
}

// ObservedComp implements DynamicView.
func (v *engineView) ObservedComp(j int) (float64, bool) {
	o := v.e.obsComp[j]
	return o.mean, o.seen
}
