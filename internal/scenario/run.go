package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Attempt is one dispatch attempt of an original task: the original ID,
// the attempt's engine task ID (equal for the first attempt), its
// execution record, and — if a failure destroyed it — when.
type Attempt struct {
	Original core.TaskID
	ID       core.TaskID
	Record   core.Record
	Lost     bool
	LostAt   float64
}

// Outcome is the result of running a scheduler through a scenario.
type Outcome struct {
	Scenario string
	// Schedule has exactly one record per ORIGINAL task: the final
	// successful attempt's trace with the original release restored, so
	// Makespan/MaxFlow/SumFlow are failure-time objectives (flow counts
	// from first submission, re-dispatch latency included). Its platform
	// is the final nominal platform (joins included); under drift or
	// re-dispatch it intentionally fails core.ValidateSchedule — dynamic
	// validity is checked by the scenario engine itself.
	Schedule core.Schedule
	// Attempts is the full re-dispatch trace, one row per attempt in
	// dispatch-ID order, including attempts that were never sent.
	Attempts []Attempt
	// EventsApplied counts timeline events applied (always the full
	// timeline on success).
	EventsApplied int
	// Lost counts attempts destroyed by failures or departures;
	// Redispatched counts the clones re-released (equal, by policy).
	Lost         int
	Redispatched int
	// FinalM is the number of slaves at the end (initial + joins).
	FinalM int
}

// Run drives the scheduler through the scenario on the platform and
// workload, applying events in timeline order and re-releasing destroyed
// work, then validates the dynamic schedule and returns the outcome.
//
// Everything is deterministic: the same (platform, scheduler, tasks,
// scenario) always produces the identical outcome. Events at time t apply
// after the simulation events at t (a task completing at the instant its
// slave dies has completed).
//
// Schedulers that ignore liveness can dispatch to a dead slave; that
// surfaces as a *sim.DeadSlaveError. Wrap them with sched.FailSafe (the
// facade's RunScenario does) to re-route instead.
func Run(pl core.Platform, s sim.Scheduler, tasks []core.Task, sc Scenario) (Outcome, error) {
	if err := sc.Validate(pl.M()); err != nil {
		return Outcome{}, err
	}
	e := sim.New(pl, s, tasks)
	nOrig := e.TaskCount()

	latest := make([]core.TaskID, nOrig) // original → its newest attempt
	for i := range latest {
		latest[i] = core.TaskID(i)
	}
	origOf := map[core.TaskID]core.TaskID{} // injected attempt → original
	lostAt := map[core.TaskID]float64{}

	timeline := sc.Timeline()
	applied := 0
	for _, ev := range timeline {
		e.AdvanceTo(ev.Time)
		if err := e.Err(); err != nil {
			return Outcome{}, err
		}
		var destroyed []core.TaskID
		switch ev.Kind {
		case SlaveFail:
			destroyed = e.FailSlave(ev.Slave)
		case SlaveLeave:
			destroyed = e.LeaveSlave(ev.Slave)
		case SlaveRecover:
			e.RecoverSlave(ev.Slave)
		case SlaveJoin:
			e.AddSlave(ev.C, ev.P)
		case SpeedDrift:
			e.DriftCosts(ev.Slave, ev.C, ev.P)
		default:
			panic(fmt.Sprintf("scenario: unknown event kind %v", ev.Kind))
		}
		// Re-dispatch policy: every destroyed attempt is re-released to
		// the master immediately, as a fresh task with the original's
		// actual size.
		for _, id := range destroyed {
			lostAt[id] = ev.Time
			orig := id
			if o, ok := origOf[id]; ok {
				orig = o
			}
			t := e.Task(id)
			again := e.InjectTask(core.Task{Release: e.Now(), CommScale: t.CommScale, CompScale: t.CompScale})
			origOf[again] = orig
			latest[orig] = again
		}
		applied++
		// Drain the same-time re-releases and wake the scheduler: events
		// like a recovery change the world without queueing a simulation
		// event.
		e.AdvanceTo(ev.Time)
		e.Kick()
		if err := e.Err(); err != nil {
			return Outcome{}, err
		}
	}

	full, err := e.Run()
	if err != nil {
		return Outcome{}, err
	}

	out := Outcome{
		Scenario:      sc.Name,
		EventsApplied: applied,
		Lost:          len(lostAt),
		Redispatched:  len(origOf),
		FinalM:        full.Instance.Platform.M(),
	}
	for id := range full.Records {
		orig := core.TaskID(id)
		if o, ok := origOf[core.TaskID(id)]; ok {
			orig = o
		}
		at, lost := lostAt[core.TaskID(id)]
		out.Attempts = append(out.Attempts, Attempt{
			Original: orig,
			ID:       core.TaskID(id),
			Record:   full.Records[id],
			Lost:     lost,
			LostAt:   at,
		})
	}

	records := make([]core.Record, nOrig)
	for i := 0; i < nOrig; i++ {
		rec := full.Records[latest[i]]
		rec.Task = core.TaskID(i)
		rec.Release = full.Instance.Tasks[i].Release
		records[i] = rec
	}
	out.Schedule = core.Schedule{
		Instance: core.Instance{
			Platform: full.Instance.Platform,
			Tasks:    append([]core.Task(nil), full.Instance.Tasks[:nOrig]...),
		},
		Records: records,
	}
	if err := validateOutcome(&out, pl.M(), timeline); err != nil {
		return Outcome{}, fmt.Errorf("scenario %q: %s produced an infeasible dynamic schedule: %w", sc.Name, s.Name(), err)
	}
	return out, nil
}

// interval is a half-open [from, to) span of wall-clock time.
type interval struct{ from, to float64 }

// validateOutcome checks the dynamic-model validity rules that still hold
// under failures and drift (the static duration equations do not):
//
//  1. every original task completes in exactly one non-lost attempt, and
//     every other attempt of it was destroyed by an event;
//  2. no send starts while its target slave is dead, and no send targets
//     a joined slave before its join time;
//  3. the master's port carries one send at a time, where an aborted send
//     occupies the port only until the failure that killed it;
//  4. per attempt, the record is time-ordered (release ≤ send ≤ arrive ≤
//     start ≤ complete for completed attempts).
func validateOutcome(out *Outcome, m0 int, timeline []Event) error {
	// Reconstruct per-slave dead intervals and join times from the
	// timeline (already validated for consistency).
	down := map[int][]interval{}
	joinTime := map[int]float64{}
	openDown := map[int]float64{}
	nextJoin := m0
	for _, ev := range timeline {
		switch ev.Kind {
		case SlaveFail, SlaveLeave:
			openDown[ev.Slave] = ev.Time
		case SlaveRecover:
			down[ev.Slave] = append(down[ev.Slave], interval{openDown[ev.Slave], ev.Time})
			delete(openDown, ev.Slave)
		case SlaveJoin:
			joinTime[nextJoin] = ev.Time
			nextJoin++
		}
	}
	for j, from := range openDown {
		down[j] = append(down[j], interval{from, math.Inf(1)})
	}

	completedOf := make(map[core.TaskID]int)
	type sendSpan struct {
		id       core.TaskID
		from, to float64
	}
	var sends []sendSpan
	for _, a := range out.Attempts {
		r := a.Record
		if a.Lost {
			if r.Complete != 0 {
				return fmt.Errorf("attempt %d lost at %v but has completion %v", a.ID, a.LostAt, r.Complete)
			}
		} else if r.Complete == 0 {
			return fmt.Errorf("attempt %d (task %d) neither completed nor lost", a.ID, a.Original)
		} else {
			completedOf[a.Original]++
		}
		if r.Slave < 0 {
			continue // never sent (must have been lost while pending — impossible — or completed)
		}
		if t, joined := joinTime[r.Slave]; joined && r.SendStart < t-core.Eps {
			return fmt.Errorf("attempt %d sent to slave %d at %v before it joined at %v", a.ID, r.Slave, r.SendStart, t)
		}
		// Strictly inside the dead interval: a send AT the failure instant
		// was decided while the slave was alive (events apply after the
		// simulation activity at their timestamp) and is destroyed by the
		// failure itself; a send at the recovery instant is legitimate.
		for _, iv := range down[r.Slave] {
			if r.SendStart > iv.from+core.Eps && r.SendStart < iv.to-core.Eps {
				return fmt.Errorf("attempt %d sent to slave %d at %v while it was down (%v,%v)",
					a.ID, r.Slave, r.SendStart, iv.from, iv.to)
			}
		}
		if r.SendStart < r.Release-core.Eps {
			return fmt.Errorf("attempt %d sent at %v before release %v", a.ID, r.SendStart, r.Release)
		}
		end := r.Arrive
		if end == 0 { // aborted in flight: the port freed at the failure
			end = a.LostAt
		}
		sends = append(sends, sendSpan{a.ID, r.SendStart, end})
		if !a.Lost {
			if r.Start < r.Arrive-core.Eps || r.Complete < r.Start-core.Eps {
				return fmt.Errorf("attempt %d record is not time-ordered: %+v", a.ID, r)
			}
		}
	}
	for orig := 0; orig < len(out.Schedule.Records); orig++ {
		if n := completedOf[core.TaskID(orig)]; n != 1 {
			return fmt.Errorf("task %d completed %d times, want exactly 1", orig, n)
		}
	}
	sort.Slice(sends, func(i, j int) bool { return sends[i].from < sends[j].from })
	if len(sends) > 0 {
		// Check each start against the latest port release seen so far,
		// not just the previous span's end: a long send must not hide
		// shorter ones inside it.
		busyUntil, busyID := sends[0].to, sends[0].id
		for _, s := range sends[1:] {
			if s.from < busyUntil-core.Eps {
				return fmt.Errorf("one-port violation: send of attempt %d at %v overlaps send of attempt %d ending %v",
					s.id, s.from, busyID, busyUntil)
			}
			if s.to > busyUntil {
				busyUntil, busyID = s.to, s.id
			}
		}
	}
	return nil
}
