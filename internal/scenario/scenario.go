// Package scenario scripts time-varying master-slave platforms on top of
// the one-port discrete-event engine: slaves failing, recovering, joining,
// departing and drifting in speed mid-run, with a deterministic re-dispatch
// policy for the work a failure destroys.
//
// A Scenario is a timeline of Events applied at fixed simulation times.
// Run drives any sim.Scheduler through the timeline: between events the
// engine runs exactly as in the static model; at an event boundary the
// platform mutates and every task the event destroyed (in flight, queued,
// or computing on the lost slave) is re-released to the master as a fresh
// attempt. Objectives are failure-time objectives: a task's completion is
// the completion of its final successful attempt, measured against its
// ORIGINAL release date, so re-dispatch latency is fully charged.
//
// The paper studies how (static) heterogeneity hurts on-line scheduling;
// this package makes heterogeneity a function of time, which is the regime
// the speed-oblivious and dynamic-processor literature targets
// (Lindermayr–Megow–Rapp; SELFISHMIGRATE). See DESIGN.md §8.
package scenario

import (
	"fmt"
	"sort"
)

// Kind discriminates scenario events.
type Kind int

const (
	// SlaveFail kills a slave: its queue and in-flight work are destroyed
	// and re-released to the master.
	SlaveFail Kind = iota
	// SlaveRecover brings a failed slave back, empty-queued.
	SlaveRecover
	// SlaveJoin adds a new slave with the given costs.
	SlaveJoin
	// SlaveLeave removes a slave for good (its work is re-released).
	SlaveLeave
	// SpeedDrift changes a slave's actual costs; the nominal costs the
	// master plans with are NOT updated (see sim.Engine.DriftCosts).
	SpeedDrift
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case SlaveFail:
		return "fail"
	case SlaveRecover:
		return "recover"
	case SlaveJoin:
		return "join"
	case SlaveLeave:
		return "leave"
	case SpeedDrift:
		return "drift"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one platform mutation at a fixed simulation time. Slave
// indexes the target for Fail/Recover/Leave/Drift (joined slaves are
// indexed in join order after the initial platform); C and P carry the
// new slave's costs for SlaveJoin and the new actual costs for
// SpeedDrift.
type Event struct {
	Time  float64 `json:"time"`
	Kind  Kind    `json:"kind"`
	Slave int     `json:"slave,omitempty"`
	C     float64 `json:"c,omitempty"`
	P     float64 `json:"p,omitempty"`
}

// String renders the event compactly, e.g. "t=3.2 fail P2".
func (e Event) String() string {
	switch e.Kind {
	case SlaveJoin:
		return fmt.Sprintf("t=%g join c=%g p=%g", e.Time, e.C, e.P)
	case SpeedDrift:
		return fmt.Sprintf("t=%g drift P%d c=%g p=%g", e.Time, e.Slave+1, e.C, e.P)
	default:
		return fmt.Sprintf("t=%g %v P%d", e.Time, e.Kind, e.Slave+1)
	}
}

// FailAt builds a SlaveFail event.
func FailAt(t float64, slave int) Event { return Event{Time: t, Kind: SlaveFail, Slave: slave} }

// RecoverAt builds a SlaveRecover event.
func RecoverAt(t float64, slave int) Event { return Event{Time: t, Kind: SlaveRecover, Slave: slave} }

// JoinAt builds a SlaveJoin event with the new slave's costs.
func JoinAt(t, c, p float64) Event { return Event{Time: t, Kind: SlaveJoin, C: c, P: p} }

// LeaveAt builds a SlaveLeave event.
func LeaveAt(t float64, slave int) Event { return Event{Time: t, Kind: SlaveLeave, Slave: slave} }

// DriftAt builds a SpeedDrift event with the slave's new actual costs.
func DriftAt(t float64, slave int, c, p float64) Event {
	return Event{Time: t, Kind: SpeedDrift, Slave: slave, C: c, P: p}
}

// Scenario is a named, deterministic event timeline. Events need not be
// pre-sorted; ties are applied in script order.
type Scenario struct {
	Name   string  `json:"name"`
	Events []Event `json:"events"`
}

// Static is the empty scenario: Run degenerates to the static simulation.
var Static = Scenario{Name: "static"}

// Timeline returns the events sorted by time, ties in script order.
func (s Scenario) Timeline() []Event {
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time < evs[j].Time })
	return evs
}

// Kinds returns the distinct event kinds in the scenario, in first-use
// order.
func (s Scenario) Kinds() []Kind {
	seen := map[Kind]bool{}
	var out []Kind
	for _, e := range s.Events {
		if !seen[e.Kind] {
			seen[e.Kind] = true
			out = append(out, e.Kind)
		}
	}
	return out
}

// Validate replays the timeline against a platform of m initial slaves
// and returns the first inconsistency: negative times, out-of-range
// targets, failing a slave that is already down, recovering one that is
// alive or departed, drifting a dead slave, or joining with non-positive
// costs. A valid scenario is exactly one Run can apply without panicking.
func (s Scenario) Validate(m int) error {
	if m <= 0 {
		return fmt.Errorf("scenario %q: platform has no slaves", s.Name)
	}
	alive := make([]bool, m)
	departed := make([]bool, m)
	for j := range alive {
		alive[j] = true
	}
	for i, e := range s.Timeline() {
		if e.Time < 0 {
			return fmt.Errorf("scenario %q: event %d (%v) at negative time", s.Name, i, e)
		}
		switch e.Kind {
		case SlaveJoin:
			if e.C <= 0 || e.P <= 0 {
				return fmt.Errorf("scenario %q: event %d (%v) joins with non-positive costs", s.Name, i, e)
			}
			alive = append(alive, true)
			departed = append(departed, false)
			continue
		case SpeedDrift:
			if e.C <= 0 || e.P <= 0 {
				return fmt.Errorf("scenario %q: event %d (%v) drifts to non-positive costs", s.Name, i, e)
			}
		}
		if e.Slave < 0 || e.Slave >= len(alive) {
			return fmt.Errorf("scenario %q: event %d (%v) targets unknown slave (m=%d at that point)",
				s.Name, i, e, len(alive))
		}
		switch e.Kind {
		case SlaveFail, SlaveLeave:
			if !alive[e.Slave] {
				return fmt.Errorf("scenario %q: event %d (%v) targets a slave that is already down", s.Name, i, e)
			}
			alive[e.Slave] = false
			if e.Kind == SlaveLeave {
				departed[e.Slave] = true
			}
		case SlaveRecover:
			if departed[e.Slave] {
				return fmt.Errorf("scenario %q: event %d (%v) recovers a departed slave", s.Name, i, e)
			}
			if alive[e.Slave] {
				return fmt.Errorf("scenario %q: event %d (%v) recovers a slave that is alive", s.Name, i, e)
			}
			alive[e.Slave] = true
		case SpeedDrift:
			if !alive[e.Slave] {
				return fmt.Errorf("scenario %q: event %d (%v) drifts a dead slave", s.Name, i, e)
			}
		}
	}
	return nil
}
