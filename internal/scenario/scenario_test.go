package scenario

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestStaticScenarioMatchesSimulate(t *testing.T) {
	pl := core.NewPlatform([]float64{0.5, 0.5}, []float64{2, 3})
	tasks := core.Bag(12)
	want, err := sim.Simulate(pl, sched.NewLS(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(pl, sched.FailSafe(sched.NewLS()), tasks, Static)
	if err != nil {
		t.Fatal(err)
	}
	if out.Lost != 0 || out.Redispatched != 0 || out.EventsApplied != 0 {
		t.Fatalf("static outcome has dynamics: %+v", out)
	}
	if got := out.Schedule.Makespan(); got != want.Makespan() {
		t.Fatalf("makespan %v, want static %v", got, want.Makespan())
	}
	if got := out.Schedule.SumFlow(); got != want.SumFlow() {
		t.Fatalf("sum-flow %v, want static %v", got, want.SumFlow())
	}
}

func TestFailRecoverRoundTrip(t *testing.T) {
	pl := core.NewPlatform([]float64{0.5, 0.5}, []float64{2, 2})
	tasks := core.Bag(10)
	sc := Scenario{Name: "blip", Events: []Event{FailAt(3, 0), RecoverAt(6, 0)}}
	static, err := sim.Simulate(pl, sched.NewLS(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(pl, sched.FailSafe(sched.NewLS()), tasks, sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.EventsApplied != 2 {
		t.Fatalf("applied %d events, want 2", out.EventsApplied)
	}
	if out.Lost == 0 || out.Lost != out.Redispatched {
		t.Fatalf("lost %d, redispatched %d: the failure must destroy and re-release work", out.Lost, out.Redispatched)
	}
	if len(out.Attempts) != len(tasks)+out.Redispatched {
		t.Fatalf("%d attempts for %d tasks + %d re-dispatches", len(out.Attempts), len(tasks), out.Redispatched)
	}
	if got := len(out.Schedule.Records); got != len(tasks) {
		t.Fatalf("%d final records, want one per original task", got)
	}
	for _, r := range out.Schedule.Records {
		if r.Complete == 0 {
			t.Fatalf("task %d never completed: %+v", r.Task, r)
		}
	}
	if got, want := out.Schedule.Makespan(), static.Makespan(); got < want {
		t.Fatalf("makespan %v under failures beats static %v", got, want)
	}
}

func TestJoinAndLeave(t *testing.T) {
	pl := core.NewPlatform([]float64{0.5, 0.5}, []float64{4, 4})
	tasks := core.Bag(12)
	sc := Scenario{Name: "crowd", Events: []Event{
		JoinAt(2, 0.5, 1), // a fast helper appears...
		LeaveAt(10, 2),    // ...and leaves with its queue
	}}
	out, err := Run(pl, sched.FailSafe(sched.NewLS()), tasks, sc)
	if err != nil {
		t.Fatal(err)
	}
	if out.FinalM != 3 {
		t.Fatalf("final m %d, want 3", out.FinalM)
	}
	used := false
	for _, a := range out.Attempts {
		if a.Record.Slave == 2 {
			used = true
		}
	}
	if !used {
		t.Fatal("the joined fast slave was never used")
	}
}

func TestUnawareSchedulerHitsDeadSlaveError(t *testing.T) {
	// RR's top-priority slave dies; unwrapped RR keeps dispatching to it.
	pl := core.NewPlatform([]float64{0.1, 0.5}, []float64{1, 3})
	sc := Scenario{Name: "death", Events: []Event{FailAt(2, 0)}}
	_, err := Run(pl, sched.NewRR(), core.Bag(20), sc)
	var dead *sim.DeadSlaveError
	if !errors.As(err, &dead) {
		t.Fatalf("error %v, want *sim.DeadSlaveError", err)
	}
	if dead.Slave != 0 || dead.Time < 2 {
		t.Fatalf("error fields %+v", dead)
	}
}

func TestSpeedObliviousTracksDrift(t *testing.T) {
	// Both slaves advertise p=1; slave 0 actually degrades 10× early on.
	pl := core.NewPlatform([]float64{0.1, 0.1}, []float64{1, 1})
	tasks := core.Bag(40)
	sc := Scenario{Name: "degrade", Events: []Event{DriftAt(0.5, 0, 0.1, 10)}}
	ls, err := Run(pl, sched.FailSafe(sched.NewLS()), tasks, sc)
	if err != nil {
		t.Fatal(err)
	}
	so, err := Run(pl, sched.NewSpeedOblivious(), tasks, sc)
	if err != nil {
		t.Fatal(err)
	}
	var onSlow int
	for _, r := range so.Schedule.Records {
		if r.Slave == 0 {
			onSlow++
		}
	}
	if onSlow > len(tasks)/2 {
		t.Fatalf("SO-LS kept %d of %d tasks on the degraded slave", onSlow, len(tasks))
	}
	if so.Schedule.Makespan() >= ls.Schedule.Makespan() {
		t.Fatalf("SO-LS makespan %v not better than nominal-cost LS %v under drift",
			so.Schedule.Makespan(), ls.Schedule.Makespan())
	}
}

func TestRunIsDeterministic(t *testing.T) {
	pl := core.NewPlatform([]float64{0.3, 0.6, 0.2}, []float64{2, 3, 5})
	tasks := core.Bag(30)
	sc := Scenario{Name: "churn", Events: []Event{
		FailAt(4, 1), JoinAt(5, 0.4, 2), RecoverAt(9, 1), DriftAt(11, 0, 0.3, 4), LeaveAt(15, 3),
	}}
	a, err := Run(pl, sched.FailSafe(sched.NewSLJFWC(30)), tasks, sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pl, sched.FailSafe(sched.NewSLJFWC(30)), tasks, sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical scenario runs diverged")
	}
}

func TestValidateRejectsInconsistentTimelines(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"negative-time", []Event{FailAt(-1, 0)}, "negative time"},
		{"unknown-slave", []Event{FailAt(1, 5)}, "unknown slave"},
		{"double-fail", []Event{FailAt(1, 0), FailAt(2, 0)}, "already down"},
		{"recover-alive", []Event{RecoverAt(1, 0)}, "is alive"},
		{"recover-departed", []Event{LeaveAt(1, 0), RecoverAt(2, 0)}, "departed"},
		{"drift-dead", []Event{FailAt(1, 0), DriftAt(2, 0, 1, 1)}, "dead"},
		{"bad-join", []Event{JoinAt(1, 0, 1)}, "non-positive"},
		{"bad-drift", []Event{DriftAt(1, 0, 1, -2)}, "non-positive"},
	}
	for _, tc := range cases {
		sc := Scenario{Name: tc.name, Events: tc.events}
		err := sc.Validate(2)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// Joined slaves become valid targets after their join.
	ok := Scenario{Name: "join-target", Events: []Event{JoinAt(1, 1, 1), FailAt(2, 2)}}
	if err := ok.Validate(2); err != nil {
		t.Errorf("join-target: %v", err)
	}
}
