package mpi

import (
	"math"
	"strings"
	"testing"
)

func TestLinkCostDuration(t *testing.T) {
	lc := LinkCost{Latency: 0.5, ByteTime: 0.01}
	if got := lc.Duration(100); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("duration %v", got)
	}
	if got := (LinkCost{}).Duration(1e6); got != 0 {
		t.Fatalf("free link cost %v", got)
	}
}

func TestSendBlocksSenderForTransfer(t *testing.T) {
	w := NewWorld(2)
	w.SetLink(0, 1, LinkCost{Latency: 2})
	var sendReturned, received float64
	w.Rank(0, "tx", func(r *Rank) {
		r.Send(1, 1, 0, nil)
		sendReturned = r.Now()
	})
	w.Rank(1, "rx", func(r *Rank) {
		r.Recv()
		received = r.Now()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if sendReturned != 2 || received != 2 {
		t.Fatalf("send returned at %v, received at %v, want 2", sendReturned, received)
	}
}

func TestEagerSendDoesNotWaitForReceiver(t *testing.T) {
	// Receiver is busy computing; sender must still complete its transfer
	// after the link duration (the paper's model: tasks queue at slaves).
	w := NewWorld(2)
	w.SetLink(0, 1, LinkCost{Latency: 1})
	var senderDone float64
	var receiverGot float64
	w.Rank(0, "tx", func(r *Rank) {
		r.Send(1, 1, 0, "task")
		senderDone = r.Now()
	})
	w.Rank(1, "rx", func(r *Rank) {
		r.Compute(10)
		r.Recv()
		receiverGot = r.Now()
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if senderDone != 1 {
		t.Fatalf("sender blocked until %v, want 1", senderDone)
	}
	if receiverGot != 10 {
		t.Fatalf("receiver got the buffered message at %v, want 10", receiverGot)
	}
}

func TestOnePortSerialization(t *testing.T) {
	// Rank 0 sends to two slaves back-to-back: the second transfer starts
	// only after the first completes (the sender is the port).
	w := NewWorld(3)
	w.SetLink(0, 1, LinkCost{Latency: 3})
	w.SetLink(0, 2, LinkCost{Latency: 1})
	var got1, got2 float64
	w.Rank(0, "master", func(r *Rank) {
		r.Send(1, 0, 0, nil)
		r.Send(2, 0, 0, nil)
	})
	w.Rank(1, "s1", func(r *Rank) { r.Recv(); got1 = r.Now() })
	w.Rank(2, "s2", func(r *Rank) { r.Recv(); got2 = r.Now() })
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got1 != 3 || got2 != 4 {
		t.Fatalf("arrivals %v, %v; want 3, 4", got1, got2)
	}
}

func TestMessageMetadata(t *testing.T) {
	w := NewWorld(2)
	w.SetLink(1, 0, LinkCost{ByteTime: 0.5})
	var msg Message
	w.Rank(0, "rx", func(r *Rank) { msg = r.Recv() })
	w.Rank(1, "tx", func(r *Rank) { r.Send(0, 42, 8, "payload") })
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if msg.From != 1 || msg.Tag != 42 || msg.Size != 8 || msg.Payload != "payload" {
		t.Fatalf("message %+v", msg)
	}
}

func TestRecvDeadline(t *testing.T) {
	w := NewWorld(2)
	w.SetLink(0, 1, LinkCost{Latency: 5})
	var first, second bool
	w.Rank(0, "tx", func(r *Rank) { r.Send(1, 0, 0, nil) })
	w.Rank(1, "rx", func(r *Rank) {
		_, first = r.RecvDeadline(1) // too early
		_, second = r.RecvDeadline(100)
	})
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if first || !second {
		t.Fatalf("first=%v second=%v", first, second)
	}
}

func TestMasterSlaveRoundTrip(t *testing.T) {
	// A miniature master-slave exchange: master ships 3 tasks to the
	// faster of two slaves; slaves ACK with zero-cost control messages.
	w := NewWorld(3)
	w.SetLink(0, 1, LinkCost{Latency: 1})
	w.SetLink(0, 2, LinkCost{Latency: 1})
	var completions []float64
	w.Rank(0, "master", func(r *Rank) {
		for i := 0; i < 3; i++ {
			r.Send(1, i, 0, nil)
		}
		for i := 0; i < 3; i++ {
			r.Recv()
			completions = append(completions, r.Now())
		}
	})
	slave := func(p float64) func(r *Rank) {
		return func(r *Rank) {
			for i := 0; i < 3; i++ {
				if _, ok := r.RecvDeadline(100); !ok {
					return
				}
				r.Compute(p)
				r.Send(0, -1, 0, nil)
			}
		}
	}
	w.Rank(1, "s1", slave(2))
	w.Rank(2, "s2", func(r *Rank) {}) // idle slave exits immediately
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Tasks arrive at 1, 2, 3; computed [1,3], [3,5], [5,7].
	want := []float64{3, 5, 7}
	for i, c := range completions {
		if math.Abs(c-want[i]) > 1e-12 {
			t.Fatalf("completions %v, want %v", completions, want)
		}
	}
}

func TestWorldGuards(t *testing.T) {
	w := NewWorld(2)
	w.Rank(0, "a", func(r *Rank) {})
	if err := w.Run(); err == nil || !strings.Contains(err.Error(), "ranks installed") {
		t.Fatalf("missing rank not reported: %v", err)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate rank accepted")
			}
		}()
		w2 := NewWorld(1)
		w2.Rank(0, "a", func(r *Rank) {})
		w2.Rank(0, "b", func(r *Rank) {})
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range rank accepted")
			}
		}()
		NewWorld(1).Rank(5, "x", func(r *Rank) {})
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-size world accepted")
			}
		}()
		NewWorld(0)
	}()
}

func TestSelfSendPanics(t *testing.T) {
	w := NewWorld(1)
	w.Rank(0, "solo", func(r *Rank) {
		r.Send(0, 0, 0, nil)
	})
	if err := w.Run(); err == nil {
		t.Fatal("self-send accepted")
	}
}
