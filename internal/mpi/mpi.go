// Package mpi emulates a small message-passing world — ranks, links with
// per-message costs, blocking sends, any-source receives — on the
// deterministic virtual-time kernel of internal/vclock. It stands in for
// the physical MPI cluster of the paper's Section 4: semantics follow the
// paper's model (an eager one-port sender: the sending rank is blocked
// for the whole transfer; the receiver's mailbox buffers arrivals until
// it posts a receive).
package mpi

import (
	"fmt"

	"repro/internal/vclock"
)

// LinkCost prices one message on a directed link: the transfer occupies
// the sender for Latency + Size·ByteTime virtual seconds.
type LinkCost struct {
	Latency  float64
	ByteTime float64
}

// Duration returns the transfer time for a message of the given size.
func (lc LinkCost) Duration(size float64) float64 {
	return lc.Latency + size*lc.ByteTime
}

// Message is a received message. From is the sender's rank.
type Message struct {
	From    int
	Tag     int
	Size    float64
	Payload any
}

// World is a set of ranks connected by priced links.
type World struct {
	cluster *vclock.Cluster
	links   [][]LinkCost
	procIDs []int // rank → vclock proc id
	ranks   map[int]int
	n       int
}

// NewWorld creates a world with n ranks and free (zero-cost) links.
func NewWorld(n int) *World {
	if n <= 0 {
		panic(fmt.Sprintf("mpi: world size %d", n))
	}
	links := make([][]LinkCost, n)
	for i := range links {
		links[i] = make([]LinkCost, n)
	}
	return &World{
		cluster: vclock.New(),
		links:   links,
		procIDs: make([]int, n),
		ranks:   make(map[int]int),
		n:       n,
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// SetLink prices the directed link from one rank to another.
func (w *World) SetLink(from, to int, lc LinkCost) {
	w.links[from][to] = lc
}

// Rank installs the program for one rank. Every rank must be installed
// exactly once before Run.
func (w *World) Rank(rank int, name string, fn func(r *Rank)) {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("mpi: rank %d out of range", rank))
	}
	if _, dup := w.ranks[rank]; dup {
		panic(fmt.Sprintf("mpi: rank %d installed twice", rank))
	}
	id := w.cluster.Spawn(name, func(p *vclock.Proc) {
		fn(&Rank{w: w, p: p, rank: rank})
	})
	w.procIDs[rank] = id
	w.ranks[rank] = id
}

// Run executes all rank programs to completion in virtual time.
func (w *World) Run() error {
	if len(w.ranks) != w.n {
		return fmt.Errorf("mpi: %d of %d ranks installed", len(w.ranks), w.n)
	}
	return w.cluster.Run()
}

// Rank is one process's handle on the world.
type Rank struct {
	w    *World
	p    *vclock.Proc
	rank int
}

// Rank returns this process's rank.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// Now returns the current virtual time.
func (r *Rank) Now() float64 { return r.p.Now() }

// Compute burns d virtual seconds of local work.
func (r *Rank) Compute(d float64) { r.p.Sleep(d) }

// Send ships a message to another rank, blocking this rank for the link's
// transfer duration; the message lands in the destination mailbox when
// the transfer completes. Sending to oneself panics.
func (r *Rank) Send(to, tag int, size float64, payload any) {
	if to == r.rank {
		panic("mpi: self-send")
	}
	dur := r.w.links[r.rank][to].Duration(size)
	r.p.Post(r.w.procIDs[to], vclock.Message{Tag: tag, Size: size, Payload: payload}, dur)
	r.p.Sleep(dur)
}

// Recv blocks until a message from any source arrives and returns it in
// delivery order.
func (r *Rank) Recv() Message {
	return r.fromVClock(r.p.Recv())
}

// RecvDeadline blocks until a message arrives or the clock reaches the
// deadline; ok reports whether a message was received.
func (r *Rank) RecvDeadline(deadline float64) (Message, bool) {
	m, ok := r.p.RecvDeadline(deadline)
	if !ok {
		return Message{}, false
	}
	return r.fromVClock(m), true
}

func (r *Rank) fromVClock(m vclock.Message) Message {
	fromRank := -1
	for rank, id := range r.w.procIDs {
		if id == m.From {
			fromRank = rank
			break
		}
	}
	return Message{From: fromRank, Tag: m.Tag, Size: m.Size, Payload: m.Payload}
}
