package schedd

// Observability surface beyond /metrics: the flight-recorder tap, the
// /watch SSE stream, and the SLO burn-rate endpoint. Everything here
// follows the off-hot-path rule — the cluster observer does constant
// work per event (a bounded binary append plus an atomic subscriber
// check), and all JSON formatting happens on reader goroutines or only
// when a watcher is actually connected.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
)

// observeShardEvent is the cluster's per-event tap (cluster.Config.
// Observer): it journals the event into the flight recorder — and, at
// each completion, the finished job's span record — then fans the event
// out to /watch subscribers. It runs inside the shard's master actor,
// after the tracker has absorbed the event, so the completion span is
// already visible.
func (s *Server) observeShardEvent(shard int, ev live.Event) {
	if rec := s.recorder; rec != nil {
		rec.AppendEvent(shard, ev)
		if ev.Kind == live.EvCompleted {
			if info, ok := s.router.Shards()[shard].Tracker().Job(ev.Task); ok && info.State == live.StateDone {
				rec.AppendSpan(shard, core.Record{
					Task:      core.TaskID(info.ID),
					Slave:     info.Slave,
					Release:   info.Submitted,
					SendStart: info.SendStart,
					Arrive:    info.Arrive,
					Start:     info.Start,
					Complete:  info.Complete,
				})
			}
		}
	}
	s.watch.publish(shard, ev)
}

// WatchEvent is one line of the GET /watch SSE stream: a lifecycle
// event with its shard, in model seconds on the serving clock.
type WatchEvent struct {
	T     float64 `json:"t"`
	Shard int     `json:"shard"`
	Kind  string  `json:"kind"`
	Task  int     `json:"task"`
	Slave int     `json:"slave,omitempty"`
}

// watchHub fans lifecycle events out to SSE subscribers. The publish
// path is free when nobody watches (one atomic load); with subscribers
// it marshals once and does a non-blocking send per subscriber, counting
// drops instead of ever blocking the master actor.
type watchHub struct {
	mu      sync.Mutex
	subs    map[int]chan []byte
	nextID  int
	nsubs   atomic.Int32
	dropped atomic.Uint64
}

func newWatchHub() *watchHub {
	return &watchHub{subs: make(map[int]chan []byte)}
}

func (h *watchHub) publish(shard int, ev live.Event) {
	if h == nil || h.nsubs.Load() == 0 {
		return
	}
	line, err := json.Marshal(WatchEvent{
		T:     ev.T,
		Shard: shard,
		Kind:  ev.Kind.String(),
		Task:  ev.Task,
		Slave: ev.Slave,
	})
	if err != nil {
		return
	}
	h.mu.Lock()
	for _, ch := range h.subs {
		select {
		case ch <- line:
		default:
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
}

func (h *watchHub) subscribe() (int, chan []byte) {
	ch := make(chan []byte, 256)
	h.mu.Lock()
	id := h.nextID
	h.nextID++
	h.subs[id] = ch
	h.mu.Unlock()
	h.nsubs.Add(1)
	return id, ch
}

func (h *watchHub) unsubscribe(id int) {
	h.mu.Lock()
	if _, ok := h.subs[id]; ok {
		delete(h.subs, id)
		h.nsubs.Add(-1)
	}
	h.mu.Unlock()
}

func (h *watchHub) subscribers() int { return int(h.nsubs.Load()) }

// watchMaxLimit caps an explicit ?limit= on GET /watch: a bounded
// subscription can still be generous, but never unbounded by accident.
const watchMaxLimit = 1 << 20

// handleWatch serves GET /watch: a Server-Sent Events stream of every
// lifecycle event on every shard (data: one WatchEvent JSON object per
// event), until the client disconnects — or, with ?limit=N, until N
// events have been delivered (a bounded tail for scripts that cannot
// hold a connection open). A slow client loses events (the
// per-subscriber buffer is bounded; drops are counted in /stats), never
// slows the cluster.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	limit, err := queryLimit(r, 0, watchMaxLimit, "limit")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	id, ch := s.watch.subscribe()
	defer s.watch.unsubscribe(id)
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	sent := 0
	for {
		select {
		case <-r.Context().Done():
			return
		case line := <-ch:
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			_, _ = w.Write(line)
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			fl.Flush()
			if sent++; limit > 0 && sent >= limit {
				return
			}
		case <-keepalive.C:
			if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// handleFlight serves GET /flight: the flight recorder's full retained
// recording as raw binary frames (the flight wire format), ready for
// schedctl export. Registered only when the recorder is on.
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(s.recorder.Snapshot())
}

// SLOStatus is one objective's row of the GET /slo body.
type SLOStatus struct {
	Objective obs.Objective `json:"objective"`
	// OK is true when every window's burn rate is at most 1.
	OK      bool             `json:"ok"`
	Windows []obs.BurnWindow `json:"windows"`
}

// SLOResponse is the GET /slo body: every configured objective with its
// multi-window burn rates as of now. Enabled is false when the service
// runs without objectives (Objectives is then empty).
type SLOResponse struct {
	Enabled    bool        `json:"enabled"`
	Objectives []SLOStatus `json:"objectives"`
}

// sloStatus assembles the current burn-rate report.
func (s *Server) sloStatus() SLOResponse {
	resp := SLOResponse{Enabled: len(s.slos) > 0, Objectives: []SLOStatus{}}
	now := s.sloNow()
	for _, m := range s.slos {
		st := SLOStatus{Objective: m.Objective(), OK: true, Windows: m.Burn(now)}
		for _, b := range st.Windows {
			if !b.OK {
				st.OK = false
			}
		}
		resp.Objectives = append(resp.Objectives, st)
	}
	return resp
}

func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sloStatus())
}

// sloNow is the SLO engine's time base: wall seconds since the service
// started (the engine itself reads no clock). It shares the injectable
// server clock with uptime so frozen-clock tests see stable bodies.
func (s *Server) sloNow() float64 { return s.uptime() }

// uptime is wall seconds since the service started, on the injectable
// server clock.
func (s *Server) uptime() float64 { return s.now().Sub(s.started).Seconds() }

// statusWriter captures the response status for the per-route
// availability accounting, passing Flush through so SSE still streams.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.ResponseController, so
// handlers behind the counted wrapper can still reach controls the
// wrapper doesn't forward (the stream endpoint's full-duplex switch).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// startSnapshots begins the periodic metrics-snapshot journaling: every
// interval, the registry's JSON view is appended to the recording as a
// FrameMetrics blob, giving an exported recording its metric timeline.
func (s *Server) startSnapshots(interval time.Duration) {
	s.snapStop = make(chan struct{})
	s.snapDone = make(chan struct{})
	go func() {
		defer close(s.snapDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		var buf bytes.Buffer
		for {
			select {
			case <-s.snapStop:
				return
			case <-t.C:
				buf.Reset()
				if err := s.metrics.WriteJSON(&buf); err == nil {
					s.recorder.AppendMetrics(buf.Bytes())
				}
			}
		}
	}()
}

// stopSnapshots halts the snapshot loop; idempotent.
func (s *Server) stopSnapshots() {
	s.snapOnce.Do(func() {
		if s.snapStop != nil {
			close(s.snapStop)
			<-s.snapDone
		}
	})
}
