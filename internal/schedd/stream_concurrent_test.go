package schedd

// Concurrency suite for the bulk-ingest spine: many stream connections,
// lock-free job lookups and Drain all racing. Run under -race this
// exercises the chunked job index, the per-shard intake locks and the
// parallel decode pipeline end to end; the assertions pin the ordering
// contracts the concurrency must not weaken — per-connection acks in
// line order, globally disjoint ID ranges tiling [0, total), and a
// drain that completes exactly what was acked.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// concurrentServer is virtualServer with the parallel decoder forced on
// (the test must cover the pipeline even on a single-core runner, where
// the GOMAXPROCS default would pick one worker).
func concurrentServer(t *testing.T, shards, workers int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Platform: core.NewPlatform(
			[]float64{0.1, 0.1, 0.2, 0.2, 0.3, 0.3, 0.1, 0.2},
			[]float64{0.4, 0.8, 0.4, 0.8, 0.4, 0.8, 0.4, 0.8}),
		Policy:           "LS",
		Shards:           shards,
		Placement:        "least-loaded",
		VirtualClock:     true,
		IngestQueueDepth: 8192,
		StreamWorkers:    workers,
		EventLogCap:      4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestStreamConcurrentClients races N stream connections against
// concurrent GET /v1/jobs/{id} readers and then Drain. Asserted:
// every connection's acks arrive in its own line order with the full
// line count, the acked global-ID ranges are disjoint and tile
// [0, total) exactly, the readers only ever observe consistent job
// views, and after Drain completed == submitted == total.
func TestStreamConcurrentClients(t *testing.T) {
	s, ts := concurrentServer(t, 4, 4)
	const clients, lines, per = 4, 40, 25
	const total = clients * lines * per

	// Readers: hammer the lock-free lookup path while ingest runs. A gid
	// may not be issued yet (404) — any 200 must be internally consistent.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for rd := 0; rd < 3; rd++ {
		rd := rd
		readers.Add(1)
		go func() {
			defer readers.Done()
			gid := rd * 977 % total
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, gid))
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusNotFound:
				case http.StatusOK:
					var jr JobResponse
					if err := json.Unmarshal(body, &jr); err != nil {
						t.Errorf("reader gid %d: bad body %q: %v", gid, body, err)
						return
					}
					if jr.ID != gid {
						t.Errorf("reader gid %d: response carries ID %d", gid, jr.ID)
						return
					}
				default:
					t.Errorf("reader gid %d: status %d body %q", gid, resp.StatusCode, body)
					return
				}
				gid = (gid + 1) % total
			}
		}()
	}

	// Producers: each connection sends its lines as one NDJSON body and
	// decodes the streamed acks. The payload varies per line so decode
	// work is non-trivial under the parallel workers.
	type ackRange struct{ base, count int }
	ranges := make([][]ackRange, clients)
	var producers sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		producers.Add(1)
		go func() {
			defer producers.Done()
			var body strings.Builder
			for l := 0; l < lines; l++ {
				fmt.Fprintf(&body, "{\"count\":%d,\"comp_scale\":%g}\n", per, 1+float64(l%3)/4)
			}
			resp, err := http.Post(ts.URL+"/v1/jobs:stream", "application/x-ndjson", strings.NewReader(body.String()))
			if err != nil {
				t.Errorf("client %d: %v", c, err)
				return
			}
			defer resp.Body.Close()
			dec := json.NewDecoder(resp.Body)
			for l := 0; ; l++ {
				var a StreamAck
				if err := dec.Decode(&a); err == io.EOF {
					if l != lines {
						t.Errorf("client %d: %d acks for %d lines", c, l, lines)
					}
					return
				} else if err != nil {
					t.Errorf("client %d: decoding ack %d: %v", c, l, err)
					return
				}
				if a.Error != "" {
					t.Errorf("client %d: ack %d error %q", c, l, a.Error)
					return
				}
				// The ordering pin: connection c's l-th ack answers its l-th
				// line, regardless of how many workers parsed ahead.
				if a.Line != l+1 {
					t.Errorf("client %d: ack %d answers line %d", c, l, a.Line)
					return
				}
				if a.Count != per {
					t.Errorf("client %d: ack %d count %d, want %d", c, l, a.Count, per)
					return
				}
				ranges[c] = append(ranges[c], ackRange{a.Base, a.Count})
			}
		}()
	}
	producers.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Globally: the acked ranges must be disjoint and tile [0, total) —
	// no duplicate, no hole, no ID minted outside an ack.
	var all []ackRange
	for _, rs := range ranges {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].base < all[j].base })
	next := 0
	for _, r := range all {
		if r.base != next {
			t.Fatalf("acked ranges do not tile: want base %d, got %d", next, r.base)
		}
		next += r.count
	}
	if next != total {
		t.Fatalf("acked ranges cover [0, %d), want [0, %d)", next, total)
	}

	// A late producer racing Drain must either be fully acked before the
	// barrier or get the terminal draining ack — never a hang, never a
	// lost ack.
	late := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs:stream", "application/x-ndjson",
			strings.NewReader("{\"count\":1}\n"))
		if err != nil {
			late <- err
			return
		}
		defer resp.Body.Close()
		var a StreamAck
		if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
			late <- fmt.Errorf("late ack: %w", err)
			return
		}
		if a.Error != "" && !strings.Contains(a.Error, "draining") {
			late <- fmt.Errorf("late ack error %q", a.Error)
			return
		}
		if a.Error != "" {
			late <- nil // refused by the drain barrier
			return
		}
		late <- fmt.Errorf("accepted:%d", a.Count)
	}()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	lateJobs := 0
	if err := <-late; err != nil {
		var n int
		if _, scanErr := fmt.Sscanf(err.Error(), "accepted:%d", &n); scanErr == nil {
			lateJobs = n
		} else {
			t.Fatal(err)
		}
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d", code)
	}
	want := total + lateJobs
	if stats.Jobs.Submitted != want || stats.Jobs.Completed != want {
		t.Fatalf("jobs %+v, want %d submitted and completed", stats.Jobs, want)
	}
	if stats.Firehose == nil {
		t.Fatal("stats missing firehose stanza in virtual-clock mode")
	}
	if stats.Firehose.Queued != 0 {
		t.Fatalf("drained intake still reports %d queued", stats.Firehose.Queued)
	}
	if stats.Firehose.SlabGets == 0 {
		t.Fatal("slab-pool counters never moved")
	}
	// Every issued ID resolves to a completed job after the drain.
	for _, gid := range []int{0, total / 3, total - 1} {
		var jr JobResponse
		if code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, gid), &jr); code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%d after drain: %d", gid, code)
		}
		if jr.State != "done" {
			t.Fatalf("gid %d state %q after drain", gid, jr.State)
		}
	}
}

// TestStreamSerialFallback pins that StreamWorkers < 0 serves the same
// contract through the single-goroutine decoder — the benchmark
// baseline stays a correct production path.
func TestStreamSerialFallback(t *testing.T) {
	s, ts := concurrentServer(t, 2, -1)
	if s.streamWorkers != 0 {
		t.Fatalf("resolved streamWorkers = %d, want 0 (serial)", s.streamWorkers)
	}
	acks := streamLines(t, ts, "{\"count\":3}\n{\"count\":2}\n")
	if len(acks) != 2 || acks[0].Base != 0 || acks[0].Count != 3 || acks[1].Base != 3 || acks[1].Count != 2 {
		t.Fatalf("serial acks %+v", acks)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamParallelErrorOrdering pins the sequencer's error contract:
// a malformed line is only reported after every earlier line's ack,
// even though a parse worker may have seen the bad line first.
func TestStreamParallelErrorOrdering(t *testing.T) {
	_, ts := concurrentServer(t, 2, 4)
	var body strings.Builder
	const good = 12
	for i := 0; i < good; i++ {
		fmt.Fprintf(&body, "{\"count\":2}\n")
	}
	body.WriteString("{not json\n{\"count\":5}\n")
	acks := streamLines(t, ts, body.String())
	if len(acks) != good+1 {
		t.Fatalf("%d acks, want %d", len(acks), good+1)
	}
	for i := 0; i < good; i++ {
		if acks[i].Error != "" || acks[i].Line != i+1 {
			t.Fatalf("ack %d: %+v", i, acks[i])
		}
	}
	terminal := acks[good]
	if terminal.Error == "" || terminal.Line != good+1 {
		t.Fatalf("terminal ack %+v", terminal)
	}
	if !strings.Contains(terminal.Error, "bad request line") {
		t.Fatalf("terminal error %q", terminal.Error)
	}
}
