package schedd

// Tests for the PR-8 surface: the flight-recorder tap (GET /flight and
// on-disk segments), the /watch SSE stream, the SLO burn-rate endpoint,
// and the bounded /decisions limit parameter.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

func TestFlightEndpoint(t *testing.T) {
	s, ts := testServer(t, "LS")
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 6}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	waitCompleted(t, ts, 6)

	resp, err := http.Get(ts.URL + "/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /flight: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := flight.Parse(raw)
	if err != nil {
		t.Fatalf("recording does not parse: %v", err)
	}
	// The recording carries the startup meta frame, every lifecycle
	// event, one span per completed job, and the audit's placement
	// decisions (audit is on by default).
	meta := rec.Meta()
	if len(meta) != 1 || !strings.Contains(string(meta[0]), `"policy":"LS"`) {
		t.Fatalf("meta frames %q", meta)
	}
	if spans := rec.Spans(); len(spans) != 6 {
		t.Fatalf("%d span frames, want 6", len(spans))
	}
	if evs := rec.Events(); len(evs) < 6*4 {
		t.Fatalf("only %d event frames for 6 jobs", len(evs))
	}
	if decs := rec.Decisions(); len(decs) != 6 {
		t.Fatalf("%d decision frames, want 6", len(decs))
	}

	// The /stats recorder and watch stanzas report the same recording.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	if stats.Recorder == nil || stats.Recorder.Frames == 0 || stats.Recorder.Segments < 1 {
		t.Fatalf("recorder stanza %+v", stats.Recorder)
	}
	if stats.Watch == nil || stats.Watch.Subscribers != 0 {
		t.Fatalf("watch stanza %+v", stats.Watch)
	}
	for _, sec := range stats.PerShard {
		if sec.EventsDropped != 0 {
			t.Fatalf("unexpected event drops: %+v", sec)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightDisabled(t *testing.T) {
	s, err := New(Config{
		Platform:        core.NewPlatform([]float64{1}, []float64{2}),
		Policy:          "LS",
		ClockScale:      4000,
		DisableRecorder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, s)
	if code := getJSON(t, ts.URL+"/flight", nil); code != http.StatusNotFound {
		t.Fatalf("GET /flight with recorder off: %d", code)
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	if stats.Recorder != nil {
		t.Fatalf("recorder stanza present with recorder off: %+v", stats.Recorder)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestFlightPersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{
		Platform:           core.NewPlatform([]float64{0.5, 1}, []float64{2, 4}),
		Policy:             "LS",
		ClockScale:         4000,
		RecordDir:          dir,
		RecordSegmentBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, s)
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 40}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	waitCompleted(t, ts, 40)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// After drain the recording is on disk, complete through the last
	// completion.
	rec, err := flight.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Frames) == 0 {
		t.Fatal("empty on-disk recording")
	}
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans in on-disk recording")
	}
}

func TestWatchStream(t *testing.T) {
	s, ts := testServer(t, "LS")
	resp, err := http.Get(ts.URL + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /watch: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	// Wait for the subscription to land before submitting, so the
	// submitted jobs' events are guaranteed to be published.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var stats StatsResponse
		getJSON(t, ts.URL+"/stats", &stats)
		if stats.Watch != nil && stats.Watch.Subscribers == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 3}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}

	// Read SSE lines until a completion shows up.
	sc := bufio.NewScanner(resp.Body)
	kinds := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev WatchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad watch line %q: %v", line, err)
		}
		if ev.Shard != 0 || ev.Kind == "" {
			t.Fatalf("watch event %+v", ev)
		}
		kinds[ev.Kind] = true
		if ev.Kind == "completed" {
			break
		}
	}
	for _, want := range []string{"submitted", "sent", "completed"} {
		if !kinds[want] {
			t.Fatalf("watch stream missing %q events (saw %v)", want, kinds)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestSLOEndpoint(t *testing.T) {
	s, err := New(Config{
		Platform:   core.NewPlatform([]float64{0.5, 1, 2}, []float64{2, 4, 5}),
		Policy:     "LS",
		ClockScale: 4000,
		SLOs: []obs.Objective{
			{Name: "job-p99", Kind: obs.ObjectiveLatency, ThresholdSeconds: 30, Target: 0.99},
			{Name: "http-avail", Kind: obs.ObjectiveAvailability, Target: 0.999},
		},
		SLOWindows: []time.Duration{time.Minute, time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, s)
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 8}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	waitCompleted(t, ts, 8)

	var slo SLOResponse
	if code := getJSON(t, ts.URL+"/slo", &slo); code != http.StatusOK {
		t.Fatalf("GET /slo: %d", code)
	}
	if !slo.Enabled || len(slo.Objectives) != 2 {
		t.Fatalf("slo %+v", slo)
	}
	for _, st := range slo.Objectives {
		if len(st.Windows) != 2 || st.Windows[0].WindowSeconds != 60 || st.Windows[1].WindowSeconds != 3600 {
			t.Fatalf("objective %q windows %+v", st.Objective.Name, st.Windows)
		}
		// Nothing is failing: every job is far under 30 wall seconds and
		// no request has 500d.
		if !st.OK {
			t.Fatalf("objective %q not OK: %+v", st.Objective.Name, st)
		}
	}
	// The latency objective has counted the 8 completions; availability
	// has counted the HTTP traffic.
	for _, st := range slo.Objectives {
		if st.Windows[1].Total == 0 {
			t.Fatalf("objective %q saw no events", st.Objective.Name)
		}
		if st.Objective.Kind == obs.ObjectiveLatency && st.Windows[1].Good != 8 {
			t.Fatalf("latency objective counts %+v, want 8 good", st.Windows[1])
		}
	}

	// Burn-rate gauges are on /metrics; the burn report rides /readyz.
	_, body, _ := scrape(t, ts.URL+"/metrics")
	for _, want := range []string{
		`schedd_slo_burn_rate{objective="job-p99",window_seconds="60"}`,
		`schedd_slo_burn_rate{objective="http-avail",window_seconds="3600"}`,
		`schedd_slo_events_total{objective="job-p99"} 8`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}
	var ready ReadyResponse
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("GET /readyz: %d", code)
	}
	if ready.SLO == nil || len(ready.SLO.Objectives) != 2 {
		t.Fatalf("readyz slo %+v", ready.SLO)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestSLODisabledAndInvalid(t *testing.T) {
	_, ts := testServer(t, "LS")
	var slo SLOResponse
	if code := getJSON(t, ts.URL+"/slo", &slo); code != http.StatusOK {
		t.Fatalf("GET /slo: %d", code)
	}
	if slo.Enabled || len(slo.Objectives) != 0 {
		t.Fatalf("slo without objectives %+v", slo)
	}

	base := Config{
		Platform:   core.NewPlatform([]float64{1}, []float64{2}),
		Policy:     "LS",
		ClockScale: 4000,
	}
	bad := base
	bad.SLOs = []obs.Objective{
		{Name: "x", Kind: obs.ObjectiveAvailability, Target: 0.9},
		{Name: "x", Kind: obs.ObjectiveAvailability, Target: 0.99},
	}
	if _, err := New(bad); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate objective: %v", err)
	}
	bad = base
	bad.SLOs = []obs.Objective{{Name: "x", Kind: "throughput", Target: 0.9}}
	if _, err := New(bad); err == nil {
		t.Fatal("invalid objective accepted")
	}
	bad = base
	bad.SLOs = []obs.Objective{{Name: "x", Kind: obs.ObjectiveAvailability, Target: 0.9}}
	bad.SLOWindows = []time.Duration{-time.Second}
	if _, err := New(bad); err == nil {
		t.Fatal("negative window accepted")
	}
}

func TestDecisionsLimitParam(t *testing.T) {
	s, ts := shardedServer(t, "least-loaded")
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 60}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	// Default is 50 even though more decisions exist.
	var dec DecisionsResponse
	if code := getJSON(t, ts.URL+"/decisions", &dec); code != http.StatusOK || len(dec.Decisions) != decisionsDefaultLimit {
		t.Fatalf("default window: %d decisions (code %d), want %d", len(dec.Decisions), code, decisionsDefaultLimit)
	}
	// ?limit selects the window, newest first; huge limits are capped,
	// not rejected; bad limits are 400s.
	var two DecisionsResponse
	if code := getJSON(t, ts.URL+"/decisions?limit=2", &two); code != http.StatusOK || len(two.Decisions) != 2 {
		t.Fatalf("limit=2: %d %+v", code, two)
	}
	if two.Decisions[0].Seq < two.Decisions[1].Seq {
		t.Fatalf("not newest first: %+v", two.Decisions)
	}
	var capped DecisionsResponse
	if code := getJSON(t, ts.URL+"/decisions?limit=999999", &capped); code != http.StatusOK {
		t.Fatalf("over-cap limit rejected: %d", code)
	}
	for _, bad := range []string{"0", "-3", "many"} {
		if code := getJSON(t, ts.URL+"/decisions?limit="+bad, nil); code != http.StatusBadRequest {
			t.Fatalf("limit=%s: %d", bad, code)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestPerRouteLatencyHistograms(t *testing.T) {
	_, ts := testServer(t, "LS")
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 2}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	getJSON(t, ts.URL+"/stats", nil)
	_, body, _ := scrape(t, ts.URL+"/metrics")
	for _, want := range []string{
		"# TYPE schedd_http_request_duration_seconds histogram",
		`schedd_http_request_duration_seconds_count{route="jobs"} 1`,
		`schedd_http_request_duration_seconds_bucket{route="stats",le="+Inf"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}
}
