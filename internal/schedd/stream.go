package schedd

// POST /v1/jobs:stream — the bulk-ingest firehose endpoint. The request
// body is NDJSON: one SubmitRequest per line, each placed as a single
// batched routing decision (cluster.Router.SubmitRange — one scored
// placement pass and one intake flush per line, never per job). The
// response streams back one StreamAck per line as it is admitted, so a
// client always knows exactly which jobs the service accepted.
//
// Decoding is pipelined (Config.StreamWorkers): a reader goroutine
// splits the wire into lines, W workers parse JSON in parallel, and the
// handler goroutine acts as the sequencer — it consumes parsed lines in
// arrival order and performs validation, placement and acks strictly in
// that order. Parsing is commutative, so only the sequencer touches the
// router: global-ID assignment order and per-line ack order remain
// exactly wire order, line for line, same as the serial decoder
// (StreamWorkers < 0 selects that serial path unchanged).
//
// Error semantics are partial-accept: the first bad line (malformed
// JSON, out-of-bounds count, negative scales, service draining) produces
// a terminal ack carrying the error and the stream stops — but every
// previously acked line stays accepted and will be served to completion.
// Because error acks are issued by the sequencer in line order, a
// malformed line never aborts the stream before earlier lines are acked,
// even if a worker parsed it first. The HTTP status is always 200:
// per-line status lives in the acks, which is the only place it can live
// once the header has been sent.
//
// Backpressure: in virtual-clock mode the router's firehose intake
// blocks SubmitRange while the bounded queue is full, which propagates
// to the client as TCP backpressure (the decode pipeline adds only its
// fixed slot budget of lookahead); on a real clock the handler throttles
// while the cluster's pending population sits at or above
// Config.IngestQueueDepth.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/live"
)

// StreamAck is one line of the POST /v1/jobs:stream response: the
// submitted line's consecutive global ID range [Base, Base+Count), or a
// terminal error. An ack with Error set ends the stream; lines acked
// before it remain accepted (partial-accept), lines after it were never
// read.
type StreamAck struct {
	// Line is the 1-based NDJSON line this ack answers.
	Line int `json:"line"`
	// Base and Count give the accepted jobs' global IDs: Count jobs with
	// consecutive IDs starting at Base. Both are 0 on an error ack.
	Base  int `json:"base"`
	Count int `json:"count"`
	// Error, when set, makes this ack terminal.
	Error string `json:"error,omitempty"`
}

// streamMaxLine bounds one NDJSON request line (a SubmitRequest is tens
// of bytes; a megabyte line is a protocol error, not a big batch).
const streamMaxLine = 1 << 20

// streamJob is one NDJSON line in flight through the decode pipeline.
// Slots are recycled through a per-request freelist, so a steady stream
// allocates nothing per line: buf is reused for the line copy, ready
// (capacity 1) carries the worker's parse-complete signal.
type streamJob struct {
	line  int
	buf   []byte
	req   SubmitRequest
	err   error
	ready chan struct{}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// Interactive clients interleave "send a line, read its ack", so the
	// response must start while the request body is still open. Without
	// full duplex the HTTP/1.x server drains the remaining body before
	// the first response byte — a deadlock against a client that is
	// waiting for an ack before sending more. Best-effort: transports
	// that don't support the knob (HTTP/2) are duplex natively.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ack := func(a StreamAck) bool {
		if err := enc.Encode(a); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}
	fail := func(line int, msg string) {
		ack(StreamAck{Line: line, Error: msg + " (stream aborted; earlier acked lines remain accepted)"})
	}
	if s.streamWorkers < 1 {
		s.streamSerial(r, ack, fail)
		return
	}
	s.streamParallel(r, ack, fail)
}

// submitLine is the sequencer stage shared by both decoders: validate
// one parsed line, apply real-clock backpressure, place it, ack it.
// Returns false when the stream must stop (terminal ack already sent,
// or the client is gone).
func (s *Server) submitLine(r *http.Request, line int, req SubmitRequest,
	ack func(StreamAck) bool, fail func(int, string)) bool {
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 0 || req.Count > s.cfg.MaxBatch {
		fail(line, fmt.Sprintf("count %d outside [1, %d]", req.Count, s.cfg.MaxBatch))
		return false
	}
	if req.CommScale < 0 || req.CompScale < 0 {
		fail(line, "scales must be non-negative")
		return false
	}
	// Real-clock backpressure: hold the line while the cluster's
	// pending population is at the bound. The firehose intake does its
	// own (blocking) admission control inside SubmitRange.
	for !s.firehose && s.router.Pending() >= s.ingestDepth {
		select {
		case <-r.Context().Done():
			return false
		case <-time.After(time.Millisecond):
		}
	}
	base, err := s.router.SubmitRange(live.JobSpec{CommScale: req.CommScale, CompScale: req.CompScale}, req.Count)
	if err != nil {
		if errors.Is(err, cluster.ErrDraining) {
			fail(line, "draining: no new jobs accepted")
			return false
		}
		fail(line, err.Error())
		return false
	}
	if !ack(StreamAck{Line: line, Base: base, Count: req.Count}) {
		// The client is gone; jobs already admitted stay admitted.
		return false
	}
	return true
}

// streamSerial is the single-goroutine decoder (StreamWorkers < 0): the
// PR-9 ingest path, kept verbatim as the benchmark baseline and the
// conservative fallback.
func (s *Server) streamSerial(r *http.Request, ack func(StreamAck) bool, fail func(int, string)) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), streamMaxLine)
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		line++
		if len(raw) == 0 {
			continue // blank separator lines are tolerated, not acked
		}
		req := SubmitRequest{Count: 1}
		if err := json.Unmarshal(raw, &req); err != nil {
			fail(line, "bad request line: "+err.Error())
			return
		}
		if !s.submitLine(r, line, req, ack, fail) {
			return
		}
	}
	if err := sc.Err(); err != nil {
		// Disconnect mid-line or an oversized line: a best-effort terminal
		// ack (the connection may already be dead). Everything acked so
		// far remains accepted.
		fail(line+1, "reading stream: "+err.Error())
	}
}

// streamParallel is the pipelined decoder. Three stages:
//
//	reader  — scans the body, copies each line into a pooled slot, and
//	          hands the slot to the workers (work) and, in the same
//	          order, to the sequencer (order).
//	workers — s.streamWorkers goroutines JSON-parse slots in parallel,
//	          signalling each slot's ready channel when done.
//	sequencer — this goroutine: receives slots in wire order, waits for
//	          each parse, and runs validation → placement → ack. Only it
//	          calls SubmitRange, so ID assignment stays arrival order.
//
// The slot freelist bounds lookahead (the reader blocks when all slots
// are in flight) and makes the steady state allocation-free. On early
// termination — terminal ack, client gone — closing done releases the
// reader wherever it is blocked; in-flight slots are abandoned to the
// GC rather than recycled, because a worker may still hold one.
func (s *Server) streamParallel(r *http.Request, ack func(StreamAck) bool, fail func(int, string)) {
	workers := s.streamWorkers
	depth := 4 * workers
	work := make(chan *streamJob, depth)
	order := make(chan *streamJob, depth)
	free := make(chan *streamJob, depth)
	for i := 0; i < depth; i++ {
		free <- &streamJob{ready: make(chan struct{}, 1)}
	}
	done := make(chan struct{})
	defer close(done)

	// Written by the reader before it closes order; the close is the
	// happens-before edge that lets the sequencer read them after the
	// range loop ends.
	var lastLine int
	var scanErr error

	go func() {
		defer close(work)
		defer close(order)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 64*1024), streamMaxLine)
		line := 0
		for sc.Scan() {
			raw := sc.Bytes()
			line++
			if len(raw) == 0 {
				continue // blank separator lines are tolerated, not acked
			}
			var j *streamJob
			select {
			case j = <-free:
			case <-done:
				return
			}
			j.line = line
			j.buf = append(j.buf[:0], raw...)
			select {
			case work <- j:
			case <-done:
				return
			}
			select {
			case order <- j:
			case <-done:
				return
			}
		}
		lastLine = line
		scanErr = sc.Err()
	}()

	for i := 0; i < workers; i++ {
		go func() {
			for j := range work {
				j.req = SubmitRequest{Count: 1}
				j.err = json.Unmarshal(j.buf, &j.req)
				j.ready <- struct{}{}
			}
		}()
	}

	for j := range order {
		<-j.ready
		if j.err != nil {
			fail(j.line, "bad request line: "+j.err.Error())
			return
		}
		line, req := j.line, j.req
		// The slot's buf and req have been consumed; recycle it before the
		// (potentially blocking) placement so the pipeline keeps decoding
		// ahead. free has slot-count capacity, the send cannot block.
		free <- j
		if !s.submitLine(r, line, req, ack, fail) {
			return
		}
	}
	if scanErr != nil {
		// Disconnect mid-line or an oversized line: a best-effort terminal
		// ack (the connection may already be dead). Everything acked so
		// far remains accepted.
		fail(lastLine+1, "reading stream: "+scanErr.Error())
	}
}
