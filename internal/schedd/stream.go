package schedd

// POST /v1/jobs:stream — the bulk-ingest firehose endpoint. The request
// body is NDJSON: one SubmitRequest per line, each placed as a single
// batched routing decision (cluster.Router.SubmitRange — one scored
// placement pass and one intake flush per line, never per job). The
// response streams back one StreamAck per line as it is admitted, so a
// client always knows exactly which jobs the service accepted.
//
// Error semantics are partial-accept: the first bad line (malformed
// JSON, out-of-bounds count, negative scales, service draining) produces
// a terminal ack carrying the error and the stream stops — but every
// previously acked line stays accepted and will be served to completion.
// The HTTP status is always 200: per-line status lives in the acks,
// which is the only place it can live once the header has been sent.
//
// Backpressure: in virtual-clock mode the router's firehose intake
// blocks SubmitRange while the bounded queue is full, which propagates
// to the client as TCP backpressure; on a real clock the handler
// throttles while the cluster's pending population sits at or above
// Config.IngestQueueDepth.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/live"
)

// StreamAck is one line of the POST /v1/jobs:stream response: the
// submitted line's consecutive global ID range [Base, Base+Count), or a
// terminal error. An ack with Error set ends the stream; lines acked
// before it remain accepted (partial-accept), lines after it were never
// read.
type StreamAck struct {
	// Line is the 1-based NDJSON line this ack answers.
	Line int `json:"line"`
	// Base and Count give the accepted jobs' global IDs: Count jobs with
	// consecutive IDs starting at Base. Both are 0 on an error ack.
	Base  int `json:"base"`
	Count int `json:"count"`
	// Error, when set, makes this ack terminal.
	Error string `json:"error,omitempty"`
}

// streamMaxLine bounds one NDJSON request line (a SubmitRequest is tens
// of bytes; a megabyte line is a protocol error, not a big batch).
const streamMaxLine = 1 << 20

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// Interactive clients interleave "send a line, read its ack", so the
	// response must start while the request body is still open. Without
	// full duplex the HTTP/1.x server drains the remaining body before
	// the first response byte — a deadlock against a client that is
	// waiting for an ack before sending more. Best-effort: transports
	// that don't support the knob (HTTP/2) are duplex natively.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ack := func(a StreamAck) bool {
		if err := enc.Encode(a); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}
	fail := func(line int, msg string) {
		ack(StreamAck{Line: line, Error: msg + " (stream aborted; earlier acked lines remain accepted)"})
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), streamMaxLine)
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		line++
		if len(raw) == 0 {
			continue // blank separator lines are tolerated, not acked
		}
		req := SubmitRequest{Count: 1}
		if err := json.Unmarshal(raw, &req); err != nil {
			fail(line, "bad request line: "+err.Error())
			return
		}
		if req.Count == 0 {
			req.Count = 1
		}
		if req.Count < 0 || req.Count > s.cfg.MaxBatch {
			fail(line, fmt.Sprintf("count %d outside [1, %d]", req.Count, s.cfg.MaxBatch))
			return
		}
		if req.CommScale < 0 || req.CompScale < 0 {
			fail(line, "scales must be non-negative")
			return
		}
		// Real-clock backpressure: hold the line while the cluster's
		// pending population is at the bound. The firehose intake does its
		// own (blocking) admission control inside SubmitRange.
		for !s.firehose && s.router.Pending() >= s.ingestDepth {
			select {
			case <-r.Context().Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
		base, err := s.router.SubmitRange(live.JobSpec{CommScale: req.CommScale, CompScale: req.CompScale}, req.Count)
		if err != nil {
			if errors.Is(err, cluster.ErrDraining) {
				fail(line, "draining: no new jobs accepted")
				return
			}
			fail(line, err.Error())
			return
		}
		if !ack(StreamAck{Line: line, Base: base, Count: req.Count}) {
			// The client is gone; jobs already admitted stay admitted.
			return
		}
	}
	if err := sc.Err(); err != nil {
		// Disconnect mid-line or an oversized line: a best-effort terminal
		// ack (the connection may already be dead). Everything acked so
		// far remains accepted.
		fail(line+1, "reading stream: "+err.Error())
	}
}
