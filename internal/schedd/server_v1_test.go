package schedd

// Tests for the /v1 API surface: golden byte-identity between legacy
// aliases and their /v1 successors, the shared list-limit helper, the
// NDJSON bulk-ingest stream (happy path and every error path), and the
// virtual-clock pure-throughput mode.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// fetch does one GET and returns status, body and headers.
func fetch(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestV1AliasGolden pins the compatibility contract of the API
// versioning: every legacy route is an alias of its /v1 successor with a
// byte-identical body — only the deprecation headers differ. The server
// clock is frozen so time-bearing fields (uptime, SLO burn windows)
// cannot drift between the paired requests, and the comparison runs
// after Drain so every body is stable.
func TestV1AliasGolden(t *testing.T) {
	s, err := New(Config{
		Platform: core.NewPlatform(
			[]float64{0.2, 0.4, 0.2, 0.4},
			[]float64{1, 2, 1, 2}),
		Policy:     "LS",
		Shards:     2,
		ClockScale: 8000,
		SLOs:       []obs.Objective{{Name: "p99", Kind: obs.ObjectiveLatency, ThresholdSeconds: 0.5, Target: 0.99}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Freeze the injectable clock before any comparison; completions may
	// still be recorded against it, so freeze after the traffic drains.
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 20}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	frozen := s.started.Add(3 * time.Second)
	s.now = func() time.Time { return frozen }

	pairs := []string{
		"/stats",
		"/decisions",
		"/decisions?limit=5",
		"/slo",
		"/flight",
		"/jobs/0",
		"/jobs/0/trace",
		"/jobs/99999", // 404 bodies are part of the contract too
	}
	for _, p := range pairs {
		legacyCode, legacyBody, legacyHdr := fetch(t, ts.URL+p)
		v1Code, v1Body, v1Hdr := fetch(t, ts.URL+"/v1"+p)
		if legacyCode != v1Code {
			t.Fatalf("%s: legacy status %d, v1 status %d", p, legacyCode, v1Code)
		}
		if !bytes.Equal(legacyBody, v1Body) {
			t.Fatalf("%s: legacy and /v1 bodies differ:\n%s\n---\n%s", p, legacyBody, v1Body)
		}
		if legacyHdr.Get("Deprecation") != "true" {
			t.Fatalf("%s: legacy response missing Deprecation header", p)
		}
		if link := legacyHdr.Get("Link"); !strings.Contains(link, "/v1/") || !strings.Contains(link, `rel="successor-version"`) {
			t.Fatalf("%s: legacy Link header %q", p, link)
		}
		if v1Hdr.Get("Deprecation") != "" {
			t.Fatalf("%s: /v1 response carries a Deprecation header", p)
		}
	}

	// The drained POST path: both routes refuse with the same 503 body.
	for _, p := range []string{"/jobs", "/v1/jobs"} {
		resp, err := http.Post(ts.URL+p, "application/json", strings.NewReader(`{"count":1}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s after drain: %d", p, resp.StatusCode)
		}
		if !strings.Contains(string(body), "draining") {
			t.Fatalf("POST %s body %q", p, body)
		}
	}
}

// TestQueryLimit is the table test for the shared list-limit helper:
// default, cap, alias order and garbage handling must be uniform across
// every list endpoint that uses it.
func TestQueryLimit(t *testing.T) {
	cases := []struct {
		query   string
		want    int
		wantErr string
	}{
		{"", 50, ""},                 // absent: default
		{"limit=7", 7, ""},           // plain
		{"limit=1000", 1000, ""},     // at the cap
		{"limit=5000", 1000, ""},     // above the cap: silently capped
		{"n=9", 9, ""},               // legacy alias
		{"limit=2&n=9", 2, ""},       // canonical name wins
		{"n=2&limit=9", 9, ""},       // ...regardless of query order
		{"limit=0", 0, "bad limit"},  // zero is not a positive integer
		{"limit=-3", 0, "bad limit"}, // negative
		{"limit=abc", 0, "bad limit"},
		{"n=abc", 0, "bad n"}, // errors name the offending parameter
		{"limit=abc&n=5", 0, "bad limit"},
	}
	for _, tc := range cases {
		r := httptest.NewRequest("GET", "/decisions?"+tc.query, nil)
		got, err := queryLimit(r, 50, 1000, "limit", "n")
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("query %q: err %v, want %q", tc.query, err, tc.wantErr)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Fatalf("query %q: got %d, %v; want %d", tc.query, got, err, tc.want)
		}
	}
}

// TestListLimitEndpoints pins the helper's wiring: /decisions and /watch
// reject garbage limits the same way, and the ?n= alias still works.
func TestListLimitEndpoints(t *testing.T) {
	s, ts := testServer(t, "LS")
	defer func() {
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
	}()
	if code := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Count: 4}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d", code)
	}
	waitCompleted(t, ts, 4)
	for _, p := range []string{"/decisions?limit=0", "/v1/decisions?limit=oops", "/watch?limit=-1", "/v1/watch?limit=x"} {
		if code := getJSON(t, ts.URL+p, nil); code != http.StatusBadRequest {
			t.Fatalf("GET %s: %d, want 400", p, code)
		}
	}
	var dec DecisionsResponse
	if code := getJSON(t, ts.URL+"/v1/decisions?n=2", &dec); code != http.StatusOK || len(dec.Decisions) != 2 {
		t.Fatalf("GET /v1/decisions?n=2: %d, %d decisions", code, len(dec.Decisions))
	}
}

// TestWatchLimit pins ?limit= on the SSE stream: the subscription ends
// by itself after exactly N events — a bounded tail, no client-side cut.
func TestWatchLimit(t *testing.T) {
	s, ts := testServer(t, "LS")
	type result struct {
		lines int
		err   error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/watch?limit=3")
		if err != nil {
			done <- result{0, err}
			return
		}
		defer resp.Body.Close()
		lines := 0
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				lines++
			}
		}
		done <- result{lines, sc.Err()}
	}()
	// Submit only after the watcher is subscribed, so at least 3 events
	// are guaranteed to flow past it.
	deadline := time.Now().Add(5 * time.Second)
	for s.watch.subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", SubmitRequest{Count: 8}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d", code)
	}
	res := <-done
	if res.err != nil || res.lines != 3 {
		t.Fatalf("watch limit: %d lines, err %v; want exactly 3", res.lines, res.err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

// virtualServer builds a pure-throughput (virtual-clock, firehose)
// service.
func virtualServer(t *testing.T, shards int) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Platform: core.NewPlatform(
			[]float64{0.1, 0.1, 0.2, 0.2, 0.3, 0.3, 0.1, 0.2},
			[]float64{0.4, 0.8, 0.4, 0.8, 0.4, 0.8, 0.4, 0.8}),
		Policy:           "LS",
		Shards:           shards,
		Placement:        "least-loaded",
		VirtualClock:     true,
		IngestQueueDepth: 4096,
		EventLogCap:      4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// streamLines POSTs raw NDJSON to /v1/jobs:stream and decodes every ack.
func streamLines(t *testing.T, ts *httptest.Server, body string) []StreamAck {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs:stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/jobs:stream: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var acks []StreamAck
	dec := json.NewDecoder(resp.Body)
	for {
		var a StreamAck
		if err := dec.Decode(&a); err == io.EOF {
			return acks
		} else if err != nil {
			t.Fatalf("decoding ack: %v", err)
		}
		acks = append(acks, a)
	}
}

// TestStreamEndToEnd drives the bulk path on a virtual-clock service:
// NDJSON in, consecutive ID ranges out, everything completes on drain.
func TestStreamEndToEnd(t *testing.T) {
	s, ts := virtualServer(t, 4)
	var body strings.Builder
	const lines, per = 10, 100
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&body, "{\"count\":%d}\n", per)
	}
	acks := streamLines(t, ts, body.String())
	if len(acks) != lines {
		t.Fatalf("%d acks for %d lines", len(acks), lines)
	}
	next := 0
	for i, a := range acks {
		if a.Error != "" {
			t.Fatalf("ack %d error %q", i, a.Error)
		}
		if a.Line != i+1 || a.Base != next || a.Count != per {
			t.Fatalf("ack %d: %+v (want line %d base %d count %d)", i, a, i+1, next, per)
		}
		next += per
	}
	// The legacy batch path must coexist with the stream in firehose mode.
	var batch SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 5}, &batch); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	if len(batch.IDs) != 5 || batch.IDs[0] != lines*per {
		t.Fatalf("batch ids %v", batch.IDs)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: %d", code)
	}
	want := lines*per + 5
	if stats.Jobs.Submitted != want || stats.Jobs.Completed != want {
		t.Fatalf("jobs %+v, want %d", stats.Jobs, want)
	}
	if stats.ClockScale != 1 {
		t.Fatalf("virtual mode clock scale %v, want forced 1", stats.ClockScale)
	}
	// Streaming into a drained service gets a terminal draining ack.
	acks = streamLines(t, ts, "{\"count\":1}\n")
	if len(acks) != 1 || acks[0].Error == "" || !strings.Contains(acks[0].Error, "draining") {
		t.Fatalf("drained stream acks %+v", acks)
	}
}

// TestStreamRealClock pins the non-firehose stream path: SubmitRange
// places directly into the runtimes and the acks carry the same
// consecutive-range contract.
func TestStreamRealClock(t *testing.T) {
	s, ts := testServer(t, "LS")
	acks := streamLines(t, ts, "{\"count\":4}\n{}\n{\"count\":2,\"comp_scale\":2}\n")
	if len(acks) != 3 {
		t.Fatalf("%d acks", len(acks))
	}
	wantCounts := []int{4, 1, 2}
	next := 0
	for i, a := range acks {
		if a.Error != "" || a.Base != next || a.Count != wantCounts[i] {
			t.Fatalf("ack %d: %+v (want base %d count %d)", i, a, next, wantCounts[i])
		}
		next += wantCounts[i]
	}
	waitCompleted(t, ts, next)
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamMalformedLine pins partial-accept on a mid-stream protocol
// error: the first line is accepted and served, the bad second line gets
// a terminal error ack naming the line, and the third line is never read.
func TestStreamMalformedLine(t *testing.T) {
	s, ts := virtualServer(t, 2)
	acks := streamLines(t, ts, "{\"count\":3}\n{not json\n{\"count\":5}\n")
	if len(acks) != 2 {
		t.Fatalf("%d acks, want 2 (one good, one terminal error)", len(acks))
	}
	if acks[0].Error != "" || acks[0].Count != 3 {
		t.Fatalf("first ack %+v", acks[0])
	}
	if acks[1].Line != 2 || !strings.Contains(acks[1].Error, "bad request line") ||
		!strings.Contains(acks[1].Error, "remain accepted") {
		t.Fatalf("error ack %+v", acks[1])
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if c := s.Counts(); c.Submitted != 3 || c.Completed != 3 {
		t.Fatalf("counts %+v, want the 3 accepted jobs served", c)
	}
}

// TestStreamOversizedBatch pins the bounds check: a line whose count
// exceeds MaxBatch is rejected with a terminal ack documenting the
// partial-accept semantics, and earlier lines stay accepted.
func TestStreamOversizedBatch(t *testing.T) {
	s, ts := virtualServer(t, 2)
	acks := streamLines(t, ts, "{\"count\":2}\n{\"count\":20000}\n")
	if len(acks) != 2 {
		t.Fatalf("%d acks", len(acks))
	}
	if acks[1].Line != 2 || !strings.Contains(acks[1].Error, "outside [1, 10000]") ||
		!strings.Contains(acks[1].Error, "remain accepted") {
		t.Fatalf("error ack %+v", acks[1])
	}
	acks = streamLines(t, ts, "{\"count\":1,\"comm_scale\":-1}\n")
	if len(acks) != 1 || !strings.Contains(acks[0].Error, "non-negative") {
		t.Fatalf("negative-scale ack %+v", acks)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if c := s.Counts(); c.Submitted != 2 || c.Completed != 2 {
		t.Fatalf("counts %+v, want the 2 accepted jobs served", c)
	}
}

// TestStreamClientDisconnect pins the half-stream case: a client that
// dies mid-stream keeps every acked line (the jobs are already admitted)
// and loses nothing else — the service drains to exactly the acked
// population. The request runs over a raw connection with hand-rolled
// chunked encoding: net/http's client buffers small request-body writes,
// so only a raw conn can interleave "send a line, read its ack" and then
// die without sending the terminal chunk.
func TestStreamClientDisconnect(t *testing.T) {
	s, ts := virtualServer(t, 2)
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "POST /v1/jobs:stream HTTP/1.1\r\nHost: %s\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n\r\n", u.Host); err != nil {
		t.Fatal(err)
	}
	chunk := func(line string) {
		t.Helper()
		if _, err := fmt.Fprintf(conn, "%x\r\n%s\r\n", len(line), line); err != nil {
			t.Fatal(err)
		}
	}
	chunk("{\"count\":3}\n")
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	var a1, a2 StreamAck
	if err := dec.Decode(&a1); err != nil || a1.Error != "" || a1.Count != 3 {
		t.Fatalf("ack 1 %+v err %v", a1, err)
	}
	chunk("{\"count\":3}\n")
	if err := dec.Decode(&a2); err != nil || a2.Error != "" || a2.Count != 3 {
		t.Fatalf("ack 2 %+v err %v", a2, err)
	}
	// Die mid-request: close without the terminal 0-length chunk.
	conn.Close()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if c := s.Counts(); c.Submitted != 6 || c.Completed != 6 {
		t.Fatalf("counts %+v, want exactly the 6 acked jobs", c)
	}
}

// TestVirtualClockConfig pins the mode's validation: stealing is
// structurally incompatible with firehose admission.
func TestVirtualClockConfig(t *testing.T) {
	pl := core.NewPlatform([]float64{0.2, 0.4}, []float64{1, 2})
	if _, err := New(Config{Platform: pl, Policy: "LS", Shards: 2, VirtualClock: true, Steal: "threshold"}); err == nil {
		t.Fatal("virtual clock with stealing accepted")
	}
}
