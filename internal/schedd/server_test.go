package schedd

// End-to-end service tests over real HTTP (httptest): submit a burst,
// poll until completion, check per-job lifecycle, stats shape and the
// drain protocol.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
)

func testServer(t *testing.T, policy string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Platform:   core.NewPlatform([]float64{0.5, 1, 2}, []float64{2, 4, 5}),
		Policy:     policy,
		ClockScale: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func waitCompleted(t *testing.T, ts *httptest.Server, want int) StatsResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var stats StatsResponse
		if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
			t.Fatalf("GET /stats: %d", code)
		}
		if stats.Jobs.Completed >= want {
			return stats
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d completions", want)
	return StatsResponse{}
}

func TestServiceEndToEnd(t *testing.T) {
	s, ts := testServer(t, "LS")

	// Health first.
	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz: %d %+v", code, health)
	}
	if health.Policy != "LS" {
		t.Fatalf("policy %q", health.Policy)
	}

	// Submit a burst: 3 batches of 8.
	const batches, per = 3, 8
	seen := map[int]bool{}
	for b := 0; b < batches; b++ {
		var resp SubmitResponse
		if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: per}, &resp); code != http.StatusAccepted {
			t.Fatalf("POST /jobs: %d", code)
		}
		if len(resp.IDs) != per {
			t.Fatalf("batch %d: got %d ids", b, len(resp.IDs))
		}
		for _, id := range resp.IDs {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
		}
	}

	stats := waitCompleted(t, ts, batches*per)
	if stats.Jobs.Submitted != batches*per || stats.Jobs.Completed != batches*per {
		t.Fatalf("stats jobs %+v", stats.Jobs)
	}
	if stats.LatencySeconds == nil || stats.LatencySeconds.P95 <= 0 ||
		stats.LatencySeconds.P99 < stats.LatencySeconds.P95 || stats.LatencySeconds.P50 <= 0 {
		t.Fatalf("latency stats %+v", stats.LatencySeconds)
	}
	if stats.ThroughputJobsPerSec <= 0 {
		t.Fatalf("throughput %v", stats.ThroughputJobsPerSec)
	}
	if stats.Trace == nil || stats.Trace.Makespan <= 0 || len(stats.Trace.Slaves) != 3 {
		t.Fatalf("trace %+v", stats.Trace)
	}

	// Every job's lifecycle is visible and monotone.
	for id := range seen {
		var job JobResponse
		if code := getJSON(t, ts.URL+fmt.Sprintf("/jobs/%d", id), &job); code != http.StatusOK {
			t.Fatalf("GET /jobs/%d: %d", id, code)
		}
		if job.State != live.StateDone {
			t.Fatalf("job %d state %q", id, job.State)
		}
		if job.LatencySeconds <= 0 {
			t.Fatalf("job %d latency %v", id, job.LatencySeconds)
		}
		if job.SendStart < job.Submitted || job.Complete < job.Start {
			t.Fatalf("job %d non-monotone %+v", id, job)
		}
	}

	// Unknown and malformed ids.
	if code := getJSON(t, ts.URL+"/jobs/99999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}
	if code := getJSON(t, ts.URL+"/jobs/xyz", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed job id: %d", code)
	}

	// Drain: clean shutdown, then submissions are refused.
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 1}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: %d", code)
	}
	var after HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &after); code != http.StatusOK || !after.Draining {
		t.Fatalf("healthz after drain: %d %+v", code, after)
	}
}

func TestServiceDrainCompletesOutstanding(t *testing.T) {
	s, ts := testServer(t, "SO-LS")
	var resp SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 20}, &resp); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	// Drain immediately: every accepted job must still complete.
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	counts := s.Counts()
	if counts.Completed != 20 {
		t.Fatalf("drained with %d of 20 complete", counts.Completed)
	}
}

func TestServiceRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t, "SRPT")
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: -1}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative count: %d", code)
	}
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 1, CommScale: -2}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative scale: %d", code)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
}

func TestServiceConfigValidation(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{1})
	if _, err := New(Config{Platform: pl, Policy: "FCFS"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := New(Config{Policy: "LS"}); err == nil {
		t.Fatal("empty platform accepted")
	}
	if _, err := New(Config{Platform: pl, Policy: "LS", Shards: 2}); err == nil {
		t.Fatal("more shards than slaves accepted")
	}
	if _, err := New(Config{Platform: pl, Policy: "LS", Placement: "best-effort"}); err == nil {
		t.Fatal("unknown placement accepted")
	}
	if _, err := New(Config{Platform: pl, Policy: "LS", Partition: "zigzag"}); err == nil {
		t.Fatal("unknown partition strategy accepted")
	}
	// Every extended policy (the paper seven + SO-LS) must be servable:
	// this is the flag-validation contract of cmd/schedd.
	srv, err := New(Config{Platform: pl, Policy: "SO-LS", ClockScale: 4000})
	if err != nil {
		t.Fatalf("SO-LS rejected: %v", err)
	}
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
}

// shardedServer builds a 3-shard service over a 6-slave platform.
func shardedServer(t *testing.T, placement string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Platform: core.NewPlatform(
			[]float64{0.2, 0.4, 0.2, 0.4, 0.2, 0.4},
			[]float64{1, 2, 1, 2, 1, 2}),
		Policy:     "LS",
		Shards:     3,
		Placement:  placement,
		Partition:  core.PartitionBalanced,
		ClockScale: 8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestShardedServiceEndToEnd(t *testing.T) {
	s, ts := shardedServer(t, "least-loaded")

	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz: %d %+v", code, health)
	}
	if health.Shards != 3 || len(health.ShardQueueDepths) != 3 {
		t.Fatalf("healthz shards %+v", health)
	}

	const jobs = 60
	var resp SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: jobs}, &resp); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	if len(resp.IDs) != jobs {
		t.Fatalf("got %d ids", len(resp.IDs))
	}
	stats := waitCompleted(t, ts, jobs)

	// Merged view: counts add up, shape is the sharded one.
	if stats.Shards != 3 || stats.Placement != "least-loaded" || stats.Partition != "balanced" {
		t.Fatalf("cluster stanza %+v", stats)
	}
	if stats.Jobs.Submitted != jobs || stats.Jobs.Completed != jobs {
		t.Fatalf("merged jobs %+v", stats.Jobs)
	}
	if len(stats.PerShard) != 3 {
		t.Fatalf("%d shard sections", len(stats.PerShard))
	}
	sum := 0
	slaveSeen := map[int]bool{}
	for _, sec := range stats.PerShard {
		sum += sec.Jobs.Completed
		if sec.QueueDepth != 0 {
			t.Fatalf("shard %d queue depth %d after completion", sec.Shard, sec.QueueDepth)
		}
		for _, j := range sec.Slaves {
			if slaveSeen[j] {
				t.Fatalf("slave %d in two shard sections", j)
			}
			slaveSeen[j] = true
		}
		if sec.Trace != nil {
			for _, st := range sec.Trace.Slaves {
				if !slaveSeen[st.Slave] {
					t.Fatalf("shard %d trace names unowned slave %d", sec.Shard, st.Slave)
				}
			}
		}
	}
	if sum != jobs {
		t.Fatalf("per-shard completions sum to %d, want %d", sum, jobs)
	}
	if len(slaveSeen) != 6 {
		t.Fatalf("shard sections cover %d of 6 slaves", len(slaveSeen))
	}
	if stats.Trace == nil || len(stats.Trace.Slaves) != 6 {
		t.Fatalf("merged trace %+v", stats.Trace)
	}
	if stats.LatencySeconds == nil || stats.LatencySeconds.P95 <= 0 {
		t.Fatalf("merged latency %+v", stats.LatencySeconds)
	}

	// Job lookups speak global IDs and global slave indices.
	var job JobResponse
	if code := getJSON(t, ts.URL+fmt.Sprintf("/jobs/%d", resp.IDs[jobs-1]), &job); code != http.StatusOK {
		t.Fatalf("GET job: %d", code)
	}
	if job.State != live.StateDone || job.ID != resp.IDs[jobs-1] {
		t.Fatalf("job %+v", job)
	}
	if job.Shard < 0 || job.Shard > 2 || !slaveSeen[job.Slave] {
		t.Fatalf("job placement %+v", job)
	}

	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestStealingServiceEndToEnd is the stealing smoke test: a 3-shard
// service with adversarially pinned placement and the threshold
// rebalancer takes 1000 jobs over HTTP. Pinned placement sends every
// job to shard 0 — without stealing two of the three masters would
// never see work — so completion of the full load with a nonzero steal
// count proves migration moved real jobs and lost none. Run under
// -race in CI.
func TestStealingServiceEndToEnd(t *testing.T) {
	s, err := New(Config{
		Platform: core.NewPlatform(
			[]float64{0.2, 0.2, 0.2, 0.2, 0.2, 0.2},
			[]float64{1, 1, 1, 1, 1, 1}),
		Policy:        "LS",
		Shards:        3,
		Placement:     "pinned",
		Partition:     core.PartitionStriped,
		ClockScale:    2000,
		Steal:         "threshold",
		StealInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const jobs = 1000
	for b := 0; b < 10; b++ {
		var resp SubmitResponse
		if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: jobs / 10}, &resp); code != http.StatusAccepted {
			t.Fatalf("POST /jobs: %d", code)
		}
	}
	// Settle before draining: Drain stops the rebalancer first, so on a
	// loaded machine an immediate drain can close the steal window
	// before the first 2ms tick ever fires. Polling to completion keeps
	// the rebalancer alive for the whole pinned-backlog drain-down
	// (~100ms of model-serial sends on shard 0 alone — dozens of ticks).
	waitCompleted(t, ts, jobs)
	if err := s.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	// The merged count is net of migration: every job exactly once.
	if stats.Jobs.Submitted != jobs || stats.Jobs.Completed != jobs {
		t.Fatalf("merged jobs %+v, want %d submitted and completed", stats.Jobs, jobs)
	}
	if stats.Steal == nil || stats.Steal.Policy != "threshold" || stats.Steal.Passes == 0 {
		t.Fatalf("steal stanza %+v", stats.Steal)
	}
	if stats.Steal.JobsMoved == 0 {
		t.Fatal("rebalancer moved nothing off a fully pinned 1000-job load")
	}
	// Per-shard sections: net populations sum to the total, and the
	// stolen-to shards actually completed work.
	net, offPinned := 0, 0
	for _, sec := range stats.PerShard {
		net += sec.Jobs.Submitted - sec.Jobs.Stolen
		if sec.Shard != 0 {
			offPinned += sec.Jobs.Completed
		}
	}
	if net != jobs {
		t.Fatalf("per-shard net populations sum to %d, want %d", net, jobs)
	}
	if offPinned == 0 {
		t.Fatalf("no work completed off the pinned shard: %+v", stats.PerShard)
	}

	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}
	if health.Steals == 0 || int64(health.Steals) != stats.Steal.JobsMoved {
		t.Fatalf("healthz steals %d, stats moved %d", health.Steals, stats.Steal.JobsMoved)
	}
}

func TestStealConfigValidation(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 1}, []float64{2, 2})
	if _, err := New(Config{Platform: pl, Policy: "LS", Shards: 2, Steal: "grand-theft"}); err == nil {
		t.Fatal("unknown steal policy accepted")
	}
	// Stealing off (default): no rebalancer, no stats stanza, zero steals.
	s, err := New(Config{Platform: pl, Policy: "LS", Shards: 2, ClockScale: 4000})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 4}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	if stats.Steal != nil {
		t.Fatalf("steal stanza present with stealing off: %+v", stats.Steal)
	}
	var health HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health.Steals != 0 {
		t.Fatalf("healthz %d %+v", code, health)
	}
}

// TestDrainVsSubmitRace is the drain-vs-submit race regression test:
// POST /jobs racing Drain() must either be accepted — and then the job
// MUST complete before Drain returns — or be refused with 503. No lost
// jobs, no panic. Run under -race in CI.
func TestDrainVsSubmitRace(t *testing.T) {
	for round := 0; round < 5; round++ {
		s, ts := shardedServer(t, "round-robin")
		const producers = 8
		var (
			wg       sync.WaitGroup
			accepted atomic.Int64
		)
		start := make(chan struct{})
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 2}, nil)
					switch code {
					case http.StatusAccepted:
						accepted.Add(2)
					case http.StatusServiceUnavailable:
						return
					default:
						t.Errorf("POST /jobs during drain: %d", code)
						return
					}
				}
			}()
		}
		drained := make(chan error, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			drained <- s.Drain()
		}()
		close(start)
		wg.Wait()
		if err := <-drained; err != nil {
			t.Fatalf("drain: %v", err)
		}
		counts := s.Counts()
		if int64(counts.Completed) != accepted.Load() {
			t.Fatalf("round %d: accepted %d jobs, completed %d — a job was lost",
				round, accepted.Load(), counts.Completed)
		}
		// And after Drain has returned, submissions still get 503.
		if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 1}, nil); code != http.StatusServiceUnavailable {
			t.Fatalf("round %d: submit after drain: %d", round, code)
		}
	}
}
