// Package schedd is the streaming scheduling service: an HTTP/JSON front
// end over the sharded cluster layer (internal/cluster), which fans a
// fleet of live master–slave runtimes (internal/live) out over a
// partitioned platform. Any registered scheduling policy — the seven
// paper heuristics or SO-LS — serves each shard; jobs submitted over
// POST /jobs are placed on a shard by the configured placement policy,
// tracked via GET /jobs/{id} under cluster-global IDs, and GET /stats
// reports one section per shard plus a merged cluster view (stats.Merge
// for latency summaries, trace.MergeReports for the schedule analysis).
// With Shards = 1 the service is exactly the PR-3 single-runtime daemon.
// The daemon command (cmd/schedd) and the load generator in
// cmd/paperbench both sit on this package.
package schedd

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config describes one service instance.
type Config struct {
	// Platform gives the served platform's per-task costs. Required.
	Platform core.Platform
	// Policy names the serving policy; any sched.ExtendedNames entry.
	// Every shard's master runs its own instance of it.
	Policy string
	// Shards is the number of masters the platform is partitioned
	// across; 0 means 1 (the single-runtime service).
	Shards int
	// Placement names the shard-routing policy; empty means round-robin.
	Placement string
	// Partition selects how slaves are split across shards; empty means
	// striped.
	Partition core.PartitionStrategy
	// ClockScale is the speedup of the serving clock (model seconds per
	// wall second); non-positive means 1. A platform calibrated in paper
	// seconds can be served thousands of times faster than nominal.
	// Ignored (forced to 1) in VirtualClock mode.
	ClockScale float64
	// MaxBatch caps the count accepted by one POST /jobs and by one line
	// of POST /v1/jobs:stream (default 10000).
	MaxBatch int
	// VirtualClock switches the service into pure-throughput mode: every
	// shard runs on a deterministic virtual clock (live.NewVirtual) behind
	// the cluster's firehose intake, so ingest is bounded by placement and
	// admission cost alone, never by wall-clock pacing. ClockScale is
	// forced to 1 (virtual model seconds have no wall anchor) and Steal
	// must be off — migration is incompatible with the firehose's
	// sole-submitter invariant (see cluster.FirehoseConfig).
	VirtualClock bool
	// IngestQueueDepth bounds the enqueued-but-not-yet-admitted backlog
	// behind POST /v1/jobs:stream. In VirtualClock mode it is the firehose
	// intake's QueueDepth (0 means that mode's 65536 default); on a real
	// clock the stream handler throttles while the cluster's pending
	// population is at or above it (0 means 65536).
	IngestQueueDepth int
	// StreamWorkers sizes the parallel NDJSON decode stage behind
	// POST /v1/jobs:stream: 0 picks GOMAXPROCS capped at 8, n > 0 runs
	// exactly n parse workers, negative selects the serial single-
	// goroutine decoder (the pre-pipeline path, useful as a baseline and
	// on single-core hosts). Ordering is identical either way: the
	// sequencer places and acks lines strictly in wire order.
	StreamWorkers int
	// Steal names the cross-shard work-stealing policy; empty or "none"
	// serves without a rebalancer (the PR-5 cluster, bit for bit).
	Steal string
	// StealInterval is the rebalancer's pass interval; non-positive
	// means 50ms. Ignored unless Steal names an active policy.
	StealInterval time.Duration
	// DisableMetrics turns the /metrics and /debug/vars surface off
	// (the zero value serves metrics — observability is the default).
	DisableMetrics bool
	// Pprof mounts net/http/pprof under /debug/pprof/ — opt-in: the
	// profiling surface exposes stacks and heap contents, so it is never
	// on by accident.
	Pprof bool
	// AuditDepth sizes the decision-audit ring behind GET /decisions:
	// 0 means 256, negative disables auditing.
	AuditDepth int
	// EventLogCap bounds each shard's retained event log: 0 means 65536
	// (a serving daemon must not grow without bound; see
	// live.Config.EventLogCap), negative keeps unbounded history.
	EventLogCap int
	// Logger receives the service's structured logs (rebalancer steal
	// plans at Debug). nil logs nothing from inside the service.
	Logger *slog.Logger
	// DisableRecorder turns the always-on flight recorder off. By
	// default every lifecycle event, completed span, audit decision and
	// periodic metrics snapshot is journaled into a bounded in-memory
	// segment ring served raw on GET /flight.
	DisableRecorder bool
	// RecordDir, when set, persists sealed flight segments to this
	// directory as seg-NNNNNNNN.flight files (stale segments are cleared
	// at startup); empty keeps the recording memory-only.
	RecordDir string
	// RecordSegmentBytes and RecordMaxSegments size the recorder's
	// bounded ring; 0 takes the flight package defaults (1 MiB × 8).
	RecordSegmentBytes int
	RecordMaxSegments  int
	// SnapshotInterval is the cadence at which /debug/vars-style metric
	// snapshots are journaled into the recording; non-positive means 5s.
	// Only meaningful with both the recorder and metrics on.
	SnapshotInterval time.Duration
	// SLOs configures the burn-rate engine: each objective is tracked
	// over SLOWindows and surfaced on GET /slo, /metrics and /readyz.
	// Latency objectives are fed by job completions (wall seconds),
	// availability objectives by HTTP responses (status < 500 is good).
	// Empty serves GET /slo with enabled: false.
	SLOs []obs.Objective
	// SLOWindows overrides the burn-rate windows (default 5m and 1h).
	SLOWindows []time.Duration
}

// Server is a running service: a sharded cluster plus its HTTP surface
// and, when stealing is on, the rebalancer migrating work between
// shards behind it.
type Server struct {
	cfg        Config
	router     *cluster.Router
	rebalancer *cluster.Rebalancer // nil when stealing is off
	mux        *http.ServeMux
	started    time.Time

	// now is the server's wall clock (time.Now in production). Uptime and
	// the SLO time base flow through it so tests can freeze the clock and
	// compare response bodies byte for byte.
	now func() time.Time

	// ingestDepth is the resolved IngestQueueDepth; firehose is true in
	// VirtualClock mode, where backpressure comes from the cluster intake
	// itself rather than the stream handler's pending-population throttle.
	ingestDepth int
	firehose    bool

	// streamWorkers is the resolved StreamWorkers: ≥ 1 runs the decode
	// pipeline with that many parse workers, < 1 the serial decoder.
	streamWorkers int

	// metrics is the zero-dependency registry behind GET /metrics and
	// GET /debug/vars (nil with DisableMetrics). Almost everything in it
	// is a Func metric sampled at scrape time from counters the stack
	// already maintains atomically; the two real histograms (job and
	// migration latency) are fed by completion/migration hooks off the
	// ingest path, so serving metrics adds nothing to the hot path.
	metrics    *obs.Registry
	jobLatency *obs.Histogram // nil with DisableMetrics
	migLatency *obs.Histogram

	// recorder is the always-on flight recorder behind GET /flight (nil
	// with DisableRecorder); watch fans lifecycle events out to GET
	// /watch subscribers; slos are the configured burn-rate monitors.
	recorder *flight.Recorder
	watch    *watchHub
	slos     []*obs.SLO

	// Periodic metrics-snapshot journaling (see startSnapshots).
	snapStop chan struct{}
	snapDone chan struct{}
	snapOnce sync.Once
}

// New validates the configuration and starts the cluster (one live
// runtime per shard, goroutine slaves on the scaled wall clock). The
// returned server is serving immediately; wire Handler into an
// http.Server and call Drain on shutdown.
func New(cfg Config) (*Server, error) {
	if err := sched.Validate(cfg.Policy); err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	if cfg.ClockScale <= 0 {
		cfg.ClockScale = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 10000
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Placement == "" {
		cfg.Placement = cluster.PlacementRoundRobin
	}
	if cfg.Partition == "" {
		cfg.Partition = core.PartitionStriped
	}
	if cfg.Steal == "" {
		cfg.Steal = cluster.StealNone
	}
	if err := cluster.ValidateStealPolicy(cfg.Steal); err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	if cfg.VirtualClock {
		if cfg.Steal != cluster.StealNone {
			return nil, fmt.Errorf("schedd: virtual-clock mode cannot steal (firehose admission predicts runtime-local IDs, so each shard must have exactly one submitter)")
		}
		// Virtual model seconds have no wall anchor: latency conversions
		// divide by the scale, and 1 keeps them in model seconds.
		cfg.ClockScale = 1
	}
	// Observability defaults: audit and a bounded event log are on
	// unless explicitly turned off (negative). The event-log cap is the
	// satellite fix for unbounded growth in long-running serving mode —
	// a daemon retains the newest 65536 events per shard and counts the
	// rest as dropped, instead of growing with uptime.
	auditDepth := cfg.AuditDepth
	switch {
	case auditDepth == 0:
		auditDepth = 256
	case auditDepth < 0:
		auditDepth = 0
	}
	eventCap := cfg.EventLogCap
	switch {
	case eventCap == 0:
		eventCap = 65536
	case eventCap < 0:
		eventCap = 0
	}
	s := &Server{cfg: cfg, started: time.Now(), now: time.Now, watch: newWatchHub()}
	s.firehose = cfg.VirtualClock
	s.ingestDepth = cfg.IngestQueueDepth
	if s.ingestDepth <= 0 {
		s.ingestDepth = 65536
	}
	switch {
	case cfg.StreamWorkers > 0:
		s.streamWorkers = cfg.StreamWorkers
	case cfg.StreamWorkers < 0:
		s.streamWorkers = 0 // serial decoder
	default:
		s.streamWorkers = min(runtime.GOMAXPROCS(0), 8)
	}
	// SLO monitors first: the HTTP wrapper and completion hooks feed
	// them, so they must exist before either is built.
	windows := make([]float64, 0, len(cfg.SLOWindows))
	for _, w := range cfg.SLOWindows {
		if w <= 0 {
			return nil, fmt.Errorf("schedd: SLO window %v is not positive", w)
		}
		windows = append(windows, w.Seconds())
	}
	seen := make(map[string]bool, len(cfg.SLOs))
	for _, o := range cfg.SLOs {
		if seen[o.Name] {
			return nil, fmt.Errorf("schedd: duplicate SLO objective %q", o.Name)
		}
		seen[o.Name] = true
		mon, err := obs.NewSLO(o, windows...)
		if err != nil {
			return nil, fmt.Errorf("schedd: %w", err)
		}
		s.slos = append(s.slos, mon)
	}
	if !cfg.DisableRecorder {
		rec, err := flight.New(flight.Config{
			Dir:          cfg.RecordDir,
			SegmentBytes: cfg.RecordSegmentBytes,
			MaxSegments:  cfg.RecordMaxSegments,
		})
		if err != nil {
			return nil, fmt.Errorf("schedd: %w", err)
		}
		s.recorder = rec
	}
	// Every shard shares one model-time epoch: cross-shard windows (the
	// merged first-submission-to-last-completion span in Stats) compare
	// timestamps across shards, which is only meaningful on one clock.
	// Virtual mode replaces the scaled wall clock with a deterministic
	// vclock per shard and routes all admission through the firehose
	// intake (bounded MPSC queues drained in slab-sized batches).
	epoch := time.Now()
	world := func(int) live.World { return live.NewRealTimeFrom(cfg.ClockScale, epoch) }
	var firehose *cluster.FirehoseConfig
	if cfg.VirtualClock {
		world = func(int) live.World { return live.NewVirtual() }
		firehose = &cluster.FirehoseConfig{QueueDepth: s.ingestDepth}
	}
	router, err := cluster.New(cluster.Config{
		Platform:     cfg.Platform,
		NewScheduler: func() sim.Scheduler { return sched.New(cfg.Policy) },
		Shards:       cfg.Shards,
		Placement:    cfg.Placement,
		Partition:    cfg.Partition,
		AuditDepth:   auditDepth,
		EventLogCap:  eventCap,
		World:        world,
		Firehose:     firehose,
		// The tap reads s.router, assigned below before any event can
		// flow (events are job-driven and jobs only arrive over HTTP
		// after New returns).
		Observer: s.observeShardEvent,
	})
	if err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	s.router = router
	if cfg.Steal != cluster.StealNone {
		policy, err := cluster.NewStealPolicy(cfg.Steal)
		if err != nil {
			return nil, fmt.Errorf("schedd: %w", err)
		}
		s.rebalancer = cluster.NewRebalancer(router, policy, cfg.StealInterval)
		if cfg.Logger != nil {
			s.rebalancer.SetLogger(cfg.Logger)
		}
	}
	if !cfg.DisableMetrics {
		s.registerMetrics()
	}
	s.installCompletionHooks()
	if s.recorder != nil {
		if a := router.Audit(); a != nil {
			a.SetSink(s.recorder.AppendDecision)
		}
		if meta, err := json.Marshal(map[string]any{
			"service":     "schedd",
			"policy":      cfg.Policy,
			"shards":      cfg.Shards,
			"slaves":      cfg.Platform.M(),
			"placement":   cfg.Placement,
			"partition":   string(cfg.Partition),
			"clock_scale": cfg.ClockScale,
		}); err == nil {
			s.recorder.AppendMeta(meta)
		}
	}
	s.mux = http.NewServeMux()
	s.registerRoutes()
	if s.recorder != nil && s.metrics != nil {
		interval := cfg.SnapshotInterval
		if interval <= 0 {
			interval = 5 * time.Second
		}
		s.startSnapshots(interval)
	}
	router.Start()
	if s.rebalancer != nil {
		s.rebalancer.Start()
	}
	return s, nil
}

// installCompletionHooks wires the single per-tracker completion hook
// feeding both the job-latency histogram (when metrics are on) and the
// latency SLO monitors — one hook because OnComplete replaces, not
// chains. Called before the cluster starts.
func (s *Server) installCompletionHooks() {
	var latSLOs []*obs.SLO
	for _, m := range s.slos {
		if m.Objective().Kind == obs.ObjectiveLatency {
			latSLOs = append(latSLOs, m)
		}
	}
	if s.jobLatency == nil && len(latSLOs) == 0 {
		return
	}
	scale := s.cfg.ClockScale
	for _, sh := range s.router.Shards() {
		sh.Tracker().OnComplete(func(latency float64) {
			wall := latency / scale
			if s.jobLatency != nil {
				s.jobLatency.Observe(wall)
			}
			if len(latSLOs) > 0 {
				now := s.sloNow()
				for _, m := range latSLOs {
					m.RecordLatency(now, wall)
				}
			}
		})
	}
}

// registerMetrics builds the /metrics registry. Called before the
// cluster starts, so the completion hooks are installed before any
// event can flow. Population counters are Func metrics reading the
// trackers' existing atomically-maintained counts at scrape time —
// zero additional cost on the serving path.
func (s *Server) registerMetrics() {
	r := obs.NewRegistry()
	s.metrics = r
	s.jobLatency = r.Histogram("schedd_job_latency_seconds",
		"Completed-job response time (submit to complete) in wall seconds.",
		"", obs.LatencyBuckets())
	for _, sh := range s.router.Shards() {
		sh := sh
		labels := obs.Labels("shard", strconv.Itoa(sh.Index()))
		r.CounterFunc("schedd_jobs_submitted_total", "Jobs accepted, by shard (stolen jobs count on both source and destination).",
			labels, func() float64 { return float64(sh.Tracker().CountsSnapshot().Submitted) })
		r.CounterFunc("schedd_jobs_dispatched_total", "Jobs sent to a slave, by shard.",
			labels, func() float64 { return float64(sh.Tracker().CountsSnapshot().Dispatched) })
		r.CounterFunc("schedd_jobs_completed_total", "Jobs completed, by shard.",
			labels, func() float64 { return float64(sh.Tracker().CountsSnapshot().Completed) })
		r.CounterFunc("schedd_jobs_stolen_total", "Jobs retracted by cross-shard steals, by source shard.",
			labels, func() float64 { return float64(sh.Tracker().CountsSnapshot().Stolen) })
		r.GaugeFunc("schedd_queue_depth", "Accepted-but-undispatched backlog, by shard.",
			labels, func() float64 { return float64(sh.Load().QueueDepth()) })
		r.GaugeFunc("schedd_slaves_live", "Slaves not declared down, by shard.",
			labels, func() float64 { return float64(sh.LiveSlaves()) })
		r.CounterFunc("schedd_events_dropped_total", "Events overwritten in the bounded per-shard event log.",
			labels, func() float64 { return float64(sh.Runtime().EventsDropped()) })
	}
	r.GaugeFunc("schedd_uptime_seconds", "Wall seconds since the service started.",
		"", s.uptime)
	r.GaugeFunc("schedd_draining", "1 while the service is draining, else 0.",
		"", func() float64 {
			if s.router.Draining() {
				return 1
			}
			return 0
		})
	r.CounterFunc("schedd_migrations_jobs_total", "Jobs migrated between shards.",
		"", func() float64 { return float64(s.router.Stolen()) })
	s.migLatency = r.Histogram("schedd_migration_latency_seconds",
		"Wall latency of one executed migration (retract through re-home).",
		"", obs.LatencyBuckets())
	s.router.OnMigrate(func(_ int, latency float64) {
		s.migLatency.Observe(latency)
	})
	if a := s.router.Audit(); a != nil {
		r.CounterFunc("schedd_decisions_dropped_total", "Audit decisions overwritten in the bounded ring.",
			"", func() float64 { return float64(a.Dropped()) })
	}
	if b := s.rebalancer; b != nil {
		r.CounterFunc("schedd_steal_passes_total", "Rebalancer planning passes.",
			"", func() float64 { return float64(b.Passes()) })
		r.CounterFunc("schedd_steal_moved_total", "Jobs moved by the rebalancer.",
			"", func() float64 { return float64(b.Moved()) })
		r.GaugeFunc("schedd_steal_last_pass_age_seconds", "Age of the last rebalancer pass (-1 before the first).",
			"", func() float64 {
				last, ok := b.LastPass()
				if !ok {
					return -1
				}
				return time.Since(last).Seconds()
			})
	}
	for _, m := range s.slos {
		m := m
		obj := m.Objective()
		for _, w := range m.Windows() {
			w := w
			r.GaugeFunc("schedd_slo_burn_rate",
				"Error-budget burn rate, by objective and window (1.0 spends the budget exactly over the window; above 1 the objective is being missed).",
				obs.Labels("objective", obj.Name, "window_seconds", strconv.FormatFloat(w, 'g', -1, 64)),
				func() float64 { return m.BurnRate(s.sloNow(), w) })
		}
		r.CounterFunc("schedd_slo_events_good_total", "Events within the objective, by objective.",
			obs.Labels("objective", obj.Name), func() float64 { g, _ := m.Totals(); return float64(g) })
		r.CounterFunc("schedd_slo_events_total", "Events measured against the objective, by objective.",
			obs.Labels("objective", obj.Name), func() float64 { _, t := m.Totals(); return float64(t) })
	}
	if rec := s.recorder; rec != nil {
		r.CounterFunc("schedd_flight_frames_total", "Frames journaled by the flight recorder.",
			"", func() float64 { return float64(rec.Stats().Frames) })
		r.CounterFunc("schedd_flight_segments_dropped_total", "Sealed flight segments discarded by the bounded ring.",
			"", func() float64 { return float64(rec.Stats().SegmentsDropped) })
	}
	r.CounterFunc("schedd_watch_events_dropped_total", "Watch-stream events dropped on slow subscribers.",
		"", func() float64 { return float64(s.watch.dropped.Load()) })
	if _, ok := s.router.FirehoseStats(); ok {
		r.GaugeFunc("schedd_firehose_queue_depth", "Enqueued-but-not-yet-admitted jobs across all firehose intake shards.",
			"", func() float64 { return float64(s.router.FirehoseDepth()) })
		for _, sh := range s.router.Shards() {
			idx := sh.Index()
			r.GaugeFunc("schedd_firehose_shard_queued", "Enqueued-but-not-yet-admitted jobs, by intake shard.",
				obs.Labels("shard", strconv.Itoa(idx)),
				func() float64 { return float64(s.router.FirehoseShardQueued(idx)) })
		}
		r.CounterFunc("schedd_firehose_slab_gets_total", "Admission-slab checkouts from the firehose slab pool.",
			"", func() float64 { gets, _, _ := s.router.FirehoseSlabStats(); return float64(gets) })
		r.CounterFunc("schedd_firehose_slab_hits_total", "Admission-slab checkouts served by recycling (the rest allocated).",
			"", func() float64 { _, hits, _ := s.router.FirehoseSlabStats(); return float64(hits) })
		r.CounterFunc("schedd_firehose_slab_drops_total", "Drained slabs discarded because the recycle pool was full.",
			"", func() float64 { _, _, drops := s.router.FirehoseSlabStats(); return float64(drops) })
	}
}

// counted wraps a handler with its per-route request counter and
// latency histogram, and feeds availability SLOs from the captured
// response status (< 500 is good). With metrics off and no availability
// objectives it returns the handler unchanged.
func (s *Server) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	var availSLOs []*obs.SLO
	for _, m := range s.slos {
		if m.Objective().Kind == obs.ObjectiveAvailability {
			availSLOs = append(availSLOs, m)
		}
	}
	if s.metrics == nil && len(availSLOs) == 0 {
		return h
	}
	var c *obs.Counter
	var dur *obs.Histogram
	if s.metrics != nil {
		labels := obs.Labels("route", route)
		c = s.metrics.Counter("schedd_http_requests_total",
			"HTTP requests served, by route.", labels)
		dur = s.metrics.Histogram("schedd_http_request_duration_seconds",
			"HTTP request handling latency in wall seconds, by route.", labels,
			obs.LatencyBuckets())
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if c != nil {
			c.Inc()
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h(sw, r)
		if dur != nil {
			dur.Observe(time.Since(begin).Seconds())
		}
		if len(availSLOs) > 0 {
			now := s.sloNow()
			for _, m := range availSLOs {
				m.Record(now, sw.status < http.StatusInternalServerError)
			}
		}
	}
}

// route is one row of the service's HTTP surface. The canonical pattern
// is method+" "+path; rows with an alias also serve the pre-/v1
// unversioned path, marked deprecated via response headers.
type route struct {
	// method is the HTTP method ("" registers the bare path, matching
	// every method — only the pprof prefix handler needs that).
	method string
	// path is the canonical pattern (versioned rows live under /v1).
	path string
	// name labels the route in per-route metrics; "" skips the counted
	// wrapper (pprof brings its own handlers).
	name string
	h    http.HandlerFunc
	// alias is the legacy unversioned path served as a deprecated alias
	// of a /v1 row ("" for none). Alias bodies are byte-identical to the
	// canonical route's; only the deprecation headers differ.
	alias string
}

// routes assembles the route table: the /v1 surface with its legacy
// aliases, the infra probes (never versioned — load balancers and
// scrapers hardcode them), and the opt-in surfaces present only when
// their subsystem is on.
func (s *Server) routes() []route {
	rs := []route{
		{"POST", "/v1/jobs", "jobs", s.handleSubmit, "/jobs"},
		{"POST", "/v1/jobs:stream", "stream", s.handleStream, ""},
		{"GET", "/v1/jobs/{id}", "job", s.handleJob, "/jobs/{id}"},
		{"GET", "/v1/jobs/{id}/trace", "trace", s.handleTrace, "/jobs/{id}/trace"},
		{"GET", "/v1/stats", "stats", s.handleStats, "/stats"},
		{"GET", "/v1/decisions", "decisions", s.handleDecisions, "/decisions"},
		{"GET", "/v1/slo", "slo", s.handleSLO, "/slo"},
		{"GET", "/v1/watch", "watch", s.handleWatch, "/watch"},
		{"GET", "/healthz", "healthz", s.handleHealthz, ""},
		{"GET", "/readyz", "readyz", s.handleReadyz, ""},
	}
	if s.recorder != nil {
		rs = append(rs, route{"GET", "/v1/flight", "flight", s.handleFlight, "/flight"})
	}
	if s.metrics != nil {
		rs = append(rs,
			route{"GET", "/metrics", "metrics", s.handleMetrics, ""},
			route{"GET", "/debug/vars", "vars", s.handleVars, ""})
	}
	if s.cfg.Pprof {
		rs = append(rs,
			route{"", "/debug/pprof/", "", pprof.Index, ""},
			route{"", "/debug/pprof/cmdline", "", pprof.Cmdline, ""},
			route{"", "/debug/pprof/profile", "", pprof.Profile, ""},
			route{"", "/debug/pprof/symbol", "", pprof.Symbol, ""},
			route{"", "/debug/pprof/trace", "", pprof.Trace, ""})
	}
	return rs
}

// registerRoutes mounts the route table on the mux: each row's canonical
// pattern, plus — for aliased rows — the legacy path wrapped with the
// standard deprecation headers pointing at the /v1 successor.
func (s *Server) registerRoutes() {
	for _, rt := range s.routes() {
		h := rt.h
		if rt.name != "" {
			h = s.counted(rt.name, h)
		}
		pattern := rt.path
		if rt.method != "" {
			pattern = rt.method + " " + rt.path
		}
		s.mux.HandleFunc(pattern, h)
		if rt.alias != "" {
			s.mux.HandleFunc(rt.method+" "+rt.alias, deprecated(rt.path, h))
		}
	}
}

// deprecated wraps a legacy alias: the response carries a Deprecation
// header and a successor-version Link to the /v1 route, and is otherwise
// byte-identical to the canonical one.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Policy returns the serving policy's name.
func (s *Server) Policy() string { return s.cfg.Policy }

// Router exposes the underlying cluster (read-only use).
func (s *Server) Router() *cluster.Router { return s.router }

// Counts returns the merged job counters over every shard. A migrated
// job is submitted on two shards (source, then destination) but stolen
// on the source, so each shard contributes Submitted − Stolen and every
// job counts exactly once — on the shard that ultimately serves it.
// The merged Stolen field reports total migrations for observability;
// it is NOT part of the population identity (which is Submitted ==
// Completed after a drain, stealing or not).
func (s *Server) Counts() live.Counts {
	var total live.Counts
	for _, sh := range s.router.Shards() {
		c := sh.Tracker().CountsSnapshot()
		total.Submitted += c.Submitted - c.Stolen
		total.Dispatched += c.Dispatched
		total.Completed += c.Completed
		total.Stolen += c.Stolen
	}
	return total
}

// Drain gracefully shuts the cluster down: the rebalancer stops first
// (no new migrations begin), then new submissions are rejected with
// 503, in-flight migrations finish re-homing, every outstanding job on
// every shard completes, the slaves exit. It blocks until all shards
// have fully drained and returns the joined error, if any.
func (s *Server) Drain() error {
	s.stopSnapshots()
	if s.rebalancer != nil {
		s.rebalancer.Stop()
	}
	err := s.router.Drain()
	// Close the recorder last so the drain's own completions are the
	// recording's final frames.
	if cerr := s.recorder.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// SubmitRequest is the POST /jobs body. An empty body submits one
// nominal job.
type SubmitRequest struct {
	// Count is the number of jobs to submit (default 1).
	Count int `json:"count"`
	// CommScale and CompScale perturb the jobs' actual costs (0 means 1).
	CommScale float64 `json:"comm_scale"`
	CompScale float64 `json:"comp_scale"`
}

// SubmitResponse echoes the assigned cluster-global job IDs.
type SubmitResponse struct {
	IDs []int `json:"ids"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req := SubmitRequest{Count: 1}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 0 || req.Count > s.cfg.MaxBatch {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("count %d outside [1, %d]", req.Count, s.cfg.MaxBatch))
		return
	}
	if req.CommScale < 0 || req.CompScale < 0 {
		httpError(w, http.StatusBadRequest, "scales must be non-negative")
		return
	}
	// One routed batch per request: per-job placement decisions, but a
	// single runtime critical section per shard (the PR-4 ingest
	// contract, preserved through the router).
	ids, err := s.router.SubmitBatch(live.JobSpec{CommScale: req.CommScale, CompScale: req.CompScale}, req.Count)
	if err != nil {
		if errors.Is(err, cluster.ErrDraining) {
			httpError(w, http.StatusServiceUnavailable, "draining: no new jobs accepted")
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{IDs: ids})
}

// JobResponse is the GET /jobs/{id} body: the tracked lifecycle (global
// job ID, platform-global slave index) plus the shard that served it and
// the wall-clock latency for completed jobs.
type JobResponse struct {
	live.JobInfo
	// Shard is the shard the job was placed on.
	Shard int `json:"shard"`
	// LatencySeconds is the wall-clock response time (submit → complete),
	// only present once done.
	LatencySeconds float64 `json:"latency_seconds,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id")
		return
	}
	info, ok := s.router.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %d", id))
		return
	}
	shard, _ := s.router.ShardOf(id)
	resp := JobResponse{JobInfo: info, Shard: shard}
	if info.State == live.StateDone {
		resp.LatencySeconds = info.Latency() / s.cfg.ClockScale
	}
	writeJSON(w, http.StatusOK, resp)
}

// LatencyStats summarizes completed-job response times in wall seconds.
type LatencyStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// ShardStats is one shard's section of the GET /stats body. Slave
// indices — in Slaves and inside Trace — are platform-global.
type ShardStats struct {
	Shard  int         `json:"shard"`
	Slaves []int       `json:"slaves"`
	Jobs   live.Counts `json:"jobs"`
	// QueueDepth is the shard's accepted-but-undispatched backlog right
	// now (live, unlike the completed-job statistics).
	QueueDepth int `json:"queue_depth"`
	// EventsDropped counts lifecycle events overwritten in the shard's
	// bounded event ring — nonzero means the retained log (and any trace
	// built from it) is missing its oldest history.
	EventsDropped int64 `json:"events_dropped"`
	// IntakeQueued is the shard's enqueued-but-not-yet-admitted firehose
	// backlog (only present in VirtualClock mode).
	IntakeQueued         int64         `json:"intake_queued,omitempty"`
	ThroughputJobsPerSec float64       `json:"throughput_jobs_per_sec"`
	LatencySeconds       *LatencyStats `json:"latency_seconds,omitempty"`
	// StageSeconds decomposes completed-job latency into the lifecycle
	// stages the one-port model defines (queue-wait, transfer,
	// slave-wait, service), in wall seconds — derived from the same span
	// timestamps GET /jobs/{id}/trace serves.
	StageSeconds *obs.StageBreakdown `json:"stage_seconds,omitempty"`
	Trace        *trace.Report       `json:"trace,omitempty"`
}

// StealStats is the GET /stats stealing stanza, present only when the
// service runs a rebalancer.
type StealStats struct {
	// Policy is the steal policy's registry name.
	Policy string `json:"policy"`
	// IntervalSeconds is the rebalancer's pass interval in wall seconds.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Passes counts planning passes run so far.
	Passes int64 `json:"passes"`
	// JobsMoved counts jobs migrated between shards so far.
	JobsMoved int64 `json:"jobs_moved"`
}

// StatsResponse is the GET /stats body: the merged cluster view at the
// top level (wire-compatible with the single-runtime service: jobs,
// throughput, latency and trace keep their PR-3 names and meaning) plus
// one section per shard. Merged latency percentiles come from
// stats.Merge and are approximate across heterogeneous shards (see that
// function's contract); counts, means and the trace merge are exact.
// Merged job counters subtract each shard's stolen jobs so a migrated
// job counts once (see Server.Counts); per-shard sections keep the raw
// counters, stolen included.
type StatsResponse struct {
	Policy        string  `json:"policy"`
	Slaves        int     `json:"slaves"`
	Shards        int     `json:"shards"`
	Placement     string  `json:"placement"`
	Partition     string  `json:"partition"`
	ClockScale    float64 `json:"clock_scale"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	// Jobs are the merged counters over every shard.
	Jobs live.Counts `json:"jobs"`
	// ThroughputJobsPerSec is merged completions per wall second over the
	// union window from the cluster's first submission to its last
	// completion.
	ThroughputJobsPerSec float64       `json:"throughput_jobs_per_sec"`
	LatencySeconds       *LatencyStats `json:"latency_seconds,omitempty"`
	// StageSeconds is the cluster-wide per-stage latency decomposition
	// over every completed job, in wall seconds.
	StageSeconds *obs.StageBreakdown `json:"stage_seconds,omitempty"`
	Trace        *trace.Report       `json:"trace,omitempty"`
	// Steal reports the rebalancer's progress; absent when stealing is
	// off.
	Steal *StealStats `json:"steal,omitempty"`
	// Recorder reports the flight recorder's accounting (frames, bytes,
	// retained and dropped segments); absent with DisableRecorder.
	Recorder *RecorderStats `json:"recorder,omitempty"`
	// Watch reports the /watch SSE hub: current subscribers and events
	// dropped on slow ones.
	Watch *WatchStats `json:"watch,omitempty"`
	// Firehose reports the intake's backpressure state (queue depth, per-
	// shard backlog, slab-pool effectiveness); absent outside
	// VirtualClock mode.
	Firehose *FirehoseStatsResponse `json:"firehose,omitempty"`
	// PerShard holds one section per shard, in shard order.
	PerShard []ShardStats `json:"per_shard"`
}

// RecorderStats is the GET /stats flight-recorder stanza.
type RecorderStats struct {
	flight.Stats
	// Dir is the segment persistence directory ("" when memory-only).
	Dir string `json:"dir,omitempty"`
}

// WatchStats is the GET /stats watch-hub stanza.
type WatchStats struct {
	Subscribers int    `json:"subscribers"`
	Dropped     uint64 `json:"dropped"`
}

// FirehoseStatsResponse is the GET /stats firehose-intake stanza: how
// much backlog producers have parked in the bounded intake (queued vs
// the bound producers block on) and how the admission-slab pool is
// holding up (drops mean slabs fell to the GC because the recycle stack
// was full). Absent outside VirtualClock mode.
type FirehoseStatsResponse struct {
	QueueBound  int     `json:"queue_bound"`
	Queued      int     `json:"queued"`
	ShardQueued []int64 `json:"shard_queued"`
	SlabGets    int64   `json:"slab_gets"`
	SlabHits    int64   `json:"slab_hits"`
	SlabDrops   int64   `json:"slab_drops"`
}

// Stats assembles the current service statistics — one consistent
// tracker snapshot per shard, then the merged cluster view (also used by
// the load generator without going through HTTP decoding).
func (s *Server) Stats() StatsResponse {
	resp := StatsResponse{
		Policy:        s.cfg.Policy,
		Slaves:        s.cfg.Platform.M(),
		Shards:        len(s.router.Shards()),
		Placement:     s.cfg.Placement,
		Partition:     string(s.cfg.Partition),
		ClockScale:    s.cfg.ClockScale,
		UptimeSeconds: s.uptime(),
		Draining:      s.router.Draining(),
	}
	var latParts []stats.Summary
	var traceParts []trace.Report
	var stageParts []obs.StageBreakdown
	first, last := 0.0, 0.0
	windowSet := false
	for _, sh := range s.router.Shards() {
		snap := sh.Tracker().Stats()
		sec := ShardStats{
			Shard:         sh.Index(),
			Slaves:        sh.Slaves(),
			Jobs:          snap.Counts,
			QueueDepth:    sh.Runtime().Pending(),
			EventsDropped: sh.Runtime().EventsDropped(),
		}
		if len(snap.Records) > 0 {
			// Stage durations are differences of the span timestamps, so
			// they are unaffected by the rebasing the trace section does
			// below.
			b := obs.Breakdown(snap.Records).Scale(s.cfg.ClockScale)
			sec.StageSeconds = &b
			stageParts = append(stageParts, b)
		}
		resp.Jobs.Submitted += snap.Counts.Submitted - snap.Counts.Stolen
		resp.Jobs.Dispatched += snap.Counts.Dispatched
		resp.Jobs.Completed += snap.Counts.Completed
		resp.Jobs.Stolen += snap.Counts.Stolen
		if len(snap.Latencies) > 0 {
			// The snapshot's latency slice is this call's private copy, so
			// it can be rescaled and sorted in place.
			wall := snap.Latencies
			for i, l := range wall {
				wall[i] = l / s.cfg.ClockScale
			}
			sum := stats.SummarizeInPlace(wall)
			latParts = append(latParts, sum)
			sec.LatencySeconds = &LatencyStats{Mean: sum.Mean, P50: sum.P50, P95: sum.P95, P99: sum.P99}
		}
		if snap.Counts.Completed > 0 {
			if snap.Last > snap.First {
				sec.ThroughputJobsPerSec = float64(snap.Counts.Completed) / ((snap.Last - snap.First) / s.cfg.ClockScale)
			}
			if !windowSet || snap.First < first {
				first = snap.First
			}
			if snap.Last > last {
				last = snap.Last
			}
			windowSet = true
		}
		if recs := snap.Records; len(recs) > 0 {
			// Rebase model time to the shard's first submission: a daemon
			// may idle before its first job, and an un-rebased makespan
			// (hence every utilization figure) would be dominated by that
			// offset rather than by the served work.
			if snap.First > 0 {
				for i := range recs {
					recs[i].Release -= snap.First
					recs[i].SendStart -= snap.First
					recs[i].Arrive -= snap.First
					recs[i].Start -= snap.First
					recs[i].Complete -= snap.First
				}
			}
			report := trace.Analyze(core.Schedule{
				Instance: core.Instance{Platform: sh.Platform().Clone()},
				Records:  recs,
			})
			// Relabel shard-local slave indices to platform-global ones so
			// the per-shard section and the merged view both speak global
			// indices.
			for i := range report.Slaves {
				report.Slaves[i].Slave = sh.GlobalSlave(report.Slaves[i].Slave)
			}
			sec.Trace = &report
			traceParts = append(traceParts, report)
		}
		resp.PerShard = append(resp.PerShard, sec)
	}
	if len(latParts) > 0 {
		sum := stats.Merge(latParts...)
		resp.LatencySeconds = &LatencyStats{Mean: sum.Mean, P50: sum.P50, P95: sum.P95, P99: sum.P99}
	}
	if len(traceParts) > 0 {
		merged := trace.MergeReports(traceParts...)
		resp.Trace = &merged
	}
	if len(stageParts) > 0 {
		merged := obs.MergeBreakdowns(stageParts...)
		resp.StageSeconds = &merged
	}
	if resp.Jobs.Completed > 0 && last > first {
		resp.ThroughputJobsPerSec = float64(resp.Jobs.Completed) / ((last - first) / s.cfg.ClockScale)
	}
	if b := s.rebalancer; b != nil {
		resp.Steal = &StealStats{
			Policy:          b.Policy(),
			IntervalSeconds: b.Interval().Seconds(),
			Passes:          b.Passes(),
			JobsMoved:       b.Moved(),
		}
	}
	if rec := s.recorder; rec != nil {
		resp.Recorder = &RecorderStats{Stats: rec.Stats(), Dir: s.cfg.RecordDir}
	}
	resp.Watch = &WatchStats{
		Subscribers: s.watch.subscribers(),
		Dropped:     s.watch.dropped.Load(),
	}
	if fs, ok := s.router.FirehoseStats(); ok {
		resp.Firehose = &FirehoseStatsResponse{
			QueueBound:  fs.QueueBound,
			Queued:      fs.Queued,
			ShardQueued: fs.ShardQueued,
			SlabGets:    fs.SlabGets,
			SlabHits:    fs.SlabHits,
			SlabDrops:   fs.SlabDrops,
		}
		for i := range resp.PerShard {
			if sh := resp.PerShard[i].Shard; sh < len(fs.ShardQueued) {
				resp.PerShard[i].IntakeQueued = fs.ShardQueued[sh]
			}
		}
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// HealthResponse is the GET /healthz body. QueueDepth reports the
// cluster-wide accepted-but-undispatched backlog (per shard in
// ShardQueueDepths), fed by the runtime's Load snapshot.
type HealthResponse struct {
	OK               bool    `json:"ok"`
	Policy           string  `json:"policy"`
	Shards           int     `json:"shards"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Draining         bool    `json:"draining"`
	QueueDepth       int     `json:"queue_depth"`
	ShardQueueDepths []int   `json:"shard_queue_depths"`
	// Steals is the total number of jobs migrated between shards (0
	// forever when stealing is off).
	Steals int `json:"steals"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	depths := make([]int, 0, len(s.router.Shards()))
	total := 0
	for _, l := range s.router.Loads() {
		depths = append(depths, l.QueueDepth())
		total += l.QueueDepth()
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:               true,
		Policy:           s.cfg.Policy,
		Shards:           len(s.router.Shards()),
		UptimeSeconds:    s.uptime(),
		Draining:         s.router.Draining(),
		QueueDepth:       total,
		ShardQueueDepths: depths,
		Steals:           s.router.Stolen(),
	})
}

// ReadyResponse is the GET /readyz body. Unlike /healthz (liveness:
// "the process is up and serving HTTP"), readiness answers "should a
// load balancer route new work here" — false the moment draining
// begins, with per-shard drain state and the rebalancer's last-scan age
// as the supporting detail.
type ReadyResponse struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	// Shards reports each shard's routable state.
	Shards []ShardReady `json:"shards"`
	// StealLastPassAgeSeconds is how long ago the rebalancer's last
	// planning pass finished; -1 before the first pass, absent when
	// stealing is off. A large age under load means the rebalancer loop
	// is wedged.
	StealLastPassAgeSeconds *float64 `json:"steal_last_pass_age_seconds,omitempty"`
	// SLO is the burn-rate report, informational supporting detail:
	// readiness stays drain-based (a burning SLO is an alert, not a
	// reason to stop routing — removing capacity would make it worse).
	// Absent when no objectives are configured.
	SLO *SLOResponse `json:"slo,omitempty"`
}

// ShardReady is one shard's row of the readiness report.
type ShardReady struct {
	Shard      int  `json:"shard"`
	QueueDepth int  `json:"queue_depth"`
	LiveSlaves int  `json:"live_slaves"`
	Draining   bool `json:"draining"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	draining := s.router.Draining()
	resp := ReadyResponse{Ready: !draining, Draining: draining}
	loads := s.router.Loads()
	for i, sh := range s.router.Shards() {
		resp.Shards = append(resp.Shards, ShardReady{
			Shard:      sh.Index(),
			QueueDepth: loads[i].QueueDepth(),
			LiveSlaves: sh.LiveSlaves(),
			Draining:   draining,
		})
	}
	if b := s.rebalancer; b != nil {
		age := -1.0
		if last, ok := b.LastPass(); ok {
			age = time.Since(last).Seconds()
		}
		resp.StealLastPassAgeSeconds = &age
	}
	if len(s.slos) > 0 {
		slo := s.sloStatus()
		resp.SLO = &slo
	}
	status := http.StatusOK
	if draining {
		// 503 so a load balancer's readiness probe stops routing here
		// while the daemon finishes its backlog.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}

func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.metrics.WriteJSON(w)
}

// TraceResponse is the GET /jobs/{id}/trace body: the job's span tree.
// Span times are model seconds on the serving clock (divide by
// clock_scale for wall seconds); Stages holds the lifecycle intervals
// observed so far, so an in-flight job's trace grows stage by stage and
// a completed job's trace is the full four-stage decomposition.
type TraceResponse struct {
	Job        int      `json:"job"`
	Shard      int      `json:"shard"`
	State      string   `json:"state"`
	ClockScale float64  `json:"clock_scale"`
	Span       obs.Span `json:"span"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id")
		return
	}
	info, ok := s.router.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %d", id))
		return
	}
	shard, _ := s.router.ShardOf(id)
	writeJSON(w, http.StatusOK, TraceResponse{
		Job:        id,
		Shard:      shard,
		State:      info.State,
		ClockScale: s.cfg.ClockScale,
		Span:       spanFromInfo(info),
	})
}

// spanFromInfo builds the span tree for any lifecycle state. A
// completed job decomposes into the full four stages (the same pure
// function the conformance suite pins deterministic); an in-flight job
// carries the stages with both endpoints observed so far.
func spanFromInfo(info live.JobInfo) obs.Span {
	if info.State == live.StateDone {
		return obs.FromRecord(core.Record{
			Task:      core.TaskID(info.ID),
			Slave:     info.Slave,
			Release:   info.Submitted,
			SendStart: info.SendStart,
			Arrive:    info.Arrive,
			Start:     info.Start,
			Complete:  info.Complete,
		})
	}
	sp := obs.Span{Job: info.ID, Slave: info.Slave, Start: info.Submitted, End: info.Submitted}
	add := func(name string, start, end float64) {
		sp.Stages = append(sp.Stages, obs.Stage{Name: name, Start: start, End: end})
		sp.End = end
	}
	switch info.State {
	case live.StateStolen:
		// The source-side lifecycle ends at retraction; the job's new
		// shard restarts it (GET /jobs/{id} follows the migration, so
		// this branch is only visible mid-migration).
		add(obs.StageQueue, info.Submitted, info.StolenAt)
	case live.StateSent:
		add(obs.StageQueue, info.Submitted, info.SendStart)
		if info.Arrive >= info.SendStart && info.Arrive > 0 {
			add(obs.StageTransfer, info.SendStart, info.Arrive)
		}
	}
	return sp
}

// DecisionsResponse is the GET /decisions body: the newest audit
// entries (placements with per-shard scores, steal plans, executed
// migrations), newest first. ?limit= selects how many (default 50,
// capped at 1000; ?n= is a legacy alias); a value that is not a
// positive integer is a 400.
type DecisionsResponse struct {
	// Enabled is false when the service runs with auditing off
	// (AuditDepth < 0); Decisions is then always empty.
	Enabled bool `json:"enabled"`
	// Dropped counts audit entries overwritten by the bounded ring.
	Dropped uint64 `json:"dropped"`
	// Decisions are the newest entries, newest first.
	Decisions []obs.Decision `json:"decisions"`
}

// Bounds on GET /decisions responses: without an explicit limit the
// newest decisionsDefaultLimit entries come back; an explicit limit is
// capped at decisionsMaxLimit so a scrape can never ask for an
// unbounded copy of the ring.
const (
	decisionsDefaultLimit = 50
	decisionsMaxLimit     = 1000
)

// queryLimit parses a bounds-checked list limit from the first of the
// named query parameters that is present (earlier names win — the
// canonical name goes first, legacy aliases after). An absent value
// yields def; a value above max is silently capped; anything that is not
// a positive integer is an error naming the offending parameter. Shared
// by every list endpoint so "?limit=" means one thing service-wide.
func queryLimit(r *http.Request, def, max int, names ...string) (int, error) {
	for _, name := range names {
		q := r.URL.Query().Get(name)
		if q == "" {
			continue
		}
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("bad %s: want a positive integer", name)
		}
		return min(v, max), nil
	}
	return def, nil
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	n, err := queryLimit(r, decisionsDefaultLimit, decisionsMaxLimit, "limit", "n")
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	a := s.router.Audit()
	resp := DecisionsResponse{Enabled: a != nil, Dropped: a.Dropped()}
	if ds := a.Recent(n); ds != nil {
		resp.Decisions = ds
	} else {
		resp.Decisions = []obs.Decision{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
