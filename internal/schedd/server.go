// Package schedd is the streaming scheduling service: an HTTP/JSON front
// end over the live master–slave runtime (internal/live). Any registered
// scheduling policy — the seven paper heuristics or SO-LS — serves a
// configured heterogeneous platform; jobs are submitted over POST /jobs
// at any moment, tracked via GET /jobs/{id}, and the service reports
// latency percentiles, throughput and the full trace analysis of
// completed work on GET /stats. The daemon command (cmd/schedd) and the
// load generator in cmd/paperbench both sit on this package.
package schedd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config describes one service instance.
type Config struct {
	// Platform gives the served platform's per-task costs. Required.
	Platform core.Platform
	// Policy names the serving policy; any sched.ExtendedNames entry.
	Policy string
	// ClockScale is the speedup of the serving clock (model seconds per
	// wall second); non-positive means 1. A platform calibrated in paper
	// seconds can be served thousands of times faster than nominal.
	ClockScale float64
	// MaxBatch caps the count accepted by one POST /jobs (default 10000).
	MaxBatch int
}

// Server is a running service: a live runtime plus its HTTP surface.
type Server struct {
	cfg     Config
	rt      *live.Runtime
	tracker *live.Tracker
	mux     *http.ServeMux
	started time.Time

	// mu serializes submissions against drain: a submission holds the
	// read side, so Drain cannot slip between the draining check and the
	// runtime submit.
	mu       sync.RWMutex
	draining bool
}

// New validates the configuration and starts the runtime (goroutine
// slaves on the scaled wall clock). The returned server is serving
// immediately; wire Handler into an http.Server and call Drain on
// shutdown.
func New(cfg Config) (*Server, error) {
	if err := sched.Validate(cfg.Policy); err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	if cfg.ClockScale <= 0 {
		cfg.ClockScale = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 10000
	}
	tracker := live.NewTracker()
	rt, err := live.New(live.Config{
		Platform:  cfg.Platform,
		Scheduler: sched.New(cfg.Policy),
		World:     live.NewRealTime(cfg.ClockScale),
		Observer:  tracker.Observe,
	})
	if err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	s := &Server{cfg: cfg, rt: rt, tracker: tracker, started: time.Now()}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	rt.Start()
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Policy returns the serving policy's name.
func (s *Server) Policy() string { return s.cfg.Policy }

// Tracker exposes the job-state store (read-only use).
func (s *Server) Tracker() *live.Tracker { return s.tracker }

// Drain gracefully shuts the runtime down: new submissions are rejected
// with 503, every outstanding job completes, the slaves exit. It blocks
// until the runtime has fully drained and returns its error, if any.
func (s *Server) Drain() error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.rt.Drain()
	}
	return s.rt.Wait()
}

// isDraining reports whether the server has begun shutting down.
func (s *Server) isDraining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// SubmitRequest is the POST /jobs body. An empty body submits one
// nominal job.
type SubmitRequest struct {
	// Count is the number of jobs to submit (default 1).
	Count int `json:"count"`
	// CommScale and CompScale perturb the jobs' actual costs (0 means 1).
	CommScale float64 `json:"comm_scale"`
	CompScale float64 `json:"comp_scale"`
}

// SubmitResponse echoes the assigned job IDs.
type SubmitResponse struct {
	IDs []int `json:"ids"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		httpError(w, http.StatusServiceUnavailable, "draining: no new jobs accepted")
		return
	}
	req := SubmitRequest{Count: 1}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 0 || req.Count > s.cfg.MaxBatch {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("count %d outside [1, %d]", req.Count, s.cfg.MaxBatch))
		return
	}
	if req.CommScale < 0 || req.CompScale < 0 {
		httpError(w, http.StatusBadRequest, "scales must be non-negative")
		return
	}
	// One batched admission per request: a single runtime critical
	// section regardless of count, so concurrent producers contend once
	// per batch instead of once per job.
	ids := s.rt.SubmitBatch(live.JobSpec{CommScale: req.CommScale, CompScale: req.CompScale}, req.Count)
	writeJSON(w, http.StatusAccepted, SubmitResponse{IDs: ids})
}

// JobResponse is the GET /jobs/{id} body: the tracked lifecycle plus the
// wall-clock latency for completed jobs.
type JobResponse struct {
	live.JobInfo
	// LatencySeconds is the wall-clock response time (submit → complete),
	// only present once done.
	LatencySeconds float64 `json:"latency_seconds,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id")
		return
	}
	info, ok := s.tracker.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %d", id))
		return
	}
	resp := JobResponse{JobInfo: info}
	if info.State == live.StateDone {
		resp.LatencySeconds = info.Latency() / s.cfg.ClockScale
	}
	writeJSON(w, http.StatusOK, resp)
}

// LatencyStats summarizes completed-job response times in wall seconds.
type LatencyStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// StatsResponse is the GET /stats body. Trace is the shared trace.Report
// encoding over completed jobs, in model time.
type StatsResponse struct {
	Policy        string      `json:"policy"`
	Slaves        int         `json:"slaves"`
	ClockScale    float64     `json:"clock_scale"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Draining      bool        `json:"draining"`
	Jobs          live.Counts `json:"jobs"`
	// ThroughputJobsPerSec is completions per wall second over the
	// window from first submission to last completion.
	ThroughputJobsPerSec float64       `json:"throughput_jobs_per_sec"`
	LatencySeconds       *LatencyStats `json:"latency_seconds,omitempty"`
	Trace                *trace.Report `json:"trace,omitempty"`
}

// Stats assembles the current service statistics from one consistent
// tracker snapshot (also used by the load generator without going
// through HTTP decoding).
func (s *Server) Stats() StatsResponse {
	snap := s.tracker.Stats()
	resp := StatsResponse{
		Policy:        s.cfg.Policy,
		Slaves:        s.cfg.Platform.M(),
		ClockScale:    s.cfg.ClockScale,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.isDraining(),
		Jobs:          snap.Counts,
	}
	if len(snap.Latencies) > 0 {
		// The snapshot's latency slice is this call's private copy, so it
		// can be rescaled and sorted in place — no further copies on a
		// path that serves every /stats request.
		wall := snap.Latencies
		for i, l := range wall {
			wall[i] = l / s.cfg.ClockScale
		}
		sum := stats.SummarizeInPlace(wall)
		resp.LatencySeconds = &LatencyStats{Mean: sum.Mean, P50: sum.P50, P95: sum.P95, P99: sum.P99}
	}
	if snap.Counts.Completed > 0 && snap.Last > snap.First {
		wallWindow := (snap.Last - snap.First) / s.cfg.ClockScale
		resp.ThroughputJobsPerSec = float64(snap.Counts.Completed) / wallWindow
	}
	if recs := snap.Records; len(recs) > 0 {
		// Rebase model time to the first submission: a daemon may idle for
		// a long while before its first job, and an un-rebased makespan
		// (hence every utilization figure) would be dominated by that
		// offset rather than by the served work.
		if snap.First > 0 {
			for i := range recs {
				recs[i].Release -= snap.First
				recs[i].SendStart -= snap.First
				recs[i].Arrive -= snap.First
				recs[i].Start -= snap.First
				recs[i].Complete -= snap.First
			}
		}
		report := trace.Analyze(core.Schedule{
			Instance: core.Instance{Platform: s.cfg.Platform.Clone()},
			Records:  recs,
		})
		resp.Trace = &report
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	OK            bool    `json:"ok"`
	Policy        string  `json:"policy"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:            true,
		Policy:        s.cfg.Policy,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.isDraining(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
