// Package schedd is the streaming scheduling service: an HTTP/JSON front
// end over the sharded cluster layer (internal/cluster), which fans a
// fleet of live master–slave runtimes (internal/live) out over a
// partitioned platform. Any registered scheduling policy — the seven
// paper heuristics or SO-LS — serves each shard; jobs submitted over
// POST /jobs are placed on a shard by the configured placement policy,
// tracked via GET /jobs/{id} under cluster-global IDs, and GET /stats
// reports one section per shard plus a merged cluster view (stats.Merge
// for latency summaries, trace.MergeReports for the schedule analysis).
// With Shards = 1 the service is exactly the PR-3 single-runtime daemon.
// The daemon command (cmd/schedd) and the load generator in
// cmd/paperbench both sit on this package.
package schedd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config describes one service instance.
type Config struct {
	// Platform gives the served platform's per-task costs. Required.
	Platform core.Platform
	// Policy names the serving policy; any sched.ExtendedNames entry.
	// Every shard's master runs its own instance of it.
	Policy string
	// Shards is the number of masters the platform is partitioned
	// across; 0 means 1 (the single-runtime service).
	Shards int
	// Placement names the shard-routing policy; empty means round-robin.
	Placement string
	// Partition selects how slaves are split across shards; empty means
	// striped.
	Partition core.PartitionStrategy
	// ClockScale is the speedup of the serving clock (model seconds per
	// wall second); non-positive means 1. A platform calibrated in paper
	// seconds can be served thousands of times faster than nominal.
	ClockScale float64
	// MaxBatch caps the count accepted by one POST /jobs (default 10000).
	MaxBatch int
	// Steal names the cross-shard work-stealing policy; empty or "none"
	// serves without a rebalancer (the PR-5 cluster, bit for bit).
	Steal string
	// StealInterval is the rebalancer's pass interval; non-positive
	// means 50ms. Ignored unless Steal names an active policy.
	StealInterval time.Duration
}

// Server is a running service: a sharded cluster plus its HTTP surface
// and, when stealing is on, the rebalancer migrating work between
// shards behind it.
type Server struct {
	cfg        Config
	router     *cluster.Router
	rebalancer *cluster.Rebalancer // nil when stealing is off
	mux        *http.ServeMux
	started    time.Time
}

// New validates the configuration and starts the cluster (one live
// runtime per shard, goroutine slaves on the scaled wall clock). The
// returned server is serving immediately; wire Handler into an
// http.Server and call Drain on shutdown.
func New(cfg Config) (*Server, error) {
	if err := sched.Validate(cfg.Policy); err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	if cfg.ClockScale <= 0 {
		cfg.ClockScale = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 10000
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Placement == "" {
		cfg.Placement = cluster.PlacementRoundRobin
	}
	if cfg.Partition == "" {
		cfg.Partition = core.PartitionStriped
	}
	if cfg.Steal == "" {
		cfg.Steal = cluster.StealNone
	}
	if err := cluster.ValidateStealPolicy(cfg.Steal); err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	// Every shard shares one model-time epoch: cross-shard windows (the
	// merged first-submission-to-last-completion span in Stats) compare
	// timestamps across shards, which is only meaningful on one clock.
	epoch := time.Now()
	router, err := cluster.New(cluster.Config{
		Platform:     cfg.Platform,
		NewScheduler: func() sim.Scheduler { return sched.New(cfg.Policy) },
		Shards:       cfg.Shards,
		Placement:    cfg.Placement,
		Partition:    cfg.Partition,
		World:        func(int) live.World { return live.NewRealTimeFrom(cfg.ClockScale, epoch) },
	})
	if err != nil {
		return nil, fmt.Errorf("schedd: %w", err)
	}
	s := &Server{cfg: cfg, router: router, started: time.Now()}
	if cfg.Steal != cluster.StealNone {
		policy, err := cluster.NewStealPolicy(cfg.Steal)
		if err != nil {
			return nil, fmt.Errorf("schedd: %w", err)
		}
		s.rebalancer = cluster.NewRebalancer(router, policy, cfg.StealInterval)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	router.Start()
	if s.rebalancer != nil {
		s.rebalancer.Start()
	}
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Policy returns the serving policy's name.
func (s *Server) Policy() string { return s.cfg.Policy }

// Router exposes the underlying cluster (read-only use).
func (s *Server) Router() *cluster.Router { return s.router }

// Counts returns the merged job counters over every shard. A migrated
// job is submitted on two shards (source, then destination) but stolen
// on the source, so each shard contributes Submitted − Stolen and every
// job counts exactly once — on the shard that ultimately serves it.
// The merged Stolen field reports total migrations for observability;
// it is NOT part of the population identity (which is Submitted ==
// Completed after a drain, stealing or not).
func (s *Server) Counts() live.Counts {
	var total live.Counts
	for _, sh := range s.router.Shards() {
		c := sh.Tracker().CountsSnapshot()
		total.Submitted += c.Submitted - c.Stolen
		total.Dispatched += c.Dispatched
		total.Completed += c.Completed
		total.Stolen += c.Stolen
	}
	return total
}

// Drain gracefully shuts the cluster down: the rebalancer stops first
// (no new migrations begin), then new submissions are rejected with
// 503, in-flight migrations finish re-homing, every outstanding job on
// every shard completes, the slaves exit. It blocks until all shards
// have fully drained and returns the joined error, if any.
func (s *Server) Drain() error {
	if s.rebalancer != nil {
		s.rebalancer.Stop()
	}
	return s.router.Drain()
}

// SubmitRequest is the POST /jobs body. An empty body submits one
// nominal job.
type SubmitRequest struct {
	// Count is the number of jobs to submit (default 1).
	Count int `json:"count"`
	// CommScale and CompScale perturb the jobs' actual costs (0 means 1).
	CommScale float64 `json:"comm_scale"`
	CompScale float64 `json:"comp_scale"`
}

// SubmitResponse echoes the assigned cluster-global job IDs.
type SubmitResponse struct {
	IDs []int `json:"ids"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req := SubmitRequest{Count: 1}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 0 || req.Count > s.cfg.MaxBatch {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("count %d outside [1, %d]", req.Count, s.cfg.MaxBatch))
		return
	}
	if req.CommScale < 0 || req.CompScale < 0 {
		httpError(w, http.StatusBadRequest, "scales must be non-negative")
		return
	}
	// One routed batch per request: per-job placement decisions, but a
	// single runtime critical section per shard (the PR-4 ingest
	// contract, preserved through the router).
	ids, err := s.router.SubmitBatch(live.JobSpec{CommScale: req.CommScale, CompScale: req.CompScale}, req.Count)
	if err != nil {
		if errors.Is(err, cluster.ErrDraining) {
			httpError(w, http.StatusServiceUnavailable, "draining: no new jobs accepted")
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{IDs: ids})
}

// JobResponse is the GET /jobs/{id} body: the tracked lifecycle (global
// job ID, platform-global slave index) plus the shard that served it and
// the wall-clock latency for completed jobs.
type JobResponse struct {
	live.JobInfo
	// Shard is the shard the job was placed on.
	Shard int `json:"shard"`
	// LatencySeconds is the wall-clock response time (submit → complete),
	// only present once done.
	LatencySeconds float64 `json:"latency_seconds,omitempty"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id")
		return
	}
	info, ok := s.router.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %d", id))
		return
	}
	shard, _ := s.router.ShardOf(id)
	resp := JobResponse{JobInfo: info, Shard: shard}
	if info.State == live.StateDone {
		resp.LatencySeconds = info.Latency() / s.cfg.ClockScale
	}
	writeJSON(w, http.StatusOK, resp)
}

// LatencyStats summarizes completed-job response times in wall seconds.
type LatencyStats struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
}

// ShardStats is one shard's section of the GET /stats body. Slave
// indices — in Slaves and inside Trace — are platform-global.
type ShardStats struct {
	Shard  int         `json:"shard"`
	Slaves []int       `json:"slaves"`
	Jobs   live.Counts `json:"jobs"`
	// QueueDepth is the shard's accepted-but-undispatched backlog right
	// now (live, unlike the completed-job statistics).
	QueueDepth           int           `json:"queue_depth"`
	ThroughputJobsPerSec float64       `json:"throughput_jobs_per_sec"`
	LatencySeconds       *LatencyStats `json:"latency_seconds,omitempty"`
	Trace                *trace.Report `json:"trace,omitempty"`
}

// StealStats is the GET /stats stealing stanza, present only when the
// service runs a rebalancer.
type StealStats struct {
	// Policy is the steal policy's registry name.
	Policy string `json:"policy"`
	// IntervalSeconds is the rebalancer's pass interval in wall seconds.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Passes counts planning passes run so far.
	Passes int64 `json:"passes"`
	// JobsMoved counts jobs migrated between shards so far.
	JobsMoved int64 `json:"jobs_moved"`
}

// StatsResponse is the GET /stats body: the merged cluster view at the
// top level (wire-compatible with the single-runtime service: jobs,
// throughput, latency and trace keep their PR-3 names and meaning) plus
// one section per shard. Merged latency percentiles come from
// stats.Merge and are approximate across heterogeneous shards (see that
// function's contract); counts, means and the trace merge are exact.
// Merged job counters subtract each shard's stolen jobs so a migrated
// job counts once (see Server.Counts); per-shard sections keep the raw
// counters, stolen included.
type StatsResponse struct {
	Policy        string  `json:"policy"`
	Slaves        int     `json:"slaves"`
	Shards        int     `json:"shards"`
	Placement     string  `json:"placement"`
	Partition     string  `json:"partition"`
	ClockScale    float64 `json:"clock_scale"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	// Jobs are the merged counters over every shard.
	Jobs live.Counts `json:"jobs"`
	// ThroughputJobsPerSec is merged completions per wall second over the
	// union window from the cluster's first submission to its last
	// completion.
	ThroughputJobsPerSec float64       `json:"throughput_jobs_per_sec"`
	LatencySeconds       *LatencyStats `json:"latency_seconds,omitempty"`
	Trace                *trace.Report `json:"trace,omitempty"`
	// Steal reports the rebalancer's progress; absent when stealing is
	// off.
	Steal *StealStats `json:"steal,omitempty"`
	// PerShard holds one section per shard, in shard order.
	PerShard []ShardStats `json:"per_shard"`
}

// Stats assembles the current service statistics — one consistent
// tracker snapshot per shard, then the merged cluster view (also used by
// the load generator without going through HTTP decoding).
func (s *Server) Stats() StatsResponse {
	resp := StatsResponse{
		Policy:        s.cfg.Policy,
		Slaves:        s.cfg.Platform.M(),
		Shards:        len(s.router.Shards()),
		Placement:     s.cfg.Placement,
		Partition:     string(s.cfg.Partition),
		ClockScale:    s.cfg.ClockScale,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Draining:      s.router.Draining(),
	}
	var latParts []stats.Summary
	var traceParts []trace.Report
	first, last := 0.0, 0.0
	windowSet := false
	for _, sh := range s.router.Shards() {
		snap := sh.Tracker().Stats()
		sec := ShardStats{
			Shard:      sh.Index(),
			Slaves:     sh.Slaves(),
			Jobs:       snap.Counts,
			QueueDepth: sh.Runtime().Pending(),
		}
		resp.Jobs.Submitted += snap.Counts.Submitted - snap.Counts.Stolen
		resp.Jobs.Dispatched += snap.Counts.Dispatched
		resp.Jobs.Completed += snap.Counts.Completed
		resp.Jobs.Stolen += snap.Counts.Stolen
		if len(snap.Latencies) > 0 {
			// The snapshot's latency slice is this call's private copy, so
			// it can be rescaled and sorted in place.
			wall := snap.Latencies
			for i, l := range wall {
				wall[i] = l / s.cfg.ClockScale
			}
			sum := stats.SummarizeInPlace(wall)
			latParts = append(latParts, sum)
			sec.LatencySeconds = &LatencyStats{Mean: sum.Mean, P50: sum.P50, P95: sum.P95, P99: sum.P99}
		}
		if snap.Counts.Completed > 0 {
			if snap.Last > snap.First {
				sec.ThroughputJobsPerSec = float64(snap.Counts.Completed) / ((snap.Last - snap.First) / s.cfg.ClockScale)
			}
			if !windowSet || snap.First < first {
				first = snap.First
			}
			if snap.Last > last {
				last = snap.Last
			}
			windowSet = true
		}
		if recs := snap.Records; len(recs) > 0 {
			// Rebase model time to the shard's first submission: a daemon
			// may idle before its first job, and an un-rebased makespan
			// (hence every utilization figure) would be dominated by that
			// offset rather than by the served work.
			if snap.First > 0 {
				for i := range recs {
					recs[i].Release -= snap.First
					recs[i].SendStart -= snap.First
					recs[i].Arrive -= snap.First
					recs[i].Start -= snap.First
					recs[i].Complete -= snap.First
				}
			}
			report := trace.Analyze(core.Schedule{
				Instance: core.Instance{Platform: sh.Platform().Clone()},
				Records:  recs,
			})
			// Relabel shard-local slave indices to platform-global ones so
			// the per-shard section and the merged view both speak global
			// indices.
			for i := range report.Slaves {
				report.Slaves[i].Slave = sh.GlobalSlave(report.Slaves[i].Slave)
			}
			sec.Trace = &report
			traceParts = append(traceParts, report)
		}
		resp.PerShard = append(resp.PerShard, sec)
	}
	if len(latParts) > 0 {
		sum := stats.Merge(latParts...)
		resp.LatencySeconds = &LatencyStats{Mean: sum.Mean, P50: sum.P50, P95: sum.P95, P99: sum.P99}
	}
	if len(traceParts) > 0 {
		merged := trace.MergeReports(traceParts...)
		resp.Trace = &merged
	}
	if resp.Jobs.Completed > 0 && last > first {
		resp.ThroughputJobsPerSec = float64(resp.Jobs.Completed) / ((last - first) / s.cfg.ClockScale)
	}
	if b := s.rebalancer; b != nil {
		resp.Steal = &StealStats{
			Policy:          b.Policy(),
			IntervalSeconds: b.Interval().Seconds(),
			Passes:          b.Passes(),
			JobsMoved:       b.Moved(),
		}
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// HealthResponse is the GET /healthz body. QueueDepth reports the
// cluster-wide accepted-but-undispatched backlog (per shard in
// ShardQueueDepths), fed by the runtime's Load snapshot.
type HealthResponse struct {
	OK               bool    `json:"ok"`
	Policy           string  `json:"policy"`
	Shards           int     `json:"shards"`
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Draining         bool    `json:"draining"`
	QueueDepth       int     `json:"queue_depth"`
	ShardQueueDepths []int   `json:"shard_queue_depths"`
	// Steals is the total number of jobs migrated between shards (0
	// forever when stealing is off).
	Steals int `json:"steals"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	depths := make([]int, 0, len(s.router.Shards()))
	total := 0
	for _, l := range s.router.Loads() {
		depths = append(depths, l.QueueDepth())
		total += l.QueueDepth()
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:               true,
		Policy:           s.cfg.Policy,
		Shards:           len(s.router.Shards()),
		UptimeSeconds:    time.Since(s.started).Seconds(),
		Draining:         s.router.Draining(),
		QueueDepth:       total,
		ShardQueueDepths: depths,
		Steals:           s.router.Stolen(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
