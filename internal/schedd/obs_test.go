package schedd

// Observability surface tests: the Prometheus exposition and JSON vars,
// readiness vs liveness, per-job span traces (including error paths),
// the decision audit, pprof gating, and a scrape-under-load race test.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
)

func newTestHTTP(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func scrape(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, "LS")
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 8}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	waitCompleted(t, ts, 8)

	code, body, ctype := scrape(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ctype)
	}
	for _, want := range []string{
		"# TYPE schedd_jobs_submitted_total counter",
		"# TYPE schedd_queue_depth gauge",
		"# TYPE schedd_job_latency_seconds histogram",
		`schedd_jobs_submitted_total{shard="0"} 8`,
		`schedd_jobs_completed_total{shard="0"} 8`,
		`schedd_job_latency_seconds_count 8`,
		`le="+Inf"`,
		"schedd_uptime_seconds",
		"schedd_draining 0",
		"schedd_events_dropped_total",
		`schedd_http_requests_total{route="jobs"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics lacks %q:\n%s", want, body)
		}
	}

	// /debug/vars: the same registry as flat JSON, with matching counts.
	code, body, ctype = scrape(t, ts.URL+"/debug/vars")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("GET /debug/vars: %d %q", code, ctype)
	}
	vars := map[string]any{}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
	if got := vars[`schedd_jobs_completed_total{shard="0"}`]; got != 8.0 {
		t.Fatalf("vars completed = %v, want 8", got)
	}
}

func TestMetricsDisabled(t *testing.T) {
	s, err := New(Config{
		Platform:       core.NewPlatform([]float64{1}, []float64{2}),
		Policy:         "LS",
		ClockScale:     4000,
		DisableMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, s)
	for _, path := range []string{"/metrics", "/debug/vars"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Fatalf("GET %s with metrics off: %d", path, code)
		}
	}
	// The service itself still works.
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 2}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestPprofGating(t *testing.T) {
	// Off by default.
	_, ts := testServer(t, "LS")
	if code := getJSON(t, ts.URL+"/debug/pprof/", nil); code != http.StatusNotFound {
		t.Fatalf("pprof reachable without -pprof: %d", code)
	}
	// Opt-in mounts the index.
	s, err := New(Config{
		Platform:   core.NewPlatform([]float64{1}, []float64{2}),
		Policy:     "LS",
		ClockScale: 4000,
		Pprof:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestHTTP(t, s)
	code, body, _ := scrape(t, ts2.URL+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestReadyzAcrossDrain(t *testing.T) {
	s, err := New(Config{
		Platform: core.NewPlatform(
			[]float64{0.2, 0.2, 0.2, 0.2},
			[]float64{1, 1, 1, 1}),
		Policy:        "LS",
		Shards:        2,
		ClockScale:    4000,
		Steal:         "threshold",
		StealInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, s)

	var ready ReadyResponse
	if code := getJSON(t, ts.URL+"/readyz", &ready); code != http.StatusOK {
		t.Fatalf("GET /readyz: %d", code)
	}
	if !ready.Ready || ready.Draining || len(ready.Shards) != 2 {
		t.Fatalf("ready %+v", ready)
	}
	for _, sh := range ready.Shards {
		if sh.LiveSlaves != 2 || sh.Draining {
			t.Fatalf("shard row %+v", sh)
		}
	}
	// With stealing on the rebalancer age is reported (-1 until the
	// first pass, then a real age).
	if ready.StealLastPassAgeSeconds == nil {
		t.Fatal("no steal last-pass age with stealing on")
	}

	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// Liveness stays 200; readiness flips to 503.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after drain: %d", code)
	}
	var after ReadyResponse
	if code := getJSON(t, ts.URL+"/readyz", &after); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d", code)
	}
	if after.Ready || !after.Draining {
		t.Fatalf("drained readiness %+v", after)
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := testServer(t, "LS")
	var resp SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 6}, &resp); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	waitCompleted(t, ts, 6)

	for _, id := range resp.IDs {
		var tr TraceResponse
		if code := getJSON(t, ts.URL+fmt.Sprintf("/jobs/%d/trace", id), &tr); code != http.StatusOK {
			t.Fatalf("GET trace %d: %d", id, code)
		}
		if tr.Job != id || tr.State != live.StateDone || tr.ClockScale != 4000 {
			t.Fatalf("trace %+v", tr)
		}
		// Completed jobs carry the full four-stage decomposition, in
		// lifecycle order, contiguous, tiling the root interval.
		if len(tr.Span.Stages) != 4 {
			t.Fatalf("job %d: %d stages", id, len(tr.Span.Stages))
		}
		for i, name := range obs.StageNames() {
			st := tr.Span.Stages[i]
			if st.Name != name || st.Duration() < 0 {
				t.Fatalf("job %d stage %d = %+v, want %s", id, i, st, name)
			}
			if i > 0 && tr.Span.Stages[i-1].End != st.Start {
				t.Fatalf("job %d stages not contiguous", id)
			}
		}
		if tr.Span.Stages[0].Start != tr.Span.Start || tr.Span.Stages[3].End != tr.Span.End {
			t.Fatalf("job %d span does not tile: %+v", id, tr.Span)
		}
	}

	// Error paths.
	if code := getJSON(t, ts.URL+"/jobs/xyz/trace", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed trace id: %d", code)
	}
	if code := getJSON(t, ts.URL+"/jobs/99999/trace", nil); code != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d", code)
	}
}

func TestDecisionsEndpoint(t *testing.T) {
	s, ts := shardedServer(t, "least-loaded")
	var resp SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 5}, &resp); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}

	var dec DecisionsResponse
	if code := getJSON(t, ts.URL+"/decisions", &dec); code != http.StatusOK {
		t.Fatalf("GET /decisions: %d", code)
	}
	if !dec.Enabled || len(dec.Decisions) != 5 {
		t.Fatalf("decisions %+v", dec)
	}
	// Newest first: the last submitted job leads, and every placement
	// carries one score per shard with the chosen shard weakly best.
	if dec.Decisions[0].Job != resp.IDs[4] {
		t.Fatalf("newest decision audits job %d, want %d", dec.Decisions[0].Job, resp.IDs[4])
	}
	for _, d := range dec.Decisions {
		if d.Kind != obs.DecisionPlace || len(d.Scores) != 3 {
			t.Fatalf("decision %+v", d)
		}
		for _, sc := range d.Scores {
			if d.Scores[d.To] > sc {
				t.Fatalf("chose shard %d with scores %v", d.To, d.Scores)
			}
		}
	}

	// ?n caps the window; bad n is a 400.
	var one DecisionsResponse
	if code := getJSON(t, ts.URL+"/decisions?n=1", &one); code != http.StatusOK || len(one.Decisions) != 1 {
		t.Fatalf("decisions?n=1: %d %+v", code, one)
	}
	for _, bad := range []string{"0", "-3", "many"} {
		if code := getJSON(t, ts.URL+"/decisions?n="+bad, nil); code != http.StatusBadRequest {
			t.Fatalf("decisions?n=%s: %d", bad, code)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionsDisabled(t *testing.T) {
	s, err := New(Config{
		Platform:   core.NewPlatform([]float64{1}, []float64{2}),
		Policy:     "LS",
		ClockScale: 4000,
		AuditDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, s)
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 3}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	var dec DecisionsResponse
	if code := getJSON(t, ts.URL+"/decisions", &dec); code != http.StatusOK {
		t.Fatalf("GET /decisions: %d", code)
	}
	if dec.Enabled || len(dec.Decisions) != 0 {
		t.Fatalf("audit off but decisions = %+v", dec)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsStageBreakdown(t *testing.T) {
	_, ts := testServer(t, "SO-LS")
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 10}, nil); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	stats := waitCompleted(t, ts, 10)
	b := stats.StageSeconds
	if b == nil || b.Jobs != 10 {
		t.Fatalf("stage breakdown %+v", b)
	}
	// Wall-clock domain: at clock scale 4000 the model-seconds service
	// times (a few seconds) shrink to well under a second.
	for _, st := range []obs.StageSummary{b.Queue, b.Transfer, b.SlaveWait, b.Service} {
		if st.Mean < 0 || st.Max < st.Mean || st.Max > 1 {
			t.Fatalf("stage summary %+v out of range", st)
		}
	}
	if b.Service.Max <= 0 || b.Transfer.Max <= 0 {
		t.Fatalf("service/transfer stages empty: %+v", b)
	}
	// Per-shard sections carry their own breakdowns that merge to the
	// cluster view.
	jobs := 0
	for _, sec := range stats.PerShard {
		if sec.StageSeconds != nil {
			jobs += sec.StageSeconds.Jobs
		}
	}
	if jobs != 10 {
		t.Fatalf("per-shard breakdowns cover %d jobs, want 10", jobs)
	}
}

// TestScrapeUnderLoad races every read-only observability endpoint
// against live submissions and the rebalancer. Run under -race in CI:
// the assertion is simply that nothing tears, panics or 500s.
func TestScrapeUnderLoad(t *testing.T) {
	s, err := New(Config{
		Platform: core.NewPlatform(
			[]float64{0.2, 0.2, 0.2, 0.2, 0.2, 0.2},
			[]float64{1, 1, 1, 1, 1, 1}),
		Policy:        "LS",
		Shards:        3,
		Placement:     "pinned",
		ClockScale:    2000,
		Steal:         "threshold",
		StealInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, s)

	var firstID int
	var resp SubmitResponse
	if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 10}, &resp); code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d", code)
	}
	firstID = resp.IDs[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: keep the cluster busy and the audit ring churning.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if code := postJSON(t, ts.URL+"/jobs", SubmitRequest{Count: 20}, nil); code != http.StatusAccepted {
				t.Errorf("POST /jobs under load: %d", code)
				return
			}
		}
	}()
	// Readers: hammer every observability endpoint until writers finish.
	paths := []string{
		"/metrics", "/debug/vars", "/stats", "/decisions", "/readyz", "/healthz",
		fmt.Sprintf("/jobs/%d/trace", firstID),
	}
	for _, path := range paths {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, _, _ := scrape(t, ts.URL+path)
				if code != http.StatusOK {
					t.Errorf("GET %s under load: %d", path, code)
					return
				}
			}
		}(path)
	}
	waitCompleted(t, ts, 10+20*20)
	close(stop)
	wg.Wait()
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
}
