package textplot

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "23.5"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	// All value columns start at the same offset.
	idx1 := strings.Index(lines[2], "1")
	idx2 := strings.Index(lines[3], "23.5")
	if idx1 != idx2 {
		t.Fatalf("misaligned columns:\n%s", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatal("missing separator")
	}
}

func TestBarsScaling(t *testing.T) {
	out := Bars([]string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	aBlocks := strings.Count(lines[0], "█")
	bBlocks := strings.Count(lines[1], "█")
	if bBlocks != 10 || aBlocks != 5 {
		t.Fatalf("bar widths %d, %d; want 5, 10\n%s", aBlocks, bBlocks, out)
	}
	if !strings.Contains(lines[0], "1.000") || !strings.Contains(lines[1], "2.000") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars([]string{"x"}, []float64{0}, 10)
	if !strings.Contains(out, "0.000") {
		t.Fatalf("zero bar: %q", out)
	}
}

func TestGantt(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 1}, []float64{3, 7})
	inst := core.NewInstance(pl, core.ReleasesAt(0, 1))
	s := core.Schedule{
		Instance: inst,
		Records: []core.Record{
			{Task: 0, Slave: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 4},
			{Task: 1, Slave: 1, Release: 1, SendStart: 1, Arrive: 2, Start: 2, Complete: 9},
		},
	}
	out := Gantt(s, 60)
	if !strings.Contains(out, "port") || !strings.Contains(out, "P1") || !strings.Contains(out, "P2") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "-") {
		t.Fatalf("missing paint:\n%s", out)
	}
	if !strings.Contains(out, "9.000") {
		t.Fatalf("missing makespan label:\n%s", out)
	}
}

// TestGanttWidthClamping pins the paint clamping table-driven: long
// schedules whose scaled coordinates round past the row, tiny widths
// where the makespan label outruns the axis, and defensive negative
// times must all render without panicking and stay within maxWidth+1
// columns between the row borders.
func TestGanttWidthClamping(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 1}, []float64{3, 7})
	cases := []struct {
		name     string
		records  []core.Record
		maxWidth int
	}{
		{
			"long schedule narrow width",
			[]core.Record{
				{Task: 0, Slave: 0, SendStart: 0, Arrive: 10, Start: 10, Complete: 12345.678},
				{Task: 1, Slave: 1, SendStart: 10, Arrive: 20, Start: 20, Complete: 9999.999},
			},
			20,
		},
		{
			"width smaller than makespan label",
			[]core.Record{
				{Task: 0, Slave: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 123456.5},
			},
			4,
		},
		{
			"rounding at the right edge",
			[]core.Record{
				// Complete == makespan paints exactly the last column; a
				// send starting at the makespan must clamp, not overflow.
				{Task: 0, Slave: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 7},
				{Task: 1, Slave: 1, SendStart: 7, Arrive: 7, Start: 7, Complete: 7},
			},
			50,
		},
		{
			"negative times clamp to column zero",
			[]core.Record{
				{Task: 0, Slave: 0, SendStart: -2, Arrive: -1, Start: -1, Complete: 5},
			},
			30,
		},
		{
			"width one",
			[]core.Record{
				{Task: 0, Slave: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 4},
			},
			1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := core.Schedule{Instance: core.NewInstance(pl, core.ReleasesAt(0, 1)), Records: c.records}
			out := Gantt(s, c.maxWidth)
			for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
				open := strings.Index(line, "|")
				close := strings.LastIndex(line, "|")
				if open < 0 || close <= open {
					continue // axis line
				}
				if w := close - open - 1; w != c.maxWidth+1 {
					t.Fatalf("row width %d, want %d:\n%s", w, c.maxWidth+1, out)
				}
			}
			if !strings.Contains(out, "#") {
				t.Fatalf("missing computation paint:\n%s", out)
			}
		})
	}
}

func TestGanttEmpty(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{1})
	out := Gantt(core.Schedule{Instance: core.Instance{Platform: pl}}, 40)
	if !strings.Contains(out, "empty") {
		t.Fatalf("empty schedule: %q", out)
	}
}
