// Package textplot renders the reproduction's tables, bar charts and
// Gantt diagrams as plain text, standing in for the paper's figures.
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders a horizontal bar chart: one labelled bar per value, scaled
// so the largest value spans width cells.
func Bars(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxLabel := 0
	maxVal := 0.0
	for i, l := range labels {
		if len([]rune(l)) > maxLabel {
			maxLabel = len([]rune(l))
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	var b strings.Builder
	for i, l := range labels {
		fmt.Fprintf(&b, "%-*s ", maxLabel, l)
		n := int(math.Round(values[i] / maxVal * float64(width)))
		if n < 0 {
			n = 0
		}
		b.WriteString(strings.Repeat("█", n))
		fmt.Fprintf(&b, " %.3f\n", values[i])
	}
	return b.String()
}

// Gantt renders a schedule: one row for the master's port and one per
// slave, with sends as '▒' and computations as '█', at the given number
// of characters per time unit column (auto-scaled to fit maxWidth).
func Gantt(s core.Schedule, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 100
	}
	makespan := s.Makespan()
	if makespan <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(maxWidth) / makespan
	m := s.Instance.Platform.M()

	rows := make([][]byte, m+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", maxWidth+1))
	}
	paint := func(row []byte, from, to float64, ch byte) {
		a := int(from * scale)
		z := int(to * scale)
		// Clamp both ends into the row: float rounding on long schedules
		// can push from*scale to maxWidth+1, and defensive inputs
		// (negative times) must not index below zero.
		if a < 0 {
			a = 0
		}
		if a >= len(row) {
			a = len(row) - 1
		}
		if z >= len(row) {
			z = len(row) - 1
		}
		for x := a; x <= z; x++ {
			row[x] = ch
		}
	}
	recs := append([]core.Record(nil), s.Records...)
	sort.Slice(recs, func(a, b int) bool { return recs[a].SendStart < recs[b].SendStart })
	for _, r := range recs {
		paint(rows[0], r.SendStart, r.Arrive, '-')
		paint(rows[r.Slave+1], r.Start, r.Complete, '#')
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s |%s|\n", "port", rows[0])
	for j := 0; j < m; j++ {
		fmt.Fprintf(&b, "%-6s |%s|\n", fmt.Sprintf("P%d", j+1), rows[j+1])
	}
	pad := maxWidth - len(fmt.Sprintf("%.3f", makespan)) + 1
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%-6s 0%s%.3f\n", "", strings.Repeat(" ", pad), makespan)
	return b.String()
}
