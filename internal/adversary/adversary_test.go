package adversary

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestAdversaryMetadata(t *testing.T) {
	advs := All()
	if len(advs) != 9 {
		t.Fatalf("%d adversaries", len(advs))
	}
	wantBound := []float64{
		1.25,
		(2 + 4*math.Sqrt2) / 7,
		(5 - math.Sqrt(7)) / 2,
		1.2,
		1.25,
		23.0 / 22.0,
		(1 + math.Sqrt(3)) / 2,
		(math.Sqrt(13) - 1) / 2,
		math.Sqrt2,
	}
	wantClass := []core.Class{
		core.CommHomogeneous, core.CommHomogeneous, core.CommHomogeneous,
		core.CompHomogeneous, core.CompHomogeneous, core.CompHomogeneous,
		core.Heterogeneous, core.Heterogeneous, core.Heterogeneous,
	}
	wantObj := []core.Objective{
		core.Makespan, core.SumFlow, core.MaxFlow,
		core.Makespan, core.MaxFlow, core.SumFlow,
		core.Makespan, core.SumFlow, core.MaxFlow,
	}
	for i, adv := range advs {
		if adv.Theorem() != i+1 {
			t.Errorf("adversary %d reports theorem %d", i, adv.Theorem())
		}
		if math.Abs(adv.Bound()-wantBound[i]) > 1e-12 {
			t.Errorf("theorem %d bound %v, want %v", i+1, adv.Bound(), wantBound[i])
		}
		if got := adv.Platform().Classify(); got != wantClass[i] {
			t.Errorf("theorem %d platform class %v, want %v", i+1, got, wantClass[i])
		}
		if adv.Objective() != wantObj[i] {
			t.Errorf("theorem %d objective %v, want %v", i+1, adv.Objective(), wantObj[i])
		}
		if adv.Slack() < 0 || adv.Slack() > 0.02 {
			t.Errorf("theorem %d slack %v out of the documented range", i+1, adv.Slack())
		}
		if !strings.Contains(adv.Name(), "Thm") {
			t.Errorf("bad name %q", adv.Name())
		}
	}
}

// TestNoDeterministicSchedulerBeatsAnyBound is the central validation of
// Section 3: the nine theorems claim no deterministic algorithm achieves
// a competitive ratio below the bound, so every scheduler in the registry
// — the seven paper heuristics, pinned, anti-greedy, inverted and
// procrastinating ones — must score at least bound − slack against the
// corresponding adversary.
func TestNoDeterministicSchedulerBeatsAnyBound(t *testing.T) {
	for _, adv := range All() {
		schedulers := sched.Adversarial(adv.Platform().M())
		schedulers = append(schedulers,
			sched.NewRandomizedLS(0.2, 1),
			sched.NewRandomizedLS(0.2, 2),
			sched.NewRandomizedLS(0.5, 3),
		)
		for _, s := range schedulers {
			out, err := Play(adv, s)
			if err != nil {
				t.Fatalf("%s vs %s: %v", adv.Name(), s.Name(), err)
			}
			if out.Beaten() {
				t.Errorf("BOUND BEATEN: %v", out)
			}
			if out.Ratio < 1-1e-9 {
				t.Errorf("ratio below 1 (beats offline optimum!): %v", out)
			}
			if out.Tasks < 1 || out.Tasks > 4 {
				t.Errorf("%s vs %s: unexpected instance size %d", adv.Name(), s.Name(), out.Tasks)
			}
		}
	}
}

// TestLSHitsTheoremBoundsExactly: list scheduling walks straight into the
// adversary traps of Theorems 1 and 6, achieving exactly the bound — the
// proofs' worst case is tight for it.
func TestLSHitsTheoremBoundsExactly(t *testing.T) {
	cases := []struct {
		adv  Adversary
		want float64
	}{
		{NewTheorem1(), 1.25},        // 10/8
		{NewTheorem6(), 23.0 / 22.0}, // 23/22
	}
	for _, tc := range cases {
		out, err := Play(tc.adv, sched.NewLS())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out.Ratio-tc.want) > 1e-9 {
			t.Errorf("%s vs LS: ratio %v, want exactly %v", tc.adv.Name(), out.Ratio, tc.want)
		}
	}
}

func TestSRPTOnTheorem1TakesTheP2Branch(t *testing.T) {
	// SRPT ships the second task to the free slow slave, triggering the
	// proof's case 1 with ratio 9/7.
	out, err := Play(NewTheorem1(), sched.NewSRPT())
	if err != nil {
		t.Fatal(err)
	}
	if out.Tasks != 2 {
		t.Fatalf("expected the 2-task branch, got %d tasks", out.Tasks)
	}
	if math.Abs(out.Ratio-9.0/7.0) > 1e-9 {
		t.Fatalf("SRPT ratio %v, want 9/7", out.Ratio)
	}
}

func TestProcrastinatorPunished(t *testing.T) {
	// A scheduler that has not committed by the checkpoint lands in the
	// "did not begin to send" branch: the single-task instance where its
	// idling alone costs it the bound.
	out, err := Play(NewTheorem1(), sched.NewProcrastinator(2.5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Tasks != 1 {
		t.Fatalf("expected the 1-task branch, got %d tasks", out.Tasks)
	}
	if out.Ratio < 1.25 {
		t.Fatalf("procrastinator ratio %v, want ≥ 5/4", out.Ratio)
	}
}

func TestPinnedToSlowSlaveStopsEarly(t *testing.T) {
	out, err := Play(NewTheorem1(), sched.NewPinned(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Tasks != 1 {
		t.Fatalf("expected a 1-task instance, got %d", out.Tasks)
	}
	if math.Abs(out.Ratio-2) > 1e-9 { // (c+p₂)/(c+p₁) = 8/4
		t.Fatalf("ratio %v, want 2", out.Ratio)
	}
}

func TestOutcomeString(t *testing.T) {
	out, err := Play(NewTheorem9(), sched.NewLS())
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Thm 9") || !strings.Contains(s, "√2") {
		t.Fatalf("String() = %q", s)
	}
}

func TestOutcomeSchedulesAreValid(t *testing.T) {
	for _, adv := range All() {
		out, err := Play(adv, sched.NewLS())
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ValidateSchedule(out.Schedule); err != nil {
			t.Errorf("%s: %v", adv.Name(), err)
		}
	}
}

// TestAdversaryForcesP1FirstBranch confirms the adversary logic itself:
// rational algorithms must put the first task on P1 (the proofs' forced
// move), receiving the full instance.
func TestAdversaryForcesP1FirstBranch(t *testing.T) {
	wantTasks := map[int]int{1: 3, 2: 3, 3: 2, 4: 4, 5: 4, 6: 4, 7: 3, 8: 3, 9: 3}
	for _, adv := range All() {
		out, err := Play(adv, sched.NewLS())
		if err != nil {
			t.Fatal(err)
		}
		if out.Tasks != wantTasks[adv.Theorem()] {
			t.Errorf("theorem %d vs LS: %d tasks, want %d (LS should take the forced branch)",
				adv.Theorem(), out.Tasks, wantTasks[adv.Theorem()])
		}
	}
}

func TestPlayPropagatesDeadlock(t *testing.T) {
	_, err := Play(NewTheorem1(), asleep{})
	if err == nil {
		t.Fatal("sleeping scheduler must surface an error")
	}
}

type asleep struct{}

func (asleep) Name() string               { return "asleep" }
func (asleep) Reset(core.Platform)        {}
func (asleep) Decide(sim.View) sim.Action { return sim.Idle() }
