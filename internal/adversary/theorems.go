package adversary

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// spec is the common implementation of Adversary: a platform, a bound and
// a reactive decision tree.
type spec struct {
	theorem   int
	class     core.Class
	obj       core.Objective
	pl        core.Platform
	bound     float64
	boundExpr string
	slack     float64
	run       func(d *Driver)
}

func (s *spec) Theorem() int              { return s.theorem }
func (s *spec) Objective() core.Objective { return s.obj }
func (s *spec) Platform() core.Platform   { return s.pl.Clone() }
func (s *spec) Bound() float64            { return s.bound }
func (s *spec) BoundExpr() string         { return s.boundExpr }
func (s *spec) Slack() float64            { return s.slack }
func (s *spec) Run(d *Driver)             { s.run(d) }

func (s *spec) Name() string {
	return fmt.Sprintf("Thm %d: %v / %v", s.theorem, s.class, s.obj)
}

// NewTheorem1 builds the adversary of Theorem 1 (communication-
// homogeneous platforms, makespan, bound 5/4): platform c = 1,
// p = (3, 7). Task i at 0; at t₁ = c the adversary stops unless i went to
// P1, in which case task j arrives; at t₂ = 2c it stops if j went to P2,
// and otherwise releases a final task k.
func NewTheorem1() Adversary {
	return &spec{
		theorem:   1,
		class:     core.CommHomogeneous,
		obj:       core.Makespan,
		pl:        core.NewPlatform([]float64{1, 1}, []float64{3, 7}),
		bound:     1.25,
		boundExpr: "5/4",
		run: func(d *Driver) {
			i := d.Inject(0)
			d.AdvanceTo(1) // t₁ = c
			if slave, ok := d.StartedOn(i); !ok || slave != 0 {
				return // cases 1 and 2: no further task
			}
			j := d.Inject(1)
			d.AdvanceTo(2) // t₂ = 2c
			if slave, ok := d.StartedOn(j); ok && slave == 1 {
				return // case 1: j on P2, stop
			}
			d.Inject(2) // cases 2 and 3: a last task k at 2c
		},
	}
}

// NewTheorem2 builds the adversary of Theorem 2 (communication-
// homogeneous, sum-flow, bound (2+4√2)/7): platform c = 1,
// p = (2, 4√2−2). The decision tree mirrors Theorem 1's.
func NewTheorem2() Adversary {
	return &spec{
		theorem:   2,
		class:     core.CommHomogeneous,
		obj:       core.SumFlow,
		pl:        core.NewPlatform([]float64{1, 1}, []float64{2, 4*math.Sqrt2 - 2}),
		bound:     (2 + 4*math.Sqrt2) / 7,
		boundExpr: "(2+4√2)/7",
		run: func(d *Driver) {
			i := d.Inject(0)
			d.AdvanceTo(1) // t₁ = c
			if slave, ok := d.StartedOn(i); !ok || slave != 0 {
				return
			}
			j := d.Inject(1)
			d.AdvanceTo(2) // t₂ = 2c
			if slave, ok := d.StartedOn(j); ok && slave == 1 {
				return
			}
			d.Inject(2)
		},
	}
}

// NewTheorem3 builds the adversary of Theorem 3 (communication-
// homogeneous, max-flow, bound (5−√7)/2): platform c = 1,
// p = ((2+√7)/3, (1+2√7)/3); checkpoint τ = (4−√7)/3, after which a
// single further task j arrives if i went to P1.
func NewTheorem3() Adversary {
	s7 := math.Sqrt(7)
	tau := (4 - s7) / 3
	return &spec{
		theorem:   3,
		class:     core.CommHomogeneous,
		obj:       core.MaxFlow,
		pl:        core.NewPlatform([]float64{1, 1}, []float64{(2 + s7) / 3, (1 + 2*s7) / 3}),
		bound:     (5 - s7) / 2,
		boundExpr: "(5-√7)/2",
		run: func(d *Driver) {
			i := d.Inject(0)
			d.AdvanceTo(tau)
			if slave, ok := d.StartedOn(i); !ok || slave != 0 {
				return
			}
			d.Inject(tau)
		},
	}
}

// Theorem4P is the computation time used to instantiate Theorem 4's
// platform (the proof takes p = max{5, 12/(25ε)} → ∞; the bound is
// approached with a 12/(5(5p+2)) deficit).
const Theorem4P = 100.0

// NewTheorem4 builds the adversary of Theorem 4 (computation-homogeneous,
// makespan, bound 6/5): platform p₁ = p₂ = p, c = (1, p/2). Task i at 0;
// at time p/2 the adversary stops unless i went to P1, in which case
// three tasks j, k, l arrive at once.
func NewTheorem4() Adversary {
	p := Theorem4P
	return &spec{
		theorem:   4,
		class:     core.CompHomogeneous,
		obj:       core.Makespan,
		pl:        core.NewPlatform([]float64{1, p / 2}, []float64{p, p}),
		bound:     1.2,
		boundExpr: "6/5",
		slack:     12 / (5 * (5*p + 2)),
		run: func(d *Driver) {
			i := d.Inject(0)
			d.AdvanceTo(p / 2)
			if slave, ok := d.StartedOn(i); !ok || slave != 0 {
				return
			}
			d.Inject(p / 2)
			d.Inject(p / 2)
			d.Inject(p / 2)
		},
	}
}

// Theorem5Eps is the ε used for Theorem 5's platform (c₁ = ε; the bound
// is approached with an ε/2 deficit).
const Theorem5Eps = 0.02

// NewTheorem5 builds the adversary of Theorem 5 (computation-homogeneous,
// max-flow, bound 5/4): platform c = (ε, 1), p = 2 − ε; checkpoint
// τ = 1 − ε, then three tasks at once if i went to P1.
func NewTheorem5() Adversary {
	eps := Theorem5Eps
	p := 2 - eps
	tau := 1 - eps
	return &spec{
		theorem:   5,
		class:     core.CompHomogeneous,
		obj:       core.MaxFlow,
		pl:        core.NewPlatform([]float64{eps, 1}, []float64{p, p}),
		bound:     1.25,
		boundExpr: "5/4",
		slack:     eps / 2,
		run: func(d *Driver) {
			i := d.Inject(0)
			d.AdvanceTo(tau)
			if slave, ok := d.StartedOn(i); !ok || slave != 0 {
				return
			}
			d.Inject(tau)
			d.Inject(tau)
			d.Inject(tau)
		},
	}
}

// NewTheorem6 builds the adversary of Theorem 6 (computation-homogeneous,
// sum-flow, bound 23/22): platform c = (1, 2), p = 3; checkpoint τ = c₂,
// then three tasks at once if i went to P1.
func NewTheorem6() Adversary {
	return &spec{
		theorem:   6,
		class:     core.CompHomogeneous,
		obj:       core.SumFlow,
		pl:        core.NewPlatform([]float64{1, 2}, []float64{3, 3}),
		bound:     23.0 / 22.0,
		boundExpr: "23/22",
		run: func(d *Driver) {
			i := d.Inject(0)
			d.AdvanceTo(2) // τ = c₂
			if slave, ok := d.StartedOn(i); !ok || slave != 0 {
				return
			}
			d.Inject(2)
			d.Inject(2)
			d.Inject(2)
		},
	}
}

// Theorem7Eps is the ε used for Theorem 7's platform (p₁ = ε; the bound
// is approached with deficit below ε/2).
const Theorem7Eps = 0.02

// NewTheorem7 builds the adversary of Theorem 7 (fully heterogeneous,
// makespan, bound (1+√3)/2): three slaves with p₁ = ε, p₂ = p₃ = 1+√3,
// c₁ = 1+√3, c₂ = c₃ = 1. Checkpoint at time 1; two more tasks if i went
// to P1.
func NewTheorem7() Adversary {
	eps := Theorem7Eps
	s3 := math.Sqrt(3)
	return &spec{
		theorem:   7,
		class:     core.Heterogeneous,
		obj:       core.Makespan,
		pl:        core.NewPlatform([]float64{1 + s3, 1, 1}, []float64{eps, 1 + s3, 1 + s3}),
		bound:     (1 + s3) / 2,
		boundExpr: "(1+√3)/2",
		slack:     eps / 2,
		run: func(d *Driver) {
			i := d.Inject(0)
			d.AdvanceTo(1)
			if slave, ok := d.StartedOn(i); !ok || slave != 0 {
				return
			}
			d.Inject(1)
			d.Inject(1)
		},
	}
}

// Theorem8C1 and Theorem8Eps instantiate Theorem 8's platform (the bound
// is approached as c₁ → ∞).
const (
	Theorem8C1  = 10000.0
	Theorem8Eps = 1.0
)

// NewTheorem8 builds the adversary of Theorem 8 (fully heterogeneous,
// sum-flow, bound (√13−1)/2): three slaves with p₁ = ε, c₂ = c₃ = 1,
// p₂ = p₃ = τ + c₁ − 1 where τ = (√(52c₁²+12c₁+1) − (6c₁+1))/4 ≈
// c₁(√13−3)/2. Checkpoint at τ; two more tasks if i went to P1.
func NewTheorem8() Adversary {
	c1 := Theorem8C1
	eps := Theorem8Eps
	tau := (math.Sqrt(52*c1*c1+12*c1+1) - (6*c1 + 1)) / 4
	p23 := tau + c1 - 1
	return &spec{
		theorem:   8,
		class:     core.Heterogeneous,
		obj:       core.SumFlow,
		pl:        core.NewPlatform([]float64{c1, 1, 1}, []float64{eps, p23, p23}),
		bound:     (math.Sqrt(13) - 1) / 2,
		boundExpr: "(√13-1)/2",
		slack:     0.001,
		run: func(d *Driver) {
			i := d.Inject(0)
			d.AdvanceTo(tau)
			if slave, ok := d.StartedOn(i); !ok || slave != 0 {
				return
			}
			d.Inject(tau)
			d.Inject(tau)
		},
	}
}

// Theorem9Eps instantiates Theorem 9's p₁ (the proof requires
// c₁ + p₁ < p₂, i.e. ε < 1).
const Theorem9Eps = 0.02

// NewTheorem9 builds the adversary of Theorem 9 (fully heterogeneous,
// max-flow, bound √2): three slaves with c₁ = 2(1+√2), c₂ = c₃ = 1,
// p₁ = ε, p₂ = p₃ = √2·c₁ − 1. Checkpoint τ = (√2−1)c₁ = 2 exactly; two
// more tasks if i went to P1.
func NewTheorem9() Adversary {
	eps := Theorem9Eps
	c1 := 2 * (1 + math.Sqrt2)
	p23 := math.Sqrt2*c1 - 1
	tau := (math.Sqrt2 - 1) * c1 // = 2 exactly in ℝ
	return &spec{
		theorem:   9,
		class:     core.Heterogeneous,
		obj:       core.MaxFlow,
		pl:        core.NewPlatform([]float64{c1, 1, 1}, []float64{eps, p23, p23}),
		bound:     math.Sqrt2,
		boundExpr: "√2",
		slack:     0.006,
		run: func(d *Driver) {
			i := d.Inject(0)
			d.AdvanceTo(tau)
			if slave, ok := d.StartedOn(i); !ok || slave != 0 {
				return
			}
			d.Inject(tau)
			d.Inject(tau)
		},
	}
}
