// Package adversary implements the nine adversary constructions behind
// the paper's Section-3 lower-bound theorems. Each adversary releases a
// first task, observes the decisions a deterministic algorithm has
// committed by the proof's checkpoint times, and reacts by releasing (or
// withholding) further tasks. The algorithm's objective value divided by
// the exact offline optimum of the resulting instance is its performance
// ratio on that instance; every theorem guarantees that this ratio is at
// least the stated bound for every deterministic algorithm, which the
// test suite confirms for the whole scheduler registry.
//
// The theorems for the ε-parameterized platforms (4, 5, 7, 8, 9) only
// reach their bound in the limit; the concrete parameters chosen here get
// within the documented Slack of it.
package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/optimal"
	"repro/internal/sim"
)

// Adversary is one theorem's reactive instance builder.
type Adversary interface {
	// Theorem returns the paper's theorem number (1–9).
	Theorem() int
	// Name describes platform class and objective, e.g.
	// "Thm 1: comm-homogeneous / makespan".
	Name() string
	// Objective is the metric the theorem bounds.
	Objective() core.Objective
	// Platform returns the theorem's platform.
	Platform() core.Platform
	// Bound is the theorem's competitive-ratio lower bound.
	Bound() float64
	// BoundExpr is the exact closed form, e.g. "(5-√7)/2".
	BoundExpr() string
	// Slack is how far below Bound the guaranteed ratio may fall due to
	// the concrete (non-limit) parameter choice; zero for the exact
	// constructions.
	Slack() float64
	// Run plays the adversary's decision tree against the algorithm
	// driving the engine.
	Run(d *Driver)
}

// Driver is the adversary's interface to a live simulation.
type Driver struct {
	e *sim.Engine
}

// Inject releases one nominal task at the given time.
func (d *Driver) Inject(at float64) core.TaskID {
	return d.e.InjectTask(core.Task{Release: at, CommScale: 1, CompScale: 1})
}

// AdvanceTo runs the simulation (and hence the algorithm) up to time t.
func (d *Driver) AdvanceTo(t float64) { d.e.AdvanceTo(t) }

// StartedOn reports whether the algorithm has begun sending the task by
// the current time, and to which slave.
func (d *Driver) StartedOn(task core.TaskID) (slave int, ok bool) {
	slave, _, ok = d.e.Started(task)
	return slave, ok
}

// Outcome is the result of one adversary game.
type Outcome struct {
	Adversary string
	Theorem   int
	Scheduler string
	Objective core.Objective
	Bound     float64
	BoundExpr string
	Slack     float64
	Value     float64 // the algorithm's objective value
	Optimal   float64 // exact offline optimum of the final instance
	Ratio     float64
	Tasks     int
	Schedule  core.Schedule
}

// Beaten reports whether the algorithm beat the theorem bound (which
// would falsify the theorem — or reveal a bug).
func (o Outcome) Beaten() bool {
	return o.Ratio < o.Bound-o.Slack-1e-9
}

// String renders a one-line report.
func (o Outcome) String() string {
	return fmt.Sprintf("Thm %d vs %-14s ratio %.4f (bound %s ≈ %.4f, opt %.4f, alg %.4f)",
		o.Theorem, o.Scheduler, o.Ratio, o.BoundExpr, o.Bound, o.Optimal, o.Value)
}

// Play runs one adversary game against a scheduler and scores it.
func Play(adv Adversary, s sim.Scheduler) (Outcome, error) {
	e := sim.New(adv.Platform(), s, nil)
	d := &Driver{e: e}
	adv.Run(d)
	schedule, err := e.Run()
	if err != nil {
		return Outcome{}, fmt.Errorf("adversary %q vs %s: %w", adv.Name(), s.Name(), err)
	}
	if err := core.ValidateSchedule(schedule); err != nil {
		return Outcome{}, fmt.Errorf("adversary %q vs %s: infeasible schedule: %w", adv.Name(), s.Name(), err)
	}
	opt := optimal.Solve(schedule.Instance, adv.Objective()).Value
	val := adv.Objective().Value(schedule)
	return Outcome{
		Adversary: adv.Name(),
		Theorem:   adv.Theorem(),
		Scheduler: s.Name(),
		Objective: adv.Objective(),
		Bound:     adv.Bound(),
		BoundExpr: adv.BoundExpr(),
		Slack:     adv.Slack(),
		Value:     val,
		Optimal:   opt,
		Ratio:     val / opt,
		Tasks:     len(schedule.Instance.Tasks),
		Schedule:  schedule,
	}, nil
}

// All returns the nine theorem adversaries in theorem order.
func All() []Adversary {
	return []Adversary{
		NewTheorem1(),
		NewTheorem2(),
		NewTheorem3(),
		NewTheorem4(),
		NewTheorem5(),
		NewTheorem6(),
		NewTheorem7(),
		NewTheorem8(),
		NewTheorem9(),
	}
}
