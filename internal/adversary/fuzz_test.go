package adversary

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// fuzzSched is a seeded arbitrary-but-deterministic scheduler: it sends
// each task to a pseudo-random slave, sometimes after a pseudo-random
// delay. Any fixed seed yields a deterministic algorithm, so every
// theorem bound must hold against every seed — a fuzz over the space of
// deterministic algorithms far beyond the named heuristics.
type fuzzSched struct {
	seed    uint64
	state   uint64
	m       int
	delayed map[core.TaskID]float64
}

func newFuzzSched(seed uint64) *fuzzSched { return &fuzzSched{seed: seed} }

func (f *fuzzSched) Name() string { return "fuzz" }

func (f *fuzzSched) Reset(pl core.Platform) {
	f.state = f.seed*0x9e3779b97f4a7c15 + 1
	f.m = pl.M()
	f.delayed = map[core.TaskID]float64{}
}

func (f *fuzzSched) next() uint64 {
	x := f.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	f.state = x
	return x
}

func (f *fuzzSched) Decide(v sim.View) sim.Action {
	task, ok := v.FirstPending()
	if !ok {
		return sim.Idle()
	}
	due, decided := f.delayed[task]
	if !decided {
		// One coin per task: 1-in-4 chance of procrastinating a bit.
		if f.next()%4 == 0 {
			due = v.Now() + float64(f.next()%2000)/1000.0 // up to 2 s
		} else {
			due = v.Now()
		}
		f.delayed[task] = due
	}
	if v.Now() < due {
		return sim.Wait(due)
	}
	return sim.Send(task, int(f.next()%uint64(f.m)))
}

// TestFuzzDeterministicSchedulersRespectAllBounds plays 40 random
// deterministic algorithms against each of the nine adversaries.
func TestFuzzDeterministicSchedulersRespectAllBounds(t *testing.T) {
	for _, adv := range All() {
		for seed := uint64(1); seed <= 40; seed++ {
			out, err := Play(adv, newFuzzSched(seed))
			if err != nil {
				t.Fatalf("%s vs fuzz(%d): %v", adv.Name(), seed, err)
			}
			if out.Beaten() {
				t.Errorf("BOUND BEATEN by fuzz seed %d: %v", seed, out)
			}
			if err := core.ValidateSchedule(out.Schedule); err != nil {
				t.Errorf("fuzz seed %d produced invalid schedule: %v", seed, err)
			}
		}
	}
}

// TestFuzzReplaysDeterministically: the same seed must reproduce the same
// game exactly, or the "deterministic algorithm" premise would be void.
func TestFuzzReplaysDeterministically(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		a, err := Play(NewTheorem7(), newFuzzSched(seed))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Play(NewTheorem7(), newFuzzSched(seed))
		if err != nil {
			t.Fatal(err)
		}
		if a.Ratio != b.Ratio || a.Tasks != b.Tasks {
			t.Fatalf("seed %d: replay diverged (%v/%d vs %v/%d)",
				seed, a.Ratio, a.Tasks, b.Ratio, b.Tasks)
		}
	}
}
