package mpiexp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/mpi"
)

// HardwareSpec models the physical machines of the paper's testbed: five
// desktops with different network cards and CPUs behind a switch.
type HardwareSpec struct {
	LinkLatency   []float64 // seconds per message
	LinkBandwidth []float64 // bytes per second
	Speed         []float64 // flops per second
}

// M returns the number of slaves.
func (hw HardwareSpec) M() int { return len(hw.Speed) }

// validate checks dimensional consistency.
func (hw HardwareSpec) validate() error {
	if hw.M() == 0 || len(hw.LinkLatency) != hw.M() || len(hw.LinkBandwidth) != hw.M() {
		return fmt.Errorf("mpiexp: inconsistent hardware spec (m=%d, lat=%d, bw=%d)",
			hw.M(), len(hw.LinkLatency), len(hw.LinkBandwidth))
	}
	for j := 0; j < hw.M(); j++ {
		if hw.LinkBandwidth[j] <= 0 || hw.Speed[j] <= 0 || hw.LinkLatency[j] < 0 {
			return fmt.Errorf("mpiexp: non-physical hardware for slave %d", j)
		}
	}
	return nil
}

// Calibration is the outcome of the paper's Section-4.2 protocol: probe
// one matrix per slave, measure base costs, and pick repetition counts
// that shape the cluster into the target platform.
type Calibration struct {
	MatrixSize int
	BaseComm   []float64 // measured ĉ_j: one probe transfer
	BaseComp   []float64 // measured p̂_j: one determinant
	NC, NP     []int     // repetition counts per task
	Target     core.Platform
	Achieved   core.Platform // nc_j·ĉ_j and np_j·p̂_j
}

// MaxRelativeError reports the worst relative deviation of the achieved
// platform from the target, over both cost vectors.
func (cal Calibration) MaxRelativeError() float64 {
	worst := 0.0
	for j := range cal.NC {
		ec := math.Abs(cal.Achieved.C[j]-cal.Target.C[j]) / cal.Target.C[j]
		ep := math.Abs(cal.Achieved.P[j]-cal.Target.P[j]) / cal.Target.P[j]
		worst = math.Max(worst, math.Max(ec, ep))
	}
	return worst
}

// Calibrate runs the probe protocol on the emulated hardware: the master
// ships one matrix to each slave in turn and times the transfer and the
// determinant; repetition counts are then the rounded ratios to the
// target costs, exactly as the paper scales its physical machines.
func Calibrate(hw HardwareSpec, target core.Platform, matrixN int) (Calibration, error) {
	if err := hw.validate(); err != nil {
		return Calibration{}, err
	}
	if target.M() != hw.M() {
		return Calibration{}, fmt.Errorf("mpiexp: target has %d slaves, hardware %d", target.M(), hw.M())
	}
	if matrixN <= 0 {
		matrixN = 30
	}
	m := hw.M()
	world := mpi.NewWorld(m + 1)
	bytes := linalg.Bytes(matrixN)
	flops := linalg.DetFlops(matrixN)
	for j := 0; j < m; j++ {
		world.SetLink(0, j+1, mpi.LinkCost{
			Latency:  hw.LinkLatency[j],
			ByteTime: 1 / hw.LinkBandwidth[j],
		})
		world.SetLink(j+1, 0, mpi.LinkCost{})
	}

	baseComm := make([]float64, m)
	baseComp := make([]float64, m)
	world.Rank(0, "prober", func(r *mpi.Rank) {
		for j := 0; j < m; j++ {
			sendStart := r.Now()
			r.Send(j+1, tagTask, bytes, taskMsg{task: j, compDur: flops / hw.Speed[j], reps: 1})
			baseComm[j] = r.Now() - sendStart
			msg := r.Recv()
			ack := msg.Payload.(ackMsg)
			baseComp[j] = ack.complete - ack.start
		}
		for j := 0; j < m; j++ {
			r.Send(j+1, tagQuit, 0, nil)
		}
	})
	for j := 0; j < m; j++ {
		j := j
		world.Rank(j+1, fmt.Sprintf("slave-%d", j+1), func(r *mpi.Rank) {
			slaveLoop(r, j, false)
		})
	}
	if err := world.Run(); err != nil {
		return Calibration{}, fmt.Errorf("mpiexp: calibration run failed: %w", err)
	}

	cal := Calibration{
		MatrixSize: matrixN,
		BaseComm:   baseComm,
		BaseComp:   baseComp,
		NC:         make([]int, m),
		NP:         make([]int, m),
		Target:     target.Clone(),
	}
	achC := make([]float64, m)
	achP := make([]float64, m)
	for j := 0; j < m; j++ {
		cal.NC[j] = repetitions(target.C[j], baseComm[j])
		cal.NP[j] = repetitions(target.P[j], baseComp[j])
		achC[j] = float64(cal.NC[j]) * baseComm[j]
		achP[j] = float64(cal.NP[j]) * baseComp[j]
	}
	cal.Achieved = core.NewPlatform(achC, achP)
	return cal, nil
}

// repetitions rounds the ratio target/base to the nearest positive count.
func repetitions(target, base float64) int {
	n := int(math.Round(target / base))
	if n < 1 {
		n = 1
	}
	return n
}
