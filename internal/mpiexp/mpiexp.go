// Package mpiexp reproduces the paper's Section-4 experimental setup on
// the emulated message-passing cluster: a master rank drives one of the
// on-line schedulers; slave ranks receive matrices, compute determinants
// and acknowledge completions. The same sim.Scheduler implementations run
// here and in the discrete-event engine, and a cross-validation test
// requires both substrates to produce identical schedules.
//
// The paper's calibration protocol is reproduced too: probe one matrix
// per slave to estimate its link and compute costs, then choose
// repetition counts nc_j and np_j that shape the physical cluster into
// the desired heterogeneous platform (Section 4.2).
package mpiexp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/mpi"
	"repro/internal/sim"
)

// Message tags.
const (
	tagTask = iota
	tagAck
	tagQuit
)

// taskMsg is the master→slave payload: which task, how much virtual
// computation it costs, and optionally a real matrix to factor.
type taskMsg struct {
	task    int
	compDur float64
	reps    int
	matrix  *linalg.Matrix
}

// ackMsg is the slave→master completion notification.
type ackMsg struct {
	task     int
	slave    int
	start    float64
	complete float64
	checksum float64
}

// Config describes one emulated experiment.
type Config struct {
	// Platform gives the target per-task costs (seconds) of each slave.
	Platform core.Platform
	// Tasks is the workload (releases and perturbation scales).
	Tasks []core.Task
	// Scheduler is the master's policy — any sim.Scheduler.
	Scheduler sim.Scheduler
	// MatrixSize is the side length of the task matrices. It only sets
	// the nominal message size; virtual costs come from Platform.
	MatrixSize int
	// ComputePayload makes slaves really factor matrices (checksummed);
	// virtual time is unaffected. Keep small for large workloads.
	ComputePayload bool
	// Seed drives matrix generation when ComputePayload is set.
	Seed int64
}

// Result is the outcome of an emulated run.
type Result struct {
	Schedule core.Schedule
	Checksum float64 // sum of computed determinants (0 unless ComputePayload)
}

// Run executes the experiment in virtual time and returns the schedule
// observed by the master, validated against the one-port model.
func Run(cfg Config) (Result, error) {
	if cfg.MatrixSize <= 0 {
		cfg.MatrixSize = 30
	}
	inst := core.NewInstance(cfg.Platform, cfg.Tasks)
	pl := inst.Platform
	m := pl.M()
	n := len(inst.Tasks)
	if n == 0 {
		return Result{Schedule: core.Schedule{Instance: inst}}, nil
	}

	world := mpi.NewWorld(m + 1)
	bytes := linalg.Bytes(cfg.MatrixSize)
	for j := 0; j < m; j++ {
		// Per-byte pricing makes the transfer of a nominal matrix cost
		// exactly c_j, and a perturbed one c_j × CommScale.
		world.SetLink(0, j+1, mpi.LinkCost{ByteTime: pl.C[j] / bytes})
		// Completion notifications are control messages: negligible size,
		// and the master's receive side is free under the bidirectional
		// one-port model, so the return link is free.
		world.SetLink(j+1, 0, mpi.LinkCost{})
	}

	ms := &master{
		cfg:   cfg,
		pl:    pl,
		tasks: inst.Tasks,
	}
	ms.drv = sim.NewDriver(pl, func() float64 { return ms.r.Now() })
	world.Rank(0, "master", ms.run)
	for j := 0; j < m; j++ {
		j := j
		world.Rank(j+1, fmt.Sprintf("slave-%d", j+1), func(r *mpi.Rank) {
			slaveLoop(r, j, cfg.ComputePayload)
		})
	}
	if err := world.Run(); err != nil {
		return Result{}, fmt.Errorf("mpiexp: %w", err)
	}
	s := ms.drv.Schedule()
	if err := core.ValidateSchedule(s); err != nil {
		return Result{}, fmt.Errorf("mpiexp: emulation produced an infeasible schedule: %w", err)
	}
	return Result{Schedule: s, Checksum: ms.checksum}, nil
}

// master is the rank-0 program: the scheduling policy's event loop. All
// of its scheduler-facing bookkeeping lives in a sim.Driver — the same
// master-side state the live runtime (internal/live) uses — so the two
// substrates cannot drift apart.
type master struct {
	cfg      Config
	pl       core.Platform
	tasks    []core.Task
	drv      *sim.Driver
	released int
	checksum float64
	r        *mpi.Rank
}

func (ms *master) run(r *mpi.Rank) {
	ms.r = r
	ms.cfg.Scheduler.Reset(ms.pl.Clone())
	view := ms.drv.View()
	n := len(ms.tasks)
	for ms.drv.Done() < n {
		now := r.Now()
		ms.admitReleases(now)
		ms.drainAcks(now)
		if ms.drv.Done() >= n {
			break // the drain just consumed the final completion
		}
		if ms.drv.PendingCount() == 0 {
			ms.blockUntil(ms.nextReleaseAfter(now))
			continue
		}
		act := ms.cfg.Scheduler.Decide(view)
		switch act.Kind {
		case sim.ActSend:
			ms.dispatch(act.Task, act.Slave)
		case sim.ActWait:
			if act.Until <= now {
				panic(fmt.Sprintf("mpiexp: scheduler %s waits until %v which is not after now %v",
					ms.cfg.Scheduler.Name(), act.Until, now))
			}
			ms.blockUntil(math.Min(act.Until, ms.nextReleaseAfter(now)))
		case sim.ActIdle:
			ms.blockUntil(ms.nextReleaseAfter(now))
		default:
			panic(fmt.Sprintf("mpiexp: unknown action kind %d", act.Kind))
		}
	}
	for j := 0; j < ms.pl.M(); j++ {
		r.Send(j+1, tagQuit, 0, nil)
	}
}

// admitReleases moves tasks released by now into the pending queue.
func (ms *master) admitReleases(now float64) {
	for ms.released < len(ms.tasks) && ms.tasks[ms.released].Release <= now {
		ms.drv.Admit(ms.tasks[ms.released])
		ms.released++
	}
}

// drainAcks processes every completion notification already delivered.
func (ms *master) drainAcks(now float64) {
	for {
		msg, ok := ms.r.RecvDeadline(now)
		if !ok {
			return
		}
		ms.handleAck(msg)
	}
}

func (ms *master) handleAck(msg mpi.Message) {
	ack := msg.Payload.(ackMsg)
	ms.drv.MarkCompleted(core.TaskID(ack.task), ack.slave, ack.start, ack.complete)
	ms.checksum += ack.checksum
}

// blockUntil waits for a completion notification or the deadline.
func (ms *master) blockUntil(deadline float64) {
	if msg, ok := ms.r.RecvDeadline(deadline); ok {
		ms.handleAck(msg)
	}
}

// nextReleaseAfter returns the earliest pending release strictly after
// now, or +Inf.
func (ms *master) nextReleaseAfter(now float64) float64 {
	if ms.released < len(ms.tasks) {
		return ms.tasks[ms.released].Release
	}
	return math.Inf(1)
}

// dispatch ships a pending task: the Send call blocks the master for the
// actual (perturbed) transfer time, which is exactly the one-port
// occupancy.
func (ms *master) dispatch(task core.TaskID, j int) {
	idx := int(task)
	ms.drv.MarkSent(ms.cfg.Scheduler.Name(), task, j)
	msg := taskMsg{
		task:    idx,
		compDur: ms.pl.P[j] * ms.tasks[idx].EffComp(),
		reps:    1,
	}
	if ms.cfg.ComputePayload {
		mat := checksumMatrix(ms.cfg.Seed, idx, ms.cfg.MatrixSize)
		msg.matrix = &mat
	}
	size := linalg.Bytes(ms.cfg.MatrixSize) * ms.tasks[idx].EffComm()
	ms.r.Send(j+1, tagTask, size, msg)
	ms.drv.MarkArrived(task, j, ms.r.Now())
}

// slaveLoop is the slave program: receive, compute, acknowledge.
func slaveLoop(r *mpi.Rank, j int, payload bool) {
	for {
		msg := r.Recv()
		if msg.Tag == tagQuit {
			return
		}
		tm := msg.Payload.(taskMsg)
		start := r.Now()
		sum := 0.0
		if payload && tm.matrix != nil {
			for rep := 0; rep < tm.reps; rep++ {
				sum += tm.matrix.Det()
			}
		}
		r.Compute(tm.compDur)
		r.Send(0, tagAck, 0, ackMsg{
			task:     tm.task,
			slave:    j,
			start:    start,
			complete: r.Now(),
			checksum: sum,
		})
	}
}

// checksumMatrix generates the task's matrix deterministically from the
// experiment seed and task index.
func checksumMatrix(seed int64, task, n int) linalg.Matrix {
	rng := newSplitMix(uint64(seed)*0x9e3779b97f4a7c15 + uint64(task+1))
	m := linalg.NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = rng.float()*2 - 1
	}
	return m
}

// splitMix is a tiny deterministic generator so payload matrices do not
// depend on math/rand stream state.
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
