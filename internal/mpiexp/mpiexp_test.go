package mpiexp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestCrossValidationAgainstDES is the substrate-equivalence check called
// out in DESIGN.md: the same scheduler, platform and workload must produce
// the same schedule on the goroutine-based message-passing emulation as
// on the discrete-event engine — for every paper heuristic, on every
// platform class, with and without size perturbation.
func TestCrossValidationAgainstDES(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		class := core.Classes[trial%4]
		pl := core.Random(rng, class, core.GenConfig{M: 2 + rng.Intn(3)})
		cfg := workload.Config{
			N:       30,
			Pattern: workload.Poisson,
			Rate:    2,
		}
		if trial%2 == 1 {
			cfg.Perturb = 0.1 // schedulers see nominal costs; engines charge actual
		}
		tasks := workload.Generate(rng, cfg)
		for _, name := range sched.Names() {
			des, err := sim.Simulate(pl, sched.New(name), tasks)
			if err != nil {
				t.Fatalf("trial %d %s DES: %v", trial, name, err)
			}
			emu, err := Run(Config{
				Platform:   pl,
				Tasks:      tasks,
				Scheduler:  sched.New(name),
				MatrixSize: 32, // power-of-two payload keeps float costs bitwise equal
			})
			if err != nil {
				t.Fatalf("trial %d %s emulation: %v", trial, name, err)
			}
			for i := range des.Records {
				a, b := des.Records[i], emu.Schedule.Records[i]
				if a.Slave != b.Slave {
					t.Fatalf("trial %d %s task %d: DES slave %d, emulation slave %d",
						trial, name, i, a.Slave, b.Slave)
				}
				for _, pair := range [][2]float64{
					{a.SendStart, b.SendStart},
					{a.Arrive, b.Arrive},
					{a.Start, b.Start},
					{a.Complete, b.Complete},
				} {
					if math.Abs(pair[0]-pair[1]) > 1e-9 {
						t.Fatalf("trial %d %s task %d: DES %+v vs emulation %+v",
							trial, name, i, a, b)
					}
				}
			}
		}
	}
}

func TestEmulatedScheduleIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pl := core.Random(rng, core.Heterogeneous, core.GenConfig{})
	res, err := Run(Config{
		Platform:  pl,
		Tasks:     core.Bag(40),
		Scheduler: sched.NewLS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateSchedule(res.Schedule); err != nil {
		t.Fatal(err)
	}
	if !core.WorkConserving(res.Schedule) {
		t.Fatal("LS idled on the emulated cluster")
	}
}

func TestComputePayloadChecksum(t *testing.T) {
	pl := core.NewPlatform([]float64{0.1, 0.1}, []float64{0.5, 0.9})
	run := func() float64 {
		res, err := Run(Config{
			Platform:       pl,
			Tasks:          core.Bag(6),
			Scheduler:      sched.NewLS(),
			MatrixSize:     8,
			ComputePayload: true,
			Seed:           99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Checksum
	}
	a, b := run(), run()
	if a == 0 {
		t.Fatal("payload checksum is zero — determinants not computed")
	}
	if a != b {
		t.Fatalf("checksum not reproducible: %v vs %v", a, b)
	}
}

func TestEmptyWorkload(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{1})
	res, err := Run(Config{Platform: pl, Tasks: nil, Scheduler: sched.NewLS()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Records) != 0 {
		t.Fatal("records for empty workload")
	}
}

func TestCalibrationMeasuresHardware(t *testing.T) {
	hw := HardwareSpec{
		LinkLatency:   []float64{0.001, 0.002},
		LinkBandwidth: []float64{1e6, 5e5},
		Speed:         []float64{1e7, 2e7},
	}
	target := core.NewPlatform([]float64{0.05, 0.2}, []float64{0.4, 0.1})
	cal, err := Calibrate(hw, target, 30)
	if err != nil {
		t.Fatal(err)
	}
	// Base costs must equal the hardware model exactly: latency + bytes/bw
	// and flops/speed.
	bytes := 8.0 * 30 * 30
	flops := 2.0 * 30 * 30 * 30 / 3
	for j := 0; j < 2; j++ {
		wantC := hw.LinkLatency[j] + bytes/hw.LinkBandwidth[j]
		if math.Abs(cal.BaseComm[j]-wantC) > 1e-12 {
			t.Errorf("slave %d base comm %v, want %v", j, cal.BaseComm[j], wantC)
		}
		wantP := flops / hw.Speed[j]
		if math.Abs(cal.BaseComp[j]-wantP) > 1e-12 {
			t.Errorf("slave %d base comp %v, want %v", j, cal.BaseComp[j], wantP)
		}
		if cal.NC[j] < 1 || cal.NP[j] < 1 {
			t.Errorf("slave %d repetition counts %d, %d", j, cal.NC[j], cal.NP[j])
		}
		if math.Abs(cal.Achieved.C[j]-float64(cal.NC[j])*cal.BaseComm[j]) > 1e-12 {
			t.Errorf("achieved comm inconsistent with repetitions")
		}
	}
	// Rounding to整 repetitions keeps the achieved platform within half a
	// base cost of the target.
	for j := 0; j < 2; j++ {
		if math.Abs(cal.Achieved.C[j]-target.C[j]) > cal.BaseComm[j]/2+1e-12 {
			t.Errorf("slave %d achieved comm %v too far from target %v", j, cal.Achieved.C[j], target.C[j])
		}
	}
	if cal.MaxRelativeError() < 0 {
		t.Error("negative relative error")
	}
}

func TestCalibrationGuards(t *testing.T) {
	target := core.NewPlatform([]float64{1}, []float64{1})
	if _, err := Calibrate(HardwareSpec{}, target, 10); err == nil {
		t.Error("empty hardware accepted")
	}
	bad := HardwareSpec{LinkLatency: []float64{0}, LinkBandwidth: []float64{-1}, Speed: []float64{1}}
	if _, err := Calibrate(bad, target, 10); err == nil {
		t.Error("negative bandwidth accepted")
	}
	two := HardwareSpec{LinkLatency: []float64{0, 0}, LinkBandwidth: []float64{1, 1}, Speed: []float64{1, 1}}
	if _, err := Calibrate(two, target, 10); err == nil {
		t.Error("slave-count mismatch accepted")
	}
}

func TestCalibratedRunReachesTargetShape(t *testing.T) {
	// End-to-end Section 4.2: calibrate a synthetic heterogeneous cluster
	// against a target platform, then run a workload on the achieved
	// platform; the heterogeneity (cost ratios) must match the target's
	// within the rounding granularity.
	hw := HardwareSpec{
		LinkLatency:   []float64{0, 0, 0},
		LinkBandwidth: []float64{4e6, 2e6, 1e6},
		Speed:         []float64{4e8, 1e8, 2e8},
	}
	target := core.NewPlatform([]float64{0.02, 0.1, 0.5}, []float64{1, 4, 0.5})
	cal, err := Calibrate(hw, target, 30)
	if err != nil {
		t.Fatal(err)
	}
	if cal.MaxRelativeError() > 0.5 {
		t.Fatalf("calibration error %v too large", cal.MaxRelativeError())
	}
	res, err := Run(Config{
		Platform:  cal.Achieved,
		Tasks:     core.Bag(20),
		Scheduler: sched.NewLS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan() <= 0 {
		t.Fatal("empty schedule")
	}
}
