package core

import (
	"fmt"
	"slices"
	"sort"
)

// Eps is the tolerance used when validating floating-point schedules.
// Virtual times in this codebase come from sums of at most a few thousand
// float64 operations, so 1e-6 absolute slack is far beyond accumulated
// error while still catching genuine modeling bugs.
const Eps = 1e-6

// ValidateMultiport checks a schedule against the macro-dataflow variant
// of the model (paper Section 5): everything ValidateSchedule checks
// except the master's one-port exclusivity.
func ValidateMultiport(s Schedule) error {
	return validate(s, false)
}

// ValidateSchedule checks a schedule against every constraint of the
// paper's model:
//
//  1. exactly one record per task, matching the instance's task set;
//  2. no send starts before the task's release;
//  3. sends occupy the master's port exclusively (one-port model) and
//     last exactly c_j scaled by the task's communication factor;
//  4. a slave starts a task no earlier than its arrival, computes for
//     exactly p_j scaled by the task's computation factor, and never
//     overlaps two computations;
//  5. slaves execute their tasks in arrival order (FIFO queues).
//
// It returns the first violation found, or nil for a feasible schedule.
func ValidateSchedule(s Schedule) error {
	return validate(s, true)
}

func validate(s Schedule, onePort bool) error {
	inst := s.Instance
	pl := inst.Platform
	if len(s.Records) != len(inst.Tasks) {
		return fmt.Errorf("core: %d records for %d tasks", len(s.Records), len(inst.Tasks))
	}
	seen := make([]bool, len(inst.Tasks))
	for _, r := range s.Records {
		if r.Task < 0 || int(r.Task) >= len(inst.Tasks) {
			return fmt.Errorf("core: record for unknown task %d", r.Task)
		}
		if seen[r.Task] {
			return fmt.Errorf("core: duplicate record for task %d", r.Task)
		}
		seen[r.Task] = true
		task := inst.Tasks[r.Task]
		if r.Slave < 0 || r.Slave >= pl.M() {
			return fmt.Errorf("core: task %d assigned to unknown slave %d", r.Task, r.Slave)
		}
		if r.Release != task.Release {
			return fmt.Errorf("core: task %d record release %v differs from instance %v", r.Task, r.Release, task.Release)
		}
		if r.SendStart < task.Release-Eps {
			return fmt.Errorf("core: task %d sent at %v before release %v", r.Task, r.SendStart, task.Release)
		}
		wantComm := pl.C[r.Slave] * task.EffComm()
		if diff := r.Arrive - r.SendStart - wantComm; diff < -Eps || diff > Eps {
			return fmt.Errorf("core: task %d communication lasted %v, want %v", r.Task, r.Arrive-r.SendStart, wantComm)
		}
		if r.Start < r.Arrive-Eps {
			return fmt.Errorf("core: task %d started %v before arrival %v", r.Task, r.Start, r.Arrive)
		}
		wantComp := pl.P[r.Slave] * task.EffComp()
		if diff := r.Complete - r.Start - wantComp; diff < -Eps || diff > Eps {
			return fmt.Errorf("core: task %d computation lasted %v, want %v", r.Task, r.Complete-r.Start, wantComp)
		}
	}

	// One-port: the master's sends must not overlap. Every registered
	// scheduler dispatches the oldest pending task, so engine schedules
	// arrive here already in send order — check adjacency in place and
	// fall back to a sorted copy only for out-of-order record lists
	// (hand-built schedules in tests, adversarial traces).
	if onePort {
		byPort := s.Records
		if !slices.IsSortedFunc(byPort, cmpSendStart) {
			byPort = append([]Record(nil), s.Records...)
			slices.SortFunc(byPort, cmpSendStart)
		}
		for i := 1; i < len(byPort); i++ {
			if byPort[i].SendStart < byPort[i-1].Arrive-Eps {
				return fmt.Errorf("core: one-port violation: send of task %d at %v overlaps send of task %d ending %v",
					byPort[i].Task, byPort[i].SendStart, byPort[i-1].Task, byPort[i-1].Arrive)
			}
		}
	}

	// Per-slave: computations must not overlap and must follow arrival
	// order. Grouping is a counting pass over record indices (no record
	// copies, no comparison sort); within a slave, records in list order
	// are in compute order for any schedule the engine emits, so the rare
	// unsorted bucket sorts just its own indices.
	m := pl.M()
	offsets := make([]int, m+1)
	for i := range s.Records {
		offsets[s.Records[i].Slave+1]++
	}
	for j := 0; j < m; j++ {
		offsets[j+1] += offsets[j]
	}
	order := make([]int32, len(s.Records))
	fill := make([]int, m)
	copy(fill, offsets[:m])
	for i := range s.Records {
		j := s.Records[i].Slave
		order[fill[j]] = int32(i)
		fill[j]++
	}
	for j := 0; j < m; j++ {
		bucket := order[offsets[j]:offsets[j+1]]
		sortedByStart := func(a, b int32) int {
			switch {
			case s.Records[a].Start < s.Records[b].Start:
				return -1
			case s.Records[a].Start > s.Records[b].Start:
				return 1
			default:
				return 0
			}
		}
		if !slices.IsSortedFunc(bucket, sortedByStart) {
			slices.SortFunc(bucket, sortedByStart)
		}
		for i := 1; i < len(bucket); i++ {
			cur, prev := &s.Records[bucket[i]], &s.Records[bucket[i-1]]
			if cur.Start < prev.Complete-Eps {
				return fmt.Errorf("core: slave %d computes tasks %d and %d concurrently", j, prev.Task, cur.Task)
			}
			if cur.Arrive < prev.Arrive-Eps {
				return fmt.Errorf("core: slave %d executed task %d (arrived %v) before earlier-arrived task %d (%v)",
					j, prev.Task, prev.Arrive, cur.Task, cur.Arrive)
			}
		}
	}
	return nil
}

// cmpSendStart orders records by send start for the one-port check.
func cmpSendStart(a, b Record) int {
	switch {
	case a.SendStart < b.SendStart:
		return -1
	case a.SendStart > b.SendStart:
		return 1
	default:
		return 0
	}
}

// WorkConserving reports whether the schedule keeps the port busy whenever
// a released, unsent task exists and the port is idle. The on-line model
// permits deliberate idling (some adversarial branches hinge on it), so
// this is a diagnostic, not a validity requirement.
func WorkConserving(s Schedule) bool {
	recs := append([]Record(nil), s.Records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].SendStart < recs[j].SendStart })
	portFree := 0.0
	for _, r := range recs {
		if r.SendStart > portFree+Eps {
			// Port idled during (portFree, r.SendStart). Violation only if a
			// released unsent task existed throughout; the earliest pending
			// release among unsent tasks at time portFree is enough to check.
			for _, other := range recs {
				if other.SendStart >= r.SendStart-Eps && other.Release < r.SendStart-Eps &&
					other.Release <= portFree+Eps {
					return false
				}
			}
		}
		if r.Arrive > portFree {
			portFree = r.Arrive
		}
	}
	return true
}
