package core

import (
	"strings"
	"testing"
)

func TestValidateAcceptsFeasible(t *testing.T) {
	if err := ValidateSchedule(twoTaskSchedule()); err != nil {
		t.Fatalf("feasible schedule rejected: %v", err)
	}
}

func mutate(s Schedule, f func(*Schedule)) Schedule {
	cp := Schedule{Instance: s.Instance, Records: append([]Record(nil), s.Records...)}
	f(&cp)
	return cp
}

func TestValidateCatchesViolations(t *testing.T) {
	base := twoTaskSchedule()
	cases := []struct {
		name    string
		broken  Schedule
		keyword string
	}{
		{
			"missing record",
			mutate(base, func(s *Schedule) { s.Records = s.Records[:1] }),
			"records",
		},
		{
			"duplicate record",
			mutate(base, func(s *Schedule) { s.Records[1] = s.Records[0] }),
			"duplicate",
		},
		{
			"unknown slave",
			mutate(base, func(s *Schedule) { s.Records[0].Slave = 9 }),
			"unknown slave",
		},
		{
			"send before release",
			mutate(base, func(s *Schedule) {
				s.Records[1].SendStart = 0.5
				s.Records[1].Arrive = 1.5
				s.Records[1].Start = 4
				s.Records[1].Complete = 7
			}),
			"before release",
		},
		{
			"wrong communication duration",
			mutate(base, func(s *Schedule) { s.Records[0].Arrive = 2.5 }),
			"communication",
		},
		{
			"start before arrival",
			mutate(base, func(s *Schedule) {
				s.Records[1].Start = 1.5
				s.Records[1].Complete = 4.5
			}),
			"before arrival",
		},
		{
			"wrong computation duration",
			mutate(base, func(s *Schedule) { s.Records[0].Complete = 5 }),
			"computation",
		},
		{
			"one-port overlap",
			mutate(base, func(s *Schedule) {
				s.Records[1].SendStart = 0.5 + 1 // still after release? release=1 → violates; use release-safe overlap
			}),
			"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSchedule(tc.broken)
			if err == nil {
				t.Fatal("violation accepted")
			}
			if tc.keyword != "" && !strings.Contains(err.Error(), tc.keyword) {
				t.Fatalf("error %q does not mention %q", err, tc.keyword)
			}
		})
	}
}

func TestValidateOnePortOverlap(t *testing.T) {
	// Two sends overlapping in time on different slaves, both after release.
	pl := NewPlatform([]float64{1, 1}, []float64{3, 7})
	inst := NewInstance(pl, ReleasesAt(0, 0))
	s := Schedule{
		Instance: inst,
		Records: []Record{
			{Task: 0, Slave: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 4},
			{Task: 1, Slave: 1, SendStart: 0.5, Arrive: 1.5, Start: 1.5, Complete: 8.5},
		},
	}
	err := ValidateSchedule(s)
	if err == nil || !strings.Contains(err.Error(), "one-port") {
		t.Fatalf("one-port overlap not caught: %v", err)
	}
}

func TestValidateSlaveOverlap(t *testing.T) {
	pl := NewPlatform([]float64{1}, []float64{3})
	inst := NewInstance(pl, ReleasesAt(0, 0))
	s := Schedule{
		Instance: inst,
		Records: []Record{
			{Task: 0, Slave: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 4},
			{Task: 1, Slave: 0, SendStart: 1, Arrive: 2, Start: 2, Complete: 5}, // overlaps task 0's run
		},
	}
	err := ValidateSchedule(s)
	if err == nil || !strings.Contains(err.Error(), "concurrently") {
		t.Fatalf("slave overlap not caught: %v", err)
	}
}

func TestValidateFIFOOrder(t *testing.T) {
	pl := NewPlatform([]float64{1}, []float64{2})
	inst := NewInstance(pl, ReleasesAt(0, 0))
	// Task 1 arrives second but runs first: slave-FIFO violation.
	s := Schedule{
		Instance: inst,
		Records: []Record{
			{Task: 0, Slave: 0, SendStart: 0, Arrive: 1, Start: 4, Complete: 6},
			{Task: 1, Slave: 0, SendStart: 1, Arrive: 2, Start: 2, Complete: 4},
		},
	}
	err := ValidateSchedule(s)
	if err == nil || !strings.Contains(err.Error(), "arrived") {
		t.Fatalf("FIFO violation not caught: %v", err)
	}
}

func TestValidateSizeFactors(t *testing.T) {
	// A perturbed task must be charged scaled durations.
	pl := NewPlatform([]float64{1}, []float64{2})
	tasks := []Task{{Release: 0, CommScale: 1.5, CompScale: 2}}
	inst := NewInstance(pl, tasks)
	good := Schedule{
		Instance: inst,
		Records: []Record{
			{Task: 0, Slave: 0, SendStart: 0, Arrive: 1.5, Start: 1.5, Complete: 5.5},
		},
	}
	if err := ValidateSchedule(good); err != nil {
		t.Fatalf("scaled schedule rejected: %v", err)
	}
	bad := mutate(good, func(s *Schedule) { s.Records[0].Arrive = 1 })
	if err := ValidateSchedule(bad); err == nil {
		t.Fatal("nominal-length send accepted for scaled task")
	}
}

func TestWorkConserving(t *testing.T) {
	if !WorkConserving(twoTaskSchedule()) {
		t.Fatal("back-to-back schedule reported as idling")
	}
	// Insert deliberate idling: task 1 released at 1 but sent at 3.
	pl := NewPlatform([]float64{1, 1}, []float64{3, 7})
	inst := NewInstance(pl, ReleasesAt(0, 1))
	lazy := Schedule{
		Instance: inst,
		Records: []Record{
			{Task: 0, Slave: 0, Release: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 4},
			{Task: 1, Slave: 0, Release: 1, SendStart: 3, Arrive: 4, Start: 4, Complete: 7},
		},
	}
	if err := ValidateSchedule(lazy); err != nil {
		t.Fatalf("idling schedule must still be feasible: %v", err)
	}
	if WorkConserving(lazy) {
		t.Fatal("idling schedule reported as work-conserving")
	}
}
