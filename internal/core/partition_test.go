package core

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPartitionStriped(t *testing.T) {
	pl := NewPlatform([]float64{1, 2, 3, 4, 5}, []float64{5, 4, 3, 2, 1})
	shards, err := pl.Partition(2, PartitionStriped)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shards", len(shards))
	}
	if !reflect.DeepEqual(shards[0].Slaves, []int{0, 2, 4}) || !reflect.DeepEqual(shards[1].Slaves, []int{1, 3}) {
		t.Fatalf("striped membership %v / %v", shards[0].Slaves, shards[1].Slaves)
	}
	if !reflect.DeepEqual(shards[0].Platform.C, []float64{1, 3, 5}) ||
		!reflect.DeepEqual(shards[1].Platform.P, []float64{4, 2}) {
		t.Fatalf("striped costs %v / %v", shards[0].Platform, shards[1].Platform)
	}
}

func TestPartitionSingleShardIsIdentity(t *testing.T) {
	pl := NewPlatform([]float64{0.5, 1, 2}, []float64{2, 4, 5})
	for _, strategy := range PartitionStrategies {
		shards, err := pl.Partition(1, strategy)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if len(shards) != 1 {
			t.Fatalf("%s: %d shards", strategy, len(shards))
		}
		if !reflect.DeepEqual(shards[0].Slaves, []int{0, 1, 2}) {
			t.Fatalf("%s: membership %v", strategy, shards[0].Slaves)
		}
		if !reflect.DeepEqual(shards[0].Platform.C, pl.C) || !reflect.DeepEqual(shards[0].Platform.P, pl.P) {
			t.Fatalf("%s: platform %v != %v", strategy, shards[0].Platform, pl)
		}
	}
}

func TestPartitionBalancedSpreadsFastSlaves(t *testing.T) {
	// Two fast slaves (rate 1) and two slow ones (rate 0.1): balanced
	// must give each shard one of each; striped would pair them 0,2 / 1,3
	// which happens to do the same here, so order the costs adversarially.
	pl := NewPlatform([]float64{0.5, 0.5, 5, 5}, []float64{0.5, 0.5, 5, 5})
	shards, err := pl.Partition(2, PartitionBalanced)
	if err != nil {
		t.Fatal(err)
	}
	for s, sh := range shards {
		var fast, slow int
		for _, j := range sh.Slaves {
			if pl.C[j] < 1 {
				fast++
			} else {
				slow++
			}
		}
		if fast != 1 || slow != 1 {
			t.Fatalf("shard %d has %d fast and %d slow slaves (%v)", s, fast, slow, sh.Slaves)
		}
	}
}

func TestPartitionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		class := Classes[trial%len(Classes)]
		m := 1 + rng.Intn(9)
		pl := Random(rng, class, GenConfig{M: m})
		for _, strategy := range PartitionStrategies {
			for k := 1; k <= m; k++ {
				shards, err := pl.Partition(k, strategy)
				if err != nil {
					t.Fatalf("m=%d k=%d %s: %v", m, k, strategy, err)
				}
				// validatePartition already ran inside Partition; re-check the
				// cover independently here.
				seen := map[int]bool{}
				for _, sh := range shards {
					if len(sh.Slaves) == 0 {
						t.Fatalf("m=%d k=%d %s: empty shard", m, k, strategy)
					}
					for i, j := range sh.Slaves {
						if seen[j] {
							t.Fatalf("m=%d k=%d %s: slave %d twice", m, k, strategy, j)
						}
						seen[j] = true
						if sh.Platform.C[i] != pl.C[j] || sh.Platform.P[i] != pl.P[j] {
							t.Fatalf("m=%d k=%d %s: cost mismatch for slave %d", m, k, strategy, j)
						}
					}
				}
				if len(seen) != m {
					t.Fatalf("m=%d k=%d %s: covered %d of %d slaves", m, k, strategy, len(seen), m)
				}
			}
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	pl := Random(rand.New(rand.NewSource(7)), Heterogeneous, GenConfig{M: 8})
	for _, strategy := range PartitionStrategies {
		a, err := pl.Partition(3, strategy)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pl.Partition(3, strategy)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s partition not deterministic", strategy)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	pl := NewPlatform([]float64{1, 1}, []float64{2, 2})
	if _, err := pl.Partition(0, PartitionStriped); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := pl.Partition(3, PartitionStriped); err == nil {
		t.Fatal("k > m accepted")
	}
	if _, err := pl.Partition(1, PartitionStrategy("zigzag")); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := (Platform{}).Partition(1, PartitionStriped); err == nil {
		t.Fatal("empty platform accepted")
	}
	if err := ValidatePartitionStrategy(PartitionBalanced); err != nil {
		t.Fatal(err)
	}
}
