package core

import (
	"math/rand"
	"strings"
	"testing"
)

func TestNewPlatformCopies(t *testing.T) {
	c := []float64{1, 2}
	p := []float64{3, 4}
	pl := NewPlatform(c, p)
	c[0] = 99
	p[1] = 99
	if pl.C[0] != 1 || pl.P[1] != 4 {
		t.Fatal("NewPlatform aliases caller slices")
	}
}

func TestNewPlatformPanics(t *testing.T) {
	cases := []struct {
		name string
		c, p []float64
	}{
		{"empty", nil, nil},
		{"mismatched", []float64{1}, []float64{1, 2}},
		{"zero comm", []float64{0}, []float64{1}},
		{"negative comp", []float64{1}, []float64{-1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewPlatform(tc.c, tc.p)
		})
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		c, p []float64
		want Class
	}{
		{[]float64{1, 1}, []float64{3, 3}, Homogeneous},
		{[]float64{1, 1}, []float64{3, 7}, CommHomogeneous},
		{[]float64{1, 2}, []float64{3, 3}, CompHomogeneous},
		{[]float64{1, 2}, []float64{3, 7}, Heterogeneous},
	}
	for _, tc := range cases {
		pl := NewPlatform(tc.c, tc.p)
		if got := pl.Classify(); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", pl, got, tc.want)
		}
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		Homogeneous:     "homogeneous",
		CommHomogeneous: "comm-homogeneous",
		CompHomogeneous: "comp-homogeneous",
		Heterogeneous:   "heterogeneous",
	}
	for class, want := range names {
		if got := class.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", class, got, want)
		}
	}
}

func TestRandomRespectsClassAndRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultGenConfig()
	for _, class := range Classes {
		for trial := 0; trial < 20; trial++ {
			pl := Random(rng, class, cfg)
			if pl.M() != 5 {
				t.Fatalf("class %v: m = %d, want 5", class, pl.M())
			}
			if got := pl.Classify(); got != class {
				t.Fatalf("class %v: generated %v platform %v", class, got, pl)
			}
			for j := 0; j < pl.M(); j++ {
				if pl.C[j] < cfg.CMin || pl.C[j] > cfg.CMax {
					t.Fatalf("class %v: c[%d]=%v outside [%v,%v]", class, j, pl.C[j], cfg.CMin, cfg.CMax)
				}
				if pl.P[j] < cfg.PMin || pl.P[j] > cfg.PMax {
					t.Fatalf("class %v: p[%d]=%v outside [%v,%v]", class, j, pl.P[j], cfg.PMin, cfg.PMax)
				}
			}
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random(rand.New(rand.NewSource(7)), Heterogeneous, GenConfig{})
	b := Random(rand.New(rand.NewSource(7)), Heterogeneous, GenConfig{})
	for j := range a.C {
		if a.C[j] != b.C[j] || a.P[j] != b.P[j] {
			t.Fatal("same seed produced different platforms")
		}
	}
}

func TestGenConfigDefaults(t *testing.T) {
	pl := Random(rand.New(rand.NewSource(3)), Heterogeneous, GenConfig{M: 2})
	if pl.M() != 2 {
		t.Fatalf("explicit M ignored: %d", pl.M())
	}
}

func TestPlatformValidate(t *testing.T) {
	good := NewPlatform([]float64{1}, []float64{2})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid platform rejected: %v", err)
	}
	bad := Platform{C: []float64{1, -1}, P: []float64{1, 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative communication time accepted")
	}
	if err := (Platform{}).Validate(); err == nil {
		t.Fatal("empty platform accepted")
	}
	if err := (Platform{C: []float64{1}, P: []float64{1, 2}}).Validate(); err == nil {
		t.Fatal("mismatched platform accepted")
	}
}

func TestPlatformString(t *testing.T) {
	pl := NewPlatform([]float64{1, 1}, []float64{3, 7})
	s := pl.String()
	if !strings.Contains(s, "m=2") || !strings.Contains(s, "3 7") {
		t.Fatalf("String() = %q", s)
	}
}

func TestCloneIndependent(t *testing.T) {
	pl := NewPlatform([]float64{1, 2}, []float64{3, 4})
	cp := pl.Clone()
	cp.C[0] = 42
	if pl.C[0] == 42 {
		t.Fatal("Clone shares memory")
	}
}
