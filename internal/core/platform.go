// Package core defines the domain model shared by every subsystem of the
// reproduction: the one-port master-slave platform, tasks with release
// times, per-task schedule records, the paper's three objective functions,
// and a validator that checks any schedule against the model's constraints.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
)

// Class labels the four platform families studied in the paper.
type Class int

const (
	// Homogeneous platforms have identical links and identical processors.
	Homogeneous Class = iota
	// CommHomogeneous platforms have identical links (c_j = c) and
	// heterogeneous processors.
	CommHomogeneous
	// CompHomogeneous platforms have identical processors (p_j = p) and
	// heterogeneous links.
	CompHomogeneous
	// Heterogeneous platforms are heterogeneous in both dimensions.
	Heterogeneous
)

// String returns the conventional name used throughout the paper.
func (c Class) String() string {
	switch c {
	case Homogeneous:
		return "homogeneous"
	case CommHomogeneous:
		return "comm-homogeneous"
	case CompHomogeneous:
		return "comp-homogeneous"
	case Heterogeneous:
		return "heterogeneous"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists all four families in presentation order (Figure 1 a–d).
var Classes = []Class{Homogeneous, CommHomogeneous, CompHomogeneous, Heterogeneous}

// Platform is a master-slave platform under the one-port model: the master
// needs C[j] time units of exclusive port use to ship one task to slave j,
// which then needs P[j] time units to execute it.
type Platform struct {
	C []float64 // per-slave communication time (seconds per task)
	P []float64 // per-slave computation time (seconds per task)
}

// NewPlatform builds a platform from per-slave communication and
// computation times. It panics if the slices differ in length, are empty,
// or contain non-positive values; platforms are constructed from trusted
// experiment code, so misuse is a programming error.
func NewPlatform(c, p []float64) Platform {
	if len(c) == 0 || len(c) != len(p) {
		panic(fmt.Sprintf("core: platform needs matching non-empty c (%d) and p (%d)", len(c), len(p)))
	}
	for j := range c {
		if c[j] <= 0 || p[j] <= 0 {
			panic(fmt.Sprintf("core: slave %d has non-positive cost c=%v p=%v", j, c[j], p[j]))
		}
	}
	pl := Platform{C: append([]float64(nil), c...), P: append([]float64(nil), p...)}
	return pl
}

// M returns the number of slaves.
func (pl Platform) M() int { return len(pl.C) }

// Clone returns a deep copy.
func (pl Platform) Clone() Platform {
	return Platform{
		C: append([]float64(nil), pl.C...),
		P: append([]float64(nil), pl.P...),
	}
}

// Classify reports the heterogeneity class of the platform, treating
// values equal within a 1e-12 relative tolerance as identical.
func (pl Platform) Classify() Class {
	commHomog := allEqual(pl.C)
	compHomog := allEqual(pl.P)
	switch {
	case commHomog && compHomog:
		return Homogeneous
	case commHomog:
		return CommHomogeneous
	case compHomog:
		return CompHomogeneous
	default:
		return Heterogeneous
	}
}

func allEqual(v []float64) bool {
	for _, x := range v[1:] {
		d := x - v[0]
		if d < 0 {
			d = -d
		}
		if d > 1e-12*(1+v[0]) {
			return false
		}
	}
	return true
}

// String renders the platform compactly, e.g. "m=2 c=[1 1] p=[3 7]".
func (pl Platform) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "m=%d c=%v p=%v", pl.M(), pl.C, pl.P)
	return b.String()
}

// GenConfig controls random platform generation. The defaults mirror the
// paper's experimental setup (Section 4.2): five machines with
// communication times in [0.01 s, 1 s] and computation times in
// [0.1 s, 8 s].
type GenConfig struct {
	M          int     // number of slaves (default 5)
	CMin, CMax float64 // communication-time range (default [0.01, 1])
	PMin, PMax float64 // computation-time range (default [0.1, 8])
}

// DefaultGenConfig returns the paper's experimental parameters.
func DefaultGenConfig() GenConfig {
	return GenConfig{M: 5, CMin: 0.01, CMax: 1, PMin: 0.1, PMax: 8}
}

func (g GenConfig) withDefaults() GenConfig {
	d := DefaultGenConfig()
	if g.M <= 0 {
		g.M = d.M
	}
	if g.CMax <= g.CMin {
		g.CMin, g.CMax = d.CMin, d.CMax
	}
	if g.PMax <= g.PMin {
		g.PMin, g.PMax = d.PMin, d.PMax
	}
	return g
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// Random draws a platform of the requested class. Homogeneous dimensions
// draw a single shared value from the same range, matching the paper's
// procedure of prescribing one property on otherwise random platforms.
func Random(rng *rand.Rand, class Class, cfg GenConfig) Platform {
	cfg = cfg.withDefaults()
	c := make([]float64, cfg.M)
	p := make([]float64, cfg.M)
	sharedC := uniform(rng, cfg.CMin, cfg.CMax)
	sharedP := uniform(rng, cfg.PMin, cfg.PMax)
	for j := 0; j < cfg.M; j++ {
		switch class {
		case Homogeneous:
			c[j], p[j] = sharedC, sharedP
		case CommHomogeneous:
			c[j], p[j] = sharedC, uniform(rng, cfg.PMin, cfg.PMax)
		case CompHomogeneous:
			c[j], p[j] = uniform(rng, cfg.CMin, cfg.CMax), sharedP
		case Heterogeneous:
			c[j], p[j] = uniform(rng, cfg.CMin, cfg.CMax), uniform(rng, cfg.PMin, cfg.PMax)
		default:
			panic(fmt.Sprintf("core: unknown class %v", class))
		}
	}
	return NewPlatform(c, p)
}

// Validate checks platform well-formedness for platforms deserialized or
// assembled field-by-field rather than via NewPlatform.
func (pl Platform) Validate() error {
	if pl.M() == 0 {
		return errors.New("core: platform has no slaves")
	}
	if len(pl.C) != len(pl.P) {
		return fmt.Errorf("core: mismatched cost vectors: %d communication vs %d computation", len(pl.C), len(pl.P))
	}
	for j := range pl.C {
		if pl.C[j] <= 0 {
			return fmt.Errorf("core: slave %d has non-positive communication time %v", j, pl.C[j])
		}
		if pl.P[j] <= 0 {
			return fmt.Errorf("core: slave %d has non-positive computation time %v", j, pl.P[j])
		}
	}
	return nil
}
