package core

import (
	"fmt"
	"sort"
)

// TaskID identifies a task within one problem instance. IDs are dense and
// start at 0; the i-th released task has ID i when releases are sorted.
type TaskID int

// Task is one unit of work. All tasks are identical in nominal size (the
// paper's same-size hypothesis); SizeFactor models the Figure-2 robustness
// experiment where the actual matrix shipped each round deviates by up to
// 10% from the nominal one. Schedulers never see SizeFactor — the engine
// applies it when charging communication and computation time.
type Task struct {
	ID      TaskID
	Release float64
	// SizeFactor scales the task's actual cost: communication scales by
	// CommScale and computation by CompScale (precomputed from the matrix
	// side-length factor: volume ∝ s², flops ∝ s³). Both are 1 for nominal
	// tasks. Zero values are treated as 1 so that plain Task{} literals in
	// tests behave nominally.
	CommScale float64
	CompScale float64
}

// EffComm returns the task's actual communication multiplier.
func (t Task) EffComm() float64 {
	if t.CommScale == 0 {
		return 1
	}
	return t.CommScale
}

// EffComp returns the task's actual computation multiplier.
func (t Task) EffComp() float64 {
	if t.CompScale == 0 {
		return 1
	}
	return t.CompScale
}

// Instance is a complete problem instance: a platform plus a release-time
// sorted task list.
type Instance struct {
	Platform Platform
	Tasks    []Task
}

// NewInstance assembles an instance, sorting tasks by release time (FIFO
// order is lossless for identical tasks) and renumbering IDs densely.
func NewInstance(pl Platform, tasks []Task) Instance {
	ts := append([]Task(nil), tasks...)
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Release < ts[j].Release })
	for i := range ts {
		ts[i].ID = TaskID(i)
	}
	return Instance{Platform: pl, Tasks: ts}
}

// ReleasesAt builds n nominal tasks released at the given times.
func ReleasesAt(times ...float64) []Task {
	ts := make([]Task, len(times))
	for i, r := range times {
		ts[i] = Task{ID: TaskID(i), Release: r, CommScale: 1, CompScale: 1}
	}
	return ts
}

// Bag builds n nominal tasks all released at time 0 — the bag-of-tasks
// workload of the paper's experiments.
func Bag(n int) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = Task{ID: TaskID(i), Release: 0, CommScale: 1, CompScale: 1}
	}
	return ts
}

// Record is the complete execution trace of one task.
type Record struct {
	Task      TaskID
	Slave     int
	Release   float64
	SendStart float64 // master port acquired
	Arrive    float64 // send complete, task queued at slave
	Start     float64 // slave begins computing
	Complete  float64 // C_i
	// Lost marks an attempt destroyed by a slave failure on a dynamic
	// platform (internal/scenario); its later fields stop at the failure.
	// Static schedules never set it.
	Lost bool
}

// Flow returns the task's response time C_i − r_i.
func (r Record) Flow() float64 { return r.Complete - r.Release }

// String renders one Gantt row.
func (r Record) String() string {
	return fmt.Sprintf("task %d → P%d: released %.3f, sent [%.3f,%.3f], ran [%.3f,%.3f]",
		r.Task, r.Slave+1, r.Release, r.SendStart, r.Arrive, r.Start, r.Complete)
}

// Schedule is the outcome of running a scheduling algorithm on an
// instance: one record per task, indexed by TaskID.
type Schedule struct {
	Instance Instance
	Records  []Record
}

// Makespan returns max C_i, the total execution time.
func (s Schedule) Makespan() float64 {
	best := 0.0
	for _, r := range s.Records {
		if r.Complete > best {
			best = r.Complete
		}
	}
	return best
}

// MaxFlow returns max (C_i − r_i), the maximum response time.
func (s Schedule) MaxFlow() float64 {
	best := 0.0
	for _, r := range s.Records {
		if f := r.Flow(); f > best {
			best = f
		}
	}
	return best
}

// SumFlow returns Σ (C_i − r_i), the sum of response times.
func (s Schedule) SumFlow() float64 {
	sum := 0.0
	for _, r := range s.Records {
		sum += r.Flow()
	}
	return sum
}

// Objective selects one of the paper's three metrics.
type Objective int

const (
	// Makespan is max C_i.
	Makespan Objective = iota
	// MaxFlow is max (C_i − r_i).
	MaxFlow
	// SumFlow is Σ (C_i − r_i).
	SumFlow
)

// Objectives lists the three metrics in the paper's presentation order.
var Objectives = []Objective{Makespan, MaxFlow, SumFlow}

// String returns the paper's name for the objective.
func (o Objective) String() string {
	switch o {
	case Makespan:
		return "makespan"
	case MaxFlow:
		return "max-flow"
	case SumFlow:
		return "sum-flow"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Value evaluates the objective on a schedule.
func (o Objective) Value(s Schedule) float64 {
	switch o {
	case Makespan:
		return s.Makespan()
	case MaxFlow:
		return s.MaxFlow()
	case SumFlow:
		return s.SumFlow()
	default:
		panic(fmt.Sprintf("core: unknown objective %d", int(o)))
	}
}
