package core

import (
	"math"
	"testing"
)

func TestNewInstanceSortsAndRenumbers(t *testing.T) {
	pl := NewPlatform([]float64{1}, []float64{1})
	inst := NewInstance(pl, []Task{
		{ID: 5, Release: 3},
		{ID: 9, Release: 1},
		{ID: 0, Release: 2},
	})
	wantReleases := []float64{1, 2, 3}
	for i, task := range inst.Tasks {
		if task.ID != TaskID(i) {
			t.Errorf("task %d has ID %d", i, task.ID)
		}
		if task.Release != wantReleases[i] {
			t.Errorf("task %d released at %v, want %v", i, task.Release, wantReleases[i])
		}
	}
}

func TestNewInstanceStableForTies(t *testing.T) {
	pl := NewPlatform([]float64{1}, []float64{1})
	tasks := []Task{{Release: 0, CommScale: 2}, {Release: 0, CommScale: 3}}
	inst := NewInstance(pl, tasks)
	if inst.Tasks[0].CommScale != 2 || inst.Tasks[1].CommScale != 3 {
		t.Fatal("equal releases reordered")
	}
}

func TestBagAndReleasesAt(t *testing.T) {
	bag := Bag(4)
	if len(bag) != 4 {
		t.Fatalf("Bag(4) has %d tasks", len(bag))
	}
	for i, task := range bag {
		if task.Release != 0 || task.ID != TaskID(i) {
			t.Fatalf("bag task %d = %+v", i, task)
		}
	}
	rel := ReleasesAt(0, 1, 2.5)
	if rel[2].Release != 2.5 {
		t.Fatalf("ReleasesAt wrong: %+v", rel)
	}
}

func TestEffScalesDefaultToOne(t *testing.T) {
	var task Task // zero value
	if task.EffComm() != 1 || task.EffComp() != 1 {
		t.Fatal("zero-value task must behave nominally")
	}
	task = Task{CommScale: 1.21, CompScale: 1.331}
	if task.EffComm() != 1.21 || task.EffComp() != 1.331 {
		t.Fatal("explicit scales ignored")
	}
}

// twoTaskSchedule builds the hand-checked schedule used in several tests:
// platform c=[1,1], p=[3,7] (Theorem 1's platform), tasks at r=0 and r=1,
// both sent to P1 ASAP.
func twoTaskSchedule() Schedule {
	pl := NewPlatform([]float64{1, 1}, []float64{3, 7})
	inst := NewInstance(pl, ReleasesAt(0, 1))
	return Schedule{
		Instance: inst,
		Records: []Record{
			{Task: 0, Slave: 0, Release: 0, SendStart: 0, Arrive: 1, Start: 1, Complete: 4},
			{Task: 1, Slave: 0, Release: 1, SendStart: 1, Arrive: 2, Start: 4, Complete: 7},
		},
	}
}

func TestObjectiveValues(t *testing.T) {
	s := twoTaskSchedule()
	if got := s.Makespan(); got != 7 {
		t.Errorf("makespan = %v, want 7", got)
	}
	if got := s.MaxFlow(); got != 6 { // task 1: 7 - 1
		t.Errorf("max-flow = %v, want 6", got)
	}
	if got := s.SumFlow(); got != 10 { // 4 + 6
		t.Errorf("sum-flow = %v, want 10", got)
	}
	for _, o := range Objectives {
		direct := o.Value(s)
		var want float64
		switch o {
		case Makespan:
			want = s.Makespan()
		case MaxFlow:
			want = s.MaxFlow()
		case SumFlow:
			want = s.SumFlow()
		}
		if math.Abs(direct-want) > 0 {
			t.Errorf("Objective(%v).Value mismatch", o)
		}
	}
}

func TestObjectiveString(t *testing.T) {
	if Makespan.String() != "makespan" || MaxFlow.String() != "max-flow" || SumFlow.String() != "sum-flow" {
		t.Fatal("objective names changed")
	}
}

func TestRecordFlowAndString(t *testing.T) {
	r := Record{Task: 3, Slave: 1, Release: 2, SendStart: 2, Arrive: 3, Start: 3, Complete: 10}
	if r.Flow() != 8 {
		t.Fatalf("Flow = %v", r.Flow())
	}
	if s := r.String(); s == "" {
		t.Fatal("empty String()")
	}
}
