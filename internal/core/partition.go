package core

// Platform partitioning for sharded multi-master serving: a fleet of
// masters each owns a slice of the slaves (its own port, its own
// scheduler), so the structural serial bottleneck of the paper's one-port
// model — a single master can only push one task per link-time through
// its outbound port — is multiplied by the number of shards. The
// partition layer lives in core because both the serving stack
// (internal/cluster, internal/schedd) and the offline study
// (experiment.ShardingStudy) consume the same split.

import (
	"fmt"
	"sort"
)

// PartitionStrategy names a way of splitting a platform's slaves into
// shards.
type PartitionStrategy string

const (
	// PartitionStriped deals slaves round-robin: slave j goes to shard
	// j mod k. It preserves each shard's heterogeneity profile on
	// platforms whose costs are unordered, and it is the identity for
	// k = 1 — the Shards=1 conformance contract rides on that.
	PartitionStriped PartitionStrategy = "striped"
	// PartitionBalanced equalizes aggregate service rate: slaves are
	// assigned in decreasing order of 1/(c_j+p_j) to the shard with the
	// least total rate so far (longest-processing-time bin packing), so
	// no shard is left with only the platform's slowest machines.
	PartitionBalanced PartitionStrategy = "balanced"
)

// PartitionStrategies lists the registered strategies.
var PartitionStrategies = []PartitionStrategy{PartitionStriped, PartitionBalanced}

// ValidatePartitionStrategy rejects unknown strategy names (CLI flags
// and service configs funnel through this).
func ValidatePartitionStrategy(s PartitionStrategy) error {
	for _, known := range PartitionStrategies {
		if s == known {
			return nil
		}
	}
	return fmt.Errorf("core: unknown partition strategy %q (valid: %v)", s, PartitionStrategies)
}

// ShardPlatform is one shard of a partitioned platform: a standalone
// Platform over a subset of the original slaves, plus the mapping back
// to the original slave indices.
type ShardPlatform struct {
	// Slaves holds the original platform's slave indices owned by this
	// shard, in increasing order; Platform.C[i]/P[i] are the costs of
	// original slave Slaves[i].
	Slaves   []int
	Platform Platform
}

// Partition splits the platform into k shards under the given strategy.
// Every shard is non-empty, the shards are disjoint, and their union is
// exactly the platform (the function validates all three before
// returning). k must be in [1, M].
func (pl Platform) Partition(k int, strategy PartitionStrategy) ([]ShardPlatform, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if k < 1 || k > pl.M() {
		return nil, fmt.Errorf("core: cannot partition %d slaves into %d shards (need 1 ≤ k ≤ m)", pl.M(), k)
	}
	if err := ValidatePartitionStrategy(strategy); err != nil {
		return nil, err
	}
	members := make([][]int, k)
	switch strategy {
	case PartitionStriped:
		for j := 0; j < pl.M(); j++ {
			members[j%k] = append(members[j%k], j)
		}
	case PartitionBalanced:
		// LPT over service rates: fastest slaves first, each to the
		// currently slowest shard. Ties break on slave index (sort is
		// stable over the index-ordered input) and on shard index, so the
		// partition is deterministic.
		order := make([]int, pl.M())
		for j := range order {
			order[j] = j
		}
		rate := func(j int) float64 { return 1 / (pl.C[j] + pl.P[j]) }
		sort.SliceStable(order, func(a, b int) bool { return rate(order[a]) > rate(order[b]) })
		total := make([]float64, k)
		for _, j := range order {
			best := 0
			for s := 1; s < k; s++ {
				if total[s] < total[best] {
					best = s
				}
			}
			members[best] = append(members[best], j)
			total[best] += rate(j)
		}
		for s := range members {
			sort.Ints(members[s])
		}
	}
	shards := make([]ShardPlatform, k)
	for s, idx := range members {
		c := make([]float64, len(idx))
		p := make([]float64, len(idx))
		for i, j := range idx {
			c[i], p[i] = pl.C[j], pl.P[j]
		}
		shards[s] = ShardPlatform{Slaves: idx, Platform: Platform{C: c, P: p}}
	}
	if err := validatePartition(pl, shards); err != nil {
		return nil, err
	}
	return shards, nil
}

// validatePartition checks the partition laws: non-empty shards,
// disjointness, exact cover, and cost fidelity.
func validatePartition(pl Platform, shards []ShardPlatform) error {
	owner := make([]int, pl.M())
	for j := range owner {
		owner[j] = -1
	}
	for s, sh := range shards {
		if len(sh.Slaves) == 0 {
			return fmt.Errorf("core: partition shard %d is empty", s)
		}
		if err := sh.Platform.Validate(); err != nil {
			return fmt.Errorf("core: partition shard %d: %w", s, err)
		}
		for i, j := range sh.Slaves {
			if j < 0 || j >= pl.M() {
				return fmt.Errorf("core: partition shard %d claims unknown slave %d", s, j)
			}
			if owner[j] != -1 {
				return fmt.Errorf("core: slave %d assigned to both shard %d and shard %d", j, owner[j], s)
			}
			owner[j] = s
			if sh.Platform.C[i] != pl.C[j] || sh.Platform.P[i] != pl.P[j] {
				return fmt.Errorf("core: partition shard %d mislabels slave %d's costs", s, j)
			}
		}
	}
	for j, s := range owner {
		if s == -1 {
			return fmt.Errorf("core: slave %d belongs to no shard", j)
		}
	}
	return nil
}
