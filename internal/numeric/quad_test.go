package numeric

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func ratOf(t *testing.T, s string) *big.Rat {
	if t != nil {
		t.Helper()
	}
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		panic("bad rational literal " + s)
	}
	return r
}

func TestFromIntAndFrac(t *testing.T) {
	if got := FromInt(7).Float64(); got != 7 {
		t.Fatalf("FromInt(7) = %v", got)
	}
	if got := Frac(5, 4).Float64(); got != 1.25 {
		t.Fatalf("Frac(5,4) = %v", got)
	}
	if !FromInt(3).IsRational() {
		t.Fatal("FromInt(3) must be rational")
	}
}

func TestSqrtFloatAgreement(t *testing.T) {
	for _, d := range []int64{2, 3, 5, 7, 13} {
		got := Sqrt(d).Float64()
		want := math.Sqrt(float64(d))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Sqrt(%d).Float64() = %v, want %v", d, got, want)
		}
	}
}

func TestNewRejectsPerfectSquares(t *testing.T) {
	for _, d := range []int64{0, 1, 4, 9, 16, 25} {
		d := d
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New with d=%d did not panic", d)
				}
			}()
			New(big.NewRat(1, 1), big.NewRat(1, 1), d)
		}()
	}
}

func TestAddSub(t *testing.T) {
	x := New(big.NewRat(1, 2), big.NewRat(3, 4), 2) // 1/2 + 3/4 √2
	y := New(big.NewRat(1, 3), big.NewRat(1, 4), 2) // 1/3 + 1/4 √2
	sum := x.Add(y)
	if sum.RatPart().Cmp(ratOf(t, "5/6")) != 0 || sum.RadPart().Cmp(big.NewRat(1, 1)) != 0 {
		t.Fatalf("sum = %v", sum)
	}
	diff := sum.Sub(y)
	if !diff.Equal(x) {
		t.Fatalf("sum - y = %v, want %v", diff, x)
	}
}

func TestSubToRationalDropsField(t *testing.T) {
	x := New(big.NewRat(1, 1), big.NewRat(2, 1), 7)
	y := New(big.NewRat(0, 1), big.NewRat(2, 1), 7)
	z := x.Sub(y)
	if !z.IsRational() {
		t.Fatalf("1+2√7 - 2√7 should be rational, got %v", z)
	}
	// And a rational result must recombine with a different field.
	w := z.Add(Sqrt(3))
	if w.Radicand() != 3 {
		t.Fatalf("expected promotion into Q[√3], got %v", w)
	}
}

func TestMixedFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixing √2 and √3 did not panic")
		}
	}()
	Sqrt(2).Add(Sqrt(3))
}

func TestMulKnownIdentity(t *testing.T) {
	// (1+√2)(1-√2) = -1
	x := New(big.NewRat(1, 1), big.NewRat(1, 1), 2)
	y := New(big.NewRat(1, 1), big.NewRat(-1, 1), 2)
	if got := x.Mul(y); !got.Equal(FromInt(-1)) {
		t.Fatalf("(1+√2)(1-√2) = %v, want -1", got)
	}
	// (√13)² = 13
	if got := Sqrt(13).Mul(Sqrt(13)); !got.Equal(FromInt(13)) {
		t.Fatalf("(√13)² = %v", got)
	}
}

func TestInvDiv(t *testing.T) {
	// 1/(1+√2) = √2 - 1 (the silver ratio identity).
	x := New(big.NewRat(1, 1), big.NewRat(1, 1), 2)
	want := New(big.NewRat(-1, 1), big.NewRat(1, 1), 2)
	if got := x.Inv(); !got.Equal(want) {
		t.Fatalf("1/(1+√2) = %v, want %v", got, want)
	}
	// x / x = 1
	if got := x.Div(x); !got.Equal(FromInt(1)) {
		t.Fatalf("x/x = %v", got)
	}
	// Rational divisor on radical numerator.
	if got := Sqrt(3).Div(FromInt(2)); !got.Equal(SqrtScaled(1, 2, 3)) {
		t.Fatalf("√3/2 = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	FromInt(1).Div(FromInt(0))
}

func TestSignExactCloseCalls(t *testing.T) {
	cases := []struct {
		x    Quad
		want int
	}{
		{FromInt(0), 0},
		{Sqrt(2), +1},
		{Sqrt(2).Neg(), -1},
		// 3 - 2√2 > 0 since 9 > 8, but barely.
		{New(big.NewRat(3, 1), big.NewRat(-2, 1), 2), +1},
		// 2√2 - 3 < 0 symmetric case.
		{New(big.NewRat(-3, 1), big.NewRat(2, 1), 2), -1},
		// 7 - 4√3 > 0 since 49 > 48.
		{New(big.NewRat(7, 1), big.NewRat(-4, 1), 3), +1},
		// 4√3 - 7 < 0.
		{New(big.NewRat(-7, 1), big.NewRat(4, 1), 3), -1},
		// 18817/10864 - √3 > 0: continued-fraction convergent just above √3.
		{New(ratOf(nil, "18817/10864"), big.NewRat(-1, 1), 3), +1},
		// 1351/780 - √3 > 0 (convergent from above), margin ~1e-7.
		{New(ratOf(nil, "1351/780"), big.NewRat(-1, 1), 3), +1},
		// 265/153 - √3 < 0 (convergent from below).
		{New(ratOf(nil, "265/153"), big.NewRat(-1, 1), 3), -1},
	}
	for i, tc := range cases {
		if got := tc.x.Sign(); got != tc.want {
			t.Errorf("case %d: Sign(%v) = %d, want %d", i, tc.x, got, tc.want)
		}
	}
}

func TestCmpAgainstFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		d := []int64{2, 3, 7, 13}[rng.Intn(4)]
		x := New(big.NewRat(rng.Int63n(41)-20, rng.Int63n(9)+1), big.NewRat(rng.Int63n(41)-20, rng.Int63n(9)+1), d)
		y := New(big.NewRat(rng.Int63n(41)-20, rng.Int63n(9)+1), big.NewRat(rng.Int63n(41)-20, rng.Int63n(9)+1), d)
		fx, fy := x.Float64(), y.Float64()
		if math.Abs(fx-fy) < 1e-6 {
			continue // too close for float comparison to be trustworthy
		}
		want := -1
		if fx > fy {
			want = +1
		}
		if got := x.Cmp(y); got != want {
			t.Fatalf("Cmp(%v, %v) = %d, floats %v vs %v", x, y, got, fx, fy)
		}
	}
}

func TestMaxMin(t *testing.T) {
	a := FromInt(1)
	b := Sqrt(2)    // ≈1.414
	c := Frac(7, 5) // 1.4
	if got := Max(a, b, c); !got.Equal(b) {
		t.Fatalf("Max = %v", got)
	}
	if got := Min(b, c, a); !got.Equal(a) {
		t.Fatalf("Min = %v", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		x    Quad
		want string
	}{
		{Frac(5, 4), "5/4"},
		{Sqrt(2), "1√2"},
		{New(big.NewRat(1, 1), big.NewRat(1, 1), 3), "1 + 1√3"},
		{New(big.NewRat(5, 2), big.NewRat(-1, 2), 7), "5/2 - 1/2√7"},
	}
	for _, tc := range cases {
		if got := tc.x.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.x.Float64(), got, tc.want)
		}
	}
}

// quadGen builds a bounded random Quad in Q[√d] for property tests.
func quadGen(rng *rand.Rand, d int64) Quad {
	num := func() *big.Rat { return big.NewRat(rng.Int63n(201)-100, rng.Int63n(20)+1) }
	return New(num(), num(), d)
}

func TestFieldAxiomsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		d := []int64{2, 3, 7, 13}[rng.Intn(4)]
		x, y, z := quadGen(rng, d), quadGen(rng, d), quadGen(rng, d)

		if !x.Add(y).Equal(y.Add(x)) {
			t.Fatal("addition not commutative")
		}
		if !x.Mul(y).Equal(y.Mul(x)) {
			t.Fatal("multiplication not commutative")
		}
		if !x.Add(y).Add(z).Equal(x.Add(y.Add(z))) {
			t.Fatal("addition not associative")
		}
		if !x.Mul(y).Mul(z).Equal(x.Mul(y.Mul(z))) {
			t.Fatal("multiplication not associative")
		}
		if !x.Mul(y.Add(z)).Equal(x.Mul(y).Add(x.Mul(z))) {
			t.Fatal("distributivity fails")
		}
		if !x.Sub(x).Equal(FromInt(0)) {
			t.Fatal("x - x != 0")
		}
		if x.Sign() != 0 {
			if !x.Mul(x.Inv()).Equal(FromInt(1)) {
				t.Fatalf("x * 1/x != 1 for %v", x)
			}
		}
		// Order compatibility: x < y => x + z < y + z.
		if x.Less(y) && !x.Add(z).Less(y.Add(z)) {
			t.Fatal("order not translation-invariant")
		}
	}
}

// TestInvQuick checks the multiplicative-inverse law with testing/quick
// over pure rationals (field-agnostic Quads), where quick can generate the
// coefficients directly.
func TestInvQuick(t *testing.T) {
	f := func(p int64, q uint8, r int64, s uint8) bool {
		x := FromRat(big.NewRat(p%1000, int64(q%50)+1))
		y := FromRat(big.NewRat(r%1000, int64(s%50)+1))
		sum := x.Add(y)
		if sum.Sign() == 0 {
			return true
		}
		return sum.Mul(sum.Inv()).Equal(FromInt(1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestImmutability(t *testing.T) {
	a := big.NewRat(1, 2)
	b := big.NewRat(1, 3)
	x := New(a, b, 2)
	a.SetInt64(99) // mutate the inputs after construction
	b.SetInt64(99)
	if x.RatPart().Cmp(big.NewRat(1, 2)) != 0 || x.RadPart().Cmp(big.NewRat(1, 3)) != 0 {
		t.Fatal("Quad shares memory with constructor arguments")
	}
	// Accessors must return copies too.
	x.RatPart().SetInt64(5)
	if x.RatPart().Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatal("RatPart returns aliased memory")
	}
}

func TestPaperConstants(t *testing.T) {
	// The nine Table-1 bounds, exact form vs. the decimal the paper prints.
	cases := []struct {
		name  string
		bound Quad
		dec   float64
	}{
		{"comm-homog makespan 5/4", Frac(5, 4), 1.250},
		{"comm-homog max-flow (5-√7)/2", Frac(5, 2).Sub(SqrtScaled(1, 2, 7)), 1.177},
		{"comm-homog sum-flow (2+4√2)/7", Frac(2, 7).Add(SqrtScaled(4, 7, 2)), 1.093},
		{"comp-homog makespan 6/5", Frac(6, 5), 1.200},
		{"comp-homog max-flow 5/4", Frac(5, 4), 1.250},
		{"comp-homog sum-flow 23/22", Frac(23, 22), 1.045},
		{"heterogeneous makespan (1+√3)/2", Frac(1, 2).Add(SqrtScaled(1, 2, 3)), 1.366},
		{"heterogeneous max-flow √2", Sqrt(2), 1.414},
		{"heterogeneous sum-flow (√13-1)/2", SqrtScaled(1, 2, 13).Sub(Frac(1, 2)), 1.302},
	}
	for _, tc := range cases {
		// The paper truncates rather than rounds (e.g. 1.0938… printed as
		// 1.093), so allow a full last-digit of slack.
		if got := tc.bound.Float64(); math.Abs(got-tc.dec) > 1e-3 {
			t.Errorf("%s: %v, want ≈%v", tc.name, got, tc.dec)
		}
	}
}

func BenchmarkQuadMul(b *testing.B) {
	x := New(big.NewRat(355, 113), big.NewRat(22, 7), 2)
	y := New(big.NewRat(-3, 5), big.NewRat(8, 9), 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}

func BenchmarkQuadCmp(b *testing.B) {
	x := New(big.NewRat(3, 1), big.NewRat(-2, 1), 2)
	y := FromInt(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}
