// Package numeric implements exact arithmetic over real quadratic fields
// Q[√d]: numbers of the form a + b√d with a, b rational and d a fixed
// square-free positive integer.
//
// The nine lower-bound proofs of Pineau, Robert and Vivien involve the
// irrationals √2, √3, √7 and √13. Verifying the proofs' case analyses with
// floating point would leave every comparison open to rounding doubt, so
// this package provides exact field operations and, crucially, an exact
// sign/comparison primitive. Each proof stays within a single quadratic
// field, which Q[√d] captures without needing a general algebraic-number
// tower.
package numeric

import (
	"fmt"
	"math"
	"math/big"
)

// Quad is an immutable exact value a + b·√d. The zero value is not valid;
// use New, FromInt or FromRat. Two Quad values may only be combined when
// they share the same d (or when either has b = 0, in which case it is
// promoted to the other operand's field).
type Quad struct {
	a, b *big.Rat
	d    int64
}

// New returns a + b·√d. d must be positive and must not be a perfect
// square (d = 1 would alias rationals; use FromRat for pure rationals,
// which carry d = 0 and combine with any field).
func New(a, b *big.Rat, d int64) Quad {
	if d <= 1 {
		panic(fmt.Sprintf("numeric: invalid radicand %d", d))
	}
	if r := int64(math.Sqrt(float64(d))); r*r == d || (r+1)*(r+1) == d {
		panic(fmt.Sprintf("numeric: radicand %d is a perfect square", d))
	}
	q := Quad{a: new(big.Rat).Set(a), b: new(big.Rat).Set(b), d: d}
	if q.b.Sign() == 0 {
		q.d = 0 // pure rational: field-agnostic
	}
	return q
}

// FromRat returns the pure rational r as a Quad that combines with any
// quadratic field.
func FromRat(r *big.Rat) Quad {
	return Quad{a: new(big.Rat).Set(r), b: new(big.Rat), d: 0}
}

// FromInt returns the integer n as a field-agnostic Quad.
func FromInt(n int64) Quad {
	return FromRat(new(big.Rat).SetInt64(n))
}

// Frac returns the rational p/q as a field-agnostic Quad.
func Frac(p, q int64) Quad {
	if q == 0 {
		panic("numeric: zero denominator")
	}
	return FromRat(big.NewRat(p, q))
}

// Sqrt returns √d as an exact Quad.
func Sqrt(d int64) Quad {
	return New(new(big.Rat), big.NewRat(1, 1), d)
}

// SqrtScaled returns (p/q)·√d.
func SqrtScaled(p, q, d int64) Quad {
	if q == 0 {
		panic("numeric: zero denominator")
	}
	return New(new(big.Rat), big.NewRat(p, q), d)
}

// RatPart returns a copy of the rational coefficient a.
func (x Quad) RatPart() *big.Rat { return new(big.Rat).Set(x.a) }

// RadPart returns a copy of the radical coefficient b.
func (x Quad) RadPart() *big.Rat { return new(big.Rat).Set(x.b) }

// Radicand returns d, or 0 for a pure rational.
func (x Quad) Radicand() int64 { return x.d }

// IsRational reports whether the value has no radical component.
func (x Quad) IsRational() bool { return x.d == 0 }

// mergeField returns the common radicand of x and y, panicking if the two
// values live in distinct genuine quadratic fields.
func mergeField(x, y Quad) int64 {
	switch {
	case x.d == 0:
		return y.d
	case y.d == 0 || x.d == y.d:
		return x.d
	default:
		panic(fmt.Sprintf("numeric: mixing Q[√%d] and Q[√%d]", x.d, y.d))
	}
}

// normalize clears the field tag when the radical coefficient vanished.
func (x Quad) normalize() Quad {
	if x.b.Sign() == 0 {
		x.d = 0
	}
	return x
}

// Add returns x + y.
func (x Quad) Add(y Quad) Quad {
	d := mergeField(x, y)
	return Quad{
		a: new(big.Rat).Add(x.a, y.a),
		b: new(big.Rat).Add(x.b, y.b),
		d: d,
	}.normalize()
}

// Sub returns x − y.
func (x Quad) Sub(y Quad) Quad {
	d := mergeField(x, y)
	return Quad{
		a: new(big.Rat).Sub(x.a, y.a),
		b: new(big.Rat).Sub(x.b, y.b),
		d: d,
	}.normalize()
}

// Neg returns −x.
func (x Quad) Neg() Quad {
	return Quad{a: new(big.Rat).Neg(x.a), b: new(big.Rat).Neg(x.b), d: x.d}
}

// Mul returns x·y: (a₁+b₁√d)(a₂+b₂√d) = a₁a₂ + b₁b₂d + (a₁b₂+a₂b₁)√d.
func (x Quad) Mul(y Quad) Quad {
	d := mergeField(x, y)
	aa := new(big.Rat).Mul(x.a, y.a)
	bbd := new(big.Rat).Mul(x.b, y.b)
	bbd.Mul(bbd, new(big.Rat).SetInt64(d))
	a := aa.Add(aa, bbd)
	ab := new(big.Rat).Mul(x.a, y.b)
	ba := new(big.Rat).Mul(x.b, y.a)
	b := ab.Add(ab, ba)
	return Quad{a: a, b: b, d: d}.normalize()
}

// MulRat returns x scaled by the rational r.
func (x Quad) MulRat(r *big.Rat) Quad {
	return Quad{
		a: new(big.Rat).Mul(x.a, r),
		b: new(big.Rat).Mul(x.b, r),
		d: x.d,
	}.normalize()
}

// Inv returns 1/x. It panics on zero. The inverse of a + b√d is
// (a − b√d) / (a² − b²d), whose denominator is nonzero for nonzero x
// because d is not a perfect square.
func (x Quad) Inv() Quad {
	if x.Sign() == 0 {
		panic("numeric: division by zero")
	}
	if x.d == 0 {
		return FromRat(new(big.Rat).Inv(x.a))
	}
	norm := new(big.Rat).Mul(x.a, x.a)
	b2d := new(big.Rat).Mul(x.b, x.b)
	b2d.Mul(b2d, new(big.Rat).SetInt64(x.d))
	norm.Sub(norm, b2d)
	inv := new(big.Rat).Inv(norm)
	return Quad{
		a: new(big.Rat).Mul(x.a, inv),
		b: new(big.Rat).Mul(new(big.Rat).Neg(x.b), inv),
		d: x.d,
	}.normalize()
}

// Div returns x / y.
func (x Quad) Div(y Quad) Quad {
	// Promote y into the common field before inverting so that a pure
	// rational divisor works for any x.
	d := mergeField(x, y)
	yy := y
	yy.d = d
	if yy.b.Sign() == 0 {
		yy.d = 0
	}
	return x.Mul(yy.Inv())
}

// Sign returns −1, 0 or +1 as the exact sign of x.
// For a + b√d the sign is decided without approximation:
// if a and b share a sign it is that sign; otherwise compare a² with b²d,
// and the larger magnitude's term decides.
func (x Quad) Sign() int {
	sa, sb := x.a.Sign(), x.b.Sign()
	if x.d == 0 || sb == 0 {
		return sa
	}
	if sa == 0 {
		return sb
	}
	if sa == sb {
		return sa
	}
	// Opposite signs: sign(a + b√d) = sign(a) iff a² > b²d.
	a2 := new(big.Rat).Mul(x.a, x.a)
	b2d := new(big.Rat).Mul(x.b, x.b)
	b2d.Mul(b2d, new(big.Rat).SetInt64(x.d))
	switch a2.Cmp(b2d) {
	case +1:
		return sa
	case -1:
		return sb
	default:
		return 0 // impossible for square-free d > 1 with b ≠ 0, kept for safety
	}
}

// Cmp compares x and y exactly, returning −1, 0 or +1.
func (x Quad) Cmp(y Quad) int { return x.Sub(y).Sign() }

// Equal reports x == y exactly.
func (x Quad) Equal(y Quad) bool { return x.Cmp(y) == 0 }

// Less reports x < y exactly.
func (x Quad) Less(y Quad) bool { return x.Cmp(y) < 0 }

// Max returns the largest of the operands. It panics on an empty list.
func Max(first Quad, rest ...Quad) Quad {
	best := first
	for _, v := range rest {
		if v.Cmp(best) > 0 {
			best = v
		}
	}
	return best
}

// Min returns the smallest of the operands.
func Min(first Quad, rest ...Quad) Quad {
	best := first
	for _, v := range rest {
		if v.Cmp(best) < 0 {
			best = v
		}
	}
	return best
}

// Float64 returns the closest floating-point approximation of x.
func (x Quad) Float64() float64 {
	af, _ := x.a.Float64()
	if x.d == 0 {
		return af
	}
	bf, _ := x.b.Float64()
	return af + bf*math.Sqrt(float64(x.d))
}

// String renders the value as "a + b√d" with rational coefficients.
func (x Quad) String() string {
	if x.d == 0 {
		return x.a.RatString()
	}
	if x.a.Sign() == 0 {
		return fmt.Sprintf("%s√%d", x.b.RatString(), x.d)
	}
	if x.b.Sign() < 0 {
		nb := new(big.Rat).Neg(x.b)
		return fmt.Sprintf("%s - %s√%d", x.a.RatString(), nb.RatString(), x.d)
	}
	return fmt.Sprintf("%s + %s√%d", x.a.RatString(), x.b.RatString(), x.d)
}
