//go:build !race

package cluster

// firehoseSmokeJobs is the firehose smoke's job count: the full million
// normally, a 100k subset under the race detector (see the race-tagged
// twin) — the synchronization story is identical, only the wall cost
// differs.
const firehoseSmokeJobs = 1_000_000
