package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sched"
	"repro/internal/sim"
)

func newLS() sim.Scheduler { return sched.New("LS") }

// testCluster builds a started real-time cluster on a fast clock.
func testCluster(t *testing.T, pl core.Platform, shards int, placement string) *Router {
	t.Helper()
	r, err := New(Config{
		Platform:     pl,
		NewScheduler: newLS,
		Shards:       shards,
		Placement:    placement,
		World:        func(int) live.World { return live.NewRealTime(10000) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	return r
}

func TestClusterEndToEnd(t *testing.T) {
	pl := core.NewPlatform(
		[]float64{0.1, 0.1, 0.2, 0.2, 0.3, 0.3},
		[]float64{0.4, 0.8, 0.4, 0.8, 0.4, 0.8})
	for _, placement := range PlacementNames() {
		r := testCluster(t, pl, 3, placement)
		if r.Placement() != placement {
			t.Fatalf("placement %q", r.Placement())
		}
		const producers, batches, per = 3, 4, 10
		var wg sync.WaitGroup
		idCh := make(chan []int, producers*batches)
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := 0; b < batches; b++ {
					ids, err := r.SubmitBatch(live.JobSpec{}, per)
					if err != nil {
						t.Errorf("submit: %v", err)
						return
					}
					idCh <- ids
				}
			}()
		}
		wg.Wait()
		close(idCh)
		seen := map[int]bool{}
		for ids := range idCh {
			if len(ids) != per {
				t.Fatalf("%s: batch returned %d ids", placement, len(ids))
			}
			for _, id := range ids {
				if seen[id] {
					t.Fatalf("%s: duplicate global id %d", placement, id)
				}
				seen[id] = true
			}
		}
		want := producers * batches * per
		if r.Jobs() != want {
			t.Fatalf("%s: routed %d of %d", placement, r.Jobs(), want)
		}
		if err := r.Drain(); err != nil {
			t.Fatalf("%s: drain: %v", placement, err)
		}

		// Every job completed; per-shard counts add up to the total.
		total := 0
		for _, l := range r.Loads() {
			if l.Completed != l.Submitted || l.QueueDepth() != 0 {
				t.Fatalf("%s: shard load %+v after drain", placement, l)
			}
			total += l.Completed
		}
		if total != want {
			t.Fatalf("%s: shards completed %d of %d", placement, total, want)
		}
		if r.Pending() != 0 {
			t.Fatalf("%s: pending %d after drain", placement, r.Pending())
		}

		// Global job views: done, globally-indexed slave within the
		// owning shard's slave set.
		for gid := range seen {
			info, ok := r.Job(gid)
			if !ok || info.State != live.StateDone || info.ID != gid {
				t.Fatalf("%s: job %d: ok=%v info=%+v", placement, gid, ok, info)
			}
			si, ok := r.ShardOf(gid)
			if !ok {
				t.Fatalf("%s: no shard for %d", placement, gid)
			}
			owns := false
			for _, j := range r.Shards()[si].Slaves() {
				if j == info.Slave {
					owns = true
				}
			}
			if !owns {
				t.Fatalf("%s: job %d ran on slave %d, not owned by shard %d (%v)",
					placement, gid, info.Slave, si, r.Shards()[si].Slaves())
			}
		}

		// Submissions after drain are refused, not lost.
		if _, err := r.Submit(live.JobSpec{}); err != ErrDraining {
			t.Fatalf("%s: submit after drain: %v", placement, err)
		}
		if !r.Draining() {
			t.Fatalf("%s: not draining after Drain", placement)
		}
	}
}

func TestClusterLeastLoadedAvoidsBackloggedShard(t *testing.T) {
	// Shard 1 (slaves 1, 3: p = 400 → 40ms wall at ×10000) is ~1000×
	// slower than shard 0 (slaves 0, 2: p = 0.4). Unpaced bursts stripe
	// a few jobs onto the slow shard, where they pin its outstanding
	// count up for the rest of the test; after that, least-loaded must
	// route every paced submission to the fast shard. (Pacing by wall
	// time alone is machine-speed dependent: depending on the host the
	// shards settle into a tie-break cycle right on the assertion
	// boundary.)
	pl := core.NewPlatform(
		[]float64{0.01, 0.01, 0.01, 0.01},
		[]float64{0.4, 400, 0.4, 400})
	r := testCluster(t, pl, 2, PlacementLeastLoaded)
	deadline := time.Now().Add(2 * time.Second)
	for r.Loads()[1].Outstanding() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("could not backlog the slow shard")
		}
		for i := 0; i < 8; i++ {
			if _, err := r.Submit(live.JobSpec{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 30; i++ {
		// Let the fast shard absorb its queue first, so every decision
		// compares an empty fast shard against the stuck backlog.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) && r.Loads()[0].Outstanding() > 0 {
			time.Sleep(100 * time.Microsecond)
		}
		gid, err := r.Submit(live.JobSpec{})
		if err != nil {
			t.Fatal(err)
		}
		if s, ok := r.ShardOf(gid); !ok || s != 0 {
			t.Fatalf("paced job %d placed on backlogged shard %d", gid, s)
		}
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	loads := r.Loads()
	if loads[0].Completed <= loads[1].Completed*2 {
		t.Fatalf("least-loaded did not favor the fast shard: %+v", loads)
	}
}

func TestClusterHetAwarePrefersFastShardUpFront(t *testing.T) {
	// A single batch placed before ANY completion feedback exists: the
	// nominal-rate ECT estimate must already split the batch unevenly
	// toward the fast shard, where least-loaded (all loads zero) would
	// stripe it evenly. Shard 0 (slaves 0, 2) is 10× faster.
	pl := core.NewPlatform(
		[]float64{0.01, 0.01, 0.01, 0.01},
		[]float64{0.4, 4, 0.4, 4})
	r, err := New(Config{
		Platform:     pl,
		NewScheduler: newLS,
		Shards:       2,
		Placement:    PlacementHetAware,
		World:        func(int) live.World { return live.NewRealTime(10000) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := r.SubmitBatch(live.JobSpec{}, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 22 {
		t.Fatalf("%d ids", len(ids))
	}
	onFast := 0
	for _, gid := range ids {
		if s, _ := r.ShardOf(gid); s == 0 {
			onFast++
		}
	}
	// Rates are 10:1, so the staged-count-aware ECT should put roughly
	// 20 of 22 jobs on shard 0; anything clearly above half proves the
	// policy is speed-sensitive, not load-striping.
	if onFast < 15 {
		t.Fatalf("het-aware put only %d of 22 jobs on the 10× shard", onFast)
	}
	r.Start()
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	pl := core.NewPlatform([]float64{1, 1}, []float64{2, 2})
	if _, err := New(Config{Platform: pl}); err == nil || !strings.Contains(err.Error(), "scheduler") {
		t.Fatalf("missing scheduler: %v", err)
	}
	if _, err := New(Config{Platform: pl, NewScheduler: newLS, Shards: 3}); err == nil {
		t.Fatal("k > m accepted")
	}
	if _, err := New(Config{Platform: pl, NewScheduler: newLS, Placement: "best-effort"}); err == nil {
		t.Fatal("unknown placement accepted")
	}
	if _, err := New(Config{Platform: pl, NewScheduler: newLS, Partition: "zigzag"}); err == nil {
		t.Fatal("unknown partition accepted")
	}
	if _, err := New(Config{Platform: pl, NewScheduler: newLS, Shards: 2,
		Sources: []func(*live.Source){func(*live.Source) {}}}); err == nil {
		t.Fatal("sources with 2 shards accepted")
	}
	if _, err := New(Config{NewScheduler: newLS}); err == nil {
		t.Fatal("empty platform accepted")
	}
	// Defaults: 1 shard, striped, round-robin.
	r, err := New(Config{Platform: pl, NewScheduler: newLS,
		World: func(int) live.World { return live.NewRealTime(10000) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Shards()) != 1 || r.Placement() != PlacementRoundRobin || r.Partition() != core.PartitionStriped {
		t.Fatalf("defaults: %d shards, %q, %q", len(r.Shards()), r.Placement(), r.Partition())
	}
	r.Start()
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterJobUnknownIDs(t *testing.T) {
	pl := core.NewPlatform([]float64{1}, []float64{1})
	r := testCluster(t, pl, 1, PlacementRoundRobin)
	if _, ok := r.Job(-1); ok {
		t.Fatal("negative id found")
	}
	if _, ok := r.Job(0); ok {
		t.Fatal("unrouted id found")
	}
	if _, ok := r.ShardOf(99); ok {
		t.Fatal("unrouted shard lookup succeeded")
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
}
