// Package cluster is the sharded multi-master serving layer: a fleet of
// live runtimes (shards), each owning a partition of the platform's
// slaves and running its own scheduling policy behind its own one-port
// master, fronted by a Router that places every incoming job on a shard
// via a pluggable Placement policy.
//
// The paper's one-port master is a structural serial bottleneck — a
// single master transmits at most one task per link-time, no matter how
// many slaves it owns. Sharding multiplies the port: k masters serve k
// disjoint slave sets concurrently, so ingest throughput on port-bound
// platforms scales near-linearly with k (cmd/paperbench measures this
// sweep into BENCH_PR5.json). The cost is scheduling myopia: each master
// optimizes its slice in isolation, which experiment.ShardingStudy
// quantifies against the monolithic scheduler.
//
// With Shards = 1 the cluster is exactly the single-runtime stack of
// internal/live — same runtime, same admission path — and the
// conformance suite in this package pins that a one-shard cluster on the
// virtual clock reproduces the discrete-event engine's schedules bit for
// bit, extending the PR-3 contract through the new layer.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ErrDraining is returned by Submit/SubmitBatch once Drain has begun.
var ErrDraining = errors.New("cluster: draining; no new jobs accepted")

// Config describes one sharded cluster.
type Config struct {
	// Platform is the full platform; it is partitioned across shards.
	// Required.
	Platform core.Platform
	// NewScheduler constructs one scheduler instance per shard
	// (schedulers are stateful and must not be shared). Required.
	NewScheduler func() sim.Scheduler
	// Shards is the number of masters; 0 means 1. Must not exceed the
	// number of slaves.
	Shards int
	// Partition selects how slaves are split across shards; empty means
	// striped.
	Partition core.PartitionStrategy
	// Placement names the routing policy; empty means round-robin.
	Placement string
	// World builds each shard's execution substrate; nil means real time
	// at speedup 1 for every shard.
	World func(shard int) live.World
	// Sources are in-world job producers, only meaningful for
	// single-shard clusters (a virtual-clock shard can only receive jobs
	// from sources; the conformance suite uses this). Configuring sources
	// with more than one shard is an error: in-world submissions bypass
	// the router.
	Sources []func(*live.Source)
	// AuditDepth bounds the decision-audit ring: keep the newest
	// AuditDepth placement/steal/migration decisions (with the placement
	// policy's per-shard scores) for GET /decisions. 0 — the default —
	// disables auditing entirely: no ring, no score computation, no
	// timestamps on the ingest path, preserving the bare-cluster hot
	// path the benchgate pins.
	AuditDepth int
	// EventLogCap bounds each shard runtime's retained event log (see
	// live.Config.EventLogCap); 0 keeps full history.
	EventLogCap int
	// Observer, when set, is called with every lifecycle event from every
	// shard, after the shard's tracker has absorbed it (so the tracker's
	// view already reflects the event — an EvCompleted observer can read
	// the finished job's span). It runs inside the shard's master actor:
	// it must be fast, non-blocking, and must not call back into the
	// cluster. The flight recorder and /watch stream tap in here.
	Observer func(shard int, ev live.Event)
	// Firehose, when set, enables the batched intake path (see
	// firehose.go): producers enqueue placed batches into per-shard MPSC
	// queues and one in-world drain source per shard admits them. It is
	// how external jobs reach virtual-clock shards (whose runtimes panic
	// on external Submit) and the pure-throughput mode on any clock.
	// Mutually exclusive with Sources; Migrate is disabled while it is
	// on (the drain source must stay each shard's only submitter).
	Firehose *FirehoseConfig
}

// Shard is one master–slave runtime owning a slice of the platform.
type Shard struct {
	index   int
	slaves  []int // global slave indices, increasing
	pl      core.Platform
	rt      *live.Runtime
	tracker *live.Tracker
	// nominalRate is the shard's throughput estimate from its cost
	// vectors (tasks per model second), precomputed for het-aware
	// placement; see shardNominalRate.
	nominalRate float64

	// Declarative slave liveness, fed by Router.SetSlaveLive from
	// whatever failure detector the deployment runs (or a scenario
	// timeline in tests). liveCount is read lock-free on the placement
	// hot path; the bool slice is only touched under liveMu.
	liveCount atomic.Int32
	liveMu    sync.Mutex
	deadLocal []bool
}

// Index returns the shard's position in the cluster.
func (s *Shard) Index() int { return s.index }

// Slaves returns the global indices of the slaves this shard owns. The
// slice is shared; treat it as read-only.
func (s *Shard) Slaves() []int { return s.slaves }

// GlobalSlave maps a shard-local slave index to the platform-global one.
func (s *Shard) GlobalSlave(local int) int { return s.slaves[local] }

// Platform returns the shard's slice of the platform (local indexing).
// The value shares cost slices with the shard; treat it as read-only.
func (s *Shard) Platform() core.Platform { return s.pl }

// Runtime returns the shard's live runtime.
func (s *Shard) Runtime() *live.Runtime { return s.rt }

// Tracker returns the shard's job-state store (shard-local job IDs and
// slave indices).
func (s *Shard) Tracker() *live.Tracker { return s.tracker }

// Load returns the shard's progress snapshot.
func (s *Shard) Load() live.Load { return s.rt.Load() }

// LiveSlaves returns the number of slaves not currently declared down.
// Every slave starts live; Router.SetSlaveLive changes the declaration.
func (s *Shard) LiveSlaves() int { return int(s.liveCount.Load()) }

// setSlaveLive flips one local slave's liveness declaration.
// Idempotent: re-declaring the current state is a no-op, so a noisy
// failure detector cannot drive the count negative or past m.
func (s *Shard) setSlaveLive(local int, up bool) {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	if local < 0 || local >= len(s.deadLocal) {
		return
	}
	switch {
	case up && s.deadLocal[local]:
		s.deadLocal[local] = false
		s.liveCount.Add(1)
	case !up && !s.deadLocal[local]:
		s.deadLocal[local] = true
		s.liveCount.Add(-1)
	}
}

// Result returns the shard's completed run. Call only after the cluster
// has drained.
func (s *Shard) Result() live.Result { return s.rt.Result() }

// Router is a running sharded cluster: the shards plus the placement
// state and the global job-ID table. The table (idx) is lock-free for
// readers — Job, ShardOf and Jobs never take a mutex. Writers split by
// mode: the direct (non-firehose) submission path and migration
// serialize on mu; the firehose path serializes only the placement
// decision on the narrow placeMu and fans the rest out over per-shard
// intake locks, so concurrent producers targeting different shards
// never contend. The per-shard runtimes do their own (finer-grained)
// locking.
type Router struct {
	shards    []*Shard
	placement Placement
	partition core.PartitionStrategy

	// idx is the chunked, atomically published global job table
	// (index.go): gid → (shard, runtime-local ID), plus the global-ID
	// allocator. Reads are lock-free.
	idx jobIndex
	// draining flips once under both submission locks; readers
	// (Draining, the firehose fast path) load it lock-free.
	draining atomic.Bool

	mu      sync.Mutex
	local2g [][]int // per shard: local job ID → global ID, -1 gaps
	staged  []int   // scratch: per-shard count of the batch being placed

	// migrations counts in-flight Migrate calls. A migration registers
	// itself under mu while not draining; Drain flips the flag and then
	// waits the group out before fanning shard drains, so every stolen
	// job has been re-homed (and its ref updated) before any master is
	// told to finish — no job can be stranded between shards.
	migrations sync.WaitGroup
	stolen     atomic.Int64 // total jobs migrated by Migrate

	// audit is the bounded decision ring (nil — recording a no-op —
	// unless Config.AuditDepth > 0); scoreBuf is its preallocated
	// per-Pick score buffer, guarded by mu like the rest of placement.
	audit    *obs.AuditRing
	scoreBuf []float64
	// onMigrate, if set (before Start; see OnMigrate), observes each
	// successful migration's realized size and wall latency.
	onMigrate func(moved int, latencySeconds float64)

	// Batched-admission scratch, all guarded by mu: loadsBuf backs
	// loadsInto, outBuf holds PickBatch's placements, shardBufs gathers
	// each shard's slice of a batch for direct admission, shardBase and
	// shardCursor map placement order back to runtime-local IDs.
	loadsBuf    []live.Load
	outBuf      []int
	shardBufs   [][]live.JobSpec
	shardBase   []int
	shardCursor []int

	// Firehose state (nil/unused without Config.Firehose). placeMu is
	// the concurrent ingest path's only cluster-wide lock, and it covers
	// nothing but the placement decision: the draining check, the
	// epoch-cached load snapshot, one PickBatch, the audit record and
	// the global-ID allocation. Local-ID prediction and slab fills
	// happen after it, under per-shard intake locks (intake.appendRun).
	// enqueues counts batches between that decision and their last slab
	// flush; Drain waits it out before closing the intake so the final
	// take sees every slab. The drivers run each shard's Wait so the
	// worlds execute while producers feed, and fhJoin collects them
	// once.
	fh          *intake
	placeMu     sync.Mutex
	enqueues    sync.WaitGroup
	fhStaged    []int       // per-shard count of the batch being placed
	fhScores    []float64   // audit score scratch (nil without auditing)
	fhLoads     []live.Load // epoch-cached load snapshot (see refreshLoads)
	fhLoadsLeft int         // jobs until the cache refreshes (one slab window)
	fhBatchPool sync.Pool   // *fhBatch scratch carried past placeMu
	fhStart     sync.Once
	fhJoin      sync.Once
	fhErrs      chan error
	fhErr       error
}

// fhBatch is one firehose batch's scratch: the placement vector and the
// per-shard bookkeeping a producer carries from the placement critical
// section into the per-shard append stage. Pooled so the steady-state
// ingest path allocates nothing.
type fhBatch struct {
	out    []int // placement per job, batch order
	counts []int // per shard: jobs this batch placed there
	bases  []int // per shard: the batch's runtime-local ID base
	cursor []int // per shard: scratch for index publication
}

// New partitions the platform, builds one live runtime per shard and
// assembles the router. Shards are not started; call Start (or let the
// first Wait do it).
func New(cfg Config) (*Router, error) {
	if cfg.NewScheduler == nil {
		return nil, fmt.Errorf("cluster: config needs a scheduler constructor")
	}
	k := cfg.Shards
	if k == 0 {
		k = 1
	}
	strategy := cfg.Partition
	if strategy == "" {
		strategy = core.PartitionStriped
	}
	placementName := cfg.Placement
	if placementName == "" {
		placementName = PlacementRoundRobin
	}
	placement, err := NewPlacement(placementName)
	if err != nil {
		return nil, err
	}
	if len(cfg.Sources) > 0 && k != 1 {
		return nil, fmt.Errorf("cluster: sources require a single shard (got %d): in-world submissions bypass the router", k)
	}
	if cfg.Firehose != nil && len(cfg.Sources) > 0 {
		return nil, fmt.Errorf("cluster: firehose and sources are mutually exclusive: the drain source must be each shard's only submitter")
	}
	parts, err := cfg.Platform.Partition(k, strategy)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	r := &Router{
		placement:   placement,
		partition:   strategy,
		staged:      make([]int, k),
		local2g:     make([][]int, k),
		loadsBuf:    make([]live.Load, k),
		shardBufs:   make([][]live.JobSpec, k),
		shardBase:   make([]int, k),
		shardCursor: make([]int, k),
	}
	if cfg.Firehose != nil {
		r.fh = newIntake(*cfg.Firehose, k)
		r.fhStaged = make([]int, k)
		r.fhLoads = make([]live.Load, k)
		r.fhBatchPool.New = func() any {
			return &fhBatch{
				counts: make([]int, k),
				bases:  make([]int, k),
				cursor: make([]int, k),
			}
		}
	}
	if cfg.AuditDepth > 0 {
		r.audit = obs.NewAuditRing(cfg.AuditDepth, k)
		r.scoreBuf = make([]float64, k)
		if r.fh != nil {
			r.fhScores = make([]float64, k)
		}
	}
	for i, part := range parts {
		tracker := live.NewTracker()
		obsFn := tracker.Observe
		if cfg.Observer != nil {
			shard, user, tr := i, cfg.Observer, tracker
			obsFn = func(ev live.Event) {
				tr.Observe(ev)
				user(shard, ev)
			}
		}
		lcfg := live.Config{
			Platform:    part.Platform,
			Scheduler:   cfg.NewScheduler(),
			Observer:    obsFn,
			EventLogCap: cfg.EventLogCap,
		}
		if cfg.World != nil {
			lcfg.World = cfg.World(i)
		}
		if i == 0 {
			lcfg.Sources = cfg.Sources
		}
		if r.fh != nil {
			shard := i
			lcfg.Sources = []func(*live.Source){func(src *live.Source) {
				r.fh.drainLoop(r, shard, src)
			}}
		}
		rt, err := live.New(lcfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		sh := &Shard{
			index:       i,
			slaves:      part.Slaves,
			pl:          part.Platform,
			rt:          rt,
			tracker:     tracker,
			nominalRate: shardNominalRate(part.Platform),
			deadLocal:   make([]bool, part.Platform.M()),
		}
		sh.liveCount.Store(int32(part.Platform.M()))
		r.shards = append(r.shards, sh)
	}
	return r, nil
}

// Start launches every shard's runtime. In firehose mode it also starts
// one driver goroutine per shard running the shard's Wait — a virtual
// world only executes inside Wait, so the drivers are what make the
// cluster serve while producers feed the intake. Drain joins them.
func (r *Router) Start() {
	for _, s := range r.shards {
		s.rt.Start()
	}
	if r.fh != nil {
		r.fhStart.Do(func() {
			r.fhErrs = make(chan error, len(r.shards))
			for _, s := range r.shards {
				go func(s *Shard) { r.fhErrs <- s.rt.Wait() }(s)
			}
		})
	}
}

// Shards returns the cluster's shards. The slice is shared; treat it as
// read-only.
func (r *Router) Shards() []*Shard { return r.shards }

// Placement returns the routing policy's name.
func (r *Router) Placement() string { return r.placement.Name() }

// Partition returns the partition strategy the cluster was built with.
func (r *Router) Partition() core.PartitionStrategy { return r.partition }

// Jobs returns the number of jobs routed so far. Lock-free: one atomic
// load of the global-ID allocator.
func (r *Router) Jobs() int {
	return r.idx.count()
}

// Submit places one job and returns its global ID.
func (r *Router) Submit(spec live.JobSpec) (int, error) {
	ids, err := r.SubmitBatch(spec, 1)
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// SubmitBatch places count identical jobs and returns their global IDs
// in placement order. Placement decisions are made per job (so
// least-loaded and het-aware spread a batch), but each shard receives
// its slice of the batch as a single batched admission — one runtime
// critical section per shard per batch, preserving the PR-4 ingest
// contract.
func (r *Router) SubmitBatch(spec live.JobSpec, count int) ([]int, error) {
	if count <= 0 {
		return nil, nil
	}
	if r.fh != nil {
		// Firehose mode: every admission goes through the intake (the
		// drain source must stay each shard's sole submitter), and the
		// batched path guarantees consecutive global IDs.
		base, err := r.submitBatched(nil, spec, count)
		if err != nil {
			return nil, err
		}
		ids := make([]int, count)
		for i := range ids {
			ids[i] = base + i
		}
		return ids, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining.Load() {
		return nil, ErrDraining
	}
	for i := range r.staged {
		r.staged[i] = 0
	}
	// One Load snapshot per shard per batch: placement sees consistent
	// loads plus its own staged decisions, and the routing hot path does
	// k mutex round-trips per batch instead of k per job.
	loads := r.Loads()
	// When auditing, one wall timestamp per batch (not per job) and the
	// global ID base every decision in this batch counts up from.
	var wall int64
	gidBase := r.idx.alloc(count)
	if r.audit != nil {
		wall = time.Now().UnixNano()
	}
	placements := make([]int, count)
	for i := range placements {
		if r.scoreBuf != nil {
			for j := range r.scoreBuf {
				r.scoreBuf[j] = math.NaN()
			}
		}
		s := r.placement.Pick(r.shards, loads, r.staged, spec, r.scoreBuf)
		if s < 0 || s >= len(r.shards) {
			panic(fmt.Sprintf("cluster: placement %s picked shard %d of %d", r.placement.Name(), s, len(r.shards)))
		}
		placements[i] = s
		r.staged[s]++
		if r.audit != nil {
			r.audit.Record(obs.Decision{
				Wall:   wall,
				Kind:   obs.DecisionPlace,
				Policy: r.placement.Name(),
				Job:    gidBase + i,
				From:   -1,
				To:     s,
				Scores: sanitizeScores(r.scoreBuf, s),
			})
		}
	}
	locals := make([][]int, len(r.shards))
	for s, n := range r.staged {
		if n > 0 {
			locals[s] = r.shards[s].rt.SubmitBatch(spec, n)
		}
	}
	gids := make([]int, count)
	cursor := make([]int, len(r.shards))
	for i, s := range placements {
		local := locals[s][cursor[s]]
		gids[i] = gidBase + i
		r.idx.set(gids[i], s, local)
		r.indexLocal(s, local, gids[i])
		cursor[s]++
	}
	return gids, nil
}

// SubmitRange places count identical jobs through the batched admission
// path and returns the first global ID; the batch occupies the
// consecutive range [base, base+count). One PickBatch call scores the
// whole batch, one decision is audited for it, and nothing per-job is
// allocated — the firehose's jobs-in-IDs-out contract.
func (r *Router) SubmitRange(spec live.JobSpec, count int) (int, error) {
	if count <= 0 {
		return 0, nil
	}
	return r.submitBatched(nil, spec, count)
}

// SubmitSpecs places a batch of heterogeneous jobs through the batched
// admission path and returns the first global ID (the batch occupies
// [base, base+len(specs))). The caller keeps ownership of specs; any
// IDs in them are ignored.
func (r *Router) SubmitSpecs(specs []live.JobSpec) (int, error) {
	if len(specs) == 0 {
		return 0, nil
	}
	return r.submitBatched(specs, live.JobSpec{}, len(specs))
}

// submitBatched is the shared batched-admission core behind SubmitRange
// and SubmitSpecs (and SubmitBatch in firehose mode): one PickBatch per
// batch, one audited decision amortized over the batch, global IDs
// assigned consecutively. In firehose mode the batch goes through the
// concurrent intake path (submitFirehose); otherwise each shard
// receives its slice of the batch as one direct batched admission under
// the router lock.
func (r *Router) submitBatched(specs []live.JobSpec, spec live.JobSpec, count int) (int, error) {
	if r.fh != nil {
		return r.submitFirehose(specs, spec, count)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining.Load() {
		return 0, ErrDraining
	}
	for i := range r.staged {
		r.staged[i] = 0
	}
	loads := r.loadsInto()
	if cap(r.outBuf) < count {
		r.outBuf = make([]int, count)
	}
	out := r.outBuf[:count]
	if r.scoreBuf != nil {
		for j := range r.scoreBuf {
			r.scoreBuf[j] = math.NaN()
		}
	}
	if specs != nil {
		spec = specs[0]
	}
	r.placement.PickBatch(r.shards, loads, r.staged, spec, count, out, r.scoreBuf)
	base := r.idx.alloc(count)
	if r.audit != nil {
		r.audit.Record(obs.Decision{
			Wall:    time.Now().UnixNano(),
			Kind:    obs.DecisionPlace,
			Policy:  r.placement.Name(),
			Job:     base,
			From:    -1,
			To:      out[0],
			Planned: count,
			N:       count,
			Scores:  sanitizeBatchScores(r.scoreBuf),
		})
	}
	if out[0] < 0 || out[0] >= len(r.shards) {
		panic(fmt.Sprintf("cluster: placement %s batch-picked shard %d of %d", r.placement.Name(), out[0], len(r.shards)))
	}
	for s, n := range r.staged {
		if n > 0 {
			if cap(r.shardBufs[s]) < n {
				r.shardBufs[s] = make([]live.JobSpec, 0, max(n, 256))
			}
			r.shardBufs[s] = r.shardBufs[s][:0]
		}
	}
	for i := 0; i < count; i++ {
		s := out[i]
		sp := spec
		if specs != nil {
			sp = specs[i]
		}
		r.shardBufs[s] = append(r.shardBufs[s], sp)
	}
	for s, n := range r.staged {
		r.shardCursor[s] = 0
		if n > 0 {
			r.shardBase[s] = r.shards[s].rt.SubmitSpecs(r.shardBufs[s])
		}
	}
	for i := 0; i < count; i++ {
		s := out[i]
		local := r.shardBase[s] + r.shardCursor[s]
		r.shardCursor[s]++
		r.idx.set(base+i, s, local)
		r.indexLocal(s, local, base+i)
	}
	return base, nil
}

// submitFirehose is the concurrent intake path: the only cluster-wide
// serialization a batch pays is the placement decision itself. The
// stages, in order:
//
//  1. reserve — block on the intake's depth bound, before any lock, so
//     backpressure never stalls lookups or other producers.
//  2. placeMu — the draining check, an epoch-cached load snapshot
//     (refreshed once per slab window, not re-read per batch), one
//     PickBatch, the audit record and the atomic global-ID range
//     allocation. Because every batch allocates its ID range inside
//     the same critical section that ordered its placement, ID order
//     is exactly arrival order — the sequencer contract the stream
//     endpoint's acks rely on.
//  3. per-shard appendRun — for each shard the batch touches, one
//     intake-lock hold reserves the shard's next runtime-local IDs and
//     appends the batch's specs in batch order. Reserving and
//     appending under the same shard lock is what keeps the drain
//     loop's local-ID prediction exact: a shard's queue order is its
//     local-ID order by construction, whatever the interleaving of
//     producers across shards.
//  4. publish — the global table entries are stored (lock-free) and
//     the batch's base returns to the caller. A concurrent Job lookup
//     between allocation and publication sees "queued", never
//     "unknown".
func (r *Router) submitFirehose(specs []live.JobSpec, spec live.JobSpec, count int) (int, error) {
	if err := r.fh.reserve(count); err != nil {
		return 0, err
	}
	b := r.fhBatchPool.Get().(*fhBatch)
	if cap(b.out) < count {
		b.out = make([]int, count)
	}
	out := b.out[:count]
	if specs != nil {
		spec = specs[0]
	}

	r.placeMu.Lock()
	if r.draining.Load() {
		r.placeMu.Unlock()
		r.fhBatchPool.Put(b)
		r.fh.release(count)
		return 0, ErrDraining
	}
	// Registering under placeMu while not draining is what lets Drain
	// wait out every in-flight append before closing the intake.
	r.enqueues.Add(1)
	if r.fhLoadsLeft <= 0 {
		r.refreshLoadsLocked()
	}
	r.fhLoadsLeft -= count
	for i := range r.fhStaged {
		r.fhStaged[i] = 0
	}
	if r.fhScores != nil {
		for j := range r.fhScores {
			r.fhScores[j] = math.NaN()
		}
	}
	r.placement.PickBatch(r.shards, r.fhLoads, r.fhStaged, spec, count, out, r.fhScores)
	if out[0] < 0 || out[0] >= len(r.shards) {
		panic(fmt.Sprintf("cluster: placement %s batch-picked shard %d of %d", r.placement.Name(), out[0], len(r.shards)))
	}
	base := r.idx.alloc(count)
	for s, n := range r.fhStaged {
		b.counts[s] = n
		// Keep the cached snapshot causal inside its window: later
		// batches see this batch's placements without re-reading loads.
		if n > 0 {
			r.fhLoads[s].Submitted += n
		}
	}
	if r.audit != nil {
		r.audit.Record(obs.Decision{
			Wall:    time.Now().UnixNano(),
			Kind:    obs.DecisionPlace,
			Policy:  r.placement.Name(),
			Job:     base,
			From:    -1,
			To:      out[0],
			Planned: count,
			N:       count,
			Scores:  sanitizeBatchScores(r.fhScores),
		})
	}
	r.placeMu.Unlock()

	// Per-shard stage: one intake-lock hold per touched shard reserves
	// its local-ID run and appends this batch's specs in batch order.
	// Producers whose batches land on disjoint shards run this stage
	// fully in parallel.
	for s, n := range b.counts {
		if n > 0 {
			b.bases[s] = r.fh.appendRun(s, n, out, specs, spec)
		}
	}
	// Publish the global table entries (lock-free stores). The i-th job
	// of the batch placed on shard s is the batch's cursor[s]-th job
	// there, so its runtime-local ID is the shard's reserved base plus
	// that cursor — the same arithmetic the drain loop's sole-submitter
	// invariant pins.
	for i := range b.cursor {
		b.cursor[i] = 0
	}
	for i, s := range out {
		r.idx.set(base+i, s, b.bases[s]+b.cursor[s])
		b.cursor[s]++
	}
	r.enqueues.Done()
	r.fhBatchPool.Put(b)
	return base, nil
}

// refreshLoadsLocked re-reads every shard's load into the epoch cache
// and folds in the intake backlog, arming the cache for one slab window
// of placements. Between refreshes, placement scores against the cache
// plus its own accumulated decisions — the snapshot drifts by at most
// one window from the runtimes' ground truth, which load-sensitive
// policies tolerate by design (they already raced completions under the
// old always-fresh snapshot). Caller holds placeMu.
func (r *Router) refreshLoadsLocked() {
	for i, s := range r.shards {
		r.fhLoads[i] = s.rt.Load()
		r.fhLoads[i].Submitted += int(r.fh.shards[i].queued.Load())
	}
	r.fhLoadsLeft = r.fh.slabSize
}

// loadsInto snapshots every shard's progress into the router's scratch
// (the placement path's Loads without the allocation). Caller holds
// r.mu; firehose batches use the epoch-cached snapshot instead (see
// refreshLoadsLocked).
func (r *Router) loadsInto() []live.Load {
	for i, s := range r.shards {
		r.loadsBuf[i] = s.rt.Load()
	}
	return r.loadsBuf
}

// sanitizeBatchScores prepares a PickBatch score snapshot for the
// audit: nil when the policy ranked nothing (the buffer is still all
// NaN sentinels), otherwise remaining NaN slots (shards the policy
// skipped as dead) become -1, as in sanitizeScores.
func sanitizeBatchScores(scores []float64) []float64 {
	if scores == nil {
		return nil
	}
	any := false
	for _, v := range scores {
		if !math.IsNaN(v) {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	for i, v := range scores {
		if math.IsNaN(v) {
			scores[i] = -1
		}
	}
	return scores
}

// sanitizeScores prepares a Pick score buffer for the audit: a policy
// that ranks nothing (round-robin, pinned) leaves the chosen shard's
// slot at the NaN sentinel, so the decision carries no scores at all;
// otherwise any shard the policy skipped (declared dead) has its NaN
// replaced by -1 — an impossible value for the non-negative real scores,
// and JSON-representable where NaN is not. The buffer is reused per
// Pick; the audit ring copies it on Record.
func sanitizeScores(scores []float64, chosen int) []float64 {
	if scores == nil || math.IsNaN(scores[chosen]) {
		return nil
	}
	for i, v := range scores {
		if math.IsNaN(v) {
			scores[i] = -1
		}
	}
	return scores
}

// Audit returns the decision-audit ring, or nil when auditing is off.
func (r *Router) Audit() *obs.AuditRing { return r.audit }

// OnMigrate registers an observer for successful migrations (realized
// size and wall latency) — the serving layer's migration-latency
// histogram. Set it before Start; it must be fast and must not call
// back into the Router.
func (r *Router) OnMigrate(fn func(moved int, latencySeconds float64)) {
	r.onMigrate = fn
}

// indexLocal records the reverse mapping local job ID → global ID for
// one shard, growing the table with -1 gaps (source-submitted jobs on a
// single-shard cluster occupy local IDs the router never assigned).
// Caller holds r.mu.
func (r *Router) indexLocal(shard, local, gid int) {
	t := r.local2g[shard]
	for len(t) <= local {
		t = append(t, -1)
	}
	t[local] = gid
	r.local2g[shard] = t
}

// Job returns a routed job's lifecycle with global identifiers: the ID
// is the global one and Slave (once dispatched) is the platform-global
// slave index. The lookup never takes a router lock: the global table
// resolves with atomic loads, so a million concurrent GET /jobs/{id}
// readers cost the ingest path nothing.
func (r *Router) Job(gid int) (live.JobInfo, bool) {
	shard, local, pending, routed := r.idx.lookup(gid)
	if !routed {
		return live.JobInfo{}, false
	}
	if pending {
		// ID allocated, entry not yet published (its producer is between
		// placement and publication): the router's accept is the accept —
		// report the job queued, as a lookup a moment later would.
		return live.JobInfo{ID: gid, State: live.StateQueued, Slave: -1}, true
	}
	sh := r.shards[shard]
	info, ok := sh.tracker.Job(local)
	if !ok {
		// Accepted but not yet observed by the shard's master: report it
		// queued rather than unknown — the router's accept is the accept.
		return live.JobInfo{ID: gid, State: live.StateQueued, Slave: -1}, true
	}
	if info.State == live.StateStolen {
		// Mid-migration window: the source master has retracted the job
		// but Migrate has not yet re-pointed the ref at its new home.
		// The job is accepted and will be served — report it queued, the
		// same answer a lookup a moment later (through the updated ref)
		// would give.
		return live.JobInfo{ID: gid, State: live.StateQueued, Slave: -1}, true
	}
	info.ID = gid
	if info.Slave >= 0 {
		info.Slave = sh.GlobalSlave(info.Slave)
	}
	return info, true
}

// ShardOf returns which shard a global job ID was placed on. Lock-free.
// During the sub-microsecond window between a batch's ID allocation and
// its table publication the placement is not yet knowable and ShardOf
// reports false — callers that learned the ID from a submission return
// or ack never see that window (publication happens before the return).
func (r *Router) ShardOf(gid int) (int, bool) {
	shard, _, pending, routed := r.idx.lookup(gid)
	if !routed || pending {
		return 0, false
	}
	return shard, true
}

// Loads snapshots every shard's progress, indexed by shard.
func (r *Router) Loads() []live.Load {
	out := make([]live.Load, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.rt.Load()
	}
	return out
}

// Pending returns the cluster-wide queue depth (accepted, undispatched
// jobs summed over shards, plus any intake backlog in firehose mode).
func (r *Router) Pending() int {
	total := 0
	for _, s := range r.shards {
		total += s.rt.Pending()
	}
	if r.fh != nil {
		total += r.fh.depth()
	}
	return total
}

// Draining reports whether Drain has begun. Lock-free.
func (r *Router) Draining() bool {
	return r.draining.Load()
}

// SetSlaveLive declares a platform-global slave up or down for
// placement and stealing. It is a declaration, not an enforcement: the
// shard's master keeps serving whatever it already holds (the paper's
// one-port master cannot recall an in-flight transfer), but placement
// stops targeting shards with no live slaves and the het-aware steal
// policy evacuates their queues. Returns false for an unknown slave.
func (r *Router) SetSlaveLive(global int, up bool) bool {
	for _, s := range r.shards {
		for local, g := range s.slaves {
			if g == global {
				s.setSlaveLive(local, up)
				return true
			}
		}
	}
	return false
}

// Stolen returns the total number of jobs migrated between shards.
func (r *Router) Stolen() int { return int(r.stolen.Load()) }

// Migrate steals up to n pending jobs from shard `from` and re-admits
// them on shard `to`, returning how many actually moved. The move is
// atomic from every observer's point of view:
//
//   - The source master retracts the jobs inside its own actor loop
//     (live.Runtime.StealPending), so a stolen job was never dispatched
//     at the source and can never be — no double-dispatch window.
//   - The global job table entry is atomically re-pointed (under its
//     chunk's write lock) in the same router critical section that
//     submits to the destination, so GET /jobs/{id} resolves to the old
//     home, then (briefly) to a "queued" placeholder while the source
//     tracker reports the job stolen, then to the new home — never to
//     "unknown". Readers stay lock-free throughout.
//   - Migration and Drain exclude each other through the migrations
//     WaitGroup: a migration only begins while not draining, and Drain
//     waits out in-flight migrations before any shard is drained, so a
//     stolen job is always re-homed before its new master is told to
//     finish.
//
// Jobs are re-admitted in their original submission order (StealPending
// returns newest-first; Migrate reverses), so the destination's FIFO
// treats them no worse than it would have fresh arrivals.
func (r *Router) Migrate(from, to, n int) int {
	if from == to || n <= 0 ||
		from < 0 || from >= len(r.shards) || to < 0 || to >= len(r.shards) {
		return 0
	}
	if r.fh != nil {
		// Firehose mode disables migration: local IDs are predicted at
		// enqueue time under the sole-submitter invariant, and a re-homed
		// job would make the destination's drain source no longer the
		// only submitter.
		return 0
	}
	r.mu.Lock()
	if r.draining.Load() {
		r.mu.Unlock()
		return 0
	}
	r.migrations.Add(1)
	r.mu.Unlock()
	defer r.migrations.Done()

	// The migration clock runs only when someone watches: latency spans
	// retraction through re-homing, dominated by the source master's
	// round-trip.
	var begin time.Time
	observed := r.audit != nil || r.onMigrate != nil
	if observed {
		begin = time.Now()
	}

	// Outside the router lock: StealPending blocks on the source master's
	// reply, and submissions must keep flowing while it does.
	jobs := r.shards[from].rt.StealPending(n)
	if len(jobs) == 0 {
		return 0
	}
	dst := r.shards[to].rt
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(jobs) - 1; i >= 0; i-- { // oldest first
		j := jobs[i]
		local := dst.Submit(j.Spec)
		gid := -1
		if t := r.local2g[from]; j.Local >= 0 && j.Local < len(t) {
			gid = t[j.Local]
			if gid >= 0 {
				t[j.Local] = -1
			}
		}
		if gid >= 0 {
			// Re-point the global table entry at the job's new home under
			// the owning chunk's narrow write lock; concurrent lock-free
			// readers see the old home, then the new one — never garbage.
			r.idx.repoint(gid, to, local)
			r.indexLocal(to, local, gid)
		}
		r.stolen.Add(1)
	}
	if observed {
		latency := time.Since(begin).Seconds()
		r.audit.Record(obs.Decision{
			Wall:           begin.UnixNano(),
			Kind:           obs.DecisionMigrate,
			Job:            -1,
			From:           from,
			To:             to,
			Planned:        n,
			N:              len(jobs),
			LatencySeconds: latency,
		})
		if r.onMigrate != nil {
			r.onMigrate(len(jobs), latency)
		}
	}
	return len(jobs)
}

// Drain rejects further submissions, then drains every shard
// concurrently and joins them. It blocks until all shards have fully
// drained and returns the first shard error, if any. Safe to call more
// than once.
func (r *Router) Drain() error {
	// Flip the flag under both submission locks: a direct submission
	// holding mu (or a firehose batch inside its placement section)
	// completes first, and everything after sees the flag. The two locks
	// are never held together anywhere else, so the nesting is safe.
	r.mu.Lock()
	r.placeMu.Lock()
	r.draining.Store(true)
	r.placeMu.Unlock()
	r.mu.Unlock()
	// Migrations registered before the flag flipped may still be
	// re-homing stolen jobs; new ones can no longer begin. Wait them out
	// so every job is on its final shard before any master is told to
	// finish — otherwise a job stolen from a draining shard could be
	// submitted to a master that already exited.
	r.migrations.Wait()
	if r.fh != nil {
		// Wait out in-flight firehose batches (registered under placeMu
		// before the flag flipped): every one of their slab flushes
		// happens-before the close below, so the drain sources' final
		// post-close take observes every enqueued job. Producers still
		// blocked in reserve never registered — close wakes them with
		// ErrDraining.
		r.enqueues.Wait()
		// Firehose drain: make sure the shard drivers exist, close the
		// intake (waking blocked producers with ErrDraining and parked
		// drain sources), and join the drivers. Each drain source submits
		// its remaining slabs and then drains its runtime from inside the
		// world — the only legal drain on a virtual clock.
		r.Start()
		r.fh.close()
		return r.joinFirehose()
	}
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			s.rt.Drain()
			errs[i] = s.rt.Wait()
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// joinFirehose collects the shard drivers' results exactly once.
func (r *Router) joinFirehose() error {
	r.fhJoin.Do(func() {
		var errs []error
		for range r.shards {
			if err := <-r.fhErrs; err != nil {
				errs = append(errs, err)
			}
		}
		r.fhErr = errors.Join(errs...)
	})
	return r.fhErr
}

// Wait blocks until every shard's run completes without initiating a
// drain — for clusters whose sources end the run from inside the world
// (the virtual-clock conformance path).
func (r *Router) Wait() error {
	if r.fh != nil {
		// The shard drivers own the runtimes' Wait in firehose mode (a
		// second concurrent Wait on a virtual world is not allowed);
		// joining them is the wait. It returns once Drain has closed the
		// intake and every shard has finished.
		r.Start()
		return r.joinFirehose()
	}
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *Shard) {
			defer wg.Done()
			errs[i] = s.rt.Wait()
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}
