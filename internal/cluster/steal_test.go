package cluster

// The work-stealing correctness suite. Three layers of contract:
//
//  1. Policy planning is pure and sane (unit tests on synthetic loads —
//     the same replay surface the deterministic StealStudy uses).
//  2. Migration preserves every job exactly once under any interleaving
//     of submissions, steals and drain (property + race tests; run
//     under -race in CI).
//  3. A rebalancer that never fires — or fires against a virtual-clock
//     cluster — leaves the PR-5 behavior bit-identical (steal-rate-0
//     conformance).

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
)

// --- policy registry -------------------------------------------------

func TestStealPolicyRegistry(t *testing.T) {
	names := StealPolicyNames()
	if len(names) != 3 || names[0] != StealNone {
		t.Fatalf("policy names %v: want none first (base case for studies)", names)
	}
	for _, name := range names {
		if err := ValidateStealPolicy(name); err != nil {
			t.Fatalf("registered policy %q rejected: %v", name, err)
		}
		p, err := NewStealPolicy(name)
		if err != nil || p.Name() != name {
			t.Fatalf("NewStealPolicy(%q) = %v, %v", name, p, err)
		}
	}
	if err := ValidateStealPolicy("aggressive"); err == nil {
		t.Fatal("unknown policy validated")
	}
	if _, err := NewStealPolicy("aggressive"); err == nil {
		t.Fatal("unknown policy constructed")
	}
}

func TestStealNonePlansNothing(t *testing.T) {
	p, _ := NewStealPolicy(StealNone)
	loads := []live.Load{{Submitted: 100, Admitted: 100}, {}}
	if plan := p.Plan(loads, []float64{1, 1}); len(plan) != 0 {
		t.Fatalf("none planned %v", plan)
	}
}

// pendingLoads builds synthetic snapshots with the given queue depths
// and nothing dispatched — the worst-case burst the fixpoint study uses.
func pendingLoads(depths ...int) []live.Load {
	loads := make([]live.Load, len(depths))
	for i, n := range depths {
		loads[i] = live.Load{Submitted: n, Admitted: n}
	}
	return loads
}

// applyPlan executes a plan on a local copy of the depths, failing the
// test on any decision that is out of range, self-directed, oversized
// for its source, or aimed at a dead shard.
func applyPlan(t *testing.T, plan []StealDecision, depths []int, rates []float64) []int {
	t.Helper()
	out := append([]int(nil), depths...)
	for _, d := range plan {
		if d.From < 0 || d.From >= len(out) || d.To < 0 || d.To >= len(out) || d.From == d.To {
			t.Fatalf("malformed decision %+v", d)
		}
		if d.N <= 0 || d.N > out[d.From] {
			t.Fatalf("decision %+v oversteals (source holds %d)", d, out[d.From])
		}
		if rates[d.To] <= 0 {
			t.Fatalf("decision %+v targets a dead shard", d)
		}
		out[d.From] -= d.N
		out[d.To] += d.N
	}
	return out
}

func TestStealThresholdPlan(t *testing.T) {
	p, _ := NewStealPolicy(StealThreshold)

	// A fully skewed 4-shard burst balances to within the slack in one
	// pass, conserving the total.
	rates := []float64{1, 1, 1, 1}
	final := applyPlan(t, p.Plan(pendingLoads(10, 0, 0, 0), rates), []int{10, 0, 0, 0}, rates)
	total, lo, hi := 0, final[0], final[0]
	for _, n := range final {
		total += n
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if total != 10 {
		t.Fatalf("plan does not conserve jobs: %v", final)
	}
	if hi-lo >= 2 {
		t.Fatalf("one pass left spread %d (depths %v), want < slack", hi-lo, final)
	}

	// Below the slack nothing moves: a single-job seesaw never ping-pongs.
	if plan := p.Plan(pendingLoads(1, 0), []float64{1, 1}); len(plan) != 0 {
		t.Fatalf("sub-slack gap planned %v", plan)
	}
	if plan := p.Plan(pendingLoads(2, 0), []float64{1, 1}); len(plan) != 1 || plan[0] != (StealDecision{From: 0, To: 1, N: 1}) {
		t.Fatalf("gap-2 plan %v, want one 1-job move", plan)
	}

	// A dead shard (rate 0) is never a destination, even when it is the
	// shallowest queue.
	if plan := p.Plan(pendingLoads(10, 0), []float64{1, 0}); len(plan) != 0 {
		t.Fatalf("planned into a dead shard: %v", plan)
	}

	// Dispatched work is untouchable: only the pending remainder moves.
	loads := []live.Load{{Submitted: 10, Admitted: 10, Dispatched: 9}, {}}
	for _, d := range p.Plan(loads, []float64{1, 1}) {
		if d.From == 0 && d.N > 1 {
			t.Fatalf("planned %d jobs out of a depth-1 queue", d.N)
		}
	}
}

func TestStealHetAwarePlan(t *testing.T) {
	p, _ := NewStealPolicy(StealHetAware)

	// ECT equalization: 12 jobs on a rate-1 shard next to an idle rate-2
	// shard → n = (2·12 − 1·0)/(1+2) = 8 moves, leaving ECT 4 vs 4.
	plan := p.Plan(pendingLoads(12, 0), []float64{1, 2})
	if len(plan) != 1 || plan[0] != (StealDecision{From: 0, To: 1, N: 8}) {
		t.Fatalf("equalization plan %v, want one 8-job move 0→1", plan)
	}

	// The move is capped by the pending queue: same outstanding, but 6 of
	// the 12 already dispatched.
	loads := []live.Load{{Submitted: 12, Admitted: 12, Dispatched: 6}, {}}
	plan = p.Plan(loads, []float64{1, 2})
	if len(plan) != 1 || plan[0].N != 6 {
		t.Fatalf("capped plan %v, want a 6-job move", plan)
	}

	// A dead shard with backlog has infinite ECT: its queue is evacuated
	// entirely, regardless of how the destination compares.
	plan = p.Plan(pendingLoads(5, 0), []float64{0, 1})
	if len(plan) != 1 || plan[0] != (StealDecision{From: 0, To: 1, N: 5}) {
		t.Fatalf("evacuation plan %v, want all 5 jobs 0→1", plan)
	}

	// Two dead shards: backlog has nowhere to go, so nothing is planned
	// (never a rate-0 destination).
	if plan := p.Plan(pendingLoads(5, 3), []float64{0, 0}); len(plan) != 0 {
		t.Fatalf("planned with no live destination: %v", plan)
	}

	// Balanced ECTs plan nothing.
	if plan := p.Plan(pendingLoads(4, 8), []float64{1, 2}); len(plan) != 0 {
		t.Fatalf("balanced cluster planned %v", plan)
	}
}

// --- migration through a real cluster --------------------------------

// stealCluster builds a started cluster whose jobs cost ~5ms of wall
// time each (c=5, p=5 at speedup 1000): slow enough that a burst is
// still pending when a steal lands, fast enough to drain in tens of ms.
func stealCluster(t *testing.T, m, shards int, placement string) *Router {
	t.Helper()
	c := make([]float64, m)
	p := make([]float64, m)
	for i := range c {
		c[i], p[i] = 5, 5
	}
	r, err := New(Config{
		Platform:     core.NewPlatform(c, p),
		NewScheduler: newLS,
		Shards:       shards,
		Placement:    placement,
		World:        func(int) live.World { return live.NewRealTime(1000) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	return r
}

func TestMigrateMovesPendingJobs(t *testing.T) {
	r := stealCluster(t, 4, 2, PlacementPinned)
	const jobs = 20
	ids, err := r.SubmitBatch(live.JobSpec{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, gid := range ids {
		if s, _ := r.ShardOf(gid); s != 0 {
			t.Fatalf("pinned placement put job %d on shard %d", gid, s)
		}
	}

	moved := r.Migrate(0, 1, 8)
	if moved == 0 {
		t.Fatal("migration moved nothing out of a 20-job backlog")
	}
	if r.Stolen() != moved {
		t.Fatalf("Stolen() = %d, Migrate returned %d", r.Stolen(), moved)
	}
	// Every global ID still resolves mid-migration — never "unknown".
	for _, gid := range ids {
		if _, ok := r.Job(gid); !ok {
			t.Fatalf("job %d unresolvable after migration", gid)
		}
	}

	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}

	// Every job done exactly once, served by a slave its final shard owns.
	onShard1 := 0
	for _, gid := range ids {
		info, ok := r.Job(gid)
		if !ok || info.State != live.StateDone {
			t.Fatalf("job %d after drain: ok=%v %+v", gid, ok, info)
		}
		si, _ := r.ShardOf(gid)
		if si == 1 {
			onShard1++
		}
		owns := false
		for _, s := range r.Shards()[si].Slaves() {
			if s == info.Slave {
				owns = true
			}
		}
		if !owns {
			t.Fatalf("job %d ran on slave %d, not owned by its shard %d", gid, info.Slave, si)
		}
	}
	if onShard1 != moved {
		t.Fatalf("%d jobs ended on shard 1, %d migrated", onShard1, moved)
	}

	// Per-shard accounting: the source retracted what moved, the
	// destination absorbed it, and net populations sum to the total.
	loads := r.Loads()
	if loads[0].Retracted != moved || loads[0].Completed != jobs-moved {
		t.Fatalf("source load %+v after migrating %d", loads[0], moved)
	}
	if loads[1].Submitted != moved || loads[1].Completed != moved {
		t.Fatalf("destination load %+v after migrating %d", loads[1], moved)
	}
	net := 0
	for _, l := range loads {
		if l.Completed+l.Retracted != l.Submitted {
			t.Fatalf("shard identity broken: %+v", l)
		}
		net += l.Submitted - l.Retracted
	}
	if net != jobs {
		t.Fatalf("net population %d, want %d", net, jobs)
	}
}

func TestMigrateRefusals(t *testing.T) {
	r := stealCluster(t, 4, 2, PlacementPinned)
	if _, err := r.SubmitBatch(live.JobSpec{}, 5); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ from, to, n int }{
		{0, 0, 3},  // self-steal
		{0, 1, 0},  // nothing asked
		{0, 1, -2}, // negative
		{-1, 1, 3}, // out of range
		{0, 9, 3},  // out of range
	} {
		if got := r.Migrate(c.from, c.to, c.n); got != 0 {
			t.Fatalf("Migrate(%d,%d,%d) = %d, want 0", c.from, c.to, c.n, got)
		}
	}
	if r.Stolen() != 0 {
		t.Fatalf("refused migrations counted: %d", r.Stolen())
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := r.Migrate(0, 1, 3); got != 0 {
		t.Fatalf("Migrate after drain = %d, want 0", got)
	}
}

// TestMigrationInvariants is the property test: randomized interleavings
// of concurrent submissions and migrations (seeded, so failures replay),
// then a drain, after which no job may be lost, duplicated or
// double-dispatched. Run under -race this also exercises the router
// table against the steal path.
func TestMigrationInvariants(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			r := stealCluster(t, 6, 3, PlacementPinned)

			var mu sync.Mutex
			var all []int
			var wg sync.WaitGroup
			// Two submitters race three thieves.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(rng *rand.Rand) {
					defer wg.Done()
					for b := 0; b < 8; b++ {
						ids, err := r.SubmitBatch(live.JobSpec{}, 1+rng.Intn(10))
						if err != nil {
							t.Errorf("submit: %v", err)
							return
						}
						mu.Lock()
						all = append(all, ids...)
						mu.Unlock()
						time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					}
				}(rand.New(rand.NewSource(rng.Int63())))
			}
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(rng *rand.Rand) {
					defer wg.Done()
					for i := 0; i < 12; i++ {
						from, to := rng.Intn(3), rng.Intn(3)
						r.Migrate(from, to, 1+rng.Intn(6))
						time.Sleep(time.Duration(rng.Intn(2)) * time.Millisecond)
					}
				}(rand.New(rand.NewSource(rng.Int63())))
			}
			wg.Wait()
			if err := r.Drain(); err != nil {
				t.Fatal(err)
			}

			if len(all) != r.Jobs() {
				t.Fatalf("routed %d, submitted %d", r.Jobs(), len(all))
			}
			for _, gid := range all {
				info, ok := r.Job(gid)
				if !ok || info.State != live.StateDone {
					t.Fatalf("job %d: ok=%v %+v", gid, ok, info)
				}
			}
			// Cardinality: each job admitted net-once and completed once
			// across the cluster, no matter how many times it was stolen.
			sub, ret, comp, disp := 0, 0, 0, 0
			for _, l := range r.Loads() {
				if l.Completed+l.Retracted != l.Submitted {
					t.Fatalf("shard identity broken: %+v", l)
				}
				sub += l.Submitted
				ret += l.Retracted
				comp += l.Completed
				disp += l.Dispatched
			}
			if sub-ret != len(all) || comp != len(all) || disp != len(all) {
				t.Fatalf("cardinality: net=%d completed=%d dispatched=%d, want %d (stolen %d)",
					sub-ret, comp, disp, len(all), r.Stolen())
			}
			if ret != r.Stolen() {
				t.Fatalf("retractions %d != Stolen() %d", ret, r.Stolen())
			}
		})
	}
}

// TestDrainVsStealRace pins the regression the migrations WaitGroup
// exists for: migrations racing Drain must either complete their
// re-homing before any master exits or refuse entirely — never strand a
// job between shards, never deadlock.
func TestDrainVsStealRace(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		r := stealCluster(t, 6, 3, PlacementPinned)
		const jobs = 45
		if _, err := r.SubmitBatch(live.JobSpec{}, jobs); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					r.Migrate(0, 1+w%2, 3)
					// Pace the spin just enough that the clock-driven
					// masters keep getting scheduled; the steal still
					// races every phase of the drain.
					time.Sleep(100 * time.Microsecond)
				}
			}(w)
		}
		if err := r.Drain(); err != nil {
			t.Fatalf("iter %d: drain: %v", iter, err)
		}
		close(stop)
		wg.Wait()

		net, comp := 0, 0
		for _, l := range r.Loads() {
			if l.Completed+l.Retracted != l.Submitted {
				t.Fatalf("iter %d: shard identity broken: %+v", iter, l)
			}
			net += l.Submitted - l.Retracted
			comp += l.Completed
		}
		if net != jobs || comp != jobs {
			t.Fatalf("iter %d: net=%d completed=%d of %d (stolen %d)", iter, net, comp, jobs, r.Stolen())
		}
		if got := r.Migrate(0, 1, 3); got != 0 {
			t.Fatalf("iter %d: Migrate after drain moved %d", iter, got)
		}
	}
}

// --- rebalancer lifecycle --------------------------------------------

func TestRebalancerMovesSkewedBacklog(t *testing.T) {
	r := stealCluster(t, 6, 3, PlacementPinned)
	policy, _ := NewStealPolicy(StealThreshold)
	b := NewRebalancer(r, policy, 2*time.Millisecond)
	if b.Policy() != StealThreshold || b.Interval() != 2*time.Millisecond {
		t.Fatalf("rebalancer config %q %v", b.Policy(), b.Interval())
	}
	b.Start()
	b.Start() // idempotent
	if _, err := r.SubmitBatch(live.JobSpec{}, 90); err != nil {
		t.Fatal(err)
	}
	// Let a few passes fire against the pinned backlog.
	deadline := time.Now().Add(2 * time.Second)
	for b.Moved() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	b.Stop()
	b.Stop() // idempotent
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if b.Passes() == 0 || b.Moved() == 0 {
		t.Fatalf("rebalancer idle against a fully pinned backlog: passes=%d moved=%d", b.Passes(), b.Moved())
	}
	if int64(r.Stolen()) != b.Moved() {
		t.Fatalf("router stolen %d, rebalancer moved %d", r.Stolen(), b.Moved())
	}
	net, comp := 0, 0
	for _, l := range r.Loads() {
		net += l.Submitted - l.Retracted
		comp += l.Completed
	}
	if net != 90 || comp != 90 {
		t.Fatalf("net=%d completed=%d of 90", net, comp)
	}
	// Stealing spread real work: the destinations completed some of it.
	if loads := r.Loads(); loads[1].Completed+loads[2].Completed == 0 {
		t.Fatalf("nothing completed off the pinned shard: %+v", loads)
	}
}

func TestRebalanceOnceNilAndStopWithoutStart(t *testing.T) {
	r := stealCluster(t, 4, 2, PlacementRoundRobin)
	if got := r.RebalanceOnce(nil); got != 0 {
		t.Fatalf("RebalanceOnce(nil) = %d", got)
	}
	policy, _ := NewStealPolicy(StealNone)
	b := NewRebalancer(r, policy, 0)
	if b.Interval() <= 0 {
		t.Fatalf("default interval %v", b.Interval())
	}
	b.Stop() // without Start: no-op
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
}

// --- steal-rate-0 conformance ----------------------------------------

// TestStealRateZeroVirtualConformance extends the conformance contract
// through the rebalancing layer: a virtual-clock cluster hammered by
// concurrent RebalanceOnce passes still reproduces the discrete-event
// engine bit for bit, and steals exactly zero jobs. Under vclock the
// steal path is structurally closed — StealPending refuses on virtual
// worlds, and a one-shard cluster gives a thief no pair to trade
// between — so the rebalancer must be a pure no-op, not merely a rare
// one.
func TestStealRateZeroVirtualConformance(t *testing.T) {
	tasks := core.Bag(24)
	threshold, _ := NewStealPolicy(StealThreshold)
	hetAware, _ := NewStealPolicy(StealHetAware)
	for plName, pl := range conformancePlatforms() {
		for _, name := range sched.ExtendedNames() {
			label := plName + "/" + name
			des, err := sim.Simulate(pl, sched.New(name), tasks)
			if err != nil {
				t.Fatalf("%s engine: %v", label, err)
			}

			inst := core.NewInstance(pl, tasks)
			r, err := New(Config{
				Platform:     pl,
				NewScheduler: func() sim.Scheduler { return sched.New(name) },
				Shards:       1,
				World:        func(int) live.World { return live.NewVirtual() },
				Sources: []func(*live.Source){func(src *live.Source) {
					for _, task := range inst.Tasks {
						if task.Release > src.Now() {
							src.SleepUntil(task.Release)
						}
						src.Submit(live.JobSpec{CommScale: task.CommScale, CompScale: task.CompScale})
					}
					src.Drain()
				}},
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					r.RebalanceOnce(threshold)
					r.RebalanceOnce(hetAware)
				}
			}()
			r.Start()
			err = r.Wait()
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}

			if r.Stolen() != 0 {
				t.Fatalf("%s: virtual cluster stole %d jobs", label, r.Stolen())
			}
			lv := r.Shards()[0].Result().Schedule
			if len(des.Records) != len(lv.Records) {
				t.Fatalf("%s: engine %d records, cluster %d", label, len(des.Records), len(lv.Records))
			}
			for i := range des.Records {
				if des.Records[i] != lv.Records[i] {
					t.Fatalf("%s task %d:\n  engine  %+v\n  cluster %+v", label, i, des.Records[i], lv.Records[i])
				}
			}
		}
	}
}

// --- placement under churn -------------------------------------------

// TestPlacementSkipsDeadShards drives slave liveness from a scenario
// timeline (the same Fail/Leave/Recover vocabulary the engine's churn
// scenarios use) and pins that no placement policy routes new work to a
// shard with zero live slaves — and that a total blackout falls back to
// accepting rather than refusing.
func TestPlacementSkipsDeadShards(t *testing.T) {
	// Striped over 3 shards, m=6: shard 1 owns global slaves 1 and 4.
	timeline := scenario.Scenario{Events: []scenario.Event{
		scenario.FailAt(0, 1),
		scenario.LeaveAt(0, 4),
	}}.Timeline()

	for _, placement := range PlacementNames() {
		r := stealCluster(t, 6, 3, placement)
		for _, ev := range timeline {
			up := ev.Kind == scenario.SlaveRecover
			if !r.SetSlaveLive(ev.Slave, up) {
				t.Fatalf("%s: unknown slave %d in timeline", placement, ev.Slave)
			}
		}
		if got := r.Shards()[1].LiveSlaves(); got != 0 {
			t.Fatalf("%s: shard 1 has %d live slaves after the kill timeline", placement, got)
		}

		ids, err := r.SubmitBatch(live.JobSpec{}, 30)
		if err != nil {
			t.Fatal(err)
		}
		for _, gid := range ids {
			if s, _ := r.ShardOf(gid); s == 1 {
				t.Fatalf("%s: job %d placed on the dead shard", placement, gid)
			}
		}

		// Recovery: the shard is targetable again (pinned only ever uses
		// the lowest live shard, so assert via liveness, not traffic).
		if !r.SetSlaveLive(1, true) {
			t.Fatal("recover rejected")
		}
		if got := r.Shards()[1].LiveSlaves(); got != 1 {
			t.Fatalf("%s: shard 1 has %d live slaves after recovery", placement, got)
		}

		// Total blackout: declaring every slave down must not wedge
		// admission — placement falls back to ignoring liveness (the
		// masters still hold whatever the detector is wrong about).
		for g := 0; g < 6; g++ {
			r.SetSlaveLive(g, false)
		}
		if _, err := r.Submit(live.JobSpec{}); err != nil {
			t.Fatalf("%s: blackout submission refused: %v", placement, err)
		}
		for g := 0; g < 6; g++ {
			r.SetSlaveLive(g, true)
		}
		if err := r.Drain(); err != nil {
			t.Fatalf("%s: drain: %v", placement, err)
		}
	}

	// Unknown slaves are reported, not ignored silently.
	r := stealCluster(t, 4, 2, PlacementRoundRobin)
	if r.SetSlaveLive(99, false) {
		t.Fatal("unknown slave accepted")
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
}
