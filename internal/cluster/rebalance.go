package cluster

// Cross-shard work stealing. Sharding buys ingest throughput at the
// price of myopia: each master optimizes its slice in isolation, so a
// skewed placement (or a placement policy misled by stale load
// snapshots, or slaves dying under one master) leaves some ports
// saturated while others idle. The Rebalancer closes that gap from the
// outside: it periodically snapshots every shard's lock-free Load
// counters, asks a pluggable StealPolicy which queues should shed work
// to which, and executes the plan through Router.Migrate — retract from
// the source master's actor, re-admit at the destination, re-point the
// global job table, all without pausing ingest.
//
// Stealing takes the YOUNGEST pending work (the back of the source's
// FIFO): the jobs the owner is about to dispatch keep their position,
// and the migrated jobs are exactly the ones that would have waited
// longest — the classic work-stealing-deque discipline applied across
// masters. A cluster with the rebalancer disabled (policy "none" or no
// rebalancer at all) is bit-identical to the PR-5 cluster: the steal
// path adds no locks, no messages and no state transitions until the
// first Migrate call, which is what the steal-rate-0 conformance suite
// pins.

import (
	"fmt"
	"log/slog"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/live"
	"repro/internal/obs"
)

// StealDecision is one planned migration: move N pending jobs from
// shard From to shard To.
type StealDecision struct {
	From int `json:"from"`
	To   int `json:"to"`
	N    int `json:"n"`
}

// StealPolicy plans migrations from a consistent pair of snapshots:
// loads[i] is shard i's progress and rates[i] its estimated service
// rate in tasks per model second (0 for a shard with no live slaves).
// Plan must be a pure function of its arguments — the deterministic
// StealStudy replays policies on synthetic loads — and must never plan
// to move more than loads[i].QueueDepth() jobs out of shard i: only
// pending (undispatched) work can be retracted.
type StealPolicy interface {
	// Name returns the registry name.
	Name() string
	// Plan returns the migrations to attempt this pass, in execution
	// order. An empty plan means the cluster is balanced.
	Plan(loads []live.Load, rates []float64) []StealDecision
}

// Registered steal policy names.
const (
	// StealNone plans nothing: the explicit "stealing off" policy, so a
	// configuration can say so rather than omit the rebalancer.
	StealNone = "none"
	// StealThreshold balances queue depths: while the deepest and
	// shallowest pending queues differ by at least the slack (2), move
	// half the gap. Speed-oblivious — it equalizes backlog counts, not
	// completion times — which is the right default when shards are
	// homogeneous or speeds are unknown.
	StealThreshold = "threshold"
	// StealHetAware balances expected completion times: it moves jobs
	// from the shard with the largest outstanding/rate ratio to the one
	// with the smallest, sizing the move to equalize the two ratios.
	// Rates come from the same SO-LS estimator het-aware placement uses
	// (learned throughput once a shard has completed enough jobs,
	// nominal cost-vector rate before that, scaled by the live-slave
	// fraction), so a dead shard — rate 0, ECT infinite — is evacuated
	// entirely.
	StealHetAware = "het-aware"
)

// StealPolicyNames lists the registered policies in presentation order.
func StealPolicyNames() []string {
	return []string{StealNone, StealThreshold, StealHetAware}
}

// ValidateStealPolicy rejects unknown steal policy names.
func ValidateStealPolicy(name string) error {
	for _, n := range StealPolicyNames() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("cluster: unknown steal policy %q (valid: %s)", name, strings.Join(StealPolicyNames(), ", "))
}

// NewStealPolicy constructs a registered policy by name.
func NewStealPolicy(name string) (StealPolicy, error) {
	switch name {
	case StealNone:
		return stealNone{}, nil
	case StealThreshold:
		return stealThreshold{slack: 2}, nil
	case StealHetAware:
		return stealHetAware{}, nil
	}
	return nil, ValidateStealPolicy(name)
}

type stealNone struct{}

func (stealNone) Name() string                                { return StealNone }
func (stealNone) Plan([]live.Load, []float64) []StealDecision { return nil }

type stealThreshold struct {
	// slack is the minimum queue-depth gap worth acting on. Below it the
	// cluster is considered balanced: with slack 2 a single-job seesaw
	// (depths 1 and 0) never ping-pongs.
	slack int
}

func (stealThreshold) Name() string { return StealThreshold }

// Plan repeatedly pairs the deepest pending queue with the shallowest
// live one and moves half the gap, simulating each move on its local
// copy of the depths so one pass can fix a multi-shard imbalance. The
// loop is bounded by the shard count: each iteration strictly shrinks
// the maximum gap, and k pairings are plenty for one pass — the next
// tick sees fresh loads anyway.
func (p stealThreshold) Plan(loads []live.Load, rates []float64) []StealDecision {
	k := len(loads)
	depth := make([]int, k)
	for i, l := range loads {
		depth[i] = l.QueueDepth()
	}
	var plan []StealDecision
	for iter := 0; iter < k; iter++ {
		hi, lo := -1, -1
		for i := 0; i < k; i++ {
			if depth[i] > 0 && (hi < 0 || depth[i] > depth[hi]) {
				hi = i
			}
			if rates[i] > 0 && (lo < 0 || depth[i] < depth[lo]) {
				lo = i
			}
		}
		if hi < 0 || lo < 0 || hi == lo || depth[hi]-depth[lo] < p.slack {
			break
		}
		n := (depth[hi] - depth[lo]) / 2
		if n <= 0 {
			break
		}
		plan = append(plan, StealDecision{From: hi, To: lo, N: n})
		depth[hi] -= n
		depth[lo] += n
	}
	return plan
}

type stealHetAware struct{}

func (stealHetAware) Name() string { return StealHetAware }

// Plan equalizes expected completion times. For the worst (largest
// outstanding/rate) and best shards, moving n jobs equalizes their ECTs
// when (o_hi - n)/r_hi = (o_lo + n)/r_lo, i.e.
//
//	n = (r_lo·o_hi − r_hi·o_lo) / (r_hi + r_lo)
//
// capped by the source's pending queue (dispatched work cannot move).
// A dead source (rate 0, infinite ECT) degenerates to n = o_hi: the
// formula evacuates its whole queue. Like the threshold policy, the
// pass simulates its own moves and is bounded by the shard count.
func (stealHetAware) Plan(loads []live.Load, rates []float64) []StealDecision {
	k := len(loads)
	out := make([]float64, k)
	depth := make([]int, k)
	for i, l := range loads {
		out[i] = float64(l.Outstanding())
		depth[i] = l.QueueDepth()
	}
	ect := func(i int) float64 {
		if rates[i] > 0 {
			return out[i] / rates[i]
		}
		if out[i] > 0 {
			return math.Inf(1)
		}
		return 0
	}
	var plan []StealDecision
	for iter := 0; iter < k; iter++ {
		hi, lo := -1, -1
		for i := 0; i < k; i++ {
			if depth[i] > 0 && (hi < 0 || ect(i) > ect(hi)) {
				hi = i
			}
			if rates[i] > 0 && (lo < 0 || ect(i) < ect(lo)) {
				lo = i
			}
		}
		if hi < 0 || lo < 0 || hi == lo || !(ect(hi) > ect(lo)) {
			break
		}
		var n int
		if rates[hi] <= 0 {
			n = depth[hi]
		} else {
			n = int((rates[lo]*out[hi] - rates[hi]*out[lo]) / (rates[hi] + rates[lo]))
		}
		if n > depth[hi] {
			n = depth[hi]
		}
		if n <= 0 {
			break
		}
		plan = append(plan, StealDecision{From: hi, To: lo, N: n})
		out[hi] -= float64(n)
		out[lo] += float64(n)
		depth[hi] -= n
		depth[lo] += n
	}
	return plan
}

// RebalanceOnce runs one planning pass and executes it, returning how
// many jobs moved. Loads and rates are snapshotted once; each planned
// migration then goes through Migrate's own atomicity protocol (a
// decision may move fewer jobs than planned if the source dispatched
// work in the meantime — the next pass sees the new state).
func (r *Router) RebalanceOnce(policy StealPolicy) int {
	if policy == nil {
		return 0
	}
	loads := r.Loads()
	plan := policy.Plan(loads, r.stealRates(loads))
	if r.audit != nil && len(plan) > 0 {
		wall := time.Now().UnixNano()
		for _, d := range plan {
			r.audit.Record(obs.Decision{
				Wall:    wall,
				Kind:    obs.DecisionSteal,
				Policy:  policy.Name(),
				Job:     -1,
				From:    d.From,
				To:      d.To,
				Planned: d.N,
			})
		}
	}
	moved := 0
	for _, d := range plan {
		moved += r.Migrate(d.From, d.To, d.N)
	}
	return moved
}

// stealRates computes each shard's service rate for steal planning: the
// placement estimator's rate (learned throughput when warm, nominal
// cost-vector rate otherwise) scaled by the live-slave fraction. A
// shard with no live slaves rates 0 — never a steal destination, and
// an infinite-ECT source for the het-aware policy.
func (r *Router) stealRates(loads []live.Load) []float64 {
	rates := make([]float64, len(r.shards))
	for i, s := range r.shards {
		if lv := s.LiveSlaves(); lv > 0 {
			rates[i] = s.serviceRate(loads[i]) * float64(lv) / float64(s.pl.M())
		}
	}
	return rates
}

// Rebalancer periodically runs RebalanceOnce against one router. It is
// entirely external to the serving path: stopping it (or never starting
// it) leaves the cluster exactly as PR 5 built it.
type Rebalancer struct {
	r        *Router
	policy   StealPolicy
	interval time.Duration
	logger   *slog.Logger // nil: no logging

	passes atomic.Int64
	moved  atomic.Int64
	// lastPass is the wall time (Unix nanoseconds) the most recent
	// planning pass finished; 0 until the first pass. GET /readyz
	// reports its age so a wedged rebalancer loop is visible.
	lastPass atomic.Int64

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
}

// NewRebalancer builds a rebalancer over the router. interval <= 0
// defaults to 50ms — frequent enough to matter at service time scales,
// rare enough that the Load polling cost is noise.
func NewRebalancer(r *Router, policy StealPolicy, interval time.Duration) *Rebalancer {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	return &Rebalancer{r: r, policy: policy, interval: interval}
}

// Policy returns the policy's name.
func (b *Rebalancer) Policy() string { return b.policy.Name() }

// Interval returns the pass interval.
func (b *Rebalancer) Interval() time.Duration { return b.interval }

// Passes returns how many planning passes have run.
func (b *Rebalancer) Passes() int64 { return b.passes.Load() }

// Moved returns how many jobs the rebalancer has migrated.
func (b *Rebalancer) Moved() int64 { return b.moved.Load() }

// SetLogger wires structured logging: each pass that moves work is
// logged at Debug with the pass number and jobs moved. Call before
// Start; a nil logger (the default) logs nothing.
func (b *Rebalancer) SetLogger(l *slog.Logger) { b.logger = l }

// LastPass returns when the most recent planning pass finished, and
// false before the first pass.
func (b *Rebalancer) LastPass() (time.Time, bool) {
	ns := b.lastPass.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Start launches the rebalancing loop. Idempotent.
func (b *Rebalancer) Start() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.started {
		return
	}
	b.started = true
	b.stop = make(chan struct{})
	b.done = make(chan struct{})
	go b.loop(b.stop, b.done)
}

// Stop halts the loop and blocks until the in-flight pass (if any) has
// finished, so callers can Drain the router immediately after. Safe to
// call more than once, or without Start.
func (b *Rebalancer) Stop() {
	b.mu.Lock()
	if !b.started {
		b.mu.Unlock()
		return
	}
	b.started = false
	stop, done := b.stop, b.done
	b.mu.Unlock()
	close(stop)
	<-done
}

func (b *Rebalancer) loop(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(b.interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			moved := b.r.RebalanceOnce(b.policy)
			b.passes.Add(1)
			b.moved.Add(int64(moved))
			b.lastPass.Store(time.Now().UnixNano())
			if moved > 0 && b.logger != nil {
				b.logger.Debug("steal pass moved work",
					"policy", b.policy.Name(),
					"pass", b.passes.Load(),
					"moved", moved)
			}
		}
	}
}
