package cluster

// Decision-audit coverage: placement decisions carry every shard's
// score (chosen and rejected alike), steals and migrations land in the
// same ring with realized sizes and latencies, and a cluster built
// without AuditDepth records nothing — the audit is strictly opt-in.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/obs"
)

func auditCluster(t *testing.T, shards int, placement string, depth int) *Router {
	t.Helper()
	m := 2 * shards
	c := make([]float64, m)
	p := make([]float64, m)
	for i := range c {
		c[i], p[i] = 5, 5
	}
	r, err := New(Config{
		Platform:     core.NewPlatform(c, p),
		NewScheduler: newLS,
		Shards:       shards,
		Placement:    placement,
		AuditDepth:   depth,
		World:        func(int) live.World { return live.NewRealTime(1000) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	return r
}

func TestAuditOffByDefault(t *testing.T) {
	r := auditCluster(t, 2, PlacementLeastLoaded, 0)
	defer r.Drain()
	if r.Audit() != nil {
		t.Fatal("AuditDepth 0 built a ring")
	}
	if _, err := r.SubmitBatch(live.JobSpec{}, 4); err != nil {
		t.Fatal(err)
	}
	// The nil ring stays inert through the whole surface.
	if r.Audit().Len() != 0 || r.Audit().Recent(0) != nil {
		t.Fatal("nil audit not inert")
	}
}

func TestAuditRecordsPlacementsWithScores(t *testing.T) {
	r := auditCluster(t, 2, PlacementLeastLoaded, 32)
	defer r.Drain()
	ids, err := r.SubmitBatch(live.JobSpec{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	decisions := r.Audit().Recent(0)
	if len(decisions) != 3 {
		t.Fatalf("audit holds %d decisions, want 3", len(decisions))
	}
	// Newest first; job IDs match the batch, every decision scored both
	// shards and the chosen one had the (weakly) lowest score.
	for k, d := range decisions {
		if d.Kind != obs.DecisionPlace || d.Policy != PlacementLeastLoaded || d.From != -1 {
			t.Fatalf("decision %d = %+v", k, d)
		}
		if d.Job != ids[len(ids)-1-k] {
			t.Fatalf("decision %d audits job %d, want %d", k, d.Job, ids[len(ids)-1-k])
		}
		if len(d.Scores) != 2 {
			t.Fatalf("decision %d scores = %v, want one per shard", k, d.Scores)
		}
		for _, s := range d.Scores {
			if d.Scores[d.To] > s {
				t.Fatalf("decision %d chose shard %d with scores %v", k, d.To, d.Scores)
			}
		}
		if d.Wall == 0 {
			t.Fatalf("decision %d has no wall timestamp", k)
		}
	}
}

func TestAuditUnscoredPolicyRecordsNoScores(t *testing.T) {
	r := auditCluster(t, 2, PlacementRoundRobin, 32)
	defer r.Drain()
	if _, err := r.SubmitBatch(live.JobSpec{}, 2); err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Audit().Recent(0) {
		if d.Scores != nil {
			t.Fatalf("round-robin decision carries scores %v", d.Scores)
		}
	}
}

func TestAuditRecordsMigrations(t *testing.T) {
	r := auditCluster(t, 2, PlacementPinned, 64)
	if _, err := r.SubmitBatch(live.JobSpec{}, 20); err != nil {
		t.Fatal(err)
	}
	var hookMoved int
	var hookLatency float64
	r.OnMigrate(func(moved int, latency float64) { hookMoved, hookLatency = moved, latency })
	moved := r.Migrate(0, 1, 8)
	if moved == 0 {
		t.Fatal("migration moved nothing")
	}
	var mig *obs.Decision
	for _, d := range r.Audit().Recent(0) {
		if d.Kind == obs.DecisionMigrate {
			d := d
			mig = &d
			break
		}
	}
	if mig == nil {
		t.Fatal("no migrate decision in audit")
	}
	if mig.From != 0 || mig.To != 1 || mig.Planned != 8 || mig.N != moved {
		t.Fatalf("migrate decision = %+v (moved %d)", mig, moved)
	}
	if mig.LatencySeconds <= 0 {
		t.Fatalf("migration latency = %v, want > 0", mig.LatencySeconds)
	}
	if hookMoved != moved || hookLatency != mig.LatencySeconds {
		t.Fatalf("OnMigrate saw (%d, %v), audit says (%d, %v)",
			hookMoved, hookLatency, mig.N, mig.LatencySeconds)
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditRecordsStealPlans(t *testing.T) {
	r := auditCluster(t, 2, PlacementPinned, 64)
	if _, err := r.SubmitBatch(live.JobSpec{}, 20); err != nil {
		t.Fatal(err)
	}
	policy, err := NewStealPolicy(StealThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if moved := r.RebalanceOnce(policy); moved == 0 {
		t.Fatal("rebalance pass moved nothing over a pinned backlog")
	}
	var steals, migrates int
	for _, d := range r.Audit().Recent(0) {
		switch d.Kind {
		case obs.DecisionSteal:
			steals++
			if d.Policy != StealThreshold || d.Planned <= 0 {
				t.Fatalf("steal decision = %+v", d)
			}
		case obs.DecisionMigrate:
			migrates++
		}
	}
	if steals == 0 || migrates == 0 {
		t.Fatalf("audit holds %d steal and %d migrate decisions, want both", steals, migrates)
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
}
