package cluster

// The sharded layer's keystone contract, extending the PR-3 conformance
// suite one layer up: a ONE-SHARD cluster on the deterministic virtual
// clock must reproduce the discrete-event engine's schedule BIT FOR BIT
// for every registered heuristic (the paper seven plus SO-LS) on
// tie-heavy platforms of all four classes. Shards=1 with round-robin
// placement is exactly the single-runtime serving stack — the cluster
// wrapper must not perturb a single float.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sched"
	"repro/internal/sim"
)

// conformancePlatforms mirrors the live suite's fixed tie-heavy
// platforms (integer costs, all four classes).
func conformancePlatforms() map[string]core.Platform {
	return map[string]core.Platform{
		"uniform":      core.NewPlatform([]float64{1, 1, 1}, []float64{3, 3, 3}),
		"comm-hetero":  core.NewPlatform([]float64{1, 2, 4}, []float64{3, 3, 3}),
		"comp-hetero":  core.NewPlatform([]float64{1, 1, 1}, []float64{2, 3, 6}),
		"fully-hetero": core.NewPlatform([]float64{1, 2, 3}, []float64{2, 4, 5}),
	}
}

// runSingleShardVirtual executes tasks through a one-shard cluster on
// the virtual clock, submitted by an in-world source at exact release
// times (external Submit would be nondeterministic under vclock).
func runSingleShardVirtual(t *testing.T, pl core.Platform, name string, tasks []core.Task) core.Schedule {
	t.Helper()
	inst := core.NewInstance(pl, tasks)
	r, err := New(Config{
		Platform:     pl,
		NewScheduler: func() sim.Scheduler { return sched.New(name) },
		Shards:       1,
		Placement:    PlacementRoundRobin,
		World:        func(int) live.World { return live.NewVirtual() },
		Sources: []func(*live.Source){func(src *live.Source) {
			for _, task := range inst.Tasks {
				if task.Release > src.Now() {
					src.SleepUntil(task.Release)
				}
				src.Submit(live.JobSpec{CommScale: task.CommScale, CompScale: task.CompScale})
			}
			src.Drain()
		}},
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	r.Start()
	if err := r.Wait(); err != nil {
		t.Fatalf("cluster run: %v", err)
	}
	return r.Shards()[0].Result().Schedule
}

// TestSingleShardConformance is the exhaustive sweep: every registered
// scheduler × every tie-heavy platform class × bag and staggered
// releases, compared record-for-record and objective-for-objective
// against the engine.
func TestSingleShardConformance(t *testing.T) {
	workloads := map[string][]core.Task{
		"bag":       core.Bag(24),
		"staggered": core.ReleasesAt(0, 0, 1, 1, 1, 2, 3, 3, 5, 5, 8, 8, 8, 13, 21, 21),
	}
	for plName, pl := range conformancePlatforms() {
		for wlName, tasks := range workloads {
			for _, name := range sched.ExtendedNames() {
				label := fmt.Sprintf("%s/%s/%s", plName, wlName, name)
				des, err := sim.Simulate(pl, sched.New(name), tasks)
				if err != nil {
					t.Fatalf("%s engine: %v", label, err)
				}
				lv := runSingleShardVirtual(t, pl, name, tasks)
				if len(des.Records) != len(lv.Records) {
					t.Fatalf("%s: engine has %d records, cluster %d", label, len(des.Records), len(lv.Records))
				}
				for i := range des.Records {
					if des.Records[i] != lv.Records[i] {
						t.Fatalf("%s task %d:\n  engine  %+v\n  cluster %+v", label, i, des.Records[i], lv.Records[i])
					}
				}
				for _, obj := range core.Objectives {
					if va, vb := obj.Value(des), obj.Value(lv); va != vb {
						t.Fatalf("%s: %v differs: engine %v, cluster %v", label, obj, va, vb)
					}
				}
				if err := core.ValidateSchedule(lv); err != nil {
					t.Fatalf("%s: cluster schedule invalid: %v", label, err)
				}
			}
		}
	}
}

// TestSingleShardConformanceEveryPartitionStrategy pins that the
// partition strategy is irrelevant at k=1: both strategies produce the
// identity partition, hence identical schedules.
func TestSingleShardConformanceEveryPartitionStrategy(t *testing.T) {
	pl := conformancePlatforms()["fully-hetero"]
	tasks := core.ReleasesAt(0, 0, 0, 1, 2, 4, 4, 7, 9, 9)
	des, err := sim.Simulate(pl, sched.New("LS"), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range core.PartitionStrategies {
		inst := core.NewInstance(pl, tasks)
		r, err := New(Config{
			Platform:     pl,
			NewScheduler: func() sim.Scheduler { return sched.New("LS") },
			Shards:       1,
			Partition:    strategy,
			World:        func(int) live.World { return live.NewVirtual() },
			Sources: []func(*live.Source){func(src *live.Source) {
				for _, task := range inst.Tasks {
					if task.Release > src.Now() {
						src.SleepUntil(task.Release)
					}
					src.Submit(live.JobSpec{})
				}
				src.Drain()
			}},
		})
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		r.Start()
		if err := r.Wait(); err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		lv := r.Shards()[0].Result().Schedule
		for i := range des.Records {
			if des.Records[i] != lv.Records[i] {
				t.Fatalf("%s: task %d diverged", strategy, i)
			}
		}
	}
}
