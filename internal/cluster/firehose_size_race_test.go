//go:build race

package cluster

// firehoseSmokeJobs under the race detector: a 100k subset — the same
// intake/drain interleavings at a wall cost CI can afford.
const firehoseSmokeJobs = 100_000
