package cluster

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/live"
)

// Placement chooses a shard for each incoming job. Implementations are
// owned by one Router, which serializes every Pick under its submission
// lock — they need no internal synchronization but must be cheap: Pick
// runs once per job on the ingest hot path.
type Placement interface {
	// Name returns the registry name.
	Name() string
	// Pick returns the shard index for one job. loads[i] is shard i's
	// progress snapshot taken once at the top of the current batch (one
	// Load per shard per batch, not per job); staged[i] counts jobs of
	// the current batch already placed on shard i but not yet submitted,
	// so load-sensitive policies see their own batch's pressure instead
	// of dog-piling one momentarily-idle shard.
	//
	// scores, when non-nil, is a caller-owned buffer of len(shards) the
	// policy fills with its per-shard ranking (lower is better) for the
	// decision audit — every shard's score, chosen and rejected alike.
	// Policies that rank nothing (round-robin, pinned) leave the buffer
	// untouched; the router passes nil when auditing is off, so scoring
	// costs nothing on unaudited ingest.
	Pick(shards []*Shard, loads []live.Load, staged []int, spec live.JobSpec, scores []float64) int

	// PickBatch places count jobs at once, filling out[:count] with shard
	// indices and advancing staged as it goes — the firehose admission
	// path. It must produce the same placement sequence as count
	// successive Picks over the same state, but may amortize whatever the
	// per-job path recomputes: het-aware takes each shard's tracker lock
	// once per batch (serviceRate) instead of once per job per shard, and
	// no per-job interface dispatch or score buffer touches remain.
	//
	// scores, when non-nil, is filled once with the per-shard ranking as
	// of the top of the batch (the state the whole batch was scored
	// against) — one audited decision amortized over count jobs. Policies
	// that rank nothing leave it untouched.
	PickBatch(shards []*Shard, loads []live.Load, staged []int, spec live.JobSpec, count int, out []int, scores []float64)
}

// Registered placement policy names.
const (
	// PlacementRoundRobin cycles through shards in order: oblivious to
	// load and speed, maximally cheap, and the identity on one shard —
	// the Shards=1 conformance configuration.
	PlacementRoundRobin = "round-robin"
	// PlacementLeastLoaded sends each job to the shard with the fewest
	// outstanding (accepted, uncompleted) jobs, read from the runtime's
	// Load snapshot. Adapts to heterogeneity indirectly: slow shards
	// accumulate backlog and stop receiving work.
	PlacementLeastLoaded = "least-loaded"
	// PlacementHetAware sends each job to the shard with the smallest
	// expected completion time: backlog divided by the shard's throughput
	// rate, estimated from its per-task cost vectors — and, once the
	// shard has observed enough completions, from its measured
	// throughput instead (speed-oblivious in the SO-LS sense: learned
	// rates override nominal ones, so drifted or miscalibrated platforms
	// still place correctly).
	PlacementHetAware = "het-aware"
	// PlacementPinned routes every job to the lowest-indexed live shard
	// (shard 0 while it has live slaves). It is deliberately
	// pathological: a diagnostic policy that concentrates the entire
	// ingest on one master so the other k-1 ports idle — the adversarial
	// skew the rebalancer benchmarks and the stealing e2e tests use as
	// their worst case. Do not deploy it as a real routing policy.
	PlacementPinned = "pinned"
)

// PlacementNames lists the registered policies in presentation order.
func PlacementNames() []string {
	return []string{PlacementRoundRobin, PlacementLeastLoaded, PlacementHetAware, PlacementPinned}
}

// ValidatePlacement rejects unknown placement names.
func ValidatePlacement(name string) error {
	for _, n := range PlacementNames() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("cluster: unknown placement %q (valid: %s)", name, strings.Join(PlacementNames(), ", "))
}

// NewPlacement constructs a registered policy by name.
func NewPlacement(name string) (Placement, error) {
	switch name {
	case PlacementRoundRobin:
		return &roundRobin{}, nil
	case PlacementLeastLoaded:
		return leastLoaded{}, nil
	case PlacementHetAware:
		return &hetAware{}, nil
	case PlacementPinned:
		return pinned{}, nil
	}
	return nil, ValidatePlacement(name)
}

// Every policy skips shards whose declared-live slave count (see
// Router.SetSlaveLive) is zero: a dead shard accepts jobs into a queue
// nothing will ever drain, so placement must never target one while any
// alternative exists. When EVERY shard is down the filter is dropped —
// a total blackout queues jobs rather than wedging ingest, and the
// rebalancer re-homes them when shards come back.

type roundRobin struct{ next int }

func (p *roundRobin) Name() string { return PlacementRoundRobin }

func (p *roundRobin) Pick(shards []*Shard, _ []live.Load, _ []int, _ live.JobSpec, _ []float64) int {
	k := len(shards)
	for off := 0; off < k; off++ {
		s := (p.next + off) % k
		if shards[s].LiveSlaves() > 0 {
			p.next = (s + 1) % k
			return s
		}
	}
	s := p.next
	p.next = (p.next + 1) % k
	return s
}

// PickBatch cycles exactly as count successive Picks would, skipping
// dead shards; when every shard is down it degrades to the same blind
// cycle as Pick.
func (p *roundRobin) PickBatch(shards []*Shard, _ []live.Load, staged []int, _ live.JobSpec, count int, out []int, _ []float64) {
	k := len(shards)
	for n := 0; n < count; n++ {
		anyLive := false
		for i := range shards {
			if shards[i].LiveSlaves() > 0 {
				anyLive = true
				break
			}
		}
		if !anyLive {
			out[n] = p.next
			p.next = (p.next + 1) % k
			staged[out[n]]++
			continue
		}
		for {
			s := p.next
			p.next = (s + 1) % k
			if shards[s].LiveSlaves() > 0 {
				out[n] = s
				staged[s]++
				break
			}
		}
	}
}

type leastLoaded struct{}

func (leastLoaded) Name() string { return PlacementLeastLoaded }

func (leastLoaded) Pick(shards []*Shard, loads []live.Load, staged []int, _ live.JobSpec, scores []float64) int {
	best, bestLoad := -1, 0
	for pass := 0; pass < 2 && best < 0; pass++ {
		for i := range loads {
			if pass == 0 && shards[i].LiveSlaves() == 0 {
				continue
			}
			load := loads[i].Outstanding() + staged[i]
			if scores != nil {
				scores[i] = float64(load)
			}
			if best < 0 || load < bestLoad {
				best, bestLoad = i, load
			}
		}
	}
	return best
}

// PickBatch is the argmin loop of Pick run count times with the staged
// counters advanced in place — Outstanding() is pure arithmetic on the
// batch-top snapshot, so there is nothing per-job to amortize beyond
// dropping the interface dispatch and score writes.
func (leastLoaded) PickBatch(shards []*Shard, loads []live.Load, staged []int, _ live.JobSpec, count int, out []int, scores []float64) {
	if scores != nil {
		for i := range loads {
			scores[i] = float64(loads[i].Outstanding() + staged[i])
		}
	}
	for n := 0; n < count; n++ {
		best, bestLoad := -1, 0
		for pass := 0; pass < 2 && best < 0; pass++ {
			for i := range loads {
				if pass == 0 && shards[i].LiveSlaves() == 0 {
					continue
				}
				load := loads[i].Outstanding() + staged[i]
				if best < 0 || load < bestLoad {
					best, bestLoad = i, load
				}
			}
		}
		out[n] = best
		staged[best]++
	}
}

// hetAware carries a per-batch scratch of learned service rates; the
// Router serializes all placement under its lock, so the scratch needs
// no synchronization.
type hetAware struct{ rates []float64 }

func (*hetAware) Name() string { return PlacementHetAware }

// Pick minimizes expected completion time (outstanding + 1) / rate_i.
// The job's own scale knobs multiply its cost identically on every
// shard, so they never change the argmin and are ignored. Ties break on
// the lowest shard index, keeping placement deterministic for a given
// load state.
func (*hetAware) Pick(shards []*Shard, loads []live.Load, staged []int, _ live.JobSpec, scores []float64) int {
	best, bestECT := -1, 0.0
	for pass := 0; pass < 2 && best < 0; pass++ {
		for i, sh := range shards {
			if pass == 0 && sh.LiveSlaves() == 0 {
				continue
			}
			backlog := float64(loads[i].Outstanding() + staged[i] + 1)
			ect := backlog / sh.serviceRate(loads[i])
			if scores != nil {
				scores[i] = ect
			}
			if best < 0 || ect < bestECT {
				best, bestECT = i, ect
			}
		}
	}
	return best
}

// PickBatch is where batching pays for het-aware: serviceRate takes the
// shard tracker's lock, and the per-job path pays that lock k times per
// job. Here every rate is sampled once at the top of the batch — count
// jobs then place against pure arithmetic. Rates drift only with
// completions, so a batch scored against one sample places exactly as
// count Picks against an unchanged snapshot would.
func (h *hetAware) PickBatch(shards []*Shard, loads []live.Load, staged []int, _ live.JobSpec, count int, out []int, scores []float64) {
	k := len(shards)
	if cap(h.rates) < k {
		h.rates = make([]float64, k)
	}
	rates := h.rates[:k]
	for i, sh := range shards {
		rates[i] = sh.serviceRate(loads[i])
	}
	if scores != nil {
		for i := range shards {
			scores[i] = float64(loads[i].Outstanding()+staged[i]+1) / rates[i]
		}
	}
	for n := 0; n < count; n++ {
		best, bestECT := -1, 0.0
		for pass := 0; pass < 2 && best < 0; pass++ {
			for i, sh := range shards {
				if pass == 0 && sh.LiveSlaves() == 0 {
					continue
				}
				ect := float64(loads[i].Outstanding()+staged[i]+1) / rates[i]
				if best < 0 || ect < bestECT {
					best, bestECT = i, ect
				}
			}
		}
		out[n] = best
		staged[best]++
	}
}

type pinned struct{}

func (pinned) Name() string { return PlacementPinned }

func (pinned) Pick(shards []*Shard, _ []live.Load, _ []int, _ live.JobSpec, _ []float64) int {
	for i := range shards {
		if shards[i].LiveSlaves() > 0 {
			return i
		}
	}
	return 0
}

// PickBatch pins the whole batch on the first live shard (re-resolved
// once per batch, not per job — the diagnostic skew is per-batch
// faithful).
func (pinned) PickBatch(shards []*Shard, loads []live.Load, staged []int, spec live.JobSpec, count int, out []int, _ []float64) {
	s := pinned{}.Pick(shards, loads, staged, spec, nil)
	for n := 0; n < count; n++ {
		out[n] = s
	}
	staged[s] += count
}

// serviceRate is the shard's estimated sustainable throughput in tasks
// per model second, given a progress snapshot taken at the top of the
// batch. The nominal estimate comes from the cost vectors; once the
// shard has completed at least 2·m jobs over a positive span, the
// observed completion rate replaces it (learned costs à la SO-LS — the
// cluster keeps placing sensibly when actual speeds drift from the
// configured platform). The completion count was sampled BEFORE the
// span is read here, and the span only grows, so the measured rate can
// only underestimate — placement errs conservative, never toward a
// shard that merely looked fast for an instant.
func (s *Shard) serviceRate(load live.Load) float64 {
	if load.Completed >= 2*s.pl.M() {
		if first, last, ok := s.tracker.Span(); ok && last > first {
			return float64(load.Completed) / (last - first)
		}
	}
	return s.nominalRate
}

// shardNominalRate estimates a shard's sustainable task throughput from
// its cost vectors under the one-port model: computation can absorb
// Σ 1/p_j tasks per second; the port, feeding slave j a share of tasks
// proportional to its compute rate, needs Σ f_j·c_j seconds per task.
// The sustainable rate is the smaller of the two.
func shardNominalRate(pl core.Platform) float64 {
	return NominalRate(pl)
}

// NominalRate is the exported form of the shard throughput estimate, so
// synthetic studies (experiment.StealStudy) can feed the same rates the
// router would compute into StealPolicy.Plan without building runtimes.
func NominalRate(pl core.Platform) float64 {
	computeRate := 0.0
	for _, p := range pl.P {
		computeRate += 1 / p
	}
	portTimePerTask := 0.0
	for j := range pl.C {
		f := (1 / pl.P[j]) / computeRate
		portTimePerTask += f * pl.C[j]
	}
	return min(computeRate, 1/portTimePerTask)
}
