package cluster

// The global job index: a chunked, append-only table mapping global job
// IDs to their (shard, runtime-local) location, built so the read path
// never takes a lock.
//
// Memory model. The table is a spine of fixed-size chunks. The spine —
// a []*indexChunk — is published as a whole through an atomic.Pointer:
// growth builds a longer copy and stores it, so a reader's Load always
// observes a fully-formed slice whose chunks were zeroed before the
// publishing Store (release/acquire pairing on the spine pointer).
// Entries are single atomic words: a packed (shard+1, local) pair, with
// the zero word reserved to mean "ID allocated, entry not yet
// published". Three actor classes touch the structure:
//
//   - Allocation (alloc) bumps the atomic next-ID counter and grows the
//     spine under growMu if the new range outruns it. IDs are therefore
//     issued in one atomic step — the order-preserving global-ID
//     allocator the concurrent intake path relies on.
//   - Publication (set) stores each entry's packed word exactly once,
//     by the producer that allocated the range. No lock: distinct
//     producers own distinct IDs.
//   - Re-pointing (repoint, migration only) rewrites an existing entry
//     under the owning chunk's narrow mutex, serializing concurrent
//     migrations of neighboring jobs without ever blocking a reader.
//
// Readers (lookup) load the counter, the spine and the entry word —
// three atomic loads, zero locks, zero allocations. An allocated ID
// whose word is still zero (its producer is between alloc and set) is
// reported as pending: the router answers "queued" for it, the same
// placeholder it uses for accepted-but-not-yet-observed jobs.

import (
	"sync"
	"sync/atomic"
)

const (
	// indexChunkBits sizes a chunk at 4096 entries (32 KiB of packed
	// words): large enough that a million-job run touches the grow path
	// ~250 times, small enough that an idle cluster pays one chunk.
	indexChunkBits = 12
	indexChunkSize = 1 << indexChunkBits
	indexChunkMask = indexChunkSize - 1
)

// indexChunk is one fixed-size run of packed entries. The mutex guards
// writers that mutate existing entries (migration re-pointing) against
// each other; readers and first-time publication never take it.
type indexChunk struct {
	mu      sync.Mutex
	entries [indexChunkSize]atomic.Uint64
}

// packRef encodes a (shard, local) pair into one non-zero word. Shard
// is biased by one so the zero word stays free as the "not yet
// published" sentinel (shard 0, local 0 is a real location).
func packRef(shard, local int) uint64 {
	return uint64(shard+1)<<32 | uint64(uint32(local))
}

// unpackRef inverts packRef.
func unpackRef(p uint64) (shard, local int) {
	return int(p>>32) - 1, int(uint32(p))
}

// jobIndex is the lock-free global job table. The zero value is ready
// to use.
type jobIndex struct {
	// next is the global-ID allocator: IDs [0, next) have been issued.
	next atomic.Int64
	// spine is the atomically published chunk table.
	spine atomic.Pointer[[]*indexChunk]
	// growMu serializes spine growth (allocation-path only).
	growMu sync.Mutex
}

// count returns how many global IDs have been issued.
func (x *jobIndex) count() int { return int(x.next.Load()) }

// alloc issues a contiguous range of count global IDs and returns its
// base, growing the spine to cover the range. Safe for concurrent use.
func (x *jobIndex) alloc(count int) int {
	base := int(x.next.Add(int64(count))) - count
	x.ensure(base + count)
	return base
}

// ensure grows the spine until it covers IDs [0, n). The spine is
// copied and republished whole so readers never see a partially built
// table.
func (x *jobIndex) ensure(n int) {
	need := (n + indexChunkSize - 1) >> indexChunkBits
	if sp := x.spine.Load(); sp != nil && len(*sp) >= need {
		return
	}
	x.growMu.Lock()
	defer x.growMu.Unlock()
	var cur []*indexChunk
	if sp := x.spine.Load(); sp != nil {
		cur = *sp
	}
	if len(cur) >= need {
		return
	}
	// Grow geometrically so a steady allocator republishes the spine
	// O(log n) times, not once per chunk.
	grown := make([]*indexChunk, need, max(need, 2*len(cur)))
	grown = grown[:cap(grown)]
	copy(grown, cur)
	for i := len(cur); i < len(grown); i++ {
		grown[i] = new(indexChunk)
	}
	x.spine.Store(&grown)
}

// chunks returns the current spine. The caller must only index chunks
// covering IDs it knows are allocated (alloc's ensure ran first).
func (x *jobIndex) chunks() []*indexChunk {
	return *x.spine.Load()
}

// set publishes a freshly allocated ID's location. Call exactly once
// per ID, by the producer that allocated it, after alloc returned.
func (x *jobIndex) set(gid, shard, local int) {
	sp := x.chunks()
	sp[gid>>indexChunkBits].entries[gid&indexChunkMask].Store(packRef(shard, local))
}

// repoint rewrites an existing entry when a migration re-homes the job,
// under the owning chunk's write lock. Readers stay lock-free.
func (x *jobIndex) repoint(gid, shard, local int) {
	sp := x.chunks()
	c := sp[gid>>indexChunkBits]
	c.mu.Lock()
	c.entries[gid&indexChunkMask].Store(packRef(shard, local))
	c.mu.Unlock()
}

// lookup resolves a global ID with three atomic loads and no locks.
// ok is false for IDs the allocator never issued. pending is true for
// issued IDs whose entry has not been published yet (mid-batch window;
// the job is accepted, report it queued).
func (x *jobIndex) lookup(gid int) (shard, local int, pending, ok bool) {
	if gid < 0 || int64(gid) >= x.next.Load() {
		return 0, 0, false, false
	}
	sp := x.spine.Load()
	ci := gid >> indexChunkBits
	if sp == nil || ci >= len(*sp) {
		// Allocated, but the covering chunk is not published yet: the
		// producer is between alloc and ensure's store becoming visible.
		return 0, 0, true, true
	}
	p := (*sp)[ci].entries[gid&indexChunkMask].Load()
	if p == 0 {
		return 0, 0, true, true
	}
	shard, local = unpackRef(p)
	return shard, local, false, true
}
