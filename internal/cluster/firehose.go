package cluster

// Firehose intake: the pure-throughput admission path. Producers never
// touch a shard runtime directly — they place a whole batch under the
// router's narrow placement lock, then append the specs to per-shard
// MPSC queues built from pooled slabs under per-shard intake locks
// (appendRun), and return. Producers whose batches land on disjoint
// shards only meet at the placement decision; the append stage runs in
// parallel. One in-world drain source per shard moves the queued slabs
// into its runtime with a single lock acquisition per slab
// (live.Source.SubmitSpecs), so the virtual-clock kernel absorbs an
// arbitrarily large backlog in one wake.
//
// The intake preserves the router's global-ID contract without any
// feedback channel: in firehose mode each drain source is its shard's
// ONLY submitter, so a shard's runtime-local job IDs are exactly the
// per-shard enqueue order. appendRun reserves each shard's next local
// IDs and appends the batch's specs under one hold of that shard's
// lock, so queue order is local-ID order by construction, and the
// drain loop asserts the prediction against the base ID the runtime
// actually assigned. This is also why firehose mode excludes migration
// and in-world sources: any other submitter would desynchronize the
// prediction.
//
// Backpressure is a bounded total queue depth: a producer whose batch
// finds the intake full blocks (before taking the router lock) until
// drains free room or Drain begins. The bound is soft by one batch —
// a reserve admits the whole batch once depth drops below the bound —
// so producers of any batch size make progress.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/live"
)

// FirehoseConfig enables the batched intake path on a cluster.
type FirehoseConfig struct {
	// QueueDepth bounds the total number of enqueued-but-not-yet-admitted
	// jobs across all shards; producers block when it is reached
	// (backpressure). 0 means 65536.
	QueueDepth int
	// SlabSize is the number of jobs per pooled admission slab; 0 means
	// 512. A drained slab is one runtime critical section.
	SlabSize int
	// PollModelSeconds is the drain source's re-check cadence, in model
	// seconds, while its shard still has outstanding work (when the shard
	// is idle the source parks on a wake channel instead and costs
	// nothing). 0 means 0.01.
	PollModelSeconds float64
	// AdmitWindow bounds each shard runtime's outstanding population:
	// the drain source stops admitting slabs while the shard holds this
	// many uncompleted jobs, keeping the bulk backlog in O(1)-append
	// intake slabs instead of the master's ledgers. The scheduler's
	// per-dispatch work grows with the in-runtime queue (LS folds each
	// slave's assigned backlog), so unbounded admission turns a
	// million-job ingest quadratic; the window keeps per-job cost flat.
	// 0 means 1024; negative disables the window.
	AdmitWindow int
}

const (
	defaultFirehoseDepth = 65536
	defaultSlabSize      = 512
	defaultPollModel     = 0.01
	defaultAdmitWindow   = 1024
	// slabPoolCap bounds the recycled-slab stack; beyond it slabs are
	// dropped to the GC (the pool only needs to cover queue depth).
	slabPoolCap = 64
)

// fhShard is one shard's MPSC queue: producers append filled slabs
// under the shard mutex; the shard's drain source swaps the whole slice
// out in one acquisition.
type fhShard struct {
	mu    sync.Mutex
	slabs [][]live.JobSpec
	// notify wakes a parked drain source; closed when the intake closes.
	notify chan struct{}
	// queued counts this shard's enqueued-but-not-yet-admitted jobs. It
	// is added to the shard's Load at placement time so load-sensitive
	// policies see the intake backlog they themselves created.
	queued atomic.Int64

	// emu is the shard's intake lock: appendRun holds it while reserving
	// the shard's next runtime-local IDs (nextLocal) and appending one
	// batch's specs, which is exactly what keeps queue order equal to
	// local-ID order under concurrent producers. It is distinct from mu
	// so the drain source's takeInto never waits behind a producer
	// filling slabs.
	emu       sync.Mutex
	nextLocal int
}

// intake is the cluster-wide firehose state.
type intake struct {
	bound    int
	slabSize int
	poll     float64
	window   int

	// qmu guards the total depth and the closed flag; qcond wakes
	// producers blocked on the bound.
	qmu    sync.Mutex
	qcond  *sync.Cond
	queued int
	closed bool

	// pmu guards the recycled-slab stack; the counters alongside it make
	// the pool's effectiveness observable (poolGets checkouts, of which
	// poolHits came recycled; poolDrops slabs fell to the GC because the
	// stack was full).
	pmu       sync.Mutex
	pool      [][]live.JobSpec
	poolGets  atomic.Int64
	poolHits  atomic.Int64
	poolDrops atomic.Int64

	shards []fhShard
}

func newIntake(cfg FirehoseConfig, shards int) *intake {
	fh := &intake{
		bound:    cfg.QueueDepth,
		slabSize: cfg.SlabSize,
		poll:     cfg.PollModelSeconds,
		window:   cfg.AdmitWindow,
		shards:   make([]fhShard, shards),
	}
	if fh.bound <= 0 {
		fh.bound = defaultFirehoseDepth
	}
	if fh.slabSize <= 0 {
		fh.slabSize = defaultSlabSize
	}
	if fh.poll <= 0 {
		fh.poll = defaultPollModel
	}
	switch {
	case fh.window == 0:
		fh.window = defaultAdmitWindow
	case fh.window < 0:
		fh.window = 0 // disabled
	}
	fh.qcond = sync.NewCond(&fh.qmu)
	for i := range fh.shards {
		fh.shards[i].notify = make(chan struct{}, 1)
	}
	return fh
}

// reserve blocks until the intake has room for a count-job batch (depth
// below the bound; the batch itself may overshoot it) and accounts for
// it. Returns ErrDraining once the intake has closed.
func (fh *intake) reserve(count int) error {
	fh.qmu.Lock()
	defer fh.qmu.Unlock()
	for !fh.closed && fh.queued >= fh.bound {
		fh.qcond.Wait()
	}
	if fh.closed {
		return ErrDraining
	}
	fh.queued += count
	return nil
}

// release returns n drained (or never-enqueued) jobs' worth of depth
// and wakes blocked producers.
func (fh *intake) release(n int) {
	fh.qmu.Lock()
	fh.queued -= n
	if fh.queued < fh.bound {
		fh.qcond.Broadcast()
	}
	fh.qmu.Unlock()
}

// depth returns the current total enqueued-but-not-admitted job count.
func (fh *intake) depth() int {
	fh.qmu.Lock()
	defer fh.qmu.Unlock()
	return fh.queued
}

// close stops admission and wakes everything: blocked producers return
// ErrDraining, parked drain sources wake to find the closed flag, drain
// their remaining slabs and end their runtimes. The caller must
// guarantee no enqueue is in flight (the router does: close happens
// after the draining flag flips under the router lock that every
// enqueue holds).
func (fh *intake) close() {
	fh.qmu.Lock()
	if fh.closed {
		fh.qmu.Unlock()
		return
	}
	fh.closed = true
	fh.qcond.Broadcast()
	fh.qmu.Unlock()
	for i := range fh.shards {
		close(fh.shards[i].notify)
	}
}

func (fh *intake) isClosed() bool {
	fh.qmu.Lock()
	defer fh.qmu.Unlock()
	return fh.closed
}

// getSlab pops a recycled slab or allocates a fresh one.
func (fh *intake) getSlab() []live.JobSpec {
	fh.poolGets.Add(1)
	fh.pmu.Lock()
	if n := len(fh.pool); n > 0 {
		s := fh.pool[n-1]
		fh.pool[n-1] = nil
		fh.pool = fh.pool[:n-1]
		fh.pmu.Unlock()
		fh.poolHits.Add(1)
		return s[:0]
	}
	fh.pmu.Unlock()
	return make([]live.JobSpec, 0, fh.slabSize)
}

// putSlab recycles a drained slab, dropping it once the pool is full.
func (fh *intake) putSlab(s []live.JobSpec) {
	fh.pmu.Lock()
	if len(fh.pool) < slabPoolCap {
		fh.pool = append(fh.pool, s)
		fh.pmu.Unlock()
		return
	}
	fh.pmu.Unlock()
	fh.poolDrops.Add(1)
}

// appendRun admits one batch's slice for a single shard: under one hold
// of the shard's intake lock it reserves the shard's next n
// runtime-local IDs and appends the batch's n specs for that shard
// (those with out[i] == s, in batch order) to the shard queue, flushing
// a slab per slabSize jobs and the partial remainder at the end (so the
// drain source always sees whole batches). Returns the reserved local
// base. The reserve and the append sharing one critical section is the
// sole-submitter invariant's load-bearing wall: whatever order
// concurrent producers reach a shard, each batch's specs land in the
// queue in exactly the order its local IDs were reserved.
func (fh *intake) appendRun(s, n int, out []int, specs []live.JobSpec, spec live.JobSpec) int {
	sq := &fh.shards[s]
	sq.emu.Lock()
	base := sq.nextLocal
	sq.nextLocal += n
	var cur []live.JobSpec
	for i, sh := range out {
		if sh != s {
			continue
		}
		if cur == nil {
			cur = fh.getSlab()
		}
		sp := spec
		if specs != nil {
			sp = specs[i]
		}
		cur = append(cur, sp)
		if len(cur) >= fh.slabSize {
			fh.flush(s, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		fh.flush(s, cur)
	}
	sq.emu.Unlock()
	return base
}

// flush appends one filled slab to the shard queue and wakes its drain
// source. Caller holds the shard's intake lock; flush-vs-close ordering
// is the router's enqueues WaitGroup (every registered batch's flushes
// complete before Drain closes the intake).
func (fh *intake) flush(shard int, slab []live.JobSpec) {
	sq := &fh.shards[shard]
	sq.mu.Lock()
	sq.slabs = append(sq.slabs, slab)
	sq.mu.Unlock()
	sq.queued.Add(int64(len(slab)))
	select {
	case sq.notify <- struct{}{}:
	default:
	}
}

// takeInto swaps the shard's queued slabs out in one lock acquisition,
// installing buf (an empty recycled slice) as the new queue.
func (sq *fhShard) takeInto(buf [][]live.JobSpec) [][]live.JobSpec {
	sq.mu.Lock()
	out := sq.slabs
	sq.slabs = buf
	sq.mu.Unlock()
	return out
}

// drainLoop is the shard's in-world drain source: the sole submitter to
// its runtime. It moves queued slabs into the runtime (one critical
// section per slab), parks on the wake channel while its shard is
// fully idle, polls on the model clock while work is still in flight,
// and — once the intake closes and empties — drains the runtime from
// inside the world (the only legal drain on a virtual clock).
//
// Blocking a virtual-world actor on a plain Go channel deliberately
// stalls the kernel: every other proc is in a kernel-visible blocked
// state, so the world simply waits for the external wake — exactly the
// semantics a serving ingest needs.
func (fh *intake) drainLoop(r *Router, shard int, src *live.Source) {
	sq := &fh.shards[shard]
	rt := r.shards[shard].rt
	expected := 0 // next runtime-local ID, mirrored by Router.fhNextLocal
	spare := make([][]live.JobSpec, 0, 8)
	// submitAll admits every taken slab, one runtime critical section
	// each, and recycles the containers. Before each slab it waits out
	// the admission window: while the runtime already holds window
	// outstanding jobs, the source sleeps on the model clock (the world
	// keeps completing work) instead of growing the master's ledgers —
	// the backlog stays in the intake where appends are O(1).
	submitAll := func(slabs [][]live.JobSpec) {
		for i, slab := range slabs {
			// The wait backs off exponentially: a fixed cadence would pay
			// O(window/poll) yields per refill, and on a virtual clock
			// those yields are the dominant kernel cost at millions of
			// jobs. Backoff makes each window refill O(log) yields at the
			// price of slightly lumpier admission timestamps.
			wait := fh.poll
			for fh.window > 0 && rt.Load().Outstanding() >= fh.window {
				src.Sleep(wait)
				if wait < fh.poll*1024 {
					wait *= 2
				}
			}
			base := src.SubmitSpecs(slab)
			if base != expected {
				panic(fmt.Sprintf("cluster: firehose shard %d drained local base %d, predicted %d (foreign submitter?)", shard, base, expected))
			}
			expected += len(slab)
			sq.queued.Add(int64(-len(slab)))
			fh.release(len(slab))
			fh.putSlab(slab)
			slabs[i] = nil
		}
		spare = slabs
	}
	for {
		slabs := sq.takeInto(spare[:0])
		if len(slabs) > 0 {
			submitAll(slabs)
			continue
		}
		spare = slabs
		if fh.isClosed() {
			// Every flush happens-before close, so one more take performed
			// after observing the closed flag sees every remaining slab
			// (the empty take above may have raced the final flush).
			if slabs := sq.takeInto(spare[:0]); len(slabs) > 0 {
				submitAll(slabs)
			}
			src.Drain()
			return
		}
		if rt.Load().Outstanding() == 0 {
			<-sq.notify
			continue
		}
		src.Sleep(fh.poll)
	}
}

// FirehoseStats is a point-in-time snapshot of the intake's
// backpressure state, exposed through /v1/stats and /v1/metrics: how
// much backlog producers have parked in the queues, and how the slab
// pool is holding up (drops were previously silent).
type FirehoseStats struct {
	// QueueBound is the configured depth bound producers block on.
	QueueBound int
	// Queued is the total enqueued-but-not-yet-admitted job count.
	Queued int
	// ShardQueued is Queued broken down by shard.
	ShardQueued []int64
	// SlabGets counts slab checkouts; SlabHits of them were served from
	// the recycle pool; SlabDrops counts drained slabs discarded because
	// the pool was full.
	SlabGets  int64
	SlabHits  int64
	SlabDrops int64
}

// FirehoseStats snapshots the intake's backpressure state; ok is false
// when the cluster is not in firehose mode.
func (r *Router) FirehoseStats() (FirehoseStats, bool) {
	if r.fh == nil {
		return FirehoseStats{}, false
	}
	fs := FirehoseStats{
		QueueBound:  r.fh.bound,
		Queued:      r.fh.depth(),
		ShardQueued: make([]int64, len(r.fh.shards)),
		SlabGets:    r.fh.poolGets.Load(),
		SlabHits:    r.fh.poolHits.Load(),
		SlabDrops:   r.fh.poolDrops.Load(),
	}
	for i := range r.fh.shards {
		fs.ShardQueued[i] = r.fh.shards[i].queued.Load()
	}
	return fs, true
}

// FirehoseDepth returns the intake's total queued job count (0 outside
// firehose mode) — an allocation-free gauge reader.
func (r *Router) FirehoseDepth() int {
	if r.fh == nil {
		return 0
	}
	return r.fh.depth()
}

// FirehoseShardQueued returns one shard's enqueued-but-unadmitted job
// count (0 outside firehose mode) — the allocation-free per-shard gauge
// reader behind /v1/metrics.
func (r *Router) FirehoseShardQueued(shard int) int64 {
	if r.fh == nil || shard < 0 || shard >= len(r.fh.shards) {
		return 0
	}
	return r.fh.shards[shard].queued.Load()
}

// FirehoseSlabStats returns the slab pool's counters (all 0 outside
// firehose mode): gets checkouts, hits of them recycled, drops slabs
// discarded to the GC on a full pool.
func (r *Router) FirehoseSlabStats() (gets, hits, drops int64) {
	if r.fh == nil {
		return 0, 0, 0
	}
	return r.fh.poolGets.Load(), r.fh.poolHits.Load(), r.fh.poolDrops.Load()
}
