package cluster

import (
	"sync"
	"testing"

	"repro/internal/live"
)

// TestJobIndexPackRef pins the packed-word encoding: round-trips for
// boundary locations and the zero-word pending sentinel staying
// unreachable from any real (shard, local) pair.
func TestJobIndexPackRef(t *testing.T) {
	cases := [][2]int{{0, 0}, {0, 1}, {7, 0}, {3, 1 << 30}, {255, 4095}}
	for _, c := range cases {
		p := packRef(c[0], c[1])
		if p == 0 {
			t.Fatalf("packRef(%d, %d) produced the pending sentinel", c[0], c[1])
		}
		s, l := unpackRef(p)
		if s != c[0] || l != c[1] {
			t.Fatalf("unpackRef(packRef(%d, %d)) = (%d, %d)", c[0], c[1], s, l)
		}
	}
}

// TestJobIndexLifecycle walks one entry through allocation, publication
// and migration re-pointing, checking the pending window in between.
func TestJobIndexLifecycle(t *testing.T) {
	var x jobIndex
	if _, _, _, ok := x.lookup(0); ok {
		t.Fatal("lookup on an empty index reported an issued ID")
	}
	base := x.alloc(3)
	if base != 0 {
		t.Fatalf("first alloc base = %d, want 0", base)
	}
	if x.count() != 3 {
		t.Fatalf("count = %d, want 3", x.count())
	}
	if _, _, pending, ok := x.lookup(1); !ok || !pending {
		t.Fatalf("allocated-unpublished ID: pending=%v ok=%v, want true true", pending, ok)
	}
	x.set(1, 2, 41)
	if s, l, pending, ok := x.lookup(1); !ok || pending || s != 2 || l != 41 {
		t.Fatalf("lookup(1) = (%d, %d, %v, %v), want (2, 41, false, true)", s, l, pending, ok)
	}
	x.repoint(1, 0, 7)
	if s, l, _, _ := x.lookup(1); s != 0 || l != 7 {
		t.Fatalf("after repoint lookup(1) = (%d, %d), want (0, 7)", s, l)
	}
	if _, _, _, ok := x.lookup(3); ok {
		t.Fatal("lookup past the allocator reported an issued ID")
	}
	if _, _, _, ok := x.lookup(-1); ok {
		t.Fatal("lookup(-1) reported an issued ID")
	}
}

// TestJobIndexGrowth crosses many chunk boundaries from concurrent
// allocators and verifies every entry survives the spine republications.
func TestJobIndexGrowth(t *testing.T) {
	var x jobIndex
	const workers, per = 8, 3 * indexChunkSize
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				gid := x.alloc(1)
				x.set(gid, w, i)
			}
		}()
	}
	wg.Wait()
	if got := x.count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	perWorker := make([]int, workers)
	for gid := 0; gid < workers*per; gid++ {
		s, _, pending, ok := x.lookup(gid)
		if !ok || pending {
			t.Fatalf("gid %d: pending=%v ok=%v after all sets", gid, pending, ok)
		}
		perWorker[s]++
	}
	for w, n := range perWorker {
		if n != per {
			t.Fatalf("worker %d published %d entries, want %d", w, n, per)
		}
	}
}

// TestFirehoseReadUnderIngest is the lock-free read-path race test: while
// concurrent producers pour batches through the firehose, reader
// goroutines hammer Job, ShardOf and Jobs. Under -race this fails on any
// unsynchronized access in the index publication or spine growth; the
// assertions pin that every ID a reader observes resolves consistently
// and that the final population is exact.
func TestFirehoseReadUnderIngest(t *testing.T) {
	r := firehoseCluster(t, fourShardPlatform(), 4, PlacementLeastLoaded,
		FirehoseConfig{QueueDepth: 4096, SlabSize: 64})
	const producers, batches, per = 4, 50, 64
	const total = producers * batches * per

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for rd := 0; rd < 4; rd++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := r.Jobs()
				if n == 0 {
					continue
				}
				gid := n - 1
				info, ok := r.Job(gid)
				if !ok {
					t.Errorf("Job(%d) missing below Jobs()=%d", gid, n)
					return
				}
				if info.ID != gid {
					t.Errorf("Job(%d) returned ID %d", gid, info.ID)
					return
				}
				if shard, routed := r.ShardOf(gid); routed {
					if shard < 0 || shard >= 4 {
						t.Errorf("ShardOf(%d) = %d out of range", gid, shard)
						return
					}
				}
			}
		}()
	}

	var producersWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		producersWG.Add(1)
		go func() {
			defer producersWG.Done()
			for b := 0; b < batches; b++ {
				if _, err := r.SubmitRange(live.JobSpec{CompScale: 1}, per); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	producersWG.Wait()
	close(stop)
	readers.Wait()

	if got := r.Jobs(); got != total {
		t.Fatalf("Jobs() = %d, want %d", got, total)
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	completed := 0
	for _, s := range r.Shards() {
		l := s.Load()
		if l.Completed != l.Submitted {
			t.Fatalf("shard %d completed %d of %d submitted", s.Index(), l.Completed, l.Submitted)
		}
		completed += l.Completed
	}
	if completed != total {
		t.Fatalf("completed %d, want %d", completed, total)
	}
	// After the drain every issued ID must resolve to a routed, completed
	// job — no entry may have been lost to a spine republication.
	for gid := 0; gid < total; gid++ {
		info, ok := r.Job(gid)
		if !ok || info.State != live.StateDone {
			t.Fatalf("gid %d after drain: ok=%v state=%v", gid, ok, info.State)
		}
		if _, routed := r.ShardOf(gid); !routed {
			t.Fatalf("gid %d unrouted after drain", gid)
		}
	}
}
