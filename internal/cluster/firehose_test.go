package cluster

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/live"
)

// firehoseCluster builds a started virtual-clock firehose cluster.
func firehoseCluster(t *testing.T, pl core.Platform, shards int, placement string, fh FirehoseConfig) *Router {
	t.Helper()
	r, err := New(Config{
		Platform:     pl,
		NewScheduler: newLS,
		Shards:       shards,
		Placement:    placement,
		World:        func(int) live.World { return live.NewVirtual() },
		Firehose:     &fh,
		EventLogCap:  4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	return r
}

func fourShardPlatform() core.Platform {
	return core.NewPlatform(
		[]float64{0.1, 0.1, 0.2, 0.2, 0.3, 0.3, 0.1, 0.2},
		[]float64{0.4, 0.8, 0.4, 0.8, 0.4, 0.8, 0.4, 0.8})
}

// TestFirehoseEndToEnd drives a moderate batch load through every
// placement policy on virtual-clock shards and checks the global-ID and
// completion contracts.
func TestFirehoseEndToEnd(t *testing.T) {
	pl := fourShardPlatform()
	for _, placement := range PlacementNames() {
		r := firehoseCluster(t, pl, 4, placement, FirehoseConfig{QueueDepth: 1024, SlabSize: 64})
		const producers, batches, per = 4, 8, 37
		var wg sync.WaitGroup
		bases := make(chan int, producers*batches)
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for b := 0; b < batches; b++ {
					base, err := r.SubmitRange(live.JobSpec{CompScale: 1}, per)
					if err != nil {
						t.Errorf("%s: submit: %v", placement, err)
						return
					}
					bases <- base
				}
			}()
		}
		wg.Wait()
		close(bases)
		seen := map[int]bool{}
		for base := range bases {
			for i := 0; i < per; i++ {
				if seen[base+i] {
					t.Fatalf("%s: duplicate global id %d", placement, base+i)
				}
				seen[base+i] = true
			}
		}
		want := producers * batches * per
		if r.Jobs() != want {
			t.Fatalf("%s: routed %d of %d", placement, r.Jobs(), want)
		}
		if err := r.Drain(); err != nil {
			t.Fatalf("%s: drain: %v", placement, err)
		}
		total := 0
		for _, s := range r.Shards() {
			l := s.Load()
			if l.Completed != l.Submitted {
				t.Fatalf("%s: shard %d completed %d of %d", placement, s.Index(), l.Completed, l.Submitted)
			}
			total += l.Completed
		}
		if total != want {
			t.Fatalf("%s: merged completions %d of %d", placement, total, want)
		}
		// Every routed job resolves to a terminal state through the
		// global table (spot-check the ends).
		for _, gid := range []int{0, want / 2, want - 1} {
			info, ok := r.Job(gid)
			if !ok || info.State != live.StateDone {
				t.Fatalf("%s: job %d state %v ok=%v", placement, gid, info.State, ok)
			}
		}
	}
}

// TestFirehoseMillionJobs is the pure-throughput smoke: a million jobs
// (100k under -race) through a 4-shard virtual-clock cluster, with the
// merged completion count equal to the submitted count. This is the
// tier-1 witness that the intake loses nothing under full concurrency:
// producers racing the depth bound, slab recycling, drain sources
// parking and waking.
func TestFirehoseMillionJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("firehose smoke is long in -short mode")
	}
	n := firehoseSmokeJobs
	r := firehoseCluster(t, fourShardPlatform(), 4, PlacementLeastLoaded,
		FirehoseConfig{QueueDepth: 1 << 16})
	const producers = 8
	per := n / producers
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sent := 0; sent < per; {
				c := min(4096, per-sent)
				if _, err := r.SubmitRange(live.JobSpec{}, c); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				sent += c
			}
		}()
	}
	wg.Wait()
	if r.Jobs() != n {
		t.Fatalf("routed %d of %d", r.Jobs(), n)
	}
	if err := r.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	total := 0
	for _, s := range r.Shards() {
		l := s.Load()
		if l.Completed != l.Submitted {
			t.Fatalf("shard %d completed %d of %d submitted", s.Index(), l.Completed, l.Submitted)
		}
		total += l.Completed
	}
	if total != n {
		t.Fatalf("merged completions %d, submitted %d", total, n)
	}
	if err := r.Wait(); err != nil {
		t.Fatalf("wait after drain: %v", err)
	}
}

// TestFirehoseSubmitAfterDrain pins the backpressure path's shutdown:
// producers blocked on the depth bound (and fresh submitters) get
// ErrDraining once Drain begins, never a hang or a dropped job.
func TestFirehoseSubmitAfterDrain(t *testing.T) {
	r := firehoseCluster(t, fourShardPlatform(), 4, PlacementRoundRobin, FirehoseConfig{QueueDepth: 128})
	if _, err := r.SubmitRange(live.JobSpec{}, 10); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SubmitRange(live.JobSpec{}, 1); err != ErrDraining {
		t.Fatalf("submit after drain: %v", err)
	}
	if _, err := r.SubmitSpecs([]live.JobSpec{{}}); err != ErrDraining {
		t.Fatalf("submitspecs after drain: %v", err)
	}
	if ids, err := r.SubmitBatch(live.JobSpec{}, 3); err != ErrDraining || ids != nil {
		t.Fatalf("submitbatch after drain: ids=%v err=%v", ids, err)
	}
}

// TestFirehoseMigrateDisabled pins that firehose mode refuses Migrate:
// the sole-submitter invariant behind local-ID prediction must hold.
func TestFirehoseMigrateDisabled(t *testing.T) {
	r := firehoseCluster(t, fourShardPlatform(), 4, PlacementPinned, FirehoseConfig{})
	if _, err := r.SubmitRange(live.JobSpec{}, 50); err != nil {
		t.Fatal(err)
	}
	if moved := r.Migrate(0, 1, 10); moved != 0 {
		t.Fatalf("migrate moved %d jobs in firehose mode", moved)
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestFirehoseRejectsSources pins the config validation: in-world
// sources and the firehose intake cannot coexist.
func TestFirehoseRejectsSources(t *testing.T) {
	pl := core.NewPlatform([]float64{0.1, 0.2}, []float64{0.4, 0.8})
	_, err := New(Config{
		Platform:     pl,
		NewScheduler: newLS,
		Firehose:     &FirehoseConfig{},
		Sources:      []func(*live.Source){func(src *live.Source) { src.Drain() }},
	})
	if err == nil {
		t.Fatal("firehose + sources accepted")
	}
}

// TestSubmitSpecsHeterogeneous pins the direct (non-firehose) batched
// path: heterogeneous specs keep their scales through placement, and
// global IDs are the consecutive range the base promises.
func TestSubmitSpecsHeterogeneous(t *testing.T) {
	pl := core.NewPlatform(
		[]float64{0.1, 0.1, 0.2, 0.2}, []float64{0.4, 0.8, 0.4, 0.8})
	r := testCluster(t, pl, 2, PlacementLeastLoaded)
	specs := make([]live.JobSpec, 100)
	for i := range specs {
		specs[i] = live.JobSpec{CommScale: 1 + float64(i%3), CompScale: 1 + float64(i%5)}
	}
	base, err := r.SubmitSpecs(specs)
	if err != nil {
		t.Fatal(err)
	}
	if base != 0 || r.Jobs() != len(specs) {
		t.Fatalf("base %d, routed %d", base, r.Jobs())
	}
	if err := r.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		info, ok := r.Job(base + i)
		if !ok || info.State != live.StateDone {
			t.Fatalf("job %d state %v ok=%v", base+i, info.State, ok)
		}
	}
}

// TestPickBatchMatchesPick pins batched placement against the per-job
// path: for every scoring policy, PickBatch over a fixed load snapshot
// must produce exactly the sequence count successive Picks produce.
func TestPickBatchMatchesPick(t *testing.T) {
	pl := fourShardPlatform()
	for _, name := range PlacementNames() {
		seq, err := NewPlacement(name)
		if err != nil {
			t.Fatal(err)
		}
		bat, err := NewPlacement(name)
		if err != nil {
			t.Fatal(err)
		}
		r := testCluster(t, pl, 4, PlacementRoundRobin)
		shards := r.Shards()
		loads := []live.Load{
			{Submitted: 9, Completed: 2},
			{Submitted: 1, Completed: 1},
			{Submitted: 5, Completed: 0},
			{Submitted: 3, Completed: 3},
		}
		const count = 64
		stagedSeq := make([]int, 4)
		stagedBat := make([]int, 4)
		want := make([]int, count)
		for i := range want {
			s := seq.Pick(shards, loads, stagedSeq, live.JobSpec{}, nil)
			stagedSeq[s]++
			want[i] = s
		}
		got := make([]int, count)
		bat.PickBatch(shards, loads, stagedBat, live.JobSpec{}, count, got, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: job %d placed on %d, per-job path placed on %d", name, i, got[i], want[i])
			}
		}
		for s := range stagedSeq {
			if stagedSeq[s] != stagedBat[s] {
				t.Fatalf("%s: staged[%d] %d vs %d", name, s, stagedBat[s], stagedSeq[s])
			}
		}
		if err := r.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}
