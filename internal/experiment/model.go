package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// ModelAblationResult contrasts the paper's one-port model with the
// macro-dataflow model its Section 5 criticizes ("communication resources
// are not limited ... the communication network is assumed to be
// contention-free, which of course is not realistic"). For each heuristic
// it reports the normalized makespan under both models plus the speedup
// unlimited ports would grant.
type ModelAblationResult struct {
	Class core.Class
	Order []string
	// OnePort and Multiport hold metric(alg)/metric(SRPT) per model.
	OnePort   map[string]stats.Summary
	Multiport map[string]stats.Summary
	// Speedup holds makespan(one-port)/makespan(multiport) per algorithm.
	Speedup map[string]stats.Summary
}

// AblationModel runs the seven heuristics on the same random platforms
// under both communication models.
func AblationModel(class core.Class, cfg Config) ModelAblationResult {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := []string{"SRPT", "LS", "RR", "RRC", "RRP", "SLJF", "SLJFWC"}
	one := map[string][]float64{}
	multi := map[string][]float64{}
	speed := map[string][]float64{}
	for p := 0; p < cfg.Platforms; p++ {
		pl := core.Random(rng, class, core.GenConfig{M: cfg.M})
		tasks := core.Bag(cfg.Tasks)
		var baseOne, baseMulti float64
		for _, name := range names {
			so, err := sim.Simulate(pl, schedulerFor(name, cfg.Tasks), tasks)
			if err != nil {
				panic(fmt.Sprintf("experiment: %s one-port: %v", name, err))
			}
			sm, err := sim.SimulateMultiport(pl, schedulerFor(name, cfg.Tasks), tasks)
			if err != nil {
				panic(fmt.Sprintf("experiment: %s multiport: %v", name, err))
			}
			if name == "SRPT" {
				baseOne, baseMulti = so.Makespan(), sm.Makespan()
			}
			one[name] = append(one[name], so.Makespan()/baseOne)
			multi[name] = append(multi[name], sm.Makespan()/baseMulti)
			speed[name] = append(speed[name], so.Makespan()/sm.Makespan())
		}
	}
	res := ModelAblationResult{
		Class:     class,
		Order:     names,
		OnePort:   map[string]stats.Summary{},
		Multiport: map[string]stats.Summary{},
		Speedup:   map[string]stats.Summary{},
	}
	for _, n := range names {
		res.OnePort[n] = stats.Summarize(one[n])
		res.Multiport[n] = stats.Summarize(multi[n])
		res.Speedup[n] = stats.Summarize(speed[n])
	}
	return res
}

// Render formats the study.
func (r ModelAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model ablation on %v platforms — one-port vs macro-dataflow (normalized makespan, SRPT = 1)\n", r.Class)
	headers := []string{"algorithm", "one-port", "macro-dataflow", "speedup from ∞ ports"}
	var rows [][]string
	for _, n := range r.Order {
		rows = append(rows, []string{
			n,
			fmt.Sprintf("%.3f ± %.3f", r.OnePort[n].Mean, r.OnePort[n].Std),
			fmt.Sprintf("%.3f ± %.3f", r.Multiport[n].Mean, r.Multiport[n].Std),
			fmt.Sprintf("%.2f×", r.Speedup[n].Mean),
		})
	}
	b.WriteString(textplot.Table(headers, rows))
	return b.String()
}
