package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// ModelAblationResult contrasts the paper's one-port model with the
// macro-dataflow model its Section 5 criticizes ("communication resources
// are not limited ... the communication network is assumed to be
// contention-free, which of course is not realistic"). For each heuristic
// it reports the normalized makespan under both models plus the speedup
// unlimited ports would grant.
type ModelAblationResult struct {
	Class core.Class
	Order []string
	// OnePort and Multiport hold metric(alg)/metric(SRPT) per model.
	OnePort   map[string]stats.Summary
	Multiport map[string]stats.Summary
	// Speedup holds makespan(one-port)/makespan(multiport) per algorithm.
	Speedup map[string]stats.Summary
	Raw     runner.Result
}

// AblationModel runs the seven heuristics on the same random platforms
// under both communication models. One shard per random platform, as with
// every other sweep.
func AblationModel(class core.Class, cfg Config) ModelAblationResult {
	cfg = cfg.withDefaults()
	names := sched.Names()
	cells, err := runner.Map(cfg.Workers, cfg.Platforms, func(p int) (runner.Cell, error) {
		key := fmt.Sprintf("ablation/model/%v/platform=%03d", class, p)
		cell := runner.NewCell(cfg.Seed, key)
		pl := core.Random(runner.RNG(cfg.Seed, key+"/platform"), class, core.GenConfig{M: cfg.M})
		tasks := core.Bag(cfg.Tasks)
		var baseOne, baseMulti float64
		for _, name := range names {
			so, err := sim.Simulate(pl, schedulerFor(name, cfg.Tasks), tasks)
			if err != nil {
				return cell, fmt.Errorf("%s: %s one-port: %w", key, name, err)
			}
			sm, err := sim.SimulateMultiport(pl, schedulerFor(name, cfg.Tasks), tasks)
			if err != nil {
				return cell, fmt.Errorf("%s: %s multiport: %w", key, name, err)
			}
			if name == "SRPT" {
				baseOne, baseMulti = so.Makespan(), sm.Makespan()
			}
			cell.Values[name+"/one-port"] = so.Makespan() / baseOne
			cell.Values[name+"/multiport"] = sm.Makespan() / baseMulti
			cell.Values[name+"/speedup"] = so.Makespan() / sm.Makespan()
		}
		return cell, nil
	})
	if err != nil {
		panic(fmt.Sprintf("experiment: model ablation %v: %v", class, err))
	}
	// The model ablation always runs the full registry, regardless of
	// Config.Schedulers; the record names what actually ran.
	params := cfg.params()
	params["schedulers"] = strings.Join(names, ",")
	raw := runner.Result{
		Experiment: "ablation/model/" + class.String(),
		Params:     params,
		RootSeed:   cfg.Seed,
		Cells:      cells,
	}
	raw.Summarize()
	res := ModelAblationResult{
		Class:     class,
		Order:     names,
		OnePort:   map[string]stats.Summary{},
		Multiport: map[string]stats.Summary{},
		Speedup:   map[string]stats.Summary{},
		Raw:       raw,
	}
	for _, n := range names {
		res.OnePort[n] = raw.Summaries[n+"/one-port"]
		res.Multiport[n] = raw.Summaries[n+"/multiport"]
		res.Speedup[n] = raw.Summaries[n+"/speedup"]
	}
	return res
}

// Render formats the study.
func (r ModelAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model ablation on %v platforms — one-port vs macro-dataflow (normalized makespan, SRPT = 1)\n", r.Class)
	headers := []string{"algorithm", "one-port", "macro-dataflow", "speedup from ∞ ports"}
	var rows [][]string
	for _, n := range r.Order {
		rows = append(rows, []string{
			n,
			fmt.Sprintf("%.3f ± %.3f", r.OnePort[n].Mean, r.OnePort[n].Std),
			fmt.Sprintf("%.3f ± %.3f", r.Multiport[n].Mean, r.Multiport[n].Std),
			fmt.Sprintf("%.2f×", r.Speedup[n].Mean),
		})
	}
	b.WriteString(textplot.Table(headers, rows))
	return b.String()
}
