package experiment

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

func shardingTestCfg(workers int) Config {
	return Config{Platforms: 2, Tasks: 48, M: 4, Seed: 3, Workers: workers}
}

func TestShardingStudyDeterministicAcrossWorkers(t *testing.T) {
	a := ShardingStudy(shardingTestCfg(1))
	b := ShardingStudy(shardingTestCfg(4))
	if len(a.Raw.Cells) != len(b.Raw.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Raw.Cells), len(b.Raw.Cells))
	}
	for i := range a.Raw.Cells {
		ca, cb := a.Raw.Cells[i], b.Raw.Cells[i]
		if ca.Key != cb.Key || !reflect.DeepEqual(ca.Values, cb.Values) {
			t.Fatalf("cell %d (%s) differs across worker counts", i, ca.Key)
		}
	}
}

func TestShardingStudySingleShardIsIdentity(t *testing.T) {
	r := ShardingStudy(shardingTestCfg(0))
	for _, cell := range r.Raw.Cells {
		for key, v := range cell.Values {
			if strings.Contains(key, "/k=1/") && v != 1.0 {
				t.Fatalf("%s %s: k=1 degradation %v, want exactly 1", cell.Key, key, v)
			}
		}
	}
}

func TestShardingStudyShape(t *testing.T) {
	r := ShardingStudyOver([]core.Class{core.Heterogeneous}, shardingTestCfg(0))
	if len(r.Raw.Cells) != 2 {
		t.Fatalf("%d cells", len(r.Raw.Cells))
	}
	group := r.Groups[core.Heterogeneous.String()]
	if group == nil {
		t.Fatal("no heterogeneous group")
	}
	// Every scheduler (incl. SO-LS) × every variant × every objective is
	// summarized; m=4 admits all of k ∈ {1, 2, 4}.
	wantVariants := []string{"k=1/striped", "k=2/striped", "k=2/balanced", "k=4/striped", "k=4/balanced"}
	for _, name := range r.Order {
		for _, v := range wantVariants {
			for _, obj := range core.Objectives {
				key := name + "/" + v + "/" + obj.String() + "-degradation"
				s, ok := group[key]
				if !ok {
					t.Fatalf("missing summary %q", key)
				}
				if s.N != 2 || s.Mean <= 0 {
					t.Fatalf("summary %q: %+v", key, s)
				}
			}
		}
	}
	// Sum-flow of a partitioned run can never beat the monolithic run by
	// more than the extra-port speedup bound allows zero: it must stay
	// positive and finite; makespan degradation at k=4 on 4 slaves means
	// one slave per shard — no scheduling freedom left at all.
	if out := r.Render(); !strings.Contains(out, "k=4/balanced") || !strings.Contains(out, "heterogeneous") {
		t.Fatalf("render lacks expected columns:\n%s", out)
	}
}

func TestShardingStudyFilterStability(t *testing.T) {
	full := ShardingStudy(shardingTestCfg(0))
	sub := ShardingStudyOver([]core.Class{core.CommHomogeneous}, shardingTestCfg(0))
	byKey := map[string]map[string]float64{}
	for _, c := range full.Raw.Cells {
		byKey[c.Key] = c.Values
	}
	for _, c := range sub.Raw.Cells {
		want, ok := byKey[c.Key]
		if !ok {
			t.Fatalf("filtered cell %s missing from full sweep", c.Key)
		}
		if !reflect.DeepEqual(c.Values, want) {
			t.Fatalf("filtered cell %s differs from full sweep", c.Key)
		}
	}
}
