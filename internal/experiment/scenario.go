package experiment

// The scenario study: the paper's seven heuristics (plus the
// speed-oblivious extension) on platforms whose heterogeneity varies over
// time — Poisson slave churn, bounded speed drift, and flash-crowd
// join/leave waves — at two intensities on two platform classes. The
// reported quantity is degradation: each metric under the scenario
// divided by the same heuristic's static run on the identical platform
// and workload, so "how much does dynamism cost this algorithm" is read
// directly. See DESIGN.md §8.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// ScenarioKinds names the generated scenario families in presentation
// order.
var ScenarioKinds = []string{"failures", "drift", "flash-crowd"}

// ScenarioClasses are the platform classes the study sweeps by default:
// the two the paper found most separating for the static heuristics.
// ScenarioStudyOver narrows the sweep (e.g. for a -classes filter).
var ScenarioClasses = []core.Class{core.CompHomogeneous, core.Heterogeneous}

// scenarioIntensities scale event density: 1 means each slave fails about
// once per run (failures), drift spreads of ±40% (drift), and a crowd the
// size of the platform (flash-crowd).
var scenarioIntensities = []float64{0.5, 1}

// SpeedObliviousName labels the beyond-the-paper entrant in the study.
const SpeedObliviousName = "SO-LS"

// BuildScenario draws the named scenario family for a platform and
// horizon at the given intensity. Exposed so cmd/msched generates the
// exact timelines the study uses.
func BuildScenario(kind string, rng *rand.Rand, pl core.Platform, horizon, intensity float64) scenario.Scenario {
	if horizon <= 0 || math.IsInf(horizon, 0) {
		panic(fmt.Sprintf("experiment: scenario horizon %v", horizon))
	}
	if intensity <= 0 {
		// Callers (CLI flags included) must validate: silently substituting
		// a default would make an intensity sweep lie near zero.
		panic(fmt.Sprintf("experiment: non-positive scenario intensity %v", intensity))
	}
	switch kind {
	case "failures":
		return workload.FailureScenario(rng, pl.M(), horizon, intensity, 0.1*horizon)
	case "drift":
		return workload.DriftScenario(rng, pl, horizon, 4, 0.4*intensity)
	case "flash-crowd":
		joins := int(math.Round(intensity * float64(pl.M())))
		if joins < 1 {
			joins = 1
		}
		return workload.FlashCrowdScenario(rng, pl.M(), joins, 0.25*horizon, 0.75*horizon, core.GenConfig{})
	default:
		panic(fmt.Sprintf("experiment: unknown scenario kind %q (valid: %s)",
			kind, strings.Join(ScenarioKinds, ", ")))
	}
}

// ScenarioStudyResult is the dynamic-platform sweep: per group (class ×
// kind × intensity), the per-scheduler degradation summaries over
// platform replicates, plus the flat machine-readable record.
type ScenarioStudyResult struct {
	Config      Config
	Classes     []core.Class
	Kinds       []string
	Intensities []float64
	Order       []string // scheduler presentation order (paper seven + SO-LS)
	// Groups maps "class/kind/intensity=x" to value-key summaries over
	// the group's platform replicates.
	Groups map[string]map[string]stats.Summary
	Raw    runner.Result
}

// GroupKey renders the canonical group identifier used in Groups and in
// the cells' shard keys.
func GroupKey(class core.Class, kind string, intensity float64) string {
	return fmt.Sprintf("%v/%s/intensity=%.2f", class, kind, intensity)
}

// ScenarioStudy sweeps scenario kind × intensity × platform class ×
// heuristic through the deterministic runner. Each cell is one random
// platform replicate: it draws the platform and the scenario timeline
// from its own shard streams, runs every heuristic (FailSafe-wrapped)
// both statically and under the scenario, and records absolute metrics
// and degradations. The scenario horizon is the replicate's static SRPT
// makespan, so event density is calibrated to how long the work actually
// takes on that platform; all heuristics in a cell face the identical
// timeline.
func ScenarioStudy(cfg Config) ScenarioStudyResult {
	return ScenarioStudyOver(ScenarioClasses, cfg)
}

// ScenarioStudyOver is ScenarioStudy restricted to the given platform
// classes. Cell keys and seeds depend only on each cell's own
// coordinates, so a narrowed study reproduces exactly the corresponding
// cells of the default one (the runner's filter-stability contract).
func ScenarioStudyOver(classes []core.Class, cfg Config) ScenarioStudyResult {
	if len(classes) == 0 {
		panic("experiment: scenario study over no platform classes")
	}
	cfg = cfg.withDefaults()
	names := cfg.Schedulers
	order := append(append([]string(nil), names...), SpeedObliviousName)

	type coord struct {
		class     core.Class
		kind      string
		intensity float64
		platform  int
	}
	var grid []coord
	for _, class := range classes {
		for _, kind := range ScenarioKinds {
			for _, intensity := range scenarioIntensities {
				for p := 0; p < cfg.Platforms; p++ {
					grid = append(grid, coord{class, kind, intensity, p})
				}
			}
		}
	}

	cells, err := runner.Map(cfg.Workers, len(grid), func(i int) (runner.Cell, error) {
		g := grid[i]
		key := fmt.Sprintf("scenario/%s/platform=%03d", GroupKey(g.class, g.kind, g.intensity), g.platform)
		cell := runner.NewCell(cfg.Seed, key)
		cell.Labels = map[string]string{
			"class":     g.class.String(),
			"kind":      g.kind,
			"intensity": fmt.Sprintf("%.2f", g.intensity),
		}
		pl := core.Random(runner.RNG(cfg.Seed, key+"/platform"), g.class, core.GenConfig{M: cfg.M})
		tasks := core.Bag(cfg.Tasks)

		srpt, err := sim.Simulate(pl, schedulerFor("SRPT", cfg.Tasks), tasks)
		if err != nil {
			return cell, fmt.Errorf("%s: static SRPT on %v: %w", key, pl, err)
		}
		sc := BuildScenario(g.kind, runner.RNG(cfg.Seed, key+"/scenario"), pl, srpt.Makespan(), g.intensity)
		cell.Labels["scenario"] = sc.Name

		for _, name := range order {
			static := srpt
			if name != "SRPT" {
				if static, err = sim.Simulate(pl, schedulerFor(name, cfg.Tasks), tasks); err != nil {
					return cell, fmt.Errorf("%s: static %s on %v: %w", key, name, pl, err)
				}
			}
			dyn, err := scenario.Run(pl, sched.FailSafe(schedulerFor(name, cfg.Tasks)), tasks, sc)
			if err != nil {
				return cell, fmt.Errorf("%s: %s under %s on %v: %w", key, name, sc.Name, pl, err)
			}
			for _, obj := range core.Objectives {
				cell.Values[name+"/"+obj.String()] = obj.Value(dyn.Schedule)
				cell.Values[name+"/"+obj.String()+"-degradation"] = obj.Value(dyn.Schedule) / obj.Value(static)
			}
			cell.Values[name+"/lost"] = float64(dyn.Lost)
		}
		return cell, nil
	})
	if err != nil {
		panic(fmt.Sprintf("experiment: scenario study: %v", err))
	}

	raw := runner.Result{
		Experiment: "scenario-study",
		Params:     cfg.params(),
		RootSeed:   cfg.Seed,
		Cells:      cells,
	}
	raw.Summarize()

	groups := map[string]map[string]stats.Summary{}
	acc := map[string]map[string][]float64{}
	for _, c := range cells {
		group := strings.TrimPrefix(c.Key[:strings.LastIndex(c.Key, "/platform=")], "scenario/")
		if acc[group] == nil {
			acc[group] = map[string][]float64{}
		}
		for k, v := range c.Values {
			acc[group][k] = append(acc[group][k], v)
		}
	}
	for group, byKey := range acc {
		groups[group] = make(map[string]stats.Summary, len(byKey))
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys) // deterministic summarize order
		for _, k := range keys {
			groups[group][k] = stats.Summarize(byKey[k])
		}
	}

	return ScenarioStudyResult{
		Config:      cfg.canonical(),
		Classes:     append([]core.Class(nil), classes...),
		Kinds:       append([]string(nil), ScenarioKinds...),
		Intensities: append([]float64(nil), scenarioIntensities...),
		Order:       order,
		Groups:      groups,
		Raw:         raw,
	}
}

// Render formats one makespan-degradation table per scenario kind:
// rows are schedulers, columns the class × intensity groups, values the
// mean ratio of the scenario run to the same heuristic's static run
// (1 = dynamism was free).
func (r ScenarioStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario study — makespan degradation vs the static run (n=%d tasks, %d platforms of %d slaves)\n",
		r.Config.Tasks, r.Config.Platforms, r.Config.M)
	for _, kind := range r.Kinds {
		fmt.Fprintf(&b, "\n%s:\n", kind)
		headers := []string{"algorithm"}
		var groups []string
		for _, class := range r.Classes {
			for _, intensity := range r.Intensities {
				headers = append(headers, fmt.Sprintf("%v ×%.1f", class, intensity))
				groups = append(groups, GroupKey(class, kind, intensity))
			}
		}
		var rows [][]string
		for _, name := range r.Order {
			row := []string{name}
			for _, g := range groups {
				s := r.Groups[g][name+"/makespan-degradation"]
				row = append(row, fmt.Sprintf("%.3f ± %.3f", s.Mean, s.Std))
			}
			rows = append(rows, row)
		}
		b.WriteString(textplot.Table(headers, rows))
	}
	return b.String()
}
