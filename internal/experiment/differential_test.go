package experiment

// The engine-level differential suite: the goldens under testdata/ are
// the literal bytes `msched -repeat -json` wrote BEFORE the hot-path
// refactor (PR 4's allocation-free event queue, memoized ledger, FIFO
// rewrite, planner and validator changes). Reproducing them byte for
// byte through the optimized path — at several worker counts — proves
// the overhaul changed no decision, no metric, and no recorded bit,
// including under failure scenarios with re-dispatch. CI additionally
// replays the same comparison through the real msched binary.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runner"
)

// goldenCases mirror the exact msched invocations that produced the
// testdata files (see CHANGES.md PR 4):
//
//	msched -algo LS -class heterogeneous -n 150 -repeat 8 -scenario failures -json golden_msched_scenario.json
//	msched -algo SLJFWC -class comp-homogeneous -n 200 -repeat 6 -json golden_msched_static.json
var goldenCases = []struct {
	file   string
	repeat int
	opts   ReplicateOptions
}{
	{
		file:   "golden_msched_scenario.json",
		repeat: 8,
		opts: ReplicateOptions{
			Algo: "LS", Class: "heterogeneous", M: 5, Seed: 1,
			N: 150, Arrival: "bag", Rate: 1,
			Scenario: "failures", Intensity: 1,
		},
	},
	{
		file:   "golden_msched_static.json",
		repeat: 6,
		opts: ReplicateOptions{
			Algo: "SLJFWC", Class: "comp-homogeneous", M: 5, Seed: 1,
			N: 200, Arrival: "bag", Rate: 1,
		},
	},
}

func TestGoldenReplicatesByteIdentical(t *testing.T) {
	for _, tc := range goldenCases {
		want, err := os.ReadFile(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		for _, workers := range []int{1, 4} {
			res, err := Replicates(tc.repeat, workers, tc.opts)
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", tc.file, workers, err)
			}
			got, err := runner.EncodeJSON(res)
			if err != nil {
				t.Fatalf("%s (workers=%d): %v", tc.file, workers, err)
			}
			if string(got) != string(want) {
				t.Errorf("%s (workers=%d): optimized engine diverged from the pre-refactor golden bytes\ngot %d bytes, want %d",
					tc.file, workers, len(got), len(want))
			}
		}
	}
}
