package experiment

// The replicate sweep behind `msched -repeat`: R independently seeded
// replicates of one (algorithm, platform, workload, scenario) cell,
// fanned out over the runner's deterministic worker pool. It lives in
// the library rather than the CLI so the differential engine suite can
// reproduce the exact machine-readable record `msched -repeat -json`
// writes — the committed pre-refactor goldens in testdata/ pin the
// optimized engine to the old engine's bytes — while cmd/msched stays a
// thin flag-parsing shell.

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ReplicateOptions mirrors msched's flags for the -repeat path. CFlag,
// PFlag and ReleasesFlag carry the raw comma-separated CLI strings (the
// recorded params preserve them verbatim); empty strings select the
// random platform class / generated workload instead.
type ReplicateOptions struct {
	Algo         string
	CFlag, PFlag string // explicit platform vectors, e.g. "1,1" / "3,7"
	Class        string // random platform class when CFlag/PFlag are empty
	M            int
	Seed         int64
	ReleasesFlag string // explicit release times, overrides N/Arrival
	N            int
	Arrival      string // bag, poisson, uniform, bursty, periodic
	Rate         float64
	Perturb      float64
	Scenario     string // empty = static run
	Intensity    float64
}

// Replicates runs the replicate sweep: one shard per replicate, each
// with its own platform and workload streams derived from the root
// seed. The result is bit-identical for every worker count.
func Replicates(repeat, workers int, o ReplicateOptions) (runner.Result, error) {
	// Validate every static argument once, before fanning out: otherwise
	// runner.Map reports the same bad class or arrival once per
	// replicate.
	if err := sched.Validate(o.Algo); err != nil {
		return runner.Result{}, err
	}
	probe := runner.RNG(o.Seed, "msched/validate")
	if _, err := BuildPlatform(o.CFlag, o.PFlag, o.Class, o.M, probe); err != nil {
		return runner.Result{}, err
	}
	if _, err := BuildTasks(o.ReleasesFlag, o.N, o.Arrival, o.Rate, o.Perturb, probe); err != nil {
		return runner.Result{}, err
	}
	cells, err := runner.Map(workers, repeat, func(r int) (runner.Cell, error) {
		key := fmt.Sprintf("msched/replicate=%04d", r)
		cell := runner.NewCell(o.Seed, key)
		pl, err := BuildPlatform(o.CFlag, o.PFlag, o.Class, o.M, runner.RNG(o.Seed, key+"/platform"))
		if err != nil {
			return cell, err
		}
		tasks, err := BuildTasks(o.ReleasesFlag, o.N, o.Arrival, o.Rate, o.Perturb, runner.RNG(o.Seed, key+"/workload"))
		if err != nil {
			return cell, err
		}
		if o.Scenario != "" {
			sc, static, err := GenerateScenario(o.Scenario, o.Intensity, o.Algo,
				runner.RNG(o.Seed, key+"/scenario"), pl, tasks)
			if err != nil {
				return cell, fmt.Errorf("%s: %w", key, err)
			}
			out, err := scenario.Run(pl, sched.FailSafe(sched.New(o.Algo)), tasks, sc)
			if err != nil {
				return cell, fmt.Errorf("%s: %w", key, err)
			}
			cell.Values["makespan"] = out.Schedule.Makespan()
			cell.Values["max-flow"] = out.Schedule.MaxFlow()
			cell.Values["sum-flow"] = out.Schedule.SumFlow()
			cell.Values["makespan-degradation"] = out.Schedule.Makespan() / static.Makespan()
			cell.Values["lost"] = float64(out.Lost)
			cell.Values["redispatched"] = float64(out.Redispatched)
			return cell, nil
		}
		s, err := sim.Simulate(pl, sched.New(o.Algo), tasks)
		if err != nil {
			return cell, fmt.Errorf("%s: %w", key, err)
		}
		cell.Values["makespan"] = s.Makespan()
		cell.Values["max-flow"] = s.MaxFlow()
		cell.Values["sum-flow"] = s.SumFlow()
		return cell, nil
	})
	if err != nil {
		return runner.Result{}, err
	}
	params := map[string]any{
		"algo": o.Algo, "m": o.M, "n": o.N,
		"arrival": o.Arrival, "rate": o.Rate, "perturb": o.Perturb,
	}
	if o.Scenario != "" {
		params["scenario"] = o.Scenario
		params["intensity"] = o.Intensity
	}
	// Record the platform the replicates actually used: the explicit
	// -c/-p vectors (and -releases) override the random class.
	if o.CFlag != "" {
		params["c"], params["p"] = o.CFlag, o.PFlag
	} else {
		params["class"] = o.Class
	}
	if o.ReleasesFlag != "" {
		params["releases"] = o.ReleasesFlag
	}
	res := runner.Result{
		Experiment: "msched/" + o.Algo,
		Params:     params,
		RootSeed:   o.Seed,
		Cells:      cells,
	}
	res.Summarize()
	return res, nil
}

// GenerateScenario draws the dynamic-platform timeline for one instance:
// the horizon is the algorithm's own static makespan on the identical
// instance, so event density is calibrated to the run, and the static
// schedule doubles as the degradation baseline.
func GenerateScenario(kind string, intensity float64, algo string, rng *rand.Rand,
	pl core.Platform, tasks []core.Task) (scenario.Scenario, core.Schedule, error) {
	static, err := sim.Simulate(pl, sched.New(algo), tasks)
	if err != nil {
		return scenario.Scenario{}, core.Schedule{}, fmt.Errorf("static baseline: %w", err)
	}
	return BuildScenario(kind, rng, pl, static.Makespan(), intensity), static, nil
}

// BuildPlatform resolves the CLI-style platform spec: explicit c/p
// vectors when given (both or neither), otherwise a random platform of
// the named class drawn from rng.
func BuildPlatform(cFlag, pFlag, class string, m int, rng *rand.Rand) (core.Platform, error) {
	if (cFlag == "") != (pFlag == "") {
		return core.Platform{}, fmt.Errorf("-c and -p must be given together")
	}
	if cFlag != "" {
		c, err := ParseFloats(cFlag)
		if err != nil {
			return core.Platform{}, fmt.Errorf("-c: %w", err)
		}
		p, err := ParseFloats(pFlag)
		if err != nil {
			return core.Platform{}, fmt.Errorf("-p: %w", err)
		}
		if len(c) != len(p) {
			return core.Platform{}, fmt.Errorf("-c has %d entries, -p has %d", len(c), len(p))
		}
		return core.NewPlatform(c, p), nil
	}
	for _, cl := range core.Classes {
		if cl.String() == class {
			return core.Random(rng, cl, core.GenConfig{M: m}), nil
		}
	}
	return core.Platform{}, fmt.Errorf("unknown class %q", class)
}

// BuildTasks resolves the CLI-style workload spec: explicit release
// times when given, otherwise n tasks from the named arrival pattern.
func BuildTasks(releases string, n int, arrival string, rate, perturb float64, rng *rand.Rand) ([]core.Task, error) {
	if releases != "" {
		times, err := ParseFloats(releases)
		if err != nil {
			return nil, fmt.Errorf("-releases: %w", err)
		}
		return core.ReleasesAt(times...), nil
	}
	patterns := map[string]workload.Pattern{
		"bag":      workload.BagAtZero,
		"poisson":  workload.Poisson,
		"uniform":  workload.UniformSpread,
		"bursty":   workload.Bursty,
		"periodic": workload.Periodic,
	}
	pattern, ok := patterns[arrival]
	if !ok {
		return nil, fmt.Errorf("unknown arrival pattern %q", arrival)
	}
	return workload.Generate(rng, workload.Config{
		N: n, Pattern: pattern, Rate: rate, Perturb: perturb,
	}), nil
}

// ParseFloats parses a comma-separated float list.
func ParseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
