package experiment

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/optimal"
	"repro/internal/runner"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RandomizedStudyResult quantifies the paper's closing open question —
// what randomization buys against the Section-3 lower bounds. The bounds
// hold for deterministic algorithms against an adaptive adversary; a
// randomized algorithm facing the *fixed* worst-case instance (an
// oblivious adversary) can beat them in expectation, while the adaptive
// adversary, reacting to the realized coin flips, still enforces the
// bound on every single run.
type RandomizedStudyResult struct {
	Seeds              int
	Slack              float64
	DeterministicBound float64
	// Oblivious: ratios of RandomizedLS on the fixed Theorem-1 instance
	// (the very instance that forces LS to the 5/4 bound).
	Oblivious stats.Summary
	// Adaptive: ratios of RandomizedLS against the reactive Theorem-1
	// adversary, one game per seed.
	Adaptive stats.Summary
	// LSRatio is deterministic LS's ratio on the fixed instance (= the
	// bound, by Theorem 1's construction).
	LSRatio float64
	Raw     runner.Result
}

// RandomizedStudy runs RandomizedStudyParallel with a GOMAXPROCS-wide
// pool; results are identical for every worker count.
func RandomizedStudy(seeds int, slack float64) RandomizedStudyResult {
	return RandomizedStudyParallel(seeds, slack, 0)
}

// RandomizedStudyParallel plays RandomizedLS (relative slack on the
// predicted finish, then a uniform choice among near-best slaves) over the
// given number of seeds, both against the fixed Theorem-1 worst-case
// instance and against the adaptive adversary. Each seed is one shard;
// RandomizedLS takes its coin-flip seed explicitly, so the study is
// already per-cell seeded and parallelizes without a shared stream.
func RandomizedStudyParallel(seeds int, slack float64, workers int) RandomizedStudyResult {
	if seeds <= 0 {
		seeds = 200
	}
	// The fixed instance is the deepest adversary branch: releases at
	// 0, c, 2c.
	pl := adversary.NewTheorem1().Platform()
	tasks := core.ReleasesAt(0, 1, 2)
	inst := core.NewInstance(pl, tasks)
	opt := optimal.Solve(inst, core.Makespan).Value

	lsSchedule, err := sim.Simulate(pl, sched.NewLS(), tasks)
	if err != nil {
		panic(fmt.Sprintf("experiment: %v", err))
	}

	cells, err := runner.Map(workers, seeds, func(i int) (runner.Cell, error) {
		seed := i + 1
		key := fmt.Sprintf("randomized/seed=%04d", seed)
		// RandomizedLS takes its coin seed directly, so the cell records
		// that seed rather than a derived one.
		cell := runner.Cell{Key: key, Seed: int64(seed), Values: map[string]float64{}}
		s, err := sim.Simulate(pl, sched.NewRandomizedLS(slack, uint64(seed)), tasks)
		if err != nil {
			return cell, fmt.Errorf("%s: oblivious: %w", key, err)
		}
		cell.Values["oblivious"] = s.Makespan() / opt
		// A fresh adversary per cell: the game mutates adversary state.
		out, err := adversary.Play(adversary.NewTheorem1(), sched.NewRandomizedLS(slack, uint64(seed)))
		if err != nil {
			return cell, fmt.Errorf("%s: adaptive: %w", key, err)
		}
		cell.Values["adaptive"] = out.Ratio
		return cell, nil
	})
	if err != nil {
		panic(fmt.Sprintf("experiment: randomized study: %v", err))
	}
	raw := runner.Result{
		Experiment: "randomized",
		Params:     map[string]any{"seeds": seeds, "slack": slack},
		Cells:      cells,
	}
	raw.Summarize()
	return RandomizedStudyResult{
		Seeds:              seeds,
		Slack:              slack,
		DeterministicBound: adversary.NewTheorem1().Bound(),
		Oblivious:          raw.Summaries["oblivious"],
		Adaptive:           raw.Summaries["adaptive"],
		LSRatio:            lsSchedule.Makespan() / opt,
		Raw:                raw,
	}
}

// Render formats the study.
func (r RandomizedStudyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Randomization study (Theorem 1, %d seeds, slack %.2f)\n", r.Seeds, r.Slack)
	fmt.Fprintf(&b, "  deterministic bound:                    %.4f\n", r.DeterministicBound)
	fmt.Fprintf(&b, "  LS on the fixed worst-case instance:    %.4f (hits the bound)\n", r.LSRatio)
	fmt.Fprintf(&b, "  RandomizedLS vs fixed instance:         %v (expected %.4f)\n", r.Oblivious, r.Oblivious.Mean)
	fmt.Fprintf(&b, "  RandomizedLS vs adaptive adversary:     %v\n", r.Adaptive)
	b.WriteString("Against an oblivious adversary, randomization beats the deterministic\n")
	b.WriteString("bound in expectation; the adaptive adversary reacts to the realized\n")
	b.WriteString("decisions and enforces it on every run — the bounds are specifically\n")
	b.WriteString("deterministic lower bounds, as the paper's conclusion hints.\n")
	return b.String()
}
