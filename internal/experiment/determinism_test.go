package experiment

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
)

// detCfg is deliberately small: the determinism contract is about seeding
// and sharding, not statistics, so a handful of cells suffices.
var detCfg = Config{Platforms: 5, Tasks: 120, M: 4, Seed: 11}

func workerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

func withWorkers(cfg Config, w int) Config {
	cfg.Workers = w
	return cfg
}

// TestFigure1WorkerIndependence: the same root seed with 1, 4 and
// GOMAXPROCS workers yields deeply equal Figure1Result values — including
// the per-cell machine-readable record — and identical canonical JSON.
func TestFigure1WorkerIndependence(t *testing.T) {
	ref := Figure1(core.Heterogeneous, withWorkers(detCfg, 1))
	refJSON, err := runner.EncodeJSON(ref.Raw.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		got := Figure1(core.Heterogeneous, withWorkers(detCfg, w))
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: Figure1Result differs from serial run", w)
		}
		gotJSON, err := runner.EncodeJSON(got.Raw.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		if string(refJSON) != string(gotJSON) {
			t.Errorf("workers=%d: canonical JSON differs from serial run", w)
		}
	}
}

// TestFigure2WorkerIndependence covers the robustness sweep, which draws
// two random streams per cell (platform and perturbed workload).
func TestFigure2WorkerIndependence(t *testing.T) {
	ref := Figure2(withWorkers(detCfg, 1))
	for _, w := range workerCounts()[1:] {
		if got := Figure2(withWorkers(detCfg, w)); !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: Figure2Result differs from serial run", w)
		}
	}
}

// TestTable1WorkerIndependence: the adversary games are deterministic, so
// every worker count must reproduce the same nine rows.
func TestTable1WorkerIndependence(t *testing.T) {
	ref := Table1Parallel(1)
	for _, w := range workerCounts()[1:] {
		if got := Table1Parallel(w); !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: Table1 rows differ from serial run", w)
		}
	}
}

// TestAblationWorkerIndependence covers the sweep harness shared by the
// RR-cap, plan-horizon and arrivals studies (fresh scheduler instances
// per cell; per-cell workload streams).
func TestAblationWorkerIndependence(t *testing.T) {
	ref := AblationArrivals(0.8, withWorkers(detCfg, 1))
	for _, w := range workerCounts()[1:] {
		if got := AblationArrivals(0.8, withWorkers(detCfg, w)); !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: ablation result differs from serial run", w)
		}
	}
}

// TestModelAblationWorkerIndependence covers the dual-engine sweep.
func TestModelAblationWorkerIndependence(t *testing.T) {
	ref := AblationModel(core.CompHomogeneous, withWorkers(detCfg, 1))
	for _, w := range workerCounts()[1:] {
		if got := AblationModel(core.CompHomogeneous, withWorkers(detCfg, w)); !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: model ablation differs from serial run", w)
		}
	}
}

// TestRandomizedWorkerIndependence covers the seed-sharded study.
func TestRandomizedWorkerIndependence(t *testing.T) {
	ref := RandomizedStudyParallel(50, 0.3, 1)
	for _, w := range workerCounts()[1:] {
		if got := RandomizedStudyParallel(50, 0.3, w); !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d: randomized study differs from serial run", w)
		}
	}
}

// TestSchedulerFilterStability: running a subset of schedulers reproduces
// exactly the full sweep's cells for those coordinates — the filter never
// perturbs platform or workload draws.
func TestSchedulerFilterStability(t *testing.T) {
	full := Figure1(core.Heterogeneous, detCfg)
	sub := detCfg
	sub.Schedulers = []string{"LS", "SLJF"}
	filtered := Figure1(core.Heterogeneous, sub)
	if got := filtered.Order; !reflect.DeepEqual(got, []string{"LS", "SLJF"}) {
		t.Fatalf("filtered order %v", got)
	}
	for i, cell := range filtered.Raw.Cells {
		for k, v := range cell.Values {
			if fv := full.Raw.Cells[i].Values[k]; fv != v {
				t.Errorf("cell %s key %s: filtered %v vs full %v", cell.Key, k, v, fv)
			}
		}
	}
	// The normalization baseline runs even when SRPT is filtered out.
	if _, ok := filtered.Cells["LS"]; !ok || filtered.Cells["LS"][core.Makespan].N != detCfg.Platforms {
		t.Errorf("filtered LS summary incomplete: %+v", filtered.Cells["LS"])
	}
}

// TestSeedSensitivity: different root seeds must actually change the
// draws (guards against a derivation that ignores the root).
func TestSeedSensitivity(t *testing.T) {
	a := Figure1(core.Heterogeneous, detCfg)
	other := detCfg
	other.Seed = detCfg.Seed + 1
	b := Figure1(core.Heterogeneous, other)
	if reflect.DeepEqual(a.Cells, b.Cells) {
		t.Error("different root seeds produced identical results")
	}
}
