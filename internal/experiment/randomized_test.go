package experiment

import (
	"strings"
	"testing"
)

// TestRandomizedBeatsObliviousAdversary pins the study's punchline: with
// slack 0.3 the randomized list scheduler flips a fair coin at Theorem
// 1's decisive tie and expects (1.125 + 1.25)/2 = 1.1875 on the fixed
// worst-case instance — strictly below the deterministic bound 5/4 —
// while the adaptive adversary holds every single run at ≥ 5/4.
func TestRandomizedBeatsObliviousAdversary(t *testing.T) {
	r := RandomizedStudy(300, 0.3)
	if r.LSRatio < 1.25-1e-9 {
		t.Fatalf("LS ratio %v below the bound — the fixed instance is wrong", r.LSRatio)
	}
	if r.Oblivious.Mean >= 1.25-0.01 {
		t.Errorf("oblivious expected ratio %v does not beat the bound", r.Oblivious.Mean)
	}
	if r.Oblivious.Mean < 1.18 || r.Oblivious.Mean > 1.20 {
		t.Errorf("oblivious expected ratio %v outside the predicted 1.1875 neighbourhood", r.Oblivious.Mean)
	}
	if r.Adaptive.Min < 1.25-1e-9 {
		t.Errorf("adaptive adversary let a run through at %v < 5/4", r.Adaptive.Min)
	}
	out := r.Render()
	for _, want := range []string{"deterministic bound", "oblivious", "adaptive"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestRandomizedZeroSlackMatchesLS: without slack there is nothing to
// randomize over on this instance except exact ties, which the instance's
// deepest branch resolves identically — expectation equals the bound.
func TestRandomizedZeroSlackMatchesLS(t *testing.T) {
	r := RandomizedStudy(50, 0.1)
	if r.Oblivious.Mean < 1.25-1e-9 || r.Oblivious.Mean > 1.25+1e-9 {
		t.Errorf("slack-0.1 expected ratio %v, want the bound 1.25 (no useful coin)", r.Oblivious.Mean)
	}
}
