package experiment

import (
	"reflect"
	"testing"

	"repro/internal/runner"
)

// scenarioTestCfg keeps the study cheap: 2 platforms × 3 slaves × 60
// tasks still exercises every kind × class × intensity group.
var scenarioTestCfg = Config{Platforms: 2, Tasks: 60, M: 3, Seed: 11}

func TestScenarioStudyShape(t *testing.T) {
	r := ScenarioStudy(scenarioTestCfg)
	wantCells := len(r.Classes) * len(r.Kinds) * len(r.Intensities) * scenarioTestCfg.Platforms
	if len(r.Raw.Cells) != wantCells {
		t.Fatalf("%d cells, want %d", len(r.Raw.Cells), wantCells)
	}
	if len(r.Classes) < 2 || len(r.Kinds) < 3 {
		t.Fatalf("study covers %d classes and %d kinds, want ≥2 and ≥3", len(r.Classes), len(r.Kinds))
	}
	if len(r.Order) != 8 { // the paper's seven + SO-LS
		t.Fatalf("order %v", r.Order)
	}
	for _, kind := range r.Kinds {
		for _, class := range r.Classes {
			for _, intensity := range r.Intensities {
				g := r.Groups[GroupKey(class, kind, intensity)]
				if g == nil {
					t.Fatalf("missing group %s", GroupKey(class, kind, intensity))
				}
				for _, name := range r.Order {
					s, ok := g[name+"/makespan-degradation"]
					if !ok || s.N != scenarioTestCfg.Platforms {
						t.Fatalf("group %s scheduler %s: summary %+v over %d platforms",
							GroupKey(class, kind, intensity), name, s, scenarioTestCfg.Platforms)
					}
					if s.Mean < 0.999 {
						// Failures and churn can only delay completions
						// measured from original releases; drift is
						// symmetric so individual cells may improve, but a
						// mean far below 1 signals a bookkeeping bug.
						if kind != "drift" && kind != "flash-crowd" {
							t.Fatalf("group %s %s mean degradation %v < 1", GroupKey(class, kind, intensity), name, s.Mean)
						}
					}
				}
			}
		}
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
}

// TestScenarioStudyWorkerCountInvariance is the acceptance gate: the
// sweep must be bit-identical for 1 and 4 workers, including its JSON
// encoding.
func TestScenarioStudyWorkerCountInvariance(t *testing.T) {
	cfg1 := scenarioTestCfg
	cfg1.Workers = 1
	cfg4 := scenarioTestCfg
	cfg4.Workers = 4
	a := ScenarioStudy(cfg1)
	b := ScenarioStudy(cfg4)
	if !reflect.DeepEqual(a.Raw.Canonical(), b.Raw.Canonical()) {
		t.Fatal("scenario study differs between 1 and 4 workers")
	}
	if !reflect.DeepEqual(a.Groups, b.Groups) {
		t.Fatal("group summaries differ between 1 and 4 workers")
	}
	ja, err := runner.EncodeJSON(a.Raw.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := runner.EncodeJSON(b.Raw.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatal("JSON encodings differ between 1 and 4 workers")
	}
}

func TestScenarioStudyOverClassSubset(t *testing.T) {
	full := ScenarioStudy(scenarioTestCfg)
	one := ScenarioStudyOver(full.Classes[1:2], scenarioTestCfg)
	if len(one.Raw.Cells)*len(full.Classes) != len(full.Raw.Cells) {
		t.Fatalf("%d cells for one class, %d for %d classes",
			len(one.Raw.Cells), len(full.Raw.Cells), len(full.Classes))
	}
	// Filter stability: the narrowed study's cells must be exactly the
	// matching cells of the full study.
	byKey := map[string]runner.Cell{}
	for _, c := range full.Raw.Cells {
		byKey[c.Key] = c
	}
	for _, c := range one.Raw.Cells {
		fc, ok := byKey[c.Key]
		if !ok {
			t.Fatalf("cell %s missing from the full study", c.Key)
		}
		if !reflect.DeepEqual(c, fc) {
			t.Fatalf("cell %s differs between narrowed and full study", c.Key)
		}
	}
}

func TestScenarioStudyFiltersSchedulers(t *testing.T) {
	cfg := scenarioTestCfg
	cfg.Schedulers = []string{"LS"}
	r := ScenarioStudy(cfg)
	if got := r.Order; len(got) != 2 || got[0] != "LS" || got[1] != SpeedObliviousName {
		t.Fatalf("order %v, want [LS SO-LS]", got)
	}
	// Filter stability (DESIGN.md §5): the LS cells of the filtered sweep
	// must equal the LS cells of the full sweep.
	full := ScenarioStudy(scenarioTestCfg)
	for i, c := range r.Raw.Cells {
		fc := full.Raw.Cells[i]
		if c.Key != fc.Key || c.Seed != fc.Seed {
			t.Fatalf("cell %d key/seed drifted under filtering: %s vs %s", i, c.Key, fc.Key)
		}
		for k, v := range c.Values {
			if fc.Values[k] != v {
				t.Fatalf("cell %s value %s: filtered %v vs full %v", c.Key, k, v, fc.Values[k])
			}
		}
	}
}
